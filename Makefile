# Developer entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build release test bench bench-smoke svc-smoke net-smoke \
	trace-smoke telemetry-smoke mc-stress resume-smoke decompose-smoke \
	perf-regress perf-baseline check doc clean

all: build

build:
	$(DUNE) build @all

release:
	$(DUNE) build --release @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# B4 at tiny sizes (asserts nonzero exploration counts, exits nonzero
# if a Budget_exceeded leaks out of any checker) plus the B3/B6
# model-checking count gates: exact node/state counts for the
# por x dedup grid at the 2x2 size — any drift fails the build.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke

# Differential stress for the two parallel search engines: seeded
# random bounded state spaces, barrier vs sharded at 4 domains,
# repeated 10x — verdict lists and exploration counts must be
# bit-identical (including the Tag/merge POR path).  Exits nonzero on
# the first divergence with the reproducing seed in the message.
mc-stress: build
	$(DUNE) exec --no-build test/test_mc_stress.exe -- --repeat 10 --domains 4
	$(DUNE) exec --no-build test/test_mc_stress.exe -- --repeat 3 --domains 1,2,4

# Kill-and-resume gate for the external-memory spill tier: a
# spill+checkpoint run is SIGKILLed mid-level and resumed to the
# byte-identical verdict and counts; torn MANIFEST.*.tmp files lose
# to the committed manifest; a corrupted manifest, visited segment,
# or frontier segment makes --resume fail loudly with exit 2 instead
# of silently rechecking from scratch.
resume-smoke: build
	@sh test/resume_smoke.sh

# Regenerates the B6 (por x dedup exploration grid), B5 (service
# throughput), B8 (socket loopback latency-vs-rate sweep), B9
# (barrier vs sharded engine grid), and B10 (external-memory spill
# tier) series and diffs them against the committed baselines in
# bench/baselines/ (BENCH_b6.json, BENCH_svc.json, BENCH_b8.json,
# BENCH_b9.json, BENCH_b10.json): counts must match exactly; measured
# fields (walls, latencies, rates) must stay within ELIN_PERF_TOL
# (default 4x — generous because CI wall clocks are noisy; count
# drift is the precise signal).  Rate-like fields are gated
# higher-is-better, everything else lower-is-better.  B9 additionally
# self-gates: bit-identical counts across its whole engine x domains
# grid, sharded@1 within tolerance of barrier@1, and sharded@4
# strictly above barrier@4 (states/s).  B10 self-gates counts across
# ram/spill rows and the deterministic spill shape (segments, disk
# bytes, spilled records).  B11 self-gates min_t equality between the
# monolithic and decomposed checkers on every cell and requires the
# decomposition to explore >= 10x fewer nodes on the multi-object
# family; its node counts are exact under the baseline diff.
perf-regress:
	$(DUNE) exec bench/main.exe -- --regress

# Rewrites the committed baselines from a fresh run (use after an
# intentional engine change, then commit the files).
perf-baseline:
	$(DUNE) exec bench/main.exe -- --regress-update

# Round-trips the committed 50-job corpus through the checking service
# on 2 worker domains: the verdict stream must be byte-identical to
# the golden file, and the exit code must be 3 (the corpus contains
# budget-exhausted jobs; Exhausted outranks Violation outranks Ok).
svc-smoke: build
	@mkdir -p _build/svc-smoke
	@$(DUNE) exec --no-build -- elin batch --domains 2 \
	  test/support/corpus_50.jobs > _build/svc-smoke/corpus_50.verdicts; \
	status=$$?; \
	if [ $$status -ne 3 ]; then \
	  echo "svc-smoke: expected exit code 3, got $$status"; exit 1; \
	fi
	@diff -u test/support/corpus_50.verdicts.golden \
	  _build/svc-smoke/corpus_50.verdicts \
	  || { echo "svc-smoke: verdicts differ from the golden file"; exit 1; }
	@echo "svc-smoke OK"

# Decomposition gate: the committed mixed-object corpus through `elin
# batch` with and without --decompose.  Each stream must be
# byte-identical to its golden (node counts are deterministic on both
# paths), and after stripping the by-design node/memo count fields the
# two streams must be identical to each other — statuses, min_t,
# violations, and the bad-job error all survive decomposition exactly.
# Exit code must be 2 both ways (the corpus contains one bad job).
decompose-smoke: build
	@mkdir -p _build/decompose-smoke
	@$(DUNE) exec --no-build -- elin batch --domains 2 \
	  test/support/corpus_decomp.jobs \
	  > _build/decompose-smoke/mono.verdicts; \
	status=$$?; \
	if [ $$status -ne 2 ]; then \
	  echo "decompose-smoke: batch expected exit code 2, got $$status"; \
	  exit 1; \
	fi
	@$(DUNE) exec --no-build -- elin batch --decompose --domains 2 \
	  test/support/corpus_decomp.jobs \
	  > _build/decompose-smoke/split.verdicts; \
	status=$$?; \
	if [ $$status -ne 2 ]; then \
	  echo "decompose-smoke: batch --decompose expected exit code 2, got \
	  $$status"; exit 1; \
	fi
	@diff -u test/support/corpus_decomp.verdicts.golden \
	  _build/decompose-smoke/mono.verdicts \
	  || { echo "decompose-smoke: verdicts differ from the golden"; exit 1; }
	@diff -u test/support/corpus_decomp.verdicts.decomposed.golden \
	  _build/decompose-smoke/split.verdicts \
	  || { echo "decompose-smoke: --decompose verdicts differ from the \
	  golden"; exit 1; }
	@sed 's/,"nodes":[0-9]*,"memo_hits":[0-9]*//' \
	  _build/decompose-smoke/mono.verdicts \
	  > _build/decompose-smoke/mono.stripped
	@sed 's/,"nodes":[0-9]*,"memo_hits":[0-9]*//' \
	  _build/decompose-smoke/split.verdicts \
	  > _build/decompose-smoke/split.stripped
	@diff -u _build/decompose-smoke/mono.stripped \
	  _build/decompose-smoke/split.stripped \
	  || { echo "decompose-smoke: decomposed verdicts split from the \
	  pool's"; exit 1; }
	@echo "decompose-smoke OK"

# End-to-end socket path: starts `elin serve --listen` on a unix
# socket, round-trips the committed 50-job corpus through `elin batch
# --connect` (exit code must be 3 and the verdict stream byte-identical
# to the svc golden — the wire adds nothing and loses nothing), then
# SIGTERMs the server and asserts a clean drain: exit 0, a final
# metrics snapshot on stderr, and the socket file unlinked.
net-smoke: build
	@mkdir -p _build/net-smoke
	@rm -f _build/net-smoke/sock
	@./_build/default/bin/elin.exe serve --listen unix:_build/net-smoke/sock \
	  --domains 2 2> _build/net-smoke/serve.err & \
	srv=$$!; \
	for i in $$(seq 1 50); do \
	  [ -S _build/net-smoke/sock ] && break; sleep 0.1; \
	done; \
	if [ ! -S _build/net-smoke/sock ]; then \
	  echo "net-smoke: server never bound its socket"; \
	  kill $$srv 2>/dev/null; exit 1; \
	fi; \
	./_build/default/bin/elin.exe batch --connect unix:_build/net-smoke/sock \
	  test/support/corpus_50.jobs > _build/net-smoke/corpus_50.verdicts; \
	status=$$?; \
	if [ $$status -ne 3 ]; then \
	  echo "net-smoke: batch --connect expected exit code 3, got $$status"; \
	  kill $$srv 2>/dev/null; exit 1; \
	fi; \
	diff -u test/support/corpus_50.verdicts.golden \
	  _build/net-smoke/corpus_50.verdicts \
	  || { echo "net-smoke: verdicts differ from the golden file"; \
	       kill $$srv 2>/dev/null; exit 1; }; \
	kill -TERM $$srv; \
	wait $$srv; \
	status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "net-smoke: server exit code $$status after SIGTERM (want 0)"; \
	  exit 1; \
	fi; \
	grep -q '"final":true' _build/net-smoke/serve.err \
	  || { echo "net-smoke: no final metrics snapshot on server stderr"; \
	       exit 1; }; \
	if [ -e _build/net-smoke/sock ]; then \
	  echo "net-smoke: socket file not unlinked on drain"; exit 1; \
	fi
	@echo "net-smoke OK"

# Bounded runs with tracing enabled, every artefact linted with
# `elin trace lint`: regenerates the committed example trace
# (bench/baselines/trace_b6_2x3_d22.json — the B6 2x3 d22 workload,
# loads in Perfetto / chrome://tracing with per-domain expansion spans
# and POR-pruned instants), a canonical-JSONL mc trace, and a batch
# metrics snapshot over the 50-job corpus.
trace-smoke: build
	@mkdir -p _build/trace-smoke
	@$(DUNE) exec --no-build -- elin mc -i fai/board --procs 2 --per-proc 3 \
	  --depth 22 --domains 2 --trace bench/baselines/trace_b6_2x3_d22.json \
	  > _build/trace-smoke/mc.out
	@$(DUNE) exec --no-build -- elin trace lint \
	  bench/baselines/trace_b6_2x3_d22.json
	@$(DUNE) exec --no-build -- elin mc -i fai/board --depth 12 \
	  --trace _build/trace-smoke/mc.jsonl > /dev/null
	@$(DUNE) exec --no-build -- elin trace lint _build/trace-smoke/mc.jsonl
	@$(DUNE) exec --no-build -- elin batch --domains 2 \
	  --metrics _build/trace-smoke/batch.metrics \
	  test/support/corpus_50.jobs > /dev/null; \
	status=$$?; \
	if [ $$status -ne 3 ]; then \
	  echo "trace-smoke: batch expected exit code 3, got $$status"; exit 1; \
	fi
	@$(DUNE) exec --no-build -- elin trace lint _build/trace-smoke/batch.metrics
	@$(DUNE) exec --no-build -- elin trace merge _build/trace-smoke/mc.jsonl \
	  > _build/trace-smoke/mc.merged.json
	@$(DUNE) exec --no-build -- elin trace lint _build/trace-smoke/mc.merged.json
	@echo "trace-smoke OK"

# Live telemetry endpoint end-to-end, probed with elin itself (there
# is no curl in the CI image): `elin serve --telemetry` on an
# ephemeral port must announce the bound port, serve /metrics as
# parseable OpenMetrics and /healthz as 200 "serving"; then a
# deliberately slow job (committed one-job corpus: a depth-10
# unsatisfiable register history under a 5 s timeout) is parked on the
# only worker and the server SIGTERMed mid-job — during the drain
# /healthz must flip to 503 "draining", and the drain must still end
# in exit 0 with the slow job answered.
telemetry-smoke: build
	@mkdir -p _build/telemetry-smoke
	@rm -f _build/telemetry-smoke/sock
	@./_build/default/bin/elin.exe serve \
	  --listen unix:_build/telemetry-smoke/sock \
	  --telemetry tcp:127.0.0.1:0 --test-specs --domains 1 \
	  > _build/telemetry-smoke/serve.out \
	  2> _build/telemetry-smoke/serve.err & \
	srv=$$!; \
	tport=""; \
	for i in $$(seq 1 50); do \
	  tport=$$(sed -n 's/^telemetry on tcp:127.0.0.1:\([0-9]*\).*/\1/p' \
	    _build/telemetry-smoke/serve.out); \
	  [ -n "$$tport" ] && [ -S _build/telemetry-smoke/sock ] && break; \
	  sleep 0.1; \
	done; \
	if [ -z "$$tport" ]; then \
	  echo "telemetry-smoke: server never announced its telemetry port"; \
	  kill $$srv 2>/dev/null; exit 1; \
	fi; \
	./_build/default/bin/elin.exe probe tcp:127.0.0.1:$$tport /metrics \
	  --openmetrics > /dev/null \
	  || { echo "telemetry-smoke: /metrics probe failed"; \
	       kill $$srv 2>/dev/null; exit 1; }; \
	./_build/default/bin/elin.exe probe tcp:127.0.0.1:$$tport /healthz \
	  | grep -q '"status":"serving"' \
	  || { echo "telemetry-smoke: /healthz not serving"; \
	       kill $$srv 2>/dev/null; exit 1; }; \
	./_build/default/bin/elin.exe batch \
	  --connect unix:_build/telemetry-smoke/sock \
	  test/support/telemetry_slow.jobs \
	  > _build/telemetry-smoke/slow.verdicts & \
	bat=$$!; \
	sleep 1; \
	kill -TERM $$srv; \
	sleep 0.3; \
	./_build/default/bin/elin.exe probe tcp:127.0.0.1:$$tport /healthz \
	  --expect 503 | grep -q '"status":"draining"' \
	  || { echo "telemetry-smoke: /healthz did not flip to draining"; \
	       exit 1; }; \
	wait $$srv; status=$$?; \
	if [ $$status -ne 0 ]; then \
	  echo "telemetry-smoke: server exit $$status after SIGTERM (want 0)"; \
	  exit 1; \
	fi; \
	wait $$bat; \
	grep -q '"id":"slow-drain"' _build/telemetry-smoke/slow.verdicts \
	  || { echo "telemetry-smoke: slow job never answered"; exit 1; }
	@echo "telemetry-smoke OK"

doc:
	$(DUNE) build @doc

# CI gate: full build, full test suite, and a guard against anyone
# re-adding build artefacts to the index (PR 1 untracked _build/).
check: build test bench-smoke svc-smoke net-smoke trace-smoke \
		telemetry-smoke mc-stress resume-smoke decompose-smoke
	@if git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' >/dev/null; then \
	  echo "error: build artefacts are tracked in git (see .gitignore)"; \
	  git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' | head; \
	  exit 1; \
	fi
	@echo "check: OK"

clean:
	$(DUNE) clean

# Developer entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build release test bench bench-smoke check doc clean

all: build

build:
	$(DUNE) build @all

release:
	$(DUNE) build --release @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# B4 at tiny sizes: asserts nonzero exploration counts and exits
# nonzero if a Budget_exceeded leaks out of any checker.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke

doc:
	$(DUNE) build @doc

# CI gate: full build, full test suite, and a guard against anyone
# re-adding build artefacts to the index (PR 1 untracked _build/).
check: build test bench-smoke
	@if git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' >/dev/null; then \
	  echo "error: build artefacts are tracked in git (see .gitignore)"; \
	  git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' | head; \
	  exit 1; \
	fi
	@echo "check: OK"

clean:
	$(DUNE) clean

# Developer entry points.  `make check` is what CI runs.

DUNE ?= dune

.PHONY: all build release test bench bench-smoke svc-smoke check doc clean

all: build

build:
	$(DUNE) build @all

release:
	$(DUNE) build --release @all

test:
	$(DUNE) runtest

bench:
	$(DUNE) exec bench/main.exe

# B4 at tiny sizes: asserts nonzero exploration counts and exits
# nonzero if a Budget_exceeded leaks out of any checker.
bench-smoke:
	$(DUNE) exec bench/main.exe -- --smoke

# Round-trips the committed 50-job corpus through the checking service
# on 2 worker domains: the verdict stream must be byte-identical to
# the golden file, and the exit code must be 3 (the corpus contains
# budget-exhausted jobs; Exhausted outranks Violation outranks Ok).
svc-smoke: build
	@mkdir -p _build/svc-smoke
	@$(DUNE) exec --no-build -- elin batch --domains 2 \
	  test/support/corpus_50.jobs > _build/svc-smoke/corpus_50.verdicts; \
	status=$$?; \
	if [ $$status -ne 3 ]; then \
	  echo "svc-smoke: expected exit code 3, got $$status"; exit 1; \
	fi
	@diff -u test/support/corpus_50.verdicts.golden \
	  _build/svc-smoke/corpus_50.verdicts \
	  || { echo "svc-smoke: verdicts differ from the golden file"; exit 1; }
	@echo "svc-smoke OK"

doc:
	$(DUNE) build @doc

# CI gate: full build, full test suite, and a guard against anyone
# re-adding build artefacts to the index (PR 1 untracked _build/).
check: build test bench-smoke svc-smoke
	@if git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' >/dev/null; then \
	  echo "error: build artefacts are tracked in git (see .gitignore)"; \
	  git ls-files | grep -E '^_build/|\.install$$|^\.merlin$$' | head; \
	  exit 1; \
	fi
	@echo "check: OK"

clean:
	$(DUNE) clean

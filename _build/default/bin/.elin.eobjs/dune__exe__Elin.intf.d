bin/elin.mli:

(** The experiment suite behind [elin experiments]: one quick,
    deterministic run per experiment id in DESIGN.md §5, printing the
    claim, what was run, and the verdict.  The full-strength versions
    (property tests, exhaustive sweeps) live in test/; this report
    regenerates the paper-facing summary recorded in EXPERIMENTS.md. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime

let results : (string * string * bool) list ref = ref []

let record id claim ok =
  results := (id, claim, ok) :: !results;
  Printf.printf "  [%s] %-4s %s\n%!" (if ok then "PASS" else "FAIL") id claim

let fai = Faicounter.spec ()
let fcfg = Engine.for_spec fai
let reg = Register.spec ()
let rcfg = Engine.for_spec reg

let paper_fai_family k =
  History.of_events
    ([ Event.invoke ~proc:0 ~obj:0 Op.fetch_inc;
       Event.respond ~proc:0 ~obj:0 (Value.int 0) ]
    @ List.concat_map
        (fun i ->
          [ Event.invoke ~proc:1 ~obj:0 Op.fetch_inc;
            Event.respond ~proc:1 ~obj:0 (Value.int i) ])
        (List.init k (fun i -> i)))

let e1 () =
  let rng = Elin_kernel.Prng.create 11 in
  let h, _ =
    Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
      ~suffix_ops:3 ()
  in
  let ok =
    match Eventual.min_t fcfg h with
    | Some t ->
      Engine.t_linearizable fcfg h ~t:(t + 1)
      && Engine.t_linearizable fcfg h ~t:(t + 3)
    | None -> false
  in
  record "E1" "Lemma 5: t-linearizability is monotone in t" ok

let e2 () =
  let rng = Elin_kernel.Prng.create 12 in
  let h, _ =
    Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
      ~suffix_ops:3 ()
  in
  let ok =
    match Eventual.min_t fcfg h with
    | Some t ->
      List.for_all
        (fun k -> Engine.t_linearizable fcfg (History.prefix h k) ~t)
        (List.init (History.length h + 1) (fun k -> k))
    | None -> false
  in
  record "E2" "Lemma 6: t-linearizability is prefix closed" ok

let e3 () =
  let bound k =
    Option.get (Eventual.min_t rcfg (Locality.register_family k))
  in
  let per_object_stable =
    List.for_all
      (fun o ->
        Eventual.min_t rcfg (History.proj_obj (Locality.register_family 5) o)
        = Some 2)
      (History.objs (Locality.register_family 5))
  in
  record "E3"
    "Lemmas 7-9: locality holds; the infinite-register family's whole-history \
     bound diverges while per-object bounds stay at 2"
    (per_object_stable && bound 1 < bound 3 && bound 3 < bound 5)

let e4 () =
  let prefixes_ok =
    List.for_all
      (fun k -> Faic.t_linearizable (paper_fai_family k) ~t:2)
      [ 0; 2; 5; 10 ]
  in
  let kept_fails =
    List.for_all
      (fun k -> not (Faic.t_linearizable (paper_fai_family k) ~t:1))
      [ 2; 5; 10 ]
  in
  record "E4"
    "Sec 3.2: every finite prefix of the f&i family is 2-linearizable, yet \
     keeping the first response is fatal (t-lin is not a safety property)"
    (prefixes_ok && kept_fails)

let e5 () =
  let rng = Elin_kernel.Prng.create 13 in
  let h, _ =
    Gen.eventually_linearizable rng ~spec:reg ~procs:2 ~prefix_ops:3
      ~suffix_ops:3 ()
  in
  let wc = Weak.is_weakly_consistent (Weak.for_spec reg) in
  let ok =
    wc h
    && List.for_all
         (fun k -> wc (History.prefix h k))
         (List.init (History.length h + 1) (fun k -> k))
  in
  record "E5" "Lemma 10: weak consistency is a safety property (prefix-closed)" ok

let e6 () =
  let ( let* ) = Program.bind in
  let weird : Impl.t =
    {
      Impl.name = "fai/weird";
      bases = [| Base.linearizable (Announce_board.spec ()) |];
      local_init = Value.unit;
      program =
        (fun ~proc ~local op ->
          match Op.name op with
          | "fetch&inc" ->
            let* idx =
              Program.access 0 (Announce_board.announce (Value.int proc))
            in
            let idx = Value.to_int idx in
            Program.return
              ((if idx >= 4 then Value.int idx else Value.int 7), local)
          | other -> invalid_arg other);
    }
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:4 in
  let bad =
    (Run.execute weird ~workloads:wl ~sched:(Sched.random ~seed:5) ()).Run.history
  in
  let guarded = Elin_core.Guard.wrap ~spec:fai weird in
  let good =
    (Run.execute guarded ~workloads:wl ~sched:(Sched.random ~seed:5) ()).Run.history
  in
  record "E6"
    "Prop 11 / Figure 1: the announce/verify guard restores weak consistency \
     while preserving eventual linearizability"
    ((not (Faic.weakly_consistent bad))
    && Faic.weakly_consistent good
    && Faic.min_t good <> None)

let e7 () =
  let impl =
    Elin_core.Local_copy.transform ~procs:2 (Impl.of_spec reg)
  in
  let wl = [| [ Op.write 1 ]; [ Op.read ] |] in
  let cex =
    Elin_explore.Explore.exists_history impl ~workloads:wl ~max_steps:10
      (fun h -> not (Engine.linearizable rcfg h))
  in
  record "E7"
    "Thm 12: the local-copy transform of a register implementation exhibits \
     non-linearizable histories (no linearizable object from ev-lin bases)"
    (cex <> None)

let e8 () =
  let ok =
    List.for_all
      (fun (e : Zoo.entry) ->
        Elin_core.Trivial.is_trivial e.Zoo.spec = e.Zoo.trivial)
      (Zoo.all ())
  in
  record "E8"
    "Prop 14: the triviality classifier matches expectations on the whole \
     type zoo (only the constant object is trivial)"
    ok

let e9 () =
  let inputs = [| Value.int 0; Value.int 1 |] in
  let open Elin_valency in
  let cas_ok =
    let r = Valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:25 in
    r.Valency.terminated && r.Valency.agreement_violation = None
  in
  let ts_ok =
    let r =
      Valency.check_consensus
        (Protocols.registers_plus_linearizable_testandset ())
        ~inputs ~max_steps:40
    in
    r.Valency.agreement_violation = None
  in
  let ev_ts_fails =
    let r =
      Valency.check_consensus (Protocols.registers_plus_ev_testandset ())
        ~inputs ~max_steps:40
    in
    r.Valency.agreement_violation <> None
  in
  record "E9"
    "Prop 15: registers + linearizable test&set solve 2-consensus; the same \
     code over an EVENTUALLY linearizable test&set disagrees"
    (cas_ok && ts_ok && ev_ts_fails)

let e10 () =
  let procs = 3 in
  let spec = Consensus_spec.spec () in
  let run base seed =
    let impl = Elin_core.Ev_consensus.impl ~procs ~base () in
    let wl = Array.init procs (fun p -> [ Op.propose (p mod 2) ]) in
    (Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) ()).Run.history
  in
  let ok h =
    Eventual.is_eventually_linearizable (Eventual.check_spec spec h)
  in
  record "E10"
    "Prop 16: the Proposals-array consensus is wait-free and eventually \
     linearizable, over linearizable AND over eventually linearizable registers"
    (ok (run `Linearizable 3) && ok (run (`Ev_at_step 8) 3))

let e11 () =
  let impl = Elin_core.Ev_testandset.impl () in
  let spec = Testandset.spec () in
  let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:2 in
  let all_ev, _, _ =
    Elin_explore.Explore.for_all_histories impl ~workloads:wl ~max_steps:20
      (fun h ->
        Eventual.is_eventually_linearizable (Eventual.check_spec spec h))
  in
  let not_lin =
    Elin_explore.Explore.exists_history impl ~workloads:wl ~max_steps:20
      (fun h -> not (Engine.linearizable (Engine.for_spec spec) h))
    <> None
  in
  record "E11"
    "Sec 4: the communication-free test&set is eventually linearizable on \
     every schedule, and not linearizable"
    (all_ev && not_lin)

let e12 () =
  let impl = Impls.fai_ev_board ~k:4 () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:6 in
  let h =
    (Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed:7) ()).Run.history
  in
  let ok =
    match Faic.min_t h with
    | None -> false
    | Some t ->
      List.for_all
        (fun t' ->
          let prefixes_pass =
            List.for_all
              (fun k -> Faic.t_linearizable (History.prefix h k) ~t:t')
              (List.init (History.length h + 1) (fun k -> k))
          in
          prefixes_pass = Faic.t_linearizable h ~t:t')
        (List.init (t + 2) (fun t' -> t'))
  in
  record "E12"
    "Lemma 17: on eventually linearizable f&i runs, all-prefixes \
     t-linearizability coincides with whole-history t-linearizability"
    ok

let e13 () =
  let check h ~t = Faic.t_linearizable h ~t in
  let impl = Impls.fai_ev_board ~k:3 () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:12 in
  let ok =
    match Elin_core.Stabilize.construct impl ~workloads:wl ~depth:10 ~check () with
    | None -> false
    | Some o ->
      let wl' = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
      let all_lin, _, _ =
        Elin_explore.Explore.for_all_histories o.Elin_core.Stabilize.derived
          ~workloads:wl' ~locals:o.Elin_core.Stabilize.derived_locals
          ~max_steps:18
          (fun h -> Faic.t_linearizable h ~t:0)
      in
      all_lin
  in
  record "E13"
    "Prop 18 (the paradox): A' derived from the eventually linearizable f&i A \
     is fully linearizable on every schedule (exhaustively model-checked)"
    ok

let e14 () =
  (* Register-only candidates do not stabilize; the board-based one
     does. *)
  let min_t_at impl per_proc =
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
    let h =
      (Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()).Run.history
    in
    match Faic.min_t h with Some t -> t | None -> max_int
  in
  let ( let* ) = Program.bind in
  let rmw : Impl.t =
    {
      Impl.name = "fai/rmw";
      bases = [| Base.linearizable reg |];
      local_init = Value.unit;
      program =
        (fun ~proc:_ ~local op ->
          match Op.name op with
          | "fetch&inc" ->
            let* v = Program.access 0 Op.read in
            let v = Value.to_int v in
            let* _ = Program.access 0 (Op.write (v + 1)) in
            Program.return (Value.int v, local)
          | other -> invalid_arg other);
    }
  in
  let grows = min_t_at rmw 4 < min_t_at rmw 8 && min_t_at rmw 8 < min_t_at rmw 12 in
  let frozen =
    let b = Impls.fai_ev_board ~k:3 () in
    min_t_at b 4 = min_t_at b 10 && min_t_at b 10 = min_t_at b 16
  in
  record "E14"
    "Cor 19: register-only f&i candidates never stabilize (min_t chases the \
     run), unlike the board-based eventually linearizable implementation"
    (grows && frozen)

let e15 () =
  (* Extension: the Section 6 open question explored — the log-based
     universal construction over linearizable vs eventually
     linearizable consensus cells. *)
  let run cell_base seed =
    let impl =
      Elin_core.Universal.construction ~spec:fai ~cells:48 ~cell_base ()
    in
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
    (Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) ()).Run.history
  in
  let lin_ok = Faic.t_linearizable (run `Linearizable 3) ~t:0 in
  let ev_h = run (`Ev_at_step 8) 3 in
  let ev_ok =
    (not (Faic.t_linearizable ev_h ~t:0))
    && Eventual.is_eventually_linearizable (Faic.check ev_h)
  in
  record "E15"
    "Sec 6 (extension): the universal construction is linearizable over \
     linearizable consensus cells and eventually linearizable over \
     eventually linearizable ones"
    (lin_ok && ev_ok)

let e16 () =
  (* Extension: the Section 2 quantifier gap.  The delayed-winner
     test&set family is eventually linearizable per execution but has
     no uniform bound; the board-based f&i has one. *)
  let ts = Testandset.spec () in
  let tcfg = Engine.for_spec ts in
  let diverges =
    match
      Serafini.classify
        (Serafini.family_min_ts Serafini.delayed_winner_family
           ~min_t:(Eventual.min_t tcfg) ~probes:[ 1; 3; 6 ])
    with
    | Serafini.Diverging _ -> true
    | Serafini.Uniformly_bounded _ | Serafini.Not_eventually_linearizable _ ->
      false
  in
  let frozen =
    let family per_proc =
      let impl = Impls.fai_ev_board ~k:3 () in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
      (Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()).Run.history
    in
    match
      Serafini.classify
        (Serafini.family_min_ts family ~min_t:Faic.min_t ~probes:[ 4; 8; 12 ])
    with
    | Serafini.Uniformly_bounded _ -> true
    | Serafini.Diverging _ | Serafini.Not_eventually_linearizable _ -> false
  in
  record "E16"
    "Sec 2 (extension): the per-execution definition is strictly weaker \
     than Serafini et al.'s uniform-bound definition (delayed-winner \
     test&set family diverges; board f&i family freezes)"
    (diverges && frozen)

let run_all () =
  Printf.printf
    "elin experiment suite — Guerraoui & Ruppert, PODC 2014 (quick runs; \
     test/ holds the full-strength versions)\n\n";
  e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 ();
  e11 (); e12 (); e13 (); e14 (); e15 (); e16 ();
  let all = List.rev !results in
  let passed = List.length (List.filter (fun (_, _, ok) -> ok) all) in
  Printf.printf "\n%d/%d experiments passed\n" passed (List.length all);
  if passed <> List.length all then exit 1

examples/consensus_demo.mli:

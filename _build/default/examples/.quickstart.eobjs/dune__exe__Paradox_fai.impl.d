examples/paradox_fai.ml: Elin_checker Elin_core Elin_explore Elin_history Elin_runtime Elin_spec Eventual Explore Faic Format Impl Impls Op Run Stabilize

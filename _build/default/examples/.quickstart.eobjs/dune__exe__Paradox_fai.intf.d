examples/paradox_fai.mli:

examples/quickstart.ml: Elin_checker Elin_history Elin_runtime Elin_spec Engine Event Eventual Faic Faicounter Format History Impl Impls Op Run Sched Value Weak

examples/quickstart.mli:

examples/refcount.ml: Elin_checker Elin_history Elin_runtime Elin_spec Eventual Faic Format History Impls List Op Operation Option Run Sched Value

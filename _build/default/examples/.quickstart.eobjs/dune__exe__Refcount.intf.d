examples/refcount.mli:

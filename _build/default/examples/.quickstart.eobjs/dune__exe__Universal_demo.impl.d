examples/universal_demo.ml: Elin_checker Elin_core Elin_runtime Elin_spec Engine Eventual Faicounter Fifo Format Op Run Sched Testandset Universal

(** The other horn of the paradox: consensus.

    Linearizable consensus is the hardest object there is (it is
    universal), yet eventually linearizable consensus is trivial
    (Proposition 16) — and conversely, eventually linearizable objects
    cannot help registers solve real consensus (Proposition 15).  This
    example shows both directions.

    Run with [dune exec examples/consensus_demo.exe]. *)

open Elin_spec
open Elin_checker
open Elin_runtime
open Elin_core
open Elin_valency

let () =
  (* Direction 1 (Prop. 16): the Proposals-array algorithm — a few
     register operations, no synchronization primitive — implements
     eventually linearizable consensus, even over registers that are
     themselves only eventually linearizable. *)
  let procs = 4 in
  let spec = Consensus_spec.spec () in
  let wl = Array.init procs (fun p -> [ Op.propose (p mod 2) ]) in

  let demo name base =
    let impl = Ev_consensus.impl ~procs ~base () in
    let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed:9) () in
    let decisions =
      List.filter_map
        (fun (o : Elin_history.Operation.t) ->
          Option.map Value.to_int (Elin_history.Operation.response_value o))
        (Elin_history.History.ops out.Run.history)
    in
    Format.printf "%-36s decisions=%s  verdict=%a@." name
      (String.concat "," (List.map string_of_int decisions))
      Eventual.pp_verdict
      (Eventual.check_spec spec out.Run.history)
  in
  Format.printf "Proposition 16 — eventually linearizable consensus:@.";
  demo "proposals over linearizable regs" `Linearizable;
  demo "proposals over EV regs (k=8)" (`Ev_at_step 8);

  (* Direction 2 (Prop. 15): eventually linearizable objects cannot
     boost registers to real (linearizable) consensus.  The identical
     protocol — write input, fire test&set, winner keeps its value —
     is correct with a linearizable test&set and disagrees with an
     eventually linearizable one.  Exhaustive check over ALL schedules
     and adversary choices. *)
  Format.printf "@.Proposition 15 — no consensus boost from ev-lin objects:@.";
  let inputs = [| Value.int 0; Value.int 1 |] in
  let verdict name protocol =
    let r = Valency.check_consensus protocol ~inputs ~max_steps:40 in
    (match r.Valency.agreement_violation with
    | None ->
      Format.printf "%-36s agreement holds on all schedules@." name
    | Some d ->
      Format.printf "%-36s DISAGREEMENT: p0 decides %s, p1 decides %s@." name
        (Value.to_string d.(0)) (Value.to_string d.(1)))
  in
  verdict "registers + linearizable test&set"
    (Protocols.registers_plus_linearizable_testandset ());
  verdict "registers + EV test&set"
    (Protocols.registers_plus_ev_testandset ());

  (* The FLP-style machinery behind the proof: the CAS protocol's
     critical configuration. *)
  Format.printf
    "@.Valency analysis of the CAS consensus (the proof's engine):@.";
  (match Valency.find_critical (Protocols.cas ()) ~inputs ~max_steps:25 with
  | Some crit ->
    Format.printf
      "critical configuration at step %d; both poised steps access base \
       object %s — the synchronization primitive is where bivalence dies.@."
      crit.Valency.config.Valency.steps
      (String.concat ","
         (List.map
            (fun (o, _) ->
              match o with Some o -> string_of_int o | None -> "-")
            (Array.to_list crit.Valency.moves)))
  | None -> Format.printf "no critical configuration found@.")

(** The paper's headline result (Proposition 18), end to end.

    Take A = an eventually linearizable fetch&increment that misbehaves
    for its first k announcements.  The paper proves any such A
    *contains* a fully linearizable fetch&increment A′: initialize A's
    variables as they are in a stable configuration and subtract v0
    from every response.  This example executes each proof step and
    exhaustively model-checks the result.

    Run with [dune exec examples/paradox_fai.exe]. *)

open Elin_spec
open Elin_checker
open Elin_runtime
open Elin_explore
open Elin_core

let k = 3

let () =
  let impl = Impls.fai_ev_board ~k () in
  Format.printf "A = %s@." impl.Impl.name;

  (* Show A misbehaving: a schedule with duplicate responses exists. *)
  let wl2 = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  (match
     Explore.exists_history impl ~workloads:wl2 ~max_steps:16 (fun h ->
         not (Faic.t_linearizable h ~t:0))
   with
  | Some h ->
    Format.printf "@.A is NOT linearizable; witness schedule:@.%a@."
      Elin_history.History.pp h
  | None -> Format.printf "@.unexpected: no violation found@.");

  (* ...but A is eventually linearizable on every schedule. *)
  let ok, _, stats =
    Explore.for_all_histories impl ~workloads:wl2 ~max_steps:16 (fun h ->
        Eventual.is_eventually_linearizable (Faic.check h))
  in
  Format.printf
    "@.A is eventually linearizable on all %d bounded schedules: %b@."
    stats.Explore.leaves ok;

  (* Step 1 (Claim 1): find and certify a stable configuration C —
     every extension to the depth bound keeps the history
     |history-at-C|-linearizable. *)
  let check h ~t = Faic.t_linearizable h ~t in
  let workloads =
    Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:(2 * k + 6)
  in
  match Stabilize.construct impl ~workloads ~depth:10 ~check () with
  | None -> Format.printf "construction failed@."
  | Some o ->
    let cert = o.Stabilize.certificate in
    Format.printf
      "@.Step 1 — stable configuration certified at %d history events (%d \
       extension leaves checked to depth %d)@."
      cert.Stabilize.cut cert.Stabilize.leaves_checked
      cert.Stabilize.extension_depth;

    (* Step 2: C_idle, then run one process solo until op0 returns the
       number of operations invoked before it: that fixes v0. *)
    Format.printf
      "Step 2 — anchor op0 found; v0 = %d operations linearized before the \
       new origin@."
      o.Stabilize.anchor.Stabilize.v0;

    (* Step 3: A′ = A with base objects and local memories initialized
       as in C0, responses shifted down by v0. *)
    let derived = o.Stabilize.derived in
    Format.printf "Step 3 — A' = %s over the SAME base objects@."
      derived.Impl.name;

    (* Verification: A′ is linearizable on every bounded schedule. *)
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
    let ok, cex, stats =
      Explore.for_all_histories derived ~workloads:wl
        ~locals:o.Stabilize.derived_locals ~max_steps:18 (fun h ->
          Faic.t_linearizable h ~t:0)
    in
    (match cex with
    | Some h ->
      Format.printf "counterexample?!@.%a@." Elin_history.History.pp h
    | None -> ());
    Format.printf
      "@.Verification — A' is LINEARIZABLE on all %d bounded schedules: %b@."
      stats.Explore.leaves ok;
    Format.printf
      "@.The paradox: weakening linearizability to eventual linearizability \
       bought nothing for fetch&increment — the eventually linearizable \
       implementation already contained a fully linearizable one.@."

(** Quickstart: specs, histories, checkers, and the simulator in ~60
    lines.  Run with [dune exec examples/quickstart.exe]. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime

let () =
  (* 1. Pick an object type: a fetch&increment counter. *)
  let fai = Faicounter.spec () in

  (* 2. Build a concurrent history by hand.  Two processes each do one
     fetch&inc; both get 0 — fine under weak consistency, fatal for
     linearizability. *)
  let hist =
    History.of_events
      [
        Event.invoke ~proc:0 ~obj:0 Op.fetch_inc;
        Event.invoke ~proc:1 ~obj:0 Op.fetch_inc;
        Event.respond ~proc:0 ~obj:0 (Value.int 0);
        Event.respond ~proc:1 ~obj:0 (Value.int 0);
      ]
  in
  Format.printf "history:@.%a@.@." History.pp hist;

  (* 3. Check it: linearizable? weakly consistent? eventually
     linearizable (Definition 3: weakly consistent and t-linearizable
     for some t)? *)
  Format.printf "linearizable: %b@."
    (Engine.linearizable (Engine.for_spec fai) hist);
  Format.printf "weakly consistent: %b@."
    (Weak.is_weakly_consistent (Weak.for_spec fai) hist);
  Format.printf "eventual-linearizability verdict: %a@.@."
    Eventual.pp_verdict
    (Eventual.check_spec fai hist);

  (* 4. Or let the simulator produce histories: run the classic
     lock-free fetch&increment built from compare&swap, three processes
     under a seeded random scheduler. *)
  let impl = Impls.fai_from_cas () in
  let workloads = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:4 in
  let out = Run.execute impl ~workloads ~sched:(Sched.random ~seed:42) () in
  Format.printf "ran %s: %d ops in %d scheduler steps@." impl.Impl.name
    out.Run.stats.Run.completed out.Run.stats.Run.steps;
  Format.printf "its history is linearizable: %b@."
    (Faic.t_linearizable out.Run.history ~t:0);

  (* 5. Swap in the eventually linearizable counter: linearizability is
     lost, eventual linearizability (with an explicit stabilization
     bound min_t) remains. *)
  let impl = Impls.fai_ev_board ~k:6 () in
  let out = Run.execute impl ~workloads ~sched:(Sched.random ~seed:42) () in
  Format.printf "@.ran %s:@." impl.Impl.name;
  Format.printf "linearizable: %b@."
    (Faic.t_linearizable out.Run.history ~t:0);
  Format.printf "eventual-linearizability verdict: %a@." Eventual.pp_verdict
    (Faic.check out.Run.history)

(** The introduction's motivating scenario: reference counting with a
    shared fetch&increment.

    "If several compare&swap tentatives fail due to unusually high
    contention, it may be acceptable to return a temporary value of the
    counter, as long as, eventually, all increments of concurrent
    processes are taken into account."

    This example runs the reference-counting workload over (a) the
    fully linearizable counter built from compare&swap and (b) the
    eventually linearizable counter that gives up synchronizing during
    a contended prefix, then quantifies exactly what was traded:
    retry-free progress against a bounded window of stale values, with
    the checker certifying the window (min_t) after the fact.

    Run with [dune exec examples/refcount.exe]. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime

let procs = 4
let refs_per_proc = 8

let report name (out : Run.outcome) =
  let values =
    List.filter_map
      (fun (o : Operation.t) ->
        Option.map Value.to_int (Operation.response_value o))
      (History.ops out.Run.history)
  in
  let distinct = List.sort_uniq compare values in
  let duplicates = List.length values - List.length distinct in
  Format.printf "%-28s ops=%d  steps=%d  max-accesses/op=%d  duplicate refs=%d@."
    name out.Run.stats.Run.completed out.Run.stats.Run.steps
    out.Run.stats.Run.max_steps_per_op duplicates;
  let verdict = Faic.check out.Run.history in
  Format.printf "%-28s linearizable=%b  verdict=%a@.@." ""
    (Faic.t_linearizable out.Run.history ~t:0)
    Eventual.pp_verdict verdict

let () =
  Format.printf
    "Reference counting: %d processes each acquire %d references@.@." procs
    refs_per_proc;
  let workloads =
    Run.uniform_workload Op.fetch_inc ~procs ~per_proc:refs_per_proc
  in
  (* Contention-heavy scheduler: processes interleave densely. *)
  let sched () = Sched.random ~seed:7 in

  (* (a) the linearizable counter from compare&swap: every reference id
     is unique, but operations retry under contention. *)
  let out =
    Run.execute (Impls.fai_from_cas ()) ~workloads ~sched:(sched ()) ()
  in
  report "fai/cas (linearizable)" out;

  (* (b) the eventually linearizable counter: during the contended
     prefix (first k announcements) a process falls back to its local
     count — reference ids may repeat across processes, temporarily.
     The checker certifies the damage is confined: the history is
     weakly consistent and t-linearizable with a small, explicit t. *)
  let out =
    Run.execute (Impls.fai_ev_board ~k:10 ()) ~workloads ~sched:(sched ()) ()
  in
  report "fai/ev-board k=10" out;

  (* The paper's warning, demonstrated: eventual linearizability of a
     fetch&increment does not dodge synchronization forever.  The
     stabilized suffix of (b) IS a linearizable counter — exactly
     Prop. 18's paradox.  Witness: drop everything before min_t and the
     suffix checks out linearizable from the stabilized value. *)
  let hist = out.Run.history in
  match Faic.min_t hist with
  | None -> Format.printf "no stabilization bound found (unexpected)@."
  | Some t ->
    let post = Faic.classify hist ~t in
    let floor =
      List.fold_left
        (fun acc (o : Operation.t) ->
          match Operation.response_value o with
          | Some v -> min acc (Value.to_int v)
          | None -> acc)
        max_int post.Faic.post
    in
    Format.printf
      "after stabilization (t=%d), responses resume from %d and the suffix \
       behaves like a linearizable counter — 'a fetch&increment object \
       continues to require synchronization forever'.@."
      t
      (if floor = max_int then 0 else floor)

(** The Section 6 open question, explored: a universal construction for
    eventually linearizable objects.

    Herlihy's theorem makes consensus universal for linearizable
    objects; the paper asks whether a lock-free universal construction
    exists for *eventually linearizable* objects from natural
    eventually linearizable primitives.  This demo instantiates the
    log-based universal construction twice — over linearizable
    consensus cells and over adversarial eventually linearizable ones —
    and lets the checkers report what each buys, for three different
    object types.

    Run with [dune exec examples/universal_demo.exe]. *)

open Elin_spec
open Elin_checker
open Elin_runtime
open Elin_core

let verdict_line name spec history =
  Format.printf "  %-24s linearizable=%-5b  %a@." name
    (Engine.linearizable (Engine.for_spec spec) history)
    Eventual.pp_verdict
    (Eventual.check_spec spec history)

let demo ~spec ~workloads ~cell_base label =
  let impl =
    Universal.construction ~spec ~cells:64 ~cell_base ()
  in
  let out =
    Run.execute impl ~workloads ~sched:(Sched.random ~seed:13) ()
  in
  verdict_line label spec out.Run.history

let () =
  Format.printf
    "Universal construction: every deterministic type from consensus cells@.@.";

  let fai_wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:4 in
  let ts_wl = Run.uniform_workload Op.test_and_set ~procs:3 ~per_proc:3 in
  let q_wl =
    [| [ Op.enq 1; Op.deq; Op.enq 2 ]; [ Op.deq; Op.enq 0 ]; [ Op.deq ] |]
  in

  Format.printf "over LINEARIZABLE consensus cells (Herlihy universality):@.";
  demo ~spec:(Faicounter.spec ()) ~workloads:fai_wl ~cell_base:`Linearizable
    "fetch&increment";
  demo ~spec:(Testandset.spec ()) ~workloads:ts_wl ~cell_base:`Linearizable
    "test&set";
  demo ~spec:(Fifo.spec ()) ~workloads:q_wl ~cell_base:`Linearizable "queue";

  Format.printf
    "@.over EVENTUALLY LINEARIZABLE cells (stabilizing at step 10):@.";
  demo ~spec:(Faicounter.spec ()) ~workloads:fai_wl
    ~cell_base:(`Ev_at_step 10) "fetch&increment";
  demo ~spec:(Testandset.spec ()) ~workloads:ts_wl ~cell_base:(`Ev_at_step 10)
    "test&set";
  demo ~spec:(Fifo.spec ()) ~workloads:q_wl ~cell_base:(`Ev_at_step 10)
    "queue";

  Format.printf
    "@.Reading: with linearizable cells every type is linearizable; with@.\
     eventually linearizable cells linearizability is lost but eventual@.\
     linearizability (finite min_t) is preserved — because every operation@.\
     replays the log from cell 0, the processes re-synchronize once the@.\
     cells stabilize.  Note the construction uses consensus cells, which@.\
     are strictly stronger than the registers Corollary 19 rules out: the@.\
     open question (registers + natural ev-lin primitives) stays open.@."

lib/api/session.ml: Array Base Elin_checker Elin_explore Elin_history Elin_kernel Elin_runtime Elin_spec Event Explore Impl Option Printf Prng Sched Value

lib/api/session.mli: Elin_checker Elin_history Elin_runtime Elin_spec History Impl Op Sched Spec Value

lib/api/typed.ml: Elin_core Elin_runtime Elin_spec Impl Impls Op Register Session Value

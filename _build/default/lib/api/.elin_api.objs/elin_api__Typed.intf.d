lib/api/typed.mli: Elin_runtime Impl Session

(** Interactive sessions: drive an implementation operation by
    operation, step by step, and ask for verdicts at any point.

    [Run.execute] is batch (fixed workloads, one scheduler);
    [Explore] is exhaustive.  A session is the interactive middle
    ground a library user wants when prototyping an algorithm: invoke
    operations on chosen processes, advance chosen processes (or let a
    scheduler pick), inspect responses and the evolving history, and
    check consistency verdicts mid-flight.

    Sessions are deterministic given their seed: adversary branching in
    base objects resolves through a seeded PRNG (always pass the same
    seed to replay a session). *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_runtime
open Elin_explore

type t = {
  impl : Impl.t;
  mutable config : Explore.config;
  rng : Prng.t;
  mutable last_responses : Value.t option array;
}

let create ?(seed = 0) (impl : Impl.t) ~procs =
  {
    impl;
    config =
      Explore.initial_config impl ~workloads:(Array.make procs []) ();
    rng = Prng.create seed;
    last_responses = Array.make procs None;
  }

let procs t = Array.length t.config.Explore.procs

let check_proc t proc =
  if proc < 0 || proc >= procs t then
    invalid_arg (Printf.sprintf "Session: no process %d" proc)

(** [busy t ~proc] — the process has an operation in flight (invoked
    and not yet responded). *)
let busy t ~proc =
  check_proc t proc;
  Option.is_some t.config.Explore.procs.(proc).Explore.running

(** [has_work t ~proc] — the process can take a step (mid-operation or
    with a queued invocation). *)
let has_work t ~proc =
  check_proc t proc;
  let pr = t.config.Explore.procs.(proc) in
  Option.is_some pr.Explore.running || pr.Explore.todo <> []

(** [invoke t ~proc op] queues [op] as process [proc]'s next operation.
    Several operations may be queued; each starts (emitting its
    invocation event) when the process is next stepped while idle. *)
let invoke t ~proc op =
  check_proc t proc;
  let pr = t.config.Explore.procs.(proc) in
  let procs = Array.copy t.config.Explore.procs in
  procs.(proc) <- { pr with Explore.todo = pr.Explore.todo @ [ op ] };
  t.config <- { t.config with Explore.procs }

exception No_step of int

(** [step t ~proc] advances [proc] by one atomic step (invocation,
    base-object access — adversary branching resolved by the session's
    PRNG — or response).  Raises [No_step proc] if the process has
    nothing to do. *)
let step t ~proc =
  check_proc t proc;
  match Explore.step t.impl t.config proc with
  | [] -> raise (No_step proc)
  | choices ->
    let before_running = busy t ~proc in
    let c = Base.pick t.rng choices in
    t.config <- c;
    (* Record the response when this step completed an operation. *)
    if before_running && not (Option.is_some c.Explore.procs.(proc).Explore.running)
    then begin
      match c.Explore.events_rev with
      | Event.{ payload = Respond v; proc = p; _ } :: _ when p = proc ->
        t.last_responses.(proc) <- Some v
      | _ -> ()
    end

(** [step_auto t ~sched] — let [sched] pick the process; [false] when
    nothing is runnable. *)
let step_auto t ~sched =
  match Explore.runnable t.config with
  | [] -> false
  | rs -> (
    match sched.Sched.choose ~runnable:rs ~step:t.config.Explore.steps with
    | None -> false
    | Some p ->
      step t ~proc:p;
      true)

(** [run_op t ~proc op] — convenience: queue [op] and run [proc] solo
    until it completes; returns the response.  Raises [No_step] if the
    operation needs more than [fuel] steps (a blocked implementation). *)
let run_op ?(fuel = 10_000) t ~proc op =
  invoke t ~proc op;
  let rec go budget =
    if budget = 0 then raise (No_step proc);
    step t ~proc;
    if busy t ~proc || has_work t ~proc then go (budget - 1)
    else
      match t.last_responses.(proc) with
      | Some v -> v
      | None -> raise (No_step proc)
  in
  go fuel

(** [drain t ~sched ~max_steps] — run scheduler-picked steps until
    quiescent or out of budget; returns the steps taken. *)
let drain ?(max_steps = 100_000) t ~sched =
  let taken = ref 0 in
  while !taken < max_steps && step_auto t ~sched do
    incr taken
  done;
  !taken

let last_response t ~proc =
  check_proc t proc;
  t.last_responses.(proc)

let history t = Explore.history t.config
let steps t = t.config.Explore.steps

(** [verdict t ~spec] — the eventual-linearizability verdict of the
    session's history so far. *)
let verdict t ~spec = Elin_checker.Eventual.check_spec spec (history t)

let is_linearizable t ~spec =
  Elin_checker.Engine.linearizable (Elin_checker.Engine.for_spec spec)
    (history t)

(** Interactive sessions: drive an implementation operation by
    operation, step by step, and ask for consistency verdicts at any
    point — the library's downstream-facing facade.  Deterministic
    given the seed. *)

open Elin_spec
open Elin_history
open Elin_runtime

type t

val create : ?seed:int -> Impl.t -> procs:int -> t

val procs : t -> int

(** The process has an operation in flight. *)
val busy : t -> proc:int -> bool

(** The process can take a step (mid-operation or queued invocation). *)
val has_work : t -> proc:int -> bool

(** Queue [op] as the process's next operation; it starts (emitting its
    invocation event) when the process is next stepped while idle. *)
val invoke : t -> proc:int -> Op.t -> unit

exception No_step of int

(** Advance one atomic step; adversary branching resolves through the
    session PRNG.  Raises {!No_step} if the process has nothing to do. *)
val step : t -> proc:int -> unit

(** Let [sched] pick the process; [false] when nothing is runnable. *)
val step_auto : t -> sched:Sched.t -> bool

(** Queue [op] and run [proc] solo to completion; returns the
    response. *)
val run_op : ?fuel:int -> t -> proc:int -> Op.t -> Value.t

(** Run scheduler-picked steps until quiescent or out of budget;
    returns the number of steps taken. *)
val drain : ?max_steps:int -> t -> sched:Sched.t -> int

(** Response of the process's most recently completed operation. *)
val last_response : t -> proc:int -> Value.t option

val history : t -> History.t
val steps : t -> int

val verdict : t -> spec:Spec.t -> Elin_checker.Eventual.verdict
val is_linearizable : t -> spec:Spec.t -> bool

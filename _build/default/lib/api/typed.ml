(** Typed object handles: OCaml-typed front ends over {!Session}, so a
    downstream user can drive a shared counter or register without
    touching [Value.t] plumbing.

    Each handle pairs a session with a process id; operations run the
    process solo to completion ([Session.run_op]) — for manual
    interleaving control, drop down to {!Session} directly. *)

open Elin_spec
open Elin_runtime

type handle = { session : Session.t; proc : int }

let handle session ~proc = { session; proc }

(** Fetch&increment counters. *)
module Counter = struct
  type t = handle

  (** [create ?seed ?impl ~procs ()] — defaults to the linearizable
      board-based implementation. *)
  let create ?seed ?(impl = Impls.fai_from_board ()) ~procs () =
    Session.create ?seed impl ~procs

  let fetch_inc (h : t) =
    Value.to_int (Session.run_op h.session ~proc:h.proc Op.fetch_inc)
end

(** Read/write registers. *)
module Register_handle = struct
  type t = handle

  let create ?seed ?(impl = Impl.of_spec (Register.spec ())) ~procs () =
    Session.create ?seed impl ~procs

  let read (h : t) = Value.to_int (Session.run_op h.session ~proc:h.proc Op.read)

  let write (h : t) v =
    Value.to_unit (Session.run_op h.session ~proc:h.proc (Op.write v))
end

(** Test&set bits. *)
module Test_and_set = struct
  type t = handle

  (** Defaults to the paper's communication-free eventually
      linearizable implementation (Section 4). *)
  let create ?seed ?(impl = Elin_core.Ev_testandset.impl ()) ~procs () =
    Session.create ?seed impl ~procs

  (** [test_and_set h] — [true] iff this call won (read 0). *)
  let test_and_set (h : t) =
    Value.equal (Session.run_op h.session ~proc:h.proc Op.test_and_set)
      (Value.int 0)
end

(** Consensus objects. *)
module Consensus = struct
  type t = handle

  (** Defaults to the Proposals-array algorithm (Prop. 16). *)
  let create ?seed ?impl ~procs () =
    let impl =
      match impl with
      | Some i -> i
      | None -> Elin_core.Ev_consensus.impl ~procs ()
    in
    Session.create ?seed impl ~procs

  let propose (h : t) v =
    Value.to_int (Session.run_op h.session ~proc:h.proc (Op.propose v))
end

(** Typed object handles over {!Session}: drive shared objects with
    OCaml-typed operations.  Operations run their process solo to
    completion; for manual interleaving control use {!Session}. *)

open Elin_runtime

type handle

(** [handle session ~proc] — the view of [session] through process
    [proc]. *)
val handle : Session.t -> proc:int -> handle

module Counter : sig
  type t = handle

  (** Defaults to the wait-free linearizable board implementation. *)
  val create : ?seed:int -> ?impl:Impl.t -> procs:int -> unit -> Session.t

  val fetch_inc : t -> int
end

module Register_handle : sig
  type t = handle

  val create : ?seed:int -> ?impl:Impl.t -> procs:int -> unit -> Session.t
  val read : t -> int
  val write : t -> int -> unit
end

module Test_and_set : sig
  type t = handle

  (** Defaults to the paper's communication-free eventually
      linearizable implementation (Section 4). *)
  val create : ?seed:int -> ?impl:Impl.t -> procs:int -> unit -> Session.t

  (** [true] iff this call won (read 0). *)
  val test_and_set : t -> bool
end

module Consensus : sig
  type t = handle

  (** Defaults to the Proposals-array algorithm (Prop. 16). *)
  val create : ?seed:int -> ?impl:Impl.t -> procs:int -> unit -> Session.t

  val propose : t -> int -> int
end

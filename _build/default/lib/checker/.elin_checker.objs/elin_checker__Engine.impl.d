lib/checker/engine.ml: Array Bitset Bool Elin_history Elin_kernel Elin_spec Hashtbl History List Operation Option Spec Value

lib/checker/engine.mli: Elin_history Elin_spec History Operation Spec Value

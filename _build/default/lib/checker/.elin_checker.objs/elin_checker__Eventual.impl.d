lib/checker/eventual.ml: Elin_history Engine Format History Option Weak

lib/checker/eventual.mli: Elin_history Elin_spec Engine Format History Spec Weak

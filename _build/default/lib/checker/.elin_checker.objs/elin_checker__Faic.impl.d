lib/checker/faic.ml: Array Elin_history Elin_kernel Elin_spec Event Eventual Hashtbl History List Matching Operation Value

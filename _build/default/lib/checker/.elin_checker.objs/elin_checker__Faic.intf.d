lib/checker/faic.mli: Elin_history Eventual History Operation

lib/checker/justify.ml: Array Bitset Bool Elin_kernel Elin_spec Hashtbl List Spec Value

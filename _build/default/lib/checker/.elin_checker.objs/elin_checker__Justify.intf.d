lib/checker/justify.mli: Elin_spec Op Spec Value

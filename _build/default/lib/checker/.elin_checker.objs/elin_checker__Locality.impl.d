lib/checker/locality.ml: Array Elin_history Elin_spec Engine Event Eventual History List Op Value Weak

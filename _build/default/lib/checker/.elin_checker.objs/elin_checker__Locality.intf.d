lib/checker/locality.mli: Elin_history Engine Eventual History Weak

lib/checker/oracle.ml: Elin_history Elin_spec History List Operation Spec Value

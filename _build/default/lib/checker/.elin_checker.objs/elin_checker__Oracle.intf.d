lib/checker/oracle.mli: Elin_history Elin_spec History Spec

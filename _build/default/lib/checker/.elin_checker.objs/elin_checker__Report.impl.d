lib/checker/report.ml: Elin_history Elin_spec Engine Event Eventual Format History List Op Operation Option Value Weak

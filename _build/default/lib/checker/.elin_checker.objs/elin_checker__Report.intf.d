lib/checker/report.mli: Elin_history Elin_spec Format History Operation Spec Value

lib/checker/serafini.ml: Elin_history Elin_spec Event Format History List Op Option Value

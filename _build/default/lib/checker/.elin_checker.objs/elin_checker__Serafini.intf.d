lib/checker/serafini.mli: Elin_history Format History

lib/checker/weak.mli: Elin_history Elin_spec History Operation Spec

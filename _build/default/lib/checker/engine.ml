(** The generic t-linearization search engine.

    Decides Definition 2 of the paper for finite histories over any
    finite-nondeterminism specs: is there a legal sequential history S
    such that

    - every operation invoked in S is invoked in H,
    - every operation completed in H is completed in S,
    - if op1's response precedes op2's invocation and both events
      survive the removal of the first [t] events, and op2 is in S,
      then op1 precedes op2 in S, and
    - every operation whose response survives the removal keeps its
      response in S?

    The search is a Wing–Gong-style DFS over "next operation of S"
    choices, with failure memoization keyed on (set of operations
    already placed, object-state vector).  Operations completed within
    the first [t] events may be reordered arbitrarily and may change
    responses; pending operations may be included or dropped.

    Multi-object histories are handled directly (a sequential history
    is legal iff each per-object projection is legal, cf. [11]), which
    the locality experiments (Lemma 7) exploit. *)

open Elin_kernel
open Elin_spec
open Elin_history

type config = {
  (* Spec of each object appearing in the history. *)
  spec_of_obj : int -> Spec.t;
  (* Give up after this many DFS node expansions (None = no budget).
     Exceeding the budget raises [Budget_exceeded]. *)
  node_budget : int option;
  (* Failure memoization on (placed set, state vector); disabling it
     exists only for the ablation benchmark. *)
  memoize : bool;
}

exception Budget_exceeded

let config ?node_budget ?(memoize = true) spec_of_obj =
  { spec_of_obj; node_budget; memoize }

(** One-object convenience. *)
let for_spec ?node_budget ?memoize spec =
  config ?node_budget ?memoize (fun _ -> spec)

type verdict = { ok : bool; nodes_explored : int }

(* A memo key: placed-set plus the per-object state vector. *)
module Key = struct
  type t = Bitset.t * Value.t array

  let equal (b1, s1) (b2, s2) = Bitset.equal b1 b2 && s1 = s2
  let hash (b, s) = Hashtbl.hash (Bitset.hash b, Array.map Value.hash s)
end

module Memo = Hashtbl.Make (Key)

(** [search cfg h ~t] decides t-linearizability of [h]. *)
let search cfg h ~t =
  let n = History.n_ops h in
  let ops = History.ops_array h in
  let objs = Array.of_list (History.objs h) in
  let obj_slot =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i o -> Hashtbl.replace tbl o i) objs;
    fun o -> Hashtbl.find tbl o
  in
  let init_states = Array.map (fun o -> Spec.initial (cfg.spec_of_obj o)) objs in
  (* completed_mask: operations that must be placed. *)
  let completed = Array.map Operation.is_complete ops in
  let n_completed = Array.fold_left (fun acc c -> acc + Bool.to_int c) 0 completed in
  (* Response constraint: Some r if the response event index >= t. *)
  let fixed_resp =
    Array.map
      (fun (o : Operation.t) ->
        match o.resp with
        | Some (v, ri) when ri >= t -> Some v
        | Some _ | None -> None)
      ops
  in
  (* Real-time predecessors: pred.(i) lists ops that must precede op i
     whenever op i is placed.  Only pairs whose response/invocation
     events both survive the cut count. *)
  let pred =
    Array.init n (fun i ->
        let oi = ops.(i) in
        if oi.Operation.inv < t then []
        else
          List.filter_map
            (fun (oj : Operation.t) ->
              match oj.resp with
              | Some (_, rj) when rj >= t && rj < oi.Operation.inv ->
                Some oj.Operation.id
              | Some _ | None -> None)
            (Array.to_list ops))
  in
  let nodes = ref 0 in
  let bump () =
    incr nodes;
    match cfg.node_budget with
    | Some b when !nodes > b -> raise Budget_exceeded
    | _ -> ()
  in
  let memo = Memo.create 1024 in
  let rec dfs placed states n_placed_completed =
    bump ();
    if n_placed_completed = n_completed then true
    else begin
      let key = (placed, states) in
      if cfg.memoize && Memo.mem memo key then false
      else begin
        let success = ref false in
        let i = ref 0 in
        while (not !success) && !i < n do
          let id = !i in
          incr i;
          if not (Bitset.mem placed id) then begin
            let o = ops.(id) in
            let ready = List.for_all (Bitset.mem placed) pred.(id) in
            if ready then begin
              let slot = obj_slot o.Operation.obj in
              let spec = cfg.spec_of_obj o.Operation.obj in
              let transitions = Spec.apply spec states.(slot) o.Operation.op in
              let transitions =
                match fixed_resp.(id) with
                | Some r ->
                  List.filter (fun (r', _) -> Value.equal r r') transitions
                | None -> transitions
              in
              List.iter
                (fun (_, q') ->
                  if not !success then begin
                    let states' = Array.copy states in
                    states'.(slot) <- q';
                    let placed' = Bitset.add placed id in
                    let n' =
                      n_placed_completed + Bool.to_int completed.(id)
                    in
                    if dfs placed' states' n' then success := true
                  end)
                transitions
            end
          end
        done;
        if cfg.memoize && not !success then Memo.replace memo key ();
        !success
      end
    end
  in
  let ok = dfs (Bitset.empty n) init_states 0 in
  { ok; nodes_explored = !nodes }

(** [t_linearizable cfg h ~t] — the boolean verdict. *)
let t_linearizable cfg h ~t = (search cfg h ~t).ok

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability [11]. *)
let linearizable cfg h = t_linearizable cfg h ~t:0

(** [witness cfg h ~t] additionally reconstructs a t-linearization as a
    behaviour list (operation, response) in linearization order, or
    [None]. *)
let witness cfg h ~t =
  let n = History.n_ops h in
  let ops = History.ops_array h in
  let objs = Array.of_list (History.objs h) in
  let obj_slot =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i o -> Hashtbl.replace tbl o i) objs;
    fun o -> Hashtbl.find tbl o
  in
  let init_states = Array.map (fun o -> Spec.initial (cfg.spec_of_obj o)) objs in
  let completed = Array.map Operation.is_complete ops in
  let n_completed = Array.fold_left (fun acc c -> acc + Bool.to_int c) 0 completed in
  let fixed_resp =
    Array.map
      (fun (o : Operation.t) ->
        match o.resp with
        | Some (v, ri) when ri >= t -> Some v
        | Some _ | None -> None)
      ops
  in
  let pred =
    Array.init n (fun i ->
        let oi = ops.(i) in
        if oi.Operation.inv < t then []
        else
          List.filter_map
            (fun (oj : Operation.t) ->
              match oj.resp with
              | Some (_, rj) when rj >= t && rj < oi.Operation.inv ->
                Some oj.Operation.id
              | Some _ | None -> None)
            (Array.to_list ops))
  in
  let memo = Memo.create 1024 in
  let rec dfs placed states n_placed_completed acc =
    if n_placed_completed = n_completed then Some (List.rev acc)
    else begin
      let key = (placed, states) in
      if Memo.mem memo key then None
      else begin
        let result = ref None in
        let i = ref 0 in
        while Option.is_none !result && !i < n do
          let id = !i in
          incr i;
          if not (Bitset.mem placed id) then begin
            let o = ops.(id) in
            if List.for_all (Bitset.mem placed) pred.(id) then begin
              let slot = obj_slot o.Operation.obj in
              let spec = cfg.spec_of_obj o.Operation.obj in
              let transitions = Spec.apply spec states.(slot) o.Operation.op in
              let transitions =
                match fixed_resp.(id) with
                | Some r ->
                  List.filter (fun (r', _) -> Value.equal r r') transitions
                | None -> transitions
              in
              List.iter
                (fun (r, q') ->
                  if Option.is_none !result then begin
                    let states' = Array.copy states in
                    states'.(slot) <- q';
                    match
                      dfs (Bitset.add placed id) states'
                        (n_placed_completed + Bool.to_int completed.(id))
                        ((o, r) :: acc)
                    with
                    | Some _ as w -> result := w
                    | None -> ()
                  end)
                transitions
            end
          end
        done;
        if Option.is_none !result then Memo.replace memo key ();
        !result
      end
    end
  in
  dfs (Bitset.empty n) init_states 0 []

(** The generic t-linearization search engine (Definition 2).

    Decides, for finite histories over any finite-nondeterminism specs,
    whether a legal sequential history S exists such that: every
    operation invoked in S is invoked in H; every operation completed
    in H is completed in S; real-time order is preserved among
    operations both of whose relevant events survive removal of the
    first [t] events; and responses that survive the removal are kept.

    Wing–Gong-style DFS with failure memoization on (placed-operation
    set, object-state vector); handles multi-object histories
    directly. *)

open Elin_spec
open Elin_history

type config

exception Budget_exceeded

(** [config ?node_budget ?memoize spec_of_obj] — [spec_of_obj] maps
    each object id appearing in checked histories to its spec;
    exceeding [node_budget] DFS expansions raises {!Budget_exceeded};
    [memoize] (default true) toggles failure memoization — exposed only
    for the ablation benchmark. *)
val config : ?node_budget:int -> ?memoize:bool -> (int -> Spec.t) -> config

(** One-object convenience. *)
val for_spec : ?node_budget:int -> ?memoize:bool -> Spec.t -> config

type verdict = { ok : bool; nodes_explored : int }

(** [search cfg h ~t] — full verdict with exploration stats. *)
val search : config -> History.t -> t:int -> verdict

val t_linearizable : config -> History.t -> t:int -> bool

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability (Herlihy & Wing). *)
val linearizable : config -> History.t -> bool

(** [witness cfg h ~t] additionally reconstructs a t-linearization, as
    operations paired with their responses in linearization order. *)
val witness :
  config -> History.t -> t:int -> (Operation.t * Value.t) list option

(** Eventual linearizability of finite histories (Definitions 3–4).

    For a finite history over total object types, some [t <=
    length H] always works (the paper notes t-linearizability for
    some t is trivially a liveness property), so the interesting
    quantity is the *minimal* stabilization bound [min_t].  By
    Lemma 5 t-linearizability is monotone in [t], so [min_t] is
    found by binary search over the engine.

    The full verdict pairs the liveness part with the safety part
    (weak consistency, Definition 1): a history is eventually
    linearizable iff both hold. *)

open Elin_history

type verdict = {
  weakly_consistent : bool;
  (* Smallest t such that the history is t-linearizable; [None] when
     even [t = length] fails (possible only for partial/exotic specs). *)
  min_t : int option;
}

let is_eventually_linearizable v =
  v.weakly_consistent && Option.is_some v.min_t

(** [min_t check ~len] — generic monotone binary search: [check t]
    must be monotone in [t] (Lemma 5).  Returns the least [t in
    [0, len]] with [check t], or [None]. *)
let min_t_search check ~len =
  if not (check len) then None
  else begin
    (* Invariant: check hi holds, check (lo - 1) fails (lo = 0 ok). *)
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if check mid then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(** [min_t cfg h] — least stabilization bound via the generic engine. *)
let min_t (cfg : Engine.config) h =
  min_t_search (fun t -> Engine.t_linearizable cfg h ~t) ~len:(History.length h)

(** [check ecfg wcfg h] — full eventual-linearizability verdict. *)
let check (ecfg : Engine.config) (wcfg : Weak.config) h =
  {
    weakly_consistent = Weak.is_weakly_consistent wcfg h;
    min_t = min_t ecfg h;
  }

(** [check_spec spec h] — one-object convenience sharing a spec. *)
let check_spec ?node_budget spec h =
  check (Engine.for_spec ?node_budget spec) (Weak.for_spec ?node_budget spec) h

let pp_verdict ppf v =
  Format.fprintf ppf "{weakly_consistent=%b; min_t=%a}" v.weakly_consistent
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "none")
       Format.pp_print_int)
    v.min_t

(** Eventual linearizability of finite histories (Definitions 3–4):
    the conjunction of weak consistency and t-linearizability for some
    t.  For finite histories over total types some [t <= length]
    always works, so the informative quantity is the minimal
    stabilization bound [min_t], found by binary search (monotonicity
    is Lemma 5). *)

open Elin_spec
open Elin_history

type verdict = {
  weakly_consistent : bool;
  min_t : int option;
      (** least t such that the history is t-linearizable; [None] only
          for partial/exotic specs *)
}

val is_eventually_linearizable : verdict -> bool

(** [min_t_search check ~len] — generic least-t search for a monotone
    predicate over [0, len]. *)
val min_t_search : (int -> bool) -> len:int -> int option

val min_t : Engine.config -> History.t -> int option

val check : Engine.config -> Weak.config -> History.t -> verdict

(** One-object convenience sharing a spec. *)
val check_spec : ?node_budget:int -> Spec.t -> History.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit

(** Justifiable responses: the search behind Figure 1's line 13.

    Given a pool of announced operations, decide whether "a permutation
    of a subset of the operations (including all required ones) yields
    a legal sequential execution where [op] returns [resp]".  This is
    the same search as Definition 1's per-operation condition
    ([Weak.op_ok]) but over an explicit op pool rather than a history,
    so the Prop. 11 guard can run it online. *)

open Elin_kernel
open Elin_spec

module Key = struct
  type t = Bitset.t * Value.t

  let equal (b1, s1) (b2, s2) = Bitset.equal b1 b2 && Value.equal s1 s2
  let hash (b, s) = Hashtbl.hash (Bitset.hash b, Value.hash s)
end

module Memo = Hashtbl.Make (Key)

(** [justifiable spec ~pool ~required ~op ~resp] — [required] lists
    indices into [pool] that must be placed before the final [op].
    Single-object (all pool operations target the same spec). *)
let justifiable spec ~pool ~required ~op ~resp =
  let pool = Array.of_list pool in
  let n = Array.length pool in
  let is_required = Array.make n false in
  List.iter (fun i -> is_required.(i) <- true) required;
  let n_required = List.length required in
  let memo = Memo.create 64 in
  let rec dfs placed state n_placed_required =
    if n_placed_required = n_required
       && Spec.is_legal_response spec state op resp
    then true
    else begin
      let key = (placed, state) in
      if Memo.mem memo key then false
      else begin
        let success = ref false in
        let i = ref 0 in
        while (not !success) && !i < n do
          let id = !i in
          incr i;
          if not (Bitset.mem placed id) then
            List.iter
              (fun (_, q') ->
                if not !success then
                  let n' = n_placed_required + Bool.to_int is_required.(id) in
                  if dfs (Bitset.add placed id) q' n' then success := true)
              (List.sort_uniq
                 (fun (_, q1) (_, q2) -> Value.compare q1 q2)
                 (Spec.apply spec state pool.(id)))
        done;
        if not !success then Memo.replace memo key ();
        !success
      end
    end
  in
  dfs (Bitset.empty n) (Spec.initial spec) 0

(** Justifiable responses: the search behind Figure 1's line 13 —
    "a permutation of a subset of the announced operations (including
    all required ones) yields a legal sequential execution where [op]
    returns [resp]".  The same search as Definition 1's per-operation
    condition, over an explicit operation pool. *)

open Elin_spec

(** [justifiable spec ~pool ~required ~op ~resp] — [required] lists
    indices into [pool] that must appear before the final [op].
    Single-object. *)
val justifiable :
  Spec.t ->
  pool:Op.t list ->
  required:int list ->
  op:Op.t ->
  resp:Value.t ->
  bool

(** Locality of eventual linearizability (Lemmas 7, 8; Proposition 9).

    For a history over finitely many objects:
    - H is t-linearizable for some t iff each H|o is t_o-linearizable
      for some t_o (Lemma 7);
    - H is weakly consistent iff each H|o is (Lemma 8).

    The "if" direction of Lemma 7 is constructive: choose t large
    enough that the first t events of H include the first t_o events of
    each H|o.  [compose_min_t] implements exactly that bound, which the
    tests compare against the direct multi-object engine. *)

open Elin_spec
open Elin_history

(** [per_object_min_t cfg h] — for each object o of [h], the minimal
    t_o such that H|o is t_o-linearizable (via the generic engine). *)
let per_object_min_t (cfg : Engine.config) h =
  List.map
    (fun o ->
      let ho = History.proj_obj h o in
      (o, Eventual.min_t cfg ho))
    (History.objs h)

(** [compose_min_t h per_obj] — the Lemma 7 "if"-direction bound: the
    least t such that for every object o, the first t events of H
    contain the first t_o events of H|o.  Returns [None] if any
    per-object bound is missing. *)
let compose_min_t h per_obj =
  let rec go acc = function
    | [] -> Some acc
    | (_, None) :: _ -> None
    | (o, Some t_o) :: rest ->
      if t_o = 0 then go acc rest
      else begin
        let index_map = History.index_map_obj h o in
        (* The t_o-th event of H|o sits at global index
           [index_map.(t_o - 1)]; we need t exceeding it. *)
        go (max acc (index_map.(t_o - 1) + 1)) rest
      end
  in
  go 0 per_obj

(** [eventually_linearizable_local cfg wcfg h] — Proposition 9 applied
    as a decision procedure: weak consistency checked per object
    (Lemma 8) and the liveness part composed from per-object bounds
    (Lemma 7).  Sound and complete for finite histories over finitely
    many objects. *)
let eventually_linearizable_local (cfg : Engine.config) (wcfg : Weak.config) h
    =
  let weak_ok =
    List.for_all
      (fun o -> Weak.is_weakly_consistent wcfg (History.proj_obj h o))
      (History.objs h)
  in
  let composed = compose_min_t h (per_object_min_t cfg h) in
  { Eventual.weakly_consistent = weak_ok; min_t = composed }

(** The paper's Proposition 9 counterexample family (Section 3.2): the
    sequential history over registers R_1 ... R_k

    {v write_p R_i 1; ack; read_q R_i; 0   for i = 1 .. k v}

    Every projection H|R_i is eventually linearizable, yet the minimal
    whole-history bound grows with k — in the infinite limit the
    history is not eventually linearizable.  [register_family k]
    builds the k-object instance; tests confirm per-object min_t stays
    constant while the composed bound diverges linearly. *)
let register_family k =
  let events =
    List.concat_map
      (fun i ->
        [
          Event.invoke ~proc:0 ~obj:i (Op.write 1);
          Event.respond ~proc:0 ~obj:i Value.unit;
          Event.invoke ~proc:1 ~obj:i Op.read;
          Event.respond ~proc:1 ~obj:i (Value.int 0);
        ])
      (List.init k (fun i -> i))
  in
  History.of_events events

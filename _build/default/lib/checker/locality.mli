(** Locality of eventual linearizability (Lemmas 7, 8; Proposition 9):
    per-object verdicts compose for histories over finitely many
    objects, constructively via the Lemma 7 bound. *)

open Elin_history

(** [per_object_min_t cfg h] — for each object of [h], the minimal
    bound of its projection. *)
val per_object_min_t : Engine.config -> History.t -> (int * int option) list

(** [compose_min_t h per_obj] — the Lemma 7 "if"-direction bound: the
    least t whose first t events of H contain the first t_o events of
    each H|o; [None] if any per-object bound is missing. *)
val compose_min_t : History.t -> (int * int option) list -> int option

(** Proposition 9 as a decision procedure: weak consistency per object
    (Lemma 8), liveness composed from per-object bounds (Lemma 7). *)
val eventually_linearizable_local :
  Engine.config -> Weak.config -> History.t -> Eventual.verdict

(** The paper's Proposition 9 counterexample family (Section 3.2): k
    registers, each written 1 by p then read 0 by q; per-object bounds
    stay constant while the whole-history bound diverges with k. *)
val register_family : int -> History.t

(** Brute-force reference checkers — Definitions 1 and 2 transcribed
    literally, with explicit enumeration of permutations, pending-op
    subsets and response assignments.

    Deliberately naive and structurally independent of [Engine] (no
    shared search code, no memoization, no pruning beyond feasibility),
    so that agreement between the two on exhaustively enumerated
    micro-histories validates the optimized checkers against the
    definitions themselves.  Only usable for histories with a handful
    of operations. *)

open Elin_spec
open Elin_history

(* All sublists of [xs]. *)
let rec sublists = function
  | [] -> [ [] ]
  | x :: rest ->
    let subs = sublists rest in
    subs @ List.map (fun s -> x :: s) subs

(* All permutations of [xs]. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) xs in
        List.map (fun p -> x :: p) (permutations rest))
      xs

(* All ways to assign a response and thread the state through a
   sequence, where [allowed] restricts each operation's response. *)
let rec legal_assignments spec_of_obj states seq ~allowed =
  match seq with
  | [] -> true
  | (o : Operation.t) :: rest ->
    let spec = spec_of_obj o.Operation.obj in
    let state =
      match List.assoc_opt o.Operation.obj states with
      | Some q -> q
      | None -> Spec.initial spec
    in
    List.exists
      (fun (r, q') ->
        allowed o r
        && legal_assignments spec_of_obj
             ((o.Operation.obj, q') :: List.remove_assoc o.Operation.obj states)
             rest ~allowed)
      (Spec.apply spec state o.Operation.op)

(** [t_linearizable spec_of_obj h ~t] — Definition 2, literally:
    enumerate every subset of pending operations, every permutation of
    (completed ∪ subset), check the real-time condition on surviving
    event pairs, and search a legal response assignment that keeps the
    responses surviving the cut. *)
let t_linearizable spec_of_obj h ~t =
  let completed = History.complete_ops h in
  let pending = History.pending_ops h in
  let respects_real_time seq =
    (* "if op1's response is before op2's invocation and both of these
       events are in H', and op2 is in S, then op1 precedes op2 in S" *)
    let pos o =
      let rec go i = function
        | [] -> None
        | (x : Operation.t) :: rest ->
          if x.Operation.id = o then Some i else go (i + 1) rest
      in
      go 0 seq
    in
    List.for_all
      (fun (o1 : Operation.t) ->
        match o1.Operation.resp with
        | Some (_, r1) when r1 >= t ->
          List.for_all
            (fun (o2 : Operation.t) ->
              if o2.Operation.inv >= t && r1 < o2.Operation.inv then
                match pos o1.Operation.id, pos o2.Operation.id with
                | Some p1, Some p2 -> p1 < p2
                | _, None -> true (* op2 not in S *)
                | None, Some _ -> false (* op1 completed, must be in S *)
              else true)
            (History.ops h)
        | Some _ | None -> true)
      (History.ops h)
  in
  let allowed (o : Operation.t) r =
    match o.Operation.resp with
    | Some (v, ri) when ri >= t -> Value.equal r v
    | Some _ | None -> true
  in
  List.exists
    (fun chosen_pending ->
      List.exists
        (fun seq ->
          respects_real_time seq
          && legal_assignments spec_of_obj [] seq ~allowed)
        (permutations (completed @ chosen_pending)))
    (sublists pending)

let linearizable spec_of_obj h = t_linearizable spec_of_obj h ~t:0

(** [min_t spec_of_obj h] — linear scan (no monotonicity assumption:
    the oracle does not even rely on Lemma 5). *)
let min_t spec_of_obj h =
  let len = History.length h in
  let rec go t =
    if t > len then None
    else if t_linearizable spec_of_obj h ~t then Some t
    else go (t + 1)
  in
  go 0

(** [weakly_consistent spec_of_obj h] — Definition 1, literally: for
    every completed [op], search a subset of the operations invoked
    before its response, containing all same-process predecessors,
    some permutation of which forms a legal sequential history ending
    with [op] returning its actual response. *)
let weakly_consistent spec_of_obj h =
  List.for_all
    (fun (op : Operation.t) ->
      match op.Operation.resp with
      | None -> true
      | Some (v, ridx) ->
        let candidates =
          List.filter
            (fun (o : Operation.t) ->
              o.Operation.id <> op.Operation.id && o.Operation.inv < ridx)
            (History.ops h)
        in
        let required =
          List.filter
            (fun (o : Operation.t) ->
              o.Operation.proc = op.Operation.proc
              && o.Operation.inv < op.Operation.inv)
            candidates
        in
        let allowed (o : Operation.t) r =
          if o.Operation.id = op.Operation.id then Value.equal r v else true
        in
        List.exists
          (fun subset ->
            List.for_all
              (fun (r : Operation.t) ->
                List.exists
                  (fun (s : Operation.t) -> s.Operation.id = r.Operation.id)
                  subset)
              required
            && List.exists
                 (fun seq ->
                   legal_assignments spec_of_obj [] (seq @ [ op ]) ~allowed)
                 (permutations subset))
          (sublists candidates))
    (History.ops h)

(** Brute-force reference checkers: Definitions 1 and 2 transcribed
    literally with explicit enumeration, structurally independent of
    the optimized [Engine]/[Weak]/[Faic] checkers.  Exponential;
    usable only on micro-histories — exactly their purpose: the
    definitional ground truth the optimized checkers are validated
    against. *)

open Elin_spec
open Elin_history

val t_linearizable : (int -> Spec.t) -> History.t -> t:int -> bool
val linearizable : (int -> Spec.t) -> History.t -> bool

(** Linear scan; does not even rely on Lemma 5's monotonicity. *)
val min_t : (int -> Spec.t) -> History.t -> int option

val weakly_consistent : (int -> Spec.t) -> History.t -> bool

(** Full per-history analysis reports: everything the checkers can say
    about a history, in one record with a pretty-printer — the payload
    behind [elin check] and handy for interactive debugging. *)

open Elin_spec
open Elin_history

type concurrency = {
  max_overlap : int;   (* peak number of simultaneously open operations *)
  mean_overlap : float;
}

type t = {
  events : int;
  operations : int;
  complete : int;
  pending : int;
  procs : int;
  objs : int;
  concurrency : concurrency;
  linearizable : bool;
  weakly_consistent : bool;
  violating_op : Operation.t option;
  min_t : int option;
  (* A witness linearization at the minimal cut, when one exists. *)
  witness : (Operation.t * Value.t) list option;
}

let concurrency_of h =
  let open_ops = ref 0 in
  let peak = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      (match e.Event.payload with
      | Event.Invoke _ -> incr open_ops
      | Event.Respond _ -> decr open_ops);
      peak := max !peak !open_ops;
      total := !total + !open_ops)
    (History.events h);
  {
    max_overlap = !peak;
    mean_overlap =
      (if History.length h = 0 then 0.
       else float_of_int !total /. float_of_int (History.length h));
  }

(** [analyze ?node_budget spec h] — the full report (single-object
    histories; use per-object projections plus [Locality] for
    multi-object ones). *)
let analyze ?node_budget spec h =
  let ecfg = Engine.for_spec ?node_budget spec in
  let wcfg = Weak.for_spec ?node_budget spec in
  let min_t = Eventual.min_t ecfg h in
  let violating_op =
    match Weak.check wcfg h with Ok () -> None | Error o -> Some o
  in
  {
    events = History.length h;
    operations = History.n_ops h;
    complete = List.length (History.complete_ops h);
    pending = List.length (History.pending_ops h);
    procs = List.length (History.procs h);
    objs = List.length (History.objs h);
    concurrency = concurrency_of h;
    linearizable = min_t = Some 0;
    weakly_consistent = Option.is_none violating_op;
    violating_op;
    min_t;
    witness = Option.bind min_t (fun t -> Engine.witness ecfg h ~t);
  }

let is_eventually_linearizable r = r.weakly_consistent && r.min_t <> None

let pp ppf r =
  Format.fprintf ppf
    "@[<v>events: %d  operations: %d (%d complete, %d pending)@,\
     processes: %d  objects: %d  overlap: max %d, mean %.2f@,\
     linearizable: %b@,\
     weakly consistent: %b%a@,\
     min stabilization bound: %a@,\
     eventually linearizable: %b%a@]"
    r.events r.operations r.complete r.pending r.procs r.objs
    r.concurrency.max_overlap r.concurrency.mean_overlap r.linearizable
    r.weakly_consistent
    (fun ppf -> function
      | Some o -> Format.fprintf ppf " (violation: %a)" Operation.pp o
      | None -> ())
    r.violating_op
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "none")
       Format.pp_print_int)
    r.min_t
    (is_eventually_linearizable r)
    (fun ppf -> function
      | Some w when List.length w <= 16 ->
        Format.fprintf ppf "@,witness linearization:@,  %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,  ")
             (fun ppf ((o : Operation.t), v) ->
               Format.fprintf ppf "p%d %a -> %a" o.Operation.proc Op.pp
                 o.Operation.op Value.pp v))
          w
      | Some _ | None -> ())
    r.witness

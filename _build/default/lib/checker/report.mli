(** Full per-history analysis reports: size, concurrency shape, all
    consistency verdicts, a violation culprit, and a witness
    linearization at the minimal cut. *)

open Elin_spec
open Elin_history

type concurrency = { max_overlap : int; mean_overlap : float }

type t = {
  events : int;
  operations : int;
  complete : int;
  pending : int;
  procs : int;
  objs : int;
  concurrency : concurrency;
  linearizable : bool;
  weakly_consistent : bool;
  violating_op : Operation.t option;
  min_t : int option;
  witness : (Operation.t * Value.t) list option;
}

val concurrency_of : History.t -> concurrency

(** Single-object histories; project and use [Locality] for
    multi-object ones. *)
val analyze : ?node_budget:int -> Spec.t -> History.t -> t

val is_eventually_linearizable : t -> bool
val pp : Format.formatter -> t -> unit

(** The two definitions of eventual linearizability (Section 2).

    Serafini et al. [16] define an implementation to be eventually
    linearizable when there is a {e single} bound t such that {e all}
    executions stabilize by t; Guerraoui & Ruppert deliberately weaken
    the quantifier order: {e every} execution has {e some} bound, which
    may differ per execution and even be unbounded over the
    implementation's executions.

    On a single finite history the two definitions coincide (the
    history's [min_t]); the difference is a property of history
    {e families}.  This module decides it on indexed families:

    - [family_min_ts family ~min_t ~probes] tabulates the per-history
      bound along a family;
    - [classify] calls a family [Uniformly_bounded] when the bound
      freezes on the probed tail (Serafini-style eventual
      linearizability plausibly holds), and [Diverging] when it keeps
      growing (only the per-execution definition can hold).

    The canonical separating example is the paper's own: the
    communication-free test&set is eventually linearizable
    per-execution, but delaying the second "winner" arbitrarily makes
    its stabilization bound grow without bound — no single t works for
    all executions.  [delayed_winner_family] builds that family; tests
    confirm the divergence, and confirm that the board-based
    fetch&increment with a fixed stabilization parameter is uniformly
    bounded. *)

open Elin_spec
open Elin_history

type verdict =
  | Uniformly_bounded of int   (* the frozen bound on the probed tail *)
  | Diverging of (int * int) list  (* (probe, min_t) table, strictly growing *)
  | Not_eventually_linearizable of int  (* first probe with no bound at all *)

(** [family_min_ts family ~min_t ~probes] — per-instance bounds. *)
let family_min_ts family ~min_t ~probes =
  List.map (fun i -> (i, min_t (family i))) probes

(** [classify table] — [table] must be ordered by probe. *)
let classify table =
  let rec first_missing = function
    | [] -> None
    | (i, None) :: _ -> Some i
    | (_, Some _) :: rest -> first_missing rest
  in
  match first_missing table with
  | Some i -> Not_eventually_linearizable i
  | None ->
    let bounds = List.map (fun (i, t) -> (i, Option.get t)) table in
    let rec strictly_growing = function
      | (_, a) :: ((_, b) :: _ as rest) -> a < b && strictly_growing rest
      | [ _ ] | [] -> true
    in
    (match List.rev bounds with
    | (_, last) :: (_, prev) :: _ when last = prev -> Uniformly_bounded last
    | _ ->
      if strictly_growing bounds then Diverging bounds
      else
        (* Neither frozen on the tail nor strictly growing: report the
           table; callers treat a non-monotone plateau as bounded. *)
        Uniformly_bounded (List.fold_left (fun acc (_, t) -> max acc t) 0 bounds))

(** The separating family: process 0 wins test&set immediately;
    process 1's first (also-winning) operation is delayed behind [n]
    operations of process 0.  Every member is eventually linearizable,
    yet its bound must exceed the position of p1's response — no
    uniform t exists. *)
let delayed_winner_family n =
  History.of_events
    ([
       Event.invoke ~proc:0 ~obj:0 Op.test_and_set;
       Event.respond ~proc:0 ~obj:0 (Value.int 0);
     ]
    @ List.concat_map
        (fun _ ->
          [
            Event.invoke ~proc:0 ~obj:0 Op.test_and_set;
            Event.respond ~proc:0 ~obj:0 (Value.int 1);
          ])
        (List.init n (fun i -> i))
    @ [
        Event.invoke ~proc:1 ~obj:0 Op.test_and_set;
        Event.respond ~proc:1 ~obj:0 (Value.int 0);
      ])

let pp_verdict ppf = function
  | Uniformly_bounded t -> Format.fprintf ppf "uniformly bounded (t = %d)" t
  | Diverging table ->
    Format.fprintf ppf "diverging: %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         (fun ppf (i, t) -> Format.fprintf ppf "%d↦%d" i t))
      table
  | Not_eventually_linearizable i ->
    Format.fprintf ppf "not eventually linearizable at probe %d" i

(** The two definitions of eventual linearizability (Section 2):
    Serafini et al. demand a single stabilization bound for all
    executions; Guerraoui & Ruppert allow a different, even unbounded,
    bound per execution.  This module decides the difference on indexed
    history families. *)

open Elin_history

type verdict =
  | Uniformly_bounded of int
      (** the bound frozen on the probed tail: the Serafini-style
          definition plausibly holds *)
  | Diverging of (int * int) list
      (** strictly growing (probe, min_t) table: only the
          per-execution definition can hold *)
  | Not_eventually_linearizable of int
      (** first probe with no bound at all *)

(** [family_min_ts family ~min_t ~probes] — per-instance bounds. *)
val family_min_ts :
  (int -> History.t) ->
  min_t:(History.t -> int option) ->
  probes:int list ->
  (int * int option) list

(** [classify table] — [table] ordered by probe. *)
val classify : (int * int option) list -> verdict

(** The separating family: p0 wins test&set immediately, then performs
    [n] losing operations, then p1's delayed first operation also
    "wins" — every member is eventually linearizable, but no uniform
    bound exists. *)
val delayed_winner_family : int -> History.t

val pp_verdict : Format.formatter -> verdict -> unit

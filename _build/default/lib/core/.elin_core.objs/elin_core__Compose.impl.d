lib/core/compose.ml: Array Base Cas_object Consensus_spec Elin_runtime Elin_spec Impl Op Program Spec Value

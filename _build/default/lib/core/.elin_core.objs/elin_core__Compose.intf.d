lib/core/compose.mli: Base Elin_runtime Impl

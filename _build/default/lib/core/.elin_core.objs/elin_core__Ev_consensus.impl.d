lib/core/ev_consensus.ml: Array Base Consensus_spec Elin_runtime Elin_spec Ev_base Impl List Op Program Register Value

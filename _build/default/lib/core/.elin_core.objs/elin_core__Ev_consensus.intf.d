lib/core/ev_consensus.mli: Elin_runtime Elin_spec Impl Spec Value

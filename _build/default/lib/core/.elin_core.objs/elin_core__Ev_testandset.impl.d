lib/core/ev_testandset.ml: Elin_runtime Elin_spec Impl Op Program Testandset Value

lib/core/ev_testandset.mli: Elin_runtime Elin_spec Impl

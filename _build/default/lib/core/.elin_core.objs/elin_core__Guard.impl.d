lib/core/guard.ml: Announce_board Array Base Codec Elin_checker Elin_runtime Elin_spec Impl List Op Program Register Spec Value

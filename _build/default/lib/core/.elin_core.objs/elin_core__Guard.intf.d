lib/core/guard.mli: Elin_runtime Elin_spec Impl Spec Value

lib/core/local_copy.ml: Array Elin_runtime Elin_spec Impl Program Value

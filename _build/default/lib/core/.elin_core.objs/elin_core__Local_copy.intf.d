lib/core/local_copy.mli: Elin_runtime Impl

lib/core/stabilize.ml: Array Base Elin_explore Elin_history Elin_runtime Elin_spec Explore Impl Program Sched Value

lib/core/stabilize.mli: Elin_explore Elin_history Elin_runtime Elin_spec Explore Impl Op Sched Value

lib/core/trivial.ml: Elin_explore Elin_history Elin_runtime Elin_spec Explore Format List Op Spec Value

lib/core/trivial.mli: Elin_runtime Elin_spec Format Impl Op Spec Value

lib/core/universal.ml: Array Base Codec Consensus_spec Elin_runtime Elin_spec Ev_base Impl List Op Printf Program Register Spec Value

lib/core/universal.mli: Elin_runtime Elin_spec Impl Op Spec Value

(** Implementation composition: flattening towers of implementations.

    The paper's introduction frames shared-memory computing as "raising
    the abstraction level": objects are built from objects that are
    themselves built in software.  [flatten] makes that executable:
    given an outer implementation and, for each of its base objects, an
    inner implementation of that object's type, substitute every outer
    base access by the inner programme, producing one flat
    implementation over the inner base objects.

    Process-local state composes: the flattened local value packs the
    outer local with one inner local per outer base object (each
    process owns its own inner locals, as the model prescribes).

    Caveat the tests probe rather than assume: flattening preserves
    correctness only when the inner implementations are atomic enough —
    an inner implementation whose operations are merely eventually
    linearizable yields an outer object with inherited misbehaviour,
    which is exactly the situation Theorem 12 and Prop. 15 reason
    about. *)

open Elin_spec
open Elin_runtime

let pack outer_local inner_locals =
  Value.pair outer_local (Value.list (Array.to_list inner_locals))

let unpack local =
  let outer_local, inner = Value.to_pair local in
  (outer_local, Array.of_list (Value.to_list inner))

(** [flatten ~outer ~inner] — [inner i] implements the type of
    [outer]'s base object [i].  One shared instance of each inner
    implementation replaces the corresponding outer base object. *)
let flatten ~(outer : Impl.t) ~(inner : int -> Impl.t) : Impl.t =
  let n_outer = Array.length outer.Impl.bases in
  let inners = Array.init n_outer inner in
  (* Base-index offsets for each inner instance. *)
  let offsets = Array.make n_outer 0 in
  let total =
    let acc = ref 0 in
    Array.iteri
      (fun i (im : Impl.t) ->
        offsets.(i) <- !acc;
        acc := !acc + Array.length im.Impl.bases)
      inners;
    !acc
  in
  let bases =
    Array.init total (fun j ->
        (* Find the inner instance owning flat index j. *)
        let rec owner i =
          if
            i + 1 < n_outer && j >= offsets.(i + 1)
          then owner (i + 1)
          else i
        in
        let i = owner 0 in
        inners.(i).Impl.bases.(j - offsets.(i)))
  in
  let program ~proc ~local op =
    let outer_local0, inner_locals0 = unpack local in
    (* Interpret the outer programme, running inner programmes in place
       of base accesses.  [inner_locals] threads through sequentially —
       programmes are sequential per process, so this is sound. *)
    let rec interp_outer inner_locals
        (m : (Value.t * Value.t) Program.t) : (Value.t * Value.t) Program.t =
      match m with
      | Program.Return (resp, outer_local') ->
        Program.Return (resp, pack outer_local' inner_locals)
      | Program.Access (obj, op, k) ->
        let im = inners.(obj) in
        let rec interp_inner (p : (Value.t * Value.t) Program.t) =
          match p with
          | Program.Return (resp, il') ->
            let inner_locals' = Array.copy inner_locals in
            inner_locals'.(obj) <- il';
            interp_outer inner_locals' (k resp)
          | Program.Access (iobj, iop, ik) ->
            Program.Access (offsets.(obj) + iobj, iop, fun v ->
                interp_inner (ik v))
        in
        interp_inner (im.Impl.program ~proc ~local:inner_locals.(obj) op)
    in
    interp_outer inner_locals0 (outer.Impl.program ~proc ~local:outer_local0 op)
  in
  {
    Impl.name = outer.Impl.name ^ "∘flatten";
    bases;
    local_init =
      pack outer.Impl.local_init
        (Array.map (fun (im : Impl.t) -> im.Impl.local_init) inners);
    program;
  }

(** [identity_inner base] — the trivial inner implementation: the base
    object itself, accessed atomically.  [flatten ~outer
    ~inner:(fun i -> identity_inner outer.bases.(i))] is behaviourally
    identical to [outer] (tests verify history equality). *)
let identity_inner (base : Base.t) : Impl.t = Impl.direct base

(** Consensus from compare&swap: the canonical inner implementation for
    stacking the universal construction on hardware primitives.
    [propose v] CASes the cell from [undecided] and reads the winner —
    two atomic accesses, wait-free, linearizable. *)
let consensus_from_cas () : Impl.t =
  let undecided = Consensus_spec.undecided in
  let cas_spec =
    (* A CAS cell over arbitrary values, starting at [undecided]. *)
    Spec.deterministic ~name:"cas-cell" ~initial:undecided
      ~apply:Cas_object.apply
      ~all_ops:[ Op.read ]
  in
  let ( let* ) = Program.bind in
  {
    Impl.name = "consensus/cas";
    bases = [| Base.linearizable cas_spec |];
    local_init = Value.unit;
    program =
      (fun ~proc:_ ~local op ->
        match Op.name op, Op.args op with
        | "propose", [ v ] ->
          let* _ = Program.access 0 (Op.make "cas" ~args:[ undecided; v ]) in
          let* winner = Program.access 0 Op.read in
          Program.return (winner, local)
        | other, _ -> invalid_arg ("consensus/cas: unknown operation " ^ other));
  }

(** Implementation composition: substitute every base access of an
    outer implementation by an inner implementation's programme,
    flattening a tower of implementations into one — the
    introduction's "raising the abstraction level", executable. *)

open Elin_runtime

(** [flatten ~outer ~inner] — [inner i] implements the type of
    [outer]'s base object [i]; one shared inner instance replaces each
    outer base. *)
val flatten : outer:Impl.t -> inner:(int -> Impl.t) -> Impl.t

(** The trivial inner implementation: the base object itself, accessed
    atomically.  Flattening with it is behaviourally identical to the
    outer implementation. *)
val identity_inner : Base.t -> Impl.t

(** Consensus from compare&swap (two atomic accesses, wait-free,
    linearizable): the canonical inner for stacking the universal
    construction on hardware primitives. *)
val consensus_from_cas : unit -> Impl.t

(** Eventually linearizable consensus from registers (Proposition 16).

    The paper's Proposals-array algorithm, verbatim:

    {v
    Propose(v):
      if Proposal[i] = ⊥ then Proposal[i] := v
      read Proposal[1..n] and return leftmost non-⊥ value
    v}

    Wait-free and eventually linearizable — even when the base
    registers are themselves only *eventually linearizable* (the
    weak-consistency property of the base registers is all the
    algorithm needs from them: a process's reads of its own register
    see its own writes).

    Consensus is "essentially the hardest object to implement in a
    linearizable way", yet this eventually linearizable implementation
    is elementary — the other horn of the paradox. *)

open Elin_spec
open Elin_runtime

let bot = Value.str "bot"

let register_spec ~domain =
  Register.spec_value ~initial:bot
    ~domain:(bot :: List.map Value.int domain) ()

let ( let* ) = Program.bind

(** [impl ~procs ~domain ~base] — [base] selects the register
    substrate: [`Linearizable], or [`Eventually_linearizable cfg_maker]
    building an adversarial register per process. *)
let impl ~procs ?(domain = [ 0; 1 ]) ?(base = `Linearizable) () : Impl.t =
  let reg = register_spec ~domain in
  let make_base _i =
    match base with
    | `Linearizable -> Base.linearizable reg
    | `Ev_at_step k -> Ev_base.adversarial_until_step reg k
    | `Ev_after_accesses k -> Ev_base.local_until_accesses reg k
  in
  let rec scan i =
    (* Left-to-right scan for the leftmost non-⊥ proposal. *)
    if i >= procs then Program.return None
    else
      let* v = Program.access i Op.read in
      if Value.equal v bot then scan (i + 1)
      else Program.return (Some v)
  in
  {
    Impl.name = "consensus/proposals-array";
    bases = Array.init procs make_base;
    local_init = Value.unit;
    program =
      (fun ~proc ~local op ->
        match Op.name op, Op.args op with
        | "propose", [ v ] ->
          let* mine = Program.access proc Op.read in
          let* () =
            if Value.equal mine bot then
              Program.map Value.to_unit
                (Program.access proc (Op.write_value v))
            else Program.return ()
          in
          let* leftmost = scan 0 in
          (match leftmost with
          | Some w -> Program.return (w, local)
          | None ->
            (* Unreachable: weak consistency of the base register
               guarantees this process sees at least its own write. *)
            Program.return (v, local))
        | other, _ ->
          invalid_arg ("consensus/proposals-array: unknown operation " ^ other));
  }

let spec ?(domain = [ 0; 1 ]) () = Consensus_spec.spec ~domain ()

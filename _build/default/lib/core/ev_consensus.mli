(** Eventually linearizable consensus from registers (Proposition 16):
    the paper's Proposals-array algorithm — write your proposal to your
    register if still ⊥, then return the leftmost non-⊥ proposal.
    Wait-free and eventually linearizable even over registers that are
    themselves only eventually linearizable. *)

open Elin_spec
open Elin_runtime

(** The ⊥ marker stored in unwritten proposal registers. *)
val bot : Value.t

(** The proposal-register spec (⊥-initialized value register). *)
val register_spec : domain:int list -> Spec.t

(** [impl ~procs ?domain ?base ()] — [base] selects the register
    substrate. *)
val impl :
  procs:int ->
  ?domain:int list ->
  ?base:[ `Linearizable | `Ev_at_step of int | `Ev_after_accesses of int ] ->
  unit ->
  Impl.t

(** The implemented type's spec (for the checkers). *)
val spec : ?domain:int list -> unit -> Spec.t

(** The trivial eventually linearizable test&set (Section 4).

    "A test&set object has an eventually linearizable implementation
    where each process simply returns 0 for its first invocation of
    test&set and 1 for all subsequent invocations."  No shared base
    objects at all: the implementation misbehaves (several processes
    may win) only during the finite prefix in which first invocations
    happen, and any t beyond the last first-invocation response
    linearizes the history by declaring one early winner first.

    This is one horn of the paradox: test&set requires synchronization
    only at the beginning of an execution, so weakening linearizability
    to eventual linearizability trivializes it — in contrast with
    fetch&increment (see [Stabilize]). *)

open Elin_spec
open Elin_runtime

let impl () : Impl.t =
  {
    Impl.name = "test&set/ev-local";
    bases = [||];
    local_init = Value.bool false; (* have I invoked before? *)
    program =
      (fun ~proc:_ ~local op ->
        match Op.name op with
        | "test&set" ->
          let seen = Value.to_bool local in
          Program.return
            (Value.int (if seen then 1 else 0), Value.bool true)
        | other -> invalid_arg ("test&set/ev-local: unknown operation " ^ other));
  }

(** A run of this implementation is linearizable only when a single
    process performs the very first test&set alone; the canonical
    violation (two concurrent winners) is produced by any schedule
    interleaving two first invocations — tests exhibit it via
    [Elin_explore.Explore.exists_history]. *)
let spec = Testandset.spec

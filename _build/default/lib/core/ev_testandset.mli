(** The trivial eventually linearizable test&set (Section 4): each
    process returns 0 for its first invocation and 1 thereafter — no
    shared base objects at all.  One horn of the paradox: types that
    require synchronization only initially trivialize under eventual
    linearizability. *)

open Elin_runtime

val impl : unit -> Impl.t

(** The implemented type's spec (for the checkers). *)
val spec : ?initial:int -> unit -> Elin_spec.Spec.t

(** The weak-consistency guard (Proposition 11 / Figure 1).

    Wraps any implementation whose histories are t-linearizable for
    some t into one that is additionally weakly consistent — hence
    eventually linearizable.  Following the paper's algorithm:

    {v
    Execute(op):
      announce op                                   (line 2)
      ⟨qi, r_private⟩ := apply op to private state  (line 4)
      r_shared := run the inner implementation      (line 5)
      read all announced operations                 (lines 6-12)
      if some permutation of a subset of the announced operations
         (including all of one's own) is a legal sequential execution
         in which op returns r_shared
      then return r_shared else return r_private    (lines 13-14)
    v}

    The paper announces on per-process unbounded register arrays
    R_i[0,1,...]; we announce on one linearizable append/read-all board
    (a history object buildable from exactly such register arrays),
    which keeps programmes short enough for exhaustive exploration.
    The line-13 search is [Elin_checker.Justify.justifiable]. *)

open Elin_spec
open Elin_runtime

let ( let* ) = Program.bind

let bot = Value.str "bot"

(** [wrap_registers ~spec ~procs ~max_ops inner] — the appendix's
    literal substrate: per-process single-writer register arrays
    [R_i[0 .. max_ops-1]], all initialized to ⊥.  Process [i] announces
    its [c_i]-th operation by writing [R_i[c_i]] (line 2, with [c_i]
    kept in the process's local state per line 3), and lines 6–12 scan
    each [R_j] register by register until the first ⊥.  Behaviourally
    equivalent to {!wrap} (tests check the verdicts agree); the board
    variant exists because its shorter programmes explore better. *)
let wrap_registers ~spec ~procs ~max_ops (inner : Impl.t) : Impl.t =
  let n_inner = Array.length inner.Impl.bases in
  let reg_index ~owner ~slot = n_inner + (owner * max_ops) + slot in
  let announce_reg =
    Register.spec_value ~initial:bot ~domain:[ bot ] ()
  in
  (* Scan R_j for j = 0..procs-1, collecting announced entries in
     (j, k)-lexicographic order, stopping each column at the first ⊥
     (lines 6-12). *)
  let read_all () =
    let rec scan_proc j k acc =
      if j >= procs then Program.return (List.rev acc)
      else if k >= max_ops then scan_proc (j + 1) 0 acc
      else
        let* v = Program.access (reg_index ~owner:j ~slot:k) Op.read in
        if Value.equal v bot then scan_proc (j + 1) 0 acc
        else scan_proc j (k + 1) ((j, Codec.decode_op v) :: acc)
    in
    scan_proc 0 0 []
  in
  {
    Impl.name = inner.Impl.name ^ "+guard-regs";
    bases =
      Array.append inner.Impl.bases
        (Array.init (procs * max_ops) (fun _ -> Base.linearizable announce_reg));
    local_init =
      Value.pair inner.Impl.local_init
        (Value.pair (Spec.initial spec) (Value.int 0));
    program =
      (fun ~proc ~local op ->
        let inner_local, rest = Value.to_pair local in
        let qi, ci = Value.to_pair rest in
        let ci = Value.to_int ci in
        if ci >= max_ops then invalid_arg "Guard: register array exhausted";
        (* line 2: announce op in R_i[c_i]; line 3: c_i := c_i + 1 *)
        let* _ =
          Program.access (reg_index ~owner:proc ~slot:ci)
            (Op.write_value (Codec.encode_op op))
        in
        (* line 4: private state and response *)
        let r_private, qi' =
          match Spec.apply spec qi op with
          | (r, q') :: _ -> (r, q')
          | [] -> invalid_arg "Guard: operation not applicable privately"
        in
        (* line 5: inner implementation *)
        let* r_shared, inner_local' =
          inner.Impl.program ~proc ~local:inner_local op
        in
        (* lines 6-12: read all announced operations *)
        let* entries = read_all () in
        (* Drop this operation's own announcement (the last own entry). *)
        let entries_before =
          let rec remove_first = function
            | [] -> []
            | (p, o) :: tl when p = proc && Op.equal o op -> tl
            | e :: tl -> e :: remove_first tl
          in
          List.rev (remove_first (List.rev entries))
        in
        let pool = List.map snd entries_before in
        let required =
          List.mapi (fun i (p, _) -> (i, p)) entries_before
          |> List.filter_map (fun (i, p) -> if p = proc then Some i else None)
        in
        (* line 13 *)
        let justified =
          Elin_checker.Justify.justifiable spec ~pool ~required ~op
            ~resp:r_shared
        in
        let resp = if justified then r_shared else r_private in
        Program.return
          (resp, Value.pair inner_local' (Value.pair qi' (Value.int (ci + 1)))))
  }

(** [wrap ~spec inner] — guard the implementation [inner] of type
    [spec].  The guarded implementation appends one board to [inner]'s
    base objects. *)
let wrap ~spec (inner : Impl.t) : Impl.t =
  let n_inner = Array.length inner.Impl.bases in
  (* Inner programmes address bases 0..n_inner-1 unchanged; the board
     sits just past them. *)
  let board = n_inner in
  {
    Impl.name = inner.Impl.name ^ "+guard";
    bases =
      Array.append inner.Impl.bases
        [| Base.linearizable (Announce_board.spec ()) |];
    local_init = Value.pair inner.Impl.local_init (Spec.initial spec);
    program =
      (fun ~proc ~local op ->
        let inner_local, qi = Value.to_pair local in
        (* line 2: announce *)
        let* _ = Program.access board
            (Announce_board.announce (Codec.encode_entry ~proc op))
        in
        (* line 4: private state and response *)
        let r_private, qi' =
          match Spec.apply spec qi op with
          | (r, q') :: _ -> (r, q')
          | [] -> invalid_arg "Guard: operation not applicable privately"
        in
        (* line 5: inner implementation *)
        let* r_shared, inner_local' =
          inner.Impl.program ~proc ~local:inner_local op
        in
        (* lines 6-12: read every announcement *)
        let* log = Program.access board Announce_board.read_log in
        let entries = List.map Codec.decode_entry (Value.to_list log) in
        (* Drop this operation's own announcement — the last one by
           this process — since the final op of the permutation is op
           itself. *)
        let entries_before =
          let rec remove_first = function
            | [] -> []
            | (p, o) :: tl when p = proc && Op.equal o op -> tl
            | e :: tl -> e :: remove_first tl
          in
          List.rev (remove_first (List.rev entries))
        in
        let pool = List.map snd entries_before in
        let required =
          List.mapi (fun i (p, _) -> (i, p)) entries_before
          |> List.filter_map (fun (i, p) -> if p = proc then Some i else None)
        in
        (* line 13: the permutation test *)
        let justified =
          Elin_checker.Justify.justifiable spec ~pool ~required ~op
            ~resp:r_shared
        in
        let resp = if justified then r_shared else r_private in
        Program.return (resp, Value.pair inner_local' qi'))
  }

(** The weak-consistency guard (Proposition 11 / Figure 1): wraps any
    implementation whose histories are t-linearizable for some t into
    one that is additionally weakly consistent — hence eventually
    linearizable.  Announce every operation, run the inner
    implementation, and return its answer only if some permutation of a
    subset of the announced operations (including all of one's own)
    justifies it; otherwise answer from the process's private state. *)

open Elin_spec
open Elin_runtime

(** [wrap ~spec inner] — guard the implementation [inner] of type
    [spec]; appends one announce board to [inner]'s base objects. *)
val wrap : spec:Spec.t -> Impl.t -> Impl.t

(** The ⊥ marker of the register-array substrate. *)
val bot : Value.t

(** The appendix's literal substrate: per-process single-writer
    register arrays [R_i[0 .. max_ops-1]] instead of the board.
    Behaviourally equivalent to {!wrap}; raises [Invalid_argument]
    when a process performs more than [max_ops] operations. *)
val wrap_registers :
  spec:Spec.t -> procs:int -> max_ops:int -> Impl.t -> Impl.t

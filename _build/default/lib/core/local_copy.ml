(** The local-copy transformation (Theorem 12).

    Given an implementation I from eventually linearizable base
    objects, replace each shared object o by n private copies
    o_1 ... o_n: whenever process p_i would access o, it accesses its
    own copy o_i instead.  The theorem's punchline: every finite
    history of the transformed implementation I' is also a possible
    history of I (the eventually linearizable bases may answer exactly
    like unsynchronized local copies during any finite prefix), so if I
    were linearizable and obstruction-free, I' would be linearizable
    and wait-free with *no* communication — impossible for any
    non-trivial type.

    The transformation itself is type-agnostic and total; the
    impossibility is then demonstrated by exhaustive exploration: for a
    non-trivial type (e.g. a register), [Elin_explore] finds
    non-linearizable histories of I', certifying that no obstruction-
    free linearizable implementation from eventually linearizable
    objects exists *for the probed implementations* — the mechanical
    shadow of the theorem's universal statement. *)

open Elin_spec
open Elin_runtime

(** [transform ~procs impl] — private copies for processes
    0 .. procs-1.  Process p's access to base j is redirected to copy
    p * m + j, where m is the number of original bases. *)
let transform ~procs (impl : Impl.t) : Impl.t =
  let m = Array.length impl.Impl.bases in
  let rec redirect p (prog : (Value.t * Value.t) Program.t) =
    match prog with
    | Program.Return _ as r -> r
    | Program.Access (obj, op, k) ->
      Program.Access ((p * m) + obj, op, fun v -> redirect p (k v))
  in
  {
    Impl.name = impl.Impl.name ^ "/local-copies";
    bases =
      Array.init (procs * m) (fun i -> impl.Impl.bases.(i mod m));
    local_init = impl.Impl.local_init;
    program =
      (fun ~proc ~local op -> redirect proc (impl.Impl.program ~proc ~local op));
  }

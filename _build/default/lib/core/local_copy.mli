(** The local-copy transformation (Theorem 12): replace each shared
    base object by per-process private copies.  Every history of the
    transformed implementation is a possible history of the original
    when its bases are eventually linearizable (local views), so a
    linearizable obstruction-free original would yield a
    communication-free wait-free linearizable implementation —
    impossible for non-trivial types. *)

open Elin_runtime

(** [transform ~procs impl] — process p's access to base j is
    redirected to copy [p * m + j]. *)
val transform : procs:int -> Impl.t -> Impl.t

(** Triviality of deterministic types (Definition 13 / Proposition 14).

    A deterministic type is trivial iff there is a computable function
    [r] mapping each initial state and operation to a response that is
    correct in *every* state reachable from that initial state — i.e.
    the type can be implemented with no inter-process communication.
    Proposition 14 shows these are exactly the types with linearizable
    obstruction-free implementations from eventually linearizable
    objects.

    For finite-state types the definition is directly decidable by
    exploring the reachable state space; for infinite-state types we
    explore up to a bound and report [Unknown] when the bound is hit
    without finding a refutation (every concrete infinite-state type in
    the zoo is refuted well before the bound). *)

open Elin_spec

type verdict =
  | Trivial of (Op.t * Value.t) list
    (* the witnessing constant response table r(q0, ·) *)
  | Nontrivial of Op.t * Value.t * Value.t
    (* operation with differing response sets in two reachable states *)
  | Unknown
    (* state bound exhausted without refutation *)

(** [classify ?max_states spec] decides Definition 13 for [spec]'s
    initial state over the representative operations [Spec.all_ops]. *)
let classify ?(max_states = 2000) spec =
  let states, complete = Spec.reachable spec ~max_states in
  let initial_responses op =
    match Spec.apply spec (Spec.initial spec) op with
    | [ (r, _) ] -> r
    | [] -> invalid_arg "Trivial.classify: operation not applicable"
    | _ -> invalid_arg "Trivial.classify: type is nondeterministic"
  in
  let differing =
    List.find_map
      (fun op ->
        let r0 = initial_responses op in
        List.find_map
          (fun q ->
            match Spec.apply spec q op with
            | [ (r, _) ] when not (Value.equal r r0) -> Some (op, q, r)
            | _ -> None)
          states)
      (Spec.all_ops spec)
  in
  match differing with
  | Some (op, q, r) -> Nontrivial (op, q, r)
  | None ->
    if complete then
      Trivial (List.map (fun op -> (op, initial_responses op)) (Spec.all_ops spec))
    else Unknown

let is_trivial ?max_states spec =
  match classify ?max_states spec with
  | Trivial _ -> true
  | Nontrivial _ | Unknown -> false

(** The (⇐) direction of Proposition 14, as a constructor: a trivial
    type's communication-free wait-free linearizable implementation —
    every operation answers from the constant table. *)
let communication_free_impl spec =
  match classify spec with
  | Trivial table ->
    Some
      {
        Elin_runtime.Impl.name = Spec.name spec ^ "/communication-free";
        bases = [||];
        local_init = Value.unit;
        program =
          (fun ~proc:_ ~local op ->
            match List.find_opt (fun (o, _) -> Op.equal o op) table with
            | Some (_, r) -> Elin_runtime.Program.return (r, local)
            | None -> invalid_arg "communication-free impl: unknown operation");
      }
  | Nontrivial _ | Unknown -> None

(** The (⇒) direction's computation of [r (q0, op)] (Prop. 14 proof):
    run the implementation's programme for [op] solo from the initial
    configuration (first adversary branch) until it responds.  For a
    correct communication-free implementation of a trivial type, this
    recovers the constant response table. *)
let solo_response (impl : Elin_runtime.Impl.t) op ?(fuel = 1000) () =
  let open Elin_explore in
  let c0 = Explore.initial_config impl ~workloads:[| [ op ] |] () in
  match
    Explore.run_solo impl c0 0
      ~until:(fun c ->
        match c.Explore.events_rev with
        | Elin_history.Event.{ payload = Respond v; _ } :: _ -> Some v
        | _ -> None)
      fuel
  with
  | Some (_, v) -> Some v
  | None -> None

let pp_verdict ppf = function
  | Trivial table ->
    Format.fprintf ppf "trivial, r = [%a]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
         (fun ppf (op, r) -> Format.fprintf ppf "%a↦%a" Op.pp op Value.pp r))
      table
  | Nontrivial (op, q, r) ->
    Format.fprintf ppf "non-trivial: %a returns %a in reachable state %a"
      Op.pp op Value.pp r Value.pp q
  | Unknown -> Format.fprintf ppf "unknown (state bound exhausted)"

(** Triviality of deterministic types (Definition 13 /
    Proposition 14): a type is trivial iff some computable response
    function is correct in every reachable state — exactly the types
    with linearizable obstruction-free implementations from eventually
    linearizable objects. *)

open Elin_spec
open Elin_runtime

type verdict =
  | Trivial of (Op.t * Value.t) list
      (** the witnessing constant response table *)
  | Nontrivial of Op.t * Value.t * Value.t
      (** operation, reachable state, differing response *)
  | Unknown  (** state bound exhausted without refutation *)

(** [classify ?max_states spec] decides Definition 13 over
    [Spec.all_ops]; exact for finite-state types, conservative
    ([Unknown]) when the reachability bound is hit. *)
val classify : ?max_states:int -> Spec.t -> verdict

val is_trivial : ?max_states:int -> Spec.t -> bool

(** The (⇐) direction of Proposition 14: a trivial type's
    communication-free wait-free linearizable implementation. *)
val communication_free_impl : Spec.t -> Impl.t option

(** The (⇒) direction's computation of [r (q0, op)]: run the
    implementation's programme for [op] solo until it responds. *)
val solo_response : Impl.t -> Op.t -> ?fuel:int -> unit -> Value.t option

val pp_verdict : Format.formatter -> verdict -> unit

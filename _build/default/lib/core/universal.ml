(** A universal construction, and its eventually linearizable variant
    (the paper's Section 6 open question, explored).

    Herlihy's theorem [9] makes consensus universal: any deterministic
    type has a linearizable implementation from consensus objects.
    This module implements the classic lock-free log-based
    construction: a shared array of consensus cells decides the
    operation log; to perform [op], a process walks the log replaying
    decided operations into a fresh copy of the state, proposes its own
    (uniquely tagged) operation at the first undecided cell, and
    returns the response computed at its winning position.

    Section 6 asks whether a universal construction exists for
    {e eventually linearizable} objects from natural eventually
    linearizable primitives.  Instantiating the cells with the
    adversarial eventually linearizable consensus objects of
    [Elin_runtime.Ev_base] gives a concrete, testable candidate:

    - before the cells stabilize, each process's walk sees only its own
      proposals, so it serves operations from a local copy — weakly
      consistent by construction;
    - after stabilization the cells agree, the walks converge on one
      committed log, and (because every operation replays from cell 0)
      responses re-synchronize.

    The test suite measures what this buys: with linearizable cells the
    construction is linearizable for every probed type; with eventually
    linearizable cells it is eventually linearizable on every probed
    run — fetch&increment included — which is consistent with the
    paper's results because consensus cells are strictly stronger than
    the registers Corollary 19 rules out.  The open question (from
    {e registers} plus natural ev-lin primitives) remains open; this is
    the natural upper bound. *)

open Elin_spec
open Elin_runtime

let ( let* ) = Program.bind

let undecided = Consensus_spec.undecided

(** Tag an operation with (proc, seq) so winners are distinguishable. *)
let tag ~proc ~seq op =
  Value.pair (Value.pair (Value.int proc) (Value.int seq)) (Codec.encode_op op)

let untag v =
  let _, op = Value.to_pair v in
  Codec.decode_op op

type cell_base = [ `Linearizable | `Ev_at_step of int ]

let make_cell cell_base =
  let cons = Consensus_spec.spec () in
  match cell_base with
  | `Linearizable -> Base.linearizable cons
  | `Ev_at_step k ->
    Ev_base.make
      { Ev_base.spec = cons; stabilization = Ev_base.At_step k;
        view = Ev_base.Own_only }

(** [construction ~spec ~cells ~cell_base ()] — implement [spec] from
    [cells] consensus objects.  [spec] must be deterministic.  Raises
    [Invalid_argument] at runtime if an execution needs more than
    [cells] log positions. *)
let construction ~spec ~cells ?(cell_base = `Linearizable) () : Impl.t =
  let make_cell _ = make_cell cell_base in
  let apply_det state op =
    match Spec.apply spec state op with
    | (r, q') :: _ -> (r, q')
    | [] -> invalid_arg "Universal: operation not applicable"
  in
  let name =
    match cell_base with
    | `Linearizable -> Printf.sprintf "%s/universal" (Spec.name spec)
    | `Ev_at_step k -> Printf.sprintf "%s/universal-ev(k=%d)" (Spec.name spec) k
  in
  {
    Impl.name;
    bases = Array.init cells make_cell;
    local_init = Value.int 0; (* per-process operation sequence number *)
    program =
      (fun ~proc ~local op ->
        let seq = Value.to_int local in
        let mine = tag ~proc ~seq op in
        let propose_op = Op.make "propose" ~args:[ mine ] in
        let rec walk l state =
          if l >= cells then
            invalid_arg "Universal: log exceeded the cell budget"
          else
            let* w = Program.access l propose_op in
            if Value.equal w mine then begin
              (* Linearized at position l. *)
              let r, _ = apply_det state op in
              Program.return (r, Value.int (seq + 1))
            end
            else if Value.equal w undecided then
              (* Unreachable for a consensus cell (proposing decides),
                 kept for totality. *)
              walk l state
            else begin
              let _, state' = apply_det state (untag w) in
              walk (l + 1) state'
            end
        in
        walk 0 (Spec.initial spec));
  }

(* ------------------------------------------------------------------ *)
(* The wait-free variant: Herlihy helping.                            *)
(* ------------------------------------------------------------------ *)

let announce_bot = Value.str "none"

(** [construction_wait_free ~spec ~cells ~procs ?cell_base ()] — the
    helping construction.  Base objects: [procs] announce registers
    (indices 0 .. procs-1) followed by [cells] consensus cells.  Each
    operation is announced in the caller's register; when competing for
    log cell [l], a process first reads the announce register of the
    {e priority} process [l mod procs] and proposes that process's
    pending operation if it is not yet in the log, else its own.  Every
    announced operation therefore enters the log within [procs] cells
    of the announcement — the classic wait-freedom argument — at the
    cost of one announce write plus two accesses (read + propose) per
    cell walked. *)
let construction_wait_free ~spec ~cells ~procs ?(cell_base = `Linearizable) ()
    : Impl.t =
  let announce_reg =
    Register.spec_value ~initial:announce_bot ~domain:[ announce_bot ] ()
  in
  let cell_index l = procs + l in
  let apply_det state op =
    match Spec.apply spec state op with
    | (r, q') :: _ -> (r, q')
    | [] -> invalid_arg "Universal: operation not applicable"
  in
  let name =
    match cell_base with
    | `Linearizable -> Printf.sprintf "%s/universal-wf" (Spec.name spec)
    | `Ev_at_step k ->
      Printf.sprintf "%s/universal-wf-ev(k=%d)" (Spec.name spec) k
  in
  {
    Impl.name;
    bases =
      Array.append
        (Array.init procs (fun _ -> Base.linearizable announce_reg))
        (Array.init cells (fun _ -> make_cell cell_base));
    local_init = Value.int 0;
    program =
      (fun ~proc ~local op ->
        let seq = Value.to_int local in
        let mine = tag ~proc ~seq op in
        let ( let* ) = Program.bind in
        (* Announce, then walk the log helping the priority process. *)
        let* _ = Program.access proc (Op.write_value mine) in
        (* [applied] carries the tags already in the log, so helping
           never re-proposes a decided operation. *)
        let rec walk l state applied =
          if l >= cells then
            invalid_arg "Universal: log exceeded the cell budget"
          else begin
            let priority = l mod procs in
            let* announced = Program.access priority Op.read in
            let candidate =
              if
                (not (Value.equal announced announce_bot))
                && not (List.exists (Value.equal announced) applied)
              then announced
              else mine
            in
            let* w =
              Program.access (cell_index l)
                (Op.make "propose" ~args:[ candidate ])
            in
            if Value.equal w mine then begin
              (* My operation is linearized at position l. *)
              let r, _ = apply_det state op in
              Program.return (r, Value.int (seq + 1))
            end
            else begin
              let _, state' = apply_det state (untag w) in
              walk (l + 1) state' (w :: applied)
            end
          end
        in
        walk 0 (Spec.initial spec) []);
  }

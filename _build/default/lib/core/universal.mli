(** A log-based universal construction from consensus cells (Herlihy
    universality), and its eventually linearizable instantiation — the
    paper's Section 6 open question, explored.  With linearizable cells
    the construction is linearizable for any deterministic type; with
    adversarial eventually linearizable cells it serves operations from
    local views before stabilization and re-synchronizes afterwards
    (every operation replays the log from cell 0). *)

open Elin_spec
open Elin_runtime

(** [tag ~proc ~seq op] / [untag] — unique proposal tagging. *)
val tag : proc:int -> seq:int -> Op.t -> Value.t

val untag : Value.t -> Op.t

type cell_base = [ `Linearizable | `Ev_at_step of int ]

(** [construction ~spec ~cells ?cell_base ()] — implement the
    deterministic [spec] from [cells] consensus objects; raises
    [Invalid_argument] at runtime if an execution needs more log
    positions than [cells].  Lock-free: a process may lose every cell
    it competes for while others make progress. *)
val construction :
  spec:Spec.t -> cells:int -> ?cell_base:cell_base -> unit -> Impl.t

(** The ⊥ marker of the wait-free variant's announce registers. *)
val announce_bot : Value.t

(** [construction_wait_free ~spec ~cells ~procs ?cell_base ()] —
    Herlihy helping: operations are announced in per-process registers,
    and the competitor for log cell [l] proposes the pending operation
    of the priority process [l mod procs] when there is one, so every
    announced operation enters the log within [procs] cells.
    Wait-free. *)
val construction_wait_free :
  spec:Spec.t -> cells:int -> procs:int -> ?cell_base:cell_base -> unit -> Impl.t

lib/explore/explore.ml: Array Base Elin_history Elin_runtime Elin_spec Event History Impl List Op Option Program Value

lib/explore/explore.mli: Elin_history Elin_runtime Elin_spec Event History Impl Op Program Value

lib/explore/monitors.ml: Array Elin_history Elin_kernel Elin_runtime Elin_spec Explore Impl List Program Run Sched Value

lib/explore/monitors.mli: Elin_runtime Elin_spec Impl Op Run

(** Empirical progress-condition monitors (Section 3's wait-free /
    non-blocking / obstruction-free hierarchy).

    Progress conditions quantify over infinite executions, so they are
    not decidable from one run; these monitors provide the useful
    finite shadows:

    - [wait_free_bound]: the observed maximum base accesses per
      completed operation — a wait-free implementation has a bound
      independent of the schedule, so a growing observed bound across
      adversarial schedules refutes wait-freedom;
    - [starvation_schedule]: drives the classic CAS-loop starvation
      adversary (let the victim read, then let another process complete
      a whole operation, forever) and reports whether the victim
      completed anything — a mechanical witness that lock-free
      implementations need not be wait-free;
    - [non_blocking_probe]: checks that whenever operations are
      pending, running the processes round-robin completes some
      operation within a fuel bound;
    - [obstruction_free_probe]: from sampled reachable configurations,
      each process running solo completes its pending operation within
      a fuel bound. *)

open Elin_spec
open Elin_runtime

(** [wait_free_bound outcome] — observed accesses/op. *)
let wait_free_bound (outcome : Run.outcome) =
  outcome.Run.stats.Run.max_steps_per_op

(** [starvation_schedule impl ~victim ~other ~op ~rounds] runs the
    adversary that steps [victim] once, then lets [other] finish a full
    operation, repeatedly.  Returns (victim completed ops, other
    completed ops). *)
let starvation_schedule (impl : Impl.t) ~victim ~other ~op ~rounds =
  (* Alternate: one victim step, then [other] until it completes an op.
     Encoded as a stateful scheduler. *)
  let victim_turn = ref true in
  let choose ~runnable ~step:_ =
    if !victim_turn && List.mem victim runnable then begin
      victim_turn := false;
      Some victim
    end
    else if List.mem other runnable then Some other
    else if List.mem victim runnable then Some victim
    else None
  in
  let sched = { Sched.name = "starvation"; choose } in
  (* The scheduler above flips to the other process after one victim
     step; we flip back whenever the other completes an operation,
     which we detect via a wrapper implementation that counts. *)
  let completed_other = ref 0 in
  let counting_impl =
    {
      impl with
      Impl.program =
        (fun ~proc ~local o ->
          let inner = impl.Impl.program ~proc ~local o in
          let rec watch (m : (Value.t * Value.t) Program.t) =
            match m with
            | Program.Return r ->
              if proc = other then begin
                incr completed_other;
                victim_turn := true
              end;
              Program.Return r
            | Program.Access (obj, op', k) ->
              Program.Access (obj, op', fun v -> watch (k v))
          in
          watch inner);
    }
  in
  (* The contention window must outlast the run: the other process
     gets an inexhaustible workload and the step budget ends first, so
     the victim is never left to run solo. *)
  let workloads =
    Array.init (max victim other + 1) (fun p ->
        if p = victim then List.init rounds (fun _ -> op)
        else if p = other then List.init (rounds * 20) (fun _ -> op)
        else [])
  in
  let out =
    Run.execute counting_impl ~workloads ~sched ~max_steps:(rounds * 12) ()
  in
  let completed p =
    List.length
      (List.filter
         (fun (o : Elin_history.Operation.t) ->
           o.Elin_history.Operation.proc = p
           && Elin_history.Operation.is_complete o)
         (Elin_history.History.ops out.Run.history))
  in
  (completed victim, completed other)

(** [non_blocking_probe impl ~workloads ~fuel ~seed] — run under a
    random scheduler; whenever an operation is pending, some operation
    must complete within [fuel] further completions-or-steps.  Returns
    [true] when no starvation window was observed. *)
let non_blocking_probe (impl : Impl.t) ~workloads ?(fuel = 200) ?(seed = 0) ()
    =
  let out =
    Run.execute impl ~workloads ~sched:(Sched.random ~seed)
      ~max_steps:(fuel * 10) ()
  in
  (* A window violation in a finite complete run means some operation
     never finished although steps remained. *)
  out.Run.all_done
  || out.Run.stats.Run.steps >= fuel * 10 (* cut off, inconclusive *)

(** [obstruction_free_probe impl ~workloads ~samples ~fuel ~seed] —
    sample configurations along random runs; from each, every process
    with a pending operation must complete it running solo within
    [fuel] steps.  Uses the explorer's solo machinery. *)
let obstruction_free_probe (impl : Impl.t) ~workloads ?(samples = 20)
    ?(fuel = 200) ?(seed = 0) () =
  let rng = Elin_kernel.Prng.create seed in
  let ok = ref true in
  for _ = 1 to samples do
    (* Random walk to a random depth, first adversary branch. *)
    let depth = Elin_kernel.Prng.int rng 30 in
    let c = ref (Explore.initial_config impl ~workloads ()) in
    (try
       for _ = 1 to depth do
         match Explore.runnable !c with
         | [] -> raise Exit
         | rs ->
           let p = Elin_kernel.Prng.choose rng rs in
           (match Explore.step impl !c p with
           | c' :: _ -> c := c'
           | [] -> raise Exit)
       done
     with Exit -> ());
    match Explore.complete_current_ops impl !c ~fuel with
    | Some _ -> ()
    | None -> ok := false
  done;
  !ok

(** Empirical progress-condition monitors (the wait-free / non-blocking
    / obstruction-free hierarchy of Section 3), as finite shadows of
    the infinite-execution definitions. *)

open Elin_spec
open Elin_runtime

(** Observed maximum base accesses per completed operation. *)
val wait_free_bound : Run.outcome -> int

(** [starvation_schedule impl ~victim ~other ~op ~rounds] — the classic
    adversary: one victim step, then let [other] complete a whole
    operation, forever (the run's step budget ends before [other]'s
    workload does).  Returns (victim completed, other completed); a
    lock-free-but-not-wait-free implementation shows (0, many). *)
val starvation_schedule :
  Impl.t -> victim:int -> other:int -> op:Op.t -> rounds:int -> int * int

(** Random-schedule probe: no operation left unfinished while steps
    remained. *)
val non_blocking_probe :
  Impl.t ->
  workloads:Op.t list array ->
  ?fuel:int ->
  ?seed:int ->
  unit ->
  bool

(** From sampled reachable configurations, every process with a pending
    operation completes it running solo within [fuel] steps. *)
val obstruction_free_probe :
  Impl.t ->
  workloads:Op.t list array ->
  ?samples:int ->
  ?fuel:int ->
  ?seed:int ->
  unit ->
  bool

lib/history/event.ml: Elin_spec Format Op Value

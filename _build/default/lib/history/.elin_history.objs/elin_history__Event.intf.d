lib/history/event.mli: Elin_spec Format Op Value

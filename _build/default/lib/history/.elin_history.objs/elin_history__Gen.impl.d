lib/history/gen.ml: Array Elin_kernel Elin_spec Event History List Op Operation Option Prng QCheck2 Spec Value

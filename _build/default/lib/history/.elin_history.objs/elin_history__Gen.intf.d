lib/history/gen.mli: Elin_kernel Elin_spec History Prng QCheck2 Spec

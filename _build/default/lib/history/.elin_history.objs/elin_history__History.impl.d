lib/history/history.ml: Array Elin_spec Event Format Hashtbl List Op Operation

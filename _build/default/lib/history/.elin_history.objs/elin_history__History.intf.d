lib/history/history.mli: Elin_spec Event Format Op Operation Value

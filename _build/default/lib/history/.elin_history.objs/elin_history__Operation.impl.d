lib/history/operation.ml: Elin_spec Format Op Option Value

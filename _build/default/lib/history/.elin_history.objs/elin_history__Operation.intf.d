lib/history/operation.mli: Elin_spec Format Op Value

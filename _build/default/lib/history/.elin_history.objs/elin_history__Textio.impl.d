lib/history/textio.ml: Buffer Elin_spec Event Format Fun History List Op Printf String Value

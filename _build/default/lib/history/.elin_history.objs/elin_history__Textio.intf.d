lib/history/textio.mli: Event History

(** History events.

    An event is, as in Section 3 of the paper, a tuple <p, o, x> where
    [p] is a process, [o] an object, and [x] either an operation
    invocation or a response value. *)

open Elin_spec

type payload = Invoke of Op.t | Respond of Value.t

type t = { proc : int; obj : int; payload : payload }

let invoke ~proc ~obj op = { proc; obj; payload = Invoke op }
let respond ~proc ~obj v = { proc; obj; payload = Respond v }

let is_invoke t = match t.payload with Invoke _ -> true | Respond _ -> false
let is_respond t = match t.payload with Respond _ -> true | Invoke _ -> false

let equal a b =
  a.proc = b.proc && a.obj = b.obj
  && (match a.payload, b.payload with
     | Invoke x, Invoke y -> Op.equal x y
     | Respond x, Respond y -> Value.equal x y
     | Invoke _, Respond _ | Respond _, Invoke _ -> false)

let pp ppf t =
  match t.payload with
  | Invoke op -> Format.fprintf ppf "<p%d, o%d, inv %a>" t.proc t.obj Op.pp op
  | Respond v -> Format.fprintf ppf "<p%d, o%d, res %a>" t.proc t.obj Value.pp v

let to_string t = Format.asprintf "%a" pp t

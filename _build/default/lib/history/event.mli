(** History events: tuples <p, o, x> where [p] is a process, [o] an
    object, and [x] an invocation or a response (Section 3). *)

open Elin_spec

type payload = Invoke of Op.t | Respond of Value.t

type t = { proc : int; obj : int; payload : payload }

val invoke : proc:int -> obj:int -> Op.t -> t
val respond : proc:int -> obj:int -> Value.t -> t

val is_invoke : t -> bool
val is_respond : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

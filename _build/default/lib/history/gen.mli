(** Seeded generators of concurrent histories.

    Everything is driven by [Elin_kernel.Prng], so a generated history
    is a pure function of its seed. *)

open Elin_kernel
open Elin_spec

(** [linearizable rng ~spec ~procs ~n_ops ()] — a linearizable history
    of exactly [n_ops] completed operations on object 0, with genuine
    concurrency (each operation linearizes at a random internal
    point). *)
val linearizable :
  Prng.t -> spec:Spec.t -> procs:int -> n_ops:int -> unit -> History.t

(** Like {!linearizable}, but for a random subset of processes the last
    operation's response is removed, leaving it pending. *)
val linearizable_with_pending :
  Prng.t -> spec:Spec.t -> procs:int -> n_ops:int -> unit -> History.t

(** [eventually_linearizable rng ~spec ~procs ~prefix_ops ~suffix_ops ()]
    — a history whose first phase serves every process from a local
    copy (weakly consistent, generally not linearizable), then merges
    all phase-one operations in invocation order and continues
    linearizably.  Returns the history and the index of the first
    post-merge event (a valid stabilization-bound candidate). *)
val eventually_linearizable :
  Prng.t ->
  spec:Spec.t ->
  procs:int ->
  prefix_ops:int ->
  suffix_ops:int ->
  unit ->
  History.t * int

(** [corrupt rng h] flips one completed operation's response to a
    different value; [None] when there is no completed operation. *)
val corrupt : Prng.t -> History.t -> History.t option

(** QCheck plumbing: generators materialize through a printed seed so
    failures are reproducible. *)

val qcheck_seed : int QCheck2.Gen.t

val arbitrary_linearizable :
  spec:Spec.t -> procs:int -> n_ops:int -> (int * History.t) QCheck2.Gen.t

val arbitrary_eventually :
  spec:Spec.t ->
  procs:int ->
  prefix_ops:int ->
  suffix_ops:int ->
  (int * History.t * int) QCheck2.Gen.t

(** Well-formed concurrent histories.

    A history is a finite sequence of events such that each process
    subsequence is sequential: invocations and matching responses
    alternate, starting with an invocation (Section 3).  Construction
    validates well-formedness and derives the operation records that
    the checkers consume. *)

open Elin_spec

type t = {
  events : Event.t array;
  ops : Operation.t array;
  (* [op_of_event.(i)] is the id of the operation event [i] belongs to. *)
  op_of_event : int array;
}

type error =
  | Response_without_invocation of int   (* event index *)
  | Invocation_while_pending of int      (* H|p not sequential *)
  | Mismatched_response of int           (* response on a different object *)

let pp_error ppf = function
  | Response_without_invocation i ->
    Format.fprintf ppf "event %d: response with no pending invocation" i
  | Invocation_while_pending i ->
    Format.fprintf ppf "event %d: invocation while an operation is pending" i
  | Mismatched_response i ->
    Format.fprintf ppf "event %d: response does not match pending invocation" i

exception Ill_formed of error

(** [of_events events] validates well-formedness and builds the
    history.  O(events). *)
let of_events events =
  let events = Array.of_list events in
  let n = Array.length events in
  let op_of_event = Array.make n (-1) in
  (* pending.(p) = Some (op id) while process p has an open operation *)
  let max_proc = Array.fold_left (fun m (e : Event.t) -> max m e.proc) (-1) events in
  let pending = Array.make (max_proc + 1) None in
  let ops = ref [] in
  let n_ops = ref 0 in
  (* Operations under construction, keyed by id. *)
  let inv_info = Hashtbl.create 16 in
  Array.iteri
       (fun i (e : Event.t) ->
         match e.payload with
         | Invoke op ->
           (match pending.(e.proc) with
           | Some _ -> raise (Ill_formed (Invocation_while_pending i))
           | None ->
             let id = !n_ops in
             incr n_ops;
             pending.(e.proc) <- Some id;
             Hashtbl.replace inv_info id (e.proc, e.obj, op, i);
             op_of_event.(i) <- id)
         | Respond v ->
           (match pending.(e.proc) with
           | None -> raise (Ill_formed (Response_without_invocation i))
           | Some id ->
             let proc, obj, op, inv = Hashtbl.find inv_info id in
             if obj <> e.obj then raise (Ill_formed (Mismatched_response i));
             pending.(e.proc) <- None;
             op_of_event.(i) <- id;
             ops :=
               { Operation.id; proc; obj; op; inv; resp = Some (v, i) } :: !ops))
       events;
  (* Left-over pending operations. *)
  Array.iteri
    (fun _p -> function
      | None -> ()
      | Some id ->
        let proc, obj, op, inv = Hashtbl.find inv_info id in
        ops := { Operation.id; proc; obj; op; inv; resp = None } :: !ops)
    pending;
  let ops_arr = Array.make !n_ops
      { Operation.id = 0; proc = 0; obj = 0; op = Op.read; inv = 0; resp = None }
  in
  List.iter (fun (o : Operation.t) -> ops_arr.(o.id) <- o) !ops;
  { events; ops = ops_arr; op_of_event }

let of_events_result events =
  match of_events events with
  | h -> Ok h
  | exception Ill_formed e -> Error e

let well_formed events =
  match of_events events with _ -> true | exception Ill_formed _ -> false

let events t = Array.to_list t.events
let events_array t = t.events
let length t = Array.length t.events
let event t i = t.events.(i)

let ops t = Array.to_list t.ops
let ops_array t = t.ops
let n_ops t = Array.length t.ops
let op t id = t.ops.(id)
let op_of_event t i = t.op_of_event.(i)

let complete_ops t = List.filter Operation.is_complete (ops t)
let pending_ops t = List.filter Operation.is_pending (ops t)

let procs t =
  List.sort_uniq compare (Array.to_list (Array.map (fun (e : Event.t) -> e.proc) t.events))

let objs t =
  List.sort_uniq compare (Array.to_list (Array.map (fun (e : Event.t) -> e.obj) t.events))

(** [proj_proc t p] is H|p — the subsequence of events by process [p],
    as a fresh history (event indices are renumbered). *)
let proj_proc t p =
  of_events (List.filter (fun (e : Event.t) -> e.proc = p) (events t))

(** [proj_obj t o] is H|o. *)
let proj_obj t o =
  of_events (List.filter (fun (e : Event.t) -> e.obj = o) (events t))

(** [index_map_obj t o] maps each event index of [proj_obj t o] back to
    its index in [t]; needed to translate per-object stabilization
    bounds into whole-history bounds (Lemma 7). *)
let index_map_obj t o =
  let acc = ref [] in
  Array.iteri
    (fun i (e : Event.t) -> if e.obj = o then acc := i :: !acc)
    t.events;
  Array.of_list (List.rev !acc)

(** [prefix t k] is the history made of the first [k] events. *)
let prefix t k =
  if k < 0 || k > length t then invalid_arg "History.prefix";
  of_events (List.filteri (fun i _ -> i < k) (events t))

let is_sequential t =
  let rec go expect_invoke i =
    if i >= Array.length t.events then true
    else
      match (t.events.(i)).payload, expect_invoke with
      | Event.Invoke _, true -> go false (i + 1)
      | Event.Respond _, false ->
        (* must match the preceding invocation's process *)
        i > 0 && (t.events.(i)).proc = (t.events.(i - 1)).proc && go true (i + 1)
      | Event.Invoke _, false | Event.Respond _, true -> false
  in
  go true 0

(** [behaviour_of_sequential t] extracts the [(op, response)] list of a
    sequential history (pending final invocation allowed, dropped). *)
let behaviour_of_sequential t =
  if not (is_sequential t) then invalid_arg "History.behaviour_of_sequential";
  List.filter_map
    (fun (o : Operation.t) ->
      match o.resp with Some (v, _) -> Some (o.op, v) | None -> None)
    (ops t)

(** [append t events] extends the history with more events. *)
let append t more = of_events (events t @ more)

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list (fun ppf (i, e) ->
         Format.fprintf ppf "%3d: %a" i Event.pp e))
    (List.mapi (fun i e -> (i, e)) (events t))

let to_string t = Format.asprintf "%a" pp t

(** Build a sequential history from a behaviour: op/response pairs all
    by one process on one object.  Handy for tests. *)
let of_behaviour ?(proc = 0) ?(obj = 0) behaviour =
  of_events
    (List.concat_map
       (fun (op, r) ->
         [ Event.invoke ~proc ~obj op; Event.respond ~proc ~obj r ])
       behaviour)

(** [interleave specs] — an empty history. *)
let empty = of_events []

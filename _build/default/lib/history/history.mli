(** Well-formed concurrent histories: finite event sequences in which
    each per-process subsequence alternates invocations with matching
    responses, starting with an invocation (Section 3). *)

open Elin_spec

type t

type error =
  | Response_without_invocation of int  (** event index *)
  | Invocation_while_pending of int     (** H|p not sequential *)
  | Mismatched_response of int          (** response on a different object *)

val pp_error : Format.formatter -> error -> unit

exception Ill_formed of error

(** [of_events events] validates well-formedness and derives the
    operation records.  Raises {!Ill_formed}. *)
val of_events : Event.t list -> t

val of_events_result : Event.t list -> (t, error) result
val well_formed : Event.t list -> bool

val events : t -> Event.t list
val events_array : t -> Event.t array
val length : t -> int
val event : t -> int -> Event.t

val ops : t -> Operation.t list
val ops_array : t -> Operation.t array
val n_ops : t -> int
val op : t -> int -> Operation.t

(** [op_of_event t i] — id of the operation event [i] belongs to. *)
val op_of_event : t -> int -> int

val complete_ops : t -> Operation.t list
val pending_ops : t -> Operation.t list

val procs : t -> int list
val objs : t -> int list

(** [proj_proc t p] is H|p (event indices renumbered). *)
val proj_proc : t -> int -> t

(** [proj_obj t o] is H|o. *)
val proj_obj : t -> int -> t

(** [index_map_obj t o] maps each event index of [proj_obj t o] back to
    its index in [t] (used by the Lemma 7 composition). *)
val index_map_obj : t -> int -> int array

(** [prefix t k] — the first [k] events. *)
val prefix : t -> int -> t

val is_sequential : t -> bool

(** [behaviour_of_sequential t] extracts the [(op, response)] list of a
    sequential history (a pending final invocation is dropped). *)
val behaviour_of_sequential : t -> (Op.t * Value.t) list

val append : t -> Event.t list -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** [of_behaviour ?proc ?obj behaviour] — a sequential history. *)
val of_behaviour : ?proc:int -> ?obj:int -> (Op.t * Value.t) list -> t

val empty : t

(** Operations: an invocation event matched with its response event.

    Derived from a well-formed history by [History.of_events]; [inv]
    and [resp] carry the *indices* of the corresponding events, which
    is what the t-linearizability checkers reason about ("removing the
    first t events"). *)

open Elin_spec

type t = {
  id : int;            (* position in the history's operation list *)
  proc : int;
  obj : int;
  op : Op.t;
  inv : int;                        (* event index of the invocation *)
  resp : (Value.t * int) option;    (* response value and event index *)
}

let is_complete t = Option.is_some t.resp
let is_pending t = Option.is_none t.resp

let response_value t = Option.map fst t.resp
let response_index t = Option.map snd t.resp

(** Real-time precedence: [precedes a b] iff [a]'s response event is
    before [b]'s invocation event. *)
let precedes a b =
  match a.resp with Some (_, ri) -> ri < b.inv | None -> false

let pp ppf t =
  match t.resp with
  | Some (v, ri) ->
    Format.fprintf ppf "#%d p%d o%d %a -> %a [%d,%d]" t.id t.proc t.obj Op.pp
      t.op Value.pp v t.inv ri
  | None ->
    Format.fprintf ppf "#%d p%d o%d %a -> pending [%d,_]" t.id t.proc t.obj
      Op.pp t.op t.inv

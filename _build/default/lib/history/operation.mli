(** Operations: an invocation event matched with its response event
    (if any), derived from a well-formed history.  [inv] and [resp]
    carry event {e indices}, which is what the t-linearizability
    checkers reason about ("removing the first t events"). *)

open Elin_spec

type t = {
  id : int;            (** position in the history's operation list *)
  proc : int;
  obj : int;
  op : Op.t;
  inv : int;                       (** event index of the invocation *)
  resp : (Value.t * int) option;   (** response value and event index *)
}

val is_complete : t -> bool
val is_pending : t -> bool

val response_value : t -> Value.t option
val response_index : t -> int option

(** Real-time precedence: [precedes a b] iff [a]'s response event is
    before [b]'s invocation event. *)
val precedes : t -> t -> bool

val pp : Format.formatter -> t -> unit

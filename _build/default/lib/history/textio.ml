(** Plain-text (de)serialization of histories.

    Line format, one event per line, [#]-comments and blank lines
    ignored:

    {v
    inv <proc> <obj> <op-name> <value>*
    res <proc> <obj> <value>
    v}

    Values are s-expression-ish tokens: [u] (unit), [t]/[f] (bool),
    integers, [@str] (atoms, no spaces), [(pair v v)], [(list v ...)].
    Used by the [elin] CLI so histories can be checked from files. *)

open Elin_spec

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* --- value printing --- *)

let rec value_to_tokens (v : Value.t) =
  match v with
  | Value.Unit -> "u"
  | Value.Bool true -> "t"
  | Value.Bool false -> "f"
  | Value.Int n -> string_of_int n
  | Value.Str s -> "@" ^ s
  | Value.Pair (a, b) ->
    Printf.sprintf "(pair %s %s)" (value_to_tokens a) (value_to_tokens b)
  | Value.List xs ->
    Printf.sprintf "(list%s)"
      (String.concat "" (List.map (fun x -> " " ^ value_to_tokens x) xs))

(* --- tokenizer --- *)

let tokenize line =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> flush ()
      | '(' | ')' ->
        flush ();
        tokens := String.make 1 c :: !tokens
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

(* --- value parsing --- *)

let rec parse_value tokens =
  match tokens with
  | [] -> fail "expected value, got end of line"
  | "u" :: rest -> (Value.unit, rest)
  | "t" :: rest -> (Value.bool true, rest)
  | "f" :: rest -> (Value.bool false, rest)
  | "(" :: "pair" :: rest ->
    let a, rest = parse_value rest in
    let b, rest = parse_value rest in
    (match rest with
    | ")" :: rest -> (Value.pair a b, rest)
    | _ -> fail "expected ) after pair")
  | "(" :: "list" :: rest ->
    let rec elems acc rest =
      match rest with
      | ")" :: rest -> (Value.list (List.rev acc), rest)
      | _ ->
        let v, rest = parse_value rest in
        elems (v :: acc) rest
    in
    elems [] rest
  | tok :: rest when String.length tok > 0 && tok.[0] = '@' ->
    (Value.str (String.sub tok 1 (String.length tok - 1)), rest)
  | tok :: rest -> (
    match int_of_string_opt tok with
    | Some n -> (Value.int n, rest)
    | None -> fail "unrecognized value token %S" tok)

let parse_values tokens =
  let rec go acc = function
    | [] -> List.rev acc
    | tokens ->
      let v, rest = parse_value tokens in
      go (v :: acc) rest
  in
  go [] tokens

(* --- events --- *)

let event_to_line (e : Event.t) =
  match e.payload with
  | Event.Invoke op ->
    Printf.sprintf "inv %d %d %s%s" e.proc e.obj (Op.name op)
      (String.concat ""
         (List.map (fun v -> " " ^ value_to_tokens v) (Op.args op)))
  | Event.Respond v ->
    Printf.sprintf "res %d %d %s" e.proc e.obj (value_to_tokens v)

let event_of_line line =
  match tokenize line with
  | [] -> None
  | tok :: _ when String.length tok > 0 && tok.[0] = '#' -> None
  | "inv" :: p :: o :: name :: args ->
    let proc = int_of_string p and obj = int_of_string o in
    Some (Event.invoke ~proc ~obj (Op.make name ~args:(parse_values args)))
  | "res" :: p :: o :: rest ->
    let proc = int_of_string p and obj = int_of_string o in
    let v, leftover = parse_value rest in
    if leftover <> [] then fail "trailing tokens after response value";
    Some (Event.respond ~proc ~obj v)
  | tok :: _ -> fail "unrecognized event kind %S" tok

let to_string h =
  String.concat "\n" (List.map event_to_line (History.events h)) ^ "\n"

let of_string s =
  let lines = String.split_on_char '\n' s in
  History.of_events (List.filter_map event_of_line lines)

let to_file path h =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string h))

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

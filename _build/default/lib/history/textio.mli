(** Plain-text (de)serialization of histories (one event per line;
    [#]-comments and blank lines ignored), used by the [elin] CLI. *)

exception Parse_error of string

val event_to_line : Event.t -> string

(** [event_of_line line] — [None] for comments/blank lines; raises
    {!Parse_error} on malformed input. *)
val event_of_line : string -> Event.t option

val to_string : History.t -> string
val of_string : string -> History.t

val to_file : string -> History.t -> unit
val of_file : string -> History.t

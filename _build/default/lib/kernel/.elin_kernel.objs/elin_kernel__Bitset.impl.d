lib/kernel/bitset.ml: Array Format Hashtbl List Printf Stdlib

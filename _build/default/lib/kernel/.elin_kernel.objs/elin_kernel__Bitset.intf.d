lib/kernel/bitset.mli: Format

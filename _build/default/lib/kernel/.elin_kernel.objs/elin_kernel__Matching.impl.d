lib/kernel/matching.ml: Array List

lib/kernel/matching.mli:

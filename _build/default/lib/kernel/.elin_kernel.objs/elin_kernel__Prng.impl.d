lib/kernel/prng.ml: Array Int64 List

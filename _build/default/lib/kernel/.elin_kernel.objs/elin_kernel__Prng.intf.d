lib/kernel/prng.mli:

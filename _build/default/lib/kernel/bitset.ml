(** Immutable fixed-width bitsets.

    Used as memoization keys by the linearizability checkers, where the
    key is "the set of operations already placed in the linearization".
    Widths are small (tens to a few hundred bits) but exceed 63, so we
    back the set with an int array.  Values are immutable: [add] copies. *)

type t = { width : int; words : int array }

let bits_per_word = 62 (* stay clear of the tag bit and sign *)

let nwords width = (width + bits_per_word - 1) / bits_per_word

let empty width =
  if width < 0 then invalid_arg "Bitset.empty: negative width";
  { width; words = Array.make (max 1 (nwords width)) 0 }

let check_index t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitset: index %d out of width %d" i t.width)

let mem t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let add t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  if t.words.(w) land (1 lsl b) <> 0 then t
  else begin
    let words = Array.copy t.words in
    words.(w) <- words.(w) lor (1 lsl b);
    { t with words }
  end

let remove t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  if t.words.(w) land (1 lsl b) = 0 then t
  else begin
    let words = Array.copy t.words in
    words.(w) <- words.(w) land lnot (1 lsl b);
    { t with words }
  end

let cardinal t =
  let count_word w =
    let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
    go 0 w
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let equal a b = a.width = b.width && a.words = b.words

let compare a b =
  let c = Stdlib.compare a.width b.width in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash t.words

(** [is_full t] holds when every index in [0, width) is present. *)
let is_full t = cardinal t = t.width

let fold f t init =
  let acc = ref init in
  for i = 0 to t.width - 1 do
    if mem t i then acc := f i !acc
  done;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list width xs = List.fold_left add (empty width) xs

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (to_list t)

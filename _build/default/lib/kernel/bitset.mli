(** Immutable fixed-width bitsets.

    Memoization keys for the linearizability checkers ("the set of
    operations already placed").  Values are immutable: [add] and
    [remove] copy. *)

type t

(** [empty width] — no members; indices range over [0, width). *)
val empty : int -> t

(** [mem t i] — membership.  Raises [Invalid_argument] out of range. *)
val mem : t -> int -> bool

(** [add t i] — [t ∪ {i}]; physically equal to [t] if already present. *)
val add : t -> int -> t

(** [remove t i] — [t \ {i}]. *)
val remove : t -> int -> t

val cardinal : t -> int
val is_empty : t -> bool

(** [is_full t] holds when every index in [0, width) is present. *)
val is_full : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** [to_list t] — members in increasing order. *)
val to_list : t -> int list

(** [of_list width xs] — the set of [xs]. *)
val of_list : int -> int list -> t

val pp : Format.formatter -> t -> unit

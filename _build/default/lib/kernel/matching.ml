(** Greedy matching for upward-closed bipartite eligibility.

    The fast fetch&increment t-linearizability checker (see
    [Elin_checker.Faic]) must decide whether a set of "gap slots"
    [s_0 < s_1 < ...] can each be filled by a distinct "filler"
    operation, where filler [f] may take slot [s] iff [lb f <= s].
    Eligibility is upward closed in [s], so by Hall's theorem a
    matching exists iff, taking slots in increasing order, the i-th
    slot has at least [i+1] fillers with lower bound [<= s_i]; the
    greedy strategy of assigning the smallest-lower-bound unused
    filler to each slot in order realizes it. *)

(** [assign ~slots ~lower_bounds] returns [Some pairing] mapping each
    slot (in the order given, which must be strictly increasing) to the
    index of a distinct filler whose lower bound does not exceed it, or
    [None] when no complete matching exists.  [lower_bounds.(i)] is the
    smallest slot filler [i] may occupy. *)
let assign ~slots ~lower_bounds =
  let nf = Array.length lower_bounds in
  (* Sort filler indices by lower bound so that the greedy choice is
     always the most-constrained compatible filler. *)
  let order = Array.init nf (fun i -> i) in
  Array.sort (fun a b -> compare lower_bounds.(a) lower_bounds.(b)) order;
  let next = ref 0 in
  let rec fill acc = function
    | [] -> Some (List.rev acc)
    | slot :: rest ->
      if !next >= nf then None
      else begin
        let f = order.(!next) in
        if lower_bounds.(f) <= slot then begin
          incr next;
          fill ((slot, f) :: acc) rest
        end else
          (* Every remaining filler has an even larger lower bound, and
             eligibility is upward closed, so this slot is unfillable. *)
          None
      end
  in
  fill [] slots

(** [feasible ~slots ~lower_bounds] decides matching existence only. *)
let feasible ~slots ~lower_bounds =
  match assign ~slots ~lower_bounds with Some _ -> true | None -> false

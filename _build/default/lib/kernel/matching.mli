(** Greedy matching for upward-closed bipartite eligibility.

    Used by the fast fetch&increment t-linearizability checker
    ([Elin_checker.Faic]): gap slots must be filled by distinct filler
    operations, where filler [f] may take slot [s] iff
    [lower_bounds.(f) <= s].  Eligibility is upward closed in [s], so
    Hall's condition reduces to a greedy sweep. *)

(** [assign ~slots ~lower_bounds] returns [Some pairing] mapping each
    slot (given in strictly increasing order) to the index of a
    distinct compatible filler, or [None] when no complete matching
    exists. *)
val assign :
  slots:int list -> lower_bounds:int array -> (int * int) list option

(** [feasible ~slots ~lower_bounds] decides matching existence only. *)
val feasible : slots:int list -> lower_bounds:int array -> bool

(** Deterministic splittable PRNG (splitmix64).

    Every randomized component of the reproduction (history generators,
    random schedulers, adversary policies) draws from this generator so
    that a run is a pure function of its seed.  We deliberately avoid
    [Stdlib.Random] to keep runs reproducible across OCaml versions. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* Core splitmix64 output function. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [split t] returns a statistically independent generator; [t] advances. *)
let split t =
  let s = next_int64 t in
  { state = Int64.mul s 0xDA942042E4DD58B5L }

let bits t = Int64.to_int (next_int64 t) land max_int

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias on pathological bounds. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [float t] is uniform in [0, 1). *)
let float t =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 (* 2^53 *)

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Prng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
let shuffle t xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** [subset t xs ~p] keeps each element of [xs] independently with
    probability [p]. *)
let subset t xs ~p = List.filter (fun _ -> float t < p) xs

(** Deterministic splittable PRNG (splitmix64).

    Every randomized component of the reproduction (history generators,
    random schedulers, adversary policies) draws from this generator so
    that a run is a pure function of its seed. *)

type t

(** [create seed] — a fresh generator. *)
val create : int -> t

(** [copy t] — an independent clone with the same state. *)
val copy : t -> t

(** [split t] returns a statistically independent generator; [t]
    advances. *)
val split : t -> t

(** [bits t] — a non-negative pseudo-random int. *)
val bits : t -> int

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
val choose : t -> 'a list -> 'a

(** [shuffle t xs] is a uniformly random permutation of [xs]. *)
val shuffle : t -> 'a list -> 'a list

(** [subset t xs ~p] keeps each element independently with probability
    [p]. *)
val subset : t -> 'a list -> p:float -> 'a list

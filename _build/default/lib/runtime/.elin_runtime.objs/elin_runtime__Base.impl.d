lib/runtime/base.ml: Elin_kernel Elin_spec Op Spec Value

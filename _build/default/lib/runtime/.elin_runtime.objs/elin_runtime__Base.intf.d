lib/runtime/base.mli: Elin_kernel Elin_spec Op Spec Value

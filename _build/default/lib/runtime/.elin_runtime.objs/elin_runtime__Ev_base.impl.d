lib/runtime/ev_base.ml: Base Codec Elin_spec List Spec Value

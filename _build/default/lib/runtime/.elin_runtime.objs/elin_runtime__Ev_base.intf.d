lib/runtime/ev_base.mli: Base Elin_spec Spec Value

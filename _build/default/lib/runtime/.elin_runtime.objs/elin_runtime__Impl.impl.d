lib/runtime/impl.ml: Base Elin_spec Op Program Value

lib/runtime/impl.mli: Base Elin_spec Op Program Spec Value

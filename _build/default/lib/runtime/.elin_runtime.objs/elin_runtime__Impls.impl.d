lib/runtime/impls.ml: Announce_board Array Base Cas_object Elin_spec Impl Op Printf Program Register Value

lib/runtime/impls.mli: Impl

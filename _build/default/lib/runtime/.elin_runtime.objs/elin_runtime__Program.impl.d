lib/runtime/program.ml: Elin_spec Op Value

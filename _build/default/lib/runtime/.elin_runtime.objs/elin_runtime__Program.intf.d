lib/runtime/program.mli: Elin_spec Op Value

lib/runtime/run.ml: Array Base Elin_history Elin_kernel Elin_spec Event History Impl List Op Option Program Sched Spec Value

lib/runtime/run.mli: Elin_history Elin_kernel Elin_spec History Impl Op Sched Spec Value

lib/runtime/sched.ml: Array Elin_kernel List Option Printf Prng String

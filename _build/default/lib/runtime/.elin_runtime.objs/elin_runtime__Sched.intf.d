lib/runtime/sched.mli:

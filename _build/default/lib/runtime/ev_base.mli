(** Adversarial eventually-linearizable base objects.

    Realizes the behaviours the paper's negative results quantify over:
    every access is announced in the object's in-state log; before
    stabilization, responses come from a weakly-consistency-preserving
    {e view} (the caller's own operations, optionally everyone's); at
    stabilization the log is merged in announcement order and the
    object behaves atomically thereafter.  Weak consistency of every
    pre-stabilization answer holds by construction. *)

open Elin_spec

type stabilization =
  | At_step of int         (** global scheduler step reaches the bound *)
  | After_accesses of int  (** the object has served this many accesses *)
  | Never                  (** purely adversarial, for negative runs *)
  | Immediately            (** degenerates to a linearizable object *)

type view_policy =
  | Own_only    (** deterministic local-copy semantics until stabilization *)
  | Own_or_all  (** adversary branching: local view or full-log view *)

type config = {
  spec : Spec.t;  (** must be deterministic *)
  stabilization : stabilization;
  view : view_policy;
}

(** State encoding, exposed for white-box tests:
    [[committed; log; stabilized; accesses]]. *)

val encode :
  committed:Value.t ->
  log:Value.t list ->
  stabilized:bool ->
  accesses:int ->
  Value.t

val decode : Value.t -> Value.t * Value.t list * bool * int

(** [stabilized_state cfg state] — force stabilization now (merge the
    log into the committed state).  Idempotent. *)
val stabilized_state : config -> Value.t -> Value.t

val make : config -> Base.t

(** Convenience constructors. *)

val local_until_step : Spec.t -> int -> Base.t
val local_until_accesses : Spec.t -> int -> Base.t
val adversarial_until_step : Spec.t -> int -> Base.t
val never_stabilizing : Spec.t -> Base.t

(** Implementations of shared objects from base objects.

    An implementation provides, for each operation of the implemented
    type, a programme over the base objects (Section 3 of the paper).
    Processes additionally carry a persistent *local* state value
    across their operations — the paper's programmes are free to use
    unbounded process-local memory (e.g. the counters [c_i] of
    Figure 1, or the trivial eventually linearizable test&set). *)

open Elin_spec

type t = {
  name : string;
  bases : Base.t array;
  local_init : Value.t;
  (* [program ~proc ~local op] computes [op]'s response and the new
     local state. *)
  program : proc:int -> local:Value.t -> Op.t -> (Value.t * Value.t) Program.t;
}

(** [direct base] — the implemented object *is* base object 0: every
    operation is a single atomic access.  Wrapping an
    [Ev_base]-constructed object this way yields an eventually
    linearizable implementation whose only base object is one
    linearizable "board" (the log+committed state machine accessed
    atomically). *)
let direct base =
  {
    name = base.Base.name;
    bases = [| base |];
    local_init = Value.unit;
    program =
      (fun ~proc:_ ~local op ->
        Program.bind (Program.access 0 op) (fun r ->
            Program.return (r, local)));
  }

(** [of_spec spec] — a linearizable implementation by a single atomic
    object; the trivial baseline. *)
let of_spec spec = direct (Base.linearizable spec)

(** Implementations of shared objects from base objects: for each
    operation of the implemented type, a programme over the base
    objects (Section 3).  Processes carry a persistent local state
    value across their operations (as the paper's programmes do, e.g.
    the counters of Figure 1). *)

open Elin_spec

type t = {
  name : string;
  bases : Base.t array;
  local_init : Value.t;
  program :
    proc:int -> local:Value.t -> Op.t -> (Value.t * Value.t) Program.t;
      (** computes the operation's response and the new local state *)
}

(** [direct base] — the implemented object {e is} base object 0: every
    operation is a single atomic access. *)
val direct : Base.t -> t

(** [of_spec spec] — a linearizable implementation by a single atomic
    object; the trivial baseline. *)
val of_spec : Spec.t -> t

(** Concrete implementations used across experiments and benchmarks.

    - [fai_from_cas]: the introduction's classic lock-free linearizable
      fetch&increment from compare&swap (baseline of experiment B1);
    - [fai_from_board]: a wait-free linearizable fetch&increment whose
      single base object is an announce board (announcement order *is*
      the linearization order);
    - [fai_ev_board ~k]: an eventually linearizable fetch&increment
      that "gives up synchronizing" for its first [k] announcements —
      the introduction's scenario made concrete, and the concrete
      algorithm A fed to the Prop. 18 stabilization construction;
    - [sum_counter]: inc/read counter from single-writer registers
      (wait-free; weakly consistent reads). *)

open Elin_spec

let ( let* ) = Program.bind

(* ------------------------------------------------------------------ *)
(* Linearizable fetch&increment from compare&swap (lock-free).        *)
(* ------------------------------------------------------------------ *)

let fai_from_cas () : Impl.t =
  let cas_spec = Cas_object.spec () in
  let rec attempt () =
    let* v = Program.access 0 Op.read in
    let v = Value.to_int v in
    let* ok = Program.access 0 (Op.cas ~expected:v ~desired:(v + 1)) in
    if Value.to_bool ok then Program.return (Value.int v) else attempt ()
  in
  {
    Impl.name = "fai/cas";
    bases = [| Base.linearizable cas_spec |];
    local_init = Value.unit;
    program =
      (fun ~proc:_ ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let* v = attempt () in
          Program.return (v, local)
        | other -> invalid_arg ("fai/cas: unknown operation " ^ other));
  }

(* ------------------------------------------------------------------ *)
(* Wait-free linearizable fetch&increment from an announce board.     *)
(* ------------------------------------------------------------------ *)

let fai_from_board () : Impl.t =
  {
    Impl.name = "fai/board";
    bases = [| Base.linearizable (Announce_board.spec ()) |];
    local_init = Value.unit;
    program =
      (fun ~proc ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let* idx = Program.access 0 (Announce_board.announce (Value.int proc)) in
          Program.return (idx, local)
        | other -> invalid_arg ("fai/board: unknown operation " ^ other));
  }

(* ------------------------------------------------------------------ *)
(* Eventually linearizable fetch&increment: algorithm A of E13.       *)
(*                                                                    *)
(* Each fetch&inc announces itself on the board.  If the announcement *)
(* is among the first [k], the process "fails to synchronize": it     *)
(* returns only its own operation count (weakly consistent — the      *)
(* local view contains exactly its own preceding operations).  From   *)
(* the k-th announcement on, the announcement index is returned, so   *)
(* the object behaves like a linearizable fetch&increment thereafter. *)
(* ------------------------------------------------------------------ *)

let fai_ev_board ~k () : Impl.t =
  {
    Impl.name = Printf.sprintf "fai/ev-board(k=%d)" k;
    bases = [| Base.linearizable (Announce_board.spec ()) |];
    local_init = Value.int 0; (* own completed fetch&inc count *)
    program =
      (fun ~proc ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let own = Value.to_int local in
          let* idx = Program.access 0 (Announce_board.announce (Value.int proc)) in
          let idx = Value.to_int idx in
          let resp = if idx >= k - 1 then idx else own in
          Program.return (Value.int resp, Value.int (own + 1))
        | other -> invalid_arg ("fai/ev-board: unknown operation " ^ other));
  }

(* ------------------------------------------------------------------ *)
(* Counter from single-writer registers: inc writes your own cell,    *)
(* read sums all cells one register at a time.  Wait-free; reads are  *)
(* weakly consistent but not linearizable under concurrent updates.   *)
(* ------------------------------------------------------------------ *)

let sum_counter ~procs () : Impl.t =
  let reg = Register.spec () in
  let rec sum p acc =
    if p >= procs then Program.return acc
    else
      let* v = Program.access p Op.read in
      sum (p + 1) (acc + Value.to_int v)
  in
  {
    Impl.name = "counter/sum-registers";
    bases = Array.init procs (fun _ -> Base.linearizable reg);
    local_init = Value.int 0; (* own increment count *)
    program =
      (fun ~proc ~local op ->
        match Op.name op with
        | "inc" ->
          let own = Value.to_int local + 1 in
          let* () =
            Program.map Value.to_unit (Program.access proc (Op.write own))
          in
          Program.return (Value.unit, Value.int own)
        | "read" ->
          let* total = sum 0 0 in
          Program.return (Value.int total, local)
        | other -> invalid_arg ("counter/sum: unknown operation " ^ other));
  }

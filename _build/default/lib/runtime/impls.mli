(** Concrete implementations used across experiments and benchmarks. *)

(** The classic lock-free linearizable fetch&increment from
    compare&swap (read, CAS, retry) — baseline of experiment B1. *)
val fai_from_cas : unit -> Impl.t

(** A wait-free linearizable fetch&increment whose single base object
    is an announce board: announcement order is the linearization
    order (one access per operation). *)
val fai_from_board : unit -> Impl.t

(** An eventually linearizable fetch&increment that "gives up
    synchronizing" for its first [k] announcements, returning its own
    operation count instead (weakly consistent by construction); from
    the k-th announcement on it returns the announcement index.  The
    concrete algorithm A of experiment E13. *)
val fai_ev_board : k:int -> unit -> Impl.t

(** Counter from single-writer registers: [inc] writes the process's
    own cell, [read] sums all cells.  Wait-free; reads are weakly
    consistent but not linearizable under concurrent updates. *)
val sum_counter : procs:int -> unit -> Impl.t

(** Process programmes as a free monad over base-object accesses.

    One [Access] is one atomic step on a base object, the standard
    asynchronous shared-memory model: the scheduler interleaves
    processes between accesses, and each access invokes an operation on
    a base object and awaits its response.  Programmes are immutable
    values, so the execution-tree explorers can hold continuations in
    search nodes and branch without replay. *)

open Elin_spec

type 'a t =
  | Return of 'a
  | Access of int * Op.t * (Value.t -> 'a t)

let return x = Return x

(** [access obj op] performs [op] on base object [obj] and yields the
    response. *)
let access obj op = Access (obj, op, fun v -> Return v)

let rec bind m f =
  match m with
  | Return x -> f x
  | Access (obj, op, k) -> Access (obj, op, fun v -> bind (k v) f)

let map f m = bind m (fun x -> return (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) m f = map f m
end

(** [steps_bound m ~fuel] — counts accesses of a straight-line
    programme fed constant responses; diagnostic only. *)
let rec iter_list f = function
  | [] -> return ()
  | x :: rest -> bind (f x) (fun () -> iter_list f rest)

(** Sequentially run [f] over [0 .. n-1]. *)
let rec for_ i n f =
  if i >= n then return () else bind (f i) (fun () -> for_ (i + 1) n f)

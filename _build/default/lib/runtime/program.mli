(** Process programmes as a free monad over base-object accesses.

    One [Access] is one atomic step on a base object (the standard
    asynchronous shared-memory model).  Programmes are immutable
    values, so explorers can hold continuations in search nodes and
    branch without replay; the constructors are exposed for the
    transformation passes (Theorem 12's redirection, Prop. 18's
    response shifting). *)

open Elin_spec

type 'a t =
  | Return of 'a
  | Access of int * Op.t * (Value.t -> 'a t)

val return : 'a -> 'a t

(** [access obj op] performs [op] on base object [obj] and yields the
    response. *)
val access : int -> Op.t -> Value.t t

val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : ('a -> 'b) -> 'a t -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
end

(** [iter_list f xs] — run [f] over [xs] sequentially. *)
val iter_list : ('a -> unit t) -> 'a list -> unit t

(** [for_ i n f] — run [f] over [i .. n-1] sequentially. *)
val for_ : int -> int -> (int -> unit t) -> unit t

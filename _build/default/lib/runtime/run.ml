(** The run harness: execute an implementation under a scheduler and
    emit the implemented-object history.

    Each scheduler step advances one process by one atomic action:
    invoking its next operation (emits the invocation event), one base
    object access, or returning (emits the response event).  The
    resulting history of invocations and responses on the implemented
    object — object id 0 — is what the checkers consume. *)

open Elin_spec
open Elin_history

type proc_runtime = {
  mutable workload : Op.t list;
  mutable local : Value.t;
  mutable running : (Value.t * Value.t) Program.t option;
  (* Stats: scheduler step at which the current operation was invoked. *)
  mutable invoked_at : int;
  mutable steps_in_op : int;
}

type stats = {
  steps : int;                  (* scheduler steps consumed *)
  completed : int;              (* implemented operations completed *)
  max_steps_per_op : int;       (* wait-freedom witness *)
  op_step_counts : int list;    (* per completed op, in completion order *)
}

type outcome = {
  history : History.t;
  stats : stats;
  final_base_states : Value.t array;
  (* Per-process local state at the end of the run. *)
  final_locals : Value.t array;
  (* True iff every workload operation completed. *)
  all_done : bool;
}

(** [execute impl ~workloads ~sched ~max_steps ~seed] runs the
    implementation.  [workloads.(p)] is the list of operations process
    [p] performs, in order.  [seed] resolves base-object adversary
    branching. *)
let execute (impl : Impl.t) ~workloads ~(sched : Sched.t) ?(max_steps = 100_000)
    ?(seed = 0) () =
  let n = Array.length workloads in
  let rng = Elin_kernel.Prng.create seed in
  let bases =
    Array.map
      (fun b ->
        Base.Live.create ~seed:(Elin_kernel.Prng.bits rng) b)
      impl.Impl.bases
  in
  let procs =
    Array.init n (fun p ->
        {
          workload = workloads.(p);
          local = impl.Impl.local_init;
          running = None;
          invoked_at = 0;
          steps_in_op = 0;
        })
  in
  let events = ref [] in
  let emit e = events := e :: !events in
  let step = ref 0 in
  let completed = ref 0 in
  let op_steps = ref [] in
  let runnable () =
    List.filter
      (fun p ->
        let pr = procs.(p) in
        Option.is_some pr.running || pr.workload <> [])
      (List.init n (fun p -> p))
  in
  let advance p =
    let pr = procs.(p) in
    match pr.running with
    | None -> (
      match pr.workload with
      | [] -> ()
      | op :: rest ->
        pr.workload <- rest;
        emit (Event.invoke ~proc:p ~obj:0 op);
        pr.invoked_at <- !step;
        pr.steps_in_op <- 0;
        pr.running <- Some (impl.Impl.program ~proc:p ~local:pr.local op))
    | Some (Program.Return (resp, local')) ->
      emit (Event.respond ~proc:p ~obj:0 resp);
      pr.local <- local';
      pr.running <- None;
      incr completed;
      op_steps := pr.steps_in_op :: !op_steps
    | Some (Program.Access (obj, op, k)) ->
      let resp = Base.Live.access bases.(obj) ~proc:p ~step:!step op in
      pr.steps_in_op <- pr.steps_in_op + 1;
      pr.running <- Some (k resp)
  in
  let stop = ref false in
  while (not !stop) && !step < max_steps do
    match runnable () with
    | [] -> stop := true
    | rs -> (
      match sched.Sched.choose ~runnable:rs ~step:!step with
      | None -> stop := true
      | Some p ->
        advance p;
        incr step)
  done;
  let history = History.of_events (List.rev !events) in
  let all_done =
    Array.for_all
      (fun pr -> pr.workload = [] && Option.is_none pr.running)
      procs
  in
  {
    history;
    stats =
      {
        steps = !step;
        completed = !completed;
        max_steps_per_op = List.fold_left max 0 !op_steps;
        op_step_counts = List.rev !op_steps;
      };
    final_base_states = Array.map Base.Live.state bases;
    final_locals = Array.map (fun pr -> pr.local) procs;
    all_done;
  }

(** [uniform_workload op ~procs ~per_proc] — every process performs
    [per_proc] copies of [op]. *)
let uniform_workload op ~procs ~per_proc =
  Array.init procs (fun _ -> List.init per_proc (fun _ -> op))

(** [random_workload rng spec ~procs ~per_proc] — every process
    performs [per_proc] operations drawn uniformly from
    [Spec.all_ops]. *)
let random_workload rng spec ~procs ~per_proc =
  Array.init procs (fun _ ->
      List.init per_proc (fun _ ->
          Elin_kernel.Prng.choose rng (Spec.all_ops spec)))

(** The run harness: execute an implementation under a scheduler and
    emit the implemented-object history (object id 0).  Each scheduler
    step advances one process by one atomic action: invoking its next
    operation, one base-object access, or responding. *)

open Elin_spec
open Elin_history

type stats = {
  steps : int;                (** scheduler steps consumed *)
  completed : int;            (** implemented operations completed *)
  max_steps_per_op : int;     (** wait-freedom witness (base accesses) *)
  op_step_counts : int list;  (** per completed op, in completion order *)
}

type outcome = {
  history : History.t;
  stats : stats;
  final_base_states : Value.t array;
  final_locals : Value.t array;
  all_done : bool;  (** every workload operation completed *)
}

(** [execute impl ~workloads ~sched ?max_steps ?seed ()] —
    [workloads.(p)] lists process [p]'s operations in order; [seed]
    resolves base-object adversary branching. *)
val execute :
  Impl.t ->
  workloads:Op.t list array ->
  sched:Sched.t ->
  ?max_steps:int ->
  ?seed:int ->
  unit ->
  outcome

(** [uniform_workload op ~procs ~per_proc] — every process performs
    [per_proc] copies of [op]. *)
val uniform_workload : Op.t -> procs:int -> per_proc:int -> Op.t list array

(** [random_workload rng spec ~procs ~per_proc] — operations drawn
    uniformly from [Spec.all_ops]. *)
val random_workload :
  Elin_kernel.Prng.t -> Spec.t -> procs:int -> per_proc:int -> Op.t list array

(** Schedulers: adversaries that pick which process steps next.

    A scheduler is a stateful policy consulted once per step with the
    set of runnable processes; returning [None] abandons the run (used
    by crash adversaries that have killed everyone they intend to).
    All randomness is seeded. *)

open Elin_kernel

type t = {
  name : string;
  choose : runnable:int list -> step:int -> int option;
}

let round_robin () =
  let last = ref (-1) in
  let choose ~runnable ~step:_ =
    match runnable with
    | [] -> None
    | _ ->
      (* Smallest runnable process strictly greater than [!last],
         wrapping around. *)
      let next =
        match List.filter (fun p -> p > !last) runnable with
        | p :: _ -> p
        | [] -> List.hd runnable
      in
      last := next;
      Some next
  in
  { name = "round-robin"; choose }

let random ~seed =
  let rng = Prng.create seed in
  let choose ~runnable ~step:_ =
    match runnable with [] -> None | rs -> Some (Prng.choose rng rs)
  in
  { name = Printf.sprintf "random(%d)" seed; choose }

(** [solo_after ~proc ~step inner] runs [inner] until global step
    [step], then lets only [proc] run — the obstruction-freedom /
    solo-termination adversary. *)
let solo_after ~proc ~step:cut inner =
  let choose ~runnable ~step =
    if step < cut then inner.choose ~runnable ~step
    else if List.mem proc runnable then Some proc
    else None
  in
  { name = Printf.sprintf "%s;solo(p%d)@%d" inner.name proc cut; choose }

(** [crash ~crashes inner] removes process [p] from the runnable set
    for good once global step reaches [s], for each [(p, s)] in
    [crashes] — the paper's "swapped or paged out forever" scenario
    that wait-freedom must tolerate. *)
let crash ~crashes inner =
  let choose ~runnable ~step =
    let alive =
      List.filter
        (fun p ->
          not (List.exists (fun (q, s) -> q = p && step >= s) crashes))
        runnable
    in
    inner.choose ~runnable:alive ~step
  in
  let pp_crash (p, s) = Printf.sprintf "p%d@%d" p s in
  {
    name =
      Printf.sprintf "%s;crash[%s]" inner.name
        (String.concat "," (List.map pp_crash crashes));
    choose;
  }

(** [pause ~proc ~from_step ~until_step inner] suspends [proc] during
    the window — a transient page-out.  If nobody else can run, the
    pause ends early: in an asynchronous model a step where no process
    moves is not an event, so a global stall gains the adversary
    nothing. *)
let pause ~proc ~from_step ~until_step inner =
  let choose ~runnable ~step =
    let alive =
      if step >= from_step && step < until_step then
        match List.filter (fun p -> p <> proc) runnable with
        | [] -> runnable
        | others -> others
      else runnable
    in
    inner.choose ~runnable:alive ~step
  in
  {
    name = Printf.sprintf "%s;pause(p%d,[%d,%d))" inner.name proc from_step until_step;
    choose;
  }

(** [weighted ~seed ~weights] favours processes proportionally to their
    weight — a contention-skew adversary for the benchmarks. *)
let weighted ~seed ~weights =
  let rng = Prng.create seed in
  let choose ~runnable ~step:_ =
    match runnable with
    | [] -> None
    | rs ->
      let total =
        List.fold_left
          (fun acc p ->
            acc + (try weights.(p) with Invalid_argument _ -> 1))
          0 rs
      in
      if total <= 0 then Some (Prng.choose rng rs)
      else begin
        let x = ref (Prng.int rng total) in
        let found = ref None in
        List.iter
          (fun p ->
            if Option.is_none !found then begin
              let w = try weights.(p) with Invalid_argument _ -> 1 in
              if !x < w then found := Some p else x := !x - w
            end)
          rs;
        !found
      end
  in
  { name = "weighted"; choose }

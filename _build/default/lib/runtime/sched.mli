(** Schedulers: adversaries that pick which process steps next.
    Returning [None] abandons the run.  All randomness is seeded. *)

type t = {
  name : string;
  choose : runnable:int list -> step:int -> int option;
}

val round_robin : unit -> t
val random : seed:int -> t

(** [solo_after ~proc ~step inner] — run [inner] until the given global
    step, then let only [proc] run (the obstruction-freedom
    adversary). *)
val solo_after : proc:int -> step:int -> t -> t

(** [crash ~crashes inner] — remove process [p] for good once the step
    reaches [s], for each [(p, s)]. *)
val crash : crashes:(int * int) list -> t -> t

(** [pause ~proc ~from_step ~until_step inner] — suspend [proc] during
    the window (a transient page-out). *)
val pause : proc:int -> from_step:int -> until_step:int -> t -> t

(** [weighted ~seed ~weights] — favour processes proportionally to
    their weight (contention skew for the benchmarks). *)
val weighted : seed:int -> weights:int array -> t

lib/spec/announce_board.ml: List Op Spec Value

lib/spec/announce_board.mli: Op Spec Value

lib/spec/cas_object.ml: List Op Spec Value

lib/spec/cas_object.mli: Op Spec Value

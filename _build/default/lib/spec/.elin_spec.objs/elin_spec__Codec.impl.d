lib/spec/codec.ml: Op Value

lib/spec/codec.mli: Op Value

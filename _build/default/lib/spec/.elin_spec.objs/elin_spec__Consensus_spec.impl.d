lib/spec/consensus_spec.ml: List Op Spec Value

lib/spec/consensus_spec.mli: Op Spec Value

lib/spec/constant_object.ml: Op Spec Value

lib/spec/constant_object.mli: Op Spec Value

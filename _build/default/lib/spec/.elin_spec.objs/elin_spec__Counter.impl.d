lib/spec/counter.ml: Op Spec Value

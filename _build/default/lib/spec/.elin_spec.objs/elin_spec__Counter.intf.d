lib/spec/counter.mli: Op Spec Value

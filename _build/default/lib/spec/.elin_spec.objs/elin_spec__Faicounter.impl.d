lib/spec/faicounter.ml: Op Spec Value

lib/spec/faicounter.mli: Op Spec Value

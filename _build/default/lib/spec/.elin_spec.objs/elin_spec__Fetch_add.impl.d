lib/spec/fetch_add.ml: List Op Spec Value

lib/spec/fetch_add.mli: Op Spec Value

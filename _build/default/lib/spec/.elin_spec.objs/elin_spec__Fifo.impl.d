lib/spec/fifo.ml: List Op Spec Value

lib/spec/fifo.mli: Op Spec Value

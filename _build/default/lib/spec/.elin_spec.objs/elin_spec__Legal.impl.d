lib/spec/legal.ml: Format List Op Spec Value

lib/spec/legal.mli: Format Op Spec Value

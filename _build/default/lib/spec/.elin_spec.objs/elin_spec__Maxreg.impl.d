lib/spec/maxreg.ml: List Op Spec Value

lib/spec/maxreg.mli: Op Spec Value

lib/spec/nd_coin.ml: Op Spec Value

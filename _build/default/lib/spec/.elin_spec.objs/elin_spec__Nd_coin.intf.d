lib/spec/nd_coin.mli: Op Spec Value

lib/spec/op.ml: Format Hashtbl List String Value

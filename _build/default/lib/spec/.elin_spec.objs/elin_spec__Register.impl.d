lib/spec/register.ml: List Op Spec Value

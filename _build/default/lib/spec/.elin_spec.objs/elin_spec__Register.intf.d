lib/spec/register.mli: Op Spec Value

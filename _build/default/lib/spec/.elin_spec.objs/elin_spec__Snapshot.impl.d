lib/spec/snapshot.ml: List Op Spec Value

lib/spec/snapshot.mli: Op Spec Value

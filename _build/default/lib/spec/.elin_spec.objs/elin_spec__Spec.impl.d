lib/spec/spec.ml: Format Hashtbl List Op Printf Queue Value

lib/spec/spec.mli: Format Op Value

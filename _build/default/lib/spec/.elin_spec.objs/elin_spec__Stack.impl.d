lib/spec/stack.ml: List Op Spec Value

lib/spec/stack.mli: Op Spec Value

lib/spec/swap_register.ml: List Op Spec Value

lib/spec/swap_register.mli: Op Spec Value

lib/spec/testandset.ml: Op Spec Value

lib/spec/testandset.mli: Op Spec Value

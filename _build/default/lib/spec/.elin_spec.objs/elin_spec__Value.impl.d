lib/spec/value.ml: Format Hashtbl Stdlib

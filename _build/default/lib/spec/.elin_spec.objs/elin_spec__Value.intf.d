lib/spec/value.mli: Format

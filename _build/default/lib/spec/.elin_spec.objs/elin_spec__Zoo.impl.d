lib/spec/zoo.ml: Cas_object Consensus_spec Constant_object Counter Faicounter Fetch_add Fifo List Maxreg Register Snapshot Spec Stack Swap_register Testandset

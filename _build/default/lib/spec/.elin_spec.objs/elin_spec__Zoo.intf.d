lib/spec/zoo.mli: Spec

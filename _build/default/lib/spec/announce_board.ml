(** Announce board: an append/read-all log object.

    State is the list of announced entries; [announce v] appends [v]
    and returns the number of earlier announcements; [read-log] returns
    the whole log.  This is a *history object*: linearizable
    implementations from single-writer registers exist in principle
    (each process appends to its own unbounded register array and
    readers collect, as in the appendix of the paper), so using one
    linearizable board as a base object stays within register-plus-
    synchronization substrates while keeping programmes short enough to
    model-check exhaustively. *)

let announce v = Op.make "announce" ~args:[ v ]
let read_log = Op.make "read-log"

let apply q op =
  let entries = Value.to_list q in
  match Op.name op, Op.args op with
  | "announce", [ v ] ->
    (Value.int (List.length entries), Value.list (entries @ [ v ]))
  | "read-log", [] -> (q, q)
  | other, _ -> invalid_arg ("announce-board: unknown operation " ^ other)

let spec ?(domain = [ 0; 1 ]) () =
  Spec.deterministic ~name:"announce-board" ~initial:(Value.list []) ~apply
    ~all_ops:(read_log :: List.map (fun v -> announce (Value.int v)) domain)

(** Announce board: an append/read-all log object.  A history object
    buildable in principle from single-writer register arrays (as in
    the paper's appendix); used as the announcement substrate by the
    Figure-1 guard and the board-based fetch&increment
    implementations. *)

(** [announce v] appends [v] and returns the number of earlier
    announcements. *)
val announce : Value.t -> Op.t

(** [read_log] returns the whole log. *)
val read_log : Op.t

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?domain:int list -> unit -> Spec.t

(** Compare&swap register.

    The hardware primitive of the paper's introduction.  [cas e d]
    returns the old value and installs [d] iff the old value was [e];
    [read] and [write] are also provided.  Deterministic, universal
    consensus number — our linearizable fetch&increment baseline
    (experiment B1) is built from it. *)

let default_domain = [ 0; 1; 2 ]

let apply q op =
  match Op.name op, Op.args op with
  | "read", [] -> (q, q)
  | "write", [ v ] -> (Value.unit, v)
  | "cas", [ expected; desired ] ->
    if Value.equal q expected then (Value.bool true, desired)
    else (Value.bool false, q)
  | other, _ -> invalid_arg ("cas: unknown operation " ^ other)

let spec ?(initial = 0) ?(domain = default_domain) () =
  let cas_ops =
    List.concat_map
      (fun e -> List.map (fun d -> Op.cas ~expected:e ~desired:d) domain)
      domain
  in
  Spec.deterministic ~name:"compare&swap" ~initial:(Value.int initial) ~apply
    ~all_ops:((Op.read :: List.map Op.write domain) @ cas_ops)

(** Compare&swap register — the hardware primitive of the paper's
    introduction.  [cas e d] returns whether the old value was [e]
    (installing [d] if so); [read]/[write] included.  Universal
    consensus number. *)

val default_domain : int list
val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> ?domain:int list -> unit -> Spec.t

(** Encoding operations (and tagged records) as universal values.

    The adversarial eventually-linearizable base objects keep their
    announcement log *inside* their state value so that the explorer
    can snapshot/restore and hash object states structurally; this
    module provides the op <-> value round-trip. *)

let encode_op (op : Op.t) : Value.t =
  Value.pair (Value.str (Op.name op)) (Value.list (Op.args op))

let decode_op (v : Value.t) : Op.t =
  let name, args = Value.to_pair v in
  Op.make (Value.to_str name) ~args:(Value.to_list args)

(** Announcement-log entries: process id paired with the operation. *)
let encode_entry ~proc op = Value.pair (Value.int proc) (encode_op op)

let decode_entry (v : Value.t) =
  let proc, op = Value.to_pair v in
  (Value.to_int proc, decode_op op)

(** Encoding operations (and announcement-log entries) as universal
    values, so adversarial objects can keep their logs inside their
    state values and explorers can hash them structurally. *)

val encode_op : Op.t -> Value.t
val decode_op : Value.t -> Op.t

(** Announcement-log entries: process id paired with the operation. *)

val encode_entry : proc:int -> Op.t -> Value.t
val decode_entry : Value.t -> int * Op.t

(** Consensus object.

    "Each propose operation returns the value used as the argument of
    the first propose operation to be linearized" (Section 4).  State
    is [None] before any proposal and [Some v] after; deterministic;
    one-shot in the sense that the state never changes after the first
    operation — which is exactly why it admits a trivial eventually
    linearizable implementation (Prop. 16). *)

let undecided = Value.str "undecided"

let apply q op =
  match Op.name op, Op.args op with
  | "propose", [ v ] ->
    if Value.equal q undecided then (v, v) else (q, q)
  | other, _ -> invalid_arg ("consensus: unknown operation " ^ other)

let spec ?(domain = [ 0; 1 ]) () =
  Spec.deterministic ~name:"consensus" ~initial:undecided ~apply
    ~all_ops:(List.map Op.propose domain)

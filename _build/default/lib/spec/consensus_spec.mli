(** Consensus object: each [propose] returns the argument of the first
    proposal to be linearized (Section 4).  The hardest object to
    implement linearizably (it is universal), and trivial to implement
    in an eventually linearizable way (Prop. 16). *)

(** The pre-decision state value. *)
val undecided : Value.t

val apply : Value.t -> Op.t -> Value.t * Value.t

(** [spec ?domain ()] — [domain] populates [Spec.all_ops] with
    [propose v] invocations. *)
val spec : ?domain:int list -> unit -> Spec.t

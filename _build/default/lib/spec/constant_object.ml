(** Constant object — the paradigm of a trivial type (Definition 13).

    Every operation returns a value computed from the initial state
    only, and the state never changes; such a type "can be implemented
    without inter-process communication".  Used as the positive case of
    the Prop. 14 triviality classifier. *)

let apply q op =
  match Op.name op with
  | "read" -> (q, q)
  | other -> invalid_arg ("constant: unknown operation " ^ other)

let spec ?(value = 42) () =
  Spec.deterministic ~name:"constant" ~initial:(Value.int value) ~apply
    ~all_ops:[ Op.read ]

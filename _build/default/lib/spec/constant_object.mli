(** Constant object — the paradigm of a trivial type (Definition 13):
    every operation's response is computable from the initial state
    alone.  The positive case of the Prop. 14 classifier. *)

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?value:int -> unit -> Spec.t

(** Plain counter (inc / read).

    Unlike fetch&increment, [inc] returns no information, so the type
    is strictly weaker (consensus number 1); it is the natural object
    for the introduction's reference-counting scenario and lets the
    benchmarks contrast "counting without reading" with fetch&inc. *)

let apply q op =
  match Op.name op with
  | "inc" -> (Value.unit, Value.int (Value.to_int q + 1))
  | "read" -> (q, q)
  | other -> invalid_arg ("counter: unknown operation " ^ other)

let spec ?(initial = 0) () =
  Spec.deterministic ~name:"counter" ~initial:(Value.int initial) ~apply
    ~all_ops:[ Op.inc; Op.read ]

(** Plain counter (inc/read).  Unlike fetch&increment, [inc] returns no
    information, so the type is strictly weaker (consensus number 1);
    the natural object for the introduction's reference-counting
    scenario. *)

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> unit -> Spec.t

(** Fetch&increment counter.

    The paper's central example: "stores a natural number and provides
    a single operation, fetch&inc, which adds one to the value stored
    and returns the old value" (Section 3.2).  Deterministic, infinite
    state space, consensus number 2 — and the object for which eventual
    linearizability is provably as hard as linearizability (Prop. 18). *)

let apply q op =
  match Op.name op with
  | "fetch&inc" ->
    let n = Value.to_int q in
    (Value.int n, Value.int (n + 1))
  | "read" ->
    (* A read-only probe; not part of the paper's minimal type but
       convenient for examples.  Excluded from [all_ops] so that
       theorem-level experiments use the pure one-operation type. *)
    (q, q)
  | other -> invalid_arg ("fetch&increment: unknown operation " ^ other)

let spec ?(initial = 0) () =
  Spec.deterministic ~name:"fetch&increment" ~initial:(Value.int initial)
    ~apply ~all_ops:[ Op.fetch_inc ]

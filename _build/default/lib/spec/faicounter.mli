(** Fetch&increment counter — the paper's central example
    (Section 3.2): one operation, [fetch&inc], returning the old value.
    Deterministic, infinite state space, consensus number 2, and the
    object for which eventual linearizability is provably as hard as
    linearizability (Prop. 18). *)

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> unit -> Spec.t

(** Fetch&add: [fetch&add k] adds [k] and returns the old value — the
    k-ary generalization of fetch&increment ([fetch&inc] is accepted as
    an alias for [fetch&add 1]).  Same consensus power and the same
    "synchronization forever" character. *)

let fetch_add k = Op.make "fetch&add" ~args:[ Value.int k ]

let apply q op =
  match Op.name op, Op.args op with
  | "fetch&add", [ k ] -> (q, Value.int (Value.to_int q + Value.to_int k))
  | "fetch&inc", [] -> (q, Value.int (Value.to_int q + 1))
  | "read", [] -> (q, q)
  | other, _ -> invalid_arg ("fetch&add: unknown operation " ^ other)

let spec ?(initial = 0) ?(increments = [ 1; 2; 5 ]) () =
  Spec.deterministic ~name:"fetch&add" ~initial:(Value.int initial) ~apply
    ~all_ops:(List.map fetch_add increments)

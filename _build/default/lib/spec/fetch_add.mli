(** Fetch&add: the k-ary generalization of fetch&increment
    ([fetch&inc] accepted as an alias for [fetch&add 1]). *)

val fetch_add : int -> Op.t
val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> ?increments:int list -> unit -> Spec.t

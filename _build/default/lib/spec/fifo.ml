(** FIFO queue of integers.

    [enq v] appends; [deq] removes and returns the head, or the
    distinguished value [empty] when there is none.  Deterministic,
    consensus number 2 — another "requires synchronization forever"
    type in the sense of the paper's paradox discussion. *)

let empty_response = Value.str "empty"

let apply q op =
  let items = Value.to_list q in
  match Op.name op, Op.args op with
  | "enq", [ v ] -> (Value.unit, Value.list (items @ [ v ]))
  | "deq", [] -> (
    match items with
    | [] -> (empty_response, q)
    | hd :: tl -> (hd, Value.list tl))
  | other, _ -> invalid_arg ("queue: unknown operation " ^ other)

let spec ?(domain = [ 0; 1; 2 ]) () =
  Spec.deterministic ~name:"queue" ~initial:(Value.list []) ~apply
    ~all_ops:(Op.deq :: List.map Op.enq domain)

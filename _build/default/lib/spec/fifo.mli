(** FIFO queue of integers; [deq] on empty returns {!empty_response}.
    Consensus number 2 — like fetch&increment, it "requires
    synchronization forever". *)

val empty_response : Value.t
val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?domain:int list -> unit -> Spec.t

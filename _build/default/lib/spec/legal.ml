(** Legality of sequential behaviours (Section 3's "legal" histories).

    A sequential behaviour is a list of [(op, response)] pairs; it is
    legal for a spec iff there is a state sequence threading the
    transition relation from the initial state.  Nondeterministic specs
    make this a reachability question over state *sets*. *)

(** [states_after spec behaviour] is the list of states the object may
    be in after exhibiting [behaviour] (empty iff illegal).  The list
    is deduplicated. *)
let states_after spec behaviour =
  let dedup states =
    List.sort_uniq Value.compare states
  in
  List.fold_left
    (fun states (op, resp) ->
      dedup
        (List.concat_map (fun q -> Spec.successors spec q op resp) states))
    [ Spec.initial spec ] behaviour

let is_legal spec behaviour = states_after spec behaviour <> []

(** [complete spec ops] assigns responses to [ops] greedily using the
    deterministic transition, returning the legal behaviour.  Only for
    deterministic specs. *)
let complete spec ops =
  let _, rev =
    List.fold_left
      (fun (q, acc) op ->
        let r, q' = Spec.apply_det spec q op in
        (q', (op, r) :: acc))
      (Spec.initial spec, []) ops
  in
  List.rev rev

(** [legal_responses spec prefix op] enumerates responses [r] such that
    [prefix @ [(op, r)]] is legal. *)
let legal_responses spec prefix op =
  let states = states_after spec prefix in
  List.sort_uniq Value.compare
    (List.concat_map (fun q -> Spec.responses spec q op) states)

let pp_behaviour ppf behaviour =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
    (fun ppf (op, r) -> Format.fprintf ppf "%a->%a" Op.pp op Value.pp r)
    ppf behaviour

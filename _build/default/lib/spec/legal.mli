(** Legality of sequential behaviours (Section 3's "legal" histories).

    A sequential behaviour is a list of [(op, response)] pairs; it is
    legal for a spec iff some state sequence threads the transition
    relation from the initial state. *)

(** [states_after spec behaviour] — the deduplicated set of states the
    object may be in after exhibiting [behaviour] (empty iff illegal). *)
val states_after : Spec.t -> (Op.t * Value.t) list -> Value.t list

val is_legal : Spec.t -> (Op.t * Value.t) list -> bool

(** [complete spec ops] assigns responses via the deterministic
    transition, returning the legal behaviour. *)
val complete : Spec.t -> Op.t list -> (Op.t * Value.t) list

(** [legal_responses spec prefix op] — responses [r] such that
    [prefix @ [(op, r)]] is legal. *)
val legal_responses : Spec.t -> (Op.t * Value.t) list -> Op.t -> Value.t list

val pp_behaviour : Format.formatter -> (Op.t * Value.t) list -> unit

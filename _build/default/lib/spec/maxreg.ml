(** Max register.

    [max-write v] raises the stored maximum; [max-read] returns it.
    A standard intermediate-strength type: like test&set it "calms
    down" once the maximum of all written values is reached, making it
    a useful extra probe for the triviality classifier and the
    eventual-linearizability experiments. *)

let default_domain = [ 0; 1; 2; 3 ]

let apply q op =
  match Op.name op, Op.args op with
  | "max-read", [] -> (q, q)
  | "max-write", [ v ] ->
    let m = max (Value.to_int q) (Value.to_int v) in
    (Value.unit, Value.int m)
  | other, _ -> invalid_arg ("max-register: unknown operation " ^ other)

let spec ?(initial = 0) ?(domain = default_domain) () =
  Spec.deterministic ~name:"max-register" ~initial:(Value.int initial) ~apply
    ~all_ops:(Op.max_read :: List.map Op.max_write domain)

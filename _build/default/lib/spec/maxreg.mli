(** Max register: [max-write v] raises the stored maximum, [max-read]
    returns it.  Register-equivalent in power; "calms down" once the
    maximal value is written. *)

val default_domain : int list
val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> ?domain:int list -> unit -> Spec.t

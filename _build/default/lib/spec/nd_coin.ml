(** Nondeterministic coin — a finite-nondeterminism type.

    [flip] may return 0 or 1, nondeterministically, and the state never
    changes.  The paper's results are stated for types with finite
    nondeterminism (e.g. Theorem 12); this type exercises the
    checkers' handling of a genuine transition *relation*. *)

let flip = Op.make "flip"

let apply q op =
  match Op.name op with
  | "flip" -> [ (Value.int 0, q); (Value.int 1, q) ]
  | other -> invalid_arg ("coin: unknown operation " ^ other)

let spec () =
  Spec.make ~name:"nd-coin" ~initial:Value.unit ~apply ~all_ops:[ flip ]

(** Nondeterministic coin: [flip] may return 0 or 1.  Exercises
    genuine transition relations (the paper's results are stated for
    finite nondeterminism). *)

val flip : Op.t
val apply : Value.t -> Op.t -> (Value.t * Value.t) list
val spec : unit -> Spec.t

(** Operation invocations.

    Following the paper's convention (Section 3), "the name of an
    operation includes all of the operation's arguments": an [Op.t]
    pairs an operation name with its argument values, and two
    invocations are the same operation invocation iff they are
    structurally equal. *)

type t = { name : string; args : Value.t list }

let make ?(args = []) name = { name; args }

let name t = t.name
let args t = t.args

let equal a b = a.name = b.name && List.equal Value.equal a.args b.args
let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare Value.compare a.args b.args

let hash t = Hashtbl.hash (t.name, t.args)

let pp ppf t =
  match t.args with
  | [] -> Format.fprintf ppf "%s" t.name
  | args ->
    Format.fprintf ppf "%s(%a)" t.name
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Value.pp)
      args

let to_string t = Format.asprintf "%a" pp t

(* Common constructors shared by the concrete specs, so that tests,
   generators and implementations all spell invocations identically. *)

let read = make "read"
let write v = make "write" ~args:[ Value.int v ]
let write_value v = make "write" ~args:[ v ]
let fetch_inc = make "fetch&inc"
let test_and_set = make "test&set"
let propose v = make "propose" ~args:[ Value.int v ]
let cas ~expected ~desired =
  make "cas" ~args:[ Value.int expected; Value.int desired ]
let inc = make "inc"
let enq v = make "enq" ~args:[ Value.int v ]
let deq = make "deq"
let push v = make "push" ~args:[ Value.int v ]
let pop = make "pop"
let max_write v = make "max-write" ~args:[ Value.int v ]
let max_read = make "max-read"
let update ~index v = make "update" ~args:[ Value.int index; Value.int v ]
let scan = make "scan"

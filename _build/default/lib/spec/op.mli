(** Operation invocations.

    Following the paper's convention (Section 3), "the name of an
    operation includes all of the operation's arguments": an [Op.t]
    pairs an operation name with its argument values, and two
    invocations denote the same operation iff structurally equal. *)

type t

(** [make ?args name] — an invocation. *)
val make : ?args:Value.t list -> string -> t

val name : t -> string
val args : t -> Value.t list

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Common invocations shared by the concrete specs, so that tests,
    generators and implementations all spell them identically. *)

val read : t
val write : int -> t
val write_value : Value.t -> t
val fetch_inc : t
val test_and_set : t
val propose : int -> t
val cas : expected:int -> desired:int -> t
val inc : t
val enq : int -> t
val deq : t
val push : int -> t
val pop : t
val max_write : int -> t
val max_read : t
val update : index:int -> int -> t
val scan : t

(** Read/write register over integers.

    The canonical "simple linearizable object" of the paper: state is
    the last written value; [read] returns it; [write v] returns unit.
    Deterministic, consensus number 1. *)

let default_domain = [ 0; 1; 2 ]

let apply q op =
  match Op.name op with
  | "read" -> (q, q)
  | "write" -> (
    match Op.args op with
    | [ v ] -> (Value.unit, v)
    | _ -> invalid_arg "register: write takes one argument")
  | other -> invalid_arg ("register: unknown operation " ^ other)

let spec ?(initial = 0) ?(domain = default_domain) () =
  Spec.deterministic ~name:"register" ~initial:(Value.int initial) ~apply
    ~all_ops:(Op.read :: List.map Op.write domain)

(** Register over arbitrary values (e.g. the ⊥-initialized proposal
    registers of Proposition 16). *)
let spec_value ~initial ~domain () =
  Spec.deterministic ~name:"register" ~initial ~apply
    ~all_ops:(Op.read :: List.map Op.write_value domain)

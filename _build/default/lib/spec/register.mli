(** Read/write register over integers — the canonical "simple
    linearizable object" of the paper.  Deterministic, consensus
    number 1. *)

val default_domain : int list

(** The raw transition function (exposed for spec-combination tests). *)
val apply : Value.t -> Op.t -> Value.t * Value.t

(** [spec ?initial ?domain ()] — [domain] populates [Spec.all_ops]. *)
val spec : ?initial:int -> ?domain:int list -> unit -> Spec.t

(** Register over arbitrary values (e.g. the ⊥-initialized proposal
    registers of Proposition 16). *)
val spec_value : initial:Value.t -> domain:Value.t list -> unit -> Spec.t

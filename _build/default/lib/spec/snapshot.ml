(** Single-writer atomic snapshot with [n] components.

    [update i v] stores [v] in component [i]; [scan] returns the whole
    vector.  Deterministic, register-equivalent in power; included so
    that the locality experiments (Lemmas 7–8 / Prop. 9) exercise a
    type whose states are composite values. *)

let apply q op =
  let components = Value.to_list q in
  match Op.name op, Op.args op with
  | "scan", [] -> (q, q)
  | "update", [ idx; v ] ->
    let i = Value.to_int idx in
    if i < 0 || i >= List.length components then
      invalid_arg "snapshot: component index out of range"
    else
      let components' = List.mapi (fun j c -> if j = i then v else c) components in
      (Value.unit, Value.list components')
  | other, _ -> invalid_arg ("snapshot: unknown operation " ^ other)

let spec ?(components = 2) ?(domain = [ 0; 1 ]) () =
  let updates =
    List.concat_map
      (fun i -> List.map (fun v -> Op.update ~index:i v) domain)
      (List.init components (fun i -> i))
  in
  Spec.deterministic ~name:"snapshot"
    ~initial:(Value.list (List.init components (fun _ -> Value.int 0)))
    ~apply ~all_ops:(Op.scan :: updates)

(** Atomic snapshot with [components] cells: [update i v] and [scan].
    Exercises composite state values in the locality experiments. *)

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?components:int -> ?domain:int list -> unit -> Spec.t

(** Sequential specifications.

    A type of object is, as in Section 3 of the paper, a transition
    relation [delta ⊆ Q × OP × RES × Q] with an initial state.  We
    represent it functionally: [apply q op] enumerates all [(r, q')]
    with [(q, op, r, q') ∈ delta].  An empty list means [op] is not
    applicable in [q] (all of the paper's types are total; partial
    specs are permitted so that tests can probe illegal histories).

    [all_ops] gives a finite representative set of invocations, used by
    generators and by the triviality decision procedure (Prop. 14). *)

type t = {
  name : string;
  initial : Value.t;
  apply : Value.t -> Op.t -> (Value.t * Value.t) list; (* (response, next state) *)
  all_ops : Op.t list;
}

let make ~name ~initial ~apply ~all_ops = { name; initial; apply; all_ops }

(** [deterministic ~name ~initial ~apply ~all_ops] builds a spec from a
    function returning the unique transition. *)
let deterministic ~name ~initial ~apply ~all_ops =
  { name; initial; all_ops; apply = (fun q op -> [ apply q op ]) }

let with_initial t initial = { t with initial }

let name t = t.name
let initial t = t.initial
let apply t q op = t.apply q op
let all_ops t = t.all_ops

(** [responses t q op] enumerates legal responses of [op] in state [q]. *)
let responses t q op = List.map fst (t.apply q op)

(** [is_legal_response t q op r] holds iff some transition from [q] on
    [op] yields response [r]. *)
let is_legal_response t q op r =
  List.exists (fun (r', _) -> Value.equal r r') (t.apply q op)

(** [successors t q op r] enumerates states reachable from [q] by [op]
    returning [r] (several, if the type is nondeterministic in state). *)
let successors t q op r =
  List.filter_map
    (fun (r', q') -> if Value.equal r r' then Some q' else None)
    (t.apply q op)

(** [apply_det t q op] is the unique transition, for deterministic
    types.  Raises [Invalid_argument] if there is not exactly one. *)
let apply_det t q op =
  match t.apply q op with
  | [ rq ] -> rq
  | [] -> invalid_arg (Printf.sprintf "Spec.apply_det: %s not applicable" (Op.to_string op))
  | _ -> invalid_arg (Printf.sprintf "Spec.apply_det: %s is nondeterministic" t.name)

(** [run t ops] threads a sequence of operations through the spec from
    the initial state, deterministically; returns responses in order. *)
let run t ops =
  let _, responses =
    List.fold_left
      (fun (q, acc) op ->
        let r, q' = apply_det t q op in
        (q', r :: acc))
      (t.initial, []) ops
  in
  List.rev responses

(** [is_deterministic_on t states] checks determinism of every
    [all_ops] transition out of each state in [states].  (Determinism
    of the whole type is not decidable from the functional view; the
    concrete types in this library document their determinism and tests
    probe it on reachable states.) *)
let is_deterministic_on t states =
  List.for_all
    (fun q ->
      List.for_all (fun op -> List.length (t.apply q op) <= 1) t.all_ops)
    states

(** [has_finite_nondeterminism_on t states] — trivially true for our
    functional representation (the list is finite), checked for
    documentation value. *)
let has_finite_nondeterminism_on t states =
  List.for_all
    (fun q -> List.for_all (fun op -> List.length (t.apply q op) < max_int) t.all_ops)
    states

(** [reachable t ~max_states] explores the state graph from the initial
    state under [all_ops], breadth-first, up to [max_states] states.
    Returns [(states, complete)] where [complete] is false when the
    bound was hit (state space possibly infinite, e.g. fetch&increment). *)
let reachable t ~max_states =
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  Hashtbl.replace seen t.initial ();
  Queue.add t.initial queue;
  let complete = ref true in
  let states = ref [] in
  (try
     while not (Queue.is_empty queue) do
       let q = Queue.pop queue in
       states := q :: !states;
       List.iter
         (fun op ->
           List.iter
             (fun (_, q') ->
               if not (Hashtbl.mem seen q') then begin
                 if Hashtbl.length seen >= max_states then begin
                   complete := false;
                   raise Exit
                 end;
                 Hashtbl.replace seen q' ();
                 Queue.add q' queue
               end)
             (t.apply q op))
         t.all_ops
     done
   with Exit -> ());
  (List.rev !states, !complete)

let pp ppf t = Format.fprintf ppf "%s" t.name

(** Sequential specifications.

    A type of object is, as in Section 3 of the paper, a transition
    relation [delta ⊆ Q × OP × RES × Q] with an initial state,
    represented functionally: [apply q op] enumerates all [(r, q')]
    with [(q, op, r, q') ∈ delta].  An empty list means [op] is not
    applicable in [q]. *)

type t

(** [make ~name ~initial ~apply ~all_ops] — general (possibly
    nondeterministic) spec.  [all_ops] is a finite representative set
    of invocations used by generators and the Prop. 14 classifier. *)
val make :
  name:string ->
  initial:Value.t ->
  apply:(Value.t -> Op.t -> (Value.t * Value.t) list) ->
  all_ops:Op.t list ->
  t

(** [deterministic ~name ~initial ~apply ~all_ops] builds a spec from a
    function returning the unique transition. *)
val deterministic :
  name:string ->
  initial:Value.t ->
  apply:(Value.t -> Op.t -> Value.t * Value.t) ->
  all_ops:Op.t list ->
  t

(** [with_initial t q0] — the same type started in state [q0]. *)
val with_initial : t -> Value.t -> t

val name : t -> string
val initial : t -> Value.t

(** [apply t q op] — all transitions [(response, next state)]. *)
val apply : t -> Value.t -> Op.t -> (Value.t * Value.t) list

val all_ops : t -> Op.t list

(** [responses t q op] enumerates legal responses of [op] in state [q]. *)
val responses : t -> Value.t -> Op.t -> Value.t list

(** [is_legal_response t q op r] — some transition from [q] on [op]
    yields [r]. *)
val is_legal_response : t -> Value.t -> Op.t -> Value.t -> bool

(** [successors t q op r] — states reachable from [q] by [op]
    returning [r]. *)
val successors : t -> Value.t -> Op.t -> Value.t -> Value.t list

(** [apply_det t q op] is the unique transition; raises
    [Invalid_argument] if there is not exactly one. *)
val apply_det : t -> Value.t -> Op.t -> Value.t * Value.t

(** [run t ops] threads operations through the deterministic spec from
    the initial state; returns responses in order. *)
val run : t -> Op.t list -> Value.t list

(** [is_deterministic_on t states] checks determinism of every
    [all_ops] transition out of each given state. *)
val is_deterministic_on : t -> Value.t list -> bool

(** Trivially true for the functional representation; kept for
    documentation value (the paper's results assume finite
    nondeterminism). *)
val has_finite_nondeterminism_on : t -> Value.t list -> bool

(** [reachable t ~max_states] — breadth-first state exploration under
    [all_ops]; [(states, complete)] where [complete] is false when the
    bound was hit. *)
val reachable : t -> max_states:int -> Value.t list * bool

val pp : Format.formatter -> t -> unit

(** LIFO stack of integers.

    [push v] pushes; [pop] removes and returns the top, or the
    distinguished value [empty].  Deterministic, consensus number 2. *)

let empty_response = Value.str "empty"

let apply q op =
  let items = Value.to_list q in
  match Op.name op, Op.args op with
  | "push", [ v ] -> (Value.unit, Value.list (v :: items))
  | "pop", [] -> (
    match items with
    | [] -> (empty_response, q)
    | hd :: tl -> (hd, Value.list tl))
  | other, _ -> invalid_arg ("stack: unknown operation " ^ other)

let spec ?(domain = [ 0; 1; 2 ]) () =
  Spec.deterministic ~name:"stack" ~initial:(Value.list []) ~apply
    ~all_ops:(Op.pop :: List.map Op.push domain)

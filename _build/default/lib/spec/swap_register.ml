(** Swap register: [swap v] atomically installs [v] and returns the old
    value; [read] included.  Consensus number 2 — a one-instruction
    cousin of test&set that, unlike test&set, stays "interesting
    forever" (every swap observes fresh state), putting it on the
    fetch&increment side of the paper's paradox. *)

let swap v = Op.make "swap" ~args:[ Value.int v ]

let apply q op =
  match Op.name op, Op.args op with
  | "swap", [ v ] -> (q, v)
  | "read", [] -> (q, q)
  | other, _ -> invalid_arg ("swap-register: unknown operation " ^ other)

let spec ?(initial = 0) ?(domain = [ 0; 1; 2 ]) () =
  Spec.deterministic ~name:"swap-register" ~initial:(Value.int initial) ~apply
    ~all_ops:(Op.read :: List.map swap domain)

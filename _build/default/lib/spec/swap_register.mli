(** Swap register: [swap v] atomically installs [v] and returns the
    old value.  Consensus number 2; stays "interesting forever", like
    fetch&increment. *)

val swap : int -> Op.t
val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> ?domain:int list -> unit -> Spec.t

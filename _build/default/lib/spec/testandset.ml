(** Test&set bit.

    Returns the old value and sets the bit.  The paper's example of a
    long-lived type that is "interesting only in a finite prefix" of
    each execution, hence trivially eventually linearizable
    (Section 4): the first test&set to be linearized returns 0, all
    others return 1 — after the first operation the object never
    changes again. *)

let apply q op =
  match Op.name op with
  | "test&set" -> (q, Value.int 1)
  | "read" -> (q, q)
  | other -> invalid_arg ("test&set: unknown operation " ^ other)

let spec ?(initial = 0) () =
  Spec.deterministic ~name:"test&set" ~initial:(Value.int initial) ~apply
    ~all_ops:[ Op.test_and_set ]

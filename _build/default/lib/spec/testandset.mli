(** Test&set bit — the paper's example of a long-lived type that is
    "interesting only in a finite prefix" of each execution, hence
    trivially eventually linearizable (Section 4). *)

val apply : Value.t -> Op.t -> Value.t * Value.t
val spec : ?initial:int -> unit -> Spec.t

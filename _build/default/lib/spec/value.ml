(** Universal values.

    Operations, responses and object states across the whole
    reproduction are drawn from this single type so that histories over
    heterogeneous objects can be stored, hashed, compared and printed
    uniformly — the checkers and the execution-tree explorers depend on
    structural equality and hashing of states.  Typed front-ends (e.g.
    [Elin_runtime.Api.Faicounter]) wrap it. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

let unit = Unit
let bool b = Bool b
let int n = Int n
let str s = Str s
let pair a b = Pair (a, b)
let list xs = List xs

(* Structural equality/comparison/hashing are exactly what we need:
   values contain no functions or cycles. *)
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (a : t) = Hashtbl.hash a

exception Type_error of string

let type_error expected got =
  raise
    (Type_error
       (Format.asprintf "expected %s, got %a" expected
          (fun ppf v ->
            match v with
            | Unit -> Format.fprintf ppf "unit"
            | Bool _ -> Format.fprintf ppf "bool"
            | Int _ -> Format.fprintf ppf "int"
            | Str _ -> Format.fprintf ppf "string"
            | Pair _ -> Format.fprintf ppf "pair"
            | List _ -> Format.fprintf ppf "list")
          got))

let to_int = function Int n -> n | v -> type_error "int" v
let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_str = function Str s -> s | v -> type_error "string" v
let to_pair = function Pair (a, b) -> (a, b) | v -> type_error "pair" v
let to_list = function List xs -> xs | v -> type_error "list" v
let to_unit = function Unit -> () | v -> type_error "unit" v

let rec pp ppf = function
  | Unit -> Format.fprintf ppf "()"
  | Bool b -> Format.fprintf ppf "%b" b
  | Int n -> Format.fprintf ppf "%d" n
  | Str s -> Format.fprintf ppf "%S" s
  | Pair (a, b) -> Format.fprintf ppf "(%a, %a)" pp a pp b
  | List xs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      xs

let to_string v = Format.asprintf "%a" pp v

(** Universal values.

    Operations, responses and object states across the whole
    reproduction are drawn from this single type so that histories over
    heterogeneous objects can be stored, hashed, compared and printed
    uniformly — the checkers and the execution-tree explorers depend on
    structural equality and hashing of states. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Str of string
  | Pair of t * t
  | List of t list

(** Constructors. *)

val unit : t
val bool : bool -> t
val int : int -> t
val str : string -> t
val pair : t -> t -> t
val list : t list -> t

(** Structural equality, total order, and hashing. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Accessors; raise {!Type_error} on shape mismatch. *)

exception Type_error of string

val to_int : t -> int
val to_bool : t -> bool
val to_str : t -> string
val to_pair : t -> t * t
val to_list : t -> t list
val to_unit : t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string

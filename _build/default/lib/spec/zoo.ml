(** The object-type zoo: every concrete spec in one list, with the
    properties the paper's results depend on, for table-driven tests
    and the Prop. 14 classifier experiments. *)

type entry = {
  spec : Spec.t;
  deterministic : bool;
  finite_state : bool;
  (* Expected verdict of the Prop. 14 triviality classifier. *)
  trivial : bool;
  (* Can the type solve wait-free 2-process consensus (with registers)?
     Documented consensus-power facts used by experiment E9. *)
  solves_two_consensus : bool;
}

let all () =
  [
    { spec = Register.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = false };
    { spec = Faicounter.spec (); deterministic = true; finite_state = false;
      trivial = false; solves_two_consensus = true };
    { spec = Cas_object.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = true };
    { spec = Testandset.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = true };
    { spec = Consensus_spec.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = true };
    { spec = Maxreg.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = false };
    { spec = Fifo.spec (); deterministic = true; finite_state = false;
      trivial = false; solves_two_consensus = true };
    { spec = Stack.spec (); deterministic = true; finite_state = false;
      trivial = false; solves_two_consensus = true };
    { spec = Counter.spec (); deterministic = true; finite_state = false;
      trivial = false; solves_two_consensus = false };
    { spec = Snapshot.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = false };
    { spec = Constant_object.spec (); deterministic = true; finite_state = true;
      trivial = true; solves_two_consensus = false };
    { spec = Swap_register.spec (); deterministic = true; finite_state = true;
      trivial = false; solves_two_consensus = true };
    { spec = Fetch_add.spec (); deterministic = true; finite_state = false;
      trivial = false; solves_two_consensus = true };
  ]

let find name =
  match List.find_opt (fun e -> Spec.name e.spec = name) (all ()) with
  | Some e -> e
  | None -> invalid_arg ("Zoo.find: unknown spec " ^ name)

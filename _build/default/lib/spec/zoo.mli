(** The object-type zoo: every concrete spec with the properties the
    paper's results depend on, for table-driven tests and the Prop. 14
    classifier experiments. *)

type entry = {
  spec : Spec.t;
  deterministic : bool;
  finite_state : bool;
  trivial : bool;  (** expected Prop. 14 verdict *)
  solves_two_consensus : bool;
      (** documented consensus-power fact used by experiment E9 *)
}

val all : unit -> entry list

(** [find name] — raises [Invalid_argument] on unknown names. *)
val find : string -> entry

lib/valency/protocols.ml: Base Cas_object Elin_runtime Elin_spec Ev_base Faicounter Fifo Op Program Register Spec Testandset Valency Value

lib/valency/protocols.mli: Base Elin_runtime Elin_spec Spec Valency Value

lib/valency/valency.ml: Array Base Elin_runtime Elin_spec List Program Value

lib/valency/valency.mli: Base Elin_runtime Elin_spec Program Value

(** Candidate two-process consensus protocols for the Prop. 15
    experiments.

    - [naive_registers]: the textbook flawed attempt from read/write
      registers alone — the explorer exhibits its agreement violation
      (the mechanical face of FLP/Loui–Abu-Amara [12]);
    - [cas]: correct wait-free consensus from one compare&swap object —
      the positive control, and the protocol on which [find_critical]
      locates a critical configuration whose poised steps both target
      the compare&swap object;
    - [registers_plus_ev_testandset]: registers plus an *eventually
      linearizable* test&set.  With a linearizable test&set the same
      code solves consensus; with the adversarial eventually
      linearizable one, both processes may win the prefix, and the
      explorer finds the disagreement — eventually linearizable objects
      do not boost the consensus power of registers (Prop. 15). *)

open Elin_spec
open Elin_runtime

let ( let* ) = Program.bind

let bot = Value.str "bot"

let value_register ~domain =
  Register.spec_value ~initial:bot ~domain:(bot :: domain) ()

(* ------------------------------------------------------------------ *)

let naive_registers ?(domain = [ Value.int 0; Value.int 1 ]) () : Valency.protocol
    =
  let reg = value_register ~domain in
  {
    Valency.name = "naive-registers";
    bases = [| Base.linearizable reg; Base.linearizable reg |];
    code =
      (fun ~proc ~input ->
        (* Write own input to own register, read the other's; decide
           the other's value if visible and smaller, else own. *)
        let* _ = Program.access proc (Op.write_value input) in
        let* other = Program.access (1 - proc) Op.read in
        if Value.equal other bot then Program.return input
        else
          (* Deterministic tie-break: the smaller value. *)
          Program.return (if Value.compare other input < 0 then other else input));
  }

(* ------------------------------------------------------------------ *)

let cas ?(domain = [ 0; 1 ]) () : Valency.protocol =
  let cas_spec = Cas_object.spec ~initial:(-1) ~domain:(-1 :: domain) () in
  {
    Valency.name = "cas";
    bases = [| Base.linearizable cas_spec |];
    code =
      (fun ~proc:_ ~input ->
        let* _ =
          Program.access 0 (Op.cas ~expected:(-1) ~desired:(Value.to_int input))
        in
        let* winner = Program.access 0 Op.read in
        Program.return winner);
  }

(* ------------------------------------------------------------------ *)

(** [registers_plus_testandset ~ts_base] — write own input to own
    register; fire the test&set; the winner (0) decides its own input,
    the loser (1) reads and adopts the winner's register. *)
let registers_plus_testandset ~name ~ts_base
    ?(domain = [ Value.int 0; Value.int 1 ]) () : Valency.protocol =
  let reg = value_register ~domain in
  {
    Valency.name = name;
    bases = [| Base.linearizable reg; Base.linearizable reg; ts_base |];
    code =
      (fun ~proc ~input ->
        let* _ = Program.access proc (Op.write_value input) in
        let* t = Program.access 2 Op.test_and_set in
        if Value.equal t (Value.int 0) then Program.return input
        else
          let* other = Program.access (1 - proc) Op.read in
          if Value.equal other bot then
            (* The adversarial test&set can declare us loser before the
               real winner wrote; fall back to own input (this branch is
               part of the disagreement evidence). *)
            Program.return input
          else Program.return other);
  }

(* ------------------------------------------------------------------ *)

(** [registers_plus_queue ~queue_base] — Herlihy's queue consensus: the
    queue is pre-loaded with a "win" token followed by a "lose" token;
    write your input, dequeue, the winner keeps its input and the loser
    adopts the winner's register.  Correct with a linearizable queue
    (queues have consensus number 2); with an eventually linearizable
    queue both processes can dequeue "win". *)
let registers_plus_queue ~name ~queue_base
    ?(domain = [ Value.int 0; Value.int 1 ]) () : Valency.protocol =
  let reg = value_register ~domain in
  {
    Valency.name;
    bases = [| Base.linearizable reg; Base.linearizable reg; queue_base |];
    code =
      (fun ~proc ~input ->
        let* _ = Program.access proc (Op.write_value input) in
        let* token = Program.access 2 Op.deq in
        if Value.equal token (Value.str "win") then Program.return input
        else
          let* other = Program.access (1 - proc) Op.read in
          if Value.equal other bot then Program.return input
          else Program.return other);
  }

let preloaded_queue_spec () =
  Spec.with_initial (Fifo.spec ())
    (Value.list [ Value.str "win"; Value.str "lose" ])

let registers_plus_linearizable_queue ?domain () =
  registers_plus_queue ~name:"regs+queue"
    ~queue_base:(Base.linearizable (preloaded_queue_spec ())) ?domain ()

let registers_plus_ev_queue ?(stabilize_at = 1000) ?domain () =
  registers_plus_queue ~name:"regs+ev-queue"
    ~queue_base:
      (Ev_base.make
         {
           Ev_base.spec = preloaded_queue_spec ();
           stabilization = Ev_base.At_step stabilize_at;
           view = Ev_base.Own_or_all;
         })
    ?domain ()

(* ------------------------------------------------------------------ *)

(** Fetch&increment ticket consensus: write your input, take a ticket;
    ticket 0 wins. *)
let registers_plus_fai ?(domain = [ Value.int 0; Value.int 1 ]) () :
    Valency.protocol =
  let reg = value_register ~domain in
  {
    Valency.name = "regs+fai";
    bases =
      [|
        Base.linearizable reg; Base.linearizable reg;
        Base.linearizable (Faicounter.spec ());
      |];
    code =
      (fun ~proc ~input ->
        let* _ = Program.access proc (Op.write_value input) in
        let* ticket = Program.access 2 Op.fetch_inc in
        if Value.equal ticket (Value.int 0) then Program.return input
        else
          let* other = Program.access (1 - proc) Op.read in
          if Value.equal other bot then Program.return input
          else Program.return other);
  }

let registers_plus_linearizable_testandset ?domain () =
  registers_plus_testandset ~name:"regs+ts"
    ~ts_base:(Base.linearizable (Testandset.spec ())) ?domain ()

let registers_plus_ev_testandset ?(stabilize_at = 1000) ?domain () =
  registers_plus_testandset ~name:"regs+ev-ts"
    ~ts_base:
      (Ev_base.make
         {
           Ev_base.spec = Testandset.spec ();
           stabilization = Ev_base.At_step stabilize_at;
           view = Ev_base.Own_or_all;
         })
    ?domain ()

(** Candidate two-process consensus protocols for the Prop. 15
    experiments. *)

open Elin_spec
open Elin_runtime

val bot : Value.t

(** ⊥-initialized value register over [bot :: domain]. *)
val value_register : domain:Value.t list -> Spec.t

(** The textbook flawed attempt from registers alone: write own input,
    read the other's, tie-break deterministically.  Disagrees. *)
val naive_registers : ?domain:Value.t list -> unit -> Valency.protocol

(** Correct wait-free consensus from one compare&swap object. *)
val cas : ?domain:int list -> unit -> Valency.protocol

(** Write own input to own register, fire the test&set at base 2; the
    winner keeps its input, the loser adopts the winner's register. *)
val registers_plus_testandset :
  name:string ->
  ts_base:Base.t ->
  ?domain:Value.t list ->
  unit ->
  Valency.protocol

(** Herlihy's queue consensus: the queue at base 2 is pre-loaded with a
    "win" token followed by a "lose" token; the dequeuer of "win" keeps
    its input. *)
val registers_plus_queue :
  name:string ->
  queue_base:Base.t ->
  ?domain:Value.t list ->
  unit ->
  Valency.protocol

(** The pre-loaded ["win"; "lose"] queue spec. *)
val preloaded_queue_spec : unit -> Spec.t

val registers_plus_linearizable_queue :
  ?domain:Value.t list -> unit -> Valency.protocol

(** ... over an adversarial eventually linearizable queue: both
    processes may dequeue "win" (Prop. 15 again, with a consensus-
    number-2 object). *)
val registers_plus_ev_queue :
  ?stabilize_at:int -> ?domain:Value.t list -> unit -> Valency.protocol

(** Fetch&increment ticket consensus: ticket 0 wins. *)
val registers_plus_fai : ?domain:Value.t list -> unit -> Valency.protocol

(** The same code over a linearizable test&set: correct consensus. *)
val registers_plus_linearizable_testandset :
  ?domain:Value.t list -> unit -> Valency.protocol

(** ... and over an adversarial eventually linearizable test&set: both
    processes may win, and agreement fails (Prop. 15). *)
val registers_plus_ev_testandset :
  ?stabilize_at:int -> ?domain:Value.t list -> unit -> Valency.protocol

test/test_corollary19.ml: Alcotest Base Elin_checker Elin_explore Elin_runtime Elin_spec Elin_test_support Elin_valency Explore Faic Impl Impls Op Program Register Run Sched Support Value

test/test_corollary19.mli:

test/test_ev_base.ml: Alcotest Array Base Elin_checker Elin_kernel Elin_runtime Elin_spec Elin_test_support Ev_base Eventual Faic Faicounter Impl List Op Register Run Sched Support Value Weak

test/test_ev_base.mli:

test/test_ev_consensus.mli:

test/test_explore.ml: Alcotest Elin_checker Elin_explore Elin_history Elin_runtime Elin_spec Elin_test_support Ev_base Explore Faic Faicounter Impl Impls List Op Program Register Run Support Value

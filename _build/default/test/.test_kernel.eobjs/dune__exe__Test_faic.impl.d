test/test_faic.ml: Alcotest Elin_checker Elin_history Elin_kernel Elin_runtime Elin_spec Elin_test_support Engine Event Eventual Faic Faicounter Gen History List Op Printf Prng Support Value

test/test_faic.mli:

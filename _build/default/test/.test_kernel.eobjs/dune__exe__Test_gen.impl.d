test/test_gen.ml: Alcotest Elin_checker Elin_history Elin_kernel Elin_spec Elin_test_support Engine Event Faic Faicounter Fifo Gen History List Maxreg Prng Register Support Weak

test/test_history.ml: Alcotest Array Elin_history Elin_spec Elin_test_support Event Filename Format Fun Gen History List Op Operation Register Support Sys Textio Value

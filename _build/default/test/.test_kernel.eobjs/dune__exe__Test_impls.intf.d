test/test_impls.mli:

test/test_kernel.ml: Alcotest Array Bitset Elin_kernel Elin_test_support List Matching Printf Prng QCheck2 Support

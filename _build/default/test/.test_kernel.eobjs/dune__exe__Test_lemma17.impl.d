test/test_lemma17.ml: Alcotest Elin_checker Elin_history Elin_kernel Elin_runtime Elin_spec Elin_test_support Faic History Impls List Op Prng Run Sched Support

test/test_lemma17.mli:

test/test_locality.ml: Alcotest Elin_checker Elin_history Elin_spec Elin_test_support Engine Event Eventual Faicounter Gen History List Locality Maxreg Op Printf Register Support Value Weak

test/test_monitors.ml: Alcotest Base Elin_core Elin_explore Elin_runtime Elin_spec Elin_test_support Faicounter Impl Impls Monitors Op Program Register Run Sched Support Value

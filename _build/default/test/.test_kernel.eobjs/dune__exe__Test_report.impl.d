test/test_report.ml: Alcotest Elin_checker Elin_history Elin_spec Elin_test_support Faic Faicounter Format Gen Op Operation Report String Support Value

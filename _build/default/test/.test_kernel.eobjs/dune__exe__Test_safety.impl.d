test/test_safety.ml: Alcotest Elin_checker Elin_history Elin_spec Elin_test_support Engine Faic Faicounter Gen History List Op Operation Printf Support

test/test_serafini.mli:

test/test_session.ml: Alcotest Elin_api Elin_checker Elin_history Elin_runtime Elin_spec Elin_test_support Ev_base Faicounter Impl Impls Op Option Register Sched Session Support Typed Value

test/test_stabilize.mli:

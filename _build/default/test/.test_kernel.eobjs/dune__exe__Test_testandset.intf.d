test/test_testandset.mli:

test/test_theorem12.mli:

test/test_tlin.ml: Alcotest Elin_checker Elin_history Elin_spec Elin_test_support Engine Eventual Faicounter Fifo Gen History List Maxreg Op Register Stack Support Value

test/test_tlin.mli:

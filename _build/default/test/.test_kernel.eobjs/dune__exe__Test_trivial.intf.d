test/test_trivial.mli:

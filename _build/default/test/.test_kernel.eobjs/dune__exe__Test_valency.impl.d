test/test_valency.ml: Alcotest Array Elin_runtime Elin_spec Elin_test_support Elin_valency List Op Printf Protocols Register Support Valency Value

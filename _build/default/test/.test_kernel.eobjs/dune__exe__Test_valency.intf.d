test/test_valency.mli:

test/test_value.ml: Alcotest Codec Elin_spec Elin_test_support List Op Support Value

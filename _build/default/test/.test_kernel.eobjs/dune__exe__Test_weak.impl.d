test/test_weak.ml: Alcotest Elin_checker Elin_history Elin_spec Elin_test_support Event Faic Faicounter Gen History Justify List Nd_coin Op Operation Printf Register Support Value Weak

test/support/support.ml: Alcotest Elin_history Elin_kernel Elin_spec Event Gen History List Op QCheck2 QCheck_alcotest Value

(** Shared helpers for the test suites. *)

open Elin_spec
open Elin_history

(* --- Alcotest testables --- *)

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let op : Op.t Alcotest.testable = Alcotest.testable Op.pp Op.equal

let history : History.t Alcotest.testable =
  Alcotest.testable History.pp (fun a b ->
      List.equal Event.equal (History.events a) (History.events b))

(* --- Event shorthand --- *)

let inv ?(obj = 0) proc o = Event.invoke ~proc ~obj o
let res ?(obj = 0) proc v = Event.respond ~proc ~obj v
let resi ?obj proc n = res ?obj proc (Value.int n)

let h events = History.of_events events

(** A sequential single-process history from op names/responses. *)
let seq ?(proc = 0) ?(obj = 0) behaviour =
  History.of_behaviour ~proc ~obj behaviour

(* --- The paper's running examples --- *)

(** Section 3.2's fetch&increment family: p gets 0, then q gets
    0, 1, ..., k-1.  Every finite instance is 2-linearizable but not
    linearizable (for k >= 2). *)
let paper_fai_family k =
  h
    ([ inv 0 Op.fetch_inc; resi 0 0 ]
    @ List.concat_map
        (fun i -> [ inv 1 Op.fetch_inc; resi 1 i ])
        (List.init k (fun i -> i)))

(* --- QCheck plumbing --- *)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(** Seeded-run property: [prop] receives a fresh [Prng.t]. *)
let seeded_prop ?(count = 200) name prop =
  qtest ~count name Gen.qcheck_seed (fun seed ->
      prop (Elin_kernel.Prng.create seed))

let check_bool name expected actual () =
  Alcotest.(check bool) name expected actual

let quick name f = Alcotest.test_case name `Quick f
let slow name f = Alcotest.test_case name `Slow f

(** Tests for implementation composition ([Compose.flatten]): identity
    flattening preserves behaviour exactly; towers of implementations
    (universal construction over consensus-from-CAS over atomic CAS)
    remain linearizable; and flattening over an eventually linearizable
    inner inherits its misbehaviour — the compositional face of the
    paper's negative results. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let fai = Faicounter.spec ()

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let identity_flatten_preserves_histories () =
  let outer = Impls.fai_from_cas () in
  let flat =
    Compose.flatten ~outer ~inner:(fun i ->
        Compose.identity_inner outer.Impl.bases.(i))
  in
  List.iter
    (fun seed ->
      let h_of impl =
        (Run.execute impl ~workloads:(fai_wl 3 4) ~sched:(Sched.random ~seed) ())
          .Run.history
      in
      Alcotest.check Support.history
        (Printf.sprintf "seed %d identical" seed)
        (h_of outer) (h_of flat))
    [ 1; 2; 3 ]

let consensus_from_cas_correct () =
  (* The inner building block on its own: exhaustively linearizable. *)
  let impl = Compose.consensus_from_cas () in
  let spec = Consensus_spec.spec () in
  let wl = [| [ Op.propose 0 ]; [ Op.propose 1 ] |] in
  let ok, cex, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:14 (fun h ->
        Engine.linearizable (Engine.for_spec spec) h)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules linearizable" true ok

let tower_universal_over_cas =
  (* fetch&increment <- universal construction <- consensus cells
     <- compare&swap: a three-level tower, flattened and checked. *)
  Support.seeded_prop ~count:30 "tower f&i<-universal<-consensus<-cas"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let outer = Universal.construction ~spec:fai ~cells:24 () in
      let flat =
        Compose.flatten ~outer ~inner:(fun _ -> Compose.consensus_from_cas ())
      in
      let out =
        Run.execute flat ~workloads:(fai_wl 2 4) ~sched:(Sched.random ~seed) ()
      in
      out.Run.all_done && Faic.t_linearizable out.Run.history ~t:0)

let tower_exhaustive () =
  let outer = Universal.construction ~spec:fai ~cells:6 () in
  let flat =
    Compose.flatten ~outer ~inner:(fun _ -> Compose.consensus_from_cas ())
  in
  let ok, cex, stats =
    Explore.for_all_histories flat ~workloads:(fai_wl 2 1) ~max_steps:20
      (fun h -> Faic.t_linearizable h ~t:0)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules linearizable" true ok;
  Alcotest.(check bool) "real coverage" true (stats.Explore.leaves > 100)

let ev_inner_inherits_misbehaviour () =
  (* Flatten the board-based f&i over an eventually linearizable inner
     board: duplicates appear — building on eventually linearizable
     parts does not give a linearizable whole (the compositional
     reading of Theorem 12's premise). *)
  let outer = Impls.fai_from_board () in
  let flat =
    Compose.flatten ~outer ~inner:(fun _ ->
        Impl.direct (Ev_base.never_stabilizing (Announce_board.spec ())))
  in
  let cex =
    Explore.exists_history flat ~workloads:(fai_wl 2 2) ~max_steps:14
      (fun h -> not (Faic.t_linearizable h ~t:0))
  in
  Alcotest.(check bool) "violation exists" true (cex <> None);
  (* ... while weak consistency survives (the inner views preserve it). *)
  let ok, _, _ =
    Explore.for_all_histories flat ~workloads:(fai_wl 2 2) ~max_steps:14
      (fun h -> Faic.weakly_consistent h)
  in
  Alcotest.(check bool) "weak consistency inherited" true ok

let locals_isolated_per_process () =
  (* Inner locals are per process: two processes using an inner
     implementation with local counters must not share them. *)
  let counting_inner : Impl.t =
    {
      Impl.name = "counting";
      bases = [| Base.linearizable (Register.spec ()) |];
      local_init = Value.int 0;
      program =
        (fun ~proc:_ ~local _op ->
          let n = Value.to_int local in
          Program.return (Value.int n, Value.int (n + 1)));
    }
  in
  let outer : Impl.t =
    {
      Impl.name = "outer";
      bases = [| Base.linearizable (Register.spec ()) |];
      local_init = Value.unit;
      program =
        (fun ~proc:_ ~local op ->
          Program.bind (Program.access 0 op) (fun r ->
              Program.return (r, local)));
    }
  in
  let flat = Compose.flatten ~outer ~inner:(fun _ -> counting_inner) in
  let wl = Run.uniform_workload Op.read ~procs:2 ~per_proc:3 in
  let out = Run.execute flat ~workloads:wl ~sched:(Sched.round_robin ()) () in
  let by_proc p =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        if o.Elin_history.Operation.proc = p then
          Option.map Value.to_int (Elin_history.Operation.response_value o)
        else None)
      (Elin_history.History.ops out.Run.history)
  in
  Alcotest.(check (list int)) "p0 counts its own" [ 0; 1; 2 ] (by_proc 0);
  Alcotest.(check (list int)) "p1 counts its own" [ 0; 1; 2 ] (by_proc 1)

let base_count_flattened () =
  let outer = Universal.construction ~spec:fai ~cells:5 () in
  let flat =
    Compose.flatten ~outer ~inner:(fun _ -> Compose.consensus_from_cas ())
  in
  (* 5 consensus cells, each one CAS cell. *)
  Alcotest.(check int) "flat base count" 5 (Array.length flat.Impl.bases)

let () =
  Alcotest.run "compose"
    [
      ( "flatten",
        [
          Support.quick "identity preserves histories"
            identity_flatten_preserves_histories;
          Support.quick "consensus from cas" consensus_from_cas_correct;
          tower_universal_over_cas;
          Support.slow "tower exhaustive" tower_exhaustive;
          Support.quick "ev inner inherits misbehaviour"
            ev_inner_inherits_misbehaviour;
          Support.quick "locals isolated" locals_isolated_per_process;
          Support.quick "base counts" base_count_flattened;
        ] );
    ]

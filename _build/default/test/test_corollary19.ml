(** Experiment E14: Corollary 19 — no non-blocking eventually
    linearizable fetch&increment for two processes from linearizable
    registers.

    The proof chains Prop. 18 (an eventually linearizable f&i would
    yield a linearizable one) with the classical impossibility of
    consensus from registers.  Mechanically we verify the chain's
    links and refute an enumerable family of register-only candidate
    implementations: each either fails eventual linearizability
    (weak-consistency or unbounded-min_t violation witnessed by the
    explorer) or fails to be non-blocking. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_test_support

let ( let* ) = Program.bind

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

(* --- Candidate register-only fetch&increment implementations.  All
   use only read/write registers; each is killed mechanically. --- *)

(* Candidate 1: read-increment-write a shared register. *)
let rmw_candidate () : Impl.t =
  {
    Impl.name = "fai/rmw-register";
    bases = [| Base.linearizable (Register.spec ()) |];
    local_init = Value.unit;
    program =
      (fun ~proc:_ ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let* v = Program.access 0 Op.read in
          let v = Value.to_int v in
          let* _ = Program.access 0 (Op.write (v + 1)) in
          Program.return (Value.int v, local)
        | other -> invalid_arg other);
  }

(* Candidate 2: per-process registers; return own count plus last-read
   other count (double counting under races). *)
let split_candidate () : Impl.t =
  {
    Impl.name = "fai/split-registers";
    bases =
      [| Base.linearizable (Register.spec ()); Base.linearizable (Register.spec ()) |];
    local_init = Value.int 0;
    program =
      (fun ~proc ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let own = Value.to_int local in
          let* _ = Program.access proc (Op.write (own + 1)) in
          let* other = Program.access (1 - proc) Op.read in
          Program.return
            (Value.int (own + Value.to_int other), Value.int (own + 1))
        | other -> invalid_arg other);
  }

(* Candidate 3: local-only counting (ignores the other process
   entirely — violates eventual linearizability in infinite runs; in
   bounded runs its min_t grows with the run). *)
let local_candidate () : Impl.t =
  {
    Impl.name = "fai/local-only";
    bases = [| Base.linearizable (Register.spec ()) |];
    local_init = Value.int 0;
    program =
      (fun ~proc:_ ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let own = Value.to_int local in
          Program.return (Value.int own, Value.int (own + 1))
        | other -> invalid_arg other);
  }

(* A violation of eventual linearizability visible in bounded runs: a
   schedule whose history fails t-linearizability for EVERY cut that
   leaves at least the final segment constrained.  We use the pragmatic
   criterion that distinguishes stabilizing from non-stabilizing
   implementations in bounded runs: min_t must not keep pace with the
   history length as the run grows (see test_lemma17 for the honest
   implementations, whose min_t is bounded by 4k). *)

let min_t_at_end hist =
  match Faic.min_t hist with
  | Some t -> t
  | None -> max_int

let rmw_candidate_not_linearizable_schedule () =
  (* The lost-update schedule: both read 0, both write 1, both return
     0. *)
  let cex =
    Explore.exists_history (rmw_candidate ()) ~workloads:(fai_wl 2 1)
      ~max_steps:10
      (fun h -> not (Faic.t_linearizable h ~t:0))
  in
  Alcotest.(check bool) "lost update exists" true (cex <> None)

let rmw_candidate_min_t_grows () =
  (* Under the alternating adversary the duplicates recur forever: the
     stabilization bound chases the end of the history. *)
  let adversary_run per_proc =
    (* interleave reads and writes so every generation collides *)
    let impl = rmw_candidate () in
    let wl = fai_wl 2 per_proc in
    let out =
      Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()
    in
    out.Run.history
  in
  let t4 = min_t_at_end (adversary_run 4) in
  let t8 = min_t_at_end (adversary_run 8) in
  let t12 = min_t_at_end (adversary_run 12) in
  Alcotest.(check bool) "bound grows with run length" true (t4 < t8 && t8 < t12)

let split_candidate_violates () =
  let cex =
    Explore.exists_history (split_candidate ()) ~workloads:(fai_wl 2 2)
      ~max_steps:16
      (fun h -> not (Faic.t_linearizable h ~t:0))
  in
  Alcotest.(check bool) "violating schedule exists" true (cex <> None)

let split_candidate_min_t_grows () =
  let run per_proc =
    (Run.execute (split_candidate ()) ~workloads:(fai_wl 2 per_proc)
       ~sched:(Sched.round_robin ()) ())
      .Run.history
  in
  let t4 = min_t_at_end (run 4) and t10 = min_t_at_end (run 10) in
  Alcotest.(check bool) "no fixed stabilization" true (t4 < t10)

let local_candidate_min_t_grows () =
  let run per_proc =
    (Run.execute (local_candidate ()) ~workloads:(fai_wl 2 per_proc)
       ~sched:(Sched.round_robin ()) ())
      .Run.history
  in
  let t4 = min_t_at_end (run 4) and t10 = min_t_at_end (run 10) in
  Alcotest.(check bool) "no fixed stabilization" true (t4 < t10)

(* Contrast: the board-based implementation (which is NOT register-
   only — the board is a stronger history object) does stabilize: its
   min_t stays put as the run grows.  This isolates exactly where the
   corollary bites. *)
let board_impl_stabilizes () =
  let run per_proc =
    (Run.execute (Impls.fai_ev_board ~k:3 ()) ~workloads:(fai_wl 2 per_proc)
       ~sched:(Sched.round_robin ()) ())
      .Run.history
  in
  let t4 = min_t_at_end (run 4) and t10 = min_t_at_end (run 10) in
  let t16 = min_t_at_end (run 16) in
  Alcotest.(check bool) "bound frozen" true (t4 = t10 && t10 = t16)

(* The chain's first link, restated here for the corollary: IF a
   register-only candidate were eventually linearizable, Prop. 18 (see
   test_stabilize) would make it linearizable, and a linearizable f&i
   plus registers solves 2-consensus (Herlihy) — which test_valency
   shows registers cannot.  Mechanical sanity of the last step: a
   linearizable f&i solves 2-process consensus. *)
let fai_solves_consensus () =
  let r =
    Elin_valency.Valency.check_consensus
      (Elin_valency.Protocols.registers_plus_fai ())
      ~inputs:[| Value.int 0; Value.int 1 |] ~max_steps:40
  in
  Alcotest.(check bool) "terminated" true r.Elin_valency.Valency.terminated;
  Alcotest.(check bool) "agreement" true
    (r.Elin_valency.Valency.agreement_violation = None);
  Alcotest.(check bool) "validity" true
    (r.Elin_valency.Valency.validity_violation = None)

let () =
  Alcotest.run "corollary19"
    [
      ( "candidate refutations (E14)",
        [
          Support.quick "rmw loses updates" rmw_candidate_not_linearizable_schedule;
          Support.quick "rmw min_t grows" rmw_candidate_min_t_grows;
          Support.quick "split violates" split_candidate_violates;
          Support.quick "split min_t grows" split_candidate_min_t_grows;
          Support.quick "local min_t grows" local_candidate_min_t_grows;
          Support.quick "board impl stabilizes (contrast)" board_impl_stabilizes;
        ] );
      ("chain sanity", [ Support.quick "f&i solves consensus" fai_solves_consensus ]);
    ]

(** Tests for the adversarial eventually-linearizable base objects:
    weak consistency by construction, stabilization semantics, and
    full-run eventual linearizability of the object histories. *)

open Elin_spec
open Elin_runtime
open Elin_checker
open Elin_test_support

let reg = Register.spec ()
let fai = Faicounter.spec ()

let run_object base ~workloads ~seed =
  Run.execute (Impl.direct base) ~workloads ~sched:(Sched.random ~seed) ()

let local_view_register () =
  (* Until stabilization each process sees only its own writes. *)
  let base = Ev_base.local_until_step reg 1000 in
  let wl = [| [ Op.write 1; Op.read ]; [ Op.read; Op.write 2; Op.read ] |] in
  let out = run_object base ~workloads:wl ~seed:3 in
  Alcotest.(check bool) "weakly consistent" true
    (Weak.is_weakly_consistent (Weak.for_spec reg) out.Run.history)

let immediate_is_linearizable () =
  let base = Ev_base.make
      { Ev_base.spec = fai; stabilization = Ev_base.Immediately;
        view = Ev_base.Own_only }
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:5 in
  let out = run_object base ~workloads:wl ~seed:1 in
  Alcotest.(check bool) "degenerates to linearizable" true
    (Faic.t_linearizable out.Run.history ~t:0)

let never_stabilizing_is_local () =
  let base = Ev_base.never_stabilizing fai in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
  let out = run_object base ~workloads:wl ~seed:2 in
  (* Each process counts alone: histories full of duplicates, not
     linearizable, but weakly consistent. *)
  Alcotest.(check bool) "not linearizable" false
    (Faic.t_linearizable out.Run.history ~t:0);
  Alcotest.(check bool) "weakly consistent" true
    (Faic.weakly_consistent out.Run.history)

let stabilization_by_step =
  Support.seeded_prop ~count:50 "histories eventually linearizable"
    (fun rng ->
      let k = 2 + Elin_kernel.Prng.int rng 10 in
      let seed = Elin_kernel.Prng.int rng 10000 in
      let base = Ev_base.local_until_step fai k in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
      let out = run_object base ~workloads:wl ~seed in
      Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let stabilization_by_accesses =
  Support.seeded_prop ~count:50 "access-triggered stabilization" (fun rng ->
      let k = 1 + Elin_kernel.Prng.int rng 6 in
      let seed = Elin_kernel.Prng.int rng 10000 in
      let base = Ev_base.local_until_accesses fai k in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:3 in
      let out = run_object base ~workloads:wl ~seed in
      Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let adversarial_branching_weakly_consistent =
  Support.seeded_prop ~count:50 "Own_or_all views stay weakly consistent"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 10000 in
      let base = Ev_base.adversarial_until_step reg 12 in
      let wl =
        [|
          [ Op.write 1; Op.read; Op.read ];
          [ Op.read; Op.write 2; Op.read ];
        |]
      in
      let out = run_object base ~workloads:wl ~seed in
      Weak.is_weakly_consistent (Weak.for_spec reg) out.Run.history)

let merged_state_reflects_log () =
  (* After stabilization the committed state contains every announced
     op in announcement order. *)
  let base = Ev_base.local_until_accesses fai 3 in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
  let out = run_object base ~workloads:wl ~seed:7 in
  let committed, log, stabilized, accesses =
    Ev_base.decode out.Run.final_base_states.(0)
  in
  Alcotest.(check bool) "stabilized" true stabilized;
  Alcotest.(check int) "all accesses logged" 8 (List.length log);
  Alcotest.(check int) "access counter" 8 accesses;
  Alcotest.(check Support.value) "merged counter value" (Value.int 8) committed

let stabilized_state_idempotent () =
  let base = Ev_base.never_stabilizing fai in
  let cfg =
    { Ev_base.spec = fai; stabilization = Ev_base.Never; view = Ev_base.Own_only }
  in
  let s0 = base.Base.init in
  let s1 = Ev_base.stabilized_state cfg s0 in
  let s2 = Ev_base.stabilized_state cfg s1 in
  Alcotest.check Support.value "idempotent" s1 s2

let choices_deduplicated () =
  (* In the initial state, own view and all view coincide: one choice. *)
  let base = Ev_base.adversarial_until_step reg 100 in
  let choices =
    base.Base.access ~state:base.Base.init ~proc:0 ~step:0 Op.read
  in
  Alcotest.(check int) "single deduped choice" 1 (List.length choices)

let divergent_views_branch () =
  (* After p1 writes, p0's read has two distinct views: own (initial)
     and all (sees the write). *)
  let base = Ev_base.adversarial_until_step reg 100 in
  let s1 =
    match base.Base.access ~state:base.Base.init ~proc:1 ~step:0 (Op.write 1) with
    | [ (_, s) ] -> s
    | _ -> Alcotest.fail "write should have one choice"
  in
  let choices = base.Base.access ~state:s1 ~proc:0 ~step:1 Op.read in
  Alcotest.(check int) "two views" 2 (List.length choices);
  let resps = List.map fst choices in
  Alcotest.(check bool) "0 and 1 offered" true
    (List.exists (Value.equal (Value.int 0)) resps
    && List.exists (Value.equal (Value.int 1)) resps)

let () =
  Alcotest.run "ev_base"
    [
      ( "views",
        [
          Support.quick "local view register" local_view_register;
          Support.quick "immediate = linearizable" immediate_is_linearizable;
          Support.quick "never stabilizing" never_stabilizing_is_local;
          Support.quick "choices deduplicated" choices_deduplicated;
          Support.quick "divergent views branch" divergent_views_branch;
          adversarial_branching_weakly_consistent;
        ] );
      ( "stabilization",
        [
          stabilization_by_step;
          stabilization_by_accesses;
          Support.quick "merged state" merged_state_reflects_log;
          Support.quick "idempotent" stabilized_state_idempotent;
        ] );
    ]

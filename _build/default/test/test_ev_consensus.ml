(** Experiment E10: Proposition 16 — the Proposals-array consensus is
    wait-free and eventually linearizable, from linearizable *and* from
    eventually linearizable registers. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let spec = Consensus_spec.spec ()

let propose_wl procs =
  Array.init procs (fun p -> [ Op.propose (p mod 2) ])

let run impl ~procs ~seed =
  Run.execute impl ~workloads:(propose_wl procs) ~sched:(Sched.random ~seed) ()

let eventually_linearizable_lin_regs =
  Support.seeded_prop ~count:60 "ev-lin over linearizable registers"
    (fun rng ->
      let procs = 2 + Elin_kernel.Prng.int rng 3 in
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out = run (Ev_consensus.impl ~procs ()) ~procs ~seed in
      out.Run.all_done
      && Eventual.is_eventually_linearizable
           (Eventual.check_spec spec out.Run.history))

let eventually_linearizable_ev_regs =
  Support.seeded_prop ~count:60 "ev-lin over EVENTUALLY linearizable registers"
    (fun rng ->
      let procs = 2 + Elin_kernel.Prng.int rng 2 in
      let seed = Elin_kernel.Prng.int rng 100000 in
      let k = Elin_kernel.Prng.int rng 12 in
      let out =
        run (Ev_consensus.impl ~procs ~base:(`Ev_at_step k) ()) ~procs ~seed
      in
      out.Run.all_done
      && Eventual.is_eventually_linearizable
           (Eventual.check_spec spec out.Run.history))

let wait_free () =
  (* Each Propose performs at most n+2 register accesses: one read of
     its own register, one write, and the scan of n registers. *)
  let procs = 4 in
  let out = run (Ev_consensus.impl ~procs ()) ~procs ~seed:5 in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  Alcotest.(check bool) "bounded accesses" true
    (out.Run.stats.Run.max_steps_per_op <= procs + 2)

let weakly_consistent_exhaustive () =
  let procs = 2 in
  let impl = Ev_consensus.impl ~procs () in
  let ok, cex, _ =
    Explore.for_all_histories impl ~workloads:(propose_wl procs) ~max_steps:16
      (fun h -> Weak.is_weakly_consistent (Weak.for_spec spec) h)
  in
  (match cex with
  | Some h -> Alcotest.failf "violation:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules weakly consistent" true ok

let eventually_linearizable_exhaustive () =
  let procs = 2 in
  let impl = Ev_consensus.impl ~procs () in
  let ok, _, _ =
    Explore.for_all_histories impl ~workloads:(propose_wl procs) ~max_steps:16
      (fun h ->
        Eventual.is_eventually_linearizable (Eventual.check_spec spec h))
  in
  Alcotest.(check bool) "all schedules eventually linearizable" true ok

let not_linearizable_witness () =
  (* The implementation is NOT linearizable: two processes can decide
     differently (p0 writes, scans before p1's write lands leftmost...
     in fact disagreement arises when p1 scans after p0's write while
     deciding). Exhibit any non-linearizable schedule. *)
  let procs = 2 in
  let impl = Ev_consensus.impl ~procs () in
  let wl = [| [ Op.propose 0 ]; [ Op.propose 1 ] |] in
  let cex =
    Explore.exists_history impl ~workloads:wl ~max_steps:16 (fun h ->
        not (Engine.linearizable (Engine.for_spec spec) h))
  in
  Alcotest.(check bool) "non-linearizable schedule exists" true (cex <> None)

let repeated_proposals_stabilize () =
  (* The paper's t-linearization argument: once every write has
     happened and scans run after them, all Propose operations return
     the same value.  Make processes propose repeatedly and check the
     suffix agrees. *)
  let procs = 3 in
  let impl = Ev_consensus.impl ~procs () in
  let wl = Array.init procs (fun p -> List.init 4 (fun _ -> Op.propose (p mod 2))) in
  let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed:11) () in
  let decisions =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        Option.map
          (fun v -> (o.Elin_history.Operation.inv, Value.to_int v))
          (Elin_history.Operation.response_value o))
      (Elin_history.History.ops out.Run.history)
  in
  (* All operations invoked after every process's first write must
     agree; conservatively: the last [procs] operations agree. *)
  let sorted = List.sort compare decisions in
  let last_vals =
    List.filteri
      (fun i _ -> i >= List.length sorted - procs)
      (List.map snd sorted)
  in
  (match last_vals with
  | [] -> Alcotest.fail "no decisions"
  | v :: rest ->
    Alcotest.(check bool) "suffix agrees" true (List.for_all (( = ) v) rest));
  Alcotest.(check bool) "eventually linearizable" true
    (Eventual.is_eventually_linearizable
       (Eventual.check_spec spec out.Run.history))

let crash_tolerance () =
  (* Wait-freedom means survivors finish no matter who crashes: kill
     process 0 right after its write lands; everyone else still
     decides, and the history stays eventually linearizable. *)
  let procs = 3 in
  let impl = Ev_consensus.impl ~procs () in
  let wl = propose_wl procs in
  let sched = Sched.crash ~crashes:[ (0, 3) ] (Sched.round_robin ()) in
  let out = Run.execute impl ~workloads:wl ~sched () in
  let completed_by p =
    List.exists
      (fun (o : Elin_history.Operation.t) ->
        o.Elin_history.Operation.proc = p && Elin_history.Operation.is_complete o)
      (Elin_history.History.ops out.Run.history)
  in
  Alcotest.(check bool) "p1 decided" true (completed_by 1);
  Alcotest.(check bool) "p2 decided" true (completed_by 2);
  Alcotest.(check bool) "history eventually linearizable" true
    (Eventual.is_eventually_linearizable
       (Eventual.check_spec spec out.Run.history))

let pause_tolerance =
  Support.seeded_prop ~count:30 "paused processes still decide" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let procs = 3 in
      let impl = Ev_consensus.impl ~procs () in
      let sched =
        Sched.pause ~proc:1 ~from_step:2 ~until_step:12 (Sched.random ~seed)
      in
      let out = Run.execute impl ~workloads:(propose_wl procs) ~sched () in
      out.Run.all_done
      && Eventual.is_eventually_linearizable
           (Eventual.check_spec spec out.Run.history))

let own_register_visibility () =
  (* The algorithm's correctness hinges on weak consistency of the base
     registers: a process always sees its own proposal, so line 3
     always finds a non-⊥ value.  Even over never-stabilizing
     registers every Propose terminates with a valid decision. *)
  let procs = 2 in
  let impl = Ev_consensus.impl ~procs ~base:(`Ev_after_accesses max_int) () in
  let out = run impl ~procs ~seed:3 in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  List.iter
    (fun (o : Elin_history.Operation.t) ->
      match Elin_history.Operation.response_value o with
      | Some v ->
        Alcotest.(check bool) "decision is someone's input" true
          (Value.equal v (Value.int 0) || Value.equal v (Value.int 1))
      | None -> Alcotest.fail "pending propose")
    (Elin_history.History.ops out.Run.history)

let () =
  Alcotest.run "ev_consensus"
    [
      ( "proposition 16 (E10)",
        [
          eventually_linearizable_lin_regs;
          eventually_linearizable_ev_regs;
          Support.quick "wait-free" wait_free;
          Support.slow "weak consistency exhaustive" weakly_consistent_exhaustive;
          Support.slow "eventual linearizability exhaustive"
            eventually_linearizable_exhaustive;
          Support.quick "not linearizable" not_linearizable_witness;
          Support.quick "repeated proposals stabilize" repeated_proposals_stabilize;
          Support.quick "own register visibility" own_register_visibility;
        ] );
      ( "failure injection",
        [ Support.quick "crash tolerance" crash_tolerance; pause_tolerance ] );
    ]

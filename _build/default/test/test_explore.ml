(** Tests for the bounded exhaustive explorer: leaf counting against
    hand-computed interleaving counts, exhaustiveness (it finds the
    schedules random testing misses), configuration stepping, and the
    solo-run helpers used by the stabilization construction. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_test_support

let direct_fai () = Impl.of_spec (Faicounter.spec ())

let leaf_count_single_proc () =
  (* One process, two ops, no base accesses: a single schedule. *)
  let wl = [| [ Op.fetch_inc; Op.fetch_inc ] |] in
  let stats = Explore.iter_leaves (direct_fai ()) ~workloads:wl (fun _ -> ()) in
  Alcotest.(check int) "one leaf" 1 stats.Explore.leaves

let leaf_count_two_procs () =
  (* Two processes, one 3-step op each (invoke, base access, respond):
     interleavings of two ordered triples = C(6,3) = 20. *)
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:1 in
  let stats = Explore.iter_leaves (direct_fai ()) ~workloads:wl (fun _ -> ()) in
  Alcotest.(check int) "twenty interleavings" 20 stats.Explore.leaves

let truncation_counted () =
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
  let stats =
    Explore.iter_leaves (direct_fai ()) ~workloads:wl ~max_steps:3 (fun _ -> ())
  in
  Alcotest.(check bool) "truncated leaves" true (stats.Explore.truncated > 0)

let all_leaf_histories_linearizable () =
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let ok, cex, _ =
    Explore.for_all_histories (direct_fai ()) ~workloads:wl ~max_steps:16
      (fun h -> Faic.t_linearizable h ~t:0)
  in
  Alcotest.(check bool) "no counterexample" true (ok && cex = None)

let exists_finds_schedule () =
  (* The direct implementation responds atomically: some interleaving
     has p1's whole op inside p0's op window. *)
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:1 in
  let found =
    Explore.exists_history (direct_fai ()) ~workloads:wl ~max_steps:8 (fun h ->
        match Elin_history.History.ops h with
        | [ a; b ] ->
          Elin_history.Operation.precedes a b
          || Elin_history.Operation.precedes b a
        | _ -> false)
  in
  Alcotest.(check bool) "sequentialized schedule exists" true (found <> None)

let adversary_branching_explored () =
  (* An eventually linearizable register with Own_or_all views: the
     explorer must cover both views, so some leaf shows the stale read
     and some leaf shows the fresh one. *)
  let base = Ev_base.adversarial_until_step (Register.spec ()) 100 in
  let impl = Impl.direct base in
  let wl = [| [ Op.read ]; [ Op.write 1 ] |] in
  let reads h =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        if Op.equal o.Elin_history.Operation.op Op.read then
          Elin_history.Operation.response_value o
        else None)
      (Elin_history.History.ops h)
  in
  let saw v =
    Explore.exists_history impl ~workloads:wl ~max_steps:8 (fun h ->
        List.exists (Value.equal v) (reads h))
    <> None
  in
  Alcotest.(check bool) "stale read covered" true (saw (Value.int 0));
  Alcotest.(check bool) "fresh read covered" true (saw (Value.int 1))

let config_invocations_tracked () =
  let impl = direct_fai () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:1 in
  let c0 = Explore.initial_config impl ~workloads:wl () in
  Alcotest.(check int) "no invocations yet" 0 c0.Explore.invocations;
  match Explore.step impl c0 0 with
  | [ c1 ] ->
    Alcotest.(check int) "one invocation" 1 c1.Explore.invocations;
    Alcotest.(check int) "one event" 1 c1.Explore.n_events
  | _ -> Alcotest.fail "invoke step is deterministic"

let successors_cover_all_procs () =
  let impl = direct_fai () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:1 in
  let c0 = Explore.initial_config impl ~workloads:wl () in
  Alcotest.(check int) "three successors" 3
    (List.length (Explore.successors impl c0))

let locals_override () =
  let impl =
    {
      Impl.name = "local-reader";
      bases = [||];
      local_init = Value.int 0;
      program =
        (fun ~proc:_ ~local _ -> Program.return (local, local));
    }
  in
  let wl = [| [ Op.read ] |] in
  let found =
    Explore.exists_history impl ~workloads:wl ~locals:[| Value.int 9 |]
      ~max_steps:4 (fun h ->
        List.exists
          (fun (o : Elin_history.Operation.t) ->
            Elin_history.Operation.response_value o = Some (Value.int 9))
          (Elin_history.History.ops h))
  in
  Alcotest.(check bool) "override visible" true (found <> None)

let complete_current_ops_idles () =
  let impl = Impls.fai_from_cas () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let c0 = Explore.initial_config impl ~workloads:wl () in
  (* Step both processes into the middle of their first op. *)
  let c =
    match Explore.step impl c0 0 with
    | c :: _ -> (match Explore.step impl c 1 with c :: _ -> c | [] -> c0)
    | [] -> c0
  in
  match Explore.complete_current_ops impl c ~fuel:50 with
  | None -> Alcotest.fail "non-blocking implementation must idle"
  | Some c' ->
    Alcotest.(check bool) "quiescent" true (Explore.is_quiescent c')

let iter_configs_visits_root () =
  let impl = direct_fai () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:1 ~per_proc:1 in
  let seen = ref 0 in
  let _ = Explore.iter_configs impl ~workloads:wl (fun _ -> incr seen) in
  (* root, after invoke, after the base access, after respond *)
  Alcotest.(check int) "four configurations" 4 !seen

let () =
  Alcotest.run "explore"
    [
      ( "leaves",
        [
          Support.quick "single proc" leaf_count_single_proc;
          Support.quick "two procs" leaf_count_two_procs;
          Support.quick "truncation" truncation_counted;
          Support.quick "forall" all_leaf_histories_linearizable;
          Support.quick "exists" exists_finds_schedule;
          Support.quick "adversary branching" adversary_branching_explored;
        ] );
      ( "configs",
        [
          Support.quick "invocations tracked" config_invocations_tracked;
          Support.quick "successors" successors_cover_all_procs;
          Support.quick "locals override" locals_override;
          Support.quick "complete current ops" complete_current_ops_idles;
          Support.quick "iter configs" iter_configs_visits_root;
        ] );
    ]

(** The fast fetch&increment checker (Lemma 17's slot argument as a
    decision procedure), and its cross-validation against the generic
    engine — the strongest internal-soundness evidence in the repo. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let fai = Faicounter.spec ()
let fcfg = Engine.for_spec fai

(* --- unit --- *)

let sequential_counting () =
  let hist = seq [ (Op.fetch_inc, Value.int 0); (Op.fetch_inc, Value.int 1) ] in
  Alcotest.(check bool) "t=0" true (Faic.t_linearizable hist ~t:0)

let duplicate_rejected () =
  let hist =
    h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 0 0; resi 1 0 ]
  in
  Alcotest.(check bool) "duplicates" false (Faic.t_linearizable hist ~t:0)

let gap_with_pending () =
  let hist = h [ inv 1 Op.fetch_inc; inv 0 Op.fetch_inc; resi 0 1 ] in
  Alcotest.(check bool) "pending filler" true (Faic.t_linearizable hist ~t:0)

let gap_without_filler () =
  let hist = h [ inv 0 Op.fetch_inc; resi 0 1 ] in
  Alcotest.(check bool) "unfillable gap" false (Faic.t_linearizable hist ~t:0)

let late_pending_cannot_fill_early_slot () =
  (* Op returning 1 completes; only then is the would-be filler
     invoked: slot 0 cannot be filled by it (lower bound 2). *)
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 1; inv 1 Op.fetch_inc ]
  in
  Alcotest.(check bool) "late filler blocked" false
    (Faic.t_linearizable hist ~t:0)

let real_time_violation () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 1; inv 1 Op.fetch_inc; resi 1 0 ]
  in
  Alcotest.(check bool) "descending across precedence" false
    (Faic.t_linearizable hist ~t:0)

let initial_value_respected () =
  let hist = seq [ (Op.fetch_inc, Value.int 5); (Op.fetch_inc, Value.int 6) ] in
  Alcotest.(check bool) "initial 5 ok" true
    (Faic.t_linearizable ~initial:5 hist ~t:0);
  Alcotest.(check bool) "initial 0 needs fillers" false
    (Faic.t_linearizable ~initial:0 hist ~t:0);
  let hist = seq [ (Op.fetch_inc, Value.int 3) ] in
  Alcotest.(check bool) "below initial rejected" false
    (Faic.t_linearizable ~initial:5 hist ~t:0)

let paper_family_fast () =
  let hist = paper_fai_family 5 in
  Alcotest.(check bool) "t=0" false (Faic.t_linearizable hist ~t:0);
  Alcotest.(check bool) "t=1" false (Faic.t_linearizable hist ~t:1);
  Alcotest.(check bool) "t=2" true (Faic.t_linearizable hist ~t:2);
  Alcotest.(check (option int)) "min_t" (Some 2) (Faic.min_t hist)

let cut_frees_responses () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 9; inv 1 Op.fetch_inc; resi 1 0 ]
  in
  (* 9 is absurd, but its response sits before t=2. *)
  Alcotest.(check bool) "absurd pre-cut response ok" true
    (Faic.t_linearizable hist ~t:2)

let empty_fast () =
  Alcotest.(check bool) "empty" true (Faic.t_linearizable (h []) ~t:0);
  Alcotest.(check (option int)) "empty min_t" (Some 0) (Faic.min_t (h []))

let classify_partition () =
  let hist = paper_fai_family 2 in
  let { Faic.post; pre; pending } = Faic.classify hist ~t:2 in
  Alcotest.(check int) "post" 2 (List.length post);
  Alcotest.(check int) "pre" 1 (List.length pre);
  Alcotest.(check int) "pending" 0 (List.length pending)

(* --- cross-validation against the generic engine --- *)

let history_kinds rng =
  (* A mix of honest, eventually-linearizable-shaped, corrupted and
     response-shuffled histories. *)
  let kind = Prng.int rng 4 in
  match kind with
  | 0 -> Gen.linearizable rng ~spec:fai ~procs:3 ~n_ops:6 ()
  | 1 ->
    fst
      (Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
         ~suffix_ops:3 ())
  | 2 -> (
    let h = Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:5 () in
    match Gen.corrupt rng h with Some h' -> h' | None -> h)
  | _ -> Gen.linearizable_with_pending rng ~spec:fai ~procs:3 ~n_ops:5 ()

let cross_validation =
  Support.seeded_prop ~count:400 "fast = generic on all cuts" (fun rng ->
      let hist = history_kinds rng in
      let len = History.length hist in
      List.for_all
        (fun t ->
          Faic.t_linearizable hist ~t = Engine.t_linearizable fcfg hist ~t)
        (List.init (len + 1) (fun t -> t)))

let min_t_cross_validation =
  Support.seeded_prop ~count:150 "fast min_t = generic min_t" (fun rng ->
      let hist = history_kinds rng in
      Faic.min_t hist = Eventual.min_t fcfg hist)

(* adversarial micro-histories: every fetch&inc history with <= 3 ops
   and small values, exhaustively *)
let exhaustive_micro () =
  (* Enumerate event sequences of bounded shape: 2 procs, up to 2 ops
     each, response values in 0..3. *)
  let count = ref 0 in
  let rec build events procs_pending n_ops =
    (* try finishing here *)
    (match History.of_events_result (List.rev events) with
    | Ok hist ->
      incr count;
      let len = History.length hist in
      List.iter
        (fun t ->
          let fast = Faic.t_linearizable hist ~t in
          let generic = Engine.t_linearizable fcfg hist ~t in
          if fast <> generic then
            Alcotest.failf "disagreement at t=%d on:\n%s (fast=%b)" t
              (History.to_string hist) fast)
        (List.init (len + 1) (fun t -> t))
    | Error _ -> ());
    if n_ops < 3 then begin
      List.iter
        (fun p ->
          if not (List.mem p procs_pending) then
            build
              (Event.invoke ~proc:p ~obj:0 Op.fetch_inc :: events)
              (p :: procs_pending) (n_ops + 1))
        [ 0; 1 ];
      List.iter
        (fun p ->
          if List.mem p procs_pending then
            List.iter
              (fun v ->
                build
                  (Event.respond ~proc:p ~obj:0 (Value.int v) :: events)
                  (List.filter (fun q -> q <> p) procs_pending)
                  n_ops)
              [ 0; 1; 2; 3 ])
        [ 0; 1 ]
    end
  in
  build [] [] 0;
  Alcotest.(check bool) "covered many histories" true (!count > 100)

let weak_fast_unit () =
  Alcotest.(check bool) "paper family weak" true
    (Faic.weakly_consistent (paper_fai_family 4));
  let bad = h [ inv 0 Op.fetch_inc; resi 0 3 ] in
  Alcotest.(check bool) "3 out of thin air" false (Faic.weakly_consistent bad)

let full_verdict () =
  let v = Faic.check (paper_fai_family 4) in
  Alcotest.(check bool) "eventually linearizable" true
    (Eventual.is_eventually_linearizable v)

(* Soak: long runs of the real eventually linearizable implementations
   through the fast checker — the scale the generic engine cannot
   reach, exercising the incremental/matching machinery on thousands of
   operations. *)
let soak_long_runs () =
  List.iter
    (fun (k, per_proc, seed) ->
      let impl = Elin_runtime.Impls.fai_ev_board ~k () in
      let wl =
        Elin_runtime.Run.uniform_workload Op.fetch_inc ~procs:4 ~per_proc
      in
      let out =
        Elin_runtime.Run.execute impl ~workloads:wl
          ~sched:(Elin_runtime.Sched.random ~seed)
          ~max_steps:1_000_000 ()
      in
      let hist = out.Elin_runtime.Run.history in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d n=%d completed" k (4 * per_proc))
        true out.Elin_runtime.Run.all_done;
      let v = Faic.check hist in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d n=%d eventually linearizable" k (4 * per_proc))
        true
        (Eventual.is_eventually_linearizable v);
      (* And the bound sits inside the misbehaving prefix. *)
      match v.Eventual.min_t with
      | Some t -> Alcotest.(check bool) "bound within prefix" true (t <= 4 * k)
      | None -> Alcotest.fail "missing bound")
    [ (10, 250, 3); (50, 500, 4); (200, 1000, 5) ]

let () =
  Alcotest.run "faic"
    [
      ( "unit",
        [
          Support.quick "sequential" sequential_counting;
          Support.quick "duplicates" duplicate_rejected;
          Support.quick "pending filler" gap_with_pending;
          Support.quick "unfillable gap" gap_without_filler;
          Support.quick "late filler" late_pending_cannot_fill_early_slot;
          Support.quick "real time" real_time_violation;
          Support.quick "initial value" initial_value_respected;
          Support.quick "paper family" paper_family_fast;
          Support.quick "cut frees responses" cut_frees_responses;
          Support.quick "empty" empty_fast;
          Support.quick "classification" classify_partition;
          Support.quick "weak fast" weak_fast_unit;
          Support.quick "full verdict" full_verdict;
        ] );
      ( "cross-validation",
        [
          cross_validation;
          min_t_cross_validation;
          Support.slow "exhaustive micro-histories" exhaustive_micro;
        ] );
      ("soak", [ Support.slow "long eventually linearizable runs" soak_long_runs ]);
    ]

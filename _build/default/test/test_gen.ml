(** Tests for the history generators: the linearizable generator only
    emits linearizable histories; the eventually-linearizable generator
    emits weakly consistent, t-linearizable-at-the-returned-cut
    histories; corruption usually breaks linearizability but never
    well-formedness. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support

let specs_under_test () =
  [ Register.spec (); Faicounter.spec (); Fifo.spec (); Maxreg.spec () ]

let generator_linearizable =
  Support.seeded_prop ~count:100 "linearizable generator is linearizable"
    (fun rng ->
      List.for_all
        (fun spec ->
          let h = Gen.linearizable rng ~spec ~procs:3 ~n_ops:7 () in
          Engine.linearizable (Engine.for_spec spec) h)
        (specs_under_test ()))

let generator_exact_op_count =
  Support.seeded_prop ~count:100 "generator emits requested op count"
    (fun rng ->
      let spec = Register.spec () in
      let h = Gen.linearizable rng ~spec ~procs:4 ~n_ops:9 () in
      History.n_ops h = 9 && List.length (History.complete_ops h) = 9)

let generator_deterministic_in_seed () =
  let spec = Register.spec () in
  let h1 = Gen.linearizable (Prng.create 5) ~spec ~procs:3 ~n_ops:10 () in
  let h2 = Gen.linearizable (Prng.create 5) ~spec ~procs:3 ~n_ops:10 () in
  Alcotest.check Support.history "same seed, same history" h1 h2

let generator_with_pending =
  Support.seeded_prop ~count:100 "pending generator stays linearizable"
    (fun rng ->
      let spec = Register.spec () in
      let h = Gen.linearizable_with_pending rng ~spec ~procs:3 ~n_ops:6 () in
      Engine.linearizable (Engine.for_spec spec) h)

let ev_generator_weakly_consistent =
  Support.seeded_prop ~count:60 "ev generator weakly consistent" (fun rng ->
      let spec = Register.spec () in
      let h, _ =
        Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:4
          ~suffix_ops:4 ()
      in
      Weak.is_weakly_consistent (Weak.for_spec spec) h)

let ev_generator_t_linearizable =
  Support.seeded_prop ~count:60 "ev generator t-linearizable at cut"
    (fun rng ->
      let spec = Faicounter.spec () in
      let h, t =
        Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:4
          ~suffix_ops:4 ()
      in
      Faic.t_linearizable h ~t)

let corrupt_well_formed =
  Support.seeded_prop ~count:100 "corruption keeps well-formedness"
    (fun rng ->
      let spec = Faicounter.spec () in
      let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:6 () in
      match Gen.corrupt rng h with
      | None -> false (* six complete ops: must be able to corrupt *)
      | Some h' -> History.length h' = History.length h)

let corrupt_changes_history =
  Support.seeded_prop ~count:100 "corruption changes a response" (fun rng ->
      let spec = Faicounter.spec () in
      let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:6 () in
      match Gen.corrupt rng h with
      | None -> false
      | Some h' ->
        not (List.equal Event.equal (History.events h) (History.events h')))

let corrupt_empty () =
  let rng = Prng.create 0 in
  Alcotest.(check bool) "no complete ops, no corruption" true
    (Gen.corrupt rng (History.of_events [  ]) = None)

let () =
  Alcotest.run "gen"
    [
      ( "linearizable",
        [
          generator_linearizable;
          generator_exact_op_count;
          Support.quick "deterministic in seed" generator_deterministic_in_seed;
          generator_with_pending;
        ] );
      ( "eventually-linearizable",
        [ ev_generator_weakly_consistent; ev_generator_t_linearizable ] );
      ( "corrupt",
        [
          corrupt_well_formed;
          corrupt_changes_history;
          Support.quick "empty history" corrupt_empty;
        ] );
    ]

(** Experiment E6: the Figure-1 weak-consistency guard
    (Proposition 11).  An implementation whose histories are
    t-linearizable for some t but not weakly consistent becomes, once
    wrapped, weakly consistent while staying t-linearizable and
    non-blocking. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let fai = Faicounter.spec ()
let ( let* ) = Program.bind

(** An implementation that is "liveness-only": before the board holds
    [k] announcements it answers with an out-of-left-field constant
    (weak-consistency violation); afterwards the announce index
    (linearizable).  Its histories are t-linearizable for t past the
    last bogus response, but not weakly consistent. *)
let weird ~k ~bogus () : Impl.t =
  {
    Impl.name = Printf.sprintf "fai/weird(k=%d)" k;
    bases = [| Base.linearizable (Announce_board.spec ()) |];
    local_init = Value.unit;
    program =
      (fun ~proc ~local op ->
        match Op.name op with
        | "fetch&inc" ->
          let* idx =
            Program.access 0 (Announce_board.announce (Value.int proc))
          in
          let idx = Value.to_int idx in
          Program.return
            ((if idx >= k then Value.int idx else Value.int bogus), local)
        | other -> invalid_arg ("fai/weird: unknown operation " ^ other));
  }

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let unguarded_violates_weak_consistency () =
  let out =
    Run.execute (weird ~k:4 ~bogus:7 ()) ~workloads:(fai_wl 3 4)
      ~sched:(Sched.random ~seed:5) ()
  in
  Alcotest.(check bool) "weak violated" false
    (Faic.weakly_consistent out.Run.history);
  Alcotest.(check bool) "still t-linearizable for some t" true
    (Faic.min_t out.Run.history <> None)

let guarded_weakly_consistent =
  Support.seeded_prop ~count:40 "guarded histories weakly consistent"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let k = Elin_kernel.Prng.int rng 6 in
      let guarded = Guard.wrap ~spec:fai (weird ~k ~bogus:7 ()) in
      let out =
        Run.execute guarded ~workloads:(fai_wl 3 4)
          ~sched:(Sched.random ~seed) ()
      in
      out.Run.all_done && Faic.weakly_consistent out.Run.history)

let guarded_still_t_linearizable =
  Support.seeded_prop ~count:40 "guarded histories stay eventually lin"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let guarded = Guard.wrap ~spec:fai (weird ~k:4 ~bogus:7 ()) in
      let out =
        Run.execute guarded ~workloads:(fai_wl 2 5)
          ~sched:(Sched.random ~seed) ()
      in
      Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let guarded_exhaustive () =
  (* Exhaustively: every schedule of the guarded implementation yields
     a weakly consistent history. *)
  let guarded = Guard.wrap ~spec:fai (weird ~k:2 ~bogus:9 ()) in
  let ok, cex, stats =
    Explore.for_all_histories guarded ~workloads:(fai_wl 2 2) ~max_steps:18
      (fun h -> Faic.weakly_consistent h)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all weakly consistent" true ok;
  Alcotest.(check bool) "real coverage" true (stats.Explore.leaves > 50)

let guard_returns_shared_when_justified () =
  (* Wrapping an honest linearizable implementation must not change its
     behaviour: the line-13 test always succeeds, so r_shared flows
     through and histories stay linearizable. *)
  let guarded = Guard.wrap ~spec:fai (Impls.fai_from_board ()) in
  let out =
    Run.execute guarded ~workloads:(fai_wl 3 5) ~sched:(Sched.random ~seed:2) ()
  in
  Alcotest.(check bool) "still linearizable" true
    (Faic.t_linearizable out.Run.history ~t:0)

let guard_private_fallback_counts_own_ops () =
  (* With a never-stabilizing inner implementation whose answers are
     never justifiable, each process falls back to its private state:
     responses are its own op count. *)
  let inner = weird ~k:max_int ~bogus:99 () in
  let guarded = Guard.wrap ~spec:fai inner in
  let out =
    Run.execute guarded ~workloads:(fai_wl 2 3) ~sched:(Sched.round_robin ()) ()
  in
  let by_proc p =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        if o.Elin_history.Operation.proc = p then
          Option.map Value.to_int (Elin_history.Operation.response_value o)
        else None)
      (Elin_history.History.ops out.Run.history)
  in
  Alcotest.(check (list int)) "p0 counts own" [ 0; 1; 2 ] (by_proc 0);
  Alcotest.(check (list int)) "p1 counts own" [ 0; 1; 2 ] (by_proc 1)

let guard_non_blocking () =
  (* The guard adds 2 board accesses per op; operations still finish. *)
  let guarded = Guard.wrap ~spec:fai (weird ~k:3 ~bogus:7 ()) in
  let out =
    Run.execute guarded ~workloads:(fai_wl 3 4) ~sched:(Sched.random ~seed:8) ()
  in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  Alcotest.(check int) "3 accesses per op" 3 out.Run.stats.Run.max_steps_per_op

let guard_on_register_type () =
  (* The guard is type-generic: wrap a register implementation whose
     reads return garbage pre-stabilization. *)
  let reg = Register.spec () in
  let weird_reg : Impl.t =
    {
      Impl.name = "reg/weird";
      bases = [| Base.linearizable (Announce_board.spec ()) |];
      local_init = Value.unit;
      program =
        (fun ~proc ~local op ->
          let* idx =
            Program.access 0
              (Announce_board.announce (Codec.encode_entry ~proc op))
          in
          let idx = Value.to_int idx in
          match Op.name op with
          | "read" ->
            Program.return
              ((if idx >= 4 then Value.int 0 else Value.int 9), local)
          | "write" -> Program.return (Value.unit, local)
          | other -> invalid_arg other);
    }
  in
  let guarded = Guard.wrap ~spec:reg weird_reg in
  let wl = [| [ Op.read; Op.write 1; Op.read ]; [ Op.read; Op.read ] |] in
  let out = Run.execute guarded ~workloads:wl ~sched:(Sched.random ~seed:1) () in
  Alcotest.(check bool) "weakly consistent" true
    (Weak.is_weakly_consistent (Weak.for_spec reg) out.Run.history)

(* --- the appendix's register-array substrate --- *)

let register_guard_weakly_consistent =
  Support.seeded_prop ~count:30 "register-array guard weakly consistent"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let guarded =
        Guard.wrap_registers ~spec:fai ~procs:3 ~max_ops:8 (weird ~k:4 ~bogus:7 ())
      in
      let out =
        Run.execute guarded ~workloads:(fai_wl 3 4)
          ~sched:(Sched.random ~seed) ()
      in
      out.Run.all_done && Faic.weakly_consistent out.Run.history)

let register_guard_matches_board_guard () =
  (* Same inner implementation, same scheduler seeds: the two guard
     substrates must produce the same operation responses (their base
     access counts differ, so event interleavings differ; compare the
     per-process response sequences instead). *)
  let responses impl seed =
    let out =
      Run.execute impl ~workloads:(fai_wl 2 4) ~sched:(Sched.round_robin ())
        ~seed ()
    in
    List.map
      (fun p ->
        List.filter_map
          (fun (o : Elin_history.Operation.t) ->
            if o.Elin_history.Operation.proc = p then
              Elin_history.Operation.response_value o
            else None)
          (Elin_history.History.ops out.Run.history))
      [ 0; 1 ]
  in
  let board = Guard.wrap ~spec:fai (weird ~k:max_int ~bogus:9 ()) in
  let regs =
    Guard.wrap_registers ~spec:fai ~procs:2 ~max_ops:8
      (weird ~k:max_int ~bogus:9 ())
  in
  (* With a never-justifiable inner, both fall back to private counts:
     identical response sequences regardless of substrate pacing. *)
  Alcotest.(check bool) "same responses" true
    (responses board 1 = responses regs 1)

let register_guard_exhausts () =
  let guarded =
    Guard.wrap_registers ~spec:fai ~procs:1 ~max_ops:2 (weird ~k:0 ~bogus:0 ())
  in
  let wl = [| List.init 3 (fun _ -> Op.fetch_inc) |] in
  Alcotest.(check bool) "array exhaustion raises" true
    (match Run.execute guarded ~workloads:wl ~sched:(Sched.round_robin ()) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let register_guard_exhaustive_weak () =
  let guarded =
    Guard.wrap_registers ~spec:fai ~procs:2 ~max_ops:4 (weird ~k:2 ~bogus:9 ())
  in
  let ok, cex, _ =
    Explore.for_all_histories guarded ~workloads:(fai_wl 2 2) ~max_steps:24
      (fun h -> Faic.weakly_consistent h)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all weakly consistent" true ok

let () =
  Alcotest.run "guard"
    [
      ( "proposition 11 (E6)",
        [
          Support.quick "unguarded violates" unguarded_violates_weak_consistency;
          guarded_weakly_consistent;
          guarded_still_t_linearizable;
          Support.slow "exhaustive" guarded_exhaustive;
          Support.quick "honest impl unchanged" guard_returns_shared_when_justified;
          Support.quick "private fallback" guard_private_fallback_counts_own_ops;
          Support.quick "non-blocking" guard_non_blocking;
          Support.quick "register type" guard_on_register_type;
        ] );
      ( "appendix register arrays",
        [
          register_guard_weakly_consistent;
          Support.quick "matches board guard" register_guard_matches_board_guard;
          Support.quick "array exhaustion" register_guard_exhausts;
          Support.slow "exhaustive weak" register_guard_exhaustive_weak;
        ] );
    ]

(** Tests for histories: well-formedness, operations, projections,
    prefixes, sequential extraction, text (de)serialization. *)

open Elin_spec
open Elin_history
open Elin_test_support
open Support

let well_formed_concurrent () =
  let hist =
    h [ inv 0 (Op.write 1); inv 1 Op.read; res 0 Value.unit; resi 1 0 ]
  in
  Alcotest.(check int) "events" 4 (History.length hist);
  Alcotest.(check int) "ops" 2 (History.n_ops hist);
  Alcotest.(check int) "complete" 2 (List.length (History.complete_ops hist))

let pending_operation () =
  let hist = h [ inv 0 Op.read; inv 1 (Op.write 1); res 1 Value.unit ] in
  Alcotest.(check int) "pending" 1 (List.length (History.pending_ops hist));
  let p = List.hd (History.pending_ops hist) in
  Alcotest.(check int) "pending proc" 0 p.Operation.proc

let ill_formed_double_invoke () =
  Alcotest.(check bool) "double invoke rejected" false
    (History.well_formed [ inv 0 Op.read; inv 0 Op.read ])

let ill_formed_orphan_response () =
  Alcotest.(check bool) "orphan response rejected" false
    (History.well_formed [ resi 0 1 ])

let ill_formed_wrong_object () =
  Alcotest.(check bool) "response on other object rejected" false
    (History.well_formed [ inv ~obj:0 0 Op.read; res ~obj:1 0 (Value.int 0) ])

let of_events_result_error () =
  match History.of_events_result [ resi 0 1 ] with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
    Alcotest.(check string) "error rendering"
      "event 0: response with no pending invocation"
      (Format.asprintf "%a" History.pp_error e)

let operation_indices () =
  let hist =
    h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 1 0; resi 0 1 ]
  in
  let ops = History.ops hist in
  let o0 = List.find (fun (o : Operation.t) -> o.Operation.proc = 0) ops in
  let o1 = List.find (fun (o : Operation.t) -> o.Operation.proc = 1) ops in
  Alcotest.(check int) "o0 inv" 0 o0.Operation.inv;
  Alcotest.(check (option int)) "o0 resp idx" (Some 3) (Operation.response_index o0);
  Alcotest.(check int) "o1 inv" 1 o1.Operation.inv;
  Alcotest.(check (option int)) "o1 resp idx" (Some 2) (Operation.response_index o1);
  (* real-time precedence *)
  Alcotest.(check bool) "no precedence o0->o1" false (Operation.precedes o0 o1);
  Alcotest.(check bool) "no precedence o1->o0" false (Operation.precedes o1 o0)

let precedence () =
  let hist = h [ inv 0 Op.read; resi 0 0; inv 1 Op.read; resi 1 0 ] in
  match History.ops hist with
  | [ a; b ] ->
    Alcotest.(check bool) "a precedes b" true (Operation.precedes a b);
    Alcotest.(check bool) "b not precedes a" false (Operation.precedes b a)
  | _ -> Alcotest.fail "expected 2 ops"

let projections () =
  let hist =
    h
      [
        inv ~obj:0 0 (Op.write 1); inv ~obj:1 1 Op.read; res ~obj:0 0 Value.unit;
        res ~obj:1 1 (Value.int 0); inv ~obj:1 0 Op.read; res ~obj:1 0 (Value.int 0);
      ]
  in
  let h0 = History.proj_obj hist 0 in
  let h1 = History.proj_obj hist 1 in
  Alcotest.(check int) "H|o0 events" 2 (History.length h0);
  Alcotest.(check int) "H|o1 events" 4 (History.length h1);
  let hp0 = History.proj_proc hist 0 in
  Alcotest.(check int) "H|p0 events" 4 (History.length hp0);
  Alcotest.(check bool) "H|p0 sequential" true (History.is_sequential hp0)

let index_map () =
  let hist =
    h
      [
        inv ~obj:1 0 Op.read; res ~obj:1 0 (Value.int 0); inv ~obj:0 1 Op.read;
        res ~obj:0 1 (Value.int 0);
      ]
  in
  let m = History.index_map_obj hist 0 in
  Alcotest.(check (list int)) "object-0 events at 2,3" [ 2; 3 ]
    (Array.to_list m)

let prefixes () =
  let hist = h [ inv 0 Op.read; resi 0 0; inv 1 Op.read; resi 1 0 ] in
  Alcotest.(check int) "prefix 0" 0 (History.length (History.prefix hist 0));
  let p = History.prefix hist 3 in
  Alcotest.(check int) "prefix 3 events" 3 (History.length p);
  Alcotest.(check int) "prefix 3 pending" 1 (List.length (History.pending_ops p));
  Alcotest.(check bool) "prefix too long raises" true
    (match History.prefix hist 5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let sequential_behaviour () =
  let hist = seq [ (Op.write 1, Value.unit); (Op.read, Value.int 1) ] in
  Alcotest.(check bool) "is_sequential" true (History.is_sequential hist);
  let b = History.behaviour_of_sequential hist in
  Alcotest.(check int) "behaviour length" 2 (List.length b)

let not_sequential () =
  let hist = h [ inv 0 Op.read; inv 1 Op.read; resi 0 0; resi 1 0 ] in
  Alcotest.(check bool) "concurrent not sequential" false
    (History.is_sequential hist)

let procs_objs () =
  let hist =
    h [ inv ~obj:2 3 Op.read; res ~obj:2 3 (Value.int 0); inv ~obj:0 1 Op.read ]
  in
  Alcotest.(check (list int)) "procs" [ 1; 3 ] (History.procs hist);
  Alcotest.(check (list int)) "objs" [ 0; 2 ] (History.objs hist)

let append () =
  let hist = h [ inv 0 Op.read ] in
  let hist = History.append hist [ resi 0 0 ] in
  Alcotest.(check int) "appended" 2 (History.length hist)

(* --- textio --- *)

let textio_roundtrip () =
  let hist =
    h
      [
        inv 0 (Op.write 1); inv ~obj:1 1 Op.fetch_inc; res 0 Value.unit;
        res ~obj:1 1 (Value.int 0);
        inv 0 (Op.make "odd" ~args:[ Value.pair (Value.str "a") (Value.bool true) ]);
        res 0 (Value.list [ Value.int 1; Value.unit ]);
      ]
  in
  let s = Textio.to_string hist in
  Alcotest.check Support.history "roundtrip" hist (Textio.of_string s)

let textio_comments_blanks () =
  let s = "# a comment\n\ninv 0 0 read\nres 0 0 5\n" in
  let hist = Textio.of_string s in
  Alcotest.(check int) "events" 2 (History.length hist)

let textio_parse_error () =
  Alcotest.(check bool) "bad kind rejected" true
    (match Textio.of_string "zap 0 0 read\n" with
    | exception Textio.Parse_error _ -> true
    | _ -> false)

let textio_file_roundtrip () =
  let hist = paper_fai_family 3 in
  let path = Filename.temp_file "elin" ".hist" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Textio.to_file path hist;
      Alcotest.check Support.history "file roundtrip" hist (Textio.of_file path))

(* property: generated histories always round-trip *)
let textio_roundtrip_prop =
  Support.seeded_prop ~count:100 "generated histories roundtrip" (fun rng ->
      let spec = Register.spec () in
      let hist = Gen.linearizable rng ~spec ~procs:3 ~n_ops:8 () in
      let hist' = Textio.of_string (Textio.to_string hist) in
      List.equal Event.equal (History.events hist) (History.events hist'))

let () =
  Alcotest.run "history"
    [
      ( "well-formedness",
        [
          Support.quick "concurrent" well_formed_concurrent;
          Support.quick "pending" pending_operation;
          Support.quick "double invoke" ill_formed_double_invoke;
          Support.quick "orphan response" ill_formed_orphan_response;
          Support.quick "wrong object" ill_formed_wrong_object;
          Support.quick "error rendering" of_events_result_error;
        ] );
      ( "operations",
        [
          Support.quick "indices" operation_indices;
          Support.quick "precedence" precedence;
        ] );
      ( "structure",
        [
          Support.quick "projections" projections;
          Support.quick "index map" index_map;
          Support.quick "prefixes" prefixes;
          Support.quick "sequential behaviour" sequential_behaviour;
          Support.quick "not sequential" not_sequential;
          Support.quick "procs/objs" procs_objs;
          Support.quick "append" append;
        ] );
      ( "textio",
        [
          Support.quick "roundtrip" textio_roundtrip;
          Support.quick "comments/blank lines" textio_comments_blanks;
          Support.quick "parse error" textio_parse_error;
          Support.quick "file roundtrip" textio_file_roundtrip;
          textio_roundtrip_prop;
        ] );
    ]

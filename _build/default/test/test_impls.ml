(** Tests for the concrete implementations: the CAS-based and
    board-based linearizable fetch&increments, the eventually
    linearizable board counter, and the register sum counter. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_test_support

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let cas_impl_linearizable =
  Support.seeded_prop ~count:60 "fai/cas linearizable under random schedules"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Impls.fai_from_cas ()) ~workloads:(fai_wl 4 6)
          ~sched:(Sched.random ~seed) ()
      in
      out.Run.all_done && Faic.t_linearizable out.Run.history ~t:0)

let cas_impl_linearizable_exhaustive () =
  let ok, _, stats =
    Explore.for_all_histories (Impls.fai_from_cas ()) ~workloads:(fai_wl 2 2)
      ~max_steps:22
      (fun h -> Faic.t_linearizable h ~t:0)
  in
  Alcotest.(check bool) "all schedules linearizable" true ok;
  Alcotest.(check bool) "non-trivial coverage" true (stats.Explore.leaves > 100)

let cas_impl_lock_free_not_wait_free () =
  (* Under a pathological scheduler p0 can starve: its CAS keeps
     failing while p1 sails through.  We witness unbounded retries by
     comparing step counts under contention vs solo. *)
  let solo =
    Run.execute (Impls.fai_from_cas ()) ~workloads:[| List.init 5 (fun _ -> Op.fetch_inc) |]
      ~sched:(Sched.round_robin ()) ()
  in
  Alcotest.(check int) "solo: 2 accesses per op" 2
    solo.Run.stats.Run.max_steps_per_op

let board_impl_wait_free_linearizable () =
  let out =
    Run.execute (Impls.fai_from_board ()) ~workloads:(fai_wl 3 6)
      ~sched:(Sched.random ~seed:9) ()
  in
  Alcotest.(check bool) "linearizable" true
    (Faic.t_linearizable out.Run.history ~t:0);
  Alcotest.(check int) "single access per op (wait-free)" 1
    out.Run.stats.Run.max_steps_per_op

let ev_board_eventually_linearizable =
  Support.seeded_prop ~count:60 "fai/ev-board eventually linearizable"
    (fun rng ->
      let k = 1 + Elin_kernel.Prng.int rng 8 in
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Impls.fai_ev_board ~k ()) ~workloads:(fai_wl 3 4)
          ~sched:(Sched.random ~seed) ()
      in
      Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let ev_board_not_linearizable_for_large_k () =
  (* With k larger than the op budget the counter misbehaves all run:
     under a schedule where two processes interleave, duplicates
     appear. *)
  let impl = Impls.fai_ev_board ~k:100 () in
  let found =
    Explore.exists_history impl ~workloads:(fai_wl 2 2) ~max_steps:16 (fun h ->
        not (Faic.t_linearizable h ~t:0))
  in
  Alcotest.(check bool) "violation schedule exists" true (found <> None)

let ev_board_k_zero_is_linearizable () =
  let ok, _, _ =
    Explore.for_all_histories (Impls.fai_ev_board ~k:0 ())
      ~workloads:(fai_wl 2 2) ~max_steps:16
      (fun h -> Faic.t_linearizable h ~t:0)
  in
  Alcotest.(check bool) "k=0 behaves linearizably" true ok

let ev_board_weakly_consistent_always =
  Support.seeded_prop ~count:60 "fai/ev-board weakly consistent" (fun rng ->
      let k = Elin_kernel.Prng.int rng 20 in
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Impls.fai_ev_board ~k ()) ~workloads:(fai_wl 2 5)
          ~sched:(Sched.random ~seed) ()
      in
      Faic.weakly_consistent out.Run.history)

let sum_counter_inc_wait_free () =
  let impl = Impls.sum_counter ~procs:3 () in
  let wl = Array.make 3 [ Op.inc; Op.inc; Op.read ] in
  let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed:4) () in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  (* Quiescent final read equals total increments. *)
  let quiescent =
    Run.execute impl ~workloads:[| [ Op.read ] |] ~sched:(Sched.round_robin ()) ()
  in
  ignore quiescent;
  (* 6 increments happened; a fresh sequential read over the final
     registers must see all of them.  Re-run sequentially: inc inc read
     per process in round robin yields deterministic count. *)
  let seq_out =
    Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()
  in
  let reads =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        if Op.equal o.Elin_history.Operation.op Op.read then
          Option.map Value.to_int (Elin_history.Operation.response_value o)
        else None)
      (Elin_history.History.ops seq_out.Run.history)
  in
  Alcotest.(check bool) "reads bounded by total increments" true
    (List.for_all (fun r -> r >= 0 && r <= 6) reads)

let sum_counter_weakly_consistent =
  Support.seeded_prop ~count:40 "sum counter weakly consistent" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let impl = Impls.sum_counter ~procs:2 () in
      let wl = Array.make 2 [ Op.inc; Op.read; Op.inc; Op.read ] in
      let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
      Weak.is_weakly_consistent (Weak.for_spec (Counter.spec ())) out.Run.history)

let () =
  Alcotest.run "impls"
    [
      ( "fai/cas",
        [
          cas_impl_linearizable;
          Support.slow "exhaustive" cas_impl_linearizable_exhaustive;
          Support.quick "solo cost" cas_impl_lock_free_not_wait_free;
        ] );
      ( "fai/board",
        [ Support.quick "wait-free linearizable" board_impl_wait_free_linearizable ]
      );
      ( "fai/ev-board",
        [
          ev_board_eventually_linearizable;
          Support.quick "k large misbehaves" ev_board_not_linearizable_for_large_k;
          Support.quick "k=0 linearizable" ev_board_k_zero_is_linearizable;
          ev_board_weakly_consistent_always;
        ] );
      ( "sum counter",
        [
          Support.quick "wait-free" sum_counter_inc_wait_free;
          sum_counter_weakly_consistent;
        ] );
    ]

(** Experiment E12: Lemma 17 — for an eventually linearizable
    fetch&increment implementation, if every finite prefix of a history
    is t-linearizable then so is the whole history.

    The infinite quantification is approximated two ways:
    1. on long finite runs of genuinely eventually linearizable
       implementations, prefix-wise t-linearizability at the minimal
       bound coincides with whole-history t-linearizability
       (randomized search for violations — none exist);
    2. the lemma's *hypothesis* matters: the section 3.2 family
       (produced by something that is NOT an eventually linearizable
       implementation, since its t grows without bound) shows prefixes
       can all be t-linearizable while larger extensions are not —
       distinguishing the lemma from a general limit-closure claim. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime
open Elin_test_support
open Support

(* --- 1. randomized no-violation search on real implementations --- *)

let prefixes_agree_with_whole =
  Support.seeded_prop ~count:40 "prefix t-lin = whole t-lin on ev runs"
    (fun rng ->
      let k = 2 + Prng.int rng 6 in
      let seed = Prng.int rng 100000 in
      let impl = Impls.fai_ev_board ~k () in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:6 in
      let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
      let hist = out.Run.history in
      match Faic.min_t hist with
      | None -> false
      | Some t ->
        (* Every prefix is t-linearizable at the whole history's bound
           (Lemma 6), and — the Lemma 17 direction — whenever all
           prefixes pass at some t' < t, the whole history passes at
           t' too (equivalently: some prefix fails at every t' < t). *)
        List.for_all
          (fun t' ->
            let all_prefixes_pass =
              List.for_all
                (fun k -> Faic.t_linearizable (History.prefix hist k) ~t:t')
                (List.init (History.length hist + 1) (fun k -> k))
            in
            all_prefixes_pass = Faic.t_linearizable hist ~t:t')
          (List.init (t + 2) (fun t' -> t')))

(* --- 2. the hypothesis matters --- *)

let family_prefixes_pass_extension_fails () =
  (* For the paper family with the culprit *last*, every proper prefix
     is 0-linearizable, the full history is not: t-linearizability of
     all prefixes does not transfer in general.  (No eventually
     linearizable implementation can produce this family for growing k
     with a FIXED t — exactly Lemma 17's content.) *)
  let family k =
    h
      (List.concat_map
         (fun i -> [ inv 1 Op.fetch_inc; resi 1 i ])
         (List.init k (fun i -> i))
      @ [ inv 0 Op.fetch_inc; resi 0 0 ])
  in
  let hist = family 5 in
  let len = History.length hist in
  (* all proper prefixes (before the culprit's response) linearizable *)
  Alcotest.(check bool) "proper prefixes pass" true
    (List.for_all
       (fun k -> Faic.t_linearizable (History.prefix hist k) ~t:0)
       (List.init len (fun k -> k)));
  Alcotest.(check bool) "whole fails" false (Faic.t_linearizable hist ~t:0)

(* The incremental form used by long-run checking: appending events to
   a t-linearizable history can only break t-linearizability via the
   new events; min_t is monotone under extension. *)
let min_t_monotone_under_extension =
  Support.seeded_prop ~count:40 "min_t monotone under extension" (fun rng ->
      let k = 2 + Prng.int rng 5 in
      let seed = Prng.int rng 100000 in
      let impl = Impls.fai_ev_board ~k () in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:5 in
      let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
      let hist = out.Run.history in
      let rec check_chain prev k =
        if k > History.length hist then true
        else
          match Faic.min_t (History.prefix hist k) with
          | None -> false
          | Some t -> t >= prev && check_chain t (k + 1)
      in
      check_chain 0 0)

(* Long-run stress: stabilization bound of the ev-board implementation
   never exceeds (roughly) the moment the k-th op completes — the
   mechanical content of "the implementation is eventually
   linearizable with a bound tied to its stabilization event". *)
let stabilization_bound_tracks_k =
  Support.seeded_prop ~count:30 "min_t lands near the k-th completion"
    (fun rng ->
      let k = 2 + Prng.int rng 4 in
      let seed = Prng.int rng 100000 in
      let impl = Impls.fai_ev_board ~k () in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:8 in
      let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
      let hist = out.Run.history in
      match Faic.min_t hist with
      | None -> false
      | Some t ->
        (* The bound cannot exceed the index right after the last
           misbehaving response; misbehaving ops are those among the
           first k announcements, which complete within the first 4k
           events. *)
        t <= 4 * k)

let () =
  Alcotest.run "lemma17"
    [
      ( "E12",
        [
          prefixes_agree_with_whole;
          Support.quick "hypothesis matters" family_prefixes_pass_extension_fails;
          min_t_monotone_under_extension;
          stabilization_bound_tracks_k;
        ] );
    ]

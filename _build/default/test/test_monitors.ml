(** Tests for the empirical progress monitors: the wait-free /
    lock-free / obstruction-free hierarchy, witnessed on the concrete
    implementations (Section 1's progress-condition landscape). *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_test_support

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let board_wait_free_bound () =
  let out =
    Run.execute (Impls.fai_from_board ()) ~workloads:(fai_wl 4 6)
      ~sched:(Sched.random ~seed:3) ()
  in
  Alcotest.(check int) "board impl: 1 access/op under any schedule" 1
    (Monitors.wait_free_bound out)

let cas_starvation () =
  (* The classic lock-free-but-not-wait-free witness: the adversary
     lets the victim read, then lets the other process complete a full
     fetch&inc (invalidating the victim's CAS), forever. *)
  let victim, other =
    Monitors.starvation_schedule (Impls.fai_from_cas ()) ~victim:0 ~other:1
      ~op:Op.fetch_inc ~rounds:40
  in
  Alcotest.(check int) "victim starves" 0 victim;
  Alcotest.(check bool) "other makes progress" true (other >= 30)

let board_immune_to_starvation () =
  (* The wait-free implementation completes under the same adversary. *)
  let victim, other =
    Monitors.starvation_schedule (Impls.fai_from_board ()) ~victim:0 ~other:1
      ~op:Op.fetch_inc ~rounds:40
  in
  Alcotest.(check bool) "victim progresses" true (victim > 0);
  Alcotest.(check bool) "other progresses" true (other > 0)

let cas_non_blocking () =
  Alcotest.(check bool) "cas impl non-blocking" true
    (Monitors.non_blocking_probe (Impls.fai_from_cas ())
       ~workloads:(fai_wl 3 5) ~seed:4 ())

let cas_obstruction_free () =
  Alcotest.(check bool) "cas impl obstruction-free" true
    (Monitors.obstruction_free_probe (Impls.fai_from_cas ())
       ~workloads:(fai_wl 2 4) ~samples:15 ~fuel:100 ~seed:5 ())

let ev_board_obstruction_free () =
  Alcotest.(check bool) "ev board obstruction-free" true
    (Monitors.obstruction_free_probe (Impls.fai_ev_board ~k:4 ())
       ~workloads:(fai_wl 2 4) ~samples:15 ~fuel:100 ~seed:6 ())

let guard_obstruction_free () =
  let guarded =
    Elin_core.Guard.wrap ~spec:(Faicounter.spec ()) (Impls.fai_ev_board ~k:3 ())
  in
  Alcotest.(check bool) "guarded impl obstruction-free" true
    (Monitors.obstruction_free_probe guarded ~workloads:(fai_wl 2 3)
       ~samples:10 ~fuel:200 ~seed:7 ())

let spinner_fails_obstruction_probe () =
  (* An implementation that spins forever on a flag that is never set:
     the probe must report failure. *)
  let ( let* ) = Program.bind in
  let spinner : Impl.t =
    {
      Impl.name = "spinner";
      bases = [| Base.linearizable (Register.spec ()) |];
      local_init = Value.unit;
      program =
        (fun ~proc:_ ~local _op ->
          let rec wait () =
            let* v = Program.access 0 Op.read in
            if Value.equal v (Value.int 1) then Program.return (Value.unit, local)
            else wait ()
          in
          wait ());
    }
  in
  Alcotest.(check bool) "spinner fails the probe" false
    (Monitors.obstruction_free_probe spinner
       ~workloads:[| [ Op.read ] |]
       ~samples:5 ~fuel:50 ~seed:8 ())

let universal_lock_free_not_wait_free () =
  (* The log-based universal construction: under the starvation
     adversary the victim keeps losing consensus cells. *)
  let impl =
    Elin_core.Universal.construction ~spec:(Faicounter.spec ()) ~cells:128 ()
  in
  let victim, other =
    Monitors.starvation_schedule impl ~victim:0 ~other:1 ~op:Op.fetch_inc
      ~rounds:30
  in
  Alcotest.(check bool) "other progresses" true (other >= 20);
  Alcotest.(check bool) "victim lags behind" true (victim < other)

let () =
  Alcotest.run "monitors"
    [
      ( "hierarchy",
        [
          Support.quick "board wait-free bound" board_wait_free_bound;
          Support.quick "cas starvation" cas_starvation;
          Support.quick "board immune" board_immune_to_starvation;
          Support.quick "cas non-blocking" cas_non_blocking;
          Support.quick "cas obstruction-free" cas_obstruction_free;
          Support.quick "ev board obstruction-free" ev_board_obstruction_free;
          Support.quick "guard obstruction-free" guard_obstruction_free;
          Support.quick "spinner fails" spinner_fails_obstruction_probe;
          Support.quick "universal lock-free" universal_lock_free_not_wait_free;
        ] );
    ]

(** Definitional ground truth: the optimized checkers ([Engine],
    [Weak], [Faic]) agree with the brute-force [Oracle] — a literal,
    structurally independent transcription of Definitions 1 and 2 —
    on randomly generated and exhaustively enumerated micro-histories
    over several object types. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support

let specs = [ Register.spec (); Faicounter.spec (); Testandset.spec () ]

(* Random micro-history over [spec]: a mix of honest, pending and
   corrupted shapes, small enough for the oracle. *)
let gen_micro rng spec =
  let n_ops = 2 + Prng.int rng 2 in
  let h =
    match Prng.int rng 3 with
    | 0 -> Gen.linearizable rng ~spec ~procs:2 ~n_ops ()
    | 1 -> Gen.linearizable_with_pending rng ~spec ~procs:2 ~n_ops ()
    | _ -> (
      let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops () in
      match Gen.corrupt rng h with Some h' -> h' | None -> h)
  in
  h

let engine_matches_oracle =
  Support.seeded_prop ~count:150 "engine = oracle (all cuts, all specs)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let h = gen_micro rng spec in
          let cfg = Engine.for_spec spec in
          let spec_of _ = spec in
          List.for_all
            (fun t ->
              Engine.t_linearizable cfg h ~t = Oracle.t_linearizable spec_of h ~t)
            (List.init (History.length h + 1) (fun t -> t)))
        specs)

let min_t_matches_oracle =
  Support.seeded_prop ~count:100 "min_t = oracle min_t" (fun rng ->
      List.for_all
        (fun spec ->
          let h = gen_micro rng spec in
          Eventual.min_t (Engine.for_spec spec) h
          = Oracle.min_t (fun _ -> spec) h)
        specs)

let weak_matches_oracle =
  Support.seeded_prop ~count:100 "weak = oracle weak" (fun rng ->
      List.for_all
        (fun spec ->
          let h = gen_micro rng spec in
          Weak.is_weakly_consistent (Weak.for_spec spec) h
          = Oracle.weakly_consistent (fun _ -> spec) h)
        specs)

let faic_matches_oracle =
  Support.seeded_prop ~count:100 "fast faic = oracle" (fun rng ->
      let spec = Faicounter.spec () in
      let h = gen_micro rng spec in
      let spec_of _ = spec in
      List.for_all
        (fun t -> Faic.t_linearizable h ~t = Oracle.t_linearizable spec_of h ~t)
        (List.init (History.length h + 1) (fun t -> t))
      && Faic.weakly_consistent h = Oracle.weakly_consistent spec_of h)

(* Exhaustive: every well-formed register history with <= 2 ops over a
   tiny domain, at every cut, against the oracle. *)
let exhaustive_register_micro () =
  let reg = Register.spec ~domain:[ 0; 1 ] () in
  let cfg = Engine.for_spec reg in
  let wcfg = Weak.for_spec reg in
  let spec_of _ = reg in
  let ops = [ Op.read; Op.write 1 ] in
  let resps = [ Value.int 0; Value.int 1; Value.unit ] in
  let count = ref 0 in
  let rec build events pending n_ops =
    (match History.of_events_result (List.rev events) with
    | Ok h ->
      incr count;
      List.iter
        (fun t ->
          let e = Engine.t_linearizable cfg h ~t in
          let o = Oracle.t_linearizable spec_of h ~t in
          if e <> o then
            Alcotest.failf "t=%d engine=%b oracle=%b on:\n%s" t e o
              (History.to_string h))
        (List.init (History.length h + 1) (fun t -> t));
      let w = Weak.is_weakly_consistent wcfg h in
      let ow = Oracle.weakly_consistent spec_of h in
      if w <> ow then
        Alcotest.failf "weak=%b oracle=%b on:\n%s" w ow (History.to_string h)
    | Error _ -> ());
    if n_ops < 3 then begin
      List.iter
        (fun p ->
          if not (List.mem p pending) then
            List.iter
              (fun op ->
                build
                  (Event.invoke ~proc:p ~obj:0 op :: events)
                  (p :: pending) (n_ops + 1))
              ops)
        [ 0; 1 ];
      List.iter
        (fun p ->
          if List.mem p pending then
            List.iter
              (fun r ->
                build
                  (Event.respond ~proc:p ~obj:0 r :: events)
                  (List.filter (fun q -> q <> p) pending)
                  n_ops)
              resps)
        [ 0; 1 ]
    end
  in
  build [] [] 0;
  Alcotest.(check bool) "covered enough histories" true (!count > 500)

let () =
  Alcotest.run "oracle"
    [
      ( "cross-validation",
        [
          engine_matches_oracle;
          min_t_matches_oracle;
          weak_matches_oracle;
          faic_matches_oracle;
          Support.slow "exhaustive register micro" exhaustive_register_micro;
        ] );
    ]

(** Tests for the analysis-report module. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let fai = Faicounter.spec ()

let report_of_paper_family () =
  let r = Report.analyze fai (paper_fai_family 3) in
  Alcotest.(check int) "events" 8 r.Report.events;
  Alcotest.(check int) "operations" 4 r.Report.operations;
  Alcotest.(check int) "complete" 4 r.Report.complete;
  Alcotest.(check int) "pending" 0 r.Report.pending;
  Alcotest.(check bool) "not linearizable" false r.Report.linearizable;
  Alcotest.(check bool) "weakly consistent" true r.Report.weakly_consistent;
  Alcotest.(check (option int)) "min_t" (Some 2) r.Report.min_t;
  Alcotest.(check bool) "eventually linearizable" true
    (Report.is_eventually_linearizable r);
  Alcotest.(check bool) "witness present" true (r.Report.witness <> None)

let report_flags_violation () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 0; inv 0 Op.fetch_inc; resi 0 0 ]
  in
  let r = Report.analyze fai hist in
  Alcotest.(check bool) "weak violated" false r.Report.weakly_consistent;
  (match r.Report.violating_op with
  | Some o -> Alcotest.(check int) "culprit id" 1 o.Operation.id
  | None -> Alcotest.fail "expected a culprit");
  Alcotest.(check bool) "not eventually linearizable" false
    (Report.is_eventually_linearizable r)

let concurrency_shape () =
  (* Two fully overlapping ops: peak overlap 2. *)
  let hist =
    h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 0 0; resi 1 1 ]
  in
  let c = Report.concurrency_of hist in
  Alcotest.(check int) "max overlap" 2 c.Report.max_overlap;
  (* Sequential ops: peak overlap 1. *)
  let hist = seq [ (Op.fetch_inc, Value.int 0); (Op.fetch_inc, Value.int 1) ] in
  let c = Report.concurrency_of hist in
  Alcotest.(check int) "sequential overlap" 1 c.Report.max_overlap

let empty_history_report () =
  let r = Report.analyze fai (h []) in
  Alcotest.(check int) "no events" 0 r.Report.events;
  Alcotest.(check bool) "linearizable" true r.Report.linearizable;
  Alcotest.(check bool) "weakly consistent" true r.Report.weakly_consistent

let pending_counted () =
  let hist = h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 1 0 ] in
  let r = Report.analyze fai hist in
  Alcotest.(check int) "pending" 1 r.Report.pending;
  Alcotest.(check int) "complete" 1 r.Report.complete

let pp_smoke () =
  let s = Format.asprintf "%a" Report.pp (Report.analyze fai (paper_fai_family 2)) in
  Alcotest.(check bool) "renders" true (String.length s > 50)

let report_consistent_with_checkers =
  Support.seeded_prop ~count:50 "report = component checkers" (fun rng ->
      let hist = Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:5 () in
      let hist =
        match Gen.corrupt rng hist with Some h' -> h' | None -> hist
      in
      let r = Report.analyze fai hist in
      r.Report.linearizable = Faic.t_linearizable hist ~t:0
      && r.Report.weakly_consistent = Faic.weakly_consistent hist
      && r.Report.min_t = Faic.min_t hist)

let () =
  Alcotest.run "report"
    [
      ( "analysis",
        [
          Support.quick "paper family" report_of_paper_family;
          Support.quick "violation flagged" report_flags_violation;
          Support.quick "concurrency shape" concurrency_shape;
          Support.quick "empty history" empty_history_report;
          Support.quick "pending counted" pending_counted;
          Support.quick "pp" pp_smoke;
          report_consistent_with_checkers;
        ] );
    ]

(** Tests for the run harness and schedulers: determinism in seeds,
    well-formedness of emitted histories, workload completion, crash
    and pause adversaries, and progress statistics. *)

open Elin_spec
open Elin_runtime
open Elin_history
open Elin_checker
open Elin_test_support

let fai_wl procs per_proc =
  Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let direct_fai () = Impl.of_spec (Faicounter.spec ())

let direct_impl_linearizable () =
  let out =
    Run.execute (direct_fai ()) ~workloads:(fai_wl 3 5)
      ~sched:(Sched.random ~seed:11) ()
  in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  Alcotest.(check int) "completed" 15 out.Run.stats.Run.completed;
  Alcotest.(check bool) "linearizable" true
    (Faic.t_linearizable out.Run.history ~t:0)

let deterministic_in_seed () =
  let run seed =
    (Run.execute (Impls.fai_from_cas ()) ~workloads:(fai_wl 3 6)
       ~sched:(Sched.random ~seed) ())
      .Run.history
  in
  Alcotest.check Support.history "same seed" (run 5) (run 5);
  Alcotest.(check bool) "different seeds usually differ" true
    (History.events (run 5) <> History.events (run 6))

let histories_well_formed =
  Support.seeded_prop ~count:50 "emitted histories well-formed" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Impls.fai_from_cas ()) ~workloads:(fai_wl 3 5)
          ~sched:(Sched.random ~seed) ()
      in
      (* of_events inside execute would have raised otherwise; check
         the derived record consistency too. *)
      History.n_ops out.Run.history = 15
      && List.length (History.complete_ops out.Run.history) = 15)

let round_robin_fair () =
  let out =
    Run.execute (direct_fai ()) ~workloads:(fai_wl 2 3)
      ~sched:(Sched.round_robin ()) ()
  in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  (* Round-robin on a 2-step op (invoke, respond): perfect alternation
     of processes in the event sequence. *)
  let procs =
    List.map (fun (e : Event.t) -> e.Event.proc) (History.events out.Run.history)
  in
  Alcotest.(check (list int)) "alternation" [ 0; 1; 0; 1; 0; 1; 0; 1; 0; 1; 0; 1 ]
    procs

let max_steps_cutoff () =
  let out =
    Run.execute (direct_fai ()) ~workloads:(fai_wl 2 100)
      ~sched:(Sched.round_robin ()) ~max_steps:20 ()
  in
  Alcotest.(check bool) "not all done" false out.Run.all_done;
  Alcotest.(check int) "steps" 20 out.Run.stats.Run.steps

let crash_scheduler () =
  let sched = Sched.crash ~crashes:[ (0, 4) ] (Sched.round_robin ()) in
  let out = Run.execute (direct_fai ()) ~workloads:(fai_wl 2 5) ~sched () in
  (* Process 0 is dead from step 4 on; process 1 finishes everything. *)
  Alcotest.(check bool) "p0 incomplete" false out.Run.all_done;
  let by_proc p =
    List.length
      (List.filter
         (fun (o : Operation.t) -> o.Operation.proc = p && Operation.is_complete o)
         (History.ops out.Run.history))
  in
  Alcotest.(check int) "p1 all complete" 5 (by_proc 1);
  Alcotest.(check bool) "p0 stopped early" true (by_proc 0 < 5)

let pause_scheduler () =
  let sched =
    Sched.pause ~proc:0 ~from_step:2 ~until_step:10 (Sched.round_robin ())
  in
  let out = Run.execute (direct_fai ()) ~workloads:(fai_wl 2 4) ~sched () in
  Alcotest.(check bool) "paused process still finishes" true out.Run.all_done

let solo_after_scheduler () =
  let sched = Sched.solo_after ~proc:1 ~step:3 (Sched.round_robin ()) in
  let out = Run.execute (direct_fai ()) ~workloads:(fai_wl 2 4) ~sched () in
  (* After step 3 only p1 runs; p1 completes all its ops. *)
  let p1_complete =
    List.length
      (List.filter
         (fun (o : Operation.t) -> o.Operation.proc = 1 && Operation.is_complete o)
         (History.ops out.Run.history))
  in
  Alcotest.(check int) "p1 done" 4 p1_complete

let weighted_scheduler_biased () =
  let sched = Sched.weighted ~seed:3 ~weights:[| 10; 1 |] in
  let out =
    Run.execute (direct_fai ()) ~workloads:(fai_wl 2 20) ~sched ~max_steps:50 ()
  in
  let p0_events =
    List.length
      (List.filter (fun (e : Event.t) -> e.Event.proc = 0)
         (History.events out.Run.history))
  in
  let p1_events = History.length out.Run.history - p0_events in
  Alcotest.(check bool) "p0 heavily favoured" true (p0_events > p1_events)

let wait_freedom_stat () =
  (* The direct implementation needs exactly 1 base access per op. *)
  let out =
    Run.execute (direct_fai ()) ~workloads:(fai_wl 2 5)
      ~sched:(Sched.random ~seed:1) ()
  in
  Alcotest.(check int) "direct impl max steps/op" 1
    out.Run.stats.Run.max_steps_per_op;
  (* CAS loop may retry under contention but stays bounded here. *)
  let out =
    Run.execute (Impls.fai_from_cas ()) ~workloads:(fai_wl 3 5)
      ~sched:(Sched.random ~seed:1) ()
  in
  Alcotest.(check bool) "cas impl takes >= 2 accesses" true
    (out.Run.stats.Run.max_steps_per_op >= 2);
  Alcotest.(check int) "per-op stats recorded" 15
    (List.length out.Run.stats.Run.op_step_counts)

let local_state_threaded () =
  (* An implementation that counts its own ops in local state. *)
  let impl =
    {
      Impl.name = "own-counter";
      bases = [||];
      local_init = Value.int 0;
      program =
        (fun ~proc:_ ~local _op ->
          let n = Value.to_int local in
          Program.return (Value.int n, Value.int (n + 1)));
    }
  in
  let out =
    Run.execute impl ~workloads:(fai_wl 2 3) ~sched:(Sched.random ~seed:2) ()
  in
  Alcotest.(check (array Support.value)) "locals reflect op counts"
    [| Value.int 3; Value.int 3 |]
    out.Run.final_locals

let program_monad_laws () =
  (* Straight-line behaviour of the free monad. *)
  let open Program in
  let prog = bind (return 1) (fun x -> return (x + 1)) in
  (match prog with
  | Return 2 -> ()
  | _ -> Alcotest.fail "left identity");
  let prog = map (fun x -> x * 2) (return 21) in
  (match prog with
  | Return 42 -> ()
  | _ -> Alcotest.fail "map");
  (* bind over access preserves the access structure *)
  match bind (access 3 Op.read) (fun v -> return v) with
  | Access (3, op, _) when Op.equal op Op.read -> ()
  | _ -> Alcotest.fail "bind/access"

let () =
  Alcotest.run "runtime"
    [
      ( "execution",
        [
          Support.quick "direct impl linearizable" direct_impl_linearizable;
          Support.quick "deterministic in seed" deterministic_in_seed;
          Support.quick "round robin" round_robin_fair;
          Support.quick "max steps cutoff" max_steps_cutoff;
          histories_well_formed;
        ] );
      ( "adversaries",
        [
          Support.quick "crash" crash_scheduler;
          Support.quick "pause" pause_scheduler;
          Support.quick "solo after" solo_after_scheduler;
          Support.quick "weighted" weighted_scheduler_biased;
        ] );
      ( "mechanics",
        [
          Support.quick "wait-freedom stats" wait_freedom_stat;
          Support.quick "local state" local_state_threaded;
          Support.quick "program monad" program_monad_laws;
        ] );
    ]

(** Experiment E4: the paper's Section 3.2 analysis of which
    properties are safety/liveness properties, reproduced mechanically
    on the exact history families the paper uses.

    - t-linearizability (t > 0) is NOT a safety property: the paper's
      fetch&increment history has every finite prefix t-linearizable
      while the limit is not — we verify prefixes pass and that the
      "limit behaviour" (growing prefixes with the culprit operation
      completed) has unbounded min_t.
    - linearizability IS prefix-closed on these families.
    - being t-linearizable for some t is a liveness property: every
      finite history satisfies it. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let fai = Faicounter.spec ()
let fcfg = Engine.for_spec fai

(* The paper's history: p's fetch&inc returns 0, then q performs
   fetch&inc forever getting 0, 1, 2, ...  (p's op is moved to the end
   of the t-linearization in every finite prefix; in the limit it can
   never be placed). *)

let prefix_t_linearizable () =
  (* every finite instance is 2-linearizable (t = index just past the
     first response) *)
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix k=%d is 2-linearizable" k)
        true
        (Faic.t_linearizable (paper_fai_family k) ~t:2))
    [ 0; 1; 2; 5; 10; 20 ]

let prefix_not_0_linearizable () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "prefix k=%d not linearizable" k)
        false
        (Faic.t_linearizable (paper_fai_family k) ~t:0))
    [ 2; 5; 10 ]

(* The limit escape: the paper's argument is that the infinite history
   is not 2-linearizable because p's operation (returning 0, same as
   q's first) can never be placed.  Mechanically: in every finite
   prefix the t-linearization must place p's op *after* all of q's —
   i.e. at slot k — which works only because the history is finite.
   We witness this by showing that the t-linearization of the k-family
   forces p's op into the last slot. *)
let culprit_pushed_to_end () =
  let hist = paper_fai_family 4 in
  match Engine.witness fcfg hist ~t:2 with
  | None -> Alcotest.fail "expected 2-linearization"
  | Some w ->
    let last, _ = List.nth w (List.length w - 1) in
    Alcotest.(check int) "p's op is last" 0 last.Operation.proc

(* If we *fix* p's response as post-cut (t <= 1), no prefix with k >= 2
   is t-linearizable: the duplicate 0 is fatal.  This is the
   mechanical content of "the infinite history is not t-linearizable
   for t that keeps p's response". *)
let duplicate_fatal_when_kept () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "k=%d, t=1" k)
        false
        (Faic.t_linearizable (paper_fai_family k) ~t:1))
    [ 2; 5; 10 ]

(* Liveness: every finite history is t-linearizable for some t. *)
let liveness_every_finite_history =
  Support.seeded_prop ~count:80 "some t always exists (total types)"
    (fun rng ->
      let hist = Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:5 () in
      let hist =
        match Gen.corrupt rng hist with Some h' -> h' | None -> hist
      in
      match Faic.min_t hist with
      | Some t -> t <= History.length hist
      | None -> false)

(* Linearizability (t = 0) is prefix-closed (safety, Lynch).  *)
let linearizability_prefix_closed =
  Support.seeded_prop ~count:60 "0-linearizability prefix closed" (fun rng ->
      let hist = Gen.linearizable rng ~spec:fai ~procs:3 ~n_ops:6 () in
      List.for_all
        (fun k -> Faic.t_linearizable (History.prefix hist k) ~t:0)
        (List.init (History.length hist + 1) (fun k -> k)))

(* t-linearizability for fixed t > 0 is NOT limit-closed: min_t of the
   growing family under "keep the first response" diverges... more
   precisely: min_t is 2 for every member, but if we make the culprit's
   response land ever later (delaying its response event), the required
   t grows without bound. *)
let delayed_culprit_needs_growing_t () =
  (* variant family: q gets 0..k-1 first, THEN p's duplicate 0 arrives *)
  let family k =
    h
      (List.concat_map
         (fun i -> [ inv 1 Op.fetch_inc; resi 1 i ])
         (List.init k (fun i -> i))
      @ [ inv 0 Op.fetch_inc; resi 0 0 ])
  in
  let bounds =
    List.map
      (fun k ->
        match Faic.min_t (family k) with
        | Some t -> t
        | None -> Alcotest.fail "must stabilize")
      [ 1; 3; 6 ]
  in
  match bounds with
  | [ b1; b3; b6 ] ->
    Alcotest.(check bool) "diverges" true (b1 < b3 && b3 < b6)
  | _ -> assert false

(* Cross-check with the generic engine on the paper family. *)
let generic_agrees () =
  List.iter
    (fun k ->
      let hist = paper_fai_family k in
      List.iter
        (fun t ->
          Alcotest.(check bool)
            (Printf.sprintf "k=%d t=%d" k t)
            (Faic.t_linearizable hist ~t)
            (Engine.t_linearizable fcfg hist ~t))
        [ 0; 1; 2; 3 ])
    [ 0; 1; 2; 3; 4 ]

let () =
  Alcotest.run "safety"
    [
      ( "paper family (E4)",
        [
          Support.quick "prefixes 2-linearizable" prefix_t_linearizable;
          Support.quick "prefixes not linearizable" prefix_not_0_linearizable;
          Support.quick "culprit pushed to end" culprit_pushed_to_end;
          Support.quick "duplicate fatal if kept" duplicate_fatal_when_kept;
          Support.quick "delayed culprit diverges" delayed_culprit_needs_growing_t;
          Support.quick "generic agrees" generic_agrees;
        ] );
      ( "classification",
        [ liveness_every_finite_history; linearizability_prefix_closed ] );
    ]

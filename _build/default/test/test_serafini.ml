(** Experiment E16 (extension): the quantifier gap between the two
    definitions of eventual linearizability (Section 2).

    Serafini et al. demand one bound t for all executions; Guerraoui &
    Ruppert allow a different (even unbounded) bound per execution.
    The communication-free test&set separates them: every execution
    stabilizes, but the bound chases the arrival of the last "first
    invocation", which an adversary can delay arbitrarily. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime
open Elin_test_support

let ts = Testandset.spec ()
let tcfg = Engine.for_spec ts

let min_t_ts h = Eventual.min_t tcfg h

(* --- the separating family --- *)

let family_members_eventually_linearizable () =
  List.iter
    (fun n ->
      let h = Serafini.delayed_winner_family n in
      let v = Eventual.check_spec ts h in
      Alcotest.(check bool)
        (Printf.sprintf "member %d eventually linearizable" n)
        true
        (Eventual.is_eventually_linearizable v))
    [ 0; 2; 5; 9 ]

let family_diverges () =
  let table =
    Serafini.family_min_ts Serafini.delayed_winner_family ~min_t:min_t_ts
      ~probes:[ 1; 3; 6; 9 ]
  in
  match Serafini.classify table with
  | Serafini.Diverging bounds ->
    (* the bound must exceed the delayed winner's position *)
    List.iter
      (fun (n, t) ->
        Alcotest.(check bool)
          (Printf.sprintf "bound at probe %d covers the delay" n)
          true
          (t >= 2 * n))
      bounds
  | Serafini.Uniformly_bounded t ->
    Alcotest.failf "unexpected uniform bound %d" t
  | Serafini.Not_eventually_linearizable i ->
    Alcotest.failf "member %d not eventually linearizable" i

(* --- a uniformly bounded family --- *)

let board_family_uniform () =
  (* fai/ev-board with fixed k under a fixed scheduler: the bound
     freezes once the k-th announcement happens, independent of run
     length. *)
  let family per_proc =
    let impl = Impls.fai_ev_board ~k:3 () in
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
    (Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()).Run.history
  in
  let table =
    Serafini.family_min_ts family ~min_t:Faic.min_t ~probes:[ 4; 8; 12; 16 ]
  in
  match Serafini.classify table with
  | Serafini.Uniformly_bounded t ->
    Alcotest.(check bool) "small frozen bound" true (t > 0 && t <= 12)
  | Serafini.Diverging _ -> Alcotest.fail "expected a frozen bound"
  | Serafini.Not_eventually_linearizable i ->
    Alcotest.failf "member %d not eventually linearizable" i

(* --- a family violating even the weak definition --- *)

let missing_bound_detected () =
  (* Histories over a partial exotic spec can fail every cut; simulate
     with a None-returning min_t. *)
  let table = [ (1, Some 2); (2, None); (3, Some 4) ] in
  match Serafini.classify table with
  | Serafini.Not_eventually_linearizable 2 -> ()
  | v ->
    Alcotest.failf "expected failure at probe 2, got %s"
      (Format.asprintf "%a" Serafini.pp_verdict v)

(* --- classify mechanics --- *)

let classify_plateau () =
  match Serafini.classify [ (1, Some 3); (2, Some 5); (3, Some 5) ] with
  | Serafini.Uniformly_bounded 5 -> ()
  | v ->
    Alcotest.failf "expected bounded 5, got %s"
      (Format.asprintf "%a" Serafini.pp_verdict v)

let classify_strict_growth () =
  match Serafini.classify [ (1, Some 2); (2, Some 4); (3, Some 6) ] with
  | Serafini.Diverging _ -> ()
  | v ->
    Alcotest.failf "expected diverging, got %s"
      (Format.asprintf "%a" Serafini.pp_verdict v)

(* On finite single histories the two definitions coincide: min_t is
   the uniform bound for the singleton family. *)
let singleton_families_coincide =
  Support.seeded_prop ~count:40 "singleton family = per-history min_t"
    (fun rng ->
      let h, _ =
        Gen.eventually_linearizable rng ~spec:(Faicounter.spec ()) ~procs:2
          ~prefix_ops:3 ~suffix_ops:3 ()
      in
      match Faic.min_t h with
      | None -> false
      | Some t -> (
        match
          Serafini.classify
            (Serafini.family_min_ts (fun _ -> h) ~min_t:Faic.min_t
               ~probes:[ 1; 2 ])
        with
        | Serafini.Uniformly_bounded t' -> t = t'
        | Serafini.Diverging _ | Serafini.Not_eventually_linearizable _ ->
          false))

let delayed_family_well_formed () =
  List.iter
    (fun n ->
      let h = Serafini.delayed_winner_family n in
      Alcotest.(check int)
        (Printf.sprintf "member %d has %d events" n ((2 * n) + 4))
        ((2 * n) + 4) (History.length h))
    [ 0; 1; 5 ]

let () =
  Alcotest.run "serafini"
    [
      ( "the quantifier gap (E16)",
        [
          Support.quick "members eventually linearizable"
            family_members_eventually_linearizable;
          Support.quick "family diverges" family_diverges;
          Support.quick "board family uniform" board_family_uniform;
        ] );
      ( "mechanics",
        [
          Support.quick "missing bound" missing_bound_detected;
          Support.quick "plateau" classify_plateau;
          Support.quick "strict growth" classify_strict_growth;
          Support.quick "family shape" delayed_family_well_formed;
          singleton_families_coincide;
        ] );
    ]

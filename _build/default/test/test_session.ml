(** Tests for the interactive session API. *)

open Elin_spec
open Elin_runtime
open Elin_api
open Elin_test_support

let fai = Faicounter.spec ()

let solo_ops_count () =
  let s = Session.create (Impls.fai_from_cas ()) ~procs:2 in
  let r0 = Session.run_op s ~proc:0 Op.fetch_inc in
  let r1 = Session.run_op s ~proc:0 Op.fetch_inc in
  let r2 = Session.run_op s ~proc:1 Op.fetch_inc in
  Alcotest.check Support.value "first" (Value.int 0) r0;
  Alcotest.check Support.value "second" (Value.int 1) r1;
  Alcotest.check Support.value "third (other proc)" (Value.int 2) r2;
  Alcotest.(check bool) "linearizable so far" true
    (Session.is_linearizable s ~spec:fai)

let interleaved_steps () =
  (* Drive a genuine overlap by hand: both invoke, then alternate. *)
  let s = Session.create (Impls.fai_from_cas ()) ~procs:2 in
  Session.invoke s ~proc:0 Op.fetch_inc;
  Session.invoke s ~proc:1 Op.fetch_inc;
  Session.step s ~proc:0 (* inv *);
  Session.step s ~proc:1 (* inv *);
  Alcotest.(check bool) "p0 busy" true (Session.busy s ~proc:0);
  Alcotest.(check bool) "p1 busy" true (Session.busy s ~proc:1);
  let _ = Session.drain s ~sched:(Sched.round_robin ()) in
  Alcotest.(check bool) "both idle" true
    ((not (Session.busy s ~proc:0)) && not (Session.busy s ~proc:1));
  (* Both completed with distinct values. *)
  let r0 = Session.last_response s ~proc:0 in
  let r1 = Session.last_response s ~proc:1 in
  Alcotest.(check bool) "distinct responses" true (r0 <> r1 && r0 <> None);
  Alcotest.(check bool) "linearizable" true (Session.is_linearizable s ~spec:fai)

let queued_invocations () =
  let s = Session.create (Impl.of_spec fai) ~procs:1 in
  Session.invoke s ~proc:0 Op.fetch_inc;
  Session.invoke s ~proc:0 Op.fetch_inc;
  Alcotest.(check bool) "has work" true (Session.has_work s ~proc:0);
  let _ = Session.drain s ~sched:(Sched.round_robin ()) in
  Alcotest.check Support.value "second response" (Value.int 1)
    (Option.get (Session.last_response s ~proc:0));
  Alcotest.(check int) "four events"
    4
    (Elin_history.History.length (Session.history s))

let no_step_raises () =
  let s = Session.create (Impl.of_spec fai) ~procs:1 in
  Alcotest.(check bool) "no work -> No_step" true
    (match Session.step s ~proc:0 with
    | exception Session.No_step 0 -> true
    | _ -> false)

let bad_proc_rejected () =
  let s = Session.create (Impl.of_spec fai) ~procs:2 in
  Alcotest.(check bool) "bad process id" true
    (match Session.invoke s ~proc:5 Op.fetch_inc with
    | exception Invalid_argument _ -> true
    | _ -> false)

let deterministic_in_seed () =
  let run seed =
    let s = Session.create ~seed (Impl.direct (Ev_base.adversarial_until_step (Register.spec ()) 50)) ~procs:2 in
    Session.invoke s ~proc:1 (Op.write 1);
    Session.invoke s ~proc:0 Op.read;
    Session.invoke s ~proc:0 Op.read;
    let _ = Session.drain s ~sched:(Sched.round_robin ()) in
    Elin_history.History.to_string (Session.history s)
  in
  Alcotest.(check string) "same seed, same session" (run 7) (run 7)

let verdict_midflight () =
  (* Build the duplicate-0 history interactively on an eventually
     linearizable counter and ask for the verdict. *)
  let s =
    Session.create (Impls.fai_ev_board ~k:100 ()) ~procs:2
  in
  let r0 = Session.run_op s ~proc:0 Op.fetch_inc in
  let r1 = Session.run_op s ~proc:1 Op.fetch_inc in
  Alcotest.check Support.value "p0 counts alone" (Value.int 0) r0;
  Alcotest.check Support.value "p1 counts alone" (Value.int 0) r1;
  Alcotest.(check bool) "not linearizable" false
    (Session.is_linearizable s ~spec:fai);
  let v = Session.verdict s ~spec:fai in
  Alcotest.(check bool) "eventually linearizable" true
    (Elin_checker.Eventual.is_eventually_linearizable v)

let steps_counted () =
  let s = Session.create (Impl.of_spec fai) ~procs:1 in
  let _ = Session.run_op s ~proc:0 Op.fetch_inc in
  (* invoke + one base access + respond *)
  Alcotest.(check int) "three steps" 3 (Session.steps s)

(* --- typed handles --- *)

let typed_counter () =
  let s = Typed.Counter.create ~procs:2 () in
  let c0 = Typed.handle s ~proc:0 in
  let c1 = Typed.handle s ~proc:1 in
  Alcotest.(check int) "p0 first" 0 (Typed.Counter.fetch_inc c0);
  Alcotest.(check int) "p1 second" 1 (Typed.Counter.fetch_inc c1);
  Alcotest.(check int) "p0 third" 2 (Typed.Counter.fetch_inc c0)

let typed_register () =
  let s = Typed.Register_handle.create ~procs:2 () in
  let r0 = Typed.handle s ~proc:0 in
  let r1 = Typed.handle s ~proc:1 in
  Alcotest.(check int) "initial" 0 (Typed.Register_handle.read r1);
  Typed.Register_handle.write r0 7;
  Alcotest.(check int) "visible" 7 (Typed.Register_handle.read r1)

let typed_test_and_set () =
  (* The default implementation is the paper's eventually linearizable
     one: under solo sequential use both processes "win" their first
     call — exactly its documented misbehaviour. *)
  let s = Typed.Test_and_set.create ~procs:2 () in
  let t0 = Typed.handle s ~proc:0 in
  let t1 = Typed.handle s ~proc:1 in
  Alcotest.(check bool) "p0 wins" true (Typed.Test_and_set.test_and_set t0);
  Alcotest.(check bool) "p1 also wins (eventual)" true
    (Typed.Test_and_set.test_and_set t1);
  Alcotest.(check bool) "p1 second call loses" false
    (Typed.Test_and_set.test_and_set t1)

let typed_consensus () =
  let s = Typed.Consensus.create ~procs:3 () in
  let c p = Typed.handle s ~proc:p in
  let d0 = Typed.Consensus.propose (c 0) 1 in
  let d1 = Typed.Consensus.propose (c 1) 0 in
  let d2 = Typed.Consensus.propose (c 2) 0 in
  Alcotest.(check int) "first proposal wins" 1 d0;
  Alcotest.(check int) "p1 adopts" 1 d1;
  Alcotest.(check int) "p2 adopts" 1 d2

let () =
  Alcotest.run "session"
    [
      ( "typed",
        [
          Support.quick "counter" typed_counter;
          Support.quick "register" typed_register;
          Support.quick "test&set" typed_test_and_set;
          Support.quick "consensus" typed_consensus;
        ] );
      ( "api",
        [
          Support.quick "solo ops" solo_ops_count;
          Support.quick "interleaving" interleaved_steps;
          Support.quick "queued invocations" queued_invocations;
          Support.quick "no step" no_step_raises;
          Support.quick "bad proc" bad_proc_rejected;
          Support.quick "deterministic" deterministic_in_seed;
          Support.quick "mid-flight verdict" verdict_midflight;
          Support.quick "steps counted" steps_counted;
        ] );
    ]

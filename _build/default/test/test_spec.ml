(** Tests for sequential specifications: every concrete type's
    transitions, legality of behaviours, reachability, and the zoo's
    documented properties. *)

open Elin_spec
open Elin_test_support

let check_run spec ops expected () =
  let responses = Spec.run spec ops in
  Alcotest.(check (list Support.value)) "responses" expected responses

(* --- register --- *)

let register_semantics =
  let spec = Register.spec () in
  check_run spec
    [ Op.read; Op.write 2; Op.read; Op.write 1; Op.read ]
    [ Value.int 0; Value.unit; Value.int 2; Value.unit; Value.int 1 ]

let register_initial () =
  let spec = Register.spec ~initial:9 () in
  Alcotest.(check (list Support.value)) "initial visible"
    [ Value.int 9 ] (Spec.run spec [ Op.read ])

(* --- fetch&increment --- *)

let fai_semantics =
  let spec = Faicounter.spec () in
  check_run spec
    [ Op.fetch_inc; Op.fetch_inc; Op.fetch_inc ]
    [ Value.int 0; Value.int 1; Value.int 2 ]

let fai_initial =
  let spec = Faicounter.spec ~initial:5 () in
  check_run spec [ Op.fetch_inc; Op.fetch_inc ] [ Value.int 5; Value.int 6 ]

(* --- cas --- *)

let cas_success_failure =
  let spec = Cas_object.spec () in
  check_run spec
    [ Op.cas ~expected:0 ~desired:2; Op.cas ~expected:0 ~desired:1; Op.read ]
    [ Value.bool true; Value.bool false; Value.int 2 ]

(* --- test&set --- *)

let testandset_semantics =
  let spec = Testandset.spec () in
  check_run spec
    [ Op.test_and_set; Op.test_and_set ]
    [ Value.int 0; Value.int 1 ]

(* --- consensus --- *)

let consensus_first_wins =
  let spec = Consensus_spec.spec () in
  check_run spec
    [ Op.propose 1; Op.propose 0; Op.propose 1 ]
    [ Value.int 1; Value.int 1; Value.int 1 ]

(* --- max register --- *)

let maxreg_semantics =
  let spec = Maxreg.spec () in
  check_run spec
    [ Op.max_write 2; Op.max_read; Op.max_write 1; Op.max_read; Op.max_write 3;
      Op.max_read ]
    [ Value.unit; Value.int 2; Value.unit; Value.int 2; Value.unit; Value.int 3 ]

(* --- queue --- *)

let queue_fifo =
  let spec = Fifo.spec () in
  check_run spec
    [ Op.deq; Op.enq 1; Op.enq 2; Op.deq; Op.deq; Op.deq ]
    [ Fifo.empty_response; Value.unit; Value.unit; Value.int 1; Value.int 2;
      Fifo.empty_response ]

(* --- stack --- *)

let stack_lifo =
  let spec = Stack.spec () in
  check_run spec
    [ Op.push 1; Op.push 2; Op.pop; Op.pop; Op.pop ]
    [ Value.unit; Value.unit; Value.int 2; Value.int 1; Stack.empty_response ]

(* --- counter --- *)

let counter_semantics =
  let spec = Counter.spec () in
  check_run spec
    [ Op.read; Op.inc; Op.inc; Op.read ]
    [ Value.int 0; Value.unit; Value.unit; Value.int 2 ]

(* --- snapshot --- *)

let snapshot_semantics =
  let spec = Snapshot.spec ~components:2 () in
  check_run spec
    [ Op.scan; Op.update ~index:1 1; Op.scan ]
    [ Value.list [ Value.int 0; Value.int 0 ]; Value.unit;
      Value.list [ Value.int 0; Value.int 1 ] ]

(* --- swap register --- *)

let swap_semantics =
  let spec = Swap_register.spec () in
  check_run spec
    [ Swap_register.swap 2; Swap_register.swap 1; Op.read ]
    [ Value.int 0; Value.int 2; Value.int 1 ]

(* --- fetch&add --- *)

let fetch_add_semantics =
  let spec = Fetch_add.spec () in
  check_run spec
    [ Fetch_add.fetch_add 5; Op.fetch_inc; Fetch_add.fetch_add 2 ]
    [ Value.int 0; Value.int 5; Value.int 6 ]

(* --- nondeterministic coin --- *)

let coin_nondeterministic () =
  let spec = Nd_coin.spec () in
  let transitions = Spec.apply spec (Spec.initial spec) Nd_coin.flip in
  Alcotest.(check int) "two choices" 2 (List.length transitions);
  Alcotest.(check bool) "finite nondeterminism" true
    (Spec.has_finite_nondeterminism_on spec [ Spec.initial spec ])

(* --- legality --- *)

let legal_behaviour () =
  let spec = Register.spec () in
  Alcotest.(check bool) "legal" true
    (Legal.is_legal spec [ (Op.write 1, Value.unit); (Op.read, Value.int 1) ]);
  Alcotest.(check bool) "illegal read" false
    (Legal.is_legal spec [ (Op.write 1, Value.unit); (Op.read, Value.int 0) ])

let legal_nondeterministic () =
  let spec = Nd_coin.spec () in
  Alcotest.(check bool) "either flip result legal" true
    (Legal.is_legal spec [ (Nd_coin.flip, Value.int 0) ]
    && Legal.is_legal spec [ (Nd_coin.flip, Value.int 1) ]);
  Alcotest.(check bool) "2 is not a flip result" false
    (Legal.is_legal spec [ (Nd_coin.flip, Value.int 2) ])

let legal_complete () =
  let spec = Faicounter.spec () in
  let behaviour = Legal.complete spec [ Op.fetch_inc; Op.fetch_inc ] in
  Alcotest.(check (list Support.value)) "responses"
    [ Value.int 0; Value.int 1 ]
    (List.map snd behaviour)

let legal_responses_enum () =
  let spec = Register.spec () in
  Alcotest.(check (list Support.value)) "read after write"
    [ Value.int 2 ]
    (Legal.legal_responses spec [ (Op.write 2, Value.unit) ] Op.read)

(* --- reachability --- *)

let reachable_finite () =
  let spec = Testandset.spec () in
  let states, complete = Spec.reachable spec ~max_states:10 in
  Alcotest.(check bool) "complete" true complete;
  Alcotest.(check int) "two states" 2 (List.length states)

let reachable_infinite_hits_bound () =
  let spec = Faicounter.spec () in
  let _, complete = Spec.reachable spec ~max_states:50 in
  Alcotest.(check bool) "bound hit" false complete

(* --- zoo --- *)

let zoo_determinism () =
  List.iter
    (fun (e : Zoo.entry) ->
      let states, _ = Spec.reachable e.Zoo.spec ~max_states:60 in
      Alcotest.(check bool)
        (Spec.name e.Zoo.spec ^ " determinism matches")
        e.Zoo.deterministic
        (Spec.is_deterministic_on e.Zoo.spec states))
    (Zoo.all ())

let zoo_finite_state () =
  List.iter
    (fun (e : Zoo.entry) ->
      let _, complete = Spec.reachable e.Zoo.spec ~max_states:500 in
      Alcotest.(check bool)
        (Spec.name e.Zoo.spec ^ " finite-state matches")
        e.Zoo.finite_state complete)
    (Zoo.all ())

let zoo_find () =
  Alcotest.(check string) "find register" "register"
    (Spec.name (Zoo.find "register").Zoo.spec);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Zoo.find: unknown spec nope") (fun () ->
      ignore (Zoo.find "nope"))

let apply_det_errors () =
  let spec = Nd_coin.spec () in
  Alcotest.(check bool) "apply_det rejects nondeterminism" true
    (match Spec.apply_det spec (Spec.initial spec) Nd_coin.flip with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "spec"
    [
      ( "semantics",
        [
          Support.quick "register" register_semantics;
          Support.quick "register initial" register_initial;
          Support.quick "fetch&inc" fai_semantics;
          Support.quick "fetch&inc initial" fai_initial;
          Support.quick "cas" cas_success_failure;
          Support.quick "test&set" testandset_semantics;
          Support.quick "consensus" consensus_first_wins;
          Support.quick "max register" maxreg_semantics;
          Support.quick "queue fifo" queue_fifo;
          Support.quick "stack lifo" stack_lifo;
          Support.quick "counter" counter_semantics;
          Support.quick "snapshot" snapshot_semantics;
          Support.quick "swap register" swap_semantics;
          Support.quick "fetch&add" fetch_add_semantics;
          Support.quick "nd coin" coin_nondeterministic;
        ] );
      ( "legality",
        [
          Support.quick "register behaviours" legal_behaviour;
          Support.quick "nondeterministic behaviours" legal_nondeterministic;
          Support.quick "complete" legal_complete;
          Support.quick "legal responses" legal_responses_enum;
        ] );
      ( "reachability",
        [
          Support.quick "finite" reachable_finite;
          Support.quick "infinite hits bound" reachable_infinite_hits_bound;
        ] );
      ( "zoo",
        [
          Support.quick "determinism" zoo_determinism;
          Support.quick "finite-state flags" zoo_finite_state;
          Support.quick "find" zoo_find;
          Support.quick "apply_det errors" apply_det_errors;
        ] );
    ]

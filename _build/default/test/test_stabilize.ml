(** Experiment E13 — the paradox (Proposition 18): an eventually
    linearizable fetch&increment implementation A, run through the
    stable-configuration construction, yields a fully linearizable
    implementation A′ over the same base objects.  Verified end-to-end
    by exhaustive model checking of A′, for a sweep of stabilization
    parameters k. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let check h ~t = Faic.t_linearizable h ~t

let fai_wl procs per_proc = Run.uniform_workload Op.fetch_inc ~procs ~per_proc

let construct_for ~k =
  let impl = Impls.fai_ev_board ~k () in
  Stabilize.construct impl ~workloads:(fai_wl 2 (2 * k + 6)) ~depth:10 ~check ()

let construction_succeeds () =
  match construct_for ~k:3 with
  | None -> Alcotest.fail "construction must succeed"
  | Some o ->
    Alcotest.(check bool) "v0 positive" true (o.Stabilize.anchor.Stabilize.v0 > 0);
    Alcotest.(check bool) "certificate explored leaves" true
      (o.Stabilize.certificate.Stabilize.leaves_checked > 0)

let derived_linearizable_sweep () =
  (* The headline: for each k, A′ is linearizable on every schedule. *)
  List.iter
    (fun k ->
      match construct_for ~k with
      | None -> Alcotest.failf "construction failed for k=%d" k
      | Some o ->
        let ok, cex, stats =
          Explore.for_all_histories o.Stabilize.derived
            ~workloads:(fai_wl 2 3) ~locals:o.Stabilize.derived_locals
            ~max_steps:18
            (fun h -> Faic.t_linearizable h ~t:0)
        in
        (match cex with
        | Some h ->
          Alcotest.failf "k=%d counterexample:\n%s" k
            (Elin_history.History.to_string h)
        | None -> ());
        Alcotest.(check bool) (Printf.sprintf "k=%d all leaves" k) true ok;
        Alcotest.(check bool) "real coverage" true (stats.Explore.leaves > 1000))
    [ 1; 2; 3; 4 ]

let derived_counts_from_zero () =
  (* A′ is a fetch&increment *initialized to 0*: a solo run returns
     0, 1, 2, ... *)
  match construct_for ~k:3 with
  | None -> Alcotest.fail "construction failed"
  | Some o ->
    let out =
      Run.execute o.Stabilize.derived
        ~workloads:[| List.init 4 (fun _ -> Op.fetch_inc) |]
        ~sched:(Sched.round_robin ()) ()
    in
    (* Run.execute cannot thread derived locals; use explorer instead
       for a faithful solo run. *)
    ignore out;
    let solo_wl = [| List.init 4 (fun _ -> Op.fetch_inc); [] |] in
    let seen = ref None in
    let _ =
      Explore.iter_leaves o.Stabilize.derived ~workloads:solo_wl
        ~locals:o.Stabilize.derived_locals ~max_steps:12 (fun c ->
          if !seen = None then seen := Some (Explore.history c))
    in
    (match !seen with
    | None -> Alcotest.fail "no leaf"
    | Some h ->
      let values =
        List.filter_map
          (fun (o : Elin_history.Operation.t) ->
            Option.map Value.to_int (Elin_history.Operation.response_value o))
          (Elin_history.History.ops h)
      in
      Alcotest.(check (list int)) "counts from zero" [ 0; 1; 2; 3 ] values)

let stable_configuration_is_genuinely_stable () =
  (* Deeper certification of the found configuration than the one used
     during search. *)
  let impl = Impls.fai_ev_board ~k:2 () in
  match
    Stabilize.find_stable impl ~workloads:(fai_wl 2 8) ~depth:8 ~check ()
  with
  | None -> Alcotest.fail "no stable configuration"
  | Some cert ->
    (match
       Stabilize.certify impl cert.Stabilize.config ~depth:14 ~check
     with
    | Some deeper ->
      Alcotest.(check bool) "deeper certificate holds" true
        (deeper.Stabilize.leaves_checked >= cert.Stabilize.leaves_checked)
    | None -> Alcotest.fail "deeper exploration refutes stability")

let unstable_configuration_rejected () =
  (* The initial configuration of a misbehaving implementation is NOT
     stable: certification must fail. *)
  let impl = Impls.fai_ev_board ~k:4 () in
  let c0 = Explore.initial_config impl ~workloads:(fai_wl 2 4) () in
  Alcotest.(check bool) "initial config unstable" true
    (Stabilize.certify impl c0 ~depth:12 ~check = None)

let anchor_value_matches_invocations () =
  let impl = Impls.fai_ev_board ~k:2 () in
  match
    Stabilize.construct impl ~workloads:(fai_wl 2 10) ~depth:8 ~check ()
  with
  | None -> Alcotest.fail "construction failed"
  | Some o ->
    Alcotest.(check int) "v0 = invocations at C0"
      o.Stabilize.anchor.Stabilize.config0.Explore.invocations
      o.Stabilize.anchor.Stabilize.v0

let derived_preserves_base_objects () =
  (* A′ uses the same base objects as A (same behaviour function), only
     re-initialized — the paper's "from the same set O". *)
  match construct_for ~k:2 with
  | None -> Alcotest.fail "construction failed"
  | Some o ->
    let a = (Impls.fai_ev_board ~k:2 ()).Impl.bases in
    let a' = o.Stabilize.derived.Impl.bases in
    Alcotest.(check int) "same base count" (Array.length a) (Array.length a');
    Alcotest.(check string) "same base type" a.(0).Base.name a'.(0).Base.name;
    Alcotest.(check bool) "initial state differs (post-stabilization)" false
      (Value.equal a.(0).Base.init a'.(0).Base.init)

let progress_condition_preserved () =
  (* The paper's remark after Prop. 18: the construction preserves the
     progress condition.  A (fai/ev-board) is wait-free with exactly
     one base access per operation; A′ must be too. *)
  match construct_for ~k:3 with
  | None -> Alcotest.fail "construction failed"
  | Some o ->
    let wl = fai_wl 2 4 in
    (* Run A′ under an adversarial random schedule via the explorer to
       honour the derived locals, and measure accesses per op. *)
    let max_accesses = ref 0 in
    let _ =
      Explore.iter_leaves o.Stabilize.derived ~workloads:wl
        ~locals:o.Stabilize.derived_locals ~max_steps:30 (fun c ->
          (* Count Access steps per op: steps = invocations*2 + accesses;
             with one access per op, steps = 3 * ops at completion. *)
          if Explore.is_done c then
            max_accesses :=
              max !max_accesses
                (c.Explore.steps - (2 * c.Explore.invocations));
          raise Explore.Stop)
    in
    Alcotest.(check int) "one access per op in A'" (2 * 4) !max_accesses

let k_zero_already_linearizable () =
  (* Degenerate: A with k=0 is linearizable; the construction finds the
     root stable and v0 = anchor's first response + 1. *)
  match construct_for ~k:0 with
  | None -> Alcotest.fail "construction failed"
  | Some o ->
    Alcotest.(check int) "stable at the root" 0
      o.Stabilize.certificate.Stabilize.cut

let () =
  Alcotest.run "stabilize"
    [
      ( "proposition 18 (E13)",
        [
          Support.quick "construction succeeds" construction_succeeds;
          Support.slow "derived A' linearizable (k sweep)" derived_linearizable_sweep;
          Support.quick "counts from zero" derived_counts_from_zero;
          Support.quick "stability deepens" stable_configuration_is_genuinely_stable;
          Support.quick "unstable rejected" unstable_configuration_rejected;
          Support.quick "anchor bookkeeping" anchor_value_matches_invocations;
          Support.quick "same base objects" derived_preserves_base_objects;
          Support.quick "progress preserved (remark)" progress_condition_preserved;
          Support.quick "k=0 degenerate" k_zero_already_linearizable;
        ] );
    ]

(** Experiment E11: the trivial eventually linearizable test&set
    (Section 4) — no shared memory at all, eventually linearizable, and
    provably not linearizable. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let spec = Testandset.spec ()

let wl procs per_proc = Run.uniform_workload Op.test_and_set ~procs ~per_proc

let no_shared_objects () =
  let impl = Ev_testandset.impl () in
  Alcotest.(check int) "zero base objects" 0 (Array.length impl.Impl.bases)

let per_process_behaviour () =
  let impl = Ev_testandset.impl () in
  let out =
    Run.execute impl ~workloads:(wl 2 3) ~sched:(Sched.round_robin ()) ()
  in
  let by_proc p =
    List.filter_map
      (fun (o : Elin_history.Operation.t) ->
        if o.Elin_history.Operation.proc = p then
          Option.map Value.to_int (Elin_history.Operation.response_value o)
        else None)
      (Elin_history.History.ops out.Run.history)
  in
  Alcotest.(check (list int)) "p0: 0 then 1s" [ 0; 1; 1 ] (by_proc 0);
  Alcotest.(check (list int)) "p1: 0 then 1s" [ 0; 1; 1 ] (by_proc 1)

let eventually_linearizable_exhaustive () =
  let impl = Ev_testandset.impl () in
  let ok, cex, _ =
    Explore.for_all_histories impl ~workloads:(wl 2 2) ~max_steps:20 (fun h ->
        Eventual.is_eventually_linearizable (Eventual.check_spec spec h))
  in
  (match cex with
  | Some h -> Alcotest.failf "violation:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules" true ok

let eventually_linearizable_three_procs =
  Support.seeded_prop ~count:60 "three processes, random schedules"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Ev_testandset.impl ()) ~workloads:(wl 3 3)
          ~sched:(Sched.random ~seed) ()
      in
      Eventual.is_eventually_linearizable
        (Eventual.check_spec spec out.Run.history))

let not_linearizable () =
  (* Two sequential winners: the canonical violation. *)
  let impl = Ev_testandset.impl () in
  let cex =
    Explore.exists_history impl ~workloads:(wl 2 1) ~max_steps:10 (fun h ->
        not (Engine.linearizable (Engine.for_spec spec) h))
  in
  match cex with
  | None -> Alcotest.fail "expected non-linearizable schedule"
  | Some h ->
    (* The violation: both test&sets return 0 even when one strictly
       precedes the other. *)
    let zeros =
      List.length
        (List.filter
           (fun (o : Elin_history.Operation.t) ->
             Elin_history.Operation.response_value o = Some (Value.int 0))
           (Elin_history.History.ops h))
    in
    Alcotest.(check int) "two winners" 2 zeros

let min_t_covers_first_invocations () =
  (* Sequential double win: p0 wins, then p1 (strictly later) also
     wins.  Cutting p0's response (t = 2) suffices: p0's operation can
     be re-ordered after p1's with a recomputed response of 1, while
     t = 1 keeps both zeros and fails. *)
  let open Support in
  let hist =
    h
      [
        inv 0 Op.test_and_set; resi 0 0; inv 1 Op.test_and_set; resi 1 0;
        inv 1 Op.test_and_set; resi 1 1;
      ]
  in
  let v = Eventual.check_spec spec hist in
  Alcotest.(check bool) "weakly consistent" true v.Eventual.weakly_consistent;
  Alcotest.(check (option int)) "min_t" (Some 2) v.Eventual.min_t;
  Alcotest.(check bool) "t=1 keeps both zeros" false
    (Engine.t_linearizable (Engine.for_spec spec) hist ~t:1)

let stays_quiet_after_prefix () =
  (* Once every process has performed its first op, the implementation
     is *linearizably* quiet: a suffix of pure 1s composes with any
     prefix.  Check: suffix projection from the first all-1 point on is
     0-linearizable with initial state 1. *)
  let out =
    Run.execute (Ev_testandset.impl ()) ~workloads:(wl 3 3)
      ~sched:(Sched.random ~seed:17) ()
  in
  let spec1 = Testandset.spec ~initial:1 () in
  let events = Elin_history.History.events out.Run.history in
  (* Drop everything before the first point where every process has
     completed an operation; from there on all responses are 1. *)
  let procs_done = Hashtbl.create 4 in
  let cut = ref 0 in
  List.iteri
    (fun i (e : Elin_history.Event.t) ->
      if Elin_history.Event.is_respond e then begin
        Hashtbl.replace procs_done e.Elin_history.Event.proc ();
        if Hashtbl.length procs_done = 3 && !cut = 0 then cut := i + 1
      end)
    events;
  (* Drop orphan responses whose invocations fell before the cut. *)
  let seen_invoke = Hashtbl.create 4 in
  let suffix_events =
    List.filteri (fun i _ -> i >= !cut) events
    |> List.filter (fun (e : Elin_history.Event.t) ->
           if Elin_history.Event.is_invoke e then begin
             Hashtbl.replace seen_invoke e.Elin_history.Event.proc ();
             true
           end
           else Hashtbl.mem seen_invoke e.Elin_history.Event.proc)
  in
  let suffix = Elin_history.History.of_events suffix_events in
  Alcotest.(check bool) "suffix linearizable from set state" true
    (Engine.linearizable (Engine.for_spec spec1) suffix)

let weakly_consistent_always =
  Support.seeded_prop ~count:60 "weak consistency on all runs" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let out =
        Run.execute (Ev_testandset.impl ()) ~workloads:(wl 3 2)
          ~sched:(Sched.random ~seed) ()
      in
      Weak.is_weakly_consistent (Weak.for_spec spec) out.Run.history)

let () =
  Alcotest.run "testandset"
    [
      ( "E11",
        [
          Support.quick "no shared objects" no_shared_objects;
          Support.quick "per-process behaviour" per_process_behaviour;
          Support.slow "eventually linearizable exhaustive"
            eventually_linearizable_exhaustive;
          eventually_linearizable_three_procs;
          Support.quick "not linearizable" not_linearizable;
          Support.quick "min_t placement" min_t_covers_first_invocations;
          Support.quick "quiet after prefix" stays_quiet_after_prefix;
          weakly_consistent_always;
        ] );
    ]

(** Experiment E7: Theorem 12's local-copy transformation.

    The theorem: a linearizable obstruction-free implementation from
    eventually linearizable objects yields a communication-free
    wait-free one (replace each object by per-process local copies) —
    impossible for non-trivial types.  Mechanically:

    1. the transformation is behaviour-preserving in the theorem's
       sense — every history of I' is a possible history of I when I's
       bases are eventually linearizable with local views;
    2. for a non-trivial type (register), the transformed
       implementation exhibits non-linearizable histories — certifying
       that the original could not have been linearizable;
    3. the transformed implementation is wait-free (bounded accesses)
       even when the original could block. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let reg = Register.spec ()

(* A register "implementation" whose base is a register accessed
   atomically — the strongest candidate the theorem kills. *)
let direct_reg () = Impl.of_spec reg

let transform_shape () =
  let impl = Local_copy.transform ~procs:3 (Impls.fai_from_cas ()) in
  Alcotest.(check int) "3 copies of 1 base" 3 (Array.length impl.Impl.bases);
  Alcotest.(check string) "name" "fai/cas/local-copies" impl.Impl.name

let redirect_isolates_processes () =
  (* After the transform, p0's writes are invisible to p1. *)
  let impl = Local_copy.transform ~procs:2 (direct_reg ()) in
  let wl = [| [ Op.write 1 ]; [ Op.read ] |] in
  let out =
    Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()
  in
  let read_value =
    List.find_map
      (fun (o : Elin_history.Operation.t) ->
        if Op.equal o.Elin_history.Operation.op Op.read then
          Elin_history.Operation.response_value o
        else None)
      (Elin_history.History.ops out.Run.history)
  in
  Alcotest.(check (option Support.value)) "p1 sees initial value"
    (Some (Value.int 0)) read_value

let transformed_register_not_linearizable () =
  (* The theorem's conclusion, mechanically: the local-copy register
     has a non-linearizable history (write completes, later read misses
     it). *)
  let impl = Local_copy.transform ~procs:2 (direct_reg ()) in
  let wl = [| [ Op.write 1 ]; [ Op.read ] |] in
  let cex =
    Explore.exists_history impl ~workloads:wl ~max_steps:10 (fun h ->
        not (Engine.linearizable (Engine.for_spec reg) h))
  in
  Alcotest.(check bool) "non-linearizable history exists" true (cex <> None)

let transformed_histories_weakly_consistent () =
  (* Local copies are exactly the Own_only adversary: all histories of
     I' are weakly consistent — the behaviours I's eventually
     linearizable bases were allowed to produce. *)
  let impl = Local_copy.transform ~procs:2 (direct_reg ()) in
  let wl = [| [ Op.write 1; Op.read ]; [ Op.read; Op.write 2; Op.read ] |] in
  let ok, _, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:20 (fun h ->
        Weak.is_weakly_consistent (Weak.for_spec reg) h)
  in
  Alcotest.(check bool) "all weakly consistent" true ok

let matches_ev_base_local_views () =
  (* Theorem 12's key step: I' histories = I histories when I's base
     answers from local views.  Run both side by side under the same
     scheduler and compare. *)
  let transformed = Local_copy.transform ~procs:2 (direct_reg ()) in
  let ev_impl = Impl.direct (Ev_base.never_stabilizing reg) in
  let wl = [| [ Op.write 1; Op.read ]; [ Op.read; Op.write 2; Op.read ] |] in
  let h_of impl seed =
    (Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) ()).Run.history
  in
  List.iter
    (fun seed ->
      Alcotest.check Support.history
        (Printf.sprintf "seed %d: identical histories" seed)
        (h_of transformed seed) (h_of ev_impl seed))
    [ 1; 2; 3; 4; 5 ]

let transformed_wait_free () =
  (* Same per-op access bound as the original, no retries possible on
     private copies: the CAS loop succeeds first try. *)
  let impl = Local_copy.transform ~procs:3 (Impls.fai_from_cas ()) in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:5 in
  let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed:3) () in
  Alcotest.(check bool) "all done" true out.Run.all_done;
  Alcotest.(check int) "bounded accesses (wait-free)" 2
    out.Run.stats.Run.max_steps_per_op

let solo_executions_preserved () =
  (* Theorem 12's wait-freedom argument: a solo run of I' is a solo run
     of I.  Compare p0 solo on both. *)
  let original = Impls.fai_from_cas () in
  let transformed = Local_copy.transform ~procs:2 original in
  let wl = [| List.init 4 (fun _ -> Op.fetch_inc); [] |] in
  let h_of impl =
    (Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()).Run.history
  in
  Alcotest.check Support.history "solo runs identical" (h_of original)
    (h_of transformed)

let trivial_type_survives () =
  (* The only types surviving the transform linearizably are the
     trivial ones (Prop. 14): the constant object's local-copy
     implementation is still linearizable. *)
  let spec = Constant_object.spec () in
  let impl = Local_copy.transform ~procs:2 (Impl.of_spec spec) in
  let wl = [| [ Op.read; Op.read ]; [ Op.read ] |] in
  let ok, _, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:16 (fun h ->
        Engine.linearizable (Engine.for_spec spec) h)
  in
  Alcotest.(check bool) "constant object still linearizable" true ok

let () =
  Alcotest.run "theorem12"
    [
      ( "transform",
        [
          Support.quick "shape" transform_shape;
          Support.quick "isolation" redirect_isolates_processes;
          Support.quick "solo preserved" solo_executions_preserved;
          Support.quick "wait-free" transformed_wait_free;
        ] );
      ( "impossibility (E7)",
        [
          Support.quick "register dies" transformed_register_not_linearizable;
          Support.quick "weakly consistent behaviours"
            transformed_histories_weakly_consistent;
          Support.quick "matches ev-base local views" matches_ev_base_local_views;
          Support.quick "trivial type survives" trivial_type_survives;
        ] );
    ]

(** Experiments E1/E2 and unit tests for t-linearizability
    (Definition 2): monotonicity in t (Lemma 5), prefix closure
    (Lemma 6), the relaxation of responses and real-time order before
    the cut, and minimal-t search. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let reg = Register.spec ()
let rcfg = Engine.for_spec reg
let fai = Faicounter.spec ()
let fcfg = Engine.for_spec fai

(* --- Unit cases --- *)

(* Sequential write;read->stale is not linearizable, but dropping the
   write's response event (t=2) frees the order. *)
let stale_read_repaired_by_cut () =
  let hist =
    h [ inv 0 (Op.write 1); res 0 Value.unit; inv 1 Op.read; resi 1 0 ]
  in
  Alcotest.(check bool) "t=0" false (Engine.t_linearizable rcfg hist ~t:0);
  Alcotest.(check bool) "t=1" false (Engine.t_linearizable rcfg hist ~t:1);
  Alcotest.(check bool) "t=2" true (Engine.t_linearizable rcfg hist ~t:2);
  Alcotest.(check (option int)) "min_t" (Some 2) (Eventual.min_t rcfg hist)

(* Responses before the cut may change: two fetch&incs both returning 0
   are fine once one response is cut away. *)
let pre_cut_response_free () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 0; inv 1 Op.fetch_inc; resi 1 0 ]
  in
  Alcotest.(check bool) "t=0 duplicate" false
    (Engine.t_linearizable fcfg hist ~t:0);
  Alcotest.(check bool) "t=2 repaired" true
    (Engine.t_linearizable fcfg hist ~t:2)

(* The paper's family: p:0 then q:0,1,2,... is 2-linearizable. *)
let paper_family_cut_two () =
  let hist = paper_fai_family 4 in
  Alcotest.(check bool) "not linearizable" false
    (Engine.t_linearizable fcfg hist ~t:0);
  Alcotest.(check bool) "2-linearizable" true
    (Engine.t_linearizable fcfg hist ~t:2)

(* t >= length trivially linearizes any total-type history. *)
let full_cut_always_works =
  Support.seeded_prop ~count:60 "t = |H| always linearizes" (fun rng ->
      let h = Gen.linearizable rng ~spec:reg ~procs:2 ~n_ops:5 () in
      match Gen.corrupt rng h with
      | None -> true
      | Some h' -> Engine.t_linearizable rcfg h' ~t:(History.length h'))

(* --- E1: Lemma 5 (monotonicity) --- *)

let lemma5_monotone =
  Support.seeded_prop ~count:60 "E1: t-lin implies t'-lin for t' > t"
    (fun rng ->
      let spec = fai in
      let h, _ =
        Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:3
          ~suffix_ops:3 ()
      in
      match Eventual.min_t fcfg h with
      | None -> false
      | Some t ->
        (* check a few larger cuts *)
        List.for_all
          (fun dt -> Engine.t_linearizable fcfg h ~t:(t + dt))
          [ 1; 2; 5 ]
        && (t = 0 || not (Engine.t_linearizable fcfg h ~t:(t - 1))))

(* --- E2: Lemma 6 (prefix closure) --- *)

let lemma6_prefix_closed =
  Support.seeded_prop ~count:40 "E2: t-lin implies prefix t-lin" (fun rng ->
      let h, _ =
        Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
          ~suffix_ops:3 ()
      in
      match Eventual.min_t fcfg h with
      | None -> false
      | Some t ->
        List.for_all
          (fun k -> Engine.t_linearizable fcfg (History.prefix h k) ~t)
          (List.init (History.length h + 1) (fun k -> k)))

(* Monotonicity holds across object types, not just fetch&increment. *)
let lemma5_monotone_cross_type =
  Support.seeded_prop ~count:40 "E1 across types (register, queue, maxreg)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let cfg = Engine.for_spec spec in
          let h, _ =
            Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:2
              ~suffix_ops:2 ()
          in
          match Eventual.min_t cfg h with
          | None -> false
          | Some t ->
            Engine.t_linearizable cfg h ~t:(t + 1)
            && Engine.t_linearizable cfg h ~t:(t + 3)
            && (t = 0 || not (Engine.t_linearizable cfg h ~t:(t - 1))))
        [ Register.spec (); Fifo.spec (); Maxreg.spec () ])

let lemma6_prefix_closed_cross_type =
  Support.seeded_prop ~count:30 "E2 across types" (fun rng ->
      List.for_all
        (fun spec ->
          let cfg = Engine.for_spec spec in
          let h, _ =
            Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:2
              ~suffix_ops:2 ()
          in
          match Eventual.min_t cfg h with
          | None -> false
          | Some t ->
            List.for_all
              (fun k -> Engine.t_linearizable cfg (History.prefix h k) ~t)
              (List.init (History.length h + 1) (fun k -> k)))
        [ Register.spec (); Stack.spec () ])

(* --- min_t binary search matches linear scan --- *)

let min_t_matches_linear_scan =
  Support.seeded_prop ~count:30 "binary search = linear scan" (fun rng ->
      let h, _ =
        Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
          ~suffix_ops:2 ()
      in
      let binary = Eventual.min_t fcfg h in
      let rec linear t =
        if t > History.length h then None
        else if Engine.t_linearizable fcfg h ~t then Some t
        else linear (t + 1)
      in
      binary = linear 0)

(* --- real-time order applies only to post-cut event pairs --- *)

let pre_cut_order_free () =
  (* Two strictly ordered reads; the earlier one has an impossible
     value.  Cutting past its response frees it. *)
  let hist =
    h
      [
        inv 0 Op.read; resi 0 5; (* impossible *)
        inv 1 (Op.write 1); res 1 Value.unit;
        inv 0 Op.read; resi 0 1;
      ]
  in
  Alcotest.(check bool) "t=0" false (Engine.t_linearizable rcfg hist ~t:0);
  Alcotest.(check bool) "t=2" true (Engine.t_linearizable rcfg hist ~t:2)

(* An operation pending at the cut whose response is post-cut must keep
   its response. *)
let straddling_op_keeps_response () =
  let hist =
    h [ inv 0 Op.read; inv 1 (Op.write 1); res 1 Value.unit; resi 0 7 ]
  in
  (* read -> 7 is never legal whatever the cut below its response. *)
  Alcotest.(check bool) "t=1" false (Engine.t_linearizable rcfg hist ~t:1);
  Alcotest.(check bool) "t=3" false (Engine.t_linearizable rcfg hist ~t:3);
  Alcotest.(check bool) "t=4 (cut response)" true
    (Engine.t_linearizable rcfg hist ~t:4)

(* Eventual verdicts *)

let eventual_verdict () =
  let hist = paper_fai_family 3 in
  let v = Eventual.check_spec fai hist in
  Alcotest.(check bool) "weakly consistent" true v.Eventual.weakly_consistent;
  Alcotest.(check (option int)) "min_t" (Some 2) v.Eventual.min_t;
  Alcotest.(check bool) "eventually linearizable" true
    (Eventual.is_eventually_linearizable v)

let eventual_verdict_weak_violation () =
  (* p0 itself saw 0 twice: weak consistency broken, though min_t
     exists. *)
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 0; inv 0 Op.fetch_inc; resi 0 0 ]
  in
  let v = Eventual.check_spec fai hist in
  Alcotest.(check bool) "weak violated" false v.Eventual.weakly_consistent;
  Alcotest.(check bool) "min_t exists anyway" true (v.Eventual.min_t <> None);
  Alcotest.(check bool) "not eventually linearizable" false
    (Eventual.is_eventually_linearizable v)

let min_t_search_generic () =
  (* Monotone predicate search helper. *)
  Alcotest.(check (option int)) "first true at 3" (Some 3)
    (Eventual.min_t_search (fun t -> t >= 3) ~len:10);
  Alcotest.(check (option int)) "always true" (Some 0)
    (Eventual.min_t_search (fun _ -> true) ~len:10);
  Alcotest.(check (option int)) "never true" None
    (Eventual.min_t_search (fun _ -> false) ~len:10)

let () =
  Alcotest.run "tlin"
    [
      ( "unit",
        [
          Support.quick "stale read repaired" stale_read_repaired_by_cut;
          Support.quick "pre-cut responses free" pre_cut_response_free;
          Support.quick "paper family" paper_family_cut_two;
          Support.quick "pre-cut order free" pre_cut_order_free;
          Support.quick "straddling op" straddling_op_keeps_response;
          full_cut_always_works;
        ] );
      ("lemma5 (E1)", [ lemma5_monotone; lemma5_monotone_cross_type ]);
      ("lemma6 (E2)", [ lemma6_prefix_closed; lemma6_prefix_closed_cross_type ]);
      ( "min_t",
        [
          min_t_matches_linear_scan;
          Support.quick "verdict" eventual_verdict;
          Support.quick "weak violation" eventual_verdict_weak_violation;
          Support.quick "search helper" min_t_search_generic;
        ] );
    ]

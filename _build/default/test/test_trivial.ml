(** Experiment E8: the Prop. 14 triviality classifier over the type
    zoo, and the (⇐)-direction communication-free implementation. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let zoo_classification () =
  List.iter
    (fun (e : Zoo.entry) ->
      Alcotest.(check bool)
        (Spec.name e.Zoo.spec ^ " classification")
        e.Zoo.trivial
        (Trivial.is_trivial e.Zoo.spec))
    (Zoo.all ())

let constant_object_trivial_with_table () =
  match Trivial.classify (Constant_object.spec ~value:7 ()) with
  | Trivial.Trivial table ->
    Alcotest.(check int) "one op" 1 (List.length table);
    let _, r = List.hd table in
    Alcotest.check Support.value "constant response" (Value.int 7) r
  | Trivial.Nontrivial _ | Trivial.Unknown ->
    Alcotest.fail "constant object must be trivial"

let register_nontrivial_witness () =
  match Trivial.classify (Register.spec ()) with
  | Trivial.Nontrivial (op, _, _) ->
    Alcotest.check Support.op "read distinguishes states" Op.read op
  | Trivial.Trivial _ | Trivial.Unknown ->
    Alcotest.fail "register must be non-trivial"

let fai_nontrivial_despite_infinite_state () =
  (* Infinite state space, but refuted immediately: fetch&inc returns
     different values in different reachable states. *)
  match Trivial.classify (Faicounter.spec ()) with
  | Trivial.Nontrivial _ -> ()
  | Trivial.Trivial _ | Trivial.Unknown ->
    Alcotest.fail "fetch&increment must be non-trivial"

let unknown_on_unrefutable_bound () =
  (* A type whose visible behaviour only changes after more states than
     the bound explores: triviality undecided within the budget.
     Build a counter readable only modulo nothing — i.e. a counter
     whose read always answers 0 but whose hidden state grows: it IS
     trivial semantically, and classify must prove it only if the
     reachable exploration completes.  With max_states tiny the verdict
     is Unknown. *)
  let hidden_growth =
    Spec.deterministic ~name:"hidden-growth" ~initial:(Value.int 0)
      ~apply:(fun q op ->
        match Op.name op with
        | "poke" -> (Value.int 0, Value.int (Value.to_int q + 1))
        | other -> invalid_arg other)
      ~all_ops:[ Op.make "poke" ]
  in
  (match Trivial.classify ~max_states:5 hidden_growth with
  | Trivial.Unknown -> ()
  | Trivial.Trivial _ | Trivial.Nontrivial _ ->
    Alcotest.fail "tiny bound must yield Unknown");
  Alcotest.(check bool) "is_trivial is conservative" false
    (Trivial.is_trivial ~max_states:5 hidden_growth)

let communication_free_impl_correct () =
  match Trivial.communication_free_impl (Constant_object.spec ~value:3 ()) with
  | None -> Alcotest.fail "trivial type must get an implementation"
  | Some impl ->
    Alcotest.(check int) "no shared objects" 0 (Array.length impl.Impl.bases);
    let wl = [| [ Op.read; Op.read ]; [ Op.read ] |] in
    let ok, _, _ =
      Explore.for_all_histories impl ~workloads:wl ~max_steps:16 (fun h ->
          Engine.linearizable
            (Engine.for_spec (Constant_object.spec ~value:3 ()))
            h)
    in
    Alcotest.(check bool) "linearizable on all schedules (wait-free, no comm)"
      true ok

let communication_free_impl_refused () =
  Alcotest.(check bool) "non-trivial type gets none" true
    (Trivial.communication_free_impl (Register.spec ()) = None)

let solo_response_recovers_table () =
  (* Prop. 14 (⇒): running the communication-free implementation solo
     computes r(q0, op). *)
  let spec = Constant_object.spec ~value:5 () in
  match Trivial.communication_free_impl spec with
  | None -> Alcotest.fail "expected implementation"
  | Some impl ->
    Alcotest.(check (option Support.value)) "r(q0, read) = 5"
      (Some (Value.int 5))
      (Trivial.solo_response impl Op.read ())

let solo_response_on_real_impl () =
  (* Solo runs of non-trivial implementations return the initial-state
     response — the value that Prop. 14's argument shows must be
     correct in every reachable state if the type were trivial. *)
  Alcotest.(check (option Support.value)) "solo fetch&inc from cas"
    (Some (Value.int 0))
    (Trivial.solo_response (Impls.fai_from_cas ()) Op.fetch_inc ());
  Alcotest.(check (option Support.value)) "solo fetch&inc from board"
    (Some (Value.int 0))
    (Trivial.solo_response (Impls.fai_from_board ()) Op.fetch_inc ())

let pp_smoke () =
  let s v = Format.asprintf "%a" Trivial.pp_verdict v in
  Alcotest.(check bool) "trivial prints" true
    (String.length (s (Trivial.classify (Constant_object.spec ()))) > 0);
  Alcotest.(check bool) "nontrivial prints" true
    (String.length (s (Trivial.classify (Register.spec ()))) > 0)

let () =
  Alcotest.run "trivial"
    [
      ( "classifier (E8)",
        [
          Support.quick "zoo" zoo_classification;
          Support.quick "constant table" constant_object_trivial_with_table;
          Support.quick "register witness" register_nontrivial_witness;
          Support.quick "fai infinite-state" fai_nontrivial_despite_infinite_state;
          Support.quick "unknown on bound" unknown_on_unrefutable_bound;
        ] );
      ( "construction",
        [
          Support.quick "communication-free impl" communication_free_impl_correct;
          Support.quick "refused for non-trivial" communication_free_impl_refused;
          Support.quick "solo response recovers table" solo_response_recovers_table;
          Support.quick "solo response on real impls" solo_response_on_real_impl;
          Support.quick "pp" pp_smoke;
        ] );
    ]

(** Experiment E15 (extension; the paper's Section 6 open question
    explored): the log-based universal construction from consensus
    cells, and its eventually linearizable instantiation. *)

open Elin_spec
open Elin_runtime
open Elin_explore
open Elin_checker
open Elin_core
open Elin_test_support

let run impl ~workloads ~seed =
  Run.execute impl ~workloads ~sched:(Sched.random ~seed) ()

(* --- linearizable cells: Herlihy universality, mechanically --- *)

let universal_fai_linearizable =
  Support.seeded_prop ~count:40 "universal f&i linearizable" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let impl = Universal.construction ~spec:(Faicounter.spec ()) ~cells:16 () in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:4 in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done && Faic.t_linearizable out.Run.history ~t:0)

let universal_register_linearizable =
  Support.seeded_prop ~count:40 "universal register linearizable" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let spec = Register.spec () in
      let impl = Universal.construction ~spec ~cells:16 () in
      let wl =
        [|
          [ Op.write 1; Op.read; Op.write 2 ];
          [ Op.read; Op.write 1; Op.read ];
        |]
      in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done && Engine.linearizable (Engine.for_spec spec) out.Run.history)

let universal_queue_linearizable =
  Support.seeded_prop ~count:30 "universal queue linearizable" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let spec = Fifo.spec () in
      let impl = Universal.construction ~spec ~cells:16 () in
      let wl = [| [ Op.enq 1; Op.deq; Op.enq 2 ]; [ Op.deq; Op.enq 0; Op.deq ] |] in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done && Engine.linearizable (Engine.for_spec spec) out.Run.history)

let universal_fai_exhaustive () =
  let impl = Universal.construction ~spec:(Faicounter.spec ()) ~cells:8 () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let ok, cex, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:20 (fun h ->
        Faic.t_linearizable h ~t:0)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules linearizable" true ok

let universal_lock_free_solo_cost () =
  (* Solo: each op replays the log then wins the next cell: accesses of
     the i-th op = i + 1. *)
  let impl = Universal.construction ~spec:(Faicounter.spec ()) ~cells:8 () in
  let out =
    Run.execute impl
      ~workloads:[| List.init 4 (fun _ -> Op.fetch_inc) |]
      ~sched:(Sched.round_robin ()) ()
  in
  Alcotest.(check (list int)) "access counts grow with the log" [ 1; 2; 3; 4 ]
    out.Run.stats.Run.op_step_counts

let universal_cell_budget () =
  let impl = Universal.construction ~spec:(Faicounter.spec ()) ~cells:2 () in
  let wl = [| List.init 3 (fun _ -> Op.fetch_inc) |] in
  Alcotest.(check bool) "budget exceeded raises" true
    (match Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- eventually linearizable cells: the Section 6 candidate --- *)

let universal_ev_fai_eventually_linearizable =
  Support.seeded_prop ~count:40 "universal-ev f&i eventually linearizable"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let k = Elin_kernel.Prng.int rng 16 in
      let impl =
        Universal.construction ~spec:(Faicounter.spec ()) ~cells:24
          ~cell_base:(`Ev_at_step k) ()
      in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done
      && Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let universal_ev_fai_not_linearizable () =
  (* Before stabilization the cells hand every process its own
     proposal: duplicates appear. *)
  let impl =
    Universal.construction ~spec:(Faicounter.spec ()) ~cells:16
      ~cell_base:(`Ev_at_step 1000) ()
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let cex =
    Explore.exists_history impl ~workloads:wl ~max_steps:18 (fun h ->
        not (Faic.t_linearizable h ~t:0))
  in
  Alcotest.(check bool) "pre-stabilization violation exists" true (cex <> None)

let universal_ev_weakly_consistent_exhaustive () =
  let impl =
    Universal.construction ~spec:(Faicounter.spec ()) ~cells:16
      ~cell_base:(`Ev_at_step 6) ()
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let ok, cex, _ =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:22 (fun h ->
        Faic.weakly_consistent h)
  in
  (match cex with
  | Some h -> Alcotest.failf "violation:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "weak consistency on all schedules" true ok

let universal_ev_testandset =
  Support.seeded_prop ~count:30 "universal-ev test&set eventually linearizable"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let spec = Testandset.spec () in
      let impl =
        Universal.construction ~spec ~cells:16 ~cell_base:(`Ev_at_step 8) ()
      in
      let wl = Run.uniform_workload Op.test_and_set ~procs:2 ~per_proc:3 in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done
      && Eventual.is_eventually_linearizable (Eventual.check_spec spec out.Run.history))

let universal_ev_stabilization_bound_freezes () =
  (* The construction genuinely stabilizes: min_t does not chase the
     run length (contrast with the register-only candidates of E14). *)
  let min_t_at per_proc =
    let impl =
      Universal.construction ~spec:(Faicounter.spec ()) ~cells:64
        ~cell_base:(`Ev_at_step 6) ()
    in
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
    let out =
      Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ()
    in
    match Faic.min_t out.Run.history with
    | Some t -> t
    | None -> Alcotest.fail "must stabilize"
  in
  let t6 = min_t_at 6 and t10 = min_t_at 10 and t14 = min_t_at 14 in
  Alcotest.(check bool) "bound frozen across run lengths" true
    (t6 = t10 && t10 = t14)

(* --- the wait-free (helping) variant --- *)

let wf_linearizable =
  Support.seeded_prop ~count:40 "wait-free universal f&i linearizable"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let impl =
        Universal.construction_wait_free ~spec:(Faicounter.spec ()) ~cells:32
          ~procs:3 ()
      in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:3 ~per_proc:4 in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done && Faic.t_linearizable out.Run.history ~t:0)

let wf_exhaustive () =
  let impl =
    Universal.construction_wait_free ~spec:(Faicounter.spec ()) ~cells:8
      ~procs:2 ()
  in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:1 in
  let ok, cex, stats =
    Explore.for_all_histories impl ~workloads:wl ~max_steps:22 (fun h ->
        Faic.t_linearizable h ~t:0)
  in
  (match cex with
  | Some h -> Alcotest.failf "counterexample:\n%s" (Elin_history.History.to_string h)
  | None -> ());
  Alcotest.(check bool) "all schedules linearizable" true ok;
  Alcotest.(check bool) "real coverage" true (stats.Explore.leaves > 500)

let wf_survives_starvation_adversary () =
  (* The decisive contrast with the lock-free variant: the victim still
     completes operations under the adversary that makes the simple
     construction starve (see test_monitors). *)
  let impl =
    Universal.construction_wait_free ~spec:(Faicounter.spec ()) ~cells:512
      ~procs:2 ()
  in
  let victim, other =
    Elin_explore.Monitors.starvation_schedule impl ~victim:0 ~other:1
      ~op:Op.fetch_inc ~rounds:30
  in
  Alcotest.(check bool) "other progresses" true (other > 0);
  Alcotest.(check bool) "victim progresses too (helping)" true (victim > 0)

let wf_queue_linearizable =
  Support.seeded_prop ~count:20 "wait-free universal queue linearizable"
    (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let spec = Fifo.spec () in
      let impl =
        Universal.construction_wait_free ~spec ~cells:32 ~procs:2 ()
      in
      let wl = [| [ Op.enq 1; Op.deq; Op.enq 2 ]; [ Op.deq; Op.enq 0; Op.deq ] |] in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done
      && Engine.linearizable (Engine.for_spec spec) out.Run.history)

let wf_ev_cells_eventually_linearizable =
  Support.seeded_prop ~count:30 "wait-free universal over ev cells" (fun rng ->
      let seed = Elin_kernel.Prng.int rng 100000 in
      let k = Elin_kernel.Prng.int rng 12 in
      let impl =
        Universal.construction_wait_free ~spec:(Faicounter.spec ()) ~cells:48
          ~procs:2 ~cell_base:(`Ev_at_step k) ()
      in
      let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:4 in
      let out = run impl ~workloads:wl ~seed in
      out.Run.all_done
      && Eventual.is_eventually_linearizable (Faic.check out.Run.history))

let () =
  Alcotest.run "universal"
    [
      ( "linearizable cells (Herlihy universality)",
        [
          universal_fai_linearizable;
          universal_register_linearizable;
          universal_queue_linearizable;
          Support.slow "exhaustive f&i" universal_fai_exhaustive;
          Support.quick "solo access cost" universal_lock_free_solo_cost;
          Support.quick "cell budget" universal_cell_budget;
        ] );
      ( "eventually linearizable cells (E15)",
        [
          universal_ev_fai_eventually_linearizable;
          Support.quick "not linearizable pre-stabilization"
            universal_ev_fai_not_linearizable;
          Support.slow "weakly consistent exhaustive"
            universal_ev_weakly_consistent_exhaustive;
          universal_ev_testandset;
          Support.quick "stabilization bound freezes"
            universal_ev_stabilization_bound_freezes;
        ] );
      ( "wait-free helping variant",
        [
          wf_linearizable;
          Support.slow "exhaustive" wf_exhaustive;
          Support.quick "survives starvation" wf_survives_starvation_adversary;
          wf_queue_linearizable;
          wf_ev_cells_eventually_linearizable;
        ] );
    ]

(** Experiment E9: Proposition 15 — eventually linearizable objects do
    not boost the consensus power of registers.  Exhaustive valency
    analysis over candidate two-process protocols. *)

open Elin_spec
open Elin_valency
open Elin_test_support

let inputs = [| Value.int 0; Value.int 1 |]

(* --- register-only protocols fail (FLP / Loui–Abu-Amara) --- *)

let naive_registers_disagree () =
  let r = Valency.check_consensus (Protocols.naive_registers ()) ~inputs ~max_steps:25 in
  Alcotest.(check bool) "terminates" true r.Valency.terminated;
  match r.Valency.agreement_violation with
  | Some d ->
    Alcotest.(check bool) "genuinely different decisions" true
      (not (Value.equal d.(0) d.(1)))
  | None -> Alcotest.fail "expected an agreement violation"

let naive_registers_same_inputs_fine () =
  (* With equal inputs the flawed protocol cannot disagree. *)
  let r =
    Valency.check_consensus (Protocols.naive_registers ())
      ~inputs:[| Value.int 1; Value.int 1 |] ~max_steps:25
  in
  Alcotest.(check bool) "no violation" true
    (r.Valency.agreement_violation = None)

(* --- CAS consensus is correct: the positive control --- *)

let cas_correct () =
  let r = Valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:25 in
  Alcotest.(check bool) "terminated" true r.Valency.terminated;
  Alcotest.(check bool) "agreement" true (r.Valency.agreement_violation = None);
  Alcotest.(check bool) "validity" true (r.Valency.validity_violation = None);
  (* Both decision vectors (0,0) and (1,1) are reachable. *)
  Alcotest.(check int) "both outcomes reachable" 2
    (List.length r.Valency.decisions)

let cas_critical_configuration () =
  match Valency.find_critical (Protocols.cas ()) ~inputs ~max_steps:25 with
  | None -> Alcotest.fail "multivalent protocol must have a critical config"
  | Some crit ->
    (* At the critical configuration both poised steps target the same
       (universal) object — the paper's Case-3-with-CAS situation where
       the commutation argument fails. *)
    let objs =
      Array.to_list (Array.map (fun (o, _) -> o) crit.Valency.moves)
    in
    Alcotest.(check (list (option int))) "both poised on the CAS"
      [ Some 0; Some 0 ] objs;
    (* And the two moves have opposite valencies. *)
    (match
       Array.to_list (Array.map (fun (_, v) -> v) crit.Valency.moves)
     with
    | [ Valency.Univalent a; Valency.Univalent b ] ->
      Alcotest.(check bool) "opposite valencies" false (Value.equal a b)
    | _ -> Alcotest.fail "critical children must be univalent")

(* --- registers + linearizable test&set solve consensus --- *)

let linearizable_ts_correct () =
  let r =
    Valency.check_consensus
      (Protocols.registers_plus_linearizable_testandset ())
      ~inputs ~max_steps:40
  in
  Alcotest.(check bool) "terminated" true r.Valency.terminated;
  Alcotest.(check bool) "agreement" true (r.Valency.agreement_violation = None);
  Alcotest.(check bool) "validity" true (r.Valency.validity_violation = None)

(* --- the same code over an EVENTUALLY linearizable test&set fails --- *)

let ev_ts_disagrees () =
  let r =
    Valency.check_consensus (Protocols.registers_plus_ev_testandset ())
      ~inputs ~max_steps:40
  in
  Alcotest.(check bool) "terminated" true r.Valency.terminated;
  match r.Valency.agreement_violation with
  | Some d ->
    Alcotest.(check bool) "both processes win and keep their input" true
      (not (Value.equal d.(0) d.(1)))
  | None -> Alcotest.fail "expected disagreement over the ev test&set"

let ev_ts_fails_for_any_stabilization_time () =
  (* Prop. 15 is about *any* eventually linearizable object: whatever
     stabilization bound the object promises, once both processes can
     reach the test&set before it (4 accesses suffice: two register
     writes, two test&sets), the adversary wins.  Disagreement exists
     for every bound >= 4; below that the object is effectively
     linearizable for this protocol and agreement holds — the boundary
     is checked both ways. *)
  List.iter
    (fun k ->
      let r =
        Valency.check_consensus
          (Protocols.registers_plus_ev_testandset ~stabilize_at:k ())
          ~inputs ~max_steps:40
      in
      Alcotest.(check bool)
        (Printf.sprintf "disagreement with stabilization at %d" k)
        true
        (r.Valency.agreement_violation <> None))
    [ 4; 6; 10; 1000 ];
  List.iter
    (fun k ->
      let r =
        Valency.check_consensus
          (Protocols.registers_plus_ev_testandset ~stabilize_at:k ())
          ~inputs ~max_steps:40
      in
      Alcotest.(check bool)
        (Printf.sprintf "agreement with early stabilization %d" k)
        true
        (r.Valency.agreement_violation = None))
    [ 0; 3 ]

let ev_ts_stabilized_early_is_fine () =
  (* Degenerate control: stabilization at step 0 = linearizable object
     = consensus works. *)
  let r =
    Valency.check_consensus
      (Protocols.registers_plus_ev_testandset ~stabilize_at:0 ())
      ~inputs ~max_steps:40
  in
  Alcotest.(check bool) "agreement restored" true
    (r.Valency.agreement_violation = None)

(* --- consensus power of the zoo's number-2 types (Herlihy) --- *)

let queue_consensus_correct () =
  let r =
    Valency.check_consensus (Protocols.registers_plus_linearizable_queue ())
      ~inputs ~max_steps:40
  in
  Alcotest.(check bool) "terminated" true r.Valency.terminated;
  Alcotest.(check bool) "agreement" true (r.Valency.agreement_violation = None);
  Alcotest.(check bool) "validity" true (r.Valency.validity_violation = None)

let ev_queue_disagrees () =
  (* Prop. 15 with a consensus-number-2 object: the eventually
     linearizable queue hands "win" to both. *)
  let r =
    Valency.check_consensus (Protocols.registers_plus_ev_queue ())
      ~inputs ~max_steps:40
  in
  Alcotest.(check bool) "disagreement" true
    (r.Valency.agreement_violation <> None)

let fai_consensus_correct () =
  let r =
    Valency.check_consensus (Protocols.registers_plus_fai ()) ~inputs
      ~max_steps:40
  in
  Alcotest.(check bool) "terminated" true r.Valency.terminated;
  Alcotest.(check bool) "agreement" true (r.Valency.agreement_violation = None);
  Alcotest.(check bool) "validity" true (r.Valency.validity_violation = None)

(* --- commutation (the proof's Case 1–3 engine) --- *)

let different_objects_commute () =
  (* In the naive register protocol the first two steps hit different
     registers: stepping p0;p1 and p1;p0 from the root must yield the
     same decision sets — the heart of the proof's "events commute"
     argument. *)
  let p = Protocols.naive_registers () in
  let c = Valency.initial p ~inputs in
  let a, b = Valency.commute_check p c 0 1 ~max_steps:25 in
  Alcotest.(check bool) "decision sets equal" true (a = b)

let cas_steps_do_not_commute () =
  let p = Protocols.cas () in
  let c = Valency.initial p ~inputs in
  let a, b = Valency.commute_check p c 0 1 ~max_steps:25 in
  Alcotest.(check bool) "CAS order matters" true (a <> b)

(* --- valence machinery --- *)

let root_multivalent () =
  let p = Protocols.cas () in
  match Valency.valence p (Valency.initial p ~inputs) ~max_steps:25 with
  | Valency.Multivalent vs ->
    Alcotest.(check int) "two reachable decisions" 2 (List.length vs)
  | Valency.Univalent _ | Valency.Undetermined ->
    Alcotest.fail "root must be multivalent (solo runs decide own input)"

let truncation_detected () =
  (* A protocol that never decides: valence undetermined. *)
  let spinner : Valency.protocol =
    let reg = Register.spec () in
    let rec spin () =
      Elin_runtime.Program.bind (Elin_runtime.Program.access 0 Op.read)
        (fun _ -> spin ())
    in
    {
      Valency.name = "spinner";
      bases = [| Elin_runtime.Base.linearizable reg |];
      code = (fun ~proc:_ ~input:_ -> spin ());
    }
  in
  (match Valency.valence spinner (Valency.initial spinner ~inputs) ~max_steps:10 with
  | Valency.Undetermined -> ()
  | _ -> Alcotest.fail "spinner must be undetermined");
  let r = Valency.check_consensus spinner ~inputs ~max_steps:10 in
  Alcotest.(check bool) "non-termination reported" false r.Valency.terminated

let () =
  Alcotest.run "valency"
    [
      ( "register-only",
        [
          Support.quick "naive disagrees" naive_registers_disagree;
          Support.quick "same inputs fine" naive_registers_same_inputs_fine;
        ] );
      ( "positive controls",
        [
          Support.quick "cas correct" cas_correct;
          Support.quick "cas critical config" cas_critical_configuration;
          Support.quick "linearizable ts correct" linearizable_ts_correct;
        ] );
      ( "prop 15 (E9)",
        [
          Support.quick "ev ts disagrees" ev_ts_disagrees;
          Support.slow "any stabilization time" ev_ts_fails_for_any_stabilization_time;
          Support.quick "stabilized-at-0 control" ev_ts_stabilized_early_is_fine;
          Support.quick "ev queue disagrees" ev_queue_disagrees;
        ] );
      ( "consensus power (Herlihy)",
        [
          Support.quick "queue consensus" queue_consensus_correct;
          Support.quick "fai consensus" fai_consensus_correct;
        ] );
      ( "machinery",
        [
          Support.quick "commutation" different_objects_commute;
          Support.quick "cas non-commutation" cas_steps_do_not_commute;
          Support.quick "root multivalent" root_multivalent;
          Support.quick "truncation" truncation_detected;
        ] );
    ]

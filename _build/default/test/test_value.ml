(** Tests for universal values, operations and the op codec. *)

open Elin_spec
open Elin_test_support

let constructors () =
  Alcotest.check Support.value "int" (Value.Int 3) (Value.int 3);
  Alcotest.check Support.value "pair"
    (Value.Pair (Value.Int 1, Value.Bool true))
    (Value.pair (Value.int 1) (Value.bool true));
  Alcotest.check Support.value "list"
    (Value.List [ Value.Unit ])
    (Value.list [ Value.unit ])

let accessors () =
  Alcotest.(check int) "to_int" 7 (Value.to_int (Value.int 7));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check string) "to_str" "x" (Value.to_str (Value.str "x"));
  let a, b = Value.to_pair (Value.pair (Value.int 1) (Value.int 2)) in
  Alcotest.check Support.value "fst" (Value.int 1) a;
  Alcotest.check Support.value "snd" (Value.int 2) b;
  Alcotest.(check unit) "to_unit" () (Value.to_unit Value.unit)

let accessor_type_errors () =
  Alcotest.(check bool) "to_int of bool raises" true
    (match Value.to_int (Value.bool true) with
    | exception Value.Type_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "to_list of int raises" true
    (match Value.to_list (Value.int 1) with
    | exception Value.Type_error _ -> true
    | _ -> false)

let equality_structural () =
  let v = Value.list [ Value.pair (Value.int 1) (Value.str "a") ] in
  let w = Value.list [ Value.pair (Value.int 1) (Value.str "a") ] in
  Alcotest.(check bool) "equal" true (Value.equal v w);
  Alcotest.(check int) "compare" 0 (Value.compare v w);
  Alcotest.(check int) "hash equal" (Value.hash v) (Value.hash w)

let pp_forms () =
  let s v = Value.to_string v in
  Alcotest.(check string) "unit" "()" (s Value.unit);
  Alcotest.(check string) "int" "42" (s (Value.int 42));
  Alcotest.(check string) "pair" "(1, true)"
    (s (Value.pair (Value.int 1) (Value.bool true)));
  Alcotest.(check string) "list" "[1; 2]"
    (s (Value.list [ Value.int 1; Value.int 2 ]))

(* --- Op --- *)

let op_name_includes_args () =
  (* Section 3: "the name of an operation includes all of the
     operation's arguments" — write(1) and write(2) are different
     operations. *)
  Alcotest.(check bool) "write 1 <> write 2" false
    (Op.equal (Op.write 1) (Op.write 2));
  Alcotest.(check bool) "write 1 = write 1" true
    (Op.equal (Op.write 1) (Op.write 1))

let op_pp () =
  Alcotest.(check string) "no args" "read" (Op.to_string Op.read);
  Alcotest.(check string) "with args" "write(3)" (Op.to_string (Op.write 3));
  Alcotest.(check string) "cas" "cas(0, 1)"
    (Op.to_string (Op.cas ~expected:0 ~desired:1))

let op_compare_total () =
  let ops = [ Op.read; Op.write 1; Op.write 2; Op.fetch_inc; Op.deq ] in
  let sorted = List.sort Op.compare ops in
  Alcotest.(check int) "same length" (List.length ops) (List.length sorted);
  List.iter
    (fun o -> Alcotest.(check bool) "member" true (List.exists (Op.equal o) sorted))
    ops

(* --- Codec --- *)

let codec_roundtrip () =
  let ops =
    [ Op.read; Op.write 5; Op.fetch_inc; Op.cas ~expected:1 ~desired:2;
      Op.propose 1; Op.make "odd" ~args:[ Value.pair (Value.int 1) Value.unit ] ]
  in
  List.iter
    (fun o ->
      Alcotest.check Support.op "roundtrip" o (Codec.decode_op (Codec.encode_op o)))
    ops

let codec_entry_roundtrip () =
  let p, o = Codec.decode_entry (Codec.encode_entry ~proc:3 (Op.write 1)) in
  Alcotest.(check int) "proc" 3 p;
  Alcotest.check Support.op "op" (Op.write 1) o

let () =
  Alcotest.run "value"
    [
      ( "value",
        [
          Support.quick "constructors" constructors;
          Support.quick "accessors" accessors;
          Support.quick "type errors" accessor_type_errors;
          Support.quick "structural equality" equality_structural;
          Support.quick "pretty-printing" pp_forms;
        ] );
      ( "op",
        [
          Support.quick "name includes args" op_name_includes_args;
          Support.quick "pretty-printing" op_pp;
          Support.quick "compare total" op_compare_total;
        ] );
      ( "codec",
        [
          Support.quick "op roundtrip" codec_roundtrip;
          Support.quick "entry roundtrip" codec_entry_roundtrip;
        ] );
    ]

(** Experiment E5 and unit tests for weak consistency (Definition 1,
    Lemma 10): own-history coherence, no out-of-thin-air responses,
    safety (prefix and finite limit closure), locality (Lemma 8),
    and the Justify search used by the Figure-1 guard. *)

open Elin_spec
open Elin_history
open Elin_checker
open Elin_test_support
open Support

let reg = Register.spec ()
let wreg = Weak.for_spec reg
let fai = Faicounter.spec ()
let wfai = Weak.for_spec fai

let empty_ok () =
  Alcotest.(check bool) "empty weakly consistent" true
    (Weak.is_weakly_consistent wreg (h []))

(* Cross-process staleness is allowed... *)
let stale_read_other_proc_ok () =
  let hist =
    h [ inv 0 (Op.write 1); res 0 Value.unit; inv 1 Op.read; resi 1 0 ]
  in
  Alcotest.(check bool) "stale cross-process read ok" true
    (Weak.is_weakly_consistent wreg hist)

(* ... but a process must see its own writes. *)
let own_write_must_be_seen () =
  let hist =
    h [ inv 0 (Op.write 1); res 0 Value.unit; inv 0 Op.read; resi 0 0 ]
  in
  Alcotest.(check bool) "own write ignored" false
    (Weak.is_weakly_consistent wreg hist)

(* No out-of-left-field values even from other processes. *)
let thin_air_rejected () =
  let hist = h [ inv 0 (Op.write 1); res 0 Value.unit; inv 1 Op.read; resi 1 9 ] in
  Alcotest.(check bool) "value 9 never written" false
    (Weak.is_weakly_consistent wreg hist)

(* A response may only use operations invoked before it completes. *)
let future_ops_unusable () =
  let hist =
    h [ inv 1 Op.read; resi 1 1; inv 0 (Op.write 1); res 0 Value.unit ]
  in
  Alcotest.(check bool) "future write unusable" false
    (Weak.is_weakly_consistent wreg hist)

(* Concurrent-but-invoked-before ops are usable. *)
let concurrent_op_usable () =
  let hist =
    h [ inv 0 (Op.write 1); inv 1 Op.read; resi 1 1; res 0 Value.unit ]
  in
  Alcotest.(check bool) "concurrent write usable" true
    (Weak.is_weakly_consistent wreg hist)

(* fetch&inc: two concurrent 0s are weakly consistent (each justified
   by the singleton history), unlike linearizability. *)
let fai_duplicates_weakly_ok () =
  let hist =
    h [ inv 0 Op.fetch_inc; inv 1 Op.fetch_inc; resi 0 0; resi 1 0 ]
  in
  Alcotest.(check bool) "duplicates fine weakly" true
    (Weak.is_weakly_consistent wfai hist)

(* But a process's own counter must not regress. *)
let fai_own_regression_rejected () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 0; inv 0 Op.fetch_inc; resi 0 0 ]
  in
  Alcotest.(check bool) "own regression" false
    (Weak.is_weakly_consistent wfai hist)

(* check returns the offending operation. *)
let check_names_culprit () =
  let hist =
    h [ inv 0 Op.fetch_inc; resi 0 0; inv 0 Op.fetch_inc; resi 0 0 ]
  in
  match Weak.check wfai hist with
  | Ok () -> Alcotest.fail "expected violation"
  | Error o ->
    Alcotest.(check int) "second op blamed" 1 o.Operation.id

(* Nondeterministic types: a flip justified by *some* transition is
   weakly consistent even if other transitions disagree. *)
let nondeterministic_type_ok () =
  let coin = Nd_coin.spec () in
  let wcoin = Weak.for_spec coin in
  let hist =
    h [ inv 0 Nd_coin.flip; resi 0 1; inv 0 Nd_coin.flip; resi 0 0 ]
  in
  Alcotest.(check bool) "any flip sequence fine" true
    (Weak.is_weakly_consistent wcoin hist);
  let hist = h [ inv 0 Nd_coin.flip; resi 0 5 ] in
  Alcotest.(check bool) "impossible flip rejected" false
    (Weak.is_weakly_consistent wcoin hist)

(* Pending operations never violate Definition 1 (only responses are
   constrained). *)
let pending_never_violates =
  Support.seeded_prop ~count:40 "pending ops never violate" (fun rng ->
      let hist =
        Gen.linearizable_with_pending rng ~spec:reg ~procs:3 ~n_ops:5 ()
      in
      Weak.is_weakly_consistent wreg hist)

(* --- E5: weak consistency is a safety property (Lemma 10) --- *)

let prefix_closed =
  Support.seeded_prop ~count:60 "E5: prefix closure" (fun rng ->
      let hist, _ =
        Gen.eventually_linearizable rng ~spec:reg ~procs:2 ~prefix_ops:3
          ~suffix_ops:3 ()
      in
      Weak.is_weakly_consistent wreg hist
      && List.for_all
           (fun k ->
             Weak.is_weakly_consistent wreg (History.prefix hist k))
           (List.init (History.length hist + 1) (fun k -> k)))

(* Finite-approximation of limit closure: a growing chain of weakly
   consistent histories stays weakly consistent at every level (the
   infinite limit is out of reach mechanically; the chain check is the
   finite shadow). *)
let chain_closed =
  Support.seeded_prop ~count:20 "E5: closure along chains" (fun rng ->
      let hist = Gen.linearizable rng ~spec:reg ~procs:2 ~n_ops:8 () in
      let len = History.length hist in
      let rec grow k =
        if k > len then true
        else
          Weak.is_weakly_consistent wreg (History.prefix hist k) && grow (k + 1)
      in
      grow 0)

(* Non-example: extending a weakly consistent history can break weak
   consistency only through the *new* operation (safety = nothing bad
   yet); check that the violation is detected exactly when it
   appears. *)
let violation_appears_with_event () =
  let good = [ inv 0 (Op.write 1); res 0 Value.unit; inv 0 Op.read ] in
  Alcotest.(check bool) "pending read fine" true
    (Weak.is_weakly_consistent wreg (h good));
  Alcotest.(check bool) "bad response breaks it" false
    (Weak.is_weakly_consistent wreg (h (good @ [ resi 0 0 ])))

(* --- Lemma 8: locality of weak consistency --- *)

let locality_weak =
  Support.seeded_prop ~count:40 "Lemma 8: H weakly consistent iff all H|o"
    (fun rng ->
      (* Interleave two independently generated single-object histories
         onto distinct objects. *)
      let h1 = Gen.linearizable rng ~spec:reg ~procs:2 ~n_ops:4 () in
      let h2, _ =
        Gen.eventually_linearizable rng ~spec:reg ~procs:2 ~prefix_ops:2
          ~suffix_ops:2 ()
      in
      let relabel obj hist =
        List.map
          (fun (e : Event.t) -> { e with Event.obj })
          (History.events hist)
      in
      (* Simple deterministic interleaving: all of h1 then all of h2 —
         still a single history over two objects. *)
      let hist = History.of_events (relabel 0 h1 @ relabel 1 h2) in
      let direct = Weak.is_weakly_consistent wreg hist in
      let local =
        List.for_all
          (fun o ->
            Weak.is_weakly_consistent wreg (History.proj_obj hist o))
          (History.objs hist)
      in
      direct = local)

(* --- Justify (Figure 1 line 13 search) --- *)

let justify_basic () =
  let pool = [ Op.write 1; Op.write 2 ] in
  (* read -> 2 justified by writing 2 last *)
  Alcotest.(check bool) "justified" true
    (Justify.justifiable reg ~pool ~required:[] ~op:Op.read ~resp:(Value.int 2));
  (* read -> 3 not justifiable *)
  Alcotest.(check bool) "not justifiable" false
    (Justify.justifiable reg ~pool ~required:[] ~op:Op.read ~resp:(Value.int 3))

let justify_required () =
  let pool = [ Op.write 1; Op.write 2 ] in
  (* read -> 0 requires placing no ops, fine with no required ops *)
  Alcotest.(check bool) "empty subset ok" true
    (Justify.justifiable reg ~pool ~required:[] ~op:Op.read ~resp:(Value.int 0));
  (* but required index 0 (write 1) forces it into S; read -> 0 then
     needs write 2... order write1 write2? no: read must return last
     write.  With required = [0], S must contain write 1; read -> 0
     impossible since any placement leaves register non-zero... *)
  Alcotest.(check bool) "required write blocks stale read" false
    (Justify.justifiable reg ~pool ~required:[ 0 ] ~op:Op.read
       ~resp:(Value.int 0));
  Alcotest.(check bool) "required write enables its value" true
    (Justify.justifiable reg ~pool ~required:[ 0 ] ~op:Op.read
       ~resp:(Value.int 1))

let justify_fai_counts () =
  let pool = [ Op.fetch_inc; Op.fetch_inc; Op.fetch_inc ] in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "fetch&inc -> %d" v)
        (v <= 3)
        (Justify.justifiable fai ~pool ~required:[] ~op:Op.fetch_inc
           ~resp:(Value.int v)))
    [ 0; 1; 2; 3; 4 ]

(* Cross-validation: Weak.op_ok agrees with the fast fetch&inc bounds
   check on generated histories (full Faic cross-check in
   test_faic). *)
let weak_matches_fast =
  Support.seeded_prop ~count:40 "Weak = Faic.weakly_consistent" (fun rng ->
      let hist, _ =
        Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:3
          ~suffix_ops:3 ()
      in
      let direct = Weak.is_weakly_consistent wfai hist in
      let fast = Faic.weakly_consistent hist in
      direct = fast)

let weak_matches_fast_corrupted =
  Support.seeded_prop ~count:60 "Weak = Faic.weakly_consistent (corrupted)"
    (fun rng ->
      let hist = Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:5 () in
      match Gen.corrupt rng hist with
      | None -> true
      | Some hist ->
        Weak.is_weakly_consistent wfai hist = Faic.weakly_consistent hist)

let () =
  Alcotest.run "weak"
    [
      ( "definition 1",
        [
          Support.quick "empty" empty_ok;
          Support.quick "stale cross-process" stale_read_other_proc_ok;
          Support.quick "own writes visible" own_write_must_be_seen;
          Support.quick "thin air" thin_air_rejected;
          Support.quick "future ops unusable" future_ops_unusable;
          Support.quick "concurrent ops usable" concurrent_op_usable;
          Support.quick "fai duplicates ok" fai_duplicates_weakly_ok;
          Support.quick "fai own regression" fai_own_regression_rejected;
          Support.quick "culprit named" check_names_culprit;
          Support.quick "nondeterministic type" nondeterministic_type_ok;
          pending_never_violates;
        ] );
      ( "safety (E5)",
        [
          prefix_closed;
          chain_closed;
          Support.quick "violation timing" violation_appears_with_event;
        ] );
      ("locality (Lemma 8)", [ locality_weak ]);
      ( "justify",
        [
          Support.quick "basic" justify_basic;
          Support.quick "required ops" justify_required;
          Support.quick "fai counts" justify_fai_counts;
          weak_matches_fast;
          weak_matches_fast_corrupted;
        ] );
    ]

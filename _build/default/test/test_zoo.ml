(** Zoo-wide property battery: the core invariants of the reproduction,
    checked uniformly across every object type in the zoo.

    For each type: generated histories are linearizable; corrupting a
    response never crashes the checkers and is always detected as
    either still-linearizable or t-repairable; min_t is monotone under
    extension by construction-preserving suffixes; the adversarial
    eventually linearizable object over the type stays weakly
    consistent; and the direct implementation run through the harness
    reproduces spec semantics. *)

open Elin_kernel
open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime
open Elin_test_support

(* The engine needs bounded work: skip the classifier-only entries with
   huge branching in generation. *)
let zoo_specs () = List.map (fun (e : Zoo.entry) -> e.Zoo.spec) (Zoo.all ())

let generated_linearizable_zoo =
  Support.seeded_prop ~count:40 "generated histories linearizable (zoo)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:5 () in
          Engine.linearizable (Engine.for_spec spec) h)
        (zoo_specs ()))

let corruption_detected_or_benign =
  Support.seeded_prop ~count:40 "corruption never crashes; min_t exists (zoo)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:4 () in
          match Gen.corrupt rng h with
          | None -> true
          | Some h' -> (
            (* Total types: some cut always repairs the history. *)
            match Eventual.min_t (Engine.for_spec spec) h' with
            | Some t -> t <= History.length h'
            | None -> false))
        (zoo_specs ()))

let ev_base_weakly_consistent_zoo =
  Support.seeded_prop ~count:30 "adversarial object weakly consistent (zoo)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let seed = Prng.int rng 100000 in
          let base = Ev_base.local_until_step spec 1000 in
          let wl = Run.random_workload rng spec ~procs:2 ~per_proc:3 in
          let out =
            Run.execute (Impl.direct base) ~workloads:wl
              ~sched:(Sched.random ~seed) ()
          in
          Weak.is_weakly_consistent (Weak.for_spec spec) out.Run.history)
        (zoo_specs ()))

let ev_base_eventually_linearizable_zoo =
  Support.seeded_prop ~count:20 "stabilizing object eventually lin (zoo)"
    (fun rng ->
      List.for_all
        (fun spec ->
          let seed = Prng.int rng 100000 in
          let k = 1 + Prng.int rng 6 in
          let base = Ev_base.local_until_accesses spec k in
          let wl = Run.random_workload rng spec ~procs:2 ~per_proc:3 in
          let out =
            Run.execute (Impl.direct base) ~workloads:wl
              ~sched:(Sched.random ~seed) ()
          in
          Eventual.is_eventually_linearizable
            (Eventual.check_spec spec out.Run.history))
        (zoo_specs ()))

let direct_impl_matches_spec_zoo =
  Support.seeded_prop ~count:30 "solo direct run = Spec.run (zoo)" (fun rng ->
      List.for_all
        (fun spec ->
          let ops =
            List.init 4 (fun _ -> Prng.choose rng (Spec.all_ops spec))
          in
          let out =
            Run.execute (Impl.of_spec spec) ~workloads:[| ops |]
              ~sched:(Sched.round_robin ()) ()
          in
          let responses =
            List.filter_map Operation.response_value
              (History.ops out.Run.history)
          in
          List.equal Value.equal responses (Spec.run spec ops))
        (zoo_specs ()))

let projections_preserve_ops_zoo =
  Support.seeded_prop ~count:30 "H|p partitions operations (zoo)" (fun rng ->
      List.for_all
        (fun spec ->
          let h = Gen.linearizable rng ~spec ~procs:3 ~n_ops:6 () in
          let total =
            List.fold_left
              (fun acc p -> acc + History.n_ops (History.proj_proc h p))
              0 (History.procs h)
          in
          total = History.n_ops h)
        (zoo_specs ()))

let min_t_bounded_by_length_zoo =
  Support.seeded_prop ~count:30 "min_t <= |H| (zoo)" (fun rng ->
      List.for_all
        (fun spec ->
          let h, _ =
            Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:2
              ~suffix_ops:2 ()
          in
          match Eventual.min_t (Engine.for_spec spec) h with
          | Some t -> 0 <= t && t <= History.length h
          | None -> false)
        (zoo_specs ()))

let weak_consistency_of_linearizable_zoo =
  Support.seeded_prop ~count:30 "linearizable implies weakly consistent (zoo)"
    (fun rng ->
      (* Linearizability is strictly stronger than weak consistency
         (every linearization witnesses Definition 1). *)
      List.for_all
        (fun spec ->
          let h = Gen.linearizable rng ~spec ~procs:2 ~n_ops:4 () in
          Weak.is_weakly_consistent (Weak.for_spec spec) h)
        (zoo_specs ()))

let () =
  Alcotest.run "zoo_properties"
    [
      ( "invariants",
        [
          generated_linearizable_zoo;
          corruption_detected_or_benign;
          ev_base_weakly_consistent_zoo;
          ev_base_eventually_linearizable_zoo;
          direct_impl_matches_spec_zoo;
          projections_preserve_ops_zoo;
          min_t_bounded_by_length_zoo;
          weak_consistency_of_linearizable_zoo;
        ] );
    ]

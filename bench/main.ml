(** Benchmark harness.

    The paper has no numbered tables or figures (it is a theory paper);
    DESIGN.md §5 defines the experiment series that play their role.
    This harness regenerates every series with a quantitative axis:

    - B1 [faic-contention]: linearizable fetch&increment (from CAS, and
      wait-free from a board) vs the eventually linearizable
      fetch&increment, under growing process counts — the
      introduction's "give up synchronizing under contention" trade-off
      made quantitative;
    - B2 [checker-scaling]: the generic Wing–Gong-style t-linearizability
      engine vs the fast Lemma-17 slot checker, as history length
      grows (exponential vs near-linear);
    - B3 [mc-scaling]: the parallel fingerprint-dedup model-checking
      engine (lib/mc) — sequential vs N domains, dedup on/off, and the
      DFS baselines it replaces;
    - E6 [guard-overhead]: the cost the Figure-1 weak-consistency guard
      adds per operation;
    - E10 [ev-consensus]: the Proposals-array consensus over
      linearizable vs eventually linearizable registers;
    - E9 [valency-scaling]: exhaustive valency analysis cost vs depth;
    - E13 [stabilize-sweep]: the Prop. 18 construction (stable-node
      search + certification + derivation) for a sweep of stabilization
      parameters k;
    - B5 [svc-throughput]: the lib/svc checking service — jobs/s of a
      50-job batch vs worker-domain count, with and without
      prepared-history reuse.

    Every workload is deterministic (seeded); numbers are ns per
    whole-scenario run, with per-op normalization printed where the
    scenario has a natural op count.  With [--json], every series also
    writes its rows to [BENCH_<series>.json] in the working
    directory. *)

open Bechamel
open Toolkit
open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime
open Elin_core
open Elin_valency

(* ------------------------------------------------------------------ *)
(* Measurement plumbing                                               *)
(* ------------------------------------------------------------------ *)

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let instance = Instance.monotonic_clock

let cfg =
  Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None
    ~stabilize:false ()

let measure_group tests =
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" tests) in
  let analyzed = Analyze.all ols instance raw in
  Hashtbl.fold
    (fun name ols acc ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> (name, est) :: acc
      | Some [] | None -> (name, nan) :: acc)
    analyzed []

let print_header title =
  Printf.printf "\n== %s ==\n%-46s %14s %14s\n" title "benchmark" "ns/run"
    "ns/op"

let is_suffix ~affix s =
  let la = String.length affix and ls = String.length s in
  la <= ls && String.sub s (ls - la) la = affix

let est_of results name =
  match
    List.find_opt
      (fun (n, _) -> n = name || is_suffix ~affix:("/" ^ name) n)
      results
  with
  | Some (_, est) -> est
  | None -> nan

let print_rows specs results =
  List.iter
    (fun (name, ops, _) ->
      let est = est_of results name in
      let per_op =
        match ops with
        | Some n when n > 0 -> Printf.sprintf "%14.1f" (est /. float_of_int n)
        | _ -> Printf.sprintf "%14s" "-"
      in
      Printf.printf "%-46s %14.1f %s\n" name est per_op)
    specs

(* ------------------------------------------------------------------ *)
(* --json output                                                       *)
(* ------------------------------------------------------------------ *)

let json_mode = Array.exists (fun a -> a = "--json") Sys.argv

(* NaN has no JSON spelling; a missing estimate becomes null. *)
let jnum f = if Float.is_nan f then Elin_svc.Jsonl.Null else Elin_svc.Jsonl.Float f

(* One line through the one encoder — the same writer the trace
   export, metrics snapshots, and svc verdicts use. *)
let series_obj series rows =
  Elin_svc.Jsonl.Obj
    [ ("series", Elin_svc.Jsonl.Str series); ("results", Elin_svc.Jsonl.Arr rows) ]

let write_series series rows =
  if json_mode then begin
    let path = Printf.sprintf "BENCH_%s.json" series in
    Elin_obs.Jsonl.to_file path (series_obj series rows);
    Printf.printf "wrote %s\n" path
  end

let rows_of_specs specs results =
  let open Elin_svc.Jsonl in
  List.map
    (fun (name, ops, _) ->
      let est = est_of results name in
      Obj
        (("name", Str name)
         :: ("ns_per_run", jnum est)
         ::
         (match ops with
         | Some n when n > 0 ->
           [ ("ns_per_op", jnum (est /. float_of_int n)) ]
         | _ -> [])))
    specs

(* [specs] : (name, op-count option, thunk) list *)
let group ~series title specs =
  print_header title;
  let tests =
    List.map (fun (name, _, f) -> Test.make ~name (Staged.stage f)) specs
  in
  let results = measure_group tests in
  print_rows specs results;
  write_series series (rows_of_specs specs results);
  flush stdout

(* ------------------------------------------------------------------ *)
(* B1: fetch&increment under contention                               *)
(* ------------------------------------------------------------------ *)

let fai_run impl ~procs ~per_proc ~seed () =
  let wl = Run.uniform_workload Op.fetch_inc ~procs ~per_proc in
  let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
  assert out.Run.all_done

let b1 () =
  let per_proc = 64 in
  let specs =
    List.concat_map
      (fun procs ->
        let n = procs * per_proc in
        [
          ( Printf.sprintf "fai/cas procs=%d" procs,
            Some n,
            fai_run (Impls.fai_from_cas ()) ~procs ~per_proc ~seed:1 );
          ( Printf.sprintf "fai/board procs=%d" procs,
            Some n,
            fai_run (Impls.fai_from_board ()) ~procs ~per_proc ~seed:1 );
          ( Printf.sprintf "fai/ev-board(k=inf) procs=%d" procs,
            Some n,
            fai_run (Impls.fai_ev_board ~k:max_int ()) ~procs ~per_proc ~seed:1 );
          ( Printf.sprintf "fai/ev-board(k=32) procs=%d" procs,
            Some n,
            fai_run (Impls.fai_ev_board ~k:32 ()) ~procs ~per_proc ~seed:1 );
        ])
      [ 1; 2; 4; 8 ]
  in
  group ~series:"b1" "B1: fetch&increment implementations under contention" specs

(* ------------------------------------------------------------------ *)
(* B2: checker scaling                                                *)
(* ------------------------------------------------------------------ *)

let b2 () =
  let fai = Faicounter.spec () in
  let fcfg = Engine.for_spec fai in
  let history_of n seed =
    let rng = Elin_kernel.Prng.create seed in
    Gen.linearizable rng ~spec:fai ~procs:3 ~n_ops:n ()
  in
  let generic =
    List.map
      (fun n ->
        let h = history_of n 42 in
        ( Printf.sprintf "generic-engine n=%d" n,
          Some n,
          fun () -> assert (Engine.linearizable fcfg h) ))
      [ 4; 8; 12; 16 ]
  in
  let fast =
    List.map
      (fun n ->
        let h = history_of n 42 in
        ( Printf.sprintf "fast-faic n=%d" n,
          Some n,
          fun () -> assert (Faic.t_linearizable h ~t:0) ))
      [ 16; 64; 256; 1024; 4096 ]
  in
  let min_t =
    List.map
      (fun n ->
        let rng = Elin_kernel.Prng.create 7 in
        let h, _ =
          Gen.eventually_linearizable rng ~spec:fai ~procs:2
            ~prefix_ops:(n / 4) ~suffix_ops:(3 * n / 4) ()
        in
        ( Printf.sprintf "fast-min_t n=%d" n,
          Some n,
          fun () -> assert (Faic.min_t h <> None) ))
      [ 64; 256; 1024 ]
  in
  group ~series:"b2" "B2: t-linearizability checker scaling" (generic @ fast @ min_t)

(* ------------------------------------------------------------------ *)
(* E6: guard overhead                                                 *)
(* ------------------------------------------------------------------ *)

let e6 () =
  let fai = Faicounter.spec () in
  let inner () = Impls.fai_ev_board ~k:4 () in
  let specs =
    [
      ( "unguarded fai/ev-board 2x6",
        Some 12,
        fai_run (inner ()) ~procs:2 ~per_proc:6 ~seed:3 );
      ( "guarded fai/ev-board 2x6",
        Some 12,
        fai_run (Guard.wrap ~spec:fai (inner ())) ~procs:2 ~per_proc:6 ~seed:3 );
      ( "unguarded fai/ev-board 3x6",
        Some 18,
        fai_run (inner ()) ~procs:3 ~per_proc:6 ~seed:3 );
      ( "guarded fai/ev-board 3x6",
        Some 18,
        fai_run (Guard.wrap ~spec:fai (inner ())) ~procs:3 ~per_proc:6 ~seed:3 );
    ]
  in
  group ~series:"e6" "E6: Figure-1 weak-consistency guard overhead" specs

(* ------------------------------------------------------------------ *)
(* E10: consensus                                                     *)
(* ------------------------------------------------------------------ *)

let e10 () =
  let consensus_run ~procs ~base ~seed () =
    let impl = Ev_consensus.impl ~procs ~base () in
    let wl = Array.init procs (fun p -> [ Op.propose (p mod 2) ]) in
    let out = Run.execute impl ~workloads:wl ~sched:(Sched.random ~seed) () in
    assert out.Run.all_done
  in
  let specs =
    List.concat_map
      (fun procs ->
        [
          ( Printf.sprintf "proposals/linearizable-regs procs=%d" procs,
            Some procs,
            consensus_run ~procs ~base:`Linearizable ~seed:5 );
          ( Printf.sprintf "proposals/ev-regs(k=8) procs=%d" procs,
            Some procs,
            consensus_run ~procs ~base:(`Ev_at_step 8) ~seed:5 );
        ])
      [ 2; 4; 8 ]
  in
  group ~series:"e10" "E10: Proposals-array consensus (Prop. 16)" specs

(* ------------------------------------------------------------------ *)
(* E9: valency analysis                                               *)
(* ------------------------------------------------------------------ *)

let e9 () =
  let inputs = [| Value.int 0; Value.int 1 |] in
  let specs =
    List.map
      (fun depth ->
        ( Printf.sprintf "check-consensus/cas depth=%d" depth,
          None,
          fun () ->
            let r =
              Valency.check_consensus (Protocols.cas ()) ~inputs
                ~max_steps:depth
            in
            assert r.Valency.terminated ))
      [ 10; 15; 20 ]
    @ [
        ( "check-consensus/regs+ev-ts",
          None,
          fun () ->
            let r =
              Valency.check_consensus
                (Protocols.registers_plus_ev_testandset ())
                ~inputs ~max_steps:30
            in
            assert (r.Valency.agreement_violation <> None) );
        ( "find-critical/cas",
          None,
          fun () ->
            assert (
              Valency.find_critical (Protocols.cas ()) ~inputs ~max_steps:20
              <> None) );
      ]
  in
  group ~series:"e9" "E9: exhaustive valency analysis (Prop. 15)" specs

(* ------------------------------------------------------------------ *)
(* B3: model-checking engine scaling                                  *)
(* ------------------------------------------------------------------ *)

let b3 () =
  let open Elin_mc in
  (* Explore-tree target: a board-based fetch&increment, whose
     commuting base accesses create the duplicate configurations dedup
     is for. *)
  let impl () = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let explore_specs =
    List.map
      (fun (name, domains, dedup) ->
        ( Printf.sprintf "mc/fai-board 2x2 %s" name,
          None,
          fun () ->
            let stats =
              Mc.count_states (impl ()) ~workloads:wl ~max_steps:20 ~domains
                ~dedup ()
            in
            assert (stats.Search.states > 0) ))
      [
        ("seq dedup", 1, true);
        ("seq no-dedup", 1, false);
        ("domains=2 dedup", 2, true);
        ("domains=4 dedup", 4, true);
      ]
  in
  (* The E9 valency workload through the engine, sequential vs
     parallel, vs the original DFS. *)
  let inputs = [| Value.int 0; Value.int 1 |] in
  let valency_specs =
    List.map
      (fun (name, domains, dedup) ->
        ( Printf.sprintf "mc/valency-cas %s" name,
          None,
          fun () ->
            let r =
              Mc_valency.check_consensus (Protocols.cas ()) ~inputs
                ~max_steps:20 ~domains ~dedup ()
            in
            assert r.Mc_valency.terminated ))
      [
        ("seq dedup", 1, true);
        ("seq no-dedup", 1, false);
        ("domains=4 dedup", 4, true);
      ]
    @ [
        ( "dfs/valency-cas (baseline)",
          None,
          fun () ->
            let r =
              Valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
            in
            assert r.Valency.terminated );
      ]
  in
  (* The Prop. 18 stability certificate through both engines. *)
  let certify_specs =
    let check h ~t = Faic.t_linearizable h ~t in
    List.map
      (fun (name, engine) ->
        ( Printf.sprintf "stabilize-certify k=2 %s" name,
          None,
          fun () ->
            let impl = Impls.fai_ev_board ~k:2 () in
            let wl =
              Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:10
            in
            assert (
              Stabilize.find_stable ~engine impl ~workloads:wl ~depth:8 ~check
                ()
              <> None) ))
      [
        ("dfs", Stabilize.Dfs);
        ("mc seq", Stabilize.Mc { domains = Some 1; dedup = true; por = true });
        ( "mc domains=4",
          Stabilize.Mc { domains = Some 4; dedup = true; por = true } );
      ]
  in
  group ~series:"b3" "B3: model-checking engine scaling (sequential vs domains, dedup)"
    (explore_specs @ valency_specs @ certify_specs)

(* ------------------------------------------------------------------ *)
(* E13: the Prop. 18 construction                                     *)
(* ------------------------------------------------------------------ *)

let e13 () =
  let check h ~t = Faic.t_linearizable h ~t in
  let specs =
    List.map
      (fun k ->
        ( Printf.sprintf "stabilize-construct k=%d" k,
          None,
          fun () ->
            let impl = Impls.fai_ev_board ~k () in
            let wl =
              Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:(2 * k + 6)
            in
            assert (
              Stabilize.construct impl ~workloads:wl ~depth:8 ~check () <> None) ))
      [ 1; 2; 3 ]
  in
  group ~series:"e13" "E13: Prop. 18 stable-configuration construction" specs

(* ------------------------------------------------------------------ *)
(* A1: ablations of the checker design choices                        *)
(* ------------------------------------------------------------------ *)

let a1 () =
  let fai = Faicounter.spec () in
  (* Memoized vs memo-free DFS on a history that forces backtracking:
     the duplicate-heavy eventually-linearizable shape. *)
  let adversarial n =
    let rng = Elin_kernel.Prng.create 3 in
    fst
      (Gen.eventually_linearizable rng ~spec:fai ~procs:2 ~prefix_ops:(n / 2)
         ~suffix_ops:(n / 2) ())
  in
  let memo_specs =
    List.concat_map
      (fun n ->
        let h = adversarial n in
        let t = Option.value ~default:0 (Faic.min_t h) in
        [
          (* Positive instance at the minimal cut: a witness is found
             quickly, memoization is pure overhead. *)
          ( Printf.sprintf "engine+memo sat n=%d" n,
            None,
            fun () ->
              assert (Engine.t_linearizable (Engine.for_spec fai) h ~t) );
          ( Printf.sprintf "engine-no-memo sat n=%d" n,
            None,
            fun () ->
              assert
                (Engine.t_linearizable (Engine.for_spec ~memoize:false fai) h ~t)
          );
        ])
      [ 6; 8; 10 ]
  in
  (* The family where memoization is the difference between polynomial
     and exponential: k concurrent pending writes of distinct values
     plus a reader whose read sequence is unsatisfiable — the whole
     ordering space must be refuted.  (At k = 9 the memo-free search
     explores ~2.4M nodes vs ~4.6k memoized-with-lookahead; k = 12
     without memoization does not terminate in reasonable time and is
     omitted.) *)
  let pending_writes_family k =
    let reg = Register.spec ~domain:(List.init k (fun i -> i + 1)) () in
    let open Elin_history in
    let events =
      List.init k (fun i -> Event.invoke ~proc:(i + 1) ~obj:0 (Op.write (i + 1)))
      @ List.concat_map
          (fun i ->
            [
              Event.invoke ~proc:0 ~obj:0 Op.read;
              Event.respond ~proc:0 ~obj:0 (Value.int (i + 1));
            ])
          (List.init k (fun i -> i))
      @ [
          Event.invoke ~proc:0 ~obj:0 Op.read;
          Event.respond ~proc:0 ~obj:0 (Value.int 1);
        ]
    in
    (reg, History.of_events events)
  in
  let unsat_specs =
    List.concat_map
      (fun k ->
        let reg, h = pending_writes_family k in
        ( Printf.sprintf "engine+memo unsat-writes k=%d" k,
          None,
          fun () ->
            assert (not (Engine.t_linearizable (Engine.for_spec reg) h ~t:0)) )
        ::
        (if k <= 8 then
           [
             ( Printf.sprintf "engine-no-memo unsat-writes k=%d" k,
               None,
               fun () ->
                 assert
                   (not
                      (Engine.t_linearizable
                         (Engine.for_spec ~memoize:false reg)
                         h ~t:0)) );
           ]
         else []))
      [ 6; 8; 10 ]
  in
  let memo_specs = memo_specs @ unsat_specs in
  (* The two guard substrates (board vs per-process register arrays). *)
  let guard_specs =
    let inner () = Impls.fai_ev_board ~k:3 () in
    [
      ( "guard/board 2x5",
        Some 10,
        fai_run (Guard.wrap ~spec:fai (inner ())) ~procs:2 ~per_proc:5 ~seed:9 );
      ( "guard/register-arrays 2x5",
        Some 10,
        fai_run
          (Guard.wrap_registers ~spec:fai ~procs:2 ~max_ops:8 (inner ()))
          ~procs:2 ~per_proc:5 ~seed:9 );
    ]
  in
  group ~series:"a1" "A1: ablations (engine memoization; guard substrate)"
    (memo_specs @ guard_specs)

(* ------------------------------------------------------------------ *)
(* B4: the min_t hot path                                             *)
(* ------------------------------------------------------------------ *)

(* The pre-PR probing strategy, for the comparison column: check
   t = len, then bisect, re-preparing the history at every cut. *)
let binary_min_t (cfg : Engine.config) h =
  let len = History.length h in
  let check t = Engine.t_linearizable cfg h ~t in
  if not (check len) then None
  else begin
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if check mid then hi := mid else lo := mid + 1
    done;
    Some !lo
  end

(* Families and seeds match the pre-PR baseline recorded in
   EXPERIMENTS.md §B4 (fai / register / queue eventually-linearizable
   shapes, plus the E16 delayed-winner test&set family). *)
let b4 ?(smoke = false) () =
  let sizes = if smoke then [ 6 ] else [ 8; 12; 16 ] in
  let dw_sizes = if smoke then [ 4 ] else [ 8; 12 ] in
  let ev name spec seed n =
    let rng = Elin_kernel.Prng.create seed in
    let h, _ =
      Gen.eventually_linearizable rng ~spec ~procs:2 ~prefix_ops:(n / 4)
        ~suffix_ops:(3 * n / 4) ()
    in
    (Printf.sprintf "%s n=%d" name n, spec, h)
  in
  let families =
    List.concat_map
      (fun n ->
        [
          ev "fai-ev" (Faicounter.spec ()) 7 n;
          ev "register-ev" (Register.spec ()) 5 n;
          ev "queue-ev" (Fifo.spec ()) 9 n;
        ])
      sizes
    @ List.map
        (fun n ->
          ( Printf.sprintf "delayed-winner n=%d" n,
            Testandset.spec (),
            Serafini.delayed_winner_family n ))
        dw_sizes
  in
  (* Exact per-family exploration counts (single run): galloping +
     prepared cuts vs the binary baseline. *)
  Printf.printf
    "\n== B4: min_t hot path — nodes and cuts (galloping vs binary) ==\n";
  Printf.printf "%-24s %6s %9s %11s %9s %11s %9s\n" "family" "min_t"
    "cuts-gal" "nodes-gal" "memo-gal" "nodes-bin" "cuts-bin";
  List.iter
    (fun (name, spec, h) ->
      let cfg = Engine.for_spec spec in
      let mt, st = Eventual.min_t_stats cfg h in
      let bin_nodes = ref 0 and bin_cuts = ref 0 in
      let check t =
        incr bin_cuts;
        let v = Engine.search cfg h ~t in
        bin_nodes := !bin_nodes + v.Engine.nodes_explored;
        v.Engine.ok
      in
      let len = History.length h in
      if check len then begin
        let lo = ref 0 and hi = ref len in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if check mid then hi := mid else lo := mid + 1
        done
      end;
      assert (mt <> None);
      assert (st.Eventual.nodes > 0 && st.Eventual.cuts_probed > 0);
      assert (!bin_nodes > 0);
      Printf.printf "%-24s %6s %9d %11d %9d %11d %9d\n" name
        (match mt with Some t -> string_of_int t | None -> "none")
        st.Eventual.cuts_probed st.Eventual.nodes st.Eventual.memo_hits
        !bin_nodes !bin_cuts)
    families;
  flush stdout;
  if not smoke then begin
    let specs =
      List.concat_map
        (fun (name, spec, h) ->
          let cfg = Engine.for_spec spec in
          [
            ( Printf.sprintf "min_t/galloping %s" name,
              None,
              fun () -> assert (Eventual.min_t cfg h <> None) );
            ( Printf.sprintf "min_t/binary-baseline %s" name,
              None,
              fun () -> assert (binary_min_t cfg h <> None) );
          ])
        families
    in
    group ~series:"b4" "B4: incremental min_t search (ns per whole min_t computation)"
      specs
  end

(* ------------------------------------------------------------------ *)
(* E15: the universal construction                                    *)
(* ------------------------------------------------------------------ *)

let e15 () =
  let universal_run ~cell_base ~procs ~per_proc ~seed () =
    let impl =
      Universal.construction ~spec:(Faicounter.spec ())
        ~cells:(procs * per_proc * 2) ~cell_base ()
    in
    fai_run impl ~procs ~per_proc ~seed ()
  in
  let specs =
    List.concat_map
      (fun procs ->
        [
          ( Printf.sprintf "universal/linearizable procs=%d" procs,
            Some (procs * 8),
            universal_run ~cell_base:`Linearizable ~procs ~per_proc:8 ~seed:2 );
          ( Printf.sprintf "universal/ev-cells(k=8) procs=%d" procs,
            Some (procs * 8),
            universal_run ~cell_base:(`Ev_at_step 8) ~procs ~per_proc:8 ~seed:2 );
        ])
      [ 1; 2; 4 ]
  in
  group ~series:"e15" "E15: log-based universal construction from consensus cells" specs

(* ------------------------------------------------------------------ *)
(* B5: checking-service throughput                                    *)
(* ------------------------------------------------------------------ *)

(* Wall-clock of whole batches (not bechamel): the quantity of
   interest is end-to-end jobs/s through the pool, channels and
   batcher included.  10 histories x 5 checker kinds = 50 jobs; the 5
   checks per history are exactly what prepared-history reuse is
   for. *)
let b5 () =
  let open Elin_svc in
  let fai = Faicounter.spec () in
  let jobs =
    List.concat
      (List.init 10 (fun i ->
           let rng = Elin_kernel.Prng.create (100 + i) in
           let h = Gen.linearizable rng ~spec:fai ~procs:4 ~n_ops:24 () in
           let text = Textio.to_string h in
           List.mapi
             (fun j check ->
               {
                 Job.id = Printf.sprintf "b5-%d-%d" i j;
                 seq = (i * 5) + j;
                 spec = "fetch&increment";
                 check;
                 node_budget = None;
                 timeout_ms = None;
                 history_text = text;
                 trace = None;
                 parent = None;
               })
             [ Job.Linearizable; Job.T_lin 2; Job.Min_t; Job.Weak; Job.Full ]))
  in
  let n = List.length jobs in
  let throughput ~domains ~reuse =
    (* Best of 3: batches are deterministic, so the best run is the
       least-perturbed one. *)
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Elin_obs.Clock.now_s () in
      let vs = Pool.run_batch ~reuse ~domains jobs in
      let dt = Elin_obs.Clock.now_s () -. t0 in
      assert (List.length vs = n);
      assert (
        List.for_all (fun v -> v.Verdict.status = Verdict.Pass) vs);
      if dt < !best then best := dt
    done;
    float_of_int n /. !best
  in
  Printf.printf "\n== B5: checking-service throughput (%d jobs) ==\n" n;
  Printf.printf "%-10s %18s %18s\n" "domains" "jobs/s (reuse)"
    "jobs/s (no reuse)";
  let rows =
    List.map
      (fun domains ->
        let r = throughput ~domains ~reuse:true in
        let nr = throughput ~domains ~reuse:false in
        Printf.printf "%-10d %18.0f %18.0f\n" domains r nr;
        flush stdout;
        let open Jsonl in
        Obj
          [
            ("name", Str (Printf.sprintf "svc/domains %d" domains));
            ("domains", Int domains);
            ("jobs", Int n);
            ("jobs_per_s_reuse", jnum r);
            ("jobs_per_s_no_reuse", jnum nr);
          ])
      [ 1; 2; 4; 8 ]
  in
  write_series "svc" rows;
  rows

(* ------------------------------------------------------------------ *)
(* B8: socket service loopback latency vs offered rate                *)
(* ------------------------------------------------------------------ *)

(* An in-process lib/net server on a loopback Unix socket, driven by
   the open-loop load harness at a sweep of arrival rates.  The
   outcome counts (answered / pass / violations / errors) are exact
   functions of the seed — no timeout is configured and the node
   budget clears every depth-6 job — so [--regress] gates them
   exactly; walls and latency quantiles are tolerance-gated, with
   achieved_per_s gated in the higher-is-better direction. *)
let b8 () =
  let open Elin_net in
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "elin-b8-%d.sock" (Unix.getpid ()))
  in
  let addr = Addr.Unix_sock sock in
  let srv =
    Server.start ~domains:1 ~queue_capacity:256 ~resolve:Load.test_resolve
      addr
  in
  let outcomes =
    Fun.protect
      ~finally:(fun () -> Server.stop srv)
      (fun () ->
        let cfg =
          {
            Load.default_cfg with
            Load.jobs = 150;
            seed = 11;
            budget = Some 500_000;
            timeout_ms = None;
            large_depth = 6;
          }
        in
        try Load.sweep addr cfg ~rates:[ 200.; 400.; 800. ]
        with Failure m ->
          (* The load watchdog tripped (or the protocol broke).  Dump
             where the in-process pipeline stands before failing: a
             nonzero depth pins the loss to a specific stage. *)
          Printf.eprintf
            "b8: load run failed: %s\n\
             b8: server state: conns=%d pool_queued=%d verdicts_unrouted=%d\n"
            m (Server.connections srv) (Server.queue_depth srv)
            (Server.output_depth srv);
          failwith ("b8: " ^ m))
  in
  Printf.printf
    "\n== B8: socket service loopback sweep (150 jobs/rate, 1 domain) ==\n";
  Printf.printf "%-10s %10s %10s %10s %10s %10s\n" "target/s" "achieved/s"
    "p50_us" "p99_us" "p999_us" "max_us";
  let rows =
    List.map
      (fun (o : Load.outcome) ->
        Printf.printf "%-10.0f %10.1f %10.0f %10.0f %10.0f %10.0f\n"
          o.Load.target_per_s o.achieved_per_s o.p50_us o.p99_us o.p999_us
          o.max_us;
        flush stdout;
        let open Elin_svc.Jsonl in
        Obj
          [
            ( "name",
              Str (Printf.sprintf "net/loopback rate %.0f" o.Load.target_per_s)
            );
            ("rate", Int (int_of_float o.Load.target_per_s));
            ("jobs", Int o.jobs);
            ("answered", Int o.answered);
            ("pass", Int o.pass);
            ("violations", Int o.violations);
            ("busy", Int o.busy);
            ("errors", Int o.errors);
            ("exhausted", Int o.exhausted);
            ("wall_s", jnum o.wall_s);
            ("achieved_per_s", jnum o.achieved_per_s);
            ("p50_us", jnum o.p50_us);
            ("p99_us", jnum o.p99_us);
            ("p999_us", jnum o.p999_us);
            ("max_us", jnum o.max_us);
          ])
      outcomes
  in
  write_series "b8" rows;
  rows

(* ------------------------------------------------------------------ *)
(* B6: partial-order reduction x dedup                                *)
(* ------------------------------------------------------------------ *)

(* Whole-exploration wall times — each row is one exhaustive
   [Mc.count_states]/[Mc_valency.check_consensus] run (best of 3:
   the explorations are deterministic, so the best run is the
   least-perturbed one) — with the exact exploration counts riding
   along in the JSON rows.  [--smoke] gates the counts at the 2x2
   size; [--regress] diffs the whole series against
   bench/baselines/BENCH_b6.json (counts exactly, walls with
   tolerance). *)
let b6 () =
  let open Elin_mc in
  let best_of_3 run =
    let best = ref (run ()) in
    for _ = 2 to 3 do
      let s = run () in
      if s.Search.wall < !best.Search.wall then best := s
    done;
    !best
  in
  let row name (stats : Search.stats) ~dedup ~por =
    Printf.printf "%-36s %9d %10d %9d %9d %8d %9.3f\n" name
      stats.Search.states stats.Search.dedup_hits stats.Search.pruned
      stats.Search.kept stats.Search.leaves stats.Search.wall;
    flush stdout;
    let open Elin_svc.Jsonl in
    Obj
      [
        ("name", Str name);
        ("dedup", Bool dedup);
        ("por", Bool por);
        ("states", Int stats.Search.states);
        ("dedup_hits", Int stats.Search.dedup_hits);
        ("kept", Int stats.Search.kept);
        ("pruned", Int stats.Search.pruned);
        ("frontier_peak", Int stats.Search.frontier_peak);
        ("leaves", Int stats.Search.leaves);
        ("cut", Int stats.Search.cut);
        ("levels", Int stats.Search.levels);
        ("wall_s", Float stats.Search.wall);
      ]
  in
  Printf.printf "\n== B6: partial-order reduction x dedup ==\n";
  Printf.printf "%-36s %9s %10s %9s %9s %8s %9s\n" "benchmark" "states"
    "dedup-hits" "pruned" "kept" "leaves" "wall-s";
  let board_rows =
    List.concat_map
      (fun (per_proc, depth, tree_too) ->
        let impl = Impls.fai_from_board () in
        let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
        let run ~dedup ~por () =
          Mc.count_states impl ~workloads:wl ~max_steps:depth ~domains:2
            ~dedup ~por ()
        in
        let modes =
          (* Unreduced tree mode is exponential: omitted at 2x4. *)
          (if tree_too then
             [ ("tree", false, false); ("por-tree", false, true) ]
           else [])
          @ [ ("dedup", true, false); ("por+dedup", true, true) ]
        in
        List.map
          (fun (mode, dedup, por) ->
            let name =
              Printf.sprintf "mc/fai-board 2x%d d%d %s" per_proc depth mode
            in
            row name (best_of_3 (run ~dedup ~por)) ~dedup ~por)
          modes)
      [ (2, 20, true); (3, 22, true); (4, 26, false) ]
  in
  let inputs = [| Value.int 0; Value.int 1 |] in
  let valency_rows =
    List.map
      (fun (mode, por) ->
        let run () =
          (Mc_valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
             ~domains:2 ~dedup:true ~por ())
            .Mc_valency.stats
        in
        row
          (Printf.sprintf "mc/valency-cas d20 %s" mode)
          (best_of_3 run) ~dedup:true ~por)
      [ ("dedup", false); ("por+dedup", true) ]
  in
  let rows = board_rows @ valency_rows in
  write_series "b6" rows;
  rows

(* --smoke count gates: these exploration counts are exact functions
   of the engine semantics (no timing, no scheduling) — any drift
   means the state space or the reduction changed. *)
let mc_count_gates () =
  let open Elin_mc in
  let failed = ref false in
  let gate name expected actual =
    if expected <> actual then begin
      Printf.eprintf "bench-smoke: %s: expected %d, got %d\n" name expected
        actual;
      failed := true
    end
  in
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:2 in
  let run ~dedup ~por =
    Mc.count_states impl ~workloads:wl ~max_steps:20 ~domains:2 ~dedup ~por ()
  in
  let tree = run ~dedup:false ~por:false in
  let por_tree = run ~dedup:false ~por:true in
  let dedup = run ~dedup:true ~por:false in
  let pd = run ~dedup:true ~por:true in
  (* No-dedup/no-por is the [Explore] tree, node for node. *)
  let explore =
    Elin_explore.Explore.iter_leaves impl ~workloads:wl ~max_steps:20
      (fun _ -> ())
  in
  gate "tree states = explore nodes" explore.Elin_explore.Explore.nodes
    tree.Search.states;
  gate "tree leaves = explore leaves" explore.Elin_explore.Explore.leaves
    tree.Search.leaves;
  gate "fai-board 2x2 d20 tree states" 3431 tree.Search.states;
  gate "fai-board 2x2 d20 por-tree states" 985 por_tree.Search.states;
  gate "fai-board 2x2 d20 dedup states" 985 dedup.Search.states;
  gate "fai-board 2x2 d20 dedup hits" 138 dedup.Search.dedup_hits;
  gate "por+dedup states (= dedup states)" dedup.Search.states
    pd.Search.states;
  gate "por+dedup leaves (= dedup leaves)" dedup.Search.leaves
    pd.Search.leaves;
  gate "por+dedup: nothing left to dedup" 0 pd.Search.dedup_hits;
  gate "por+dedup pruned (= no-por dedup hits)" dedup.Search.dedup_hits
    pd.Search.pruned;
  if 2 * por_tree.Search.states > tree.Search.states then begin
    Printf.eprintf
      "bench-smoke: por tree (%d states) not >= 2x smaller than tree (%d)\n"
      por_tree.Search.states tree.Search.states;
    failed := true
  end;
  (* E9 through the engine: the reduction may not change the explored
     state set. *)
  let inputs = [| Value.int 0; Value.int 1 |] in
  let v ~por =
    Mc_valency.check_consensus (Protocols.cas ()) ~inputs ~max_steps:20
      ~domains:2 ~por ()
  in
  let von = v ~por:true and voff = v ~por:false in
  gate "valency-cas d20 states por-invariant"
    voff.Mc_valency.stats.Search.states von.Mc_valency.stats.Search.states;
  if von.Mc_valency.stats.Search.pruned <= 0 then begin
    Printf.eprintf "bench-smoke: valency por pruned nothing\n";
    failed := true
  end;
  if !failed then exit 1

(* ------------------------------------------------------------------ *)
(* B7: observability overhead                                         *)
(* ------------------------------------------------------------------ *)

(* The same exploration (the B6 2x3 d22 por+dedup workload) under
   three observability modes — disabled, metrics-only, full-trace.
   Two things are on trial: the zero-interference contract (the
   exploration counts must be bit-identical in every mode — tracing
   that changes what the checker explores is worse than no tracing)
   and the cost of the machinery itself (the walls quantify it; the
   disabled wall is additionally gated against the committed B6
   baseline by [--regress]).  [--smoke] runs the 2x2 d20 size. *)
let b7 ?(smoke = false) () =
  let open Elin_mc in
  let module Obs = Elin_obs in
  let per_proc, depth = if smoke then (2, 20) else (3, 22) in
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
  let run () =
    Mc.count_states impl ~workloads:wl ~max_steps:depth ~domains:2 ~dedup:true
      ~por:true ()
  in
  let best_of_3 run =
    let best = ref (run ()) in
    for _ = 2 to 3 do
      let s = run () in
      if s.Search.wall < !best.Search.wall then best := s
    done;
    !best
  in
  let in_mode mode f =
    (match mode with
    | `Disabled -> ()
    | `Metrics -> Obs.Metrics.enable ()
    | `Trace ->
      Obs.Metrics.enable ();
      Obs.Trace.enable ());
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.disable ();
        Obs.Metrics.disable ();
        Obs.Trace.clear ();
        Obs.Metrics.reset ())
      f
  in
  Printf.printf "\n== B7: observability overhead (mc/fai-board 2x%d d%d por+dedup) ==\n"
    per_proc depth;
  Printf.printf "%-12s %9s %9s %8s %9s\n" "mode" "states" "pruned" "leaves"
    "wall-s";
  let measured =
    List.map
      (fun (name, mode) ->
        let stats = in_mode mode (fun () -> best_of_3 run) in
        Printf.printf "%-12s %9d %9d %8d %9.3f\n" name stats.Search.states
          stats.Search.pruned stats.Search.leaves stats.Search.wall;
        flush stdout;
        (name, stats))
      [ ("disabled", `Disabled); ("metrics", `Metrics); ("full-trace", `Trace) ]
  in
  (* Zero-interference gate: identical counts in every mode. *)
  let _, base = List.hd measured in
  List.iter
    (fun (name, (s : Search.stats)) ->
      if
        s.Search.states <> base.Search.states
        || s.Search.leaves <> base.Search.leaves
        || s.Search.pruned <> base.Search.pruned
        || s.Search.dedup_hits <> base.Search.dedup_hits
      then begin
        Printf.eprintf
          "b7: exploration counts drift under mode %s (states %d vs %d)\n" name
          s.Search.states base.Search.states;
        exit 1
      end)
    measured;
  let rows =
    List.map
      (fun (name, (s : Search.stats)) ->
        let open Elin_svc.Jsonl in
        Obj
          [
            ("name", Str ("obs/" ^ name));
            ("states", Int s.Search.states);
            ("leaves", Int s.Search.leaves);
            ("wall_s", Float s.Search.wall);
          ])
      measured
  in
  write_series "b7" rows;
  measured

(* ------------------------------------------------------------------ *)
(* B9: sharded vs barrier engine scaling                              *)
(* ------------------------------------------------------------------ *)

let perf_tol () =
  match Sys.getenv_opt "ELIN_PERF_TOL" with
  | Some s -> float_of_string s
  | None -> 4.0

(* The engine {barrier, sharded} x domains {1, 2, 4} grid over the B6
   2x3 d22 por+dedup workload.  Three things on trial:

   - the determinism contract: every exploration count must be
     bit-identical across the whole grid (cross-gated here, exact
     under --regress);
   - sharding may not cost anything sequentially: sharded@1 must stay
     within ELIN_PERF_TOL of barrier@1 (states/s);
   - the shared-nothing refactor must actually win where the barrier
     engine re-spawns domains every level: sharded@4 strictly above
     barrier@4 (states/s, best-of-5 each).

   The committed BENCH_b9.json rates are gated higher-is-better by
   --regress (any key containing "per_s"). *)
let b9 () =
  let open Elin_mc in
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
  let best_of n run =
    let best = ref (run ()) in
    for _ = 2 to n do
      let s = run () in
      if s.Search.wall < !best.Search.wall then best := s
    done;
    !best
  in
  let run ~engine ~domains () =
    Mc.count_states impl ~workloads:wl ~max_steps:22 ~engine ~domains
      ~dedup:true ~por:true ()
  in
  Printf.printf "\n== B9: sharded vs barrier engine (2x3 d22 por+dedup) ==\n";
  Printf.printf "%-34s %9s %9s %12s %9s\n" "benchmark" "states" "kept"
    "states/s" "wall-s";
  let cells =
    List.concat_map
      (fun engine ->
        List.map
          (fun domains ->
            ((engine, domains), best_of 5 (run ~engine ~domains)))
          [ 1; 2; 4 ])
      [ Search.Barrier; Search.Sharded ]
  in
  let failed = ref false in
  (* Cross-gates: the counts are one set-determined quantity; any cell
     disagreeing with any other is an engine bug, not noise. *)
  let (_, ref_stats) = List.hd cells in
  List.iter
    (fun ((e, d), (s : Search.stats)) ->
      let gate name a b =
        if a <> b then begin
          Printf.eprintf "b9: %s x%d: %s drifted (%d, grid has %d)\n"
            (Search.engine_to_string e) d name b a;
          failed := true
        end
      in
      gate "states" ref_stats.Search.states s.Search.states;
      gate "dedup_hits" ref_stats.Search.dedup_hits s.Search.dedup_hits;
      gate "kept" ref_stats.Search.kept s.Search.kept;
      gate "pruned" ref_stats.Search.pruned s.Search.pruned;
      gate "frontier_peak" ref_stats.Search.frontier_peak
        s.Search.frontier_peak;
      gate "leaves" ref_stats.Search.leaves s.Search.leaves;
      gate "cut" ref_stats.Search.cut s.Search.cut;
      gate "levels" ref_stats.Search.levels s.Search.levels)
    cells;
  let rate (s : Search.stats) = float_of_int s.Search.states /. s.Search.wall in
  let cell e d = List.assoc (e, d) cells in
  let tol = perf_tol () in
  let b1 = rate (cell Search.Barrier 1) and s1 = rate (cell Search.Sharded 1) in
  if not (s1 >= b1 /. tol) then begin
    Printf.eprintf
      "b9: sharded@1 (%.0f states/s) fell past %gx below barrier@1 (%.0f)\n" s1
      tol b1;
    failed := true
  end;
  let b4 = rate (cell Search.Barrier 4) and s4 = rate (cell Search.Sharded 4) in
  if not (s4 > b4) then begin
    Printf.eprintf
      "b9: sharded@4 (%.0f states/s) not above barrier@4 (%.0f)\n" s4 b4;
    failed := true
  end;
  let rows =
    List.map
      (fun ((e, d), (s : Search.stats)) ->
        let name =
          Printf.sprintf "mc/fai-board 2x3 d22 por+dedup %s x%d"
            (Search.engine_to_string e) d
        in
        Printf.printf "%-34s %9d %9d %12.0f %9.3f\n" name s.Search.states
          s.Search.kept (rate s) s.Search.wall;
        flush stdout;
        let open Elin_svc.Jsonl in
        Obj
          [
            ("name", Str name);
            ("engine", Str (Search.engine_to_string e));
            ("domains", Int d);
            ("states", Int s.Search.states);
            ("dedup_hits", Int s.Search.dedup_hits);
            ("kept", Int s.Search.kept);
            ("pruned", Int s.Search.pruned);
            ("frontier_peak", Int s.Search.frontier_peak);
            ("leaves", Int s.Search.leaves);
            ("cut", Int s.Search.cut);
            ("levels", Int s.Search.levels);
            ("states_per_s", Float (rate s));
          ])
      cells
  in
  if !failed then exit 1;
  write_series "b9" rows;
  rows

(* ------------------------------------------------------------------ *)
(* B10: external-memory spill tier                                     *)
(* ------------------------------------------------------------------ *)

(* The B6/B9 2x3 d22 workload through the sharded engine at 2 domains,
   three ways: all-RAM, spill with a hot tier that never fills (2^20
   fingerprints/shard), and spill with a tiny hot tier (1024/shard)
   that seals segments all run long.  On trial:

   - the spill tier is a representation change, never a semantic one:
     every exploration count must be bit-identical across the three
     rows (cross-gated here, exact against the baseline under
     --regress);
   - the spill shape is deterministic: segments, disk bytes, and
     spilled-record counts are integer fields, so --regress gates
     them exactly;
   - throughput: states_per_s gated higher-is-better vs the committed
     baseline, like every other series. *)
let b10 () =
  let open Elin_mc in
  let impl = Impls.fai_from_board () in
  let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
  let scratch tag =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "elin-b10-%d-%s" (Unix.getpid ()) tag)
    in
    (try Unix.mkdir d 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d
  in
  let rm_rf d =
    if Sys.file_exists d then begin
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
      Unix.rmdir d
    end
  in
  let zero_store =
    {
      Elin_store.Tiered_set.segments = 0;
      disk_bytes = 0;
      spilled = 0;
      hot = 0;
      flushes = 0;
      disk_probes = 0;
      disk_probe_hits = 0;
      fence_skips = 0;
    }
  in
  let run ~hot tag () =
    let sp, dir =
      match hot with
      | None -> (None, None)
      | Some hot ->
        let d = scratch tag in
        (Some (Mc.spill ~hot ~identity:"b10" d), Some d)
    in
    let s =
      Mc.count_states impl ~workloads:wl ~max_steps:22
        ~engine:Search.Sharded ~domains:2 ~dedup:true ~por:true ?spill:sp ()
    in
    let store =
      match sp with
      | Some { Mc.store = Some st; _ } -> st
      | _ -> zero_store
    in
    Option.iter rm_rf dir;
    (s, store)
  in
  let best_of n run =
    let best = ref (run ()) in
    for _ = 2 to n do
      let r = run () in
      if (fst r).Search.wall < (fst !best).Search.wall then best := r
    done;
    !best
  in
  Printf.printf "\n== B10: spill tier (2x3 d22 por+dedup sharded x2) ==\n";
  Printf.printf "%-34s %9s %9s %9s %12s %9s\n" "benchmark" "states" "segs"
    "diskKiB" "states/s" "wall-s";
  let cells =
    [
      ("ram", best_of 3 (run ~hot:None "ram"));
      ("spill hot=1M", best_of 3 (run ~hot:(Some (1 lsl 20)) "big"));
      ("spill hot=1k", best_of 3 (run ~hot:(Some 1024) "tiny"));
    ]
  in
  let failed = ref false in
  let _, (ref_stats, _) = List.hd cells in
  (* Cross-gates: spill on/off and hot-tier size may never move a
     count. *)
  List.iter
    (fun (mode, ((s : Search.stats), _)) ->
      let gate name a b =
        if a <> b then begin
          Printf.eprintf "b10: %s: %s drifted (%d, ram row has %d)\n" mode
            name b a;
          failed := true
        end
      in
      gate "states" ref_stats.Search.states s.Search.states;
      gate "dedup_hits" ref_stats.Search.dedup_hits s.Search.dedup_hits;
      gate "kept" ref_stats.Search.kept s.Search.kept;
      gate "pruned" ref_stats.Search.pruned s.Search.pruned;
      gate "frontier_peak" ref_stats.Search.frontier_peak
        s.Search.frontier_peak;
      gate "leaves" ref_stats.Search.leaves s.Search.leaves;
      gate "cut" ref_stats.Search.cut s.Search.cut;
      gate "levels" ref_stats.Search.levels s.Search.levels)
    cells;
  (* Shape gates: the big cap must never spill, the tiny cap must
     spill nearly everything. *)
  let store_of mode = snd (List.assoc mode cells) in
  if (store_of "spill hot=1M").Elin_store.Tiered_set.segments <> 0 then begin
    Printf.eprintf "b10: hot=1M spilled segments; cap sizing is broken\n";
    failed := true
  end;
  let tiny = store_of "spill hot=1k" in
  if tiny.segments = 0 || tiny.spilled = 0 then begin
    Printf.eprintf "b10: hot=1k never spilled; the tier was not exercised\n";
    failed := true
  end;
  let rate (s : Search.stats) =
    float_of_int s.Search.states /. s.Search.wall
  in
  let rows =
    List.map
      (fun (mode, ((s : Search.stats), (store : Elin_store.Tiered_set.stats)))
      ->
        let name = Printf.sprintf "mc/fai-board 2x3 d22 sharded x2 %s" mode in
        Printf.printf "%-34s %9d %9d %9d %12.0f %9.3f\n" name s.Search.states
          store.segments
          (store.disk_bytes / 1024)
          (rate s) s.Search.wall;
        flush stdout;
        let open Elin_svc.Jsonl in
        Obj
          [
            ("name", Str name);
            ("mode", Str mode);
            ("states", Int s.Search.states);
            ("dedup_hits", Int s.Search.dedup_hits);
            ("kept", Int s.Search.kept);
            ("pruned", Int s.Search.pruned);
            ("frontier_peak", Int s.Search.frontier_peak);
            ("leaves", Int s.Search.leaves);
            ("cut", Int s.Search.cut);
            ("levels", Int s.Search.levels);
            ("segments", Int store.segments);
            ("disk_bytes", Int store.disk_bytes);
            ("spilled", Int store.spilled);
            ("flushes", Int store.flushes);
            ("states_per_s", Float (rate s));
          ])
      cells
  in
  if !failed then exit 1;
  write_series "b10" rows;
  rows

(* ------------------------------------------------------------------ *)
(* B11: decomposed checking engine                                     *)
(* ------------------------------------------------------------------ *)

(* Monolithic vs decomposed min_t over multi-object workloads
   (DESIGN.md §15).  Three sub-series:

   - the Proposition 9 register family (k single-writer registers;
     composed bound 4(k-1)+2): min_t is cross-gated against the
     closed form and node counts are deterministic Ints gated exactly
     under --regress, with the largest sizes required to beat the
     monolithic engine by >= 10x nodes — the series' headline gate;
   - a seeded mixed-object eventual grid (Gen.mixed_eventual), sized
     so the monolithic gallop finishes: min_t must be bit-identical
     between the two paths on every cell;
   - the svc Split path: the same multi-object batch through
     Pool.run_batch and Split.run_batch at 1/2/4 worker domains,
     statuses and min_t cross-gated, jobs/s tolerance-gated
     higher-is-better (flat on a single-core box; recorded
     honestly). *)
let b11 () =
  let reg = Register.spec () in
  let fai = Faicounter.spec () in
  let spec_of_obj o = if o mod 2 = 0 then reg else fai in
  let failed = ref false in
  let time f =
    let t0 = Elin_obs.Clock.now_s () in
    let v = f () in
    (v, Elin_obs.Clock.now_s () -. t0)
  in
  (* Deterministic work; best-of keeps the least-perturbed wall.  Runs
     already past a second are not repeated — their relative noise is
     small and the largest monolithic cells are the expensive ones. *)
  let best_of n f =
    let best = ref (time f) in
    if snd !best < 1.0 then
      for _ = 2 to n do
        let r = time f in
        if snd r < snd !best then best := r
      done;
    !best
  in
  Printf.printf "\n== B11: decomposed checking engine (per-object split) ==\n";
  Printf.printf "%-34s %6s %11s %11s %8s %9s %9s\n" "benchmark" "min_t"
    "mono-nodes" "dec-nodes" "ratio" "mono-s" "dec-s";
  (* One cross-gated comparison row: monolithic vs decomposed min_t on
     [h] must agree (and match [expect] when given); node counts are
     returned for the caller's shape gates and emitted as exact
     Ints. *)
  let compare_row ~name ~spec_of ?expect h =
    let mono_cfg = Engine.config spec_of in
    let dcfg = Decompose.config spec_of in
    let (mono_mt, mono_st), mono_w =
      best_of 3 (fun () -> Eventual.min_t_stats mono_cfg h)
    in
    let (dec_mt, dec_st, dstats), dec_w =
      best_of 3 (fun () -> Decompose.min_t_stats dcfg h)
    in
    if mono_mt <> dec_mt then begin
      Printf.eprintf "b11: %s: min_t split (mono %s, decomposed %s)\n" name
        (match mono_mt with Some t -> string_of_int t | None -> "none")
        (match dec_mt with Some t -> string_of_int t | None -> "none");
      failed := true
    end;
    (match expect with
    | Some e when mono_mt <> Some e ->
      Printf.eprintf "b11: %s: min_t %s, closed form says %d\n" name
        (match mono_mt with Some t -> string_of_int t | None -> "none")
        e;
      failed := true
    | _ -> ());
    let ratio =
      float_of_int mono_st.Eventual.nodes
      /. float_of_int (max 1 dec_st.Eventual.nodes)
    in
    Printf.printf "%-34s %6s %11d %11d %7.1fx %9.4f %9.4f\n" name
      (match mono_mt with Some t -> string_of_int t | None -> "-")
      mono_st.Eventual.nodes dec_st.Eventual.nodes ratio mono_w dec_w;
    flush stdout;
    let open Elin_svc.Jsonl in
    let row =
      Obj
        [
          ("name", Str name);
          ( "min_t",
            match mono_mt with Some t -> Int t | None -> Null );
          ("mono_nodes", Int mono_st.Eventual.nodes);
          ("mono_cuts", Int mono_st.Eventual.cuts_probed);
          ("mono_memo_hits", Int mono_st.Eventual.memo_hits);
          ("dec_nodes", Int dec_st.Eventual.nodes);
          ("dec_cuts", Int dec_st.Eventual.cuts_probed);
          ("dec_memo_hits", Int dec_st.Eventual.memo_hits);
          ("dec_objects", Int dstats.Decompose.objects);
          ("mono_wall_s", Float mono_w);
          ("dec_wall_s", Float dec_w);
        ]
    in
    (row, mono_st.Eventual.nodes, dec_st.Eventual.nodes)
  in
  (* Sub-series 1: the register family. *)
  let family_rows =
    List.map
      (fun k ->
        let h = Locality.register_family k in
        let row, mono_nodes, dec_nodes =
          compare_row
            ~name:(Printf.sprintf "decomp/register_family k=%d" k)
            ~spec_of:(fun _ -> reg)
            ~expect:((4 * (k - 1)) + 2)
            h
        in
        (k, row, mono_nodes, dec_nodes))
      [ 2; 4; 6; 8; 10 ]
  in
  (* Sub-series 2: seeded mixed-object eventual workloads. *)
  let mixed_rows =
    List.map
      (fun (objs, procs, per, seed) ->
        let rng = Elin_kernel.Prng.create seed in
        let h, _bound =
          Gen.mixed_eventual rng ~spec_of_obj ~objs ~procs ~prefix_ops:per
            ~suffix_ops:per ()
        in
        let row, mono_nodes, dec_nodes =
          compare_row
            ~name:
              (Printf.sprintf "decomp/mixed o=%d p=%d per=%d s=%d" objs procs
                 per seed)
            ~spec_of:spec_of_obj h
        in
        (objs, row, mono_nodes, dec_nodes))
      [ (2, 2, 3, 41); (3, 2, 3, 42); (4, 2, 4, 43) ]
  in
  (* The headline gate: on the multi-object family (register_family
     k >= 4, and the largest mixed cell) the decomposition must
     explore >= 10x fewer engine nodes than the monolithic search. *)
  List.iter
    (fun (k, _, mono_nodes, dec_nodes) ->
      if k >= 4 && mono_nodes < 10 * dec_nodes then begin
        Printf.eprintf
          "b11: register_family k=%d: %d mono vs %d decomposed nodes — \
           under the 10x floor\n"
          k mono_nodes dec_nodes;
        failed := true
      end)
    family_rows;
  List.iter
    (fun (objs, _, mono_nodes, dec_nodes) ->
      if objs >= 4 && mono_nodes < 10 * dec_nodes then begin
        Printf.eprintf
          "b11: mixed o=%d: %d mono vs %d decomposed nodes — under the \
           10x floor\n"
          objs mono_nodes dec_nodes;
        failed := true
      end)
    mixed_rows;
  (* Sub-series 3: the same decomposition through the service — each
     sub-history becomes one pool job (Split).  Statuses and min_t are
     cross-gated against the undecomposed pool; node counts differ by
     design (summed over sub-jobs, `Smart order), so only the jobs/s
     rates are emitted, tolerance-gated. *)
  let svc_jobs =
    List.init 12 (fun i ->
        let rng = Elin_kernel.Prng.create (4100 + i) in
        let h, _ =
          Gen.mixed_eventual rng
            ~spec_of_obj:(fun _ -> reg)
            ~objs:3 ~procs:2 ~prefix_ops:3 ~suffix_ops:3 ()
        in
        {
          Elin_svc.Job.id = Printf.sprintf "b11-%d" i;
          seq = i;
          spec = "register";
          check =
            List.nth
              [ Elin_svc.Job.Full; Min_t; Weak; T_lin 2 ]
              (i mod 4);
          node_budget = None;
          timeout_ms = None;
          history_text = Textio.to_string h;
          trace = None;
          parent = None;
        })
  in
  let n_jobs = List.length svc_jobs in
  let mono_vs = Elin_svc.Pool.run_batch ~domains:1 svc_jobs in
  let split_vs = Elin_svc.Split.run_batch ~domains:1 svc_jobs in
  List.iter2
    (fun (m : Elin_svc.Verdict.t) (s : Elin_svc.Verdict.t) ->
      if m.status <> s.status || m.min_t <> s.min_t then begin
        Printf.eprintf "b11: svc %s: decomposed verdict split from pool's\n"
          m.job_id;
        failed := true
      end)
    mono_vs split_vs;
  let throughput run =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Elin_obs.Clock.now_s () in
      let vs = run () in
      let dt = Elin_obs.Clock.now_s () -. t0 in
      assert (List.length vs = n_jobs);
      if dt < !best then best := dt
    done;
    float_of_int n_jobs /. !best
  in
  Printf.printf "%-34s %18s %18s\n" "svc batch (12 multi-object jobs)"
    "jobs/s (split)" "jobs/s (pool)";
  let svc_rows =
    List.map
      (fun domains ->
        let sp =
          throughput (fun () -> Elin_svc.Split.run_batch ~domains svc_jobs)
        in
        let mo =
          throughput (fun () -> Elin_svc.Pool.run_batch ~domains svc_jobs)
        in
        Printf.printf "%-34s %18.0f %18.0f\n"
          (Printf.sprintf "decomp/svc domains %d" domains)
          sp mo;
        flush stdout;
        let open Elin_svc.Jsonl in
        Obj
          [
            ("name", Str (Printf.sprintf "decomp/svc domains %d" domains));
            ("domains", Int domains);
            ("jobs", Int n_jobs);
            ("jobs_per_s_split", jnum sp);
            ("jobs_per_s_pool", jnum mo);
          ])
      [ 1; 2; 4 ]
  in
  if !failed then exit 1;
  let rows =
    List.map (fun (_, r, _, _) -> r) family_rows
    @ List.map (fun (_, r, _, _) -> r) mixed_rows
    @ svc_rows
  in
  write_series "b11" rows;
  rows

(* ------------------------------------------------------------------ *)
(* B12: flight-recorder overhead                                      *)
(* ------------------------------------------------------------------ *)

(* The recorder is the one observability layer that is ON by default —
   every job costs two ring notes (job.start/job.done: a clock read
   and a small allocation each).  This series prices that default on
   the B5 service batch: the same jobs with the recorder forced off
   vs. left on.  Verdict counts must be identical in both modes
   (recording that changes checking is disqualifying), and the on-wall
   is gated against the committed baseline so a future hot-path [note]
   (the documented misuse) shows up as a regression here before anyone
   ships it. *)
let b12 () =
  let open Elin_svc in
  let module Obs = Elin_obs in
  let fai = Faicounter.spec () in
  let jobs =
    List.concat
      (List.init 10 (fun i ->
           let rng = Elin_kernel.Prng.create (300 + i) in
           let h = Gen.linearizable rng ~spec:fai ~procs:4 ~n_ops:24 () in
           let text = Textio.to_string h in
           List.mapi
             (fun j check ->
               {
                 Job.id = Printf.sprintf "b12-%d-%d" i j;
                 seq = (i * 3) + j;
                 spec = "fetch&increment";
                 check;
                 node_budget = None;
                 timeout_ms = None;
                 history_text = text;
                 trace = None;
                 parent = None;
               })
             [ Job.Linearizable; Job.Min_t; Job.Full ]))
  in
  let n = List.length jobs in
  let wall_of ~enabled =
    Obs.Recorder.set_enabled enabled;
    Fun.protect
      ~finally:(fun () ->
        Obs.Recorder.set_enabled true;
        Obs.Recorder.clear ())
      (fun () ->
        let best = ref infinity in
        for _ = 1 to 3 do
          let t0 = Obs.Clock.now_s () in
          let vs = Pool.run_batch ~domains:2 jobs in
          let dt = Obs.Clock.now_s () -. t0 in
          if List.length vs <> n
             || not (List.for_all (fun v -> v.Verdict.status = Verdict.Pass) vs)
          then begin
            Printf.eprintf "b12: verdicts drift with recorder %s\n"
              (if enabled then "on" else "off");
            exit 1
          end;
          if dt < !best then best := dt
        done;
        !best)
  in
  Printf.printf "\n== B12: flight-recorder overhead (%d jobs, 2 domains) ==\n" n;
  Printf.printf "%-12s %12s %14s\n" "recorder" "wall-s" "jobs/s";
  let rows =
    List.map
      (fun (name, enabled) ->
        let w = wall_of ~enabled in
        Printf.printf "%-12s %12.4f %14.0f\n" name w (float_of_int n /. w);
        flush stdout;
        let open Jsonl in
        Obj
          [
            ("name", Str ("recorder/" ^ name));
            ("jobs", Int n);
            ("wall_s", jnum w);
            ("jobs_per_s", jnum (float_of_int n /. w));
          ])
      [ ("off", false); ("on", true) ]
  in
  write_series "b12" rows;
  rows

(* ------------------------------------------------------------------ *)
(* --regress: measured series vs the committed baselines              *)
(* ------------------------------------------------------------------ *)

(* Each regress-gated series regenerates and diffs against its
   committed baseline file. *)
let baseline_path = "bench/baselines/BENCH_b6.json"
let svc_baseline_path = "bench/baselines/BENCH_svc.json"
let b8_baseline_path = "bench/baselines/BENCH_b8.json"
let b9_baseline_path = "bench/baselines/BENCH_b9.json"
let b10_baseline_path = "bench/baselines/BENCH_b10.json"
let b11_baseline_path = "bench/baselines/BENCH_b11.json"
let b12_baseline_path = "bench/baselines/BENCH_b12.json"

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Row-by-row comparison of a measured series against its baseline,
   keyed by the "name" field.  Count fields are deterministic and must
   match exactly; measured fields (walls, latencies, rates — matched
   by key, because JSON cannot distinguish [Float 511.] from [Int 511]
   after a round-trip) are gated by tolerance: lower-is-better except
   for rate-like fields (any key containing "per_s"), which are gated
   in the higher-is-better direction [c >= b / tol]. *)
let measured_key k =
  List.exists
    (fun sub -> contains_substring k sub)
    [ "per_s"; "wall"; "_us"; "_ms"; "ns_per" ]

let compare_rows ~fail ~tol ~series brows crows =
  let open Elin_svc.Jsonl in
  let drift fmt = Printf.ksprintf fail fmt in
  let num = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | _ -> None
  in
  let name_of row =
    Option.value ~default:"?" (str_mem "name" row)
  in
  let current = List.map (fun row -> (name_of row, row)) crows in
  List.iter
    (fun brow ->
      let name = Printf.sprintf "%s/%s" series (name_of brow) in
      match List.assoc_opt (name_of brow) current with
      | None -> drift "row %S missing from current run" name
      | Some crow ->
        List.iter
          (fun (k, bv) ->
            match mem k crow with
            | None -> drift "%s: field %S missing" name k
            | Some cv -> (
              match (num bv, num cv) with
              | Some b, Some c when measured_key k ->
                if contains_substring k "per_s" then begin
                  if not (c >= b /. tol) then
                    drift
                      "%s: %s throughput regressed: baseline %.4f, now %.4f \
                       (tol %gx)"
                      name k b c tol
                end
                else if not (c <= b *. tol) then
                  drift "%s: %s regressed: baseline %.4f, now %.4f (tol %gx)"
                    name k b c tol
              | Some b, Some c ->
                if b <> c then
                  drift "%s: %s drifted: baseline %g, now %g" name k b c
              | _ ->
                if bv <> cv then drift "%s: %s differs from baseline" name k))
          (match brow with Obj fields -> fields | _ -> []))
    brows;
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun brow -> name_of brow = name) brows) then
        drift "new row %S not in baseline (run 'make perf-baseline')"
          (Printf.sprintf "%s/%s" series name))
    current

let baseline_rows ~path =
  let open Elin_svc.Jsonl in
  match of_string (read_file path) with
  | j -> (
    match mem "results" j with Some (Arr r) -> Some r | _ -> Some [])
  | exception Sys_error e ->
    Printf.eprintf
      "perf-regress: cannot read %s (%s); run 'make perf-baseline' first\n"
      path e;
    None

(* [--regress]: regenerate the gated series (B6 exploration grid, B5
   service throughput, B8 socket loopback sweep) and diff each against
   its committed baseline — integer counts must match exactly; walls,
   latencies, and rates may not drift past ELIN_PERF_TOL (default 4:
   CI boxes are noisy, and an honest perf regression shows up well
   past 4x on these sub-second runs before the counts ever move).
   [--regress-update] rewrites the baselines instead. *)
let regress ~update () =
  let open Elin_svc.Jsonl in
  let rows = b6 () in
  let svc_rows = b5 () in
  let b8_rows = b8 () in
  let b9_rows = b9 () in
  let b10_rows = b10 () in
  let b11_rows = b11 () in
  let b12_rows = b12 () in
  if update then begin
    (try Unix.mkdir "bench/baselines" 0o755
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    Elin_obs.Jsonl.to_file baseline_path (series_obj "b6" rows);
    Elin_obs.Jsonl.to_file svc_baseline_path (series_obj "svc" svc_rows);
    Elin_obs.Jsonl.to_file b8_baseline_path (series_obj "b8" b8_rows);
    Elin_obs.Jsonl.to_file b9_baseline_path (series_obj "b9" b9_rows);
    Elin_obs.Jsonl.to_file b10_baseline_path (series_obj "b10" b10_rows);
    Elin_obs.Jsonl.to_file b11_baseline_path (series_obj "b11" b11_rows);
    Elin_obs.Jsonl.to_file b12_baseline_path (series_obj "b12" b12_rows);
    Printf.printf "\nwrote baselines %s, %s, %s, %s, %s, %s, %s\n" baseline_path
      svc_baseline_path b8_baseline_path b9_baseline_path b10_baseline_path
      b11_baseline_path b12_baseline_path
  end
  else begin
    let tol = perf_tol () in
    let failed = ref false in
    let drift fmt =
      Printf.ksprintf
        (fun s ->
          Printf.eprintf "perf-regress: %s\n" s;
          failed := true)
        fmt
    in
    let brows =
      match baseline_rows ~path:baseline_path with
      | Some r -> r
      | None -> exit 2
    in
    let fail s =
      Printf.eprintf "perf-regress: %s\n" s;
      failed := true
    in
    compare_rows ~fail ~tol ~series:"b6" brows rows;
    (match baseline_rows ~path:svc_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"svc" b svc_rows
    | None -> exit 2);
    (match baseline_rows ~path:b8_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"b8" b b8_rows
    | None -> exit 2);
    (match baseline_rows ~path:b9_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"b9" b b9_rows
    | None -> exit 2);
    (match baseline_rows ~path:b10_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"b10" b b10_rows
    | None -> exit 2);
    (match baseline_rows ~path:b11_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"b11" b b11_rows
    | None -> exit 2);
    (match baseline_rows ~path:b12_baseline_path with
    | Some b -> compare_rows ~fail ~tol ~series:"b12" b b12_rows
    | None -> exit 2);
    let name_of row = Option.value ~default:"?" (str_mem "name" row) in
    (* B7 disabled-overhead gate: with the observability layer
       compiled in but switched off, the por+dedup workload must stay
       within tolerance of the committed B6 baseline wall — the single
       branch on the disabled flag is not allowed to cost anything a
       tolerance-scaled wall clock can see.  (b7 itself exits 1 if
       any mode perturbs the exploration counts.) *)
    let b7_measured = b7 () in
    let b6_wall =
      List.find_map
        (fun brow ->
          if name_of brow = "mc/fai-board 2x3 d22 por+dedup" then
            match mem "wall_s" brow with
            | Some (Float f) -> Some f
            | Some (Int i) -> Some (float_of_int i)
            | _ -> None
          else None)
        brows
    in
    (match (b6_wall, List.assoc_opt "disabled" b7_measured) with
    | Some b, Some s ->
      let c = s.Elin_mc.Search.wall in
      if not (c <= b *. tol) then
        drift "b7 disabled-overhead: baseline %.4f, now %.4f (tol %gx)" b c tol
    | None, _ ->
      drift "b7: baseline row \"mc/fai-board 2x3 d22 por+dedup\" missing"
    | _, None -> drift "b7: disabled mode missing from measurement");
    if !failed then exit 1;
    Printf.printf
      "\nperf-regress OK (%d b6 + %d svc + %d b8 rows + b7 overhead, \
       tolerance %gx)\n"
      (List.length brows) (List.length svc_rows) (List.length b8_rows) tol;
    Printf.printf "b9 engine grid: %d rows gated (counts exact, rates %gx)\n"
      (List.length b9_rows) tol;
    Printf.printf
      "b11 decomposed checker: %d rows gated (node counts exact, rates %gx)\n"
      (List.length b11_rows) tol;
    Printf.printf
      "b10 spill tier: %d rows gated (counts and spill shape exact, rates \
       %gx)\n"
      (List.length b10_rows) tol;
    Printf.printf
      "b12 flight recorder: %d rows gated (verdict counts exact, walls %gx)\n"
      (List.length b12_rows) tol
  end

let () =
  if Array.exists (fun a -> a = "--smoke") Sys.argv then begin
    (* CI smoke: B4 at tiny sizes; the asserts inside [b4] require
       nonzero exploration counts, and any Budget_exceeded escaping is
       a leak (no budget is configured anywhere in the series).  Then
       the B3/B6 exploration-count gates. *)
    (try b4 ~smoke:true ()
     with Engine.Budget_exceeded ->
       prerr_endline "bench-smoke: Budget_exceeded leaked";
       exit 1);
    mc_count_gates ();
    ignore (b7 ~smoke:true ());
    Printf.printf "\nbench-smoke OK\n"
  end
  else if Array.exists (fun a -> a = "--regress-update") Sys.argv then
    regress ~update:true ()
  else if Array.exists (fun a -> a = "--regress") Sys.argv then
    regress ~update:false ()
  else if Array.exists (fun a -> a = "--svc") Sys.argv then ignore (b5 ())
  else if Array.exists (fun a -> a = "--decomp") Sys.argv then ignore (b11 ())
  else if Array.exists (fun a -> a = "--net") Sys.argv then ignore (b8 ())
  else begin
    Printf.printf
      "elin benchmark harness — experiment series from DESIGN.md section 5\n";
    b1 ();
    b2 ();
    b3 ();
    ignore (b6 ());
    ignore (b7 ());
    ignore (b9 ());
    ignore (b10 ());
    ignore (b11 ());
    ignore (b12 ());
    b4 ();
    e6 ();
    e10 ();
    e9 ();
    e13 ();
    e15 ();
    a1 ();
    ignore (b5 ());
    ignore (b8 ());
    Printf.printf "\nAll benchmark groups completed.\n"
  end

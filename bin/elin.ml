(** The [elin] command-line tool.

    {v
    elin check      — check a history file against a spec
    elin generate   — generate a (linearizable / eventually
                      linearizable / corrupted) history file
    elin run        — execute an implementation and report verdicts
    elin paradox    — run the Prop. 18 construction end to end
    elin mc         — parallel fingerprint-dedup model checking
    elin experiments— run the experiment suite and print the report
    elin batch      — run a JSONL job stream through the checking service
    elin serve      — watch a spool directory of *.jobs files
    elin trace      — validate recorded trace / metrics files
    v}

    Observability: [--trace FILE] on check/mc records span+instant
    events (Chrome trace-event JSON for [.json], canonical JSONL
    otherwise), [--progress SECS] on mc prints live heartbeats,
    [--metrics FILE] on batch writes a metrics snapshot; none of them
    ever change verdicts, output, or exit codes.

    Exit codes are uniform across subcommands ({!Elin_svc.Exit_code}):
    0 every verdict ok, 1 a violation/refutation was found, 2 usage or
    parse error, 3 a budget or timeout was exhausted before a
    verdict. *)

open Cmdliner
open Elin_spec
open Elin_history
open Elin_checker
open Elin_runtime
module Exit_code = Elin_svc.Exit_code

let ok_exit code = `Ok (Exit_code.to_int code)

(* ------------------------------------------------------------------ *)
(* Observability plumbing                                             *)
(* ------------------------------------------------------------------ *)

module Obs = Elin_obs

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a trace of the run into $(docv): Chrome trace-event JSON \
           when it ends in .json (loads in Perfetto / chrome://tracing), \
           canonical JSONL otherwise.  Tracing never changes verdicts, \
           output, or exit codes.")

(* Tracing implies metrics: the aggregated instants (POR-pruned per
   worker per level) are computed from metric shards.  [proc] labels
   the export's meta header so [elin trace merge] can name the
   process lane. *)
let with_trace ?(proc = "elin") trace f =
  match trace with
  | None -> f ()
  | Some path ->
    Obs.Metrics.enable ();
    Obs.Trace.enable ();
    Obs.Trace.set_proc proc;
    Fun.protect
      ~finally:(fun () ->
        Obs.Trace.disable ();
        Obs.Metrics.disable ();
        Obs.Trace.write_file path)
      f

let flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight" ] ~docv:"FILE"
        ~doc:
          "Append flight-recorder post-mortems to $(docv).  The recorder \
           itself is always on (one bounded ring of recent events per \
           domain, fixed memory); this flag only configures where dumps \
           land when a checker crashes, a job times out, the wire sees a \
           protocol error, or the process receives SIGUSR1.")

(* A sink also arms the SIGUSR1 operator trigger; the sink is cleared
   on the way out so later in-process runs (tests) stay silent. *)
let with_flight flight f =
  match flight with
  | None -> f ()
  | Some path ->
    Obs.Recorder.set_sink (Some path);
    Obs.Recorder.install_sigusr1 ();
    Fun.protect ~finally:(fun () -> Obs.Recorder.set_sink None) f

(* The --progress heartbeat: a sampler domain reads the live registry
   and prints one stderr line per period.  Purely an observer — it
   touches no search state, so it cannot perturb determinism. *)
let progress_loop ~period ~stop =
  let value name =
    match Obs.Metrics.find name with
    | Some (Obs.Metrics.Counter_v n) | Some (Obs.Metrics.Gauge_v n) -> n
    | _ -> 0
  in
  let t_start = Obs.Clock.now_s () in
  let t_last = ref t_start in
  let states_last = ref (value "mc.states") in
  let rec sleep_until target =
    if (not (Atomic.get stop)) && Obs.Clock.now_s () < target then begin
      Unix.sleepf 0.05;
      sleep_until target
    end
  in
  let per_domain_util () =
    (* Share of this tick's states per worker lane, from the live
       per-worker counters; only lanes that did work appear. *)
    let total = ref 0 and parts = ref [] in
    for d = 63 downto 0 do
      let n = value (Printf.sprintf "mc.worker%d.states" d) in
      if n > 0 then begin
        total := !total + n;
        parts := (d, n) :: !parts
      end
    done;
    if !total = 0 || List.length !parts < 2 then ""
    else
      "  util ["
      ^ String.concat " "
          (List.map
             (fun (d, n) ->
               Printf.sprintf "d%d %.0f%%" d
                 (100. *. float_of_int n /. float_of_int !total))
             !parts)
      ^ "]"
  in
  let rec loop () =
    if not (Atomic.get stop) then begin
      sleep_until (!t_last +. period);
      if not (Atomic.get stop) then begin
        let now = Obs.Clock.now_s () in
        let states = value "mc.states" in
        let dt = now -. !t_last in
        let rate =
          if dt > 0. then float_of_int (states - !states_last) /. dt else 0.
        in
        Printf.eprintf
          "[mc %6.1fs] states %d (%.0f/s)  frontier %d  level %d%s\n%!"
          (now -. t_start) states rate (value "mc.frontier")
          (value "mc.level") (per_domain_util ());
        t_last := now;
        states_last := states;
        loop ()
      end
    end
  in
  loop ()

let with_progress secs f =
  match secs with
  | Some s when s > 0. ->
    Obs.Metrics.enable ();
    let stop = Atomic.make false in
    let sampler = Domain.spawn (fun () -> progress_loop ~period:s ~stop) in
    Fun.protect
      ~finally:(fun () ->
        Atomic.set stop true;
        Domain.join sampler)
      f
  | Some _ | None -> f ()

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                   *)
(* ------------------------------------------------------------------ *)

let spec_names () =
  List.map (fun (e : Zoo.entry) -> Spec.name e.Zoo.spec) (Zoo.all ())

let spec_of_name name =
  match
    List.find_opt
      (fun (e : Zoo.entry) -> Spec.name e.Zoo.spec = name)
      (Zoo.all ())
  with
  | Some e -> Ok e.Zoo.spec
  | None ->
    Error
      (Printf.sprintf "unknown spec %S (available: %s)" name
         (String.concat ", " (spec_names ())))

let spec_arg =
  let doc = "Object type (sequential specification) to check against." in
  Arg.(value & opt string "fetch&increment" & info [ "spec"; "s" ] ~doc)

let seed_arg =
  let doc = "PRNG seed; every run is a pure function of it." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let procs_arg =
  let doc = "Number of processes." in
  Arg.(value & opt int 2 & info [ "procs"; "p" ] ~doc)

(* ------------------------------------------------------------------ *)
(* elin check                                                         *)
(* ------------------------------------------------------------------ *)

let do_check spec_name file t_flag min_t_flag weak_flag stats_flag budget
    decompose trace =
  match spec_of_name spec_name with
  | Error e -> `Error (false, e)
  | Ok spec ->
    let hist =
      try Ok (Textio.of_file file) with
      | Textio.Parse_error m -> Error ("parse error: " ^ m)
      | History.Ill_formed e ->
        Error (Format.asprintf "ill-formed history: %a" History.pp_error e)
      | Sys_error m -> Error m
    in
    (match hist with
    | Error e -> `Error (false, e)
    | Ok hist -> (
      try
        with_trace ~proc:"check" trace @@ fun () ->
        let code = ref Exit_code.Ok in
        let note c = code := Exit_code.combine !code c in
        (match t_flag with
        | Some t ->
          if decompose then begin
            let dcfg = Decompose.for_spec ?node_budget:budget spec in
            let ok, st = Decompose.t_linearizable_stats dcfg hist ~t in
            Printf.printf "%d-linearizable: %b\n" t ok;
            if not ok then note Exit_code.Violation;
            if stats_flag then
              Format.printf "search stats: %d nodes explored, %d memo hits@.\
                             decompose stats: %a@."
                st.Decompose.nodes st.Decompose.memo_hits Decompose.pp_stats st
          end
          else begin
            let cfg = Engine.for_spec ?node_budget:budget spec in
            let v = Engine.search cfg hist ~t in
            Printf.printf "%d-linearizable: %b\n" t v.Engine.ok;
            if not v.Engine.ok then note Exit_code.Violation;
            if stats_flag then
              Printf.printf "search stats: %d nodes explored, %d memo hits\n"
                v.Engine.nodes_explored v.Engine.memo_hits
          end
        | None -> ());
        if t_flag = None || min_t_flag || weak_flag then begin
          let r, dstats =
            if decompose then
              let r, st = Decompose.analyze ?node_budget:budget spec hist in
              (r, Some st)
            else (Report.analyze ?node_budget:budget spec hist, None)
          in
          Format.printf "%a@." Report.pp r;
          if stats_flag then begin
            Format.printf "%a@." Report.pp_stats r;
            match dstats with
            | Some st -> Format.printf "decompose stats: %a@." Decompose.pp_stats st
            | None -> ()
          end;
          if r.Report.budget_exhausted then note Exit_code.Exhausted
          else if not (Report.is_eventually_linearizable r) then
            note Exit_code.Violation
        end;
        ok_exit !code
      with Engine.Budget_exceeded ->
        (* Uniform for every checker: Weak.Budget_exceeded and
           Engine.Budget_exceeded are the same exception. *)
        Printf.eprintf "node budget (%s) exhausted before a verdict\n%!"
          (match budget with Some b -> string_of_int b | None -> "?");
        ok_exit Exit_code.Exhausted))

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"HISTORY-FILE")
  in
  let t_flag =
    Arg.(value & opt (some int) None
         & info [ "t" ] ~doc:"Check t-linearizability at this cut.")
  in
  let min_t_flag =
    Arg.(value & flag & info [ "min-t" ] ~doc:"Report the minimal cut.")
  in
  let weak_flag =
    Arg.(value & flag & info [ "weak" ] ~doc:"Check weak consistency.")
  in
  let stats_flag =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print exploration statistics (nodes, memo hits, cuts \
                   probed by the min-t search).")
  in
  let budget =
    Arg.(value & opt (some int) None
         & info [ "budget" ]
             ~doc:"Node budget: give up after this many DFS expansions.")
  in
  let decompose =
    Arg.(value & flag
         & info [ "decompose" ]
             ~doc:"Split the history into independently checked \
                   sub-histories (per-object projections, gap cuts) and \
                   compose the verdicts; bit-identical results, usually \
                   far fewer nodes on multi-object histories.")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Check a history file against a specification")
    Term.(
      ret
        (const do_check $ spec_arg $ file $ t_flag $ min_t_flag $ weak_flag
       $ stats_flag $ budget $ decompose $ trace_arg))

(* ------------------------------------------------------------------ *)
(* elin generate                                                      *)
(* ------------------------------------------------------------------ *)

let do_generate spec_name procs n_ops seed kind objs out =
  match spec_of_name spec_name with
  | Error e -> `Error (false, e)
  | Ok spec ->
    let rng = Elin_kernel.Prng.create seed in
    let spec_of_obj _ = spec in
    let hist =
      match kind with
      | "linearizable" ->
        if objs <= 1 then Gen.linearizable rng ~spec ~procs ~n_ops ()
        else Gen.mixed rng ~spec_of_obj ~objs ~procs ~n_ops ()
      | "pending" ->
        if objs <= 1 then Gen.linearizable_with_pending rng ~spec ~procs ~n_ops ()
        else Gen.mixed_with_pending rng ~spec_of_obj ~objs ~procs ~n_ops ()
      | "eventual" ->
        if objs <= 1 then
          fst
            (Gen.eventually_linearizable rng ~spec ~procs
               ~prefix_ops:(n_ops / 2)
               ~suffix_ops:(n_ops - (n_ops / 2))
               ())
        else
          let per = max 1 (n_ops / (2 * objs)) in
          fst
            (Gen.mixed_eventual rng ~spec_of_obj ~objs ~procs ~prefix_ops:per
               ~suffix_ops:per ())
      | "corrupt" -> (
        let h =
          if objs <= 1 then Gen.linearizable rng ~spec ~procs ~n_ops ()
          else Gen.mixed rng ~spec_of_obj ~objs ~procs ~n_ops ()
        in
        match Gen.corrupt rng h with Some h' -> h' | None -> h)
      | other ->
        invalid_arg
          (Printf.sprintf
             "unknown kind %S (linearizable|pending|eventual|corrupt)" other)
    in
    (match out with
    | Some path ->
      Textio.to_file path hist;
      Printf.printf "wrote %d events to %s\n" (History.length hist) path
    | None -> print_string (Textio.to_string hist));
    ok_exit Exit_code.Ok

let generate_cmd =
  let n_ops =
    Arg.(value & opt int 10 & info [ "ops"; "n" ] ~doc:"Operations to generate.")
  in
  let kind =
    Arg.(value & opt string "linearizable"
         & info [ "kind"; "k" ]
             ~doc:"One of: linearizable, pending, eventual, corrupt.")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "output"; "o" ] ~doc:"Output file (stdout if absent).")
  in
  let objs =
    Arg.(value & opt int 1
         & info [ "objs" ]
             ~doc:"Objects: >1 generates a mixed-object history (for kind \
                   eventual, each object runs its own process group).")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a history file")
    Term.(
      ret
        (const do_generate $ spec_arg $ procs_arg $ n_ops $ seed_arg $ kind
       $ objs $ out))

(* ------------------------------------------------------------------ *)
(* elin run                                                           *)
(* ------------------------------------------------------------------ *)

let impl_of_name name ~procs =
  match name with
  | "fai/cas" -> Ok (Impls.fai_from_cas (), Op.fetch_inc)
  | "fai/board" -> Ok (Impls.fai_from_board (), Op.fetch_inc)
  | "fai/ev-board" -> Ok (Impls.fai_ev_board ~k:8 (), Op.fetch_inc)
  | "fai/guarded" ->
    Ok
      ( Elin_core.Guard.wrap ~spec:(Faicounter.spec ())
          (Impls.fai_ev_board ~k:8 ()),
        Op.fetch_inc )
  | "fai/universal" ->
    Ok
      ( Elin_core.Universal.construction ~spec:(Faicounter.spec ()) ~cells:256 (),
        Op.fetch_inc )
  | "fai/universal-wf" ->
    Ok
      ( Elin_core.Universal.construction_wait_free ~spec:(Faicounter.spec ())
          ~cells:256 ~procs (),
        Op.fetch_inc )
  | "test&set/ev" -> Ok (Elin_core.Ev_testandset.impl (), Op.test_and_set)
  | "consensus/proposals" ->
    Ok (Elin_core.Ev_consensus.impl ~procs (), Op.propose 1)
  | other ->
    Error
      (Printf.sprintf
         "unknown implementation %S (fai/cas, fai/board, fai/ev-board, \
          fai/guarded, fai/universal, fai/universal-wf, test&set/ev, \
          consensus/proposals)"
         other)

let do_run impl_name procs per_proc seed verbose =
  match impl_of_name impl_name ~procs with
  | Error e -> `Error (false, e)
  | Ok (impl, op) ->
    let workloads =
      match impl_name with
      | "consensus/proposals" ->
        Array.init procs (fun p -> [ Op.propose (p mod 2) ])
      | _ -> Run.uniform_workload op ~procs ~per_proc
    in
    let out = Run.execute impl ~workloads ~sched:(Sched.random ~seed) () in
    if verbose then print_endline (History.to_string out.Run.history);
    Printf.printf
      "implementation: %s\nprocesses: %d  completed ops: %d  scheduler steps: \
       %d  max base-accesses/op: %d\n"
      impl.Impl.name procs out.Run.stats.Run.completed out.Run.stats.Run.steps
      out.Run.stats.Run.max_steps_per_op;
    let spec =
      match impl_name with
      | "test&set/ev" -> Testandset.spec ()
      | "consensus/proposals" -> Consensus_spec.spec ()
      | _ -> Faicounter.spec ()
    in
    let v = Eventual.check_spec spec out.Run.history in
    Printf.printf "linearizable: %b\n"
      (Engine.linearizable (Engine.for_spec spec) out.Run.history);
    Format.printf "eventual-linearizability verdict: %a@."
      Eventual.pp_verdict v;
    ok_exit
      (if Eventual.is_eventually_linearizable v then Exit_code.Ok
       else Exit_code.Violation)

let run_cmd =
  let impl_name =
    Arg.(value & opt string "fai/cas" & info [ "impl"; "i" ] ~doc:"Implementation.")
  in
  let per_proc =
    Arg.(value & opt int 5 & info [ "per-proc" ] ~doc:"Operations per process.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the history.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute an implementation and check its history")
    Term.(ret (const do_run $ impl_name $ procs_arg $ per_proc $ seed_arg $ verbose))

(* ------------------------------------------------------------------ *)
(* elin paradox                                                       *)
(* ------------------------------------------------------------------ *)

let do_paradox k depth =
  let check h ~t = Faic.t_linearizable h ~t in
  let impl = Impls.fai_ev_board ~k () in
  let workloads =
    Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:(2 * k + 6)
  in
  Printf.printf
    "A = %s: an eventually linearizable fetch&increment (misbehaves for its \
     first %d announcements)\n"
    impl.Impl.name k;
  match Elin_core.Stabilize.construct impl ~workloads ~depth ~check () with
  | None ->
    Printf.eprintf "construction failed (increase depth?)\n%!";
    ok_exit Exit_code.Violation
  | Some o ->
    let cert = o.Elin_core.Stabilize.certificate in
    Printf.printf
      "stable configuration certified: cut t=%d history events (%d leaves \
       explored to depth %d)\n"
      cert.Elin_core.Stabilize.cut cert.Elin_core.Stabilize.leaves_checked
      cert.Elin_core.Stabilize.extension_depth;
    Printf.printf "anchor op0 found: v0 = %d\n"
      o.Elin_core.Stabilize.anchor.Elin_core.Stabilize.v0;
    let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc:3 in
    let ok, _, stats =
      Elin_explore.Explore.for_all_histories o.Elin_core.Stabilize.derived
        ~workloads:wl ~locals:o.Elin_core.Stabilize.derived_locals
        ~max_steps:18
        (fun h -> Faic.t_linearizable h ~t:0)
    in
    Printf.printf
      "A' = %s: exhaustively model-checked LINEARIZABLE on %d schedules: %b\n"
      o.Elin_core.Stabilize.derived.Impl.name stats.Elin_explore.Explore.leaves
      ok;
    if ok then begin
      Printf.printf
        "the paradox, mechanized: the eventually linearizable implementation \
         A contained a fully linearizable implementation A' of the same \
         fetch&increment, over the same base objects.\n";
      ok_exit Exit_code.Ok
    end
    else begin
      Printf.eprintf "derived implementation not linearizable!\n%!";
      ok_exit Exit_code.Violation
    end

let paradox_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Misbehaving prefix length.") in
  let depth =
    Arg.(value & opt int 10 & info [ "depth" ] ~doc:"Stability certification depth.")
  in
  Cmd.v
    (Cmd.info "paradox"
       ~doc:"Run the Proposition 18 construction (the paper's paradox) end to end")
    Term.(ret (const do_paradox $ k $ depth))

(* ------------------------------------------------------------------ *)
(* elin valency                                                       *)
(* ------------------------------------------------------------------ *)

let valency_protocol_of_name protocol_name ~stabilize_at =
  let open Elin_valency in
  match protocol_name with
  | "naive-registers" -> Ok (Protocols.naive_registers ())
  | "cas" -> Ok (Protocols.cas ())
  | "regs+ts" -> Ok (Protocols.registers_plus_linearizable_testandset ())
  | "regs+ev-ts" ->
    Ok (Protocols.registers_plus_ev_testandset ~stabilize_at ())
  | "regs+queue" -> Ok (Protocols.registers_plus_linearizable_queue ())
  | "regs+ev-queue" ->
    Ok (Protocols.registers_plus_ev_queue ~stabilize_at ())
  | "regs+fai" -> Ok (Protocols.registers_plus_fai ())
  | other ->
    Error
      (Printf.sprintf
         "unknown protocol %S (naive-registers, cas, regs+ts, regs+ev-ts, \
          regs+queue, regs+ev-queue, regs+fai)"
         other)

let do_valency protocol_name stabilize_at depth =
  let open Elin_valency in
  match valency_protocol_of_name protocol_name ~stabilize_at with
  | Error e -> `Error (false, e)
  | Ok p ->
    let inputs = [| Value.int 0; Value.int 1 |] in
    Printf.printf "protocol: %s  (inputs 0, 1; exhaustive to depth %d)\n"
      p.Valency.name depth;
    let r = Valency.check_consensus p ~inputs ~max_steps:depth in
    Printf.printf "terminated within bound: %b\n" r.Valency.terminated;
    Printf.printf "reachable decision vectors: %s\n"
      (String.concat ", "
         (List.map
            (fun d ->
              Printf.sprintf "(%s)"
                (String.concat ","
                   (List.map Value.to_string (Array.to_list d))))
            r.Valency.decisions));
    (match r.Valency.agreement_violation with
    | Some d ->
      Printf.printf "AGREEMENT VIOLATION: p0 decides %s, p1 decides %s\n"
        (Value.to_string d.(0)) (Value.to_string d.(1))
    | None -> Printf.printf "agreement: holds on all schedules\n");
    (match r.Valency.validity_violation with
    | Some _ -> Printf.printf "VALIDITY VIOLATION\n"
    | None -> Printf.printf "validity: holds on all schedules\n");
    (match Valency.find_critical p ~inputs ~max_steps:depth with
    | Some crit ->
      Printf.printf
        "critical configuration at step %d; poised objects: %s\n"
        crit.Valency.config.Valency.steps
        (String.concat ","
           (List.map
              (fun (o, _) ->
                match o with Some o -> string_of_int o | None -> "-")
              (Array.to_list crit.Valency.moves)))
    | None -> Printf.printf "no critical configuration (protocol univalent or undetermined)\n");
    ok_exit
      (if
         r.Valency.agreement_violation <> None
         || r.Valency.validity_violation <> None
       then Exit_code.Violation
       else Exit_code.Ok)

let valency_cmd =
  let protocol =
    Arg.(value & opt string "cas"
         & info [ "protocol"; "P" ] ~doc:"Candidate consensus protocol.")
  in
  let stabilize_at =
    Arg.(value & opt int 1000
         & info [ "stabilize-at" ]
             ~doc:"Stabilization step of the eventually linearizable object.")
  in
  let depth =
    Arg.(value & opt int 30 & info [ "depth" ] ~doc:"Exploration depth bound.")
  in
  Cmd.v
    (Cmd.info "valency"
       ~doc:"Exhaustive valency analysis of a 2-process consensus protocol \
             (Proposition 15)")
    Term.(ret (const do_valency $ protocol $ stabilize_at $ depth))

(* ------------------------------------------------------------------ *)
(* elin mc                                                            *)
(* ------------------------------------------------------------------ *)

let pp_mc_stats stats =
  let open Elin_mc in
  Printf.printf "states explored: %d\n" stats.Search.states;
  Printf.printf "dedup hits: %d (hit-rate %.1f%%)  por-pruned: %d\n"
    stats.Search.dedup_hits
    (100. *. Search.dedup_rate stats)
    stats.Search.pruned;
  Printf.printf "frontier peak: %d  leaves: %d (cut %d)  levels: %d\n"
    stats.Search.frontier_peak stats.Search.leaves stats.Search.cut
    stats.Search.levels;
  Printf.printf "domains: %d  per-domain states: [%s]\n" stats.Search.domains
    (String.concat "; "
       (List.map string_of_int (Array.to_list stats.Search.per_domain)));
  Printf.printf "wall time: %.3fs\n" stats.Search.wall

(* The canonical JSON rendering of the search stats ([--json]; also
   the shape [bench/main.ml --regress] compares).  Field order is
   fixed so equal runs print byte-identically. *)
let json_of_stats stats =
  let open Elin_mc in
  let open Elin_svc.Jsonl in
  Obj
    [
      ("states", Int stats.Search.states);
      ("dedup_hits", Int stats.Search.dedup_hits);
      ("kept", Int stats.Search.kept);
      ("pruned", Int stats.Search.pruned);
      ("frontier_peak", Int stats.Search.frontier_peak);
      ("leaves", Int stats.Search.leaves);
      ("cut", Int stats.Search.cut);
      ("levels", Int stats.Search.levels);
      ("domains", Int stats.Search.domains);
      ("wall", Float stats.Search.wall);
    ]

(* Resolved mc run parameters: everything that shapes the state space
   or the search partitioning.  [identity_of_params] is the canonical
   JSON rendering — embedded in every checkpoint manifest, validated
   on resume by {!Elin_mc.Search} (byte equality), and parsed back by
   [--resume] so the workload flags need not (and must not) be
   repeated. *)
type mc_params = {
  q_impl : string option;  (* [None] = the valency workload *)
  q_protocol : string;
  q_stabilize_at : int;
  q_procs : int;
  q_per_proc : int;
  q_depth : int;
  q_engine : Elin_mc.Search.engine;
  q_domains : int;  (* resolved: >= 1, never the 0 sentinel *)
  q_dedup : bool;
  q_por : bool;
  q_symmetry : bool;
  q_hot : int;
  q_every : int;
}

let identity_of_params p =
  let open Elin_svc.Jsonl in
  to_string
    (Obj
       [
         ( "mode",
           Str (match p.q_impl with None -> "valency" | Some _ -> "impl") );
         ("impl", match p.q_impl with None -> Null | Some i -> Str i);
         ("protocol", if p.q_impl = None then Str p.q_protocol else Null);
         ( "stabilize_at",
           if p.q_impl = None then Int p.q_stabilize_at else Null );
         ("procs", Int p.q_procs);
         ("per_proc", Int p.q_per_proc);
         ("depth", Int p.q_depth);
         ("engine", Str (Elin_mc.Search.engine_to_string p.q_engine));
         ("domains", Int p.q_domains);
         ("dedup", Bool p.q_dedup);
         ("por", Bool p.q_por);
         ("symmetry", Bool p.q_symmetry);
         ("spill_hot", Int p.q_hot);
         ("checkpoint_every", Int p.q_every);
       ])

(* Inverse of [identity_of_params].  Building the record back and
   re-rendering it must round-trip byte-identically (field order is
   fixed), or the engine's manifest identity check would refuse its
   own checkpoints. *)
let params_of_identity s =
  let open Elin_svc.Jsonl in
  match of_string s with
  | exception Parse_error e ->
    Error (Printf.sprintf "manifest identity unreadable: %s" e)
  | id -> (
    match
      ( int_mem "procs" id,
        int_mem "per_proc" id,
        int_mem "depth" id,
        Option.bind (str_mem "engine" id) Elin_mc.Search.engine_of_string,
        int_mem "domains" id,
        bool_mem "dedup" id,
        bool_mem "por" id,
        bool_mem "symmetry" id,
        int_mem "spill_hot" id,
        int_mem "checkpoint_every" id )
    with
    | ( Some procs,
        Some per_proc,
        Some depth,
        Some engine,
        Some domains,
        Some dedup,
        Some por,
        Some symmetry,
        Some hot,
        Some every ) ->
      Ok
        {
          q_impl = str_mem "impl" id;
          q_protocol = Option.value (str_mem "protocol" id) ~default:"cas";
          q_stabilize_at =
            Option.value (int_mem "stabilize_at" id) ~default:1000;
          q_procs = procs;
          q_per_proc = per_proc;
          q_depth = depth;
          q_engine = engine;
          q_domains = domains;
          q_dedup = dedup;
          q_por = por;
          q_symmetry = symmetry;
          q_hot = hot;
          q_every = every;
        }
    | _ -> Error "manifest identity is missing required fields")

(* Spill-tier result fields, appended to the canonical JSON object
   only when --spill/--resume is active: [json_of_stats] itself keeps
   its shape, so committed bench baselines and [--regress] diffs are
   unaffected. *)
let spill_json_fields msp ~resume =
  let open Elin_svc.Jsonl in
  match msp with
  | None -> []
  | Some (m : Elin_mc.Mc.spill) ->
    let store =
      match m.Elin_mc.Mc.store with
      | None -> Null
      | Some s ->
        let open Elin_store.Tiered_set in
        Obj
          [
            ("segments", Int s.segments);
            ("disk_bytes", Int s.disk_bytes);
            ("spilled", Int s.spilled);
            ("hot", Int s.hot);
            ("flushes", Int s.flushes);
            ("disk_probes", Int s.disk_probes);
            ("disk_probe_hits", Int s.disk_probe_hits);
          ]
    in
    [
      ("spill", Str m.Elin_mc.Mc.dir);
      ("resumed", Bool resume);
      ( "resumed_from",
        match m.Elin_mc.Mc.resumed_from with
        | None -> Null
        | Some seq -> Int seq );
      ("store", store);
    ]

let pp_spill msp =
  match msp with
  | None -> ()
  | Some (m : Elin_mc.Mc.spill) ->
    (match m.Elin_mc.Mc.resumed_from with
    | Some seq ->
      Printf.printf "resumed from checkpoint %d in %s\n" seq m.Elin_mc.Mc.dir
    | None -> ());
    (match m.Elin_mc.Mc.store with
    | Some s ->
      let open Elin_store.Tiered_set in
      Printf.printf
        "spill: %d segments (%d bytes, %d fingerprints) under %s; hot %d; \
         flushes %d; disk probes %d (%d hits)\n"
        s.segments s.disk_bytes s.spilled m.Elin_mc.Mc.dir s.hot s.flushes
        s.disk_probes s.disk_probe_hits
    | None -> ())

let do_mc impl_name protocol_name stabilize_at procs per_proc depth engine_s
    domains no_dedup no_por symmetry json trace progress spill_dir spill_hot
    ckpt_every resume_dir crash_after =
  let open Elin_mc in
  if domains < 0 then
    `Error
      ( false,
        Printf.sprintf "--domains must be >= 0 (0 = recommended), got %d"
          domains )
  else if spill_hot < 1 then
    `Error
      (false, Printf.sprintf "--spill-hot must be >= 1, got %d" spill_hot)
  else if ckpt_every < 0 then
    `Error
      ( false,
        Printf.sprintf "--checkpoint-every must be >= 0, got %d" ckpt_every )
  else if ckpt_every > 0 && spill_dir = None && resume_dir = None then
    `Error (false, "--checkpoint-every requires --spill DIR")
  else if resume_dir <> None && spill_dir <> None then
    `Error (false, "--resume already names the spill directory; drop --spill")
  else if crash_after <> None && ckpt_every = 0 && resume_dir = None then
    `Error (false, "--crash-after-checkpoint requires --checkpoint-every")
  else if crash_after <> None && impl_name = None && resume_dir = None then
    `Error
      ( false,
        "--crash-after-checkpoint requires --impl (crash injection hooks \
         state expansion)" )
  else
    match Search.engine_of_string engine_s with
    | None ->
      `Error
        ( false,
          Printf.sprintf "--engine must be 'barrier' or 'sharded', got %s"
            engine_s )
    | Some engine ->
  (* Under [--resume DIR] every workload/search parameter is dictated
     by the newest committed manifest's identity; only the output and
     observability flags are honoured.  Any corruption here — and in
     the run itself below — is a loud exit 2, never a silent recheck
     from scratch. *)
  let params =
    match resume_dir with
    | None ->
      Ok
        {
          q_impl = impl_name;
          q_protocol = protocol_name;
          q_stabilize_at = stabilize_at;
          (* Valency runs ignore procs/per_proc/symmetry: pin them so
             the identity string is canonical. *)
          q_procs = (if impl_name = None then 2 else procs);
          q_per_proc = (if impl_name = None then 0 else per_proc);
          q_depth = depth;
          q_engine = engine;
          q_domains =
            (if domains = 0 then Domain.recommended_domain_count ()
             else domains);
          q_dedup = not no_dedup;
          q_por = not no_por;
          q_symmetry = impl_name <> None && symmetry;
          q_hot = spill_hot;
          q_every = ckpt_every;
        }
    | Some dir -> (
      try
        match Elin_store.Checkpoint.load_latest ~dir with
        | None ->
          Error
            (Printf.sprintf "--resume %s: no committed checkpoint manifest"
               dir)
        | Some m -> (
          match params_of_identity m.Elin_store.Checkpoint.identity with
          | Ok p -> Ok p
          | Error e -> Error (Printf.sprintf "--resume %s: %s" dir e))
      with Elin_store.Segment.Corrupt msg ->
        Error (Printf.sprintf "--resume %s: %s" dir msg))
  in
  match params with
  | Error msg ->
    Printf.eprintf "elin mc: %s\n%!" msg;
    ok_exit Exit_code.Usage
  | Ok p ->
  with_trace ~proc:"mc" trace @@ fun () ->
  with_progress progress @@ fun () ->
  let impl_name = p.q_impl in
  let protocol_name = p.q_protocol in
  let stabilize_at = p.q_stabilize_at in
  let procs = p.q_procs in
  let per_proc = p.q_per_proc in
  let depth = p.q_depth in
  let engine = p.q_engine in
  let domains = Some p.q_domains in
  let dedup = p.q_dedup in
  let por = p.q_por in
  let symmetry = p.q_symmetry in
  let resume = resume_dir <> None in
  let spill_dir =
    match resume_dir with Some d -> Some d | None -> spill_dir
  in
  (* --crash-after-checkpoint K: once checkpoint K commits, let ~200
     more states expand, then SIGKILL ourselves — a genuine mid-level
     crash for the resume tests.  The fuse races across domains;
     exactly one decrement observes 1. *)
  let crash_fuse = Atomic.make 0 in
  let on_checkpoint seq =
    match crash_after with
    | Some k when seq = k -> Atomic.set crash_fuse 200
    | _ -> ()
  in
  let on_state () =
    if
      crash_after <> None
      && Atomic.get crash_fuse > 0
      && Atomic.fetch_and_add crash_fuse (-1) = 1
    then Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let msp =
    Option.map
      (fun dir ->
        Mc.spill ~hot:p.q_hot ~every:p.q_every
          ~identity:(identity_of_params p) ~on_checkpoint dir)
      spill_dir
  in
  let human fmt =
    Printf.ksprintf (fun s -> if not json then print_string s) fmt
  in
  let emit_json fields =
    if json then
      print_endline (Elin_svc.Jsonl.to_string (Elin_svc.Jsonl.Obj fields))
  in
  let run () =
    match impl_name with
  | None -> (
    (* The E9 valency workload: exhaustive consensus analysis. *)
    match valency_protocol_of_name protocol_name ~stabilize_at with
    | Error e -> `Error (false, e)
    | Ok p ->
      let inputs = [| Value.int 0; Value.int 1 |] in
      human
        "mc: valency protocol %s (inputs 0, 1; exhaustive to depth %d; dedup \
         %s, por %s, engine %s)\n"
        p.Elin_valency.Valency.name depth
        (if dedup then "on" else "off")
        (if por then "on" else "off")
        (Search.engine_to_string engine);
      let r = Mc_valency.check_consensus p ~inputs ~max_steps:depth ~engine
          ?domains ~dedup ~por ?spill:msp ~resume () in
      if not json then begin
        pp_mc_stats r.Mc_valency.stats;
        pp_spill msp
      end;
      human "terminated within bound: %b\n" r.Mc_valency.terminated;
      human "reachable decision vectors: %s\n"
        (String.concat ", "
           (List.map
              (fun d ->
                Printf.sprintf "(%s)"
                  (String.concat ","
                     (List.map Value.to_string (Array.to_list d))))
              r.Mc_valency.decisions));
      (match r.Mc_valency.agreement_violation with
      | Some d ->
        human "AGREEMENT VIOLATION: p0 decides %s, p1 decides %s\n"
          (Value.to_string d.(0)) (Value.to_string d.(1))
      | None -> human "agreement: holds on all schedules\n");
      (match r.Mc_valency.validity_violation with
      | Some _ -> human "VALIDITY VIOLATION\n"
      | None -> human "validity: holds on all schedules\n");
      let open Elin_svc.Jsonl in
      let jvec d =
        Arr (List.map (fun v -> Str (Value.to_string v)) (Array.to_list d))
      in
      let jvec_opt = function None -> Null | Some d -> jvec d in
      emit_json
        ([
           ("mode", Str "valency");
           ("protocol", Str p.Elin_valency.Valency.name);
           ("depth", Int depth);
           ("engine", Str (Search.engine_to_string engine));
           ("dedup", Bool dedup);
           ("por", Bool por);
           ("terminated", Bool r.Mc_valency.terminated);
           ("decisions", Arr (List.map jvec r.Mc_valency.decisions));
           ("agreement_violation", jvec_opt r.Mc_valency.agreement_violation);
           ("validity_violation", jvec_opt r.Mc_valency.validity_violation);
           ("stats", json_of_stats r.Mc_valency.stats);
         ]
        @ spill_json_fields msp ~resume);
      ok_exit
        (if
           r.Mc_valency.agreement_violation <> None
           || r.Mc_valency.validity_violation <> None
         then Exit_code.Violation
         else Exit_code.Ok))
  | Some impl_name -> (
    match impl_of_name impl_name ~procs with
    | Error e -> `Error (false, e)
    | Ok (impl, op) ->
      let workloads =
        match impl_name with
        | "consensus/proposals" ->
          Array.init procs (fun p -> [ Op.propose (p mod 2) ])
        | _ -> Run.uniform_workload op ~procs ~per_proc
      in
      let spec =
        match impl_name with
        | "test&set/ev" -> Testandset.spec ()
        | "consensus/proposals" -> Consensus_spec.spec ()
        | _ -> Faicounter.spec ()
      in
      let cfg = Engine.for_spec spec in
      human
        "mc: %s, %d procs x %d ops, exhaustive to depth %d (dedup %s, por \
         %s, engine %s%s)\n"
        impl.Impl.name procs per_proc depth
        (if dedup then "on" else "off")
        (if por then "on" else "off")
        (Search.engine_to_string engine)
        (if symmetry then ", symmetry reduction" else "");
      let out =
        Mc.check impl ~workloads ~max_steps:depth ~engine ?domains ~dedup
          ~symmetry ~por ?spill:msp ~resume ~on_state
          (fun h -> Engine.linearizable cfg h)
      in
      if not json then begin
        pp_mc_stats out.Mc.stats;
        pp_spill msp
      end;
      (match out.Mc.counterexample with
      | None ->
        human "linearizable on every explored schedule: %b\n" out.Mc.ok
      | Some h ->
        human "NOT linearizable; lexicographically minimal counterexample:\n%s"
          (History.to_string h));
      let open Elin_svc.Jsonl in
      emit_json
        ([
           ("mode", Str "impl");
           ("impl", Str impl.Impl.name);
           ("procs", Int procs);
           ("per_proc", Int per_proc);
           ("depth", Int depth);
           ("engine", Str (Search.engine_to_string engine));
           ("dedup", Bool dedup);
           ("por", Bool por);
           ("symmetry", Bool symmetry);
           ("ok", Bool out.Mc.ok);
           ( "counterexample",
             match out.Mc.counterexample with
             | None -> Null
             | Some h -> Str (History.to_string h) );
           ("stats", json_of_stats out.Mc.stats);
         ]
        @ spill_json_fields msp ~resume);
      ok_exit (if out.Mc.ok then Exit_code.Ok else Exit_code.Violation))
  in
  (try run ()
   with Elin_store.Segment.Corrupt msg ->
     Printf.eprintf "elin mc: %s\n%!" msg;
     ok_exit Exit_code.Usage)

let mc_cmd =
  let impl_name =
    Arg.(value & opt (some string) None
         & info [ "impl"; "i" ]
             ~doc:"Model-check this implementation's execution tree \
                   (default: the valency workload instead).")
  in
  let protocol =
    Arg.(value & opt string "cas"
         & info [ "protocol"; "P" ]
             ~doc:"Consensus protocol for the valency workload.")
  in
  let stabilize_at =
    Arg.(value & opt int 1000
         & info [ "stabilize-at" ]
             ~doc:"Stabilization step of the eventually linearizable object.")
  in
  let per_proc =
    Arg.(value & opt int 1 & info [ "per-proc" ] ~doc:"Operations per process.")
  in
  let depth =
    Arg.(value & opt int 20 & info [ "depth" ] ~doc:"Exploration step bound.")
  in
  let engine =
    Arg.(value & opt string "barrier"
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:"Parallel engine: 'barrier' (legacy level-partitioned, \
                   shared striped visited set) or 'sharded' (shared-nothing: \
                   owner-partitioned visited set, SPSC handoff).  The verdict \
                   and counts are engine-independent.")
  in
  let domains =
    Arg.(value & opt int 0
         & info [ "domains" ]
             ~doc:"Parallel search domains (0 = recommended count; 1 = \
                   sequential).")
  in
  let no_dedup =
    Arg.(value & flag
         & info [ "no-dedup" ] ~doc:"Disable fingerprinted state dedup.")
  in
  let no_por =
    Arg.(value & flag
         & info [ "no-por" ]
             ~doc:"Disable sleep-set partial-order reduction (on by default; \
                   never changes the verdict, only the work done).")
  in
  let symmetry =
    Arg.(value & flag
         & info [ "symmetry" ]
             ~doc:"Quotient by process renaming (identical workloads and \
                   process-oblivious implementations only; disables POR).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the result as one canonical JSON object on stdout \
                   instead of the human-readable report.")
  in
  let progress =
    Arg.(value & opt (some float) None
         & info [ "progress" ] ~docv:"SECS"
             ~doc:"Print a live heartbeat line (states/s, frontier size, \
                   per-domain utilization) to stderr every $(docv) seconds \
                   during the run.")
  in
  let spill =
    Arg.(value & opt (some string) None
         & info [ "spill" ] ~docv:"DIR"
             ~doc:"Spill the visited set to an on-disk segment tier under \
                   $(docv) (created if missing), bounding resident \
                   fingerprints by $(b,--spill-hot).  Verdicts, counts and \
                   counterexamples are bit-identical to the all-RAM run.")
  in
  let spill_hot =
    Arg.(value & opt int (1 lsl 20)
         & info [ "spill-hot" ] ~docv:"N"
             ~doc:"Hot-tier capacity per visited-set shard, in fingerprints; \
                   a full shard seals a sorted segment to disk.")
  in
  let checkpoint_every =
    Arg.(value & opt int 0
         & info [ "checkpoint-every" ] ~docv:"N"
             ~doc:"With $(b,--spill): seal a resumable checkpoint at every \
                   $(docv)-th BFS level barrier (0 = never).  A crashed or \
                   killed run then continues with $(b,--resume) to the \
                   identical verdict and counts.")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"DIR"
             ~doc:"Resume from the newest committed checkpoint under \
                   $(docv).  The run's workload and search parameters are \
                   read back from the checkpoint manifest — they must not \
                   be repeated (workload flags are ignored).  Corrupt or \
                   mismatched state fails loudly with exit code 2.")
  in
  let crash_after =
    Arg.(value & opt (some int) None
         & info [ "crash-after-checkpoint" ] ~docv:"K"
             ~doc:"(testing) SIGKILL this process roughly 200 state \
                   expansions after checkpoint $(docv) commits — a genuine \
                   mid-level crash for the resume smoke test.")
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:"Parallel fingerprint-dedup model checking of an execution tree \
             (implementations or the Prop. 15 valency workload)")
    Term.(
      ret
        (const do_mc $ impl_name $ protocol $ stabilize_at $ procs_arg
       $ per_proc $ depth $ engine $ domains $ no_dedup $ no_por $ symmetry
       $ json $ trace_arg $ progress $ spill $ spill_hot $ checkpoint_every
       $ resume $ crash_after))

(* ------------------------------------------------------------------ *)
(* elin serafini                                                      *)
(* ------------------------------------------------------------------ *)

let do_serafini family probes =
  let table =
    match family with
    | "delayed-winner" ->
      let ts = Testandset.spec () in
      Ok
        (Serafini.family_min_ts Serafini.delayed_winner_family
           ~min_t:(Eventual.min_t (Engine.for_spec ts))
           ~probes)
    | "ev-board" ->
      let fam per_proc =
        let impl = Impls.fai_ev_board ~k:3 () in
        let wl = Run.uniform_workload Op.fetch_inc ~procs:2 ~per_proc in
        (Run.execute impl ~workloads:wl ~sched:(Sched.round_robin ()) ())
          .Run.history
      in
      Ok (Serafini.family_min_ts fam ~min_t:Faic.min_t ~probes)
    | other ->
      Error
        (Printf.sprintf "unknown family %S (delayed-winner, ev-board)" other)
  in
  match table with
  | Error e -> `Error (false, e)
  | Ok table ->
    Printf.printf "probe  min_t\n";
    List.iter
      (fun (i, t) ->
        Printf.printf "%5d  %s\n" i
          (match t with Some t -> string_of_int t | None -> "none"))
      table;
    Format.printf "verdict: %a@." Serafini.pp_verdict (Serafini.classify table);
    ok_exit Exit_code.Ok

let serafini_cmd =
  let family =
    Arg.(value & opt string "delayed-winner"
         & info [ "family"; "f" ] ~doc:"History family (delayed-winner, ev-board).")
  in
  let probes =
    Arg.(value & opt (list int) [ 1; 3; 6; 9 ]
         & info [ "probes" ] ~doc:"Family indices to tabulate.")
  in
  Cmd.v
    (Cmd.info "serafini"
       ~doc:"Compare the per-execution and uniform-bound definitions of \
             eventual linearizability on a history family (Section 2)")
    Term.(ret (const do_serafini $ family $ probes))

(* ------------------------------------------------------------------ *)
(* elin experiments                                                   *)
(* ------------------------------------------------------------------ *)

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run the experiment suite (quick versions) and print the report")
    Term.(
      ret
        (const (fun () ->
             Experiments.run_all ();
             ok_exit Exit_code.Ok)
        $ const ()))

(* ------------------------------------------------------------------ *)
(* elin batch / elin serve                                            *)
(* ------------------------------------------------------------------ *)

let domains_svc_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~doc:"Worker domains in the checking pool.")

let job_budget_arg =
  Arg.(value & opt (some int) None
       & info [ "job-budget" ]
           ~doc:"Default node budget per job (jobs may override).")

let timeout_ms_arg =
  Arg.(value & opt (some int) None
       & info [ "timeout-ms" ]
           ~doc:"Default wall-clock timeout per job, in milliseconds \
                 (jobs may override).")

let no_reuse_arg =
  Arg.(value & flag
       & info [ "no-reuse" ]
           ~doc:"Disable prepared-history reuse across jobs sharing a \
                 (spec, history) pair.")

let svc_stats_arg =
  Arg.(value & flag
       & info [ "stats" ]
           ~doc:"Include per-job wall_ms in verdicts and print a pool \
                 metrics line on stderr.  Off by default so output is \
                 byte-deterministic.")

let read_all_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

(* Graceful-shutdown signals for the serving modes: SIGINT (operator
   Ctrl-C) and SIGTERM (init systems, `kill`, CI harnesses) both
   request a stop instead of killing the process, so in-flight work
   finishes and the final metrics line is flushed.  Returns the stop
   flag and a restorer that reinstates whatever handlers were there
   before. *)
let install_stop_signals () =
  let stop_requested = Atomic.make false in
  let install signal =
    try
      Some
        ( signal,
          Sys.signal signal
            (Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)) )
    with Invalid_argument _ | Sys_error _ -> None
  in
  let saved = List.filter_map install [ Sys.sigint; Sys.sigterm ] in
  let restore () =
    List.iter
      (fun (signal, h) -> try Sys.set_signal signal h with _ -> ())
      saved
  in
  (stop_requested, restore)

(* Fold the pool-level snapshot into the obs registry (counters by
   dotted name) so the --metrics file is ONE vocabulary: engine/kernel
   counters collected live during the run plus the svc totals. *)
let mirror_svc_snapshot (s : Elin_svc.Metrics.snapshot) =
  let c name v = Obs.Metrics.Counter.add (Obs.Metrics.counter name) v in
  c "svc.submitted" s.Elin_svc.Metrics.submitted;
  c "svc.completed" s.Elin_svc.Metrics.completed;
  c "svc.pass" s.Elin_svc.Metrics.pass;
  c "svc.violations" s.Elin_svc.Metrics.violations;
  c "svc.budget_exhausted" s.Elin_svc.Metrics.budget_exhausted;
  c "svc.timed_out" s.Elin_svc.Metrics.timed_out;
  c "svc.cancelled" s.Elin_svc.Metrics.cancelled;
  c "svc.busy" s.Elin_svc.Metrics.busy;
  c "svc.bad_jobs" s.Elin_svc.Metrics.bad_jobs;
  c "svc.failed" s.Elin_svc.Metrics.failed;
  c "svc.nodes" s.Elin_svc.Metrics.nodes;
  c "svc.prepare_hits" s.Elin_svc.Metrics.prepare_hits;
  c "svc.prepare_misses" s.Elin_svc.Metrics.prepare_misses

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write a metrics snapshot of the run to $(docv) as JSONL (one \
           metric per line, sorted by name): pool totals plus live \
           engine/kernel/svc counters and latency histograms.")

(* Client mode of `elin batch`: parse lines locally (unparseable lines
   stay local bad_job verdicts, same as the pool driver), pipeline the
   good jobs to a server, and merge everything back in submission
   order.  Canonical verdict lines re-serialize byte-identically, so
   the output matches a local run against the same pool settings. *)
let batch_over_socket addr lines stats =
  let parsed = Elin_svc.Pool.parse_jobs lines in
  let jobs =
    List.filter_map (function `Job j -> Some j | `Bad _ -> None) parsed
  in
  let bad =
    List.filter_map (function `Bad v -> Some v | `Job _ -> None) parsed
  in
  let remote = Elin_net.Client.run_jobs addr jobs in
  let verdicts =
    List.sort
      (fun a b -> compare a.Elin_svc.Verdict.seq b.Elin_svc.Verdict.seq)
      (bad @ remote)
  in
  List.iter
    (fun v -> print_endline (Elin_svc.Verdict.to_line ~stats v))
    verdicts;
  verdicts

let do_batch domains job_budget timeout_ms no_reuse stats metrics_out connect
    decompose trace flight input =
  if domains < 1 then
    `Error (false, Printf.sprintf "--domains must be >= 1, got %d" domains)
  else
    with_flight flight @@ fun () ->
    with_trace ~proc:"batch" trace @@ fun () ->
    let lines =
      match input with
      | None -> read_all_lines stdin
      | Some path ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> read_all_lines ic)
    in
    match connect with
    | Some addr_s -> (
      match Elin_net.Addr.of_string addr_s with
      | Error e -> `Error (false, e)
      | Ok addr -> (
        match batch_over_socket addr lines stats with
        | verdicts -> ok_exit (Exit_code.of_verdicts verdicts)
        | exception Failure m ->
          Printf.eprintf "elin batch --connect %s: %s\n%!" addr_s m;
          ok_exit Exit_code.Usage
        | exception Unix.Unix_error (err, fn, _) ->
          Printf.eprintf "elin batch --connect %s: %s: %s\n%!" addr_s fn
            (Unix.error_message err);
          ok_exit Exit_code.Usage))
    | None ->
      if metrics_out <> None then Obs.Metrics.enable ();
      let metrics = Elin_svc.Metrics.create () in
      let run =
        if decompose then Elin_svc.Split.run_lines else Elin_svc.Pool.run_lines
      in
      let verdicts =
        run ?queue_capacity:None ?default_budget:job_budget
          ?default_timeout_ms:timeout_ms ?reuse:(Some (not no_reuse))
          ?resolve:None ~metrics ~domains lines
      in
      List.iter
        (fun v -> print_endline (Elin_svc.Verdict.to_line ~stats v))
        verdicts;
      if stats then
        Format.eprintf "%a@." Elin_svc.Metrics.pp_snapshot
          (Elin_svc.Metrics.snapshot metrics);
      (match metrics_out with
      | None -> ()
      | Some path ->
        mirror_svc_snapshot (Elin_svc.Metrics.snapshot metrics);
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Obs.Metrics.write_jsonl oc));
      ok_exit (Exit_code.of_verdicts verdicts)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"ADDR"
        ~doc:
          "Send the jobs to a running $(b,elin serve --listen) server at \
           $(docv) (unix:PATH or tcp:HOST:PORT) instead of checking \
           locally.  Pool options (--domains, --job-budget, --timeout-ms, \
           --no-reuse) are the server's business and are ignored here.")

let batch_cmd =
  let input =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"JOBS-FILE"
             ~doc:"JSONL job file; reads stdin when absent.")
  in
  let decompose =
    Arg.(value & flag
         & info [ "decompose" ]
             ~doc:"Split each multi-object job into one pool job per \
                   object and compose the verdicts (equal statuses and \
                   min_t; node counts are summed across sub-jobs).  \
                   Multi-object batches then parallelize across \
                   --domains.  Local checking only (ignored with \
                   --connect).")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run a JSONL stream of checking jobs through the worker pool \
             (or a socket server with --connect) and print one JSONL \
             verdict per job, in submission order (independent of \
             --domains)")
    Term.(
      ret
        (const do_batch $ domains_svc_arg $ job_budget_arg $ timeout_ms_arg
       $ no_reuse_arg $ svc_stats_arg $ metrics_out_arg $ connect_arg
       $ decompose $ trace_arg $ flight_arg $ input))

(* The final metrics line both serve modes flush on shutdown. *)
let print_final_metrics ?queue_depth metrics =
  Printf.eprintf "%s\n%!"
    (Elin_svc.Jsonl.to_string
       (Elin_svc.Jsonl.Obj
          [
            ("final", Elin_svc.Jsonl.Bool true);
            ( "metrics",
              Elin_svc.Metrics.snapshot_to_json
                (Elin_svc.Metrics.snapshot ?queue_depth metrics) );
          ]))

let serve_spool domains job_budget timeout_ms no_reuse stats dir once poll_ms =
  if once then begin
    let n =
      Elin_svc.Spool.scan_once ?default_budget:job_budget
        ?default_timeout_ms:timeout_ms ~reuse:(not no_reuse) ~stats ~domains
        ~dir ()
    in
    Printf.printf "processed %d job file(s)\n" n;
    ok_exit Exit_code.Ok
  end
  else begin
    Printf.printf "watching %s (poll every %dms; Ctrl-C to stop)\n%!" dir
      poll_ms;
    (* SIGINT/SIGTERM request a stop (checked between scans) instead
       of killing the process, so the metrics accumulated across every
       processed file are flushed, not dropped. *)
    let stop_requested, restore_signals = install_stop_signals () in
    let metrics = Elin_svc.Metrics.create () in
    (try
       Elin_svc.Spool.watch ?default_budget:job_budget
         ?default_timeout_ms:timeout_ms ~reuse:(not no_reuse) ~stats ~metrics
         ~poll_ms
         ~stop:(fun () -> Atomic.get stop_requested)
         ~domains ~dir ()
     with Unix.Unix_error (Unix.EINTR, _, _) -> ());
    restore_signals ();
    print_final_metrics metrics;
    ok_exit Exit_code.Ok
  end

let serve_socket domains job_budget timeout_ms no_reuse stats addr_s admission
    queue test_specs telemetry_s =
  match Elin_net.Addr.of_string addr_s with
  | Error e -> `Error (false, e)
  | Ok addr -> (
    let telemetry_addr =
      match telemetry_s with
      | None -> Ok None
      | Some s -> (
        match Elin_net.Addr.of_string s with
        | Ok a -> Ok (Some a)
        | Error e -> Error e)
    in
    match telemetry_addr with
    | Error e -> `Error (false, Printf.sprintf "--telemetry: %s" e)
    | Ok telemetry_addr -> (
      let metrics = Elin_svc.Metrics.create () in
      let resolve =
        if test_specs then Some Elin_net.Load.test_resolve else None
      in
      match
        Elin_net.Server.start ~domains ?default_budget:job_budget
          ?default_timeout_ms:timeout_ms ~reuse:(not no_reuse) ~stats ~metrics
          ~admission ~queue_capacity:queue ?resolve addr
      with
      | exception Failure m -> `Error (false, m)
      | exception Unix.Unix_error (err, fn, _) ->
        `Error
          ( false,
            Printf.sprintf "--listen %s: %s: %s" addr_s fn
              (Unix.error_message err) )
      | srv ->
        let shown =
          match (addr, Elin_net.Server.port srv) with
          | Elin_net.Addr.Tcp (h, 0), Some p ->
            Elin_net.Addr.to_string (Elin_net.Addr.Tcp (h, p))
          | _ -> Elin_net.Addr.to_string addr
        in
        Printf.printf
          "listening on %s (%d domain(s), queue %d, admission %s; Ctrl-C or \
           SIGTERM to drain)\n%!"
          shown domains queue
          (match admission with
          | Elin_net.Server.Block -> "block"
          | Elin_net.Server.Busy -> "busy");
        (* The /healthz answer: serving until a stop signal arrives,
           draining from then until the process exits — the endpoint
           outlives Server.stop so a probe can watch the flip. *)
        let draining = Atomic.make false in
        let health () =
          {
            Elin_net.Telemetry.state =
              (if Atomic.get draining then "draining" else "serving");
            queue_depth = Elin_net.Server.queue_depth srv;
            connections = Elin_net.Server.connections srv;
            workers = domains;
          }
        in
        let telemetry =
          match telemetry_addr with
          | None -> None
          | Some taddr -> (
            (* A scrape endpoint with a frozen registry would lie:
               telemetry mode turns the process-wide metrics on (the
               guarded gauges/histograms start updating); verdict
               bytes on the job socket are unaffected. *)
            Obs.Metrics.enable ();
            match Elin_net.Telemetry.start ~health taddr with
            | exception Failure m ->
              Elin_net.Server.stop srv;
              failwith (Printf.sprintf "--telemetry: %s" m)
            | exception Unix.Unix_error (err, fn, _) ->
              Elin_net.Server.stop srv;
              failwith
                (Printf.sprintf "--telemetry %s: %s: %s"
                   (Elin_net.Addr.to_string taddr)
                   fn (Unix.error_message err))
            | t ->
              let tshown =
                match (taddr, Elin_net.Telemetry.port t) with
                | Elin_net.Addr.Tcp (h, 0), Some p ->
                  Elin_net.Addr.to_string (Elin_net.Addr.Tcp (h, p))
                | _ -> Elin_net.Addr.to_string taddr
              in
              Printf.printf "telemetry on %s (/metrics /healthz)\n%!" tshown;
              Some t)
        in
        (* SIGINT/SIGTERM drain gracefully: stop accepting, answer
           every admitted job, flush outboxes, then the final metrics
           line. *)
        let stop_requested, restore_signals = install_stop_signals () in
        while not (Atomic.get stop_requested) do
          Thread.delay 0.2
        done;
        Atomic.set draining true;
        Elin_net.Server.stop srv;
        Option.iter Elin_net.Telemetry.stop telemetry;
        restore_signals ();
        print_final_metrics metrics;
        ok_exit Exit_code.Ok))

let do_serve domains job_budget timeout_ms no_reuse stats dir once poll_ms
    listen admission queue test_specs telemetry trace flight =
  if domains < 1 then
    `Error (false, Printf.sprintf "--domains must be >= 1, got %d" domains)
  else
    match (listen, dir) with
    | Some _, Some _ -> `Error (true, "--listen and --watch are exclusive")
    | None, None -> `Error (true, "one of --watch or --listen is required")
    | Some addr_s, None ->
      with_flight flight @@ fun () ->
      with_trace ~proc:"serve" trace @@ fun () ->
      serve_socket domains job_budget timeout_ms no_reuse stats addr_s
        admission queue test_specs telemetry
    | None, Some dir ->
      if telemetry <> None then
        `Error (true, "--telemetry requires --listen (socket mode)")
      else if not (Sys.file_exists dir && Sys.is_directory dir) then
        `Error (false, Printf.sprintf "--watch %s: not a directory" dir)
      else
        with_flight flight @@ fun () ->
        with_trace ~proc:"serve" trace @@ fun () ->
        serve_spool domains job_budget timeout_ms no_reuse stats dir once
          poll_ms

let serve_cmd =
  let dir =
    Arg.(value & opt (some dir) None
         & info [ "watch" ] ~docv:"DIR"
             ~doc:"Spool directory: NAME.jobs files are answered with \
                   NAME.verdicts files (written atomically).")
  in
  let once =
    Arg.(value & flag
         & info [ "once" ]
             ~doc:"Process pending job files once and exit (spool mode).")
  in
  let poll_ms =
    Arg.(value & opt int 200
         & info [ "poll-ms" ] ~doc:"Idle polling interval (spool mode).")
  in
  let listen =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve checking jobs over a socket at $(docv) (unix:PATH \
                   or tcp:HOST:PORT; tcp port 0 picks an ephemeral port).  \
                   Clients speak length-prefixed JSONL frames — see \
                   $(b,elin batch --connect) and $(b,elin load).")
  in
  let admission =
    Arg.(value
         & opt
             (enum
                [ ("block", Elin_net.Server.Block);
                  ("busy", Elin_net.Server.Busy) ])
             Elin_net.Server.Block
         & info [ "admission" ] ~docv:"POLICY"
             ~doc:"What a full job queue does to new submissions (socket \
                   mode): $(b,block) applies backpressure to the client's \
                   writes; $(b,busy) refuses immediately with a busy \
                   verdict.")
  in
  let queue =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Bounded job-queue capacity (socket mode).")
  in
  let test_specs =
    Arg.(value & flag
         & info [ "test-specs" ]
             ~doc:"Also resolve the synthetic load-mix specs \
                   (elin.load.reg, elin.poison) used by $(b,elin load); \
                   off by default.")
  in
  let telemetry =
    Arg.(value & opt (some string) None
         & info [ "telemetry" ] ~docv:"ADDR"
             ~doc:"Serve a live telemetry endpoint at $(docv) (tcp:HOST:PORT \
                   or unix:PATH; tcp port 0 picks an ephemeral port, printed \
                   at startup): GET /metrics returns the OpenMetrics text \
                   exposition of the live registry, GET /healthz returns \
                   drain state, queue depth, connections and worker count \
                   (200 while serving, 503 while draining).  No auth, no \
                   TLS — bind to loopback unless the network is trusted.  \
                   Socket mode only.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve checking jobs: from a spool directory (--watch) or over \
             a socket (--listen)")
    Term.(
      ret
        (const do_serve $ domains_svc_arg $ job_budget_arg $ timeout_ms_arg
       $ no_reuse_arg $ svc_stats_arg $ dir $ once $ poll_ms $ listen
       $ admission $ queue $ test_specs $ telemetry $ trace_arg
       $ flight_arg))

(* ------------------------------------------------------------------ *)
(* elin load                                                          *)
(* ------------------------------------------------------------------ *)

let do_load connect rate jobs seed small large poison depth budget timeout_ms
    idle_limit sweep trace flight =
  match Elin_net.Addr.of_string connect with
  | Error e -> `Error (false, e)
  | Ok addr -> (
    if rate <= 0. then `Error (false, "--rate must be > 0")
    else if jobs < 1 then `Error (false, "--jobs must be >= 1")
    else
      with_flight flight @@ fun () ->
      with_trace ~proc:"load" trace @@ fun () ->
      let cfg =
        {
          Elin_net.Load.rate;
          jobs;
          seed;
          mix = { Elin_net.Load.small; large; poison };
          large_depth = depth;
          budget;
          timeout_ms;
          idle_limit_s = idle_limit;
          (* Tracing stamps each generated job with a trace-context id
             so the server's spans stitch to the client's; without
             --trace the wire bytes stay byte-identical to pre-tracing
             runs. *)
          trace_ids = trace <> None;
        }
      in
      let rates = match sweep with [] -> [ rate ] | rs -> rs in
      match Elin_net.Load.sweep addr cfg ~rates with
      | exception Failure m ->
        Printf.eprintf "elin load: %s\n%!" m;
        ok_exit Exit_code.Usage
      | exception Unix.Unix_error (err, fn, _) ->
        Printf.eprintf "elin load: %s: %s\n%!" fn (Unix.error_message err);
        ok_exit Exit_code.Usage
      | outcomes ->
        (* stdout: the canonical JSONL series; stderr: a human table. *)
        List.iter
          (fun o ->
            print_endline
              (Elin_svc.Jsonl.to_string (Elin_net.Load.outcome_to_json o)))
          outcomes;
        Printf.eprintf
          "%10s %8s %8s %10s %10s %10s %10s   outcomes\n%!" "target/s"
          "answered" "wall_s" "ach/s" "p50_us" "p99_us" "p999_us";
        List.iter
          (fun (o : Elin_net.Load.outcome) ->
            Printf.eprintf
              "%10.1f %8d %8.2f %10.1f %10.0f %10.0f %10.0f   pass %d, \
               viol %d, busy %d, err %d, exh %d\n%!"
              o.Elin_net.Load.target_per_s o.answered o.wall_s
              o.achieved_per_s o.p50_us o.p99_us o.p999_us o.pass
              o.violations o.busy o.errors o.exhausted)
          outcomes;
        ok_exit Exit_code.Ok)

let load_cmd =
  let connect =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"Server address (unix:PATH or tcp:HOST:PORT).")
  in
  let rate =
    Arg.(value & opt float 200.
         & info [ "rate" ] ~docv:"R"
             ~doc:"Target open-loop arrival rate, jobs/second.")
  in
  let jobs =
    Arg.(value & opt int 200
         & info [ "jobs" ] ~docv:"N" ~doc:"Jobs offered per run.")
  in
  let seed =
    Arg.(value & opt int 1
         & info [ "seed" ] ~doc:"Deterministic generation seed.")
  in
  let small =
    Arg.(value & opt int 8
         & info [ "small" ] ~docv:"W"
             ~doc:"Mix weight of small (fast linearizable) jobs.")
  in
  let large =
    Arg.(value & opt int 1
         & info [ "large" ] ~docv:"W"
             ~doc:"Mix weight of large (deep unsatisfiable) jobs.")
  in
  let poison =
    Arg.(value & opt int 1
         & info [ "poison" ] ~docv:"W"
             ~doc:"Mix weight of poisoned (crashing-spec) jobs; needs a \
                   server started with --test-specs to exercise the \
                   containment path (degrades to bad_job otherwise).")
  in
  let depth =
    Arg.(value & opt int 6
         & info [ "large-depth" ] ~docv:"D"
             ~doc:"Pending-write depth of large jobs (cost grows ~ D!).")
  in
  let budget =
    Arg.(value & opt (some int) (Some 500_000)
         & info [ "job-budget" ] ~doc:"Per-job node budget on the wire.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) (Some 2_000)
         & info [ "timeout-ms" ] ~doc:"Per-job wall-clock timeout.")
  in
  let idle_limit =
    Arg.(value & opt float 60.
         & info [ "idle-limit" ] ~docv:"S"
             ~doc:"Receiver watchdog: fail the run if the server sends \
                   nothing for $(docv) seconds (resets on every byte).  \
                   Raise it for unbudgeted job mixes whose single jobs \
                   can legitimately run longer.")
  in
  let sweep =
    Arg.(value & opt (list float) []
         & info [ "sweep" ] ~docv:"R1,R2,..."
             ~doc:"Run once per listed rate (fresh connection each) \
                   instead of the single --rate: the saturation sweep.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive an elin serve --listen server with a YCSB-style \
             open-loop job mix and report achieved rate and latency \
             percentiles (JSONL on stdout, table on stderr)")
    Term.(
      ret
        (const do_load $ connect $ rate $ jobs $ seed $ small $ large
       $ poison $ depth $ budget $ timeout_ms $ idle_limit $ sweep
       $ trace_arg $ flight_arg))

(* ------------------------------------------------------------------ *)
(* elin trace                                                         *)
(* ------------------------------------------------------------------ *)

(* [elin trace lint FILE] — validate what `--trace` / `--metrics`
   wrote: every line parses, and the required keys for its kind are
   present.  Guards the committed example traces and `make
   trace-smoke` against schema drift. *)
let do_trace_lint file =
  let open Obs.Jsonl in
  let errs = ref [] and n_err = ref 0 in
  let err ctx fmt =
    Printf.ksprintf
      (fun s ->
        incr n_err;
        if !n_err <= 20 then errs := Printf.sprintf "%s: %s" ctx s :: !errs)
      fmt
  in
  let need ctx j k ty =
    match (ty, mem k j) with
    | `Int, Some (Int _) -> ()
    | `Num, Some (Int _ | Float _) -> ()
    | `Str, Some (Str _) -> ()
    | _, _ ->
      err ctx "missing %s field %S"
        (match ty with `Int -> "int" | `Num -> "numeric" | `Str -> "string")
        k
  in
  let events = ref 0 and metrics = ref 0 and metas = ref 0 in
  (* The metadata header (JSONL first line / Chrome otherData): the
     absolute t0 and process label `elin trace merge` re-aligns on. *)
  let lint_meta ctx j =
    incr metas;
    (match str_mem "meta" j with
    | Some "elin.trace" -> ()
    | Some m -> err ctx "unknown meta kind %S" m
    | None -> ());
    need ctx j "t0" `Int;
    need ctx j "proc" `Str
  in
  let lint_event ~chrome ctx j =
    incr events;
    need ctx j "name" `Str;
    need ctx j "cat" `Str;
    need ctx j "ts" (if chrome then `Num else `Int);
    need ctx j "tid" `Int;
    if chrome then need ctx j "pid" `Int;
    match str_mem "ph" j with
    | Some "X" -> need ctx j "dur" (if chrome then `Num else `Int)
    | Some "i" -> ()
    | Some p -> err ctx "unknown ph %S" p
    | None -> err ctx "missing string field \"ph\""
  in
  let lint_metric ctx j =
    incr metrics;
    need ctx j "metric" `Str;
    match str_mem "type" j with
    | Some ("counter" | "gauge") -> need ctx j "value" `Int
    | Some "histogram" ->
      need ctx j "count" `Int;
      need ctx j "sum" `Int
    | Some t -> err ctx "unknown metric type %S" t
    | None -> err ctx "missing string field \"type\""
  in
  (try
     if Filename.check_suffix file ".json" then begin
       let body =
         let ic = open_in file in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () -> really_input_string ic (in_channel_length ic))
       in
       let j = of_string body in
       (match mem "traceEvents" j with
       | Some (Arr evs) ->
         List.iteri
           (fun i ev ->
             match str_mem "ph" ev with
             | Some "M" -> () (* process_name metadata from a merge *)
             | _ ->
               lint_event ~chrome:true (Printf.sprintf "traceEvents[%d]" i) ev)
           evs
       | _ -> err file "no \"traceEvents\" array");
       match mem "otherData" j with
       | Some od -> lint_meta (file ^ ":otherData") od
       | None -> ()
     end
     else
       let ic = open_in file in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           let lineno = ref 0 in
           try
             while true do
               let line = input_line ic in
               incr lineno;
               if String.trim line <> "" then begin
                 let ctx = Printf.sprintf "%s:%d" file !lineno in
                 match of_string line with
                 | j when mem "metric" j <> None -> lint_metric ctx j
                 | j when mem "meta" j <> None -> lint_meta ctx j
                 | j -> lint_event ~chrome:false ctx j
                 | exception Parse_error m -> err ctx "parse error: %s" m
               end
             done
           with End_of_file -> ())
   with Sys_error m -> err file "%s" m);
  if !n_err = 0 then begin
    Printf.printf "%s: ok (%d events, %d metrics%s)\n" file !events !metrics
      (if !metas > 0 then Printf.sprintf ", %d meta" !metas else "");
    ok_exit Exit_code.Ok
  end
  else begin
    List.iter (Printf.eprintf "%s\n") (List.rev !errs);
    if !n_err > 20 then Printf.eprintf "... and %d more\n" (!n_err - 20);
    Printf.eprintf "%s: %d lint error(s)\n%!" file !n_err;
    ok_exit Exit_code.Violation
  end

let trace_lint_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE-FILE")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Validate a trace (.jsonl or Chrome .json) or metrics JSONL \
             file: every line parses and carries the schema's required keys")
    Term.(ret (const do_trace_lint $ file))

(* The analysis subcommands share a loader: every positional argument
   is a trace file in either export format. *)
let load_trace_files files k =
  let rec go acc = function
    | [] -> k (List.rev acc)
    | f :: rest -> (
      match Obs.Trace_tools.load f with
      | Ok t -> go (t :: acc) rest
      | Error m ->
        Printf.eprintf "elin trace: %s\n%!" m;
        ok_exit Exit_code.Usage)
  in
  go [] files

let do_trace_merge files =
  load_trace_files files @@ fun loaded ->
  match Obs.Trace_tools.merge loaded with
  | Ok json ->
    print_endline (Obs.Jsonl.to_string json);
    ok_exit Exit_code.Ok
  | Error m ->
    Printf.eprintf "elin trace merge: %s\n%!" m;
    ok_exit Exit_code.Usage

let do_trace_report files =
  load_trace_files files @@ fun loaded ->
  let evs = List.concat_map (fun f -> f.Obs.Trace_tools.evs) loaded in
  if evs = [] then begin
    Printf.eprintf "elin trace report: no events in %s\n%!"
      (String.concat ", " files);
    ok_exit Exit_code.Usage
  end
  else begin
    print_string (Obs.Trace_tools.report evs);
    ok_exit Exit_code.Ok
  end

let do_trace_flame files =
  load_trace_files files @@ fun loaded ->
  print_string (Obs.Trace_tools.flame loaded);
  ok_exit Exit_code.Ok

let trace_files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE-FILE")

let trace_merge_cmd =
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge one trace file per process (client + server, either \
             export format) into a single Perfetto-loadable Chrome JSON on \
             stdout, re-aligned on each file's absolute t0.  Fails if any \
             input predates the t0 metadata.")
    Term.(ret (const do_trace_merge $ trace_files_arg))

let trace_report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Analyze trace file(s): per-phase span duration stats, per-job \
             client = network + queue + check + other attribution (keyed on \
             the propagated trace id), aggregate quantiles, and the \
             critical path of the slowest job.")
    Term.(ret (const do_trace_report $ trace_files_arg))

let trace_flame_cmd =
  Cmd.v
    (Cmd.info "flame"
       ~doc:"Render trace file(s) as collapsed stacks (one \
             \"proc;a;b;c <self_us>\" line per stack) for flamegraph.pl or \
             speedscope.  Spans nest by time containment per thread lane.")
    Term.(ret (const do_trace_flame $ trace_files_arg))

let trace_cmd =
  Cmd.group
    (Cmd.info "trace" ~doc:"Utilities for recorded traces and metrics files")
    [ trace_lint_cmd; trace_merge_cmd; trace_report_cmd; trace_flame_cmd ]

(* ------------------------------------------------------------------ *)
(* elin probe                                                         *)
(* ------------------------------------------------------------------ *)

(* One-shot HTTP GET against a --telemetry endpoint — the curl the CI
   image doesn't have.  Body goes to stdout; a non-200 status (or an
   --openmetrics validation failure) exits 1 so smoke scripts can gate
   on it, and --expect STATUS inverts that for drain probes. *)
let do_probe addr_s path openmetrics expect =
  match Elin_net.Addr.of_string addr_s with
  | Error e -> `Error (false, e)
  | Ok addr -> (
    match Elin_net.Telemetry.get addr path with
    | Error m ->
      Printf.eprintf "elin probe: %s\n%!" m;
      ok_exit Exit_code.Usage
    | Ok (status, body) ->
      print_string body;
      if body <> "" && body.[String.length body - 1] <> '\n' then
        print_newline ();
      let want = Option.value ~default:200 expect in
      if status <> want then begin
        Printf.eprintf "elin probe: %s: status %d (want %d)\n%!" path status
          want;
        ok_exit Exit_code.Violation
      end
      else if openmetrics then (
        match Obs.Openmetrics.validate body with
        | Ok () -> ok_exit Exit_code.Ok
        | Error m ->
          Printf.eprintf "elin probe: %s\n%!" m;
          ok_exit Exit_code.Violation)
      else ok_exit Exit_code.Ok)

let probe_cmd =
  let addr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR")
  in
  let path =
    Arg.(value & pos 1 string "/metrics" & info [] ~docv:"PATH")
  in
  let openmetrics =
    Arg.(value & flag
         & info [ "openmetrics" ]
             ~doc:"Additionally validate the body as OpenMetrics text \
                   exposition (structure + `# EOF` terminator).")
  in
  let expect =
    Arg.(value & opt (some int) None
         & info [ "expect" ] ~docv:"STATUS"
             ~doc:"Expected HTTP status (default 200); anything else \
                   exits 1.")
  in
  Cmd.v
    (Cmd.info "probe"
       ~doc:"HTTP GET $(i,PATH) (default /metrics) from an \
             $(b,elin serve --telemetry) endpoint: body on stdout, exit 1 \
             on unexpected status or failed --openmetrics validation")
    Term.(ret (const do_probe $ addr $ path $ openmetrics $ expect))

(* ------------------------------------------------------------------ *)

let main =
  Cmd.group
    (Cmd.info "elin" ~version:"1.0.0"
       ~doc:
         "Eventual linearizability in shared memory — executable reproduction \
          of Guerraoui & Ruppert, PODC 2014")
    [ check_cmd; generate_cmd; run_cmd; paradox_cmd; valency_cmd; mc_cmd;
      serafini_cmd; experiments_cmd; batch_cmd; serve_cmd; load_cmd;
      trace_cmd; probe_cmd ]

(* The uniform exit-code policy: term values ARE the exit codes;
   cmdliner-level usage/parse problems map to Exit_code.Usage. *)
let () =
  exit
    (match Cmd.eval_value main with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term) -> Exit_code.to_int Exit_code.Usage
    | Error `Exn -> 125)

(* Decomposed checking: split a history into independently checkable
   sub-histories and compose the verdicts exactly.

   Two cuts, both proved sound in DESIGN.md §15:

   - Per-object projection (Lemmas 7–8 + the interval-order merge of
     Herlihy & Wing, under Hamza's totality condition).  An event at
     global index g survives the removal of the first t events iff its
     projection survives the removal of the first t_o(t) events of
     H|o, where t_o(t) counts events of object o among the first t of
     H; hence H is t-linearizable iff every H|o is t_o(t)-linearizable
     and [Locality.compose_min_t] is *exact*, not just the Lemma 7
     upper bound.  Weak consistency decomposes per operation: for
     total types, required operations on other objects never
     constrain the target's justification, so the per-object check of
     each completed operation in global order finds the identical
     first violator.

   - Gap cuts, only at t = 0: indices where no operation is open split
     a sub-history into segments such that every linearization is a
     concatenation of per-segment linearizations.  Segments are
     threaded with the *set* of reachable boundary states
     ([Engine.final_states]), which keeps the composition exact even
     for nondeterministic placements of pending operations; the set is
     capped at [state_cap], falling back to the monolithic check.
     For t > 0 the cut-forgiven operations may float across gap
     boundaries, so gaps are not used there.

   Sub-checks run under [`Smart] engine order with a failure-hint
   array threaded through the gallop.  Budget semantics match the
   monolithic path: [node_budget] bounds each engine run. *)

open Elin_spec
open Elin_history
module Trace = Elin_obs.Trace
module Jsonl = Elin_obs.Jsonl

type config = {
  spec_of_obj : int -> Spec.t;
  node_budget : int option;
  poll : (unit -> unit) option;
}

let config ?node_budget ?poll spec_of_obj = { spec_of_obj; node_budget; poll }
let for_spec ?node_budget ?poll spec = config ?node_budget ?poll (fun _ -> spec)

let engine_cfg dcfg =
  Engine.config ?node_budget:dcfg.node_budget ?poll:dcfg.poll ~order:`Smart
    dcfg.spec_of_obj

let weak_cfg dcfg =
  Weak.config ?node_budget:dcfg.node_budget ?poll:dcfg.poll dcfg.spec_of_obj

type stats = {
  objects : int;        (* per-object sub-histories *)
  gap_segments : int;   (* segments checked across all gap-cut probes *)
  gap_fallbacks : int;  (* gap compositions abandoned (state-set cap) *)
  cuts_probed : int;
  nodes : int;
  memo_hits : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "objects=%d gap_segments=%d gap_fallbacks=%d cuts=%d nodes=%d memo_hits=%d"
    s.objects s.gap_segments s.gap_fallbacks s.cuts_probed s.nodes s.memo_hits

(* Mutable accumulator threaded through every sub-check. *)
type acc = {
  mutable a_objects : int;
  mutable a_segments : int;
  mutable a_fallbacks : int;
  mutable a_cuts : int;
  mutable a_nodes : int;
  mutable a_memo : int;
}

let acc () =
  {
    a_objects = 0;
    a_segments = 0;
    a_fallbacks = 0;
    a_cuts = 0;
    a_nodes = 0;
    a_memo = 0;
  }

let note a (v : Engine.verdict) =
  a.a_nodes <- a.a_nodes + v.Engine.nodes_explored;
  a.a_memo <- a.a_memo + v.Engine.memo_hits

let stats_of a =
  {
    objects = a.a_objects;
    gap_segments = a.a_segments;
    gap_fallbacks = a.a_fallbacks;
    cuts_probed = a.a_cuts;
    nodes = a.a_nodes;
    memo_hits = a.a_memo;
  }

let search_stats_of a : Eventual.search_stats =
  { cuts_probed = a.a_cuts; nodes = a.a_nodes; memo_hits = a.a_memo }

(* ------------------------------------------------------------------ *)
(* Gap cut at t = 0                                                    *)

(* Event indices 0 < g < length with no operation open before [g]. *)
let gap_points h =
  let len = History.length h in
  let open_ops = ref 0 in
  let gaps = ref [] in
  List.iteri
    (fun i (e : Event.t) ->
      (match e.Event.payload with
      | Event.Invoke _ -> incr open_ops
      | Event.Respond _ -> decr open_ops);
      if !open_ops = 0 && i + 1 < len then gaps := (i + 1) :: !gaps)
    (History.events h);
  List.rev !gaps

let segments h gaps =
  let evs = History.events_array h in
  let len = Array.length evs in
  let rec slice lo = function
    | [] -> if lo >= len then [] else [ (lo, len) ]
    | hi :: rest -> (lo, hi) :: slice hi rest
  in
  List.map
    (fun (lo, hi) -> History.of_events (Array.to_list (Array.sub evs lo (hi - lo))))
    (slice 0 gaps)

(* Boundary-state sets larger than this abort the gap composition. *)
let state_cap = 32

exception Fallback

(* 0-linearizability of a single-object sub-history via its gap
   segments.  Exact: segment i+1 is explored from every state segment
   i can legally end in.  Raises [Fallback] when there are no gaps
   (nothing to win) or the state set exceeds [state_cap]. *)
let check0_gaps ecfg a h q0 =
  match gap_points h with
  | [] -> raise_notrace Fallback
  | gaps -> (
      let segs = segments h gaps in
      a.a_segments <- a.a_segments + List.length segs;
      let rec go states = function
        | [] -> true (* unreachable: segments are non-empty *)
        | [ last ] ->
            let p = Engine.prepare ecfg last in
            List.exists
              (fun q ->
                let v = Engine.check_at ~init:[| q |] p ~t:0 in
                note a v;
                v.Engine.ok)
              states
        | seg :: rest ->
            let p = Engine.prepare ecfg seg in
            let nexts =
              List.concat_map
                (fun q ->
                  let fs, v = Engine.final_states ~init:[| q |] p in
                  note a v;
                  List.map (fun s -> s.(0)) fs)
                states
            in
            let nexts = List.sort_uniq Value.compare nexts in
            if nexts = [] then false
            else if List.length nexts > state_cap then raise_notrace Fallback
            else go nexts rest
      in
      go [ q0 ] segs)

(* ------------------------------------------------------------------ *)
(* Per-object liveness                                                 *)

(* t_o(t): events of the projected object among the first [t] events
   of the parent, via the ascending projection index map. *)
let sub_cut imap ~t =
  let n = Array.length imap in
  let rec go i = if i < n && imap.(i) < t then go (i + 1) else i in
  go 0

(* Decide t-linearizability of one single-object sub-history, with
   gap cuts at t = 0 and the hint-biased smart order elsewhere. *)
let check_sub ecfg a ~prepared ~hint ~q0 ho ~t =
  a.a_cuts <- a.a_cuts + 1;
  if t = 0 then
    match check0_gaps ecfg a ho q0 with
    | ok -> ok
    | exception Fallback ->
        a.a_fallbacks <- a.a_fallbacks + 1;
        let v = Engine.check_at ~hint prepared ~t:0 in
        note a v;
        v.Engine.ok
  else begin
    let v = Engine.check_at ~hint prepared ~t in
    note a v;
    v.Engine.ok
  end

let min_t_sub dcfg ecfg a ho =
  let prepared = Engine.prepare ecfg ho in
  let hint = Array.make (max 1 (History.n_ops ho)) 0 in
  let q0 =
    match History.objs ho with
    | [ o ] -> Spec.initial (dcfg.spec_of_obj o)
    | _ -> Value.unit (* empty projection: no gap path taken *)
  in
  Eventual.min_t_search
    (fun t -> check_sub ecfg a ~prepared ~hint ~q0 ho ~t)
    ~len:(History.length ho)

(* Out of line and behind [Trace.on]: the sub-check loops call into
   the hot engine, and growing their bodies with argument construction
   measurably perturbs code layout around the search. *)
let[@inline never] sub_span ts o args =
  Trace.complete ~cat:"check" ~ts "decompose.sub"
    ~args:(("obj", Jsonl.Str (Printf.sprintf "o%d" o)) :: args)

let per_object_min_t_acc dcfg a h =
  let ecfg = engine_cfg dcfg in
  List.map
    (fun o ->
      a.a_objects <- a.a_objects + 1;
      let span_ts = Trace.begin_ns () in
      let ho = History.proj_obj h o in
      let mt = min_t_sub dcfg ecfg a ho in
      if Trace.on () then
        sub_span span_ts o [ ("events", Jsonl.Int (History.length ho)) ];
      (o, mt))
    (History.objs h)

let min_t_stats dcfg h =
  let a = acc () in
  let per_obj = per_object_min_t_acc dcfg a h in
  (Locality.compose_min_t h per_obj, search_stats_of a, stats_of a)

let min_t dcfg h =
  let mt, _, _ = min_t_stats dcfg h in
  mt

let t_linearizable_stats dcfg h ~t =
  let a = acc () in
  let ecfg = engine_cfg dcfg in
  let ok =
    List.for_all
      (fun o ->
        a.a_objects <- a.a_objects + 1;
        let span_ts = Trace.begin_ns () in
        let ho = History.proj_obj h o in
        let t_o = sub_cut (History.index_map_obj h o) ~t in
        let prepared = Engine.prepare ecfg ho in
        let hint = Array.make (max 1 (History.n_ops ho)) 0 in
        let q0 = Spec.initial (dcfg.spec_of_obj o) in
        let ok = check_sub ecfg a ~prepared ~hint ~q0 ho ~t:t_o in
        if Trace.on () then
          sub_span span_ts o
            [ ("t_o", Jsonl.Int t_o); ("ok", Jsonl.Bool ok) ];
        ok)
      (History.objs h)
  in
  (ok, stats_of a)

let t_linearizable dcfg h ~t = fst (t_linearizable_stats dcfg h ~t)
let linearizable dcfg h = t_linearizable dcfg h ~t:0

(* ------------------------------------------------------------------ *)
(* Weak consistency                                                    *)

(* Check each completed operation of [h], in global operation order,
   against its object's projection (identical first violator — see the
   module header). *)
let weak_check dcfg h =
  let wcfg = weak_cfg dcfg in
  let tbl = Hashtbl.create 8 in
  (* object -> (projection, global op id -> projected op) *)
  let projection o =
    match Hashtbl.find_opt tbl o with
    | Some x -> x
    | None ->
        let ho = History.proj_obj h o in
        let map = Hashtbl.create 16 in
        List.iter2
          (fun (g : Operation.t) (l : Operation.t) ->
            Hashtbl.replace map g.Operation.id l)
          (List.filter (fun (op : Operation.t) -> op.Operation.obj = o) (History.ops h))
          (History.ops ho);
        Hashtbl.replace tbl o (ho, map);
        (ho, map)
  in
  let rec go = function
    | [] -> Ok ()
    | (op : Operation.t) :: rest ->
        let ho, map = projection op.Operation.obj in
        let lop = Hashtbl.find map op.Operation.id in
        if Weak.op_ok wcfg ho lop then go rest else Error op
  in
  go (History.complete_ops h)

let is_weakly_consistent dcfg h =
  match weak_check dcfg h with Ok () -> true | Error _ -> false

let check dcfg h : Eventual.verdict =
  {
    weakly_consistent = is_weakly_consistent dcfg h;
    min_t = min_t dcfg h;
  }

(* ------------------------------------------------------------------ *)
(* Full report (decomposed drop-in for [Report.analyze])               *)

let analyze ?node_budget ?poll spec h =
  let dcfg = for_spec ?node_budget ?poll spec in
  let a = acc () in
  let exhausted = ref false in
  let guard ~absent f =
    try f () with Engine.Budget_exceeded ->
      exhausted := true;
      absent
  in
  let min_t =
    guard ~absent:None (fun () ->
        Locality.compose_min_t h (per_object_min_t_acc dcfg a h))
  in
  let search = if !exhausted then None else Some (search_stats_of a) in
  let weak_result =
    guard ~absent:None (fun () -> Some (weak_check dcfg h))
  in
  let witness =
    (* Monolithic default-order witness at the composed bound, so the
       rendered report is bit-identical to [Report.analyze]. *)
    guard ~absent:None (fun () ->
        match min_t with
        | None -> None
        | Some t ->
            let mono = Engine.for_spec ?node_budget ?poll spec in
            Engine.witness_at (Engine.prepare mono h) ~t)
  in
  let report : Report.t =
    {
      events = History.length h;
      operations = History.n_ops h;
      complete = List.length (History.complete_ops h);
      pending = List.length (History.pending_ops h);
      procs = List.length (History.procs h);
      objs = List.length (History.objs h);
      concurrency = Report.concurrency_of h;
      linearizable = (match min_t with Some 0 -> true | _ -> false);
      weakly_consistent =
        (match weak_result with Some (Ok ()) -> true | _ -> false);
      violating_op =
        (match weak_result with Some (Error op) -> Some op | _ -> None);
      min_t;
      witness;
      search;
      budget_exhausted = !exhausted;
    }
  in
  (report, stats_of a)

(** Decomposed checking: split a history into independently checkable
    sub-histories and compose the verdicts {e exactly}.

    Two cuts (soundness arguments in DESIGN.md §15):

    - {b Per-object projection} (Lemmas 7–8; Hamza's totality
      condition).  An event survives removal of the first [t] events
      of H iff its projection survives removal of the first [t_o(t)]
      events of H|o, where [t_o(t)] counts events of object [o] among
      the first [t] of H; by the Herlihy–Wing interval-order merge
      this holds in both directions, so [Locality.compose_min_t] over
      the per-object bounds equals the monolithic [min_t] — it is not
      merely the Lemma 7 upper bound.  Weak consistency likewise
      decomposes per completed operation, preserving the identity of
      the first violator.

    - {b Gap cuts at t = 0}: event indices where no operation is open
      split a sub-history into segments whose linearizations
      concatenate.  Segments are threaded with the full {e set} of
      reachable boundary states ({!Engine.final_states}), capped at an
      internal bound with monolithic fallback.  Gaps are unsound for
      [t > 0] (cut-forgiven operations may cross gap boundaries), so
      they serve only the [t = 0] probe of the gallop.

    Sub-checks run under [`Smart] engine order with a failure-hint
    array threaded through each sub-history's gallop.  [node_budget]
    bounds each engine run, as in the monolithic path; verdicts,
    [min_t], and first violators are bit-identical to the monolithic
    checkers whenever neither path exhausts its budget. *)

open Elin_spec
open Elin_history

type config

val config :
  ?node_budget:int -> ?poll:(unit -> unit) -> (int -> Spec.t) -> config

val for_spec : ?node_budget:int -> ?poll:(unit -> unit) -> Spec.t -> config

(** Decomposition/exploration statistics accumulated across every
    sub-check of one call. *)
type stats = {
  objects : int;        (** per-object sub-histories checked *)
  gap_segments : int;   (** segments checked across all gap-cut probes *)
  gap_fallbacks : int;  (** gap compositions abandoned (state-set cap) *)
  cuts_probed : int;
  nodes : int;
  memo_hits : int;
}

val pp_stats : Format.formatter -> stats -> unit

(** [sub_cut imap ~t] — the projected cut t_o(t): how many events of
    the projection (whose [History.index_map_obj] is [imap]) fall
    among the first [t] events of the parent history.  H is
    t-linearizable iff every projection is [sub_cut imap ~t]-
    linearizable (the svc splitter maps [T_lin] jobs through this). *)
val sub_cut : int array -> t:int -> int

val t_linearizable_stats : config -> History.t -> t:int -> bool * stats
val t_linearizable : config -> History.t -> t:int -> bool
val linearizable : config -> History.t -> bool

(** [min_t_stats cfg h] — the composed minimal stabilization bound,
    equal to [Eventual.min_t] on the whole history, plus search
    statistics in both shapes. *)
val min_t_stats :
  config -> History.t -> int option * Eventual.search_stats * stats

val min_t : config -> History.t -> int option

(** [weak_check cfg h] — first violating operation of [h] (the {e
    global} operation, identical to [Weak.check]), decided per-object. *)
val weak_check : config -> History.t -> (unit, Operation.t) result

val is_weakly_consistent : config -> History.t -> bool

(** Eventual-linearizability verdict, equal to [Eventual.check]. *)
val check : config -> History.t -> Eventual.verdict

(** Decomposed drop-in for {!Report.analyze}: the returned report
    renders bit-identically (the witness is reconstructed by the
    default-order monolithic engine at the composed bound) except for
    the [search] statistics, which count the decomposed exploration. *)
val analyze :
  ?node_budget:int ->
  ?poll:(unit -> unit) ->
  Spec.t ->
  History.t ->
  Report.t * stats

(** The generic t-linearization search engine.

    Decides Definition 2 of the paper for finite histories over any
    finite-nondeterminism specs: is there a legal sequential history S
    such that

    - every operation invoked in S is invoked in H,
    - every operation completed in H is completed in S,
    - if op1's response precedes op2's invocation and both events
      survive the removal of the first [t] events, and op2 is in S,
      then op1 precedes op2 in S, and
    - every operation whose response survives the removal keeps its
      response in S?

    The search is a Wing–Gong-style DFS over "next operation of S"
    choices, with failure memoization keyed on (set of operations
    already placed, object-state vector).  Operations completed within
    the first [t] events may be reordered arbitrarily and may change
    responses; pending operations may be included or dropped.

    {2 Hot-path structure}

    A single parameterized DFS core ([run]) serves both {!search} and
    {!witness}, so budget and memoization semantics cannot diverge
    between the two (they had: witness used to ignore both).  The
    per-history structures that do not depend on the cut — operation
    array, object slots, initial spec states — are built once by
    {!prepare} and reused across every cut [Eventual.min_t] probes;
    only the cut-dependent [fixed_resp]/predecessor tables are rebuilt
    per cut.  Readiness ("all real-time predecessors placed") is
    tracked incrementally with predecessor counts and a forward
    adjacency, replacing a per-candidate scan of predecessor lists at
    every DFS node.

    Multi-object histories are handled directly (a sequential history
    is legal iff each per-object projection is legal, cf. [11]), which
    the locality experiments (Lemma 7) exploit. *)

open Elin_kernel
open Elin_spec
open Elin_history

type config = {
  (* Spec of each object appearing in the history. *)
  spec_of_obj : int -> Spec.t;
  (* Give up after this many DFS node expansions (None = no budget).
     Exceeding the budget raises [Budget_exceeded]. *)
  node_budget : int option;
  (* Failure memoization on (placed set, state vector); disabling it
     exists only for the ablation benchmark. *)
  memoize : bool;
  (* Cooperative hook run every [Budget.poll_interval] DFS expansions
     (see [Budget.counter]); the serving layer's wall-clock timeouts
     and job cancellation raise from here. *)
  poll : (unit -> unit) option;
}

exception Budget_exceeded = Budget.Exceeded

let config ?node_budget ?(memoize = true) ?poll spec_of_obj =
  { spec_of_obj; node_budget; memoize; poll }

(** One-object convenience. *)
let for_spec ?node_budget ?memoize ?poll spec =
  config ?node_budget ?memoize ?poll (fun _ -> spec)

type verdict = { ok : bool; nodes_explored : int; memo_hits : int }

(* ------------------------------------------------------------------ *)
(* Prepared histories: cut-independent structures                     *)
(* ------------------------------------------------------------------ *)

type prepared = {
  cfg : config;
  len : int;                    (* history length in events *)
  n : int;                      (* operations *)
  ops : Operation.t array;      (* indexed by operation id *)
  specs : Spec.t array;         (* per object slot *)
  slot : int array;             (* operation id -> object slot *)
  init_states : Value.t array;  (* per object slot *)
  completed : bool array;
  n_completed : int;
}

(* Per-run observability.  [run]/[prepare] are per-cut entry points —
   a few calls per job, not per-node — so the counter adds live here
   unguarded; the per-node work is already aggregated in
   [nodes_explored]/[memo_hits] and folded in at the end. *)
module Obs = Elin_obs

let m_prepares = Obs.Metrics.counter "engine.prepares"
let m_runs = Obs.Metrics.counter "engine.runs"
let m_nodes = Obs.Metrics.counter "engine.nodes"
let m_memo_hits = Obs.Metrics.counter "engine.memo_hits"

(** [prepare cfg h] — build the cut-independent search structures once;
    {!check_at} / {!witness_at} then decide any cut against them. *)
let prepare cfg h =
  let ts = Obs.Trace.begin_ns () in
  let ops = History.ops_array h in
  let objs = Array.of_list (History.objs h) in
  let obj_slot =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i o -> Hashtbl.replace tbl o i) objs;
    fun o -> Hashtbl.find tbl o
  in
  let completed = Array.map Operation.is_complete ops in
  let p =
    {
      cfg;
      len = History.length h;
      n = Array.length ops;
      ops;
      specs = Array.map cfg.spec_of_obj objs;
      slot = Array.map (fun (o : Operation.t) -> obj_slot o.Operation.obj) ops;
      init_states = Array.map (fun o -> Spec.initial (cfg.spec_of_obj o)) objs;
      completed;
      n_completed =
        Array.fold_left (fun acc c -> acc + Bool.to_int c) 0 completed;
    }
  in
  if Obs.Metrics.on () then Obs.Metrics.Counter.incr m_prepares;
  if Obs.Trace.on () then
    Obs.Trace.complete ~cat:"engine" ~ts "engine.prepare"
      ~args:[ ("ops", Obs.Jsonl.Int p.n) ];
  p

let history_length p = p.len

(** [rebudget p ~node_budget ~poll] — the same prepared history with
    the per-run budget accounting replaced: the serving layer's
    prepared-reuse hook.  One [prepare] (shared, read-only — each run
    builds its own cut tables, memo, and state vector, so concurrent
    runs against one [prepared] are safe) serves jobs with different
    budgets, deadlines, and cancellation hooks. *)
let rebudget p ~node_budget ~poll =
  { p with cfg = { p.cfg with node_budget; poll } }

(* Cut-dependent tables.  At cut [t], op j is a real-time predecessor
   of op i iff j's response index r_j and i's invocation index both
   survive the cut (>= t) and r_j < inv_i.  We store predecessor
   COUNTS ([n_preds]) plus the forward adjacency ([succs]), so the DFS
   maintains the ready set incrementally — O(out-degree) bookkeeping
   per placement and an O(1) readiness test per candidate — instead of
   re-running [List.for_all] over predecessor lists for every
   candidate at every node. *)
let cut_tables p ~t =
  let n = p.n and ops = p.ops in
  (* Response constraint: Some r if the response event index >= t. *)
  let fixed_resp =
    Array.map
      (fun (o : Operation.t) ->
        match o.Operation.resp with
        | Some (v, ri) when ri >= t -> Some v
        | Some _ | None -> None)
      ops
  in
  let n_preds = Array.make n 0 in
  let succs = Array.make n [||] in
  Array.iter
    (fun (oj : Operation.t) ->
      match oj.Operation.resp with
      | Some (_, rj) when rj >= t ->
        let out = ref [] in
        for i = n - 1 downto 0 do
          let oi = ops.(i) in
          if oi.Operation.inv >= t && rj < oi.Operation.inv then begin
            n_preds.(i) <- n_preds.(i) + 1;
            out := i :: !out
          end
        done;
        succs.(oj.Operation.id) <- Array.of_list !out
      | Some _ | None -> ())
    ops;
  (fixed_resp, n_preds, succs)

(* ------------------------------------------------------------------ *)
(* The shared DFS core                                                *)
(* ------------------------------------------------------------------ *)

(* [run p ~t ~trace] — the one DFS behind search AND witness.  When
   [trace] is given, it accumulates the (operation, response) choices
   of the current branch (reversed); on success it holds the
   linearization.  Budget and memoization apply identically in both
   modes. *)
let run p ~t ~trace =
  let span_ts = Obs.Trace.begin_ns () in
  let { cfg; n; ops; specs; slot; init_states; completed; n_completed; _ } =
    p
  in
  let fixed_resp, n_preds, succs = cut_tables p ~t in
  (* missing.(i): i's real-time predecessors not yet placed; the ready
     set is { i | not placed, missing.(i) = 0 }.  [cut_tables] is
     fresh per run, so we mutate [n_preds] in place. *)
  let missing = n_preds in
  let budget = Budget.counter ?limit:cfg.node_budget ?poll:cfg.poll () in
  let memo_hits = ref 0 in
  let memo = Memo_key.Memo.create 1024 in
  (* One state vector, mutated in place and restored on backtrack; the
     memo snapshots it ([Array.copy]) only when inserting a failure, so
     the hot path allocates nothing per transition. *)
  let states = Array.copy init_states in
  (* Memo lookahead: a child whose (placed set, state vector) failure
     is already memoized is pruned {e before} expansion, not bumped and
     re-entered — memoized children cost one table lookup, not a DFS
     node.  Lookups read the live [states]; [Memo_key.Key.equal]
     compares contents. *)
  let memoized placed =
    cfg.memoize && Memo_key.Memo.mem memo (placed, states)
  in
  let rec dfs placed n_placed_completed =
    Budget.bump budget;
    if n_placed_completed = n_completed then true
    else begin
      let success = ref false in
      let i = ref 0 in
      while (not !success) && !i < n do
        let id = !i in
        incr i;
        if (not (Bitset.mem placed id)) && missing.(id) = 0 then begin
          let o = ops.(id) in
          let sl = slot.(id) in
          let transitions = Spec.apply specs.(sl) states.(sl) o.Operation.op in
          let transitions =
            match fixed_resp.(id) with
            | Some r ->
              List.filter (fun (r', _) -> Value.equal r r') transitions
            | None -> transitions
          in
          if transitions <> [] then begin
            let placed' = Bitset.add placed id in
            let n' = n_placed_completed + Bool.to_int completed.(id) in
            let out = succs.(id) in
            Array.iter (fun s -> missing.(s) <- missing.(s) - 1) out;
            let saved = states.(sl) in
            List.iter
              (fun (r, q') ->
                if not !success then begin
                  states.(sl) <- q';
                  if memoized placed' then incr memo_hits
                  else begin
                    (match trace with
                    | Some tr -> tr := (o, r) :: !tr
                    | None -> ());
                    if dfs placed' n' then success := true
                    else
                      match trace with
                      | Some tr -> tr := List.tl !tr
                      | None -> ()
                  end
                end)
              transitions;
            if not !success then begin
              states.(sl) <- saved;
              Array.iter (fun s -> missing.(s) <- missing.(s) + 1) out
            end
          end
        end
      done;
      if cfg.memoize && not !success then
        Memo_key.Memo.replace memo (placed, Array.copy states) ();
      !success
    end
  in
  let ok = dfs (Bitset.empty n) 0 in
  let v = { ok; nodes_explored = Budget.spent budget; memo_hits = !memo_hits } in
  if Obs.Metrics.on () then begin
    Obs.Metrics.Counter.incr m_runs;
    Obs.Metrics.Counter.add m_nodes v.nodes_explored;
    Obs.Metrics.Counter.add m_memo_hits v.memo_hits
  end;
  if Obs.Trace.on () then
    Obs.Trace.complete ~cat:"engine" ~ts:span_ts "engine.check_at"
      ~args:
        [
          ("t", Obs.Jsonl.Int t);
          ("ok", Obs.Jsonl.Bool v.ok);
          ("nodes", Obs.Jsonl.Int v.nodes_explored);
          ("memo_hits", Obs.Jsonl.Int v.memo_hits);
        ];
  v

(* ------------------------------------------------------------------ *)
(* Public entry points                                                *)
(* ------------------------------------------------------------------ *)

(** [check_at p ~t] — decide t-linearizability against a prepared
    history. *)
let check_at p ~t = run p ~t ~trace:None

(** [witness_at p ~t] — additionally reconstruct a t-linearization as
    a behaviour list (operation, response) in linearization order. *)
let witness_at p ~t =
  let tr = ref [] in
  let v = run p ~t ~trace:(Some tr) in
  if v.ok then Some (List.rev !tr) else None

(** [search cfg h ~t] decides t-linearizability of [h]. *)
let search cfg h ~t = check_at (prepare cfg h) ~t

(** [t_linearizable cfg h ~t] — the boolean verdict. *)
let t_linearizable cfg h ~t = (search cfg h ~t).ok

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability [11]. *)
let linearizable cfg h = t_linearizable cfg h ~t:0

(** [witness cfg h ~t] — witness reconstruction, honoring the same
    node budget and memoization flags as {!search}. *)
let witness cfg h ~t = witness_at (prepare cfg h) ~t

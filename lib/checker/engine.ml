(** The generic t-linearization search engine.

    Decides Definition 2 of the paper for finite histories over any
    finite-nondeterminism specs: is there a legal sequential history S
    such that

    - every operation invoked in S is invoked in H,
    - every operation completed in H is completed in S,
    - if op1's response precedes op2's invocation and both events
      survive the removal of the first [t] events, and op2 is in S,
      then op1 precedes op2 in S, and
    - every operation whose response survives the removal keeps its
      response in S?

    The search is a Wing–Gong-style DFS over "next operation of S"
    choices, with failure memoization keyed on (set of operations
    already placed, object-state vector).  Operations completed within
    the first [t] events may be reordered arbitrarily and may change
    responses; pending operations may be included or dropped.

    {2 Hot-path structure}

    A single parameterized DFS core ([run]) serves both {!search} and
    {!witness}, so budget and memoization semantics cannot diverge
    between the two (they had: witness used to ignore both).  The
    per-history structures that do not depend on the cut — operation
    array, object slots, initial spec states — are built once by
    {!prepare} and reused across every cut [Eventual.min_t] probes;
    only the cut-dependent [fixed_resp]/predecessor tables are rebuilt
    per cut.  Readiness ("all real-time predecessors placed") is
    tracked incrementally with predecessor counts and a forward
    adjacency, replacing a per-candidate scan of predecessor lists at
    every DFS node.

    Multi-object histories are handled directly (a sequential history
    is legal iff each per-object projection is legal, cf. [11]), which
    the locality experiments (Lemma 7) exploit. *)

open Elin_kernel
open Elin_spec
open Elin_history

type order = [ `History | `Smart ]

type config = {
  (* Spec of each object appearing in the history. *)
  spec_of_obj : int -> Spec.t;
  (* Give up after this many DFS node expansions (None = no budget).
     Exceeding the budget raises [Budget_exceeded]. *)
  node_budget : int option;
  (* Failure memoization on (placed set, state vector); disabling it
     exists only for the ablation benchmark. *)
  memoize : bool;
  (* Cooperative hook run every [Budget.poll_interval] DFS expansions
     (see [Budget.counter]); the serving layer's wall-clock timeouts
     and job cancellation raise from here. *)
  poll : (unit -> unit) option;
  (* Candidate scan order at each DFS node.  [`History] (the default)
     scans operations by id — invocation order — and is the
     node-count-pinned behaviour behind the committed goldens and
     baselines.  [`Smart] scans earliest-response-first (pending ops
     last, by invocation), optionally biased by a caller-threaded
     failure [hint], and early-rejects dead nodes where a completed
     operation can no longer take any legal response.  Verdicts are
     identical in both orders; only exploration counts differ. *)
  order : order;
}

exception Budget_exceeded = Budget.Exceeded

let config ?node_budget ?(memoize = true) ?poll ?(order = `History)
    spec_of_obj =
  { spec_of_obj; node_budget; memoize; poll; order }

(** One-object convenience. *)
let for_spec ?node_budget ?memoize ?poll ?order spec =
  config ?node_budget ?memoize ?poll ?order (fun _ -> spec)

type verdict = { ok : bool; nodes_explored : int; memo_hits : int }

(* ------------------------------------------------------------------ *)
(* Prepared histories: cut-independent structures                     *)
(* ------------------------------------------------------------------ *)

type prepared = {
  cfg : config;
  len : int;                    (* history length in events *)
  n : int;                      (* operations *)
  ops : Operation.t array;      (* indexed by operation id *)
  specs : Spec.t array;         (* per object slot *)
  slot : int array;             (* operation id -> object slot *)
  init_states : Value.t array;  (* per object slot *)
  completed : bool array;
  n_completed : int;
}

(* Per-run observability.  [run]/[prepare] are per-cut entry points —
   a few calls per job, not per-node — so the counter adds live here
   unguarded; the per-node work is already aggregated in
   [nodes_explored]/[memo_hits] and folded in at the end. *)
module Obs = Elin_obs

let m_prepares = Obs.Metrics.counter "engine.prepares"
let m_runs = Obs.Metrics.counter "engine.runs"
let m_nodes = Obs.Metrics.counter "engine.nodes"
let m_memo_hits = Obs.Metrics.counter "engine.memo_hits"

(** [prepare cfg h] — build the cut-independent search structures once;
    {!check_at} / {!witness_at} then decide any cut against them. *)
let prepare cfg h =
  let ts = Obs.Trace.begin_ns () in
  let ops = History.ops_array h in
  let objs = Array.of_list (History.objs h) in
  let obj_slot =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i o -> Hashtbl.replace tbl o i) objs;
    fun o -> Hashtbl.find tbl o
  in
  let completed = Array.map Operation.is_complete ops in
  let p =
    {
      cfg;
      len = History.length h;
      n = Array.length ops;
      ops;
      specs = Array.map cfg.spec_of_obj objs;
      slot = Array.map (fun (o : Operation.t) -> obj_slot o.Operation.obj) ops;
      init_states = Array.map (fun o -> Spec.initial (cfg.spec_of_obj o)) objs;
      completed;
      n_completed =
        Array.fold_left (fun acc c -> acc + Bool.to_int c) 0 completed;
    }
  in
  if Obs.Metrics.on () then Obs.Metrics.Counter.incr m_prepares;
  if Obs.Trace.on () then
    Obs.Trace.complete ~cat:"engine" ~ts "engine.prepare"
      ~args:[ ("ops", Obs.Jsonl.Int p.n) ];
  p

let history_length p = p.len

(** [rebudget p ~node_budget ~poll] — the same prepared history with
    the per-run budget accounting replaced: the serving layer's
    prepared-reuse hook.  One [prepare] (shared, read-only — each run
    builds its own cut tables, memo, and state vector, so concurrent
    runs against one [prepared] are safe) serves jobs with different
    budgets, deadlines, and cancellation hooks. *)
let rebudget p ~node_budget ~poll =
  { p with cfg = { p.cfg with node_budget; poll } }

(* Cut-dependent tables.  At cut [t], op j is a real-time predecessor
   of op i iff j's response index r_j and i's invocation index both
   survive the cut (>= t) and r_j < inv_i.  We store predecessor
   COUNTS ([n_preds]) plus the forward adjacency ([succs]), so the DFS
   maintains the ready set incrementally — O(out-degree) bookkeeping
   per placement and an O(1) readiness test per candidate — instead of
   re-running [List.for_all] over predecessor lists for every
   candidate at every node. *)
let cut_tables p ~t =
  let n = p.n and ops = p.ops in
  (* Response constraint: Some r if the response event index >= t. *)
  let fixed_resp =
    Array.map
      (fun (o : Operation.t) ->
        match o.Operation.resp with
        | Some (v, ri) when ri >= t -> Some v
        | Some _ | None -> None)
      ops
  in
  let n_preds = Array.make n 0 in
  let succs = Array.make n [||] in
  Array.iter
    (fun (oj : Operation.t) ->
      match oj.Operation.resp with
      | Some (_, rj) when rj >= t ->
        let out = ref [] in
        for i = n - 1 downto 0 do
          let oi = ops.(i) in
          if oi.Operation.inv >= t && rj < oi.Operation.inv then begin
            n_preds.(i) <- n_preds.(i) + 1;
            out := i :: !out
          end
        done;
        succs.(oj.Operation.id) <- Array.of_list !out
      | Some _ | None -> ())
    ops;
  (fixed_resp, n_preds, succs)

(* ------------------------------------------------------------------ *)
(* The shared DFS core                                                *)
(* ------------------------------------------------------------------ *)

(* [run p ~t ~trace] — the one DFS behind search AND witness.  When
   [trace] is given, it accumulates the (operation, response) choices
   of the current branch (reversed); on success it holds the
   linearization.  Budget and memoization apply identically in both
   modes.

   [init] overrides the initial state vector (one entry per object
   slot) — the gap-cut composition of [Decompose] checks segment
   sub-histories from the states the previous segment can reach.

   [hint], only read under [`Smart] order, biases the candidate scan:
   operations with a higher hint score are tried later.  The run
   mutates [hint] in place — a bump per failed subtree and per
   memo-lookahead prune — so a caller probing many cuts against one
   history (the min_t gallop) carries what earlier cuts learned into
   later ones.  Purely heuristic: any scan order decides the same
   predicate. *)
let run ?hint ?init p ~t ~trace =
  let span_ts = Obs.Trace.begin_ns () in
  let { cfg; n; ops; specs; slot; init_states; completed; n_completed; _ } =
    p
  in
  let fixed_resp, n_preds, succs = cut_tables p ~t in
  (* missing.(i): i's real-time predecessors not yet placed; the ready
     set is { i | not placed, missing.(i) = 0 }.  [cut_tables] is
     fresh per run, so we mutate [n_preds] in place. *)
  let missing = n_preds in
  let budget = Budget.counter ?limit:cfg.node_budget ?poll:cfg.poll () in
  let memo_hits = ref 0 in
  let memo = Memo_key.Memo.create 1024 in
  (* One state vector, mutated in place and restored on backtrack; the
     memo snapshots it ([Array.copy]) only when inserting a failure, so
     the hot path allocates nothing per transition. *)
  let states =
    match init with
    | None -> Array.copy init_states
    | Some s ->
      if Array.length s <> Array.length init_states then
        invalid_arg "Engine.run: init state vector has wrong arity";
      Array.copy s
  in
  (* Smart order: a static candidate permutation, earliest response
     first (pending operations last, by invocation), stable-sorted
     under the caller's failure hints.  [None] = scan by id, the
     pinned default. *)
  let scan =
    match cfg.order with
    | `History -> None
    | `Smart ->
      let key =
        Array.map
          (fun (o : Operation.t) ->
            match o.Operation.resp with
            | Some (_, ri) -> ri
            | None -> p.len + o.Operation.inv)
          ops
      in
      let penalty =
        match hint with Some h -> fun i -> h.(i) | None -> fun _ -> 0
      in
      let a = Array.init n (fun i -> i) in
      Array.sort
        (fun i j ->
          let c = compare (penalty i) (penalty j) in
          if c <> 0 then c
          else
            let c = compare key.(i) key.(j) in
            if c <> 0 then c else compare i j)
        a;
      Some a
  in
  let bump_hint id =
    match hint with Some h -> h.(id) <- h.(id) + 1 | None -> ()
  in
  (* slot_left.(s): unplaced operations on slot [s] — maintained only
     under [`Smart] for the dead-node early rejection below. *)
  let slot_left =
    match cfg.order with
    | `History -> [||]
    | `Smart ->
      let a = Array.make (Array.length init_states) 0 in
      Array.iter (fun s -> a.(s) <- a.(s) + 1) slot;
      a
  in
  let smart = cfg.order = `Smart in
  (* Memo lookahead: a child whose (placed set, state vector) failure
     is already memoized is pruned {e before} expansion, not bumped and
     re-entered — memoized children cost one table lookup, not a DFS
     node.  Lookups read the live [states]; [Memo_key.Key.equal]
     compares contents. *)
  let memoized placed =
    cfg.memoize && Memo_key.Memo.mem memo (placed, states)
  in
  let rec dfs placed n_placed_completed =
    Budget.bump budget;
    if n_placed_completed = n_completed then true
    else begin
      let success = ref false in
      let dead = ref false in
      let i = ref 0 in
      while (not !success) && (not !dead) && !i < n do
        let id = match scan with None -> !i | Some a -> a.(!i) in
        incr i;
        if (not (Bitset.mem placed id)) && missing.(id) = 0 then begin
          let o = ops.(id) in
          let sl = slot.(id) in
          let transitions = Spec.apply specs.(sl) states.(sl) o.Operation.op in
          let transitions =
            match fixed_resp.(id) with
            | Some r ->
              List.filter (fun (r', _) -> Value.equal r r') transitions
            | None -> transitions
          in
          if transitions <> [] then begin
            let placed' = Bitset.add placed id in
            let n' = n_placed_completed + Bool.to_int completed.(id) in
            let out = succs.(id) in
            Array.iter (fun s -> missing.(s) <- missing.(s) - 1) out;
            if smart then slot_left.(sl) <- slot_left.(sl) - 1;
            let saved = states.(sl) in
            List.iter
              (fun (r, q') ->
                if not !success then begin
                  states.(sl) <- q';
                  if memoized placed' then begin
                    incr memo_hits;
                    bump_hint id
                  end
                  else begin
                    (match trace with
                    | Some tr -> tr := (o, r) :: !tr
                    | None -> ());
                    if dfs placed' n' then success := true
                    else begin
                      bump_hint id;
                      match trace with
                      | Some tr -> tr := List.tl !tr
                      | None -> ()
                    end
                  end
                end)
              transitions;
            if not !success then begin
              states.(sl) <- saved;
              if smart then slot_left.(sl) <- slot_left.(sl) + 1;
              Array.iter (fun s -> missing.(s) <- missing.(s) + 1) out
            end
          end
          else if smart && completed.(id) && slot_left.(sl) = 1 then
            (* Early rejection: [id] must eventually appear in S (it is
               completed), takes no legal transition from the current
               state of its object, and no other unplaced operation can
               ever change that state — this node is dead regardless of
               the remaining choices. *)
            dead := true
        end
      done;
      if cfg.memoize && not !success then
        Memo_key.Memo.replace memo (placed, Array.copy states) ();
      !success
    end
  in
  let ok = dfs (Bitset.empty n) 0 in
  let v = { ok; nodes_explored = Budget.spent budget; memo_hits = !memo_hits } in
  if Obs.Metrics.on () then begin
    Obs.Metrics.Counter.incr m_runs;
    Obs.Metrics.Counter.add m_nodes v.nodes_explored;
    Obs.Metrics.Counter.add m_memo_hits v.memo_hits
  end;
  if Obs.Trace.on () then
    Obs.Trace.complete ~cat:"engine" ~ts:span_ts "engine.check_at"
      ~args:
        [
          ("t", Obs.Jsonl.Int t);
          ("ok", Obs.Jsonl.Bool v.ok);
          ("nodes", Obs.Jsonl.Int v.nodes_explored);
          ("memo_hits", Obs.Jsonl.Int v.memo_hits);
        ];
  v

(* ------------------------------------------------------------------ *)
(* Public entry points                                                *)
(* ------------------------------------------------------------------ *)

(** [check_at p ~t] — decide t-linearizability against a prepared
    history. *)
let check_at ?hint ?init p ~t = run ?hint ?init p ~t ~trace:None

(** [witness_at p ~t] — additionally reconstruct a t-linearization as
    a behaviour list (operation, response) in linearization order. *)
let witness_at ?init p ~t =
  let tr = ref [] in
  let v = run ?init p ~t ~trace:(Some tr) in
  if v.ok then Some (List.rev !tr) else None

(* ------------------------------------------------------------------ *)
(* Final-state enumeration (the gap-cut composition's building block)  *)
(* ------------------------------------------------------------------ *)

(** [final_states ?init p] — every state vector a legal linearization
    of [p]'s history (at cut 0, real responses kept) can end in,
    starting from [init] (default: the specs' initial states).  Unlike
    {!check_at} this cannot stop at the first success: the gap-cut
    composition needs the {e set} of reachable boundary states, so the
    DFS runs to exhaustion over the (placed set, state vector) space —
    the memo here is a visited set, not a failure set.  A linearization
    may include or drop pending operations; both end states are
    reported.  The list is sorted (lexicographic [Value.compare]) and
    duplicate-free; it is empty iff the history is not 0-linearizable
    from [init]. *)
let final_states ?init p =
  let span_ts = Obs.Trace.begin_ns () in
  let { cfg; n; ops; specs; slot; init_states; completed; n_completed; _ } =
    p
  in
  let fixed_resp, n_preds, succs = cut_tables p ~t:0 in
  let missing = n_preds in
  let budget = Budget.counter ?limit:cfg.node_budget ?poll:cfg.poll () in
  let visited_hits = ref 0 in
  let visited = Memo_key.Memo.create 1024 in
  let states =
    match init with
    | None -> Array.copy init_states
    | Some s ->
      if Array.length s <> Array.length init_states then
        invalid_arg "Engine.final_states: init state vector has wrong arity";
      Array.copy s
  in
  let finals = Memo_key.Memo.create 16 in
  let no_ops = Bitset.empty 0 in
  let record () =
    let key = (no_ops, states) in
    if not (Memo_key.Memo.mem finals key) then
      Memo_key.Memo.replace finals (no_ops, Array.copy states) ()
  in
  let rec dfs placed n_placed_completed =
    Budget.bump budget;
    (* Every completed operation placed: this branch is a legal
       linearization (remaining pending ops may be dropped) — record
       its end state, then keep extending with pending ops, whose
       inclusion reaches further states. *)
    if n_placed_completed = n_completed then record ();
    for id = 0 to n - 1 do
      if (not (Bitset.mem placed id)) && missing.(id) = 0 then begin
        let o = ops.(id) in
        let sl = slot.(id) in
        let transitions = Spec.apply specs.(sl) states.(sl) o.Operation.op in
        let transitions =
          match fixed_resp.(id) with
          | Some r -> List.filter (fun (r', _) -> Value.equal r r') transitions
          | None -> transitions
        in
        if transitions <> [] then begin
          let placed' = Bitset.add placed id in
          let n' = n_placed_completed + Bool.to_int completed.(id) in
          let out = succs.(id) in
          Array.iter (fun s -> missing.(s) <- missing.(s) - 1) out;
          let saved = states.(sl) in
          List.iter
            (fun ((_ : Value.t), q') ->
              states.(sl) <- q';
              if Memo_key.Memo.mem visited (placed', states) then
                incr visited_hits
              else begin
                Memo_key.Memo.replace visited (placed', Array.copy states) ();
                dfs placed' n'
              end)
            transitions;
          states.(sl) <- saved;
          Array.iter (fun s -> missing.(s) <- missing.(s) + 1) out
        end
      end
    done
  in
  dfs (Bitset.empty n) 0;
  let out = ref [] in
  Memo_key.Memo.iter (fun (_, s) () -> out := s :: !out) finals;
  let out =
    List.sort
      (fun a b ->
        let rec go i =
          if i >= Array.length a then 0
          else
            let c = Value.compare a.(i) b.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0)
      !out
  in
  let v =
    {
      ok = out <> [];
      nodes_explored = Budget.spent budget;
      memo_hits = !visited_hits;
    }
  in
  if Obs.Metrics.on () then begin
    Obs.Metrics.Counter.incr m_runs;
    Obs.Metrics.Counter.add m_nodes v.nodes_explored;
    Obs.Metrics.Counter.add m_memo_hits v.memo_hits
  end;
  if Obs.Trace.on () then
    Obs.Trace.complete ~cat:"engine" ~ts:span_ts "engine.final_states"
      ~args:
        [
          ("states", Obs.Jsonl.Int (List.length out));
          ("nodes", Obs.Jsonl.Int v.nodes_explored);
        ];
  (out, v)

(** [search cfg h ~t] decides t-linearizability of [h]. *)
let search cfg h ~t = check_at (prepare cfg h) ~t

(** [t_linearizable cfg h ~t] — the boolean verdict. *)
let t_linearizable cfg h ~t = (search cfg h ~t).ok

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability [11]. *)
let linearizable cfg h = t_linearizable cfg h ~t:0

(** [witness cfg h ~t] — witness reconstruction, honoring the same
    node budget and memoization flags as {!search}. *)
let witness cfg h ~t = witness_at (prepare cfg h) ~t

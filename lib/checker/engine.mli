(** The generic t-linearization search engine (Definition 2).

    Decides, for finite histories over any finite-nondeterminism specs,
    whether a legal sequential history S exists such that: every
    operation invoked in S is invoked in H; every operation completed
    in H is completed in S; real-time order is preserved among
    operations both of whose relevant events survive removal of the
    first [t] events; and responses that survive the removal are kept.

    One Wing–Gong-style DFS core — failure memoization on
    (placed-operation set, object-state vector), incremental readiness
    tracking via predecessor counts — serves both {!search} and
    {!witness}, so budget and memoization semantics are identical in
    both.  {!prepare} builds the cut-independent structures once so
    that [Eventual.min_t] can probe many cuts against the same
    history cheaply.  Multi-object histories are handled directly. *)

open Elin_spec
open Elin_history

type config

(** Candidate scan order at each DFS node.  [`History] (the default)
    scans operations by id (invocation order) — the node-count-pinned
    behaviour behind the committed svc goldens and bench baselines.
    [`Smart] scans earliest-response-first (pending operations last,
    by invocation), biased by the caller's failure {e hint} scores
    when given, and early-rejects dead nodes in which a completed
    operation has no legal response and no other unplaced operation
    can ever change its object's state.  Both orders decide the same
    predicate; only exploration counts differ.  [Decompose] runs its
    per-object sub-checks under [`Smart]. *)
type order = [ `History | `Smart ]

(** Raised when [node_budget] is exhausted.  This is an alias of
    {!Elin_kernel.Budget.Exceeded} (as is [Weak.Budget_exceeded]), so
    catching any one of them catches budget exhaustion from every
    checker. *)
exception Budget_exceeded

(** [config ?node_budget ?memoize ?poll ?order spec_of_obj] —
    [spec_of_obj] maps each object id appearing in checked histories
    to its spec; exceeding [node_budget] DFS expansions raises
    {!Budget_exceeded}; [memoize] (default true) toggles failure
    memoization — exposed only for the ablation benchmark.  [poll] is
    run every [Elin_kernel.Budget.poll_interval] expansions and may
    raise to abort the search cooperatively (wall-clock timeouts,
    cancellation — see [lib/svc]).  [order] (default [`History])
    picks the candidate scan heuristic — see {!type:order}. *)
val config :
  ?node_budget:int ->
  ?memoize:bool ->
  ?poll:(unit -> unit) ->
  ?order:order ->
  (int -> Spec.t) ->
  config

(** One-object convenience. *)
val for_spec :
  ?node_budget:int ->
  ?memoize:bool ->
  ?poll:(unit -> unit) ->
  ?order:order ->
  Spec.t ->
  config

type verdict = {
  ok : bool;
  nodes_explored : int;  (** DFS node expansions *)
  memo_hits : int;       (** searches cut short by the failure memo *)
}

(** A history with its cut-independent search structures prebuilt:
    operations, object slots, initial spec states.  Probing a cut via
    {!check_at}/{!witness_at} only rebuilds the cut-dependent
    response/predecessor tables. *)
type prepared

val prepare : config -> History.t -> prepared

(** Event count of the underlying history (the maximal useful cut). *)
val history_length : prepared -> int

(** [rebudget p ~node_budget ~poll] — the same prepared history with
    the per-run budget/poll configuration replaced (a cheap record
    update): the serving layer's prepared-reuse hook, letting one
    {!prepare} serve many jobs with per-job budgets and deadlines.  A
    [prepared] is read-only during runs, so it may be shared across
    domains; each {!check_at} builds its own mutable search state. *)
val rebudget :
  prepared -> node_budget:int option -> poll:(unit -> unit) option -> prepared

(** [check_at ?hint ?init p ~t] — full verdict at cut [t] against a
    prepared history.

    [init] overrides the initial state vector (one entry per object
    slot, in the order of [History.objs]; [Invalid_argument] on arity
    mismatch) — the gap-cut composition checks segment sub-histories
    from the states the previous segment can reach.

    [hint], read only under [`Smart] order, carries per-operation
    failure scores across runs: higher scores scan later, and the run
    bumps an operation's score for every failed subtree and every
    memo-lookahead prune below it.  Thread one zero-initialized array
    through a gallop of cuts to bias later probes by what earlier
    probes learned.  Purely heuristic — the verdict is unaffected. *)
val check_at :
  ?hint:int array -> ?init:Value.t array -> prepared -> t:int -> verdict

(** [witness_at p ~t] — reconstruct a t-linearization (operations
    paired with responses, in linearization order) against a prepared
    history.  [init] as in {!check_at}. *)
val witness_at :
  ?init:Value.t array ->
  prepared ->
  t:int ->
  (Operation.t * Value.t) list option

(** [final_states ?init p] — every state vector a legal linearization
    of the prepared history (cut 0, real responses kept, pending
    operations included or dropped) can end in, starting from [init]
    (default: the specs' initial states).  Sorted and duplicate-free;
    empty iff the history is not 0-linearizable from [init].  Unlike
    {!check_at} the search runs to exhaustion over the reachable
    (placed set, state vector) space — its memo is a visited set —
    because the gap-cut composition ({!Decompose}) needs the full set
    of boundary states, not one witness.  The verdict carries the
    exploration counts ([ok] mirrors non-emptiness). *)
val final_states :
  ?init:Value.t array -> prepared -> Value.t array list * verdict

(** [search cfg h ~t] — full verdict with exploration stats. *)
val search : config -> History.t -> t:int -> verdict

val t_linearizable : config -> History.t -> t:int -> bool

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability (Herlihy & Wing). *)
val linearizable : config -> History.t -> bool

(** [witness cfg h ~t] additionally reconstructs a t-linearization, as
    operations paired with their responses in linearization order.
    Honors the same [node_budget] (raising {!Budget_exceeded}) and
    [memoize] flags as {!search}. *)
val witness :
  config -> History.t -> t:int -> (Operation.t * Value.t) list option

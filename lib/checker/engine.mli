(** The generic t-linearization search engine (Definition 2).

    Decides, for finite histories over any finite-nondeterminism specs,
    whether a legal sequential history S exists such that: every
    operation invoked in S is invoked in H; every operation completed
    in H is completed in S; real-time order is preserved among
    operations both of whose relevant events survive removal of the
    first [t] events; and responses that survive the removal are kept.

    One Wing–Gong-style DFS core — failure memoization on
    (placed-operation set, object-state vector), incremental readiness
    tracking via predecessor counts — serves both {!search} and
    {!witness}, so budget and memoization semantics are identical in
    both.  {!prepare} builds the cut-independent structures once so
    that [Eventual.min_t] can probe many cuts against the same
    history cheaply.  Multi-object histories are handled directly. *)

open Elin_spec
open Elin_history

type config

(** Raised when [node_budget] is exhausted.  This is an alias of
    {!Elin_kernel.Budget.Exceeded} (as is [Weak.Budget_exceeded]), so
    catching any one of them catches budget exhaustion from every
    checker. *)
exception Budget_exceeded

(** [config ?node_budget ?memoize ?poll spec_of_obj] — [spec_of_obj]
    maps each object id appearing in checked histories to its spec;
    exceeding [node_budget] DFS expansions raises {!Budget_exceeded};
    [memoize] (default true) toggles failure memoization — exposed only
    for the ablation benchmark.  [poll] is run every
    [Elin_kernel.Budget.poll_interval] expansions and may raise to
    abort the search cooperatively (wall-clock timeouts, cancellation
    — see [lib/svc]). *)
val config :
  ?node_budget:int ->
  ?memoize:bool ->
  ?poll:(unit -> unit) ->
  (int -> Spec.t) ->
  config

(** One-object convenience. *)
val for_spec :
  ?node_budget:int -> ?memoize:bool -> ?poll:(unit -> unit) -> Spec.t -> config

type verdict = {
  ok : bool;
  nodes_explored : int;  (** DFS node expansions *)
  memo_hits : int;       (** searches cut short by the failure memo *)
}

(** A history with its cut-independent search structures prebuilt:
    operations, object slots, initial spec states.  Probing a cut via
    {!check_at}/{!witness_at} only rebuilds the cut-dependent
    response/predecessor tables. *)
type prepared

val prepare : config -> History.t -> prepared

(** Event count of the underlying history (the maximal useful cut). *)
val history_length : prepared -> int

(** [rebudget p ~node_budget ~poll] — the same prepared history with
    the per-run budget/poll configuration replaced (a cheap record
    update): the serving layer's prepared-reuse hook, letting one
    {!prepare} serve many jobs with per-job budgets and deadlines.  A
    [prepared] is read-only during runs, so it may be shared across
    domains; each {!check_at} builds its own mutable search state. *)
val rebudget :
  prepared -> node_budget:int option -> poll:(unit -> unit) option -> prepared

(** [check_at p ~t] — full verdict at cut [t] against a prepared
    history. *)
val check_at : prepared -> t:int -> verdict

(** [witness_at p ~t] — reconstruct a t-linearization (operations
    paired with responses, in linearization order) against a prepared
    history. *)
val witness_at : prepared -> t:int -> (Operation.t * Value.t) list option

(** [search cfg h ~t] — full verdict with exploration stats. *)
val search : config -> History.t -> t:int -> verdict

val t_linearizable : config -> History.t -> t:int -> bool

(** [linearizable cfg h] — 0-linearizability, which coincides with
    linearizability (Herlihy & Wing). *)
val linearizable : config -> History.t -> bool

(** [witness cfg h ~t] additionally reconstructs a t-linearization, as
    operations paired with their responses in linearization order.
    Honors the same [node_budget] (raising {!Budget_exceeded}) and
    [memoize] flags as {!search}. *)
val witness :
  config -> History.t -> t:int -> (Operation.t * Value.t) list option

(** Eventual linearizability of finite histories (Definitions 3–4).

    For a finite history over total object types, some [t <=
    length H] always works (the paper notes t-linearizability for
    some t is trivially a liveness property), so the interesting
    quantity is the *minimal* stabilization bound [min_t].  By
    Lemma 5 t-linearizability is monotone in [t], so [min_t] is
    found by any monotone search; we gallop from [t = 0]
    (exponential probing, then binary refinement), which costs
    O(log min_t) probes — for the common small-[min_t] histories
    that is a constant number of cheap cuts instead of the
    O(log len) mid-range cuts a plain binary search pays, and every
    probe reuses the cut-independent structures of one
    {!Engine.prepare}.

    The full verdict pairs the liveness part with the safety part
    (weak consistency, Definition 1): a history is eventually
    linearizable iff both hold. *)

type verdict = {
  weakly_consistent : bool;
  (* Smallest t such that the history is t-linearizable; [None] when
     even [t = length] fails (possible only for partial/exotic specs). *)
  min_t : int option;
}

let is_eventually_linearizable v =
  v.weakly_consistent && Option.is_some v.min_t

(** [min_t_search check ~len] — generic monotone least-t search:
    [check t] must be monotone in [t] (Lemma 5).  Galloping: probe
    t = 0, 1, 2, 4, ... until the first success (or [len] proves
    unreachable), then binary-refine inside the last doubling
    interval.  Returns the least [t in [0, len]] with [check t], or
    [None].  Agrees with binary search on every monotone predicate,
    in O(log min_t) probes. *)
let min_t_search check ~len =
  if check 0 then Some 0
  else if len = 0 then None
  else begin
    (* gallop invariant: check lo fails, 0 <= lo < hi <= len.
       refine invariant: check lo fails, check hi holds. *)
    let rec gallop lo hi =
      if check hi then refine lo hi
      else if hi >= len then None
      else gallop hi (min len (2 * hi))
    and refine lo hi =
      if hi - lo <= 1 then Some hi
      else
        let mid = (lo + hi) / 2 in
        if check mid then refine lo mid else refine mid hi
    in
    gallop 0 1
  end

type search_stats = { cuts_probed : int; nodes : int; memo_hits : int }

(** [min_t_prepared p] — least stabilization bound against a prepared
    history, with aggregate exploration statistics over all probed
    cuts.  The cut-independent structures of [p] are shared by every
    probe. *)
let m_probes = Elin_obs.Metrics.counter "engine.min_t_probes"

let min_t_prepared (p : Engine.prepared) =
  let span_ts = Elin_obs.Trace.begin_ns () in
  let cuts = ref 0 and nodes = ref 0 and hits = ref 0 in
  let check t =
    let v = Engine.check_at p ~t in
    incr cuts;
    nodes := !nodes + v.Engine.nodes_explored;
    hits := !hits + v.Engine.memo_hits;
    v.Engine.ok
  in
  let mt = min_t_search check ~len:(Engine.history_length p) in
  if Elin_obs.Metrics.on () then Elin_obs.Metrics.Counter.add m_probes !cuts;
  if Elin_obs.Trace.on () then
    Elin_obs.Trace.complete ~cat:"engine" ~ts:span_ts "engine.min_t"
      ~args:
        [
          ( "min_t",
            match mt with
            | Some t -> Elin_obs.Jsonl.Int t
            | None -> Elin_obs.Jsonl.Null );
          ("cuts_probed", Elin_obs.Jsonl.Int !cuts);
          ("nodes", Elin_obs.Jsonl.Int !nodes);
        ];
  (mt, { cuts_probed = !cuts; nodes = !nodes; memo_hits = !hits })

(** [min_t_stats cfg h] — [min_t] plus exploration statistics. *)
let min_t_stats (cfg : Engine.config) h =
  min_t_prepared (Engine.prepare cfg h)

(** [min_t cfg h] — least stabilization bound via the generic engine. *)
let min_t (cfg : Engine.config) h = fst (min_t_stats cfg h)

(** [check ecfg wcfg h] — full eventual-linearizability verdict. *)
let check (ecfg : Engine.config) (wcfg : Weak.config) h =
  {
    weakly_consistent = Weak.is_weakly_consistent wcfg h;
    min_t = min_t ecfg h;
  }

(** [check_spec spec h] — one-object convenience sharing a spec. *)
let check_spec ?node_budget spec h =
  check (Engine.for_spec ?node_budget spec) (Weak.for_spec ?node_budget spec) h

let pp_verdict ppf v =
  Format.fprintf ppf "{weakly_consistent=%b; min_t=%a}" v.weakly_consistent
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "none")
       Format.pp_print_int)
    v.min_t

let pp_stats ppf s =
  Format.fprintf ppf "{cuts=%d; nodes=%d; memo_hits=%d}" s.cuts_probed s.nodes
    s.memo_hits

(** Eventual linearizability of finite histories (Definitions 3–4):
    the conjunction of weak consistency and t-linearizability for some
    t.  For finite histories over total types some [t <= length]
    always works, so the informative quantity is the minimal
    stabilization bound [min_t], found by a galloping monotone search
    from [t = 0] (monotonicity is Lemma 5) — O(log min_t) probes, each
    reusing one {!Engine.prepare}. *)

open Elin_spec
open Elin_history

type verdict = {
  weakly_consistent : bool;
  min_t : int option;
      (** least t such that the history is t-linearizable; [None] only
          for partial/exotic specs *)
}

val is_eventually_linearizable : verdict -> bool

(** [min_t_search check ~len] — generic least-t search for a monotone
    predicate over [0, len]: galloping (0, 1, 2, 4, ...) then binary
    refinement, agreeing with plain binary search on every monotone
    predicate in O(log min_t) probes. *)
val min_t_search : (int -> bool) -> len:int -> int option

(** Aggregate exploration statistics over all cuts probed by a
    [min_t] search. *)
type search_stats = { cuts_probed : int; nodes : int; memo_hits : int }

(** [min_t_prepared p] — least stabilization bound against a prepared
    history, sharing its cut-independent structures across every
    probed cut, plus the aggregate statistics. *)
val min_t_prepared : Engine.prepared -> int option * search_stats

(** [min_t_stats cfg h] — {!min_t} plus exploration statistics. *)
val min_t_stats : Engine.config -> History.t -> int option * search_stats

val min_t : Engine.config -> History.t -> int option

val check : Engine.config -> Weak.config -> History.t -> verdict

(** One-object convenience sharing a spec. *)
val check_spec : ?node_budget:int -> Spec.t -> History.t -> verdict

val pp_verdict : Format.formatter -> verdict -> unit
val pp_stats : Format.formatter -> search_stats -> unit

(** Fast t-linearizability and weak-consistency checking for
    fetch&increment histories.

    Implements the combinatorial core of the paper's Lemma 17 proof as
    a near-linear decision procedure.  Classify operations by where
    their response falls relative to the cut [t]:

    - "post" operations (response at index >= t) must keep their
      responses, so each claims the *slot* equal to its response value;
      slots must be distinct and must respect real-time order among
      post-cut events;
    - "pre" operations (response before [t]) and pending operations are
      free: pre operations must appear in S but may take any slot or
      come after all post slots; pending operations are optional.

    A t-linearization exists iff the post slots are consistent and the
    gap slots below the maximal post slot can be filled by distinct
    free operations, where an operation invoked (at index >= t) after
    some post response [v] may only fill slots above [v].  Gap filling
    is a matching with upward-closed eligibility (Hall's condition,
    solved greedily in [Elin_kernel.Matching]).

    Property tests cross-validate this module against the generic
    [Engine] on thousands of generated histories. *)

open Elin_kernel
open Elin_spec
open Elin_history

type classified = {
  post : Operation.t list;   (* response index >= t *)
  pre : Operation.t list;    (* response index < t *)
  pending : Operation.t list;
}

let classify h ~t =
  let post, pre, pending =
    List.fold_left
      (fun (post, pre, pending) (o : Operation.t) ->
        match o.Operation.resp with
        | Some (_, ri) when ri >= t -> (o :: post, pre, pending)
        | Some _ -> (post, o :: pre, pending)
        | None -> (post, pre, o :: pending))
      ([], [], []) (History.ops h)
  in
  { post = List.rev post; pre = List.rev pre; pending = List.rev pending }

let response_int (o : Operation.t) =
  match o.Operation.resp with
  | Some (v, _) -> Value.to_int v
  | None -> invalid_arg "Faic.response_int: pending operation"

(** [max_post_before h ~t] computes, for each event index [i], the
    largest response value among post operations whose response event
    precedes [i] (or [initial - 1] when none); used both for the
    real-time check and for pending-filler lower bounds. *)
let max_post_resp_before h ~t ~floor =
  let len = History.length h in
  let best = Array.make (len + 1) floor in
  let cur = ref floor in
  for i = 0 to len - 1 do
    best.(i) <- !cur;
    (match (History.event h i).Event.payload with
    | Event.Respond v when i >= t -> cur := max !cur (Value.to_int v)
    | Event.Respond _ | Event.Invoke _ -> ());
    ()
  done;
  best.(len) <- !cur;
  best

(** [t_linearizable ?initial h ~t] decides Definition 2 for a
    fetch&increment history ([initial] is the counter's initial
    value). *)
let t_linearizable ?(initial = 0) h ~t =
  let { post; pre; pending } = classify h ~t in
  (* 1. post responses are >= initial and pairwise distinct. *)
  let post_values = List.map response_int post in
  let sorted = List.sort compare post_values in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | [ _ ] | [] -> true
  in
  if List.exists (fun v -> v < initial) post_values then false
  else if not (distinct sorted) then false
  else begin
    (* 2. real-time order among surviving events: a post operation
       invoked at index >= t must return more than every post response
       that precedes its invocation. *)
    let floor = initial - 1 in
    let max_before = max_post_resp_before h ~t ~floor in
    let rt_ok =
      List.for_all
        (fun (o : Operation.t) ->
          o.Operation.inv < t || response_int o > max_before.(o.Operation.inv))
        post
    in
    if not rt_ok then false
    else
      match sorted with
      | [] -> true (* no constrained operation at all *)
      | _ ->
        let m = List.fold_left max initial sorted in
        (* 3. gap slots strictly below m (and >= initial) not claimed
           by post operations must be filled by distinct free ops. *)
        let taken = Hashtbl.create 16 in
        List.iter (fun v -> Hashtbl.replace taken v ()) sorted;
        let slots =
          List.filter
            (fun s -> not (Hashtbl.mem taken s))
            (List.init (m - initial + 1) (fun i -> initial + i))
        in
        let fillers =
          List.map (fun (_ : Operation.t) -> initial) pre
          @ List.map
              (fun (o : Operation.t) ->
                if o.Operation.inv < t then initial
                else max_before.(o.Operation.inv) + 1)
              pending
        in
        Matching.feasible ~slots ~lower_bounds:(Array.of_list fillers)
  end

(** [min_t ?initial h] — least stabilization bound, by galloping search
    (Lemma 5 gives monotonicity). *)
let min_t ?(initial = 0) h =
  Eventual.min_t_search
    (fun t -> t_linearizable ~initial h ~t)
    ~len:(History.length h)

(** [weakly_consistent ?initial h] — Definition 1 specialized: a
    completed fetch&inc by process [p] returning [v] is justifiable iff
    [required <= v - initial <= candidates] where [required] counts
    [p]'s earlier operations and [candidates] counts all other
    operations invoked before the response. *)
let weakly_consistent ?(initial = 0) h =
  let ops = History.ops h in
  List.for_all
    (fun (o : Operation.t) ->
      match o.Operation.resp with
      | None -> true
      | Some (v, ridx) ->
        let v = Value.to_int v in
        let required =
          List.length
            (List.filter
               (fun (o' : Operation.t) ->
                 o'.Operation.proc = o.Operation.proc
                 && o'.Operation.id <> o.Operation.id
                 && o'.Operation.inv < o.Operation.inv)
               ops)
        in
        let candidates =
          List.length
            (List.filter
               (fun (o' : Operation.t) ->
                 o'.Operation.id <> o.Operation.id && o'.Operation.inv < ridx)
               ops)
        in
        required <= v - initial && v - initial <= candidates)
    ops

(** Full fast verdict, mirroring [Eventual.check]. *)
let check ?(initial = 0) h : Eventual.verdict =
  {
    Eventual.weakly_consistent = weakly_consistent ~initial h;
    min_t = min_t ~initial h;
  }

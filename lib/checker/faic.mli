(** Fast t-linearizability and weak-consistency checking for
    fetch&increment histories — the combinatorial core of the paper's
    Lemma 17 proof as a near-linear decision procedure (post-cut
    responses claim slots; gap slots are filled by a greedy matching
    with upward-closed eligibility).

    Cross-validated against the generic [Engine] on generated and
    exhaustively enumerated histories by the test-suite. *)

open Elin_history

type classified = {
  post : Operation.t list;    (** response index >= t *)
  pre : Operation.t list;     (** response index < t *)
  pending : Operation.t list;
}

val classify : History.t -> t:int -> classified

(** [t_linearizable ?initial h ~t] — Definition 2 for a fetch&increment
    history; [initial] is the counter's starting value. *)
val t_linearizable : ?initial:int -> History.t -> t:int -> bool

(** Least stabilization bound (galloping search over
    {!t_linearizable}, via [Eventual.min_t_search]). *)
val min_t : ?initial:int -> History.t -> int option

(** Definition 1 specialized: a completed fetch&inc by process [p]
    returning [v] is justifiable iff
    [own-earlier-ops <= v - initial <= ops-invoked-before-response]. *)
val weakly_consistent : ?initial:int -> History.t -> bool

(** Full fast verdict, mirroring [Eventual.check]. *)
val check : ?initial:int -> History.t -> Eventual.verdict

(** The failure-memoization key shared by the DFS checkers: the set of
    operations already placed plus the per-object state vector.

    Equality and hashing route through [Value.equal] / [Value.hash] so
    the memo contract matches the documented structural equality of
    [Value.t] (the engine and the weak-consistency checker used to
    compare state vectors with polymorphic [=], which only happens to
    coincide for today's [Value.t] representation). *)

open Elin_kernel
open Elin_spec

module Key = struct
  type t = Bitset.t * Value.t array

  let equal (b1, s1) (b2, s2) =
    Bitset.equal b1 b2
    && Array.length s1 = Array.length s2
    && Array.for_all2 Value.equal s1 s2

  (* Allocation-free fold: lookups run once per DFS child, so hashing
     must not build an intermediate array. *)
  let hash (b, s) =
    let acc = ref (Bitset.hash b) in
    Array.iter (fun v -> acc := (!acc * 31) + Value.hash v) s;
    !acc land max_int
end

module Memo = Hashtbl.Make (Key)

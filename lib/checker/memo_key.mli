(** The failure-memoization key shared by the DFS checkers: (placed
    operation set, per-object state vector), with equality and hashing
    routed through [Value.equal] / [Value.hash]. *)

open Elin_kernel
open Elin_spec

module Key : sig
  type t = Bitset.t * Value.t array

  val equal : t -> t -> bool
  val hash : t -> int
end

module Memo : Hashtbl.S with type key = Key.t

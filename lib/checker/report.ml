(** Full per-history analysis reports: everything the checkers can say
    about a history, in one record with a pretty-printer — the payload
    behind [elin check] and handy for interactive debugging. *)

open Elin_kernel
open Elin_spec
open Elin_history

type concurrency = {
  max_overlap : int;   (* peak number of simultaneously open operations *)
  mean_overlap : float;
}

type t = {
  events : int;
  operations : int;
  complete : int;
  pending : int;
  procs : int;
  objs : int;
  concurrency : concurrency;
  linearizable : bool;
  weakly_consistent : bool;
  violating_op : Operation.t option;
  min_t : int option;
  (* A witness linearization at the minimal cut, when one exists. *)
  witness : (Operation.t * Value.t) list option;
  (* Exploration statistics of the min_t search, when it completed. *)
  search : Eventual.search_stats option;
  (* True when any phase ran out of node budget; the affected fields
     then report the conservative "unknown" value. *)
  budget_exhausted : bool;
}

let concurrency_of h =
  let open_ops = ref 0 in
  let peak = ref 0 in
  let total = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      (match e.Event.payload with
      | Event.Invoke _ -> incr open_ops
      | Event.Respond _ -> decr open_ops);
      peak := max !peak !open_ops;
      total := !total + !open_ops)
    (History.events h);
  {
    max_overlap = !peak;
    mean_overlap =
      (if History.length h = 0 then 0.
       else float_of_int !total /. float_of_int (History.length h));
  }

(** [analyze ?node_budget spec h] — the full report (single-object
    histories; use per-object projections plus [Locality] for
    multi-object ones).  The min_t search and the witness share one
    {!Engine.prepare}.  Budget exhaustion in any phase is absorbed
    into [budget_exhausted] rather than escaping, so a bounded
    analysis always yields a (partial) report. *)
let analyze ?node_budget ?poll spec h =
  let ecfg = Engine.for_spec ?node_budget ?poll spec in
  let wcfg = Weak.for_spec ?node_budget ?poll spec in
  let exhausted = ref false in
  let guard default f =
    try f ()
    with Budget.Exceeded ->
      exhausted := true;
      default
  in
  let prep = Engine.prepare ecfg h in
  let min_t, search =
    guard (None, None) (fun () ->
        let mt, st = Eventual.min_t_prepared prep in
        (mt, Some st))
  in
  let weak_result = guard None (fun () -> Some (Weak.check wcfg h)) in
  let violating_op =
    match weak_result with Some (Error o) -> Some o | Some (Ok ()) | None -> None
  in
  {
    events = History.length h;
    operations = History.n_ops h;
    complete = List.length (History.complete_ops h);
    pending = List.length (History.pending_ops h);
    procs = List.length (History.procs h);
    objs = List.length (History.objs h);
    concurrency = concurrency_of h;
    linearizable = min_t = Some 0;
    weakly_consistent = (match weak_result with Some (Ok ()) -> true | _ -> false);
    violating_op;
    min_t;
    witness =
      guard None (fun () ->
          Option.bind min_t (fun t -> Engine.witness_at prep ~t));
    search;
    budget_exhausted = !exhausted;
  }

let is_eventually_linearizable r = r.weakly_consistent && r.min_t <> None

let pp ppf r =
  Format.fprintf ppf
    "@[<v>events: %d  operations: %d (%d complete, %d pending)@,\
     processes: %d  objects: %d  overlap: max %d, mean %.2f@,\
     linearizable: %b@,\
     weakly consistent: %b%a@,\
     min stabilization bound: %a@,\
     eventually linearizable: %b%a%a@]"
    r.events r.operations r.complete r.pending r.procs r.objs
    r.concurrency.max_overlap r.concurrency.mean_overlap r.linearizable
    r.weakly_consistent
    (fun ppf -> function
      | Some o -> Format.fprintf ppf " (violation: %a)" Operation.pp o
      | None -> ())
    r.violating_op
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.fprintf ppf "none")
       Format.pp_print_int)
    r.min_t
    (is_eventually_linearizable r)
    (fun ppf -> function
      | Some w when List.length w <= 16 ->
        Format.fprintf ppf "@,witness linearization:@,  %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf "@,  ")
             (fun ppf ((o : Operation.t), v) ->
               Format.fprintf ppf "p%d %a -> %a" o.Operation.proc Op.pp
                 o.Operation.op Value.pp v))
          w
      | Some _ | None -> ())
    r.witness
    (fun ppf exhausted ->
      if exhausted then
        Format.fprintf ppf "@,(node budget exhausted: partial verdicts)")
    r.budget_exhausted

(** [pp_stats] — the exploration-statistics line behind
    [elin check --stats]. *)
let pp_stats ppf r =
  match r.search with
  | None -> Format.fprintf ppf "search stats: unavailable"
  | Some s ->
    Format.fprintf ppf
      "search stats: %d cuts probed, %d nodes explored, %d memo hits"
      s.Eventual.cuts_probed s.Eventual.nodes s.Eventual.memo_hits

(** Full per-history analysis reports: size, concurrency shape, all
    consistency verdicts, a violation culprit, a witness linearization
    at the minimal cut, and exploration statistics of the min_t
    search. *)

open Elin_spec
open Elin_history

type concurrency = { max_overlap : int; mean_overlap : float }

type t = {
  events : int;
  operations : int;
  complete : int;
  pending : int;
  procs : int;
  objs : int;
  concurrency : concurrency;
  linearizable : bool;
  weakly_consistent : bool;
  violating_op : Operation.t option;
  min_t : int option;
  witness : (Operation.t * Value.t) list option;
  search : Eventual.search_stats option;
      (** min_t-search exploration statistics, when that phase
          completed within budget *)
  budget_exhausted : bool;
      (** true when any phase ran out of node budget; affected fields
          hold the conservative "unknown" value instead of escaping
          with an exception *)
}

val concurrency_of : History.t -> concurrency

(** Single-object histories; project and use [Locality] for
    multi-object ones.  The min_t search and the witness share one
    [Engine.prepare]; budget exhaustion is absorbed into
    [budget_exhausted].  [poll] (cooperative timeouts/cancellation,
    see [Elin_kernel.Budget.counter]) is threaded to every phase;
    what it raises escapes rather than being absorbed. *)
val analyze : ?node_budget:int -> ?poll:(unit -> unit) -> Spec.t -> History.t -> t

val is_eventually_linearizable : t -> bool
val pp : Format.formatter -> t -> unit

(** Exploration-statistics line ([elin check --stats]). *)
val pp_stats : Format.formatter -> t -> unit

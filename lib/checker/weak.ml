(** Weak consistency (Definition 1).

    A history is weakly consistent iff for each completed operation
    [op] there is a legal sequential history S that (i) uses only
    operations invoked before [op]'s response, (ii) contains every
    operation by [op]'s process that precedes [op], and (iii) ends with
    [op] returning its actual response.  Responses of the *other*
    operations in S are unconstrained (beyond legality).

    The search reuses the DFS-with-memo idea of [Engine]: place any
    subset of the candidate operations in any legal order; once all
    required operations are placed, try to finish with [op]. *)

open Elin_kernel
open Elin_spec
open Elin_history

type config = {
  spec_of_obj : int -> Spec.t;
  node_budget : int option;
  (* Cooperative timeout/cancellation hook; see [Budget.counter]. *)
  poll : (unit -> unit) option;
}

let config ?node_budget ?poll spec_of_obj = { spec_of_obj; node_budget; poll }

let for_spec ?node_budget ?poll spec =
  config ?node_budget ?poll (fun _ -> spec)

exception Budget_exceeded = Budget.Exceeded

module Memo = Memo_key.Memo

(** [op_ok cfg h target] decides Definition 1 for one completed
    operation [target] of [h]. *)
let op_ok cfg h (target : Operation.t) =
  let resp_value, resp_idx =
    match target.Operation.resp with
    | Some (v, i) -> (v, i)
    | None -> invalid_arg "Weak.op_ok: operation is pending"
  in
  let ops = History.ops_array h in
  let n = Array.length ops in
  (* Candidates: invoked before [target]'s response, excluding target. *)
  let candidate =
    Array.map
      (fun (o : Operation.t) ->
        o.Operation.id <> target.Operation.id && o.Operation.inv < resp_idx)
      ops
  in
  (* Required: same process, precede target in H (their response is
     before target's invocation; well-formedness makes them complete). *)
  let required =
    Array.to_list ops
    |> List.filter_map (fun (o : Operation.t) ->
           if
             o.Operation.proc = target.Operation.proc
             && o.Operation.id <> target.Operation.id
             && o.Operation.inv < target.Operation.inv
           then Some o.Operation.id
           else None)
  in
  let n_required = List.length required in
  let objs = Array.of_list (History.objs h) in
  let obj_slot =
    let tbl = Hashtbl.create 8 in
    Array.iteri (fun i o -> Hashtbl.replace tbl o i) objs;
    fun o -> Hashtbl.find tbl o
  in
  let init_states = Array.map (fun o -> Spec.initial (cfg.spec_of_obj o)) objs in
  let budget = Budget.counter ?limit:cfg.node_budget ?poll:cfg.poll () in
  let bump () = Budget.bump budget in
  let memo = Memo.create 256 in
  let is_required = Array.make n false in
  List.iter (fun id -> is_required.(id) <- true) required;
  let rec dfs placed states n_placed_required =
    bump ();
    (* Can we close with the target now? *)
    let closes =
      n_placed_required = n_required
      &&
      let slot = obj_slot target.Operation.obj in
      let spec = cfg.spec_of_obj target.Operation.obj in
      Spec.is_legal_response spec states.(slot) target.Operation.op resp_value
    in
    if closes then true
    else begin
      let key = (placed, states) in
      if Memo.mem memo key then false
      else begin
        let success = ref false in
        let i = ref 0 in
        while (not !success) && !i < n do
          let id = !i in
          incr i;
          if candidate.(id) && not (Bitset.mem placed id) then begin
            let o = ops.(id) in
            let slot = obj_slot o.Operation.obj in
            let spec = cfg.spec_of_obj o.Operation.obj in
            (* Any legal transition: S need not preserve responses of
               other operations. *)
            List.iter
              (fun ((_ : Value.t), q') ->
                if not !success then begin
                  let states' = Array.copy states in
                  states'.(slot) <- q';
                  let n' = n_placed_required + Bool.to_int is_required.(id) in
                  if dfs (Bitset.add placed id) states' n' then success := true
                end)
              (List.sort_uniq
                 (fun (_, q1) (_, q2) -> Value.compare q1 q2)
                 (Spec.apply spec states.(slot) o.Operation.op))
          end
        done;
        if not !success then Memo.replace memo key ();
        !success
      end
    end
  in
  dfs (Bitset.empty n) init_states 0

(** [check cfg h] decides weak consistency of the whole history;
    returns the first violating operation if any. *)
let check cfg h =
  let rec go = function
    | [] -> Ok ()
    | (o : Operation.t) :: rest ->
      if op_ok cfg h o then go rest else Error o
  in
  go (History.complete_ops h)

let is_weakly_consistent cfg h =
  match check cfg h with Ok () -> true | Error _ -> false

(** Weak consistency (Definition 1): each completed operation must be
    justified by a legal sequential history over operations invoked
    before its response, containing all of its process's earlier
    operations, and ending with it returning its actual response. *)

open Elin_spec
open Elin_history

type config

(** Alias of {!Elin_kernel.Budget.Exceeded} (and hence of
    [Engine.Budget_exceeded]): one handler catches budget exhaustion
    from every checker. *)
exception Budget_exceeded

(** [poll] — cooperative hook run every
    [Elin_kernel.Budget.poll_interval] expansions; may raise to abort
    (timeouts/cancellation, see [lib/svc]). *)
val config :
  ?node_budget:int -> ?poll:(unit -> unit) -> (int -> Spec.t) -> config

val for_spec : ?node_budget:int -> ?poll:(unit -> unit) -> Spec.t -> config

(** [op_ok cfg h target] — Definition 1 for one completed operation. *)
val op_ok : config -> History.t -> Operation.t -> bool

(** [check cfg h] — first violating operation, if any. *)
val check : config -> History.t -> (unit, Operation.t) result

val is_weakly_consistent : config -> History.t -> bool

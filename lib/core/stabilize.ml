(** The paradox construction (Proposition 18): from an eventually
    linearizable fetch&increment implementation A, derive a fully
    linearizable fetch&increment implementation A′ over the same base
    objects.

    The paper's proof has three steps, each of which this module makes
    executable on concrete implementations:

    1. {b Stable configuration.}  A configuration C is stable when
       every execution extending αC is |αC|-linearizable.  Claim 1
       proves one exists; we *certify* stability by exhaustively
       exploring all extensions of C to a depth bound and checking
       t-linearizability of every leaf history with t = (number of
       history events at C).  For the concrete algorithm A =
       [Elin_runtime.Impls.fai_ev_board ~k], stabilization provably
       occurs once the board holds k announcements and no process is
       mid-operation, so the bounded certificate is exact there.

    2. {b Anchor operation.}  From C, reach C_idle by letting each
       process finish its current operation solo, then run one process
       solo until some fetch&inc op0 returns a value equal to the
       number of fetch&inc operations invoked before it.  The
       configuration C0 at op0's response fixes v0.

    3. {b Derivation.}  A′ = A with every base object initialized to
       its state in C0, every process's local memory initialized as in
       C0, and each response decremented by v0.  The final step
       verifies, again by exhaustive exploration, that A′ is
       linearizable from its new initial configuration. *)

open Elin_spec
open Elin_runtime
open Elin_explore

type stable_certificate = {
  config : Explore.config;
  cut : int;              (* t = history events at the configuration *)
  leaves_checked : int;
  extension_depth : int;
}

(** Which exhaustive engine certifies stability: the original
    sequential DFS ([Explore.iter_leaves_from]), or the parallel
    fingerprint-dedup model checker ([Elin_mc.Mc.check_from] —
    [domains = None] means the recommended domain count).  Both decide
    the same bounded property; [Mc] dedups the commuting-access
    diamonds of the extension tree and spreads levels across
    domains.  [por] is the sleep-set partial-order reduction
    (see {!Elin_mc.Indep}); it never changes the certificate. *)
type engine = Dfs | Mc of { domains : int option; dedup : bool; por : bool }

(** [certify impl config ~depth ~check] — bounded stability check:
    [check h ~t] must decide t-linearizability of the implemented
    type's histories. *)
let certify ?(engine = Dfs) (impl : Impl.t) (config : Explore.config) ~depth
    ~check =
  let cut = config.Explore.n_events in
  Elin_obs.Trace.with_span ~cat:"stabilize" "stabilize.certify"
    ~args:
      [ ("cut", Elin_obs.Jsonl.Int cut); ("depth", Elin_obs.Jsonl.Int depth) ]
  @@ fun () ->
  match engine with
  | Dfs ->
    let ok = ref true in
    let stats =
      Explore.iter_leaves_from impl config ~max_extra_steps:depth (fun c ->
          if not (check (Explore.history c) ~t:cut) then begin
            ok := false;
            raise Explore.Stop
          end)
    in
    if !ok then
      Some
        {
          config;
          cut;
          leaves_checked = stats.Explore.leaves;
          extension_depth = depth;
        }
    else None
  | Mc { domains; dedup; por } ->
    let out =
      Elin_mc.Mc.check_from impl config ~max_extra_steps:depth ?domains ~dedup
        ~por
        (fun h -> check h ~t:cut)
    in
    if out.Elin_mc.Mc.ok then
      Some
        {
          config;
          cut;
          leaves_checked = out.Elin_mc.Mc.stats.Elin_mc.Search.leaves;
          extension_depth = depth;
        }
    else None

(** [find_stable impl ~workloads ~path_sched ~max_path ~depth ~check]
    walks a single canonical execution path (scheduler [path_sched]
    picks the process, the first adversary branch is taken) and
    returns the first configuration along it that certifies stable.
    Claim 1 of the proof guarantees a stable configuration exists in
    the tree; for our concrete algorithms the canonical path reaches
    one quickly. *)
let find_stable ?engine (impl : Impl.t) ~workloads
    ?(path_sched = Sched.round_robin ()) ?(max_path = 200) ~depth ~check () =
  let rec walk c n =
    if n > max_path then None
    else
      match certify ?engine impl c ~depth ~check with
      | Some cert -> Some cert
      | None -> (
        match Explore.runnable c with
        | [] -> None
        | rs -> (
          match path_sched.Sched.choose ~runnable:rs ~step:c.Explore.steps with
          | None -> None
          | Some p -> (
            match Explore.step impl c p with
            | [] -> None
            | c' :: _ -> walk c' (n + 1))))
  in
  walk (Explore.initial_config impl ~workloads ()) 0

type anchor = {
  config0 : Explore.config; (* C0: right after op0's response *)
  v0 : int;                 (* ops linearized before the new origin *)
}

(** [find_anchor impl config ~proc ~fuel] — run [proc] solo from
    [config] (first adversary branch) until some fetch&inc returns
    exactly the number of operations invoked before it. *)
let find_anchor (impl : Impl.t) (config : Explore.config) ~proc ~fuel =
  let rec go c fuel pending_n_before =
    if fuel <= 0 then None
    else begin
      let pr = c.Explore.procs.(proc) in
      let pending_n_before =
        match pr.Explore.running with
        | None -> c.Explore.invocations (* next invoke will see this count *)
        | Some _ -> pending_n_before
      in
      match Explore.step impl c proc with
      | [] -> None
      | c' :: _ -> (
        (* Did this step emit op0's response? *)
        match c'.Explore.events_rev with
        | Elin_history.Event.{ proc = p; payload = Respond v; _ } :: _
          when p = proc && c'.Explore.n_events > c.Explore.n_events -> (
          match v with
          | Value.Int n when n = pending_n_before ->
            (* v0 counts the fetch&inc operations invoked on the path
               from the root to C0 — including op0 itself. *)
            Some { config0 = c'; v0 = c'.Explore.invocations }
          | _ -> go c' (fuel - 1) pending_n_before)
        | _ -> go c' (fuel - 1) pending_n_before)
    end
  in
  go config fuel 0

(** [derive impl anchor] — build A′: base objects and process-local
    memories initialized as in C0, responses shifted down by v0.
    Returns the implementation and the per-process initial locals. *)
let derive (impl : Impl.t) (anchor : anchor) : Impl.t * Value.t array =
  let c0 = anchor.config0 in
  let bases =
    Array.mapi
      (fun i (b : Base.t) -> { b with Base.init = c0.Explore.bases.(i) })
      impl.Impl.bases
  in
  let shift v =
    match v with
    | Value.Int n -> Value.int (n - anchor.v0)
    | v -> v
  in
  let rec shift_result (m : (Value.t * Value.t) Program.t) =
    match m with
    | Program.Return (r, l) -> Program.Return (shift r, l)
    | Program.Access (obj, op, k) ->
      Program.Access (obj, op, fun v -> shift_result (k v))
  in
  let impl' =
    {
      Impl.name = impl.Impl.name ^ "/stabilized";
      bases;
      local_init = impl.Impl.local_init;
      program =
        (fun ~proc ~local op -> shift_result (impl.Impl.program ~proc ~local op));
    }
  in
  let locals =
    Array.map (fun pr -> pr.Explore.local) c0.Explore.procs
  in
  (impl', locals)

type outcome = {
  certificate : stable_certificate;
  anchor : anchor;
  derived : Impl.t;
  derived_locals : Value.t array;
}

(** [construct impl ~workloads ~anchor_proc ~depth ~check ~fuel] — the
    whole pipeline: find a stable configuration, idle it, anchor, and
    derive A′. *)
let construct ?engine (impl : Impl.t) ~workloads ?(anchor_proc = 0) ~depth
    ~check ?(fuel = 400) () =
  let phase name f =
    Elin_obs.Trace.with_span ~cat:"stabilize" ("stabilize." ^ name) f
  in
  match
    phase "find_stable" (fun () ->
        find_stable ?engine impl ~workloads ~depth ~check ())
  with
  | None -> None
  | Some cert -> (
    match
      phase "idle" (fun () ->
          Explore.complete_current_ops impl cert.config ~fuel)
    with
    | None -> None
    | Some c_idle -> (
      match
        phase "anchor" (fun () ->
            find_anchor impl c_idle ~proc:anchor_proc ~fuel)
      with
      | None -> None
      | Some anchor ->
        let derived, derived_locals =
          phase "derive" (fun () -> derive impl anchor)
        in
        Some { certificate = cert; anchor; derived; derived_locals }))

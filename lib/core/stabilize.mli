(** The paradox construction (Proposition 18): from an eventually
    linearizable fetch&increment implementation A over linearizable
    base objects, derive a fully linearizable one A′ over the same
    bases — by (1) certifying a {e stable configuration} C (every
    bounded extension stays |history-at-C|-linearizable), (2) idling
    the processes and running one solo until an operation op0 returns
    the number of operations invoked before it (fixing v0), and
    (3) re-initializing A at that configuration with responses shifted
    down by v0. *)

open Elin_spec
open Elin_runtime
open Elin_explore

type stable_certificate = {
  config : Explore.config;
  cut : int;  (** t = history events at the configuration *)
  leaves_checked : int;
  extension_depth : int;
}

(** Which exhaustive engine certifies stability: the original
    sequential DFS ([Explore.iter_leaves_from]) or the parallel
    fingerprint-dedup model checker ([Elin_mc.Mc.check_from];
    [domains = None] = recommended domain count).  Both decide the
    same bounded property.  [por] enables the sleep-set partial-order
    reduction (it never changes the certificate). *)
type engine = Dfs | Mc of { domains : int option; dedup : bool; por : bool }

(** [certify impl config ~depth ~check] — bounded stability check;
    [check h ~t] decides t-linearizability of the implemented type. *)
val certify :
  ?engine:engine ->
  Impl.t ->
  Explore.config ->
  depth:int ->
  check:(Elin_history.History.t -> t:int -> bool) ->
  stable_certificate option

(** Walk a canonical execution path and return the first configuration
    that certifies stable (Claim 1 guarantees one exists in the tree). *)
val find_stable :
  ?engine:engine ->
  Impl.t ->
  workloads:Op.t list array ->
  ?path_sched:Sched.t ->
  ?max_path:int ->
  depth:int ->
  check:(Elin_history.History.t -> t:int -> bool) ->
  unit ->
  stable_certificate option

type anchor = {
  config0 : Explore.config;  (** C0: right after op0's response *)
  v0 : int;  (** operations linearized before the new origin *)
}

(** Run [proc] solo from [config] until some fetch&inc returns exactly
    the number of operations invoked before it. *)
val find_anchor :
  Impl.t -> Explore.config -> proc:int -> fuel:int -> anchor option

(** [derive impl anchor] — A′ (bases and response shift) plus the
    per-process initial locals snapshotted at C0. *)
val derive : Impl.t -> anchor -> Impl.t * Value.t array

type outcome = {
  certificate : stable_certificate;
  anchor : anchor;
  derived : Impl.t;
  derived_locals : Value.t array;
}

(** The whole pipeline: find stable, idle, anchor, derive. *)
val construct :
  ?engine:engine ->
  Impl.t ->
  workloads:Op.t list array ->
  ?anchor_proc:int ->
  depth:int ->
  check:(Elin_history.History.t -> t:int -> bool) ->
  ?fuel:int ->
  unit ->
  outcome option

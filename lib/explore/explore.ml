(** Bounded exhaustive exploration of an implementation's executions.

    Enumerates *every* interleaving of process steps (and every
    adversary choice of the base objects) up to a depth bound, feeding
    each leaf history to a caller-supplied predicate.  Because weak
    consistency is prefix-closed (Lemma 10) and t-linearizability is
    prefix-closed (Lemma 6), checking leaves covers all shorter
    histories, so "every history of the implementation up to depth d
    satisfies P" is decided exactly.

    Configurations are first-class (immutable programmes, value-encoded
    object states), which the Prop. 18 stabilization machinery uses to
    search for stable configurations and to restart executions from
    them. *)

open Elin_spec
open Elin_history
open Elin_runtime

type proc_state = {
  todo : Op.t list;
  local : Value.t;
  running : (Value.t * Value.t) Program.t option;
}

type config = {
  procs : proc_state array;
  bases : Value.t array;
  events_rev : Event.t list;
  n_events : int;
  steps : int;
  (* Number of implemented-object operations invoked so far. *)
  invocations : int;
}

let initial_config (impl : Impl.t) ~workloads ?locals () =
  let n = Array.length workloads in
  let locals =
    match locals with
    | Some ls -> ls
    | None -> Array.make n impl.Impl.local_init
  in
  {
    procs =
      Array.init n (fun p ->
          { todo = workloads.(p); local = locals.(p); running = None });
    bases = Array.map (fun (b : Base.t) -> b.Base.init) impl.Impl.bases;
    events_rev = [];
    n_events = 0;
    steps = 0;
    invocations = 0;
  }

let history c = History.of_events (List.rev c.events_rev)

let runnable c =
  List.filter
    (fun p ->
      let pr = c.procs.(p) in
      Option.is_some pr.running || pr.todo <> [])
    (List.init (Array.length c.procs) (fun p -> p))

let is_quiescent c =
  Array.for_all (fun pr -> Option.is_none pr.running) c.procs

let is_done c = runnable c = []

let set_proc c p pr =
  let procs = Array.copy c.procs in
  procs.(p) <- pr;
  { c with procs }

(** [access_choices impl c p] — the (response, next-state) choices of
    the base access process [p] is poised on.  Raises when [p]'s next
    step is not an access.  Callers that need the choices {e and} the
    stepped configurations ({!Elin_mc}'s digest labelling, footprint
    computation) evaluate [Base.access] once here and pass the result
    back through [step]'s [?choices]. *)
let access_choices (impl : Impl.t) c p =
  match c.procs.(p).running with
  | Some (Program.Access (obj, op, _)) ->
    impl.Impl.bases.(obj).Base.access ~state:c.bases.(obj) ~proc:p
      ~step:c.steps op
  | Some (Program.Return _) | None ->
    invalid_arg "Explore.access_choices: process not poised on an access"

(** [step c p] — all configurations reachable by letting process [p]
    take one atomic step (several when the stepped base object offers
    an adversary choice).  [?choices] short-circuits the [Base.access]
    enumeration on the access branch; it must be exactly
    [access_choices impl c p]. *)
let step ?choices (impl : Impl.t) c p =
  let pr = c.procs.(p) in
  match pr.running with
  | None -> (
    match pr.todo with
    | [] -> []
    | op :: rest ->
      let pr' =
        {
          todo = rest;
          local = pr.local;
          running = Some (impl.Impl.program ~proc:p ~local:pr.local op);
        }
      in
      let c' = set_proc c p pr' in
      [
        {
          c' with
          events_rev = Event.invoke ~proc:p ~obj:0 op :: c.events_rev;
          n_events = c.n_events + 1;
          steps = c.steps + 1;
          invocations = c.invocations + 1;
        };
      ])
  | Some (Program.Return (resp, local')) ->
    let pr' = { pr with local = local'; running = None } in
    let c' = set_proc c p pr' in
    [
      {
        c' with
        events_rev = Event.respond ~proc:p ~obj:0 resp :: c.events_rev;
        n_events = c.n_events + 1;
        steps = c.steps + 1;
      };
    ]
  | Some (Program.Access (obj, _, k)) ->
    let choices =
      match choices with
      | Some cs -> cs
      | None -> access_choices impl c p
    in
    List.map
      (fun (resp, state') ->
        let bases = Array.copy c.bases in
        bases.(obj) <- state';
        let pr' = { pr with running = Some (k resp) } in
        let c' = set_proc c p pr' in
        { c' with bases; steps = c.steps + 1 })
      choices

(** [successors impl c] — every configuration one step away. *)
let successors impl c =
  List.concat_map (fun p -> step impl c p) (runnable c)

type stats = { mutable nodes : int; mutable leaves : int; mutable truncated : int }

exception Stop

(** [iter_leaves impl ~workloads ~max_steps f] — call [f] on the
    history of every leaf: executions that finished all workloads and
    executions cut at the depth bound.  [f] may raise [Stop].
    Returns exploration stats. *)
let iter_leaves (impl : Impl.t) ~workloads ?locals ?(max_steps = 40) f =
  let stats = { nodes = 0; leaves = 0; truncated = 0 } in
  let rec dfs c =
    stats.nodes <- stats.nodes + 1;
    if is_done c then begin
      stats.leaves <- stats.leaves + 1;
      f c
    end
    else if c.steps >= max_steps then begin
      stats.leaves <- stats.leaves + 1;
      stats.truncated <- stats.truncated + 1;
      f c
    end
    else List.iter dfs (successors impl c)
  in
  (try dfs (initial_config impl ~workloads ?locals ()) with Stop -> ());
  stats

(** [iter_leaves_from impl c0 ~max_extra_steps f] — like [iter_leaves]
    but exploring every extension of configuration [c0] by at most
    [max_extra_steps] steps. *)
let iter_leaves_from (impl : Impl.t) c0 ~max_extra_steps f =
  let stats = { nodes = 0; leaves = 0; truncated = 0 } in
  let budget = c0.steps + max_extra_steps in
  let rec dfs c =
    stats.nodes <- stats.nodes + 1;
    if is_done c then begin
      stats.leaves <- stats.leaves + 1;
      f c
    end
    else if c.steps >= budget then begin
      stats.leaves <- stats.leaves + 1;
      stats.truncated <- stats.truncated + 1;
      f c
    end
    else List.iter dfs (successors impl c)
  in
  (try dfs c0 with Stop -> ());
  stats

(** [for_all_histories impl ~workloads ~max_steps p] — true iff [p]
    holds on every leaf history; returns the first counterexample
    otherwise. *)
let for_all_histories impl ~workloads ?locals ?max_steps p =
  let counterexample = ref None in
  let stats =
    iter_leaves impl ~workloads ?locals ?max_steps (fun c ->
        let h = history c in
        if not (p h) then begin
          counterexample := Some h;
          raise Stop
        end)
  in
  (Option.is_none !counterexample, !counterexample, stats)

(** [exists_history impl ~workloads ~max_steps p] — dual. *)
let exists_history impl ~workloads ?locals ?max_steps p =
  let witness = ref None in
  let _stats =
    iter_leaves impl ~workloads ?locals ?max_steps (fun c ->
        let h = history c in
        if p h then begin
          witness := Some h;
          raise Stop
        end)
  in
  !witness

(** [iter_configs impl ~workloads ~max_steps f] — call [f] on every
    reachable configuration (pre-order), not only leaves. *)
let iter_configs (impl : Impl.t) ~workloads ?locals ?(max_steps = 40) f =
  let stats = { nodes = 0; leaves = 0; truncated = 0 } in
  let rec dfs c =
    stats.nodes <- stats.nodes + 1;
    f c;
    if (not (is_done c)) && c.steps < max_steps then
      List.iter dfs (successors impl c)
    else stats.leaves <- stats.leaves + 1
  in
  (try dfs (initial_config impl ~workloads ?locals ()) with Stop -> ());
  stats

(** [run_deterministic impl c ~sched_order] — advance [c] by the given
    process order, always taking the *first* adversary choice; used to
    drive a fixed execution from a configuration (solo runs in the
    Prop. 18 construction). *)
let run_solo (impl : Impl.t) c p ~until =
  let rec go c fuel =
    if fuel = 0 then None
    else
      match until c with
      | Some r -> Some (c, r)
      | None -> (
        match step impl c p with
        | [] -> None
        | c' :: _ -> go c' (fuel - 1))
  in
  go c

(** [complete_current_ops impl c] — the paper's C_idle: let each
    process run solo until its pending operation (if any) completes.
    Takes the first adversary branch.  Returns [None] if some
    operation fails to complete within [fuel] solo steps (the
    implementation would not be non-blocking). *)
let complete_current_ops (impl : Impl.t) c ~fuel =
  let n = Array.length c.procs in
  let rec idle_proc c p =
    if p >= n then Some c
    else
      let pr = c.procs.(p) in
      match pr.running with
      | None -> idle_proc c (p + 1)
      | Some _ -> (
        match
          run_solo impl c p ~until:(fun c' ->
              if Option.is_none c'.procs.(p).running then Some () else None)
            fuel
        with
        | Some (c', ()) -> idle_proc c' (p + 1)
        | None -> None)
  in
  idle_proc c 0

(** Bounded exhaustive exploration of an implementation's executions:
    every interleaving of process steps and every adversary choice of
    the base objects, up to a depth bound.  Because weak consistency is
    prefix-closed (Lemma 10) and t-linearizability is prefix-closed
    (Lemma 6), checking leaf histories covers all shorter ones.

    Configurations are first-class (immutable programmes, value-encoded
    object states); the Prop. 18 machinery uses them to search for
    stable configurations and restart executions from them. *)

open Elin_spec
open Elin_history
open Elin_runtime

type proc_state = {
  todo : Op.t list;
  local : Value.t;
  running : (Value.t * Value.t) Program.t option;
}

type config = {
  procs : proc_state array;
  bases : Value.t array;
  events_rev : Event.t list;
  n_events : int;
  steps : int;
  invocations : int;  (** implemented-object operations invoked so far *)
}

val initial_config :
  Impl.t -> workloads:Op.t list array -> ?locals:Value.t array -> unit -> config

(** [history c] — the implemented-object history at [c]. *)
val history : config -> History.t

val runnable : config -> int list

(** No process is mid-operation. *)
val is_quiescent : config -> bool

(** All workloads finished. *)
val is_done : config -> bool

(** [access_choices impl c p] — the (response, next-state) choices of
    the base access [p] is poised on; raises [Invalid_argument] when
    [p]'s next step is not an access.  Lets callers that need both the
    choices and the stepped configurations evaluate [Base.access] once
    and pass it back through [step]'s [?choices]. *)
val access_choices : Impl.t -> config -> int -> (Value.t * Value.t) list

(** [step impl c p] — all configurations after process [p]'s next
    atomic step (several when a base object offers an adversary
    choice).  [?choices] must be [access_choices impl c p] when
    given. *)
val step : ?choices:(Value.t * Value.t) list -> Impl.t -> config -> int -> config list

val successors : Impl.t -> config -> config list

type stats = {
  mutable nodes : int;
  mutable leaves : int;
  mutable truncated : int;
}

exception Stop

(** [iter_leaves impl ~workloads ?locals ?max_steps f] — call [f] on
    every leaf configuration (finished, or cut at the bound).  [f] may
    raise {!Stop}. *)
val iter_leaves :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  (config -> unit) ->
  stats

(** Like {!iter_leaves} but exploring every extension of [c0] by at
    most [max_extra_steps] steps. *)
val iter_leaves_from :
  Impl.t -> config -> max_extra_steps:int -> (config -> unit) -> stats

(** [for_all_histories impl ~workloads p] — [(ok, counterexample,
    stats)]. *)
val for_all_histories :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  (History.t -> bool) ->
  bool * History.t option * stats

val exists_history :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  (History.t -> bool) ->
  History.t option

(** Visit every reachable configuration (pre-order), not only leaves. *)
val iter_configs :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  (config -> unit) ->
  stats

(** [run_solo impl c p ~until fuel] — step [p] alone (first adversary
    branch) until [until] yields a value or [fuel] runs out. *)
val run_solo :
  Impl.t ->
  config ->
  int ->
  until:(config -> 'a option) ->
  int ->
  (config * 'a) option

(** The paper's C_idle: let each process run solo until its pending
    operation completes.  [None] if some operation needs more than
    [fuel] solo steps (the implementation would not be non-blocking). *)
val complete_current_ops : Impl.t -> config -> fuel:int -> config option

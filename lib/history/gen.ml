(** Seeded generators of concurrent histories.

    Everything is driven by [Elin_kernel.Prng] so that a generated
    history is a pure function of its seed.  Three families:

    - [linearizable]: genuinely concurrent histories guaranteed
      linearizable by construction (each operation gets an explicit
      internal linearization point between invocation and response);
    - [eventually_linearizable]: histories that misbehave (local-copy
      semantics, hence weakly consistent) for a prefix and then behave
      linearizably on the merged state — the canonical shape of an
      eventually linearizable object's lifetime;
    - [corrupt]: response-flipped mutants for negative tests. *)

open Elin_kernel
open Elin_spec

type proc_status =
  | Idle
  | Invoked of Op.t
  | Linearized of Op.t * Value.t

(** [linearizable rng ~spec ~procs ~n_ops] generates a linearizable
    history of exactly [n_ops] completed operations by [procs]
    processes on object 0.  Each operation is linearized at a random
    internal point between its invocation and its response, so the
    generated histories exercise genuine concurrency. *)
let linearizable rng ~spec ~procs ~n_ops () =
  let status = Array.make procs Idle in
  let state = ref (Spec.initial spec) in
  let events = ref [] in
  let invoked = ref 0 in
  let completed = ref 0 in
  let emit e = events := e :: !events in
  while !completed < n_ops do
    let actions = ref [] in
    Array.iteri
      (fun p s ->
        match s with
        | Idle -> if !invoked < n_ops then actions := `Invoke p :: !actions
        | Invoked _ -> actions := `Linearize p :: !actions
        | Linearized _ -> actions := `Respond p :: !actions)
      status;
    match Prng.choose rng !actions with
    | `Invoke p ->
      let op = Prng.choose rng (Spec.all_ops spec) in
      emit (Event.invoke ~proc:p ~obj:0 op);
      status.(p) <- Invoked op;
      incr invoked
    | `Linearize p -> (
      match status.(p) with
      | Invoked op ->
        let r, q' = Prng.choose rng (Spec.apply spec !state op) in
        state := q';
        status.(p) <- Linearized (op, r)
      | _ -> assert false)
    | `Respond p -> (
      match status.(p) with
      | Linearized (_, r) ->
        emit (Event.respond ~proc:p ~obj:0 r);
        status.(p) <- Idle;
        incr completed
      | _ -> assert false)
  done;
  History.of_events (List.rev !events)

(** [with_pending rng ~procs h] leaves some operations of [h] pending:
    for a random subset of processes, the response of the process's
    *last* operation is removed (removing any other response would
    break well-formedness of H|p). *)
let with_pending rng ~procs h =
  let last_resp_of_proc p =
    List.fold_left
      (fun acc (o : Operation.t) ->
        if o.Operation.proc = p then
          match Operation.response_index o, acc with
          | Some ri, Some best -> Some (max ri best)
          | Some ri, None -> Some ri
          | None, _ -> acc
        else acc)
      None (History.ops h)
  in
  let drop_resp_idx =
    List.filter_map
      (fun p -> if Prng.bool rng then last_resp_of_proc p else None)
      (List.init procs (fun p -> p))
  in
  let events =
    List.filteri (fun i _ -> not (List.mem i drop_resp_idx)) (History.events h)
  in
  History.of_events events

let linearizable_with_pending rng ~spec ~procs ~n_ops () =
  with_pending rng ~procs (linearizable rng ~spec ~procs ~n_ops ())

(** [eventually_linearizable rng ~spec ~procs ~prefix_ops ~suffix_ops]
    generates a history whose first phase serves every process from a
    local copy (weakly consistent, generally not linearizable), then
    merges all phase-one operations in invocation order and continues
    linearizably.  Returns the history and the index of the first
    post-merge event (a valid stabilization bound candidate). *)
let eventually_linearizable rng ~spec ~procs ~prefix_ops ~suffix_ops () =
  let events = ref [] in
  let emit e = events := e :: !events in
  let n_events = ref 0 in
  let emit e = emit e; incr n_events in
  (* Phase 1: local copies.  Each process interleaves invocations and
     responses computed from its own operations only. *)
  let local_state = Array.make procs (Spec.initial spec) in
  let status = Array.make procs Idle in
  let all_phase1_ops = ref [] (* (inv order, proc, op) *) in
  let invoked = ref 0 in
  let completed = ref 0 in
  while !completed < prefix_ops do
    let actions = ref [] in
    Array.iteri
      (fun p s ->
        match s with
        | Idle -> if !invoked < prefix_ops then actions := `Invoke p :: !actions
        | Invoked _ -> actions := `Respond p :: !actions
        | Linearized _ -> assert false)
      status;
    match Prng.choose rng !actions with
    | `Invoke p ->
      let op = Prng.choose rng (Spec.all_ops spec) in
      emit (Event.invoke ~proc:p ~obj:0 op);
      status.(p) <- Invoked op;
      all_phase1_ops := (p, op) :: !all_phase1_ops;
      incr invoked
    | `Respond p -> (
      match status.(p) with
      | Invoked op ->
        let r, q' = Prng.choose rng (Spec.apply spec local_state.(p) op) in
        local_state.(p) <- q';
        emit (Event.respond ~proc:p ~obj:0 r);
        status.(p) <- Idle;
        incr completed
      | _ -> assert false)
  done;
  (* Merge: replay every phase-one operation, in invocation order, into
     a single committed state. *)
  let merged =
    List.fold_left
      (fun q (_, op) ->
        match Spec.apply spec q op with
        | (_, q') :: _ -> q'
        | [] -> q)
      (Spec.initial spec)
      (List.rev !all_phase1_ops)
  in
  let stabilization = !n_events in
  (* Phase 2: linearizable generation from the merged state. *)
  let spec2 = Spec.with_initial spec merged in
  let h2 = linearizable rng ~spec:spec2 ~procs ~n_ops:suffix_ops () in
  let h = History.of_events (List.rev !events @ History.events h2) in
  (h, stabilization)

(** [corrupt rng h ~spec] flips one completed operation's response to a
    different value of the same shape; returns [None] when the history
    has no completed operation. *)
let corrupt rng h =
  match History.complete_ops h with
  | [] -> None
  | complete ->
    let victim = Prng.choose rng complete in
    let _, ridx = Option.get victim.Operation.resp in
    let mutate (v : Value.t) : Value.t =
      match v with
      | Value.Int n -> Value.Int (n + 1 + Prng.int rng 3)
      | Value.Bool b -> Value.Bool (not b)
      | Value.Unit -> Value.Int 0
      | Value.Str s -> Value.Str (s ^ "'")
      | Value.Pair (a, b) -> Value.Pair (b, a)
      | Value.List xs -> Value.List (Value.Int 99 :: xs)
    in
    let events =
      List.mapi
        (fun i (e : Event.t) ->
          if i = ridx then
            match e.payload with
            | Event.Respond v -> Event.respond ~proc:e.proc ~obj:e.obj (mutate v)
            | Event.Invoke _ -> e
          else e)
        (History.events h)
    in
    Some (History.of_events events)

(* ------------------------------------------------------------------ *)
(* Mixed-object histories                                              *)

(** [mixed rng ~spec_of_obj ~objs ~procs ~n_ops ()] — a linearizable
    multi-object history: each invocation picks a random object in
    [0, objs), every process may touch every object, and each
    operation linearizes at a random internal point against its
    object's state (per-object states evolve independently, which is
    exactly Herlihy–Wing locality). *)
let mixed rng ~spec_of_obj ~objs ~procs ~n_ops () =
  let status = Array.make procs `Idle in
  let state = Array.init objs (fun o -> Spec.initial (spec_of_obj o)) in
  let events = ref [] in
  let invoked = ref 0 in
  let completed = ref 0 in
  let emit e = events := e :: !events in
  while !completed < n_ops do
    let actions = ref [] in
    Array.iteri
      (fun p s ->
        match s with
        | `Idle -> if !invoked < n_ops then actions := `Invoke p :: !actions
        | `Invoked _ -> actions := `Linearize p :: !actions
        | `Linearized _ -> actions := `Respond p :: !actions)
      status;
    match Prng.choose rng !actions with
    | `Invoke p ->
      let o = Prng.int rng objs in
      let op = Prng.choose rng (Spec.all_ops (spec_of_obj o)) in
      emit (Event.invoke ~proc:p ~obj:o op);
      status.(p) <- `Invoked (o, op);
      incr invoked
    | `Linearize p -> (
      match status.(p) with
      | `Invoked (o, op) ->
        let r, q' = Prng.choose rng (Spec.apply (spec_of_obj o) state.(o) op) in
        state.(o) <- q';
        status.(p) <- `Linearized (o, r)
      | _ -> assert false)
    | `Respond p -> (
      match status.(p) with
      | `Linearized (o, r) ->
        emit (Event.respond ~proc:p ~obj:o r);
        status.(p) <- `Idle;
        incr completed
      | _ -> assert false)
  done;
  History.of_events (List.rev !events)

let mixed_with_pending rng ~spec_of_obj ~objs ~procs ~n_ops () =
  with_pending rng ~procs (mixed rng ~spec_of_obj ~objs ~procs ~n_ops ())

(* Seeded riffle of per-object event streams: repeatedly pick a source
   with probability proportional to its remaining length (a uniform
   random interleaving).  Processes are disjoint across sources, so
   the merge preserves well-formedness.  Returns the merged events and
   the least merged index containing every source's marked prefix. *)
let riffle rng sources =
  let arrs = Array.of_list (List.map (fun (evs, mark) -> (Array.of_list evs, mark)) sources) in
  let n = Array.length arrs in
  let pos = Array.make n 0 in
  let remaining = ref (Array.fold_left (fun s (a, _) -> s + Array.length a) 0 arrs) in
  let bound = ref 0 in
  let merged = ref [] in
  let emitted = ref 0 in
  while !remaining > 0 do
    let r = ref (Prng.int rng !remaining) in
    let j = ref 0 in
    while
      let left = Array.length (fst arrs.(!j)) - pos.(!j) in
      if !r < left then false else (r := !r - left; incr j; true)
    do () done;
    let a, mark = arrs.(!j) in
    merged := a.(pos.(!j)) :: !merged;
    pos.(!j) <- pos.(!j) + 1;
    incr emitted;
    if pos.(!j) = mark then bound := max !bound !emitted;
    decr remaining
  done;
  (List.rev !merged, !bound)

(** [mixed_eventual rng ~spec_of_obj ~objs ~procs ~prefix_ops
    ~suffix_ops ()] — an eventually linearizable multi-object history:
    one {!eventually_linearizable} history per object (on [procs]
    processes of its own — process ids are [o * procs + p], disjoint
    across objects), riffle-interleaved.  Returns the history and a
    valid composed stabilization-bound candidate (the least merged
    index containing every object's stabilization prefix). *)
let mixed_eventual rng ~spec_of_obj ~objs ~procs ~prefix_ops ~suffix_ops () =
  let sources =
    List.init objs (fun o ->
        let h, stab =
          eventually_linearizable rng ~spec:(spec_of_obj o) ~procs ~prefix_ops
            ~suffix_ops ()
        in
        let retag (e : Event.t) =
          { e with Event.proc = (o * procs) + e.Event.proc; obj = o }
        in
        (List.map retag (History.events h), stab))
  in
  let events, bound = riffle rng sources in
  (History.of_events events, bound)

(* QCheck plumbing: a generator is a seed, materialized through Prng,
   so failures print a reproducible seed. *)

let qcheck_seed = QCheck2.Gen.int_range 0 1_000_000_000

let arbitrary_linearizable ~spec ~procs ~n_ops =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Prng.create seed in
      (seed, linearizable rng ~spec ~procs ~n_ops ()))
    qcheck_seed

let arbitrary_mixed ~spec_of_obj ~objs ~procs ~n_ops =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Prng.create seed in
      (seed, mixed rng ~spec_of_obj ~objs ~procs ~n_ops ()))
    qcheck_seed

let arbitrary_eventually ~spec ~procs ~prefix_ops ~suffix_ops =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Prng.create seed in
      let h, t =
        eventually_linearizable rng ~spec ~procs ~prefix_ops ~suffix_ops ()
      in
      (seed, h, t))
    qcheck_seed

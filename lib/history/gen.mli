(** Seeded generators of concurrent histories.

    Everything is driven by [Elin_kernel.Prng], so a generated history
    is a pure function of its seed. *)

open Elin_kernel
open Elin_spec

(** [linearizable rng ~spec ~procs ~n_ops ()] — a linearizable history
    of exactly [n_ops] completed operations on object 0, with genuine
    concurrency (each operation linearizes at a random internal
    point). *)
val linearizable :
  Prng.t -> spec:Spec.t -> procs:int -> n_ops:int -> unit -> History.t

(** [with_pending rng ~procs h] removes the response of the last
    operation of a random subset of processes, leaving them pending. *)
val with_pending : Prng.t -> procs:int -> History.t -> History.t

(** Like {!linearizable}, but for a random subset of processes the last
    operation's response is removed, leaving it pending. *)
val linearizable_with_pending :
  Prng.t -> spec:Spec.t -> procs:int -> n_ops:int -> unit -> History.t

(** [mixed rng ~spec_of_obj ~objs ~procs ~n_ops ()] — a linearizable
    multi-object history over objects [0, objs): each invocation picks
    a random object and every process may touch every object. *)
val mixed :
  Prng.t ->
  spec_of_obj:(int -> Spec.t) ->
  objs:int ->
  procs:int ->
  n_ops:int ->
  unit ->
  History.t

val mixed_with_pending :
  Prng.t ->
  spec_of_obj:(int -> Spec.t) ->
  objs:int ->
  procs:int ->
  n_ops:int ->
  unit ->
  History.t

(** [mixed_eventual rng ~spec_of_obj ~objs ~procs ~prefix_ops
    ~suffix_ops ()] — one {!eventually_linearizable} history per
    object on its own [procs] processes (ids [o * procs + p]), riffle-
    interleaved into one history.  Returns the history and a valid
    composed stabilization-bound candidate. *)
val mixed_eventual :
  Prng.t ->
  spec_of_obj:(int -> Spec.t) ->
  objs:int ->
  procs:int ->
  prefix_ops:int ->
  suffix_ops:int ->
  unit ->
  History.t * int

(** [eventually_linearizable rng ~spec ~procs ~prefix_ops ~suffix_ops ()]
    — a history whose first phase serves every process from a local
    copy (weakly consistent, generally not linearizable), then merges
    all phase-one operations in invocation order and continues
    linearizably.  Returns the history and the index of the first
    post-merge event (a valid stabilization-bound candidate). *)
val eventually_linearizable :
  Prng.t ->
  spec:Spec.t ->
  procs:int ->
  prefix_ops:int ->
  suffix_ops:int ->
  unit ->
  History.t * int

(** [corrupt rng h] flips one completed operation's response to a
    different value; [None] when there is no completed operation. *)
val corrupt : Prng.t -> History.t -> History.t option

(** QCheck plumbing: generators materialize through a printed seed so
    failures are reproducible. *)

val qcheck_seed : int QCheck2.Gen.t

val arbitrary_linearizable :
  spec:Spec.t -> procs:int -> n_ops:int -> (int * History.t) QCheck2.Gen.t

val arbitrary_mixed :
  spec_of_obj:(int -> Spec.t) ->
  objs:int ->
  procs:int ->
  n_ops:int ->
  (int * History.t) QCheck2.Gen.t

val arbitrary_eventually :
  spec:Spec.t ->
  procs:int ->
  prefix_ops:int ->
  suffix_ops:int ->
  (int * History.t * int) QCheck2.Gen.t

(** Reusable (cyclic) barrier for a fixed party of domains.

    Built on [Mutex]/[Condition] rather than a spin loop: the sharded
    search runs more domains than cores on small machines (CI is often
    single-core), where a spinning waiter burns the very timeslice the
    straggler needs.  A blocked waiter costs one lock round per phase —
    three orders of magnitude cheaper than the [Domain.spawn] per BFS
    level it replaces.

    {2 Poisoning}

    A worker that dies mid-phase (e.g. a budget-bounded [expand]
    raising) must not strand its peers in [await] forever.  [poison]
    wakes every waiter and turns every present and future [await] into
    raising {!Poisoned}; workers treat that as "abandon the search" and
    unwind, after which the spawner re-raises the original exception. *)

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable epoch : int;  (* completed phases; waiters key on it changing *)
  mutable poisoned : bool;
}

exception Poisoned

let create parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    parties;
    arrived = 0;
    epoch = 0;
    poisoned = false;
  }

let parties t = t.parties

let await t =
  Mutex.lock t.lock;
  if t.poisoned then begin
    Mutex.unlock t.lock;
    raise Poisoned
  end;
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    t.arrived <- 0;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock
  end
  else begin
    let e = t.epoch in
    while t.epoch = e && not t.poisoned do
      Condition.wait t.cond t.lock
    done;
    let p = t.poisoned in
    Mutex.unlock t.lock;
    if p then raise Poisoned
  end

let poison t =
  Mutex.lock t.lock;
  t.poisoned <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.lock

let poisoned t =
  Mutex.lock t.lock;
  let p = t.poisoned in
  Mutex.unlock t.lock;
  p

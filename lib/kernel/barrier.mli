(** Reusable (cyclic) barrier for a fixed party of domains, blocking
    ([Mutex]/[Condition], domain-safe in OCaml 5 — never spins, so it
    behaves on machines with fewer cores than parties), with a poison
    escape hatch so one dying worker releases the rest. *)

type t

exception Poisoned

(** [create parties] — a barrier [parties] callers must reach before
    any proceeds.  Reusable: the (parties+1)-th arrival starts the next
    phase. *)
val create : int -> t

val parties : t -> int

(** Block until all [parties] callers have arrived in this phase.
    @raise Poisoned if {!poison} was or is called before the phase
    completes (the barrier stays poisoned forever after). *)
val await : t -> unit

(** Permanently break the barrier: every blocked and future [await]
    raises {!Poisoned}.  Idempotent. *)
val poison : t -> unit

val poisoned : t -> bool

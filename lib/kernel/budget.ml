(** Node-budget accounting shared by the checkers.

    Every bounded search in the repo (the t-linearization engine, the
    weak-consistency checker) signals exhaustion with the single
    exception {!Exceeded}, so callers catch one exception no matter
    which checker blew its budget.  The checkers re-export it under
    their historical names ([Engine.Budget_exceeded],
    [Weak.Budget_exceeded]) via exception rebinding, so existing
    handlers keep working and now also catch each other's overruns.

    A counter can additionally carry a [poll] hook, invoked every
    {!poll_interval} bumps: the serving layer's cooperative
    wall-clock-timeout and cancellation checks live there,
    piggybacking on the bump the hot DFS loop already pays instead of
    adding a second per-node test. *)

exception Exceeded

(* Polling every 256 bumps keeps the hook off the hot path (a land +
   branch per bump) while bounding how long a search can overrun its
   deadline: 256 DFS expansions are microseconds. *)
let poll_interval = 256

type counter = {
  limit : int option;
  poll : (unit -> unit) option;
  mutable spent : int;
}

let counter ?limit ?poll () = { limit; poll; spent = 0 }

let spent c = c.spent

(** [bump c] — account one unit of work; raises {!Exceeded} once the
    limit is passed ([None] = unbounded).  Runs the [poll] hook every
    {!poll_interval} bumps; whatever it raises propagates. *)
let bump c =
  c.spent <- c.spent + 1;
  (match c.poll with
  | Some f when c.spent land (poll_interval - 1) = 0 -> f ()
  | Some _ | None -> ());
  match c.limit with Some b when c.spent > b -> raise Exceeded | _ -> ()

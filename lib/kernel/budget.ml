(** Node-budget accounting shared by the checkers.

    Every bounded search in the repo (the t-linearization engine, the
    weak-consistency checker) signals exhaustion with the single
    exception {!Exceeded}, so callers catch one exception no matter
    which checker blew its budget.  The checkers re-export it under
    their historical names ([Engine.Budget_exceeded],
    [Weak.Budget_exceeded]) via exception rebinding, so existing
    handlers keep working and now also catch each other's overruns. *)

exception Exceeded

type counter = { limit : int option; mutable spent : int }

let counter ?limit () = { limit; spent = 0 }

let spent c = c.spent

(** [bump c] — account one unit of work; raises {!Exceeded} once the
    limit is passed ([None] = unbounded). *)
let bump c =
  c.spent <- c.spent + 1;
  match c.limit with Some b when c.spent > b -> raise Exceeded | _ -> ()

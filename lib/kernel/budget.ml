(** Node-budget accounting shared by the checkers.

    Every bounded search in the repo (the t-linearization engine, the
    weak-consistency checker) signals exhaustion with the single
    exception {!Exceeded}, so callers catch one exception no matter
    which checker blew its budget.  The checkers re-export it under
    their historical names ([Engine.Budget_exceeded],
    [Weak.Budget_exceeded]) via exception rebinding, so existing
    handlers keep working and now also catch each other's overruns.

    A counter can additionally carry a [poll] hook, invoked every
    {!poll_interval} bumps: the serving layer's cooperative
    wall-clock-timeout and cancellation checks live there,
    piggybacking on the bump the hot DFS loop already pays instead of
    adding a second per-node test. *)

exception Exceeded

(* Polling every 256 bumps keeps the hook off the hot path (a land +
   branch per bump) while bounding how long a search can overrun its
   deadline: 256 DFS expansions are microseconds. *)
let poll_interval = 256

(* Observability rides the poll cadence: per-bump metrics would double
   the cost of the hottest loop in the repo, so work is accounted in
   poll_interval-sized quanta instead — exact enough for heartbeats. *)
let m_polls = Elin_obs.Metrics.counter "kernel.budget.polls"
let m_work = Elin_obs.Metrics.counter "kernel.budget.work"

type counter = {
  limit : int option;
  poll : (unit -> unit) option;
  mutable spent : int;
}

let counter ?limit ?poll () = { limit; poll; spent = 0 }

let spent c = c.spent

(** [bump c] — account one unit of work; raises {!Exceeded} once the
    limit is passed ([None] = unbounded).  Runs the [poll] hook every
    {!poll_interval} bumps; whatever it raises propagates. *)
let bump c =
  c.spent <- c.spent + 1;
  if c.spent land (poll_interval - 1) = 0 then begin
    if Elin_obs.Metrics.on () then begin
      Elin_obs.Metrics.Counter.incr m_polls;
      Elin_obs.Metrics.Counter.add m_work poll_interval
    end;
    match c.poll with Some f -> f () | None -> ()
  end;
  match c.limit with Some b when c.spent > b -> raise Exceeded | _ -> ()

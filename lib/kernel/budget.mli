(** Node-budget accounting shared by the checkers: one exception for
    every bounded search, so a caller's handler is checker-agnostic.
    Counters optionally carry a cooperative [poll] hook (timeouts,
    cancellation) run every {!poll_interval} bumps. *)

exception Exceeded

type counter

(** Bumps between two invocations of the [poll] hook (a power of
    two). *)
val poll_interval : int

(** [counter ?limit ?poll ()] — a fresh spend counter; [None] = no
    limit.  [poll] is called every {!poll_interval} bumps and may
    raise (e.g. a timeout exception) to abort the search
    cooperatively. *)
val counter : ?limit:int -> ?poll:(unit -> unit) -> unit -> counter

(** Units spent so far. *)
val spent : counter -> int

(** [bump c] — account one unit; raises {!Exceeded} past the limit;
    propagates whatever [poll] raises. *)
val bump : counter -> unit

(** Node-budget accounting shared by the checkers: one exception for
    every bounded search, so a caller's handler is checker-agnostic. *)

exception Exceeded

type counter

(** [counter ?limit ()] — a fresh spend counter; [None] = unbounded. *)
val counter : ?limit:int -> unit -> counter

(** Units spent so far. *)
val spent : counter -> int

(** [bump c] — account one unit; raises {!Exceeded} past the limit. *)
val bump : counter -> unit

(** Bounded MPMC channels (mutex + two condition variables).

    Invariants, with [m] held:
    - [Queue.length q <= cap] always; {!put} waits on [not_full]
      until there is room or the channel closes;
    - {!take} waits on [not_empty] until there is an element or the
      channel closes; a closed channel still drains, so the only
      terminal answer is "closed and empty";
    - {!close} broadcasts both conditions so every blocked producer
      and consumer re-examines the state. *)

type 'a t = {
  cap : int;
  q : 'a Queue.t;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
}

exception Closed

let create ~capacity () =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  {
    cap = capacity;
    q = Queue.create ();
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    closed = false;
  }

let with_lock t f =
  Mutex.lock t.m;
  match f () with
  | v ->
    Mutex.unlock t.m;
    v
  | exception e ->
    Mutex.unlock t.m;
    raise e

let put t x =
  with_lock t (fun () ->
      while (not t.closed) && Queue.length t.q >= t.cap do
        Condition.wait t.not_full t.m
      done;
      if t.closed then raise Closed;
      Queue.push x t.q;
      Condition.signal t.not_empty)

let try_put t x =
  with_lock t (fun () ->
      if t.closed then raise Closed
      else if Queue.length t.q >= t.cap then false
      else begin
        Queue.push x t.q;
        Condition.signal t.not_empty;
        true
      end)

let take t =
  with_lock t (fun () ->
      while Queue.is_empty t.q && not t.closed do
        Condition.wait t.not_empty t.m
      done;
      if Queue.is_empty t.q then None (* closed and drained *)
      else begin
        let x = Queue.pop t.q in
        Condition.signal t.not_full;
        Some x
      end)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Condition.broadcast t.not_empty;
        Condition.broadcast t.not_full
      end)

let is_closed t = with_lock t (fun () -> t.closed)
let length t = with_lock t (fun () -> Queue.length t.q)
let capacity t = t.cap

(** Bounded multi-producer multi-consumer channels: the backpressure
    substrate of the serving layer ([lib/svc]).

    A channel holds at most [capacity] elements.  {!put} blocks while
    the channel is full — producers are throttled to the consumers'
    pace rather than queueing unboundedly — and {!take} blocks while
    it is empty.  {!close} initiates shutdown: subsequent {!put}s
    raise {!Closed}, while {!take} keeps draining the elements already
    enqueued and only then reports end-of-stream ([None]), so no
    accepted element is ever lost.

    Safe for any number of concurrent producers and consumers across
    OCaml 5 domains (one mutex, two condition variables; no element is
    delivered twice). *)

type 'a t

(** Raised by {!put} (and {!try_put}) on a closed channel. *)
exception Closed

(** [create ~capacity ()] — an empty channel.  [capacity] must
    be [>= 1]. *)
val create : capacity:int -> unit -> 'a t

(** [put t x] — enqueue [x], blocking while the channel is full.
    Raises {!Closed} if the channel is (or becomes, while blocked)
    closed. *)
val put : 'a t -> 'a -> unit

(** [try_put t x] — [false] instead of blocking when full; still
    raises {!Closed} on a closed channel. *)
val try_put : 'a t -> 'a -> bool

(** [take t] — dequeue the oldest element, blocking while the channel
    is empty and open.  [None] once the channel is closed {e and}
    drained. *)
val take : 'a t -> 'a option

(** [close t] — no further elements are accepted; blocked producers
    wake up with {!Closed}, blocked consumers drain and then see
    [None].  Idempotent. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** Elements currently enqueued (racy by nature; exact at quiescence).
    Never exceeds [capacity]. *)
val length : 'a t -> int

val capacity : 'a t -> int

(** Seeded 64-bit fingerprints (FNV-1a).

    The model checker keys its visited set on fingerprints of canonical
    state encodings rather than on the states themselves: a fingerprint
    is 8 bytes however large the configuration, and the accumulator
    absorbs the encoding incrementally so no intermediate buffer is
    built.  FNV-1a is not cryptographic; with 64-bit digests the
    birthday bound for the state counts we explore (well under 10^7
    states) keeps the collision probability below 10^-5, and
    {!Elin_mc}'s documentation spells out that dedup soundness is
    modulo such collisions.

    The accumulator is a plain [int64], so threading it through a fold
    allocates nothing and is trivially safe to use from several domains
    at once. *)

type t = int64

(* FNV-1a 64-bit parameters. *)
let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

type acc = int64

let start ?(seed = 0L) () : acc = Int64.logxor offset_basis seed

let byte (a : acc) b : acc =
  Int64.mul (Int64.logxor a (Int64.of_int (b land 0xff))) prime

(** [int64 a x] absorbs all 8 bytes of [x], little-endian. *)
let int64 (a : acc) (x : int64) : acc =
  let a = ref a in
  for i = 0 to 7 do
    a := byte !a (Int64.to_int (Int64.shift_right_logical x (8 * i)))
  done;
  !a

let int (a : acc) (n : int) : acc = int64 a (Int64.of_int n)

let bool (a : acc) (b : bool) : acc = byte a (if b then 1 else 0)

let string (a : acc) (s : string) : acc =
  let a = ref (int a (String.length s)) in
  String.iter (fun c -> a := byte !a (Char.code c)) s;
  !a

(** [list f a xs] absorbs the length then each element — length-prefixed
    so that [[x]; [y]] and [[x; y]] cannot encode alike. *)
let list f (a : acc) xs : acc =
  List.fold_left f (int a (List.length xs)) xs

let array f (a : acc) xs : acc =
  Array.fold_left f (int a (Array.length xs)) xs

(** Flat-array absorbers for pre-packed state vectors: the model
    checker folds per-process/per-object summaries into [int64 array]s
    once and re-absorbs only the flat words on every fingerprint, so
    the hot path never re-walks structured values. *)
let int64_array (a : acc) (xs : int64 array) : acc =
  let a = ref (int a (Array.length xs)) in
  for i = 0 to Array.length xs - 1 do
    a := int64 !a (Array.unsafe_get xs i)
  done;
  !a

let int_array (a : acc) (xs : int array) : acc =
  let a = ref (int a (Array.length xs)) in
  for i = 0 to Array.length xs - 1 do
    a := int !a (Array.unsafe_get xs i)
  done;
  !a

let finish (a : acc) : t =
  (* A final avalanche round (splitmix64-style) so that short inputs
     differing in one low byte still spread across all 64 bits. *)
  let z = a in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* One more full avalanche over an already-finished fingerprint.
   Fingerprints come out of [finish] well-mixed, but consumers that
   carve them into disjoint bit ranges (the visited-set stripe index
   and the owner-shard index) must not both key on raw bits: a state
   family whose encodings fix some low bits would then collapse onto
   one stripe (or one shard).  Remixing gives every consumer an
   independent view; the two indices below read disjoint ranges of the
   SAME mixed word, so stripe choice and shard choice never alias. *)
let mix (z : t) : t =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let equal = Int64.equal
let compare = Int64.compare

let to_hex (t : t) = Printf.sprintf "%016Lx" t

let pp ppf t = Format.fprintf ppf "%s" (to_hex t)

(** Seeded 64-bit fingerprints (FNV-1a with a final avalanche).

    Canonical state encodings are absorbed incrementally into an
    allocation-free accumulator; the resulting 8-byte digest keys the
    model checker's visited set.  Collisions are possible in principle
    (64-bit digests), so clients treating equal fingerprints as equal
    states are exact only modulo a < 10^-5 birthday bound at the state
    counts this repository explores. *)

type t = int64

(** The in-flight accumulator: a plain immutable [int64]. *)
type acc

(** [start ?seed ()] — a fresh accumulator.  Distinct seeds yield
    statistically independent fingerprint families. *)
val start : ?seed:int64 -> unit -> acc

val byte : acc -> int -> acc
val int : acc -> int -> acc
val int64 : acc -> int64 -> acc
val bool : acc -> bool -> acc
val string : acc -> string -> acc

(** Length-prefixed sequence absorption: [[x]; [y]] and [[x; y]] cannot
    encode alike. *)
val list : (acc -> 'a -> acc) -> acc -> 'a list -> acc

val array : (acc -> 'a -> acc) -> acc -> 'a array -> acc

(** Flat-array absorbers (length-prefixed) for pre-packed state
    vectors — no closure, no per-element dispatch. *)
val int64_array : acc -> int64 array -> acc

val int_array : acc -> int array -> acc

val finish : acc -> t

(** [mix fp] — an independent full avalanche of a finished
    fingerprint.  Consumers that index structures by disjoint bit
    ranges of one fingerprint (visited-set stripes, owner shards) must
    carve up [mix fp], not [fp]: remixing guarantees uniform dispersion
    even for fingerprint families with fixed raw bits, and reading
    disjoint ranges of the same mixed word keeps the two indices
    alias-free by construction. *)
val mix : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val to_hex : t -> string
val pp : Format.formatter -> t -> unit

(** Owner-partitioned set of 64-bit fingerprints: the sharded search's
    visited set.

    Where {!Striped_set} lets every domain touch every stripe behind a
    mutex, this structure gives each domain {e outright ownership} of
    one shard: a fingerprint's owner is a pure function of its value
    ({!owner}), all [add]/[mem] traffic for it happens on the owning
    domain, and the shard is a plain [Hashtbl] with no lock on the hot
    path.  Cross-domain synchronization is the {e caller's} routing
    discipline (the search hands fingerprints to their owner over
    {!Spsc} queues and separates phases with {!Barrier}); this module
    itself is just the partition function plus per-shard tables.

    {2 Bit discipline}

    [owner] keys on the {e high} bits of {!Fingerprint.mix} while
    {!Striped_set} stripes on the {e low} bits of the same mixed word.
    Disjoint ranges of one avalanche: a fingerprint family confined to
    one owner shard still disperses uniformly across stripes (and vice
    versa), so mixing engines — e.g. a sharded search next to a legacy
    striped set over the same fingerprints — never degenerates either
    structure.  (Keying both on raw bits was the aliasing bug this
    replaces: all of one shard's fingerprints shared their residue,
    collapsing the striped path to a single mutex.) *)

type t = {
  tables : (int64, unit) Hashtbl.t array;
  shards : int;
}

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Shard_set.create: shards must be >= 1";
  { tables = Array.init shards (fun _ -> Hashtbl.create 1024); shards }

let shards t = t.shards

(* High 31 bits of the mixed word (shifting by 33 also clears the sign
   bit of the boxed-int64-to-int conversion), disjoint from the <= 16
   low bits any realistic stripe count reads. *)
let owner t (fp : int64) =
  if t.shards = 1 then 0
  else
    Int64.to_int (Int64.shift_right_logical (Fingerprint.mix fp) 33)
    mod t.shards

(** [add t ~shard fp] — [true] iff [fp] was not yet a member of
    [shard] (it is now).  The caller must be [shard]'s owning domain;
    [shard] must be [owner t fp] for membership to mean anything
    set-wide. *)
let add t ~shard fp =
  let tbl = t.tables.(shard) in
  if Hashtbl.mem tbl fp then false
  else begin
    Hashtbl.add tbl fp ();
    true
  end

let mem t ~shard fp = Hashtbl.mem t.tables.(shard) fp

let shard_cardinal t shard = Hashtbl.length t.tables.(shard)

(* Quiescent callers only (stats at end of search). *)
let cardinal t =
  Array.fold_left (fun n tbl -> n + Hashtbl.length tbl) 0 t.tables

(** Owner-partitioned set of 64-bit fingerprints: the sharded search's
    visited set.  Each shard is a plain lock-free-because-single-owner
    [Hashtbl]; a fingerprint's shard is the pure function {!owner} of
    its value, and the caller's routing (SPSC handoff + barrier
    phases) guarantees only the owning domain ever touches a shard.
    The owner index reads the {e high} bits of {!Fingerprint.mix}
    while {!Striped_set} stripes on the {e low} bits of the same mixed
    word — disjoint ranges, so neither partition can alias the other
    into degeneracy. *)

type t

(** [create ~shards ()] — [shards] (>= 1, typically the domain count;
    not rounded) empty shards. *)
val create : ?shards:int -> unit -> t

val shards : t -> int

(** [owner t fp] — the shard (hence domain) owning [fp]; uniform over
    shards and independent of {!Striped_set}'s stripe choice. *)
val owner : t -> int64 -> int

(** [add t ~shard fp] — [true] iff [fp] was not yet in [shard] (it is
    afterwards).  MUST be called from [shard]'s owning domain with
    [shard = owner t fp]; there is no lock to save you. *)
val add : t -> shard:int -> int64 -> bool

(** Same ownership discipline as {!add}. *)
val mem : t -> shard:int -> int64 -> bool

(** Members of one shard (owning domain, or quiescence). *)
val shard_cardinal : t -> int -> int

(** Total members; quiescent callers only (end-of-search stats). *)
val cardinal : t -> int

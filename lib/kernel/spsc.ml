(** Unbounded single-producer / single-consumer queue.

    The sharded search's cross-domain handoff lanes: domain [src]
    pushes batches of generated successors to domain [dst]'s inbox,
    one queue per ordered (src, dst) pair, so every queue has exactly
    one producer and one consumer and needs no lock at all.

    The representation is a singly-linked list with a sentinel.  The
    producer owns [tail] (plain mutable field — only it ever touches
    it); the consumer owns [head]; the only shared edges are the
    [next] pointers, which are [Atomic] so that a push {e publishes}
    the element: the release/acquire pair on [next] makes everything
    the producer wrote before [push] visible to the consumer after
    [pop] returns it (OCaml 5 memory model).  Neither operation can
    block, and [pop] never spins — an empty queue returns [None].

    Unbounded is safe here by construction: a BFS level pushes at most
    one batch entry per generated successor, and the consumer drains
    at every epoch boundary, so queue length is bounded by the level
    width the search already has to hold. *)

type 'a node = {
  mutable value : 'a option;  (* [None] once consumed (and on the sentinel),
                                 so popped elements don't leak via tail *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  mutable head : 'a node;  (* consumer-owned: last consumed / sentinel *)
  mutable tail : 'a node;  (* producer-owned: last pushed *)
}

let create () =
  let sentinel = { value = None; next = Atomic.make None } in
  { head = sentinel; tail = sentinel }

(* Producer only. *)
let push t v =
  let n = { value = Some v; next = Atomic.make None } in
  Atomic.set t.tail.next (Some n);
  t.tail <- n

(* Consumer only. *)
let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
    let v = n.value in
    n.value <- None;
    t.head <- n;
    v

let is_empty t = Atomic.get t.head.next = None

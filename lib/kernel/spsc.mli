(** Unbounded single-producer / single-consumer queue: the sharded
    search's cross-domain handoff lane (one per ordered (src, dst)
    domain pair).  Lock-free and wait-free on both ends; a [push]
    publishes its element with release/acquire semantics, so state the
    producer built before pushing is visible to the consumer that pops
    it.  The single-producer / single-consumer discipline is the
    caller's obligation — concurrent pushes (or pops) from two domains
    are a race. *)

type 'a t

val create : unit -> 'a t

(** Producer side only. *)
val push : 'a t -> 'a -> unit

(** Consumer side only; [None] when empty (never blocks). *)
val pop : 'a t -> 'a option

(** Consumer side only (racy as a cross-domain probe: may answer
    [true] while a push is in flight). *)
val is_empty : 'a t -> bool

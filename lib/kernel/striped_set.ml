(** Lock-striped set of 64-bit fingerprints.

    The model checker's visited set is the one data structure every
    domain hammers concurrently, so it is sharded: a fingerprint's
    {e mixed} low bits select one of [stripes] independent hash tables,
    each behind its own [Mutex].  Two domains contend only when their
    fingerprints land on the same stripe, so with the default 64
    stripes and a handful of domains the lock is effectively
    uncontended.  Only stdlib primitives are used ([Mutex] is
    domain-safe in OCaml 5; no [threads.posix] dependency).

    Stripe choice goes through {!Fingerprint.mix} rather than raw low
    bits: {!Shard_set} partitions the same fingerprints by owner
    domain, and if both structures keyed on raw bit ranges, a
    fingerprint family confined to one owner shard could also be
    confined to one stripe — the legacy striped path would degenerate
    to a single mutex.  The mixed word disperses uniformly even when
    raw low bits are fixed (unit-tested), and the stripe index (low
    bits of the mix) is disjoint from the owner index (high bits of
    the same mix). *)

type stripe = {
  lock : Mutex.t;
  table : (int64, unit) Hashtbl.t;
}

type t = {
  stripes : stripe array;
  mask : int;
  (* Approximate member count, maintained only while observability is
     on (metrics counters and the power-of-two growth instants below);
     never consulted by [add]/[mem] themselves.  [clear] resets it:
     the growth-event heuristic must not inherit a recycled set's old
     count (it previously leaked, so a cleared set skipped its early
     growth instants and fired spurious high-water ones). *)
  occupancy : int Atomic.t;
}

(* Merged across every live set: the visited-set occupancy is the mc
   memory story, so it is worth a registry entry. *)
let m_queries = Elin_obs.Metrics.counter "kernel.striped_set.queries"
let m_inserts = Elin_obs.Metrics.counter "kernel.striped_set.inserts"

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(stripes = 64) () =
  let n = next_pow2 (max 1 stripes) 1 in
  {
    stripes =
      Array.init n (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 1024 });
    mask = n - 1;
    occupancy = Atomic.make 0;
  }

(* A set that doubled in size is a growth event worth one trace
   instant (not one per insert): emit when occupancy crosses a power
   of two at >= 1024 entries. *)
let observe_insert t =
  let n = Atomic.fetch_and_add t.occupancy 1 + 1 in
  if n >= 1024 && n land (n - 1) = 0 && Elin_obs.Trace.on () then
    Elin_obs.Trace.instant ~cat:"kernel" "striped_set.grow"
      ~args:[ ("entries", Elin_obs.Jsonl.Int n) ]

let stripe_of t (fp : int64) =
  t.stripes.(Int64.to_int (Fingerprint.mix fp) land t.mask)

(** [add t fp] — [true] iff [fp] was not yet a member (it is now). *)
let add t fp =
  let s = stripe_of t fp in
  Mutex.lock s.lock;
  let fresh = not (Hashtbl.mem s.table fp) in
  if fresh then Hashtbl.add s.table fp ();
  Mutex.unlock s.lock;
  if Elin_obs.Metrics.on () then begin
    Elin_obs.Metrics.Counter.incr m_queries;
    if fresh then begin
      Elin_obs.Metrics.Counter.incr m_inserts;
      observe_insert t
    end
  end;
  fresh

let mem t fp =
  let s = stripe_of t fp in
  Mutex.lock s.lock;
  let r = Hashtbl.mem s.table fp in
  Mutex.unlock s.lock;
  if Elin_obs.Metrics.on () then Elin_obs.Metrics.Counter.incr m_queries;
  r

(* [cardinal]/[clear] lock stripe by stripe, not the whole set: under
   concurrent [add]s the result is a per-stripe-consistent snapshot
   (every fingerprint added-and-returned before the call is counted;
   racing adds may or may not be), never a torn per-table read. *)
let cardinal t =
  Array.fold_left (fun n s ->
      Mutex.lock s.lock;
      let l = Hashtbl.length s.table in
      Mutex.unlock s.lock;
      n + l)
    0 t.stripes

let n_stripes t = Array.length t.stripes

let occupancy t = Atomic.get t.occupancy

let clear t =
  Array.iter (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.table;
      Mutex.unlock s.lock)
    t.stripes;
  Atomic.set t.occupancy 0

(** Lock-striped set of 64-bit fingerprints.

    The model checker's visited set is the one data structure every
    domain hammers concurrently, so it is sharded: a fingerprint's low
    bits select one of [stripes] independent hash tables, each behind
    its own [Mutex].  Two domains contend only when their fingerprints
    land on the same stripe, so with the default 64 stripes and a
    handful of domains the lock is effectively uncontended.  Only
    stdlib primitives are used ([Mutex] is domain-safe in OCaml 5; no
    [threads.posix] dependency). *)

type stripe = {
  lock : Mutex.t;
  table : (int64, unit) Hashtbl.t;
}

type t = {
  stripes : stripe array;
  mask : int;
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(stripes = 64) () =
  let n = next_pow2 (max 1 stripes) 1 in
  {
    stripes =
      Array.init n (fun _ ->
          { lock = Mutex.create (); table = Hashtbl.create 1024 });
    mask = n - 1;
  }

let stripe_of t (fp : int64) = t.stripes.(Int64.to_int fp land t.mask)

(** [add t fp] — [true] iff [fp] was not yet a member (it is now). *)
let add t fp =
  let s = stripe_of t fp in
  Mutex.lock s.lock;
  let fresh = not (Hashtbl.mem s.table fp) in
  if fresh then Hashtbl.add s.table fp ();
  Mutex.unlock s.lock;
  fresh

let mem t fp =
  let s = stripe_of t fp in
  Mutex.lock s.lock;
  let r = Hashtbl.mem s.table fp in
  Mutex.unlock s.lock;
  r

let cardinal t =
  Array.fold_left (fun n s ->
      Mutex.lock s.lock;
      let l = Hashtbl.length s.table in
      Mutex.unlock s.lock;
      n + l)
    0 t.stripes

let n_stripes t = Array.length t.stripes

let clear t =
  Array.iter (fun s ->
      Mutex.lock s.lock;
      Hashtbl.reset s.table;
      Mutex.unlock s.lock)
    t.stripes

(** Lock-striped set of 64-bit fingerprints: the model checker's
    visited set (legacy/sequential path; the sharded engine uses
    {!Shard_set}).  The {e mixed} low bits of a fingerprint
    ({!Fingerprint.mix}) select one of [stripes] independent hash
    tables, each behind its own stdlib [Mutex] (domain-safe in OCaml 5;
    no [threads.posix]), so concurrent domains contend only on stripe
    collisions — and stripe dispersion stays uniform even for
    fingerprint families with fixed raw low bits (e.g. everything
    routed to one {!Shard_set} owner). *)

type t

(** [create ?stripes ()] — [stripes] (rounded up to a power of two,
    default 64) empty shards. *)
val create : ?stripes:int -> unit -> t

(** [add t fp] — [true] iff [fp] was not yet a member; it is a member
    afterwards either way.  The membership test and insertion are one
    atomic action, so exactly one of several racing [add]s of the same
    fingerprint returns [true]. *)
val add : t -> int64 -> bool

val mem : t -> int64 -> bool

(** Total members across stripes.  Locks stripe by stripe, {e not}
    globally: under concurrent [add]s the result is a snapshot, not a
    linearizable count — every add that returned before [cardinal]
    started is counted, adds racing with the traversal may or may not
    be, and the result never exceeds the final quiescent count. *)
val cardinal : t -> int

val n_stripes : t -> int

(** Approximate member count as maintained by the observability path
    (bumped only while [Elin_obs.Metrics.on ()]; [0] otherwise).
    Reset by {!clear}. *)
val occupancy : t -> int

(** Empty the set.  Locks stripe by stripe like {!cardinal} — a
    concurrent [add] that hits an already-cleared stripe survives, one
    that hits a not-yet-cleared stripe is dropped; quiesce first if an
    empty result must be observed.  Also resets {!occupancy}, so a
    reused set's growth-event heuristic starts from zero instead of
    inheriting the previous population's count. *)
val clear : t -> unit

(** Lock-striped set of 64-bit fingerprints: the model checker's
    visited set.  A fingerprint's low bits select one of [stripes]
    independent hash tables, each behind its own stdlib [Mutex]
    (domain-safe in OCaml 5; no [threads.posix]), so concurrent domains
    contend only on stripe collisions. *)

type t

(** [create ?stripes ()] — [stripes] (rounded up to a power of two,
    default 64) empty shards. *)
val create : ?stripes:int -> unit -> t

(** [add t fp] — [true] iff [fp] was not yet a member; it is a member
    afterwards either way.  The membership test and insertion are one
    atomic action, so exactly one of several racing [add]s of the same
    fingerprint returns [true]. *)
val add : t -> int64 -> bool

val mem : t -> int64 -> bool

(** Total members across stripes (takes every stripe lock; a snapshot,
    not a linearizable count under concurrent adds). *)
val cardinal : t -> int

val n_stripes : t -> int
val clear : t -> unit

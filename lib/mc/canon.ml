(** Canonical encodings and fingerprints for {!Elin_explore.Explore}
    configurations.

    {2 The continuation problem}

    An [Explore.config] is almost a first-class value, except that a
    mid-operation process holds a [Program.t] continuation — a closure,
    which cannot be hashed structurally.  The continuation is, however,
    a {e deterministic function} of observable data: the operation
    being executed, the process's local state at invocation, and the
    sequence of base-object responses received so far within the
    operation (programmes are pure, [Base.access] is a pure function of
    its arguments).  So each {!node} carries, per process, a running
    64-bit {e digest} of exactly that data, updated as the search steps
    the configuration; equal digests mean equal continuations (modulo
    fingerprint collision), and the pair (config-without-closures,
    digests) is a faithful canonical key.

    Stepping therefore goes through {!successors}, which mirrors
    [Explore.step]'s branching — [Explore.step] remains the single
    source of truth for the transition semantics; this module only
    re-enumerates [Base.access] to {e label} each branch with the
    response the continuation consumed.

    {2 Symmetry reduction}

    With [~symmetry:true] the fingerprint is the minimum over all
    process renamings of the encoded configuration (process ids are
    renamed in the process array {e and} in the accumulated history).
    This quotient is sound only when (a) all workloads are identical,
    (b) the implementation is process-oblivious (programmes and base
    objects do not branch on the process id, and base states hold no
    process-indexed data), and (c) the checked predicate is invariant
    under process renaming — t-linearizability and weak consistency
    are.  (a) is enforced by {!Mc.check}; (b) is the caller's
    obligation ([Impl.of_spec] implementations qualify; board-based
    ones, whose base state is indexed by process, do not). *)

open Elin_spec
open Elin_history
open Elin_runtime
open Elin_explore
module Fp = Elin_kernel.Fingerprint

(* ------------------------------------------------------------------ *)
(* Absorbing the vocabulary types into a fingerprint accumulator.      *)
(* ------------------------------------------------------------------ *)

let rec value acc (v : Value.t) =
  match v with
  | Value.Unit -> Fp.byte acc 0
  | Value.Bool b -> Fp.bool (Fp.byte acc 1) b
  | Value.Int n -> Fp.int (Fp.byte acc 2) n
  | Value.Str s -> Fp.string (Fp.byte acc 3) s
  | Value.Pair (a, b) -> value (value (Fp.byte acc 4) a) b
  | Value.List xs -> Fp.list value (Fp.byte acc 5) xs

let op acc (o : Op.t) = Fp.list value (Fp.string acc (Op.name o)) (Op.args o)

(* [rename] maps old process ids to canonical ones (identity when no
   symmetry reduction is in play). *)
let event ~rename acc (e : Event.t) =
  let acc = Fp.int acc (rename e.Event.proc) in
  let acc = Fp.int acc e.Event.obj in
  match e.Event.payload with
  | Event.Invoke o -> op (Fp.byte acc 0) o
  | Event.Respond v -> value (Fp.byte acc 1) v

(* ------------------------------------------------------------------ *)
(* Continuation digests.                                               *)
(* ------------------------------------------------------------------ *)

(* The digest deliberately omits the process id: under symmetry
   reduction identity must not leak into the digest, and without it
   the digest's position in the per-process array carries identity. *)

let digest_invoke ~op:o ~local =
  Fp.finish (value (op (Fp.byte (Fp.start ()) 1) o) local)

let digest_access prev ~obj ~op:o ~resp =
  Fp.finish
    (value (op (Fp.int (Fp.byte (Fp.int64 (Fp.start ()) prev) 2) obj) o) resp)

(* Absorb one process's visible state: todo, local, continuation
   digest.  Shared by the packed per-process summaries and the
   symmetry-mode full encoding. *)
let proc_state acc (pr : Explore.proc_state) digest =
  let acc = Fp.list op acc pr.Explore.todo in
  let acc = value acc pr.Explore.local in
  match pr.Explore.running with
  | None -> Fp.byte acc 0
  | Some (Program.Return _) -> Fp.int64 (Fp.byte acc 1) digest
  | Some (Program.Access (obj, o, _)) ->
    op (Fp.int (Fp.int64 (Fp.byte acc 2) digest) obj) o

(* ------------------------------------------------------------------ *)
(* Search nodes.                                                       *)
(* ------------------------------------------------------------------ *)

(* Besides the continuation digests, a node carries {e packed} state
   summaries so the (non-symmetry) fingerprint is computed from flat
   arrays without re-walking any structured value:

   - [proc_fps.(p)]: digest of process [p]'s full visible state (todo,
     local, continuation digest) — only the stepped process's entry is
     recomputed per step;
   - [base_fps.(i)]: digest of base object [i]'s state value — only
     the accessed object's entry is recomputed per step;
   - [events_acc]: a running accumulator over the chronological event
     log — one event absorbed per invoke/return step, never a walk of
     the whole history.

   The packed encoding distinguishes exactly the same configurations
   as a full structural walk (each summary is injective modulo 64-bit
   collision), so dedup classes — and every count the experiments
   record — are unchanged.

   [sleep] is the node's sleep set (partial-order reduction): a
   bitmask of processes whose next step was already explored, at an
   ancestor, in a provably commuting order.  {!successors} skips slept
   processes and computes the inherited masks; the mask caps the
   engine at 62 processes under reduction (callers guard). *)

type node = {
  config : Explore.config;
  digests : int64 array;  (* per-process continuation digests; 0L idle *)
  depth : int;            (* steps taken from the search root *)
  sleep : int;            (* sleep set as a process bitmask *)
  proc_fps : int64 array; (* packed per-process state summaries *)
  base_fps : int64 array; (* packed per-object state summaries *)
  events_acc : Fp.acc;    (* running digest of the chronological log *)
}

let proc_fp pr digest =
  Fp.finish (proc_state (Fp.start ~seed:0x7070L (* "pp" *) ()) pr digest)

let base_fp v = Fp.finish (value (Fp.start ~seed:0x6273L (* "bs" *) ()) v)

let no_rename p = p

(** [root config] — digests start at [0L]: within one search, a process
    still inside the operation it was running at the root holds the
    root's actual (unique) continuation, so the neutral digest is
    unambiguous.  A mid-execution root ([Mc.check_from]) pays one walk
    of its existing history here; every later step absorbs only its
    own event. *)
let root config =
  let n = Array.length config.Explore.procs in
  {
    config;
    digests = Array.make n 0L;
    depth = 0;
    sleep = 0;
    proc_fps = Array.init n (fun p -> proc_fp config.Explore.procs.(p) 0L);
    base_fps = Array.map base_fp config.Explore.bases;
    events_acc =
      List.fold_left (event ~rename:no_rename)
        (Fp.start ~seed:0x6576L (* "ev" *) ())
        (List.rev config.Explore.events_rev);
  }

(* One successor: refresh the stepped process's digest and packed
   summary, the touched object's summary (if any), and absorb the
   appended event (if any).  Successors are born with an empty sleep
   set; {!successors} overwrites it under reduction. *)
let succ node p ?obj c' d =
  let digests = Array.copy node.digests in
  digests.(p) <- d;
  let proc_fps = Array.copy node.proc_fps in
  proc_fps.(p) <- proc_fp c'.Explore.procs.(p) d;
  let base_fps =
    match obj with
    | None -> node.base_fps
    | Some i ->
      let b = Array.copy node.base_fps in
      b.(i) <- base_fp c'.Explore.bases.(i);
      b
  in
  let events_acc =
    if c'.Explore.n_events > node.config.Explore.n_events then
      event ~rename:no_rename node.events_acc (List.hd c'.Explore.events_rev)
    else node.events_acc
  in
  {
    config = c';
    digests;
    depth = node.depth + 1;
    sleep = 0;
    proc_fps;
    base_fps;
    events_acc;
  }

(** [step impl node p] — [Explore.step] on the underlying
    configuration, with digests and packed summaries updated from the
    transition's label.  [?choices] must be
    [Explore.access_choices impl node.config p] when given (footprint
    computation already paid for it). *)
let step ?choices (impl : Impl.t) node p =
  let c = node.config in
  let pr = c.Explore.procs.(p) in
  match pr.Explore.running with
  | None -> (
    match pr.Explore.todo with
    | [] -> []
    | o :: _ ->
      List.map
        (fun c' -> succ node p c' (digest_invoke ~op:o ~local:pr.Explore.local))
        (Explore.step impl c p))
  | Some (Program.Return _) ->
    (* The response and new local state become visible in the config;
       the continuation is gone. *)
    List.map (fun c' -> succ node p c' 0L) (Explore.step impl c p)
  | Some (Program.Access (obj, o, _)) ->
    (* Enumerate the (pure) base transition once to label each branch
       with the response the continuation consumed. *)
    let choices =
      match choices with
      | Some cs -> cs
      | None -> Explore.access_choices impl c p
    in
    List.map2
      (fun (resp, _) c' ->
        succ node p ~obj c' (digest_access node.digests.(p) ~obj ~op:o ~resp))
      choices
      (Explore.step ~choices impl c p)

(** [successors ?por ?pruned impl node] — every configuration one step
    away.  With [~por:true], sleep-set pruning: processes in
    [node.sleep] are skipped (counted in [pruned]), and each expanded
    successor inherits the sleep mask {[
      { q | q slept-or-explored before p, step(q) independent of step(p) }
    ]} — processes are taken in ascending id order, so the explored
    tree keeps exactly the lexicographically minimal interleaving of
    every Mazurkiewicz trace class.  The reachable {e state} set is
    preserved (every state still ends some surviving interleaving);
    only redundant commuted paths to it are pruned. *)
(* Same registry entry as Search's: both expansion paths (here and
   Mc_valency) account their sleep-set skips under one name. *)
let m_pruned = Elin_obs.Metrics.counter "mc.por_pruned"

let successors ?(por = false) ?pruned (impl : Impl.t) node =
  let c = node.config in
  let enabled = Explore.runnable c in
  if not por then List.concat_map (fun p -> step impl node p) enabled
  else begin
    let foots = List.map (fun q -> (q, Indep.of_explore impl c q)) enabled in
    (* Slept processes stay enabled (only a process's own steps change
       its program state), and their footprints are recomputed fresh
       here, so inherited independence is judged in the current
       configuration — no staleness. *)
    let slept =
      List.filter_map
        (fun (q, (fq, _)) ->
          if node.sleep land (1 lsl q) <> 0 then Some (q, fq) else None)
        foots
    in
    let rec go acc explored = function
      | [] -> List.concat (List.rev acc)
      | (p, (fp_p, choices)) :: rest ->
        if node.sleep land (1 lsl p) <> 0 then begin
          (match pruned with Some a -> Atomic.incr a | None -> ());
          if Elin_obs.Metrics.on () then
            Elin_obs.Metrics.Counter.incr m_pruned;
          go acc explored rest
        end
        else begin
          let inherit_mask m (q, fq) =
            if Indep.independent fq fp_p then m lor (1 lsl q) else m
          in
          let sleep' =
            List.fold_left inherit_mask
              (List.fold_left inherit_mask 0 slept)
              explored
          in
          let ss =
            List.map (fun s -> { s with sleep = sleep' })
              (step ?choices impl node p)
          in
          go (ss :: acc) ((p, fp_p) :: explored) rest
        end
    in
    go [] [] foots
  end

(** Sleep-set merge for dedup under reduction: when several surviving
    interleavings reach the same state in the same BFS level, the kept
    copy's sleep set is the {e intersection} of all copies' — every
    direction some path still had to explore is explored.  Sound by
    monotonicity (a smaller sleep set explores a superset tree), and
    deterministic across domain counts (intersection is
    order-independent; the copies are equal states). *)
let merge_sleep a b = { a with sleep = a.sleep land b.sleep }

(* ------------------------------------------------------------------ *)
(* Fingerprints.                                                       *)
(* ------------------------------------------------------------------ *)

(* [old_of_new] lists, for each canonical position, the original
   process id placed there; [rename] is its inverse. *)
let encode node ~old_of_new ~rename =
  let c = node.config in
  let acc = Fp.start ~seed:0x6D63L (* "mc" *) () in
  let acc = Fp.int acc c.Explore.steps in
  let acc = Fp.int acc c.Explore.invocations in
  let n = Array.length c.Explore.procs in
  let acc = ref (Fp.int acc n) in
  for i = 0 to n - 1 do
    let p = old_of_new.(i) in
    acc := proc_state !acc c.Explore.procs.(p) node.digests.(p)
  done;
  let acc = Fp.array value !acc c.Explore.bases in
  let acc = Fp.list (event ~rename) acc c.Explore.events_rev in
  Fp.finish acc

(* All permutations of [0..n-1], as [old_of_new] arrays. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
      xs

(* The identity-renaming fingerprint, from the packed summaries: flat
   int64 arrays plus three scalars — no structured value is walked.
   Covers exactly the data the full [encode] walk covers (each summary
   injective modulo collision), so the dedup classes coincide. *)
let encode_packed node =
  let c = node.config in
  let acc = Fp.start ~seed:0x6D63L (* "mc" *) () in
  let acc = Fp.int acc c.Explore.steps in
  let acc = Fp.int acc c.Explore.invocations in
  let acc = Fp.int acc c.Explore.n_events in
  let acc = Fp.int64_array acc node.proc_fps in
  let acc = Fp.int64_array acc node.base_fps in
  Fp.finish (Fp.int64 acc (Fp.finish node.events_acc))

let fingerprint ?(symmetry = false) node =
  let n = Array.length node.config.Explore.procs in
  if not symmetry then encode_packed node
  else begin
    if n > 6 then
      invalid_arg "Canon.fingerprint: symmetry reduction capped at 6 processes";
    let fp_of perm =
      let old_of_new = Array.of_list perm in
      let rename =
        let inv = Array.make n 0 in
        Array.iteri (fun nw old -> inv.(old) <- nw) old_of_new;
        fun p -> inv.(p)
      in
      encode node ~old_of_new ~rename
    in
    match permutations (List.init n (fun i -> i)) with
    | [] -> assert false
    | perm :: perms ->
      List.fold_left
        (fun best perm ->
          let fp = fp_of perm in
          if Int64.unsigned_compare fp best < 0 then fp else best)
        (fp_of perm) perms
  end

(* ------------------------------------------------------------------ *)
(* Trace ordering.                                                     *)
(* ------------------------------------------------------------------ *)

let compare_event (a : Event.t) (b : Event.t) =
  let c = Int.compare a.Event.proc b.Event.proc in
  if c <> 0 then c
  else
    let c = Int.compare a.Event.obj b.Event.obj in
    if c <> 0 then c
    else
      match a.Event.payload, b.Event.payload with
      | Event.Invoke x, Event.Invoke y -> Op.compare x y
      | Event.Respond x, Event.Respond y -> Value.compare x y
      | Event.Invoke _, Event.Respond _ -> -1
      | Event.Respond _, Event.Invoke _ -> 1

(** Lexicographic order on event sequences: the deterministic tie-break
    for counterexample selection. *)
let compare_history (a : History.t) (b : History.t) =
  List.compare compare_event (History.events a) (History.events b)

(* Re-exported absorbers, so other state-space instantiations
   ({!Mc_valency}) encode the vocabulary types identically. *)
let absorb_value = value
let absorb_op = op


(** Canonical encodings and fingerprints for {!Elin_explore.Explore}
    configurations.

    {2 The continuation problem}

    An [Explore.config] is almost a first-class value, except that a
    mid-operation process holds a [Program.t] continuation — a closure,
    which cannot be hashed structurally.  The continuation is, however,
    a {e deterministic function} of observable data: the operation
    being executed, the process's local state at invocation, and the
    sequence of base-object responses received so far within the
    operation (programmes are pure, [Base.access] is a pure function of
    its arguments).  So each {!node} carries, per process, a running
    64-bit {e digest} of exactly that data, updated as the search steps
    the configuration; equal digests mean equal continuations (modulo
    fingerprint collision), and the pair (config-without-closures,
    digests) is a faithful canonical key.

    Stepping therefore goes through {!successors}, which mirrors
    [Explore.step]'s branching — [Explore.step] remains the single
    source of truth for the transition semantics; this module only
    re-enumerates [Base.access] to {e label} each branch with the
    response the continuation consumed.

    {2 Symmetry reduction}

    With [~symmetry:true] the fingerprint is the minimum over all
    process renamings of the encoded configuration (process ids are
    renamed in the process array {e and} in the accumulated history).
    This quotient is sound only when (a) all workloads are identical,
    (b) the implementation is process-oblivious (programmes and base
    objects do not branch on the process id, and base states hold no
    process-indexed data), and (c) the checked predicate is invariant
    under process renaming — t-linearizability and weak consistency
    are.  (a) is enforced by {!Mc.check}; (b) is the caller's
    obligation ([Impl.of_spec] implementations qualify; board-based
    ones, whose base state is indexed by process, do not). *)

open Elin_spec
open Elin_history
open Elin_runtime
open Elin_explore
module Fp = Elin_kernel.Fingerprint

(* ------------------------------------------------------------------ *)
(* Absorbing the vocabulary types into a fingerprint accumulator.      *)
(* ------------------------------------------------------------------ *)

let rec value acc (v : Value.t) =
  match v with
  | Value.Unit -> Fp.byte acc 0
  | Value.Bool b -> Fp.bool (Fp.byte acc 1) b
  | Value.Int n -> Fp.int (Fp.byte acc 2) n
  | Value.Str s -> Fp.string (Fp.byte acc 3) s
  | Value.Pair (a, b) -> value (value (Fp.byte acc 4) a) b
  | Value.List xs -> Fp.list value (Fp.byte acc 5) xs

let op acc (o : Op.t) = Fp.list value (Fp.string acc (Op.name o)) (Op.args o)

(* [rename] maps old process ids to canonical ones (identity when no
   symmetry reduction is in play). *)
let event ~rename acc (e : Event.t) =
  let acc = Fp.int acc (rename e.Event.proc) in
  let acc = Fp.int acc e.Event.obj in
  match e.Event.payload with
  | Event.Invoke o -> op (Fp.byte acc 0) o
  | Event.Respond v -> value (Fp.byte acc 1) v

(* ------------------------------------------------------------------ *)
(* Continuation digests.                                               *)
(* ------------------------------------------------------------------ *)

(* The digest deliberately omits the process id: under symmetry
   reduction identity must not leak into the digest, and without it
   the digest's position in the per-process array carries identity. *)

let digest_invoke ~op:o ~local =
  Fp.finish (value (op (Fp.byte (Fp.start ()) 1) o) local)

let digest_access prev ~obj ~op:o ~resp =
  Fp.finish
    (value (op (Fp.int (Fp.byte (Fp.int64 (Fp.start ()) prev) 2) obj) o) resp)

(* ------------------------------------------------------------------ *)
(* Search nodes.                                                       *)
(* ------------------------------------------------------------------ *)

type node = {
  config : Explore.config;
  digests : int64 array;  (* per-process continuation digests; 0L idle *)
  depth : int;            (* steps taken from the search root *)
}

(** [root config] — digests start at [0L]: within one search, a process
    still inside the operation it was running at the root holds the
    root's actual (unique) continuation, so the neutral digest is
    unambiguous. *)
let root config =
  {
    config;
    digests = Array.make (Array.length config.Explore.procs) 0L;
    depth = 0;
  }

(** [step impl node p] — [Explore.step] on the underlying
    configuration, with digests updated from the transition's label. *)
let step (impl : Impl.t) node p =
  let c = node.config in
  let pr = c.Explore.procs.(p) in
  let configs = Explore.step impl c p in
  let with_digest c' d =
    let digests = Array.copy node.digests in
    digests.(p) <- d;
    { config = c'; digests; depth = node.depth + 1 }
  in
  match pr.Explore.running with
  | None -> (
    match pr.Explore.todo with
    | [] -> []
    | o :: _ ->
      List.map
        (fun c' -> with_digest c' (digest_invoke ~op:o ~local:pr.Explore.local))
        configs)
  | Some (Program.Return _) ->
    (* The response and new local state become visible in the config;
       the continuation is gone. *)
    List.map (fun c' -> with_digest c' 0L) configs
  | Some (Program.Access (obj, o, _)) ->
    (* Re-enumerate the (pure) base transition to label each branch
       with the response the continuation consumed. *)
    let base = impl.Impl.bases.(obj) in
    let choices =
      base.Base.access ~state:c.Explore.bases.(obj) ~proc:p ~step:c.Explore.steps o
    in
    List.map2
      (fun (resp, _) c' ->
        with_digest c' (digest_access node.digests.(p) ~obj ~op:o ~resp))
      choices configs

let successors impl node =
  List.concat_map (step impl node) (Explore.runnable node.config)

(* ------------------------------------------------------------------ *)
(* Fingerprints.                                                       *)
(* ------------------------------------------------------------------ *)

let proc_state acc (pr : Explore.proc_state) digest =
  let acc = Fp.list op acc pr.Explore.todo in
  let acc = value acc pr.Explore.local in
  match pr.Explore.running with
  | None -> Fp.byte acc 0
  | Some (Program.Return _) -> Fp.int64 (Fp.byte acc 1) digest
  | Some (Program.Access (obj, o, _)) ->
    op (Fp.int (Fp.int64 (Fp.byte acc 2) digest) obj) o

(* [old_of_new] lists, for each canonical position, the original
   process id placed there; [rename] is its inverse. *)
let encode node ~old_of_new ~rename =
  let c = node.config in
  let acc = Fp.start ~seed:0x6D63L (* "mc" *) () in
  let acc = Fp.int acc c.Explore.steps in
  let acc = Fp.int acc c.Explore.invocations in
  let n = Array.length c.Explore.procs in
  let acc = ref (Fp.int acc n) in
  for i = 0 to n - 1 do
    let p = old_of_new.(i) in
    acc := proc_state !acc c.Explore.procs.(p) node.digests.(p)
  done;
  let acc = Fp.array value !acc c.Explore.bases in
  let acc = Fp.list (event ~rename) acc c.Explore.events_rev in
  Fp.finish acc

let identity_perm n = Array.init n (fun i -> i)

(* All permutations of [0..n-1], as [old_of_new] arrays. *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
    List.concat_map
      (fun x -> List.map (fun p -> x :: p) (permutations (List.filter (( <> ) x) xs)))
      xs

let fingerprint ?(symmetry = false) node =
  let n = Array.length node.config.Explore.procs in
  if not symmetry then
    let id = identity_perm n in
    encode node ~old_of_new:id ~rename:(fun p -> p)
  else begin
    if n > 6 then
      invalid_arg "Canon.fingerprint: symmetry reduction capped at 6 processes";
    let fp_of perm =
      let old_of_new = Array.of_list perm in
      let rename =
        let inv = Array.make n 0 in
        Array.iteri (fun nw old -> inv.(old) <- nw) old_of_new;
        fun p -> inv.(p)
      in
      encode node ~old_of_new ~rename
    in
    match permutations (List.init n (fun i -> i)) with
    | [] -> assert false
    | perm :: perms ->
      List.fold_left
        (fun best perm ->
          let fp = fp_of perm in
          if Int64.unsigned_compare fp best < 0 then fp else best)
        (fp_of perm) perms
  end

(* ------------------------------------------------------------------ *)
(* Trace ordering.                                                     *)
(* ------------------------------------------------------------------ *)

let compare_event (a : Event.t) (b : Event.t) =
  let c = Int.compare a.Event.proc b.Event.proc in
  if c <> 0 then c
  else
    let c = Int.compare a.Event.obj b.Event.obj in
    if c <> 0 then c
    else
      match a.Event.payload, b.Event.payload with
      | Event.Invoke x, Event.Invoke y -> Op.compare x y
      | Event.Respond x, Event.Respond y -> Value.compare x y
      | Event.Invoke _, Event.Respond _ -> -1
      | Event.Respond _, Event.Invoke _ -> 1

(** Lexicographic order on event sequences: the deterministic tie-break
    for counterexample selection. *)
let compare_history (a : History.t) (b : History.t) =
  List.compare compare_event (History.events a) (History.events b)

(* Re-exported absorbers, so other state-space instantiations
   ({!Mc_valency}) encode the vocabulary types identically. *)
let absorb_value = value
let absorb_op = op


(** Canonical encodings and fingerprints for {!Elin_explore.Explore}
    configurations.

    A mid-operation process holds a [Program.t] continuation — a
    closure, not hashable.  But the continuation is a deterministic
    function of observable data (the operation, the local state at
    invocation, the base responses consumed so far), so each {!node}
    carries a per-process running {e digest} of exactly that data, and
    (config-without-closures, digests) is a faithful canonical key.
    Stepping must therefore go through {!step}/{!successors}, which
    wrap [Explore.step] (still the single source of truth for the
    transition semantics) and label each branch with the response the
    continuation consumed. *)

open Elin_history
open Elin_runtime
open Elin_explore

type node = {
  config : Explore.config;
  digests : int64 array;
      (** per-process continuation digests; [0L] when idle or still
          inside the operation that was running at the search root *)
  depth : int;  (** steps taken from the search root *)
  sleep : int;
      (** sleep set (partial-order reduction): bitmask of processes
          whose next step was already explored, at an ancestor, in a
          provably commuting order *)
  proc_fps : int64 array;  (** packed per-process state summaries *)
  base_fps : int64 array;  (** packed per-object state summaries *)
  events_acc : Elin_kernel.Fingerprint.acc;
      (** running digest of the chronological event log *)
}

val root : Explore.config -> node

(** [step impl node p] — [Explore.step] with digest and packed-summary
    maintenance.  [?choices] must be [Explore.access_choices] on the
    node's configuration when given. *)
val step :
  ?choices:(Elin_spec.Value.t * Elin_spec.Value.t) list ->
  Impl.t ->
  node ->
  int ->
  node list

(** [successors ?por ?pruned impl node] — every configuration one step
    away.  With [~por:true], sleep-set pruning: slept processes are
    skipped (counted in [pruned]) and successors inherit the masks
    that keep exactly the lexicographically minimal interleaving per
    Mazurkiewicz trace class; the reachable state set is preserved.
    Caps at 62 processes under reduction (callers guard). *)
val successors :
  ?por:bool -> ?pruned:int Atomic.t -> Impl.t -> node -> node list

(** Sleep-set merge for dedup under reduction: keep the first copy
    with the {e intersection} of both sleep masks. *)
val merge_sleep : node -> node -> node

(** [fingerprint ?symmetry node] — seeded 64-bit fingerprint of the
    canonical encoding.  With [~symmetry:true], the minimum over all
    process renamings (ids renamed in the process array {e and} the
    accumulated history) — sound only for identical workloads,
    process-oblivious implementations, and renaming-invariant
    predicates; capped at 6 processes.  @raise Invalid_argument beyond
    the cap. *)
val fingerprint : ?symmetry:bool -> node -> int64

(** Structural order on events: process, object, then payload
    (invocations before responses). *)
val compare_event : Event.t -> Event.t -> int

(** Lexicographic order on event sequences: the deterministic
    tie-break for counterexample selection. *)
val compare_history : History.t -> History.t -> int

(** Absorbers for the vocabulary types, shared by every state-space
    instantiation so encodings stay consistent. *)
val absorb_value :
  Elin_kernel.Fingerprint.acc -> Elin_spec.Value.t -> Elin_kernel.Fingerprint.acc

val absorb_op :
  Elin_kernel.Fingerprint.acc -> Elin_spec.Op.t -> Elin_kernel.Fingerprint.acc

(** [digest_access prev ~obj ~op ~resp] — fold one consumed base
    response into a continuation digest. *)
val digest_access :
  int64 -> obj:int -> op:Elin_spec.Op.t -> resp:Elin_spec.Value.t -> int64

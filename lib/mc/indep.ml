(** The independence relation behind partial-order reduction.

    Two enabled steps are {e independent} when executing them in either
    order from the current configuration yields the same configuration
    and neither order enables or disables the other — the Mazurkiewicz
    trace condition the sleep-set pruning of {!Canon}/{!Mc_valency}
    relies on.  Rather than proving commutation per step pair, each
    step is summarized by its {e footprint} over the shared state, and
    independence is decided footprint-to-footprint:

    - invoke and return steps append to the shared event log (and only
      to it): footprint {!Log}.  Two log appends never commute — the
      event order is the history, and histories are the checked
      observable;
    - base-access steps touch exactly one base object (and never the
      log): footprint {!Access}, carrying the object index, whether
      any adversary branch changes the object state (a {e write}), and
      whether the access may read the global step counter;
    - valency decision steps ({!Elin_valency} [Return]s) touch no
      shared structure beyond the global step counter (which every
      step advances): footprint {!Local}.

    The dynamic ingredients: writes are detected from the actual
    enabled choices (an access all of whose branches leave the state
    intact is a read, whatever the operation's name), and step
    sensitivity is delegated to [Base.step_sensitive] in the {e
    current} object state — a stabilize-at-step object stops being
    step-sensitive the moment it stabilizes.  A step-sensitive access
    is dependent with {e every} other step: reordering shifts the
    global step indices it observes.

    Why footprint disjointness implies commutation here: a process's
    own program state (todo, local, continuation) is touched only by
    its own steps, every step increments the global step counter by
    one regardless of order, and responses/digests of an access are
    functions of (object state, op, proc) once step-insensitive — so
    swapping two independent steps reproduces identical configurations
    {e and} identical continuation digests. *)

open Elin_spec
open Elin_runtime

type t =
  | Local  (** touches no shared structure beyond the step counter
               (valency decision steps) *)
  | Log    (** appends to the shared event log (invoke/return steps) *)
  | Access of {
      obj : int;             (** base object index *)
      writes : bool;         (** some branch changes the object state *)
      step_sensitive : bool; (** response may depend on the global step *)
    }  (** a base-object access *)

(** [independent a b] — may the two steps be commuted?  Conservative:
    [false] is always sound. *)
let independent a b =
  match a, b with
  (* Step sensitivity first: a [Local] decision step still advances the
     global step counter ([Valency.step]'s [Return] branch), so
     commuting it across a step-sensitive access would move the access
     across the stabilization threshold and change its enabled
     responses.  A step-sensitive access is dependent with EVERY other
     step, [Local] included. *)
  | Local, Access a | Access a, Local -> not a.step_sensitive
  | Local, _ | _, Local -> true
  | Log, Log -> false
  | Log, Access a | Access a, Log -> not a.step_sensitive
  | Access a, Access b ->
    (not a.step_sensitive)
    && (not b.step_sensitive)
    && (a.obj <> b.obj || (not a.writes && not b.writes))

(* An access is a read iff every enabled branch keeps the state. *)
let is_read ~state choices =
  List.for_all (fun (_, state') -> state' == state || Value.equal state' state)
    choices

let access_footprint (bases : Base.t array) states ~obj ~choices =
  Access
    {
      obj;
      writes = not (is_read ~state:states.(obj) choices);
      step_sensitive = bases.(obj).Base.step_sensitive states.(obj);
    }

(** [of_explore impl c p] — footprint of process [p]'s next step in
    [c], plus the access choices when that step is an access (so the
    caller can pass them back through [Explore.step ?choices] and pay
    for [Base.access] once). *)
let of_explore (impl : Impl.t) (c : Elin_explore.Explore.config) p =
  let open Elin_explore in
  match c.Explore.procs.(p).Explore.running with
  | None | Some (Program.Return _) -> (Log, None)
  | Some (Program.Access (obj, _, _)) ->
    let choices = Explore.access_choices impl c p in
    ( access_footprint impl.Impl.bases c.Explore.bases ~obj ~choices,
      Some choices )

(** [of_valency p c i] — footprint of process [i]'s next protocol step.
    Valency spaces have no event log, so decision steps are {!Local}. *)
let of_valency (p : Elin_valency.Valency.protocol)
    (c : Elin_valency.Valency.config) i =
  let open Elin_valency in
  match c.Valency.procs.(i) with
  | Valency.Decided _ | Valency.Running (Program.Return _) -> (Local, None)
  | Valency.Running (Program.Access (obj, op, _)) ->
    let choices =
      p.Valency.bases.(obj).Base.access ~state:c.Valency.bases.(obj) ~proc:i
        ~step:c.Valency.steps op
    in
    ( access_footprint p.Valency.bases c.Valency.bases ~obj ~choices,
      Some choices )

(** The independence relation behind partial-order reduction: each
    enabled step is summarized by its footprint over the shared state
    (event log, one base object, or nothing), and two steps commute iff
    their footprints say so.  Conservative by construction — a
    dependent verdict only costs pruning. *)

open Elin_spec
open Elin_runtime

type t =
  | Local  (** touches no shared structure beyond the step counter
               (valency decision steps) *)
  | Log    (** appends to the shared event log (invoke/return steps) *)
  | Access of {
      obj : int;             (** base object index *)
      writes : bool;         (** some branch changes the object state *)
      step_sensitive : bool; (** response may depend on the global step *)
    }  (** a base-object access *)

(** [independent a b] — may the two steps be commuted?  Holds for
    [Local] against [Local], [Log], or a step-insensitive access,
    access against log append (when step-insensitive), accesses on
    distinct objects, and read-read on the same object.  Two log
    appends never commute (event order is the history); a
    step-sensitive access commutes with {e nothing} — every step,
    [Local] included, advances the global step counter it observes. *)
val independent : t -> t -> bool

(** [of_explore impl c p] — footprint of process [p]'s next step, plus
    the access choices when that step is a base access (pass them back
    through [Explore.step ?choices] to pay for [Base.access] once). *)
val of_explore :
  Impl.t ->
  Elin_explore.Explore.config ->
  int ->
  t * (Value.t * Value.t) list option

(** [of_valency p c i] — footprint of process [i]'s next protocol
    step; decision steps are {!Local} (valency spaces have no event
    log). *)
val of_valency :
  Elin_valency.Valency.protocol ->
  Elin_valency.Valency.config ->
  int ->
  t * (Value.t * Value.t) list option

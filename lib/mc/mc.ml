(** The model checker, specialized to implementation execution trees.

    Same exhaustive semantics as [Explore.for_all_histories] — every
    interleaving of process steps and every adversary branch of the
    base objects, to a step bound — but run through {!Search}'s
    parallel fingerprint-dedup BFS:

    - syntactically identical configurations reached along different
      interleavings (e.g. commuting base accesses) are expanded once;
    - BFS levels are partitioned across OCaml 5 domains;
    - the verdict is deterministic and domain-count-independent: when
      the predicate fails, the reported counterexample is the
      lexicographically minimal violating history of the shallowest
      violating level.

    Because a configuration's fingerprint covers the accumulated
    history (events are part of the canonical encoding), dedup merges
    only configurations with identical pasts {e and} futures: the set
    of reachable leaf histories — hence any history predicate's
    verdict — is preserved exactly, modulo 64-bit fingerprint
    collisions. *)

open Elin_spec
open Elin_history
open Elin_runtime
open Elin_explore

type outcome = {
  ok : bool;
  counterexample : History.t option;
      (** the minimal violating history under {!Canon.compare_history} *)
  stats : Search.stats;
}

type spill = {
  dir : string;
  hot : int;
  every : int;
  identity : string;
  on_checkpoint : int -> unit;
  mutable store : Elin_store.Tiered_set.stats option;
  mutable resumed_from : int option;
}

let spill ?(hot = 1 lsl 20) ?(every = 0) ?(identity = "")
    ?(on_checkpoint = fun _ -> ()) dir =
  {
    dir;
    hot;
    every;
    identity;
    on_checkpoint;
    store = None;
    resumed_from = None;
  }

let workloads_symmetric workloads =
  let n = Array.length workloads in
  n = 0
  || Array.for_all (fun wl -> List.equal Op.equal wl workloads.(0)) workloads

let check_symmetry ~symmetry ~workloads =
  if symmetry && not (workloads_symmetric workloads) then
    invalid_arg "Mc: symmetry reduction requires identical workloads"

(* Shared driver: explore every extension of [root] whose step count
   stays below [budget], classifying leaves with [leaf].

   Partial-order reduction ([por], default on) is silently disabled
   under symmetry reduction — sleep masks are process-indexed and the
   renaming quotient merges states across indexings — and beyond 62
   processes (the mask is an [int] bitmask).  With dedup on, sleep
   sets and dedup compose through [Search]'s barrier merge: the
   surviving copy of a state carries the intersection of all copies'
   sleep masks, so every direction some path still had to explore is
   explored.  The reachable state set — hence every verdict, decision
   set and lex-min counterexample, and the [states]/[kept]/[leaves]
   counts under dedup — is invariant under [por]; only redundant
   successor generation ([dedup_hits]) shrinks.  In tree mode (no
   dedup) [por] prunes the node count itself. *)
let drive (impl : Impl.t) ?engine ?domains ?(dedup = true) ?(symmetry = false)
    ?(por = true) ?(stop_early = true) ?spill:msp ?resume ?on_state ~budget
    ~leaf root =
  let por =
    por && (not symmetry) && Array.length root.Explore.procs <= 62
  in
  let pruned = Atomic.make 0 in
  let expand (node : Canon.node) =
    (match on_state with Some f -> f () | None -> ());
    let c = node.Canon.config in
    if Explore.is_done c then Search.Leaf (leaf c)
    else if c.Explore.steps >= budget then Search.Cut (leaf c)
    else Search.Children (Canon.successors ~por ~pruned impl node)
  in
  let merge = if por && dedup then Some Canon.merge_sleep else None in
  (* The frontier segments' payload is the sleep mask: the resume
     cross-check then certifies the POR metadata of the cut, not just
     the state identities.  The POR-pruned counter rides the manifest
     through the aux hooks. *)
  let sp =
    Option.map
      (fun m ->
        Search.spill ~hot:m.hot ~every:m.every ~identity:m.identity
          ~payload:(fun (n : Canon.node) -> Int64.of_int n.Canon.sleep)
          ~save_aux:(fun () -> Atomic.get pruned)
          ~restore_aux:(fun v -> Atomic.set pruned v)
          ~on_checkpoint:m.on_checkpoint m.dir)
      msp
  in
  let vs, stats =
    Search.bfs ?engine ?domains ~dedup ~stop_early ?merge ?spill:sp ?resume
      ~fingerprint:(Canon.fingerprint ~symmetry)
      ~expand ~compare:Canon.compare_history (Canon.root root)
  in
  (match msp, sp with
  | Some m, Some s ->
    m.store <- s.Search.sp_store;
    m.resumed_from <- s.Search.sp_resumed
  | _ -> ());
  (vs, { stats with Search.pruned = Atomic.get pruned })

let outcome_of (violations, stats) =
  match violations with
  | [] -> { ok = true; counterexample = None; stats }
  | h :: _ -> { ok = false; counterexample = Some h; stats }

(** [check impl ~workloads p] — does [p] hold on every leaf history
    (finished or cut at [max_steps])?  The [Explore.for_all_histories]
    contract, parallel and deduplicated. *)
let check (impl : Impl.t) ~workloads ?locals ?(max_steps = 40) ?engine
    ?domains ?dedup ?(symmetry = false) ?por ?spill ?resume ?on_state p =
  check_symmetry ~symmetry ~workloads;
  let leaf c =
    let h = Explore.history c in
    if p h then None else Some h
  in
  outcome_of
    (drive impl ?engine ?domains ?dedup ~symmetry ?por ?spill ?resume
       ?on_state ~budget:max_steps ~leaf
       (Explore.initial_config impl ~workloads ?locals ()))

(** [check_from impl c0 ~max_extra_steps p] — [check] over every
    extension of configuration [c0] by at most [max_extra_steps] steps
    (the Prop. 18 stability certificate's shape).  No symmetry
    reduction: the processes' in-flight operations break it. *)
let check_from (impl : Impl.t) (c0 : Explore.config) ~max_extra_steps ?engine
    ?domains ?dedup ?por ?spill ?resume ?on_state p =
  let leaf c =
    let h = Explore.history c in
    if p h then None else Some h
  in
  outcome_of
    (drive impl ?engine ?domains ?dedup ?por ?spill ?resume ?on_state
       ~budget:(c0.Explore.steps + max_extra_steps) ~leaf c0)

(** [count_states impl ~workloads ()] — exhaust the bounded space with
    no predicate; the stats are the result. *)
let count_states (impl : Impl.t) ~workloads ?locals ?(max_steps = 40) ?engine
    ?domains ?dedup ?(symmetry = false) ?por ?spill ?resume ?on_state () =
  check_symmetry ~symmetry ~workloads;
  let _, stats =
    drive impl ?engine ?domains ?dedup ~symmetry ?por ?spill ?resume ?on_state
      ~stop_early:false ~budget:max_steps
      ~leaf:(fun _ -> None)
      (Explore.initial_config impl ~workloads ?locals ())
  in
  stats

(** [leaf_histories impl ~workloads ()] — the {e set} of reachable leaf
    histories (sorted under {!Canon.compare_history}), plus stats.
    Used by the dedup-soundness tests: the set is invariant under
    [~dedup]. *)
let leaf_histories (impl : Impl.t) ~workloads ?locals ?(max_steps = 40)
    ?engine ?domains ?dedup ?por ?spill ?resume () =
  let hs, stats =
    drive impl ?engine ?domains ?dedup ?por ?spill ?resume ~stop_early:false
      ~budget:max_steps
      ~leaf:(fun c -> Some (Explore.history c))
      (Explore.initial_config impl ~workloads ?locals ())
  in
  (hs, stats)

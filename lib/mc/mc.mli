(** The model checker, specialized to implementation execution trees:
    [Explore.for_all_histories]'s exhaustive semantics, run through
    {!Search}'s parallel fingerprint-dedup BFS.

    Dedup is exact for history predicates because fingerprints cover
    the accumulated history: only configurations with identical pasts
    and futures merge (modulo 64-bit fingerprint collisions).  The
    verdict — including the reported counterexample, which is the
    lexicographically minimal violating history of the shallowest
    violating level — is independent of the domain count. *)

open Elin_spec
open Elin_history
open Elin_runtime
open Elin_explore

type outcome = {
  ok : bool;
  counterexample : History.t option;
      (** the minimal violating history under {!Canon.compare_history} *)
  stats : Search.stats;
}

(** All workloads structurally equal (the precondition for symmetry
    reduction). *)
val workloads_symmetric : Op.t list array -> bool

(** External-memory spill + checkpoint configuration, layered over
    {!Search.type-spill}: the visited set gains a disk tier under
    [dir], and with [every > 0] the BFS seals a resumable checkpoint
    at every [every]-th level barrier.  [identity] must canonically
    describe the workload and search parameters — resume refuses a
    mismatch.  The result fields [store] (spill-tier statistics) and
    [resumed_from] (checkpoint sequence resumed, if any) are filled
    after the run. *)
type spill = {
  dir : string;
  hot : int;  (** hot-tier capacity per shard, in fingerprints *)
  every : int;  (** checkpoint every N levels; 0 = never *)
  identity : string;
  on_checkpoint : int -> unit;
  mutable store : Elin_store.Tiered_set.stats option;
  mutable resumed_from : int option;
}

(** [spill dir] — defaults: [hot] 2^20, [every] 0, empty identity,
    no-op [on_checkpoint]. *)
val spill :
  ?hot:int ->
  ?every:int ->
  ?identity:string ->
  ?on_checkpoint:(int -> unit) ->
  string ->
  spill

(** [check impl ~workloads p] — does [p] hold on every leaf history
    (finished, or cut at [max_steps], default 40)?

    [engine] (default [Search.Barrier]) selects the parallel engine;
    the outcome is engine-independent (see {!Search.engine}).
    [domains] defaults to [Domain.recommended_domain_count ()];
    [dedup] defaults to [true]; [por] (default [true]) enables
    sleep-set partial-order reduction — verdicts, decision sets, leaf
    counts and the lex-min counterexample are invariant under it, only
    redundant successor generation shrinks; it is silently disabled
    under [symmetry] (sleep masks are process-indexed) and beyond 62
    processes.  [symmetry] (default [false]) enables
    the process-renaming quotient of {!Canon.fingerprint} — requires
    identical workloads (checked: @raise Invalid_argument), a
    process-oblivious implementation and a renaming-invariant
    predicate (the caller's obligation).

    [spill] attaches the external-memory tier / checkpoint schedule;
    [resume] (requires [spill]) re-enters at the newest committed
    checkpoint, raising {!Elin_store.Segment.Corrupt} if none exists
    or anything fails validation.  [on_state] is called once per
    expanded state (crash injection in the resume tests; must not
    affect the state space). *)
val check :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  ?engine:Search.engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?symmetry:bool ->
  ?por:bool ->
  ?spill:spill ->
  ?resume:bool ->
  ?on_state:(unit -> unit) ->
  (History.t -> bool) ->
  outcome

(** [check_from impl c0 ~max_extra_steps p] — [check] over every
    extension of [c0] by at most [max_extra_steps] steps (the Prop. 18
    stability certificate's shape). *)
val check_from :
  Impl.t ->
  Explore.config ->
  max_extra_steps:int ->
  ?engine:Search.engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?spill:spill ->
  ?resume:bool ->
  ?on_state:(unit -> unit) ->
  (History.t -> bool) ->
  outcome

(** Exhaust the bounded space with no predicate; the stats are the
    result. *)
val count_states :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  ?engine:Search.engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?symmetry:bool ->
  ?por:bool ->
  ?spill:spill ->
  ?resume:bool ->
  ?on_state:(unit -> unit) ->
  unit ->
  Search.stats

(** The {e set} of reachable leaf histories, sorted under
    {!Canon.compare_history} — invariant under [~dedup] (the
    dedup-soundness tests rely on this). *)
val leaf_histories :
  Impl.t ->
  workloads:Op.t list array ->
  ?locals:Value.t array ->
  ?max_steps:int ->
  ?engine:Search.engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?spill:spill ->
  ?resume:bool ->
  unit ->
  History.t list * Search.stats

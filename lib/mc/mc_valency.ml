(** The model checker, specialized to the valency analysis's protocol
    configurations (the E9 workload).

    [Valency.decision_set] is a sequential DFS that re-visits
    syntactically identical configurations: protocol steps on
    different base objects commute, so the interleaving tree collapses
    heavily under state dedup — exactly the state space where
    fingerprinting pays.  This module runs the same exhaustive
    semantics ([Valency.step] on every runnable process, every
    adversary branch) through {!Search}'s parallel BFS and reports the
    decision-vector set, the consensus verdicts, and the exploration
    stats.

    The continuation-digest construction mirrors {!Canon}: a running
    process's programme is a deterministic function of its input value
    and the base responses it consumed, both of which the digest
    absorbs. *)

open Elin_spec
open Elin_runtime
open Elin_valency
module Fp = Elin_kernel.Fingerprint

type node = {
  config : Valency.config;
  digests : int64 array;
  sleep : int;  (* sleep set as a process bitmask (POR); see {!Canon} *)
}

let digest_input input =
  Fp.finish (Canon.absorb_value (Fp.byte (Fp.start ()) 1) input)

let root (p : Valency.protocol) ~inputs =
  {
    config = Valency.initial p ~inputs;
    digests = Array.map digest_input inputs;
    sleep = 0;
  }

(** [step p node i] — [Valency.step] with digest maintenance (the
    labelling trick of {!Canon.step}: re-enumerate the pure
    [Base.access] to learn which response each branch consumed). *)
let step ?choices (p : Valency.protocol) node i =
  let c = node.config in
  let with_digest c' d =
    let digests = Array.copy node.digests in
    digests.(i) <- d;
    { config = c'; digests; sleep = 0 }
  in
  match c.Valency.procs.(i) with
  | Valency.Decided _ -> []
  | Valency.Running (Program.Return _) ->
    List.map (fun c' -> with_digest c' 0L) (Valency.step p c i)
  | Valency.Running (Program.Access (obj, o, _)) ->
    let choices =
      match choices with
      | Some cs -> cs
      | None ->
        p.Valency.bases.(obj).Base.access ~state:c.Valency.bases.(obj) ~proc:i
          ~step:c.Valency.steps o
    in
    List.map2
      (fun (resp, _) c' ->
        with_digest c' (Canon.digest_access node.digests.(i) ~obj ~op:o ~resp))
      choices
      (Valency.step ~choices p c i)

(** Sleep-set pruning, exactly as in {!Canon.successors} but over
    {!Indep.of_valency} footprints — decision steps are [Local], so a
    poised decision commutes with everything and sleeps freely. *)
let m_pruned = Elin_obs.Metrics.counter "mc.por_pruned"

let successors ?(por = false) ?pruned (p : Valency.protocol) node =
  let c = node.config in
  let enabled = Valency.runnable c in
  if not por then List.concat_map (fun i -> step p node i) enabled
  else begin
    let foots = List.map (fun q -> (q, Indep.of_valency p c q)) enabled in
    let slept =
      List.filter_map
        (fun (q, (fq, _)) ->
          if node.sleep land (1 lsl q) <> 0 then Some (q, fq) else None)
        foots
    in
    let rec go acc explored = function
      | [] -> List.concat (List.rev acc)
      | (i, (fp_i, choices)) :: rest ->
        if node.sleep land (1 lsl i) <> 0 then begin
          (match pruned with Some a -> Atomic.incr a | None -> ());
          if Elin_obs.Metrics.on () then
            Elin_obs.Metrics.Counter.incr m_pruned;
          go acc explored rest
        end
        else begin
          let inherit_mask m (q, fq) =
            if Indep.independent fq fp_i then m lor (1 lsl q) else m
          in
          let sleep' =
            List.fold_left inherit_mask
              (List.fold_left inherit_mask 0 slept)
              explored
          in
          let ss =
            List.map (fun s -> { s with sleep = sleep' })
              (step ?choices p node i)
          in
          go (ss :: acc) ((i, fp_i) :: explored) rest
        end
    in
    go [] [] foots
  end

let merge_sleep a b = { a with sleep = a.sleep land b.sleep }

let fingerprint node =
  let c = node.config in
  let acc = Fp.start ~seed:0x76616CL (* "val" *) () in
  let acc = Fp.int acc c.Valency.steps in
  let n = Array.length c.Valency.procs in
  let acc = ref (Fp.int acc n) in
  for i = 0 to n - 1 do
    acc :=
      match c.Valency.procs.(i) with
      | Valency.Decided v -> Canon.absorb_value (Fp.byte !acc 0) v
      | Valency.Running _ -> Fp.int64 (Fp.byte !acc 1) node.digests.(i)
  done;
  Fp.finish (Fp.array Canon.absorb_value !acc c.Valency.bases)

(* Leaf verdicts: a decision vector, or a path cut by the bound. *)
type leaf = Decision of Value.t array | Truncated

let compare_leaf a b =
  match a, b with
  | Decision x, Decision y ->
    List.compare Value.compare (Array.to_list x) (Array.to_list y)
  | Decision _, Truncated -> -1
  | Truncated, Decision _ -> 1
  | Truncated, Truncated -> 0

type report = {
  decisions : Value.t array list;  (* sorted, duplicate-free *)
  agreement_violation : Value.t array option;
  validity_violation : Value.t array option;
  terminated : bool;
  stats : Search.stats;
}

(** [check_consensus p ~inputs ~max_steps ()] — the
    [Valency.check_consensus] verdicts, computed by the parallel
    dedup'd engine.  Unlike the DFS original, [decisions] is still
    reported when termination fails ([terminated = false]): the
    decision set of the paths that did decide within the bound. *)
let check_consensus (p : Valency.protocol) ~inputs ~max_steps ?engine ?domains
    ?dedup ?(por = true) ?spill:msp ?resume () =
  let por = por && Array.length inputs <= 62 in
  let dedup_on = match dedup with Some b -> b | None -> true in
  let pruned = Atomic.make 0 in
  let expand node =
    let c = node.config in
    if Valency.all_decided c then
      Search.Leaf
        (Some
           (Decision
              (Array.map
                 (function
                   | Valency.Decided v -> v
                   | Valency.Running _ -> assert false)
                 c.Valency.procs)))
    else if c.Valency.steps >= max_steps then Search.Cut (Some Truncated)
    else Search.Children (successors ~por ~pruned p node)
  in
  let merge = if por && dedup_on then Some merge_sleep else None in
  (* Valency nodes carry sleep masks too; same payload contract as
     {!Mc.drive}'s. *)
  let sp =
    Option.map
      (fun (m : Mc.spill) ->
        Search.spill ~hot:m.Mc.hot ~every:m.Mc.every ~identity:m.Mc.identity
          ~payload:(fun n -> Int64.of_int n.sleep)
          ~save_aux:(fun () -> Atomic.get pruned)
          ~restore_aux:(fun v -> Atomic.set pruned v)
          ~on_checkpoint:m.Mc.on_checkpoint m.Mc.dir)
      msp
  in
  let leaves, stats =
    Search.bfs ?engine ?domains ?dedup ~stop_early:false ?merge ?spill:sp
      ?resume ~fingerprint ~expand
      ~compare:compare_leaf (root p ~inputs)
  in
  (match msp, sp with
  | Some m, Some s ->
    m.Mc.store <- s.Search.sp_store;
    m.Mc.resumed_from <- s.Search.sp_resumed
  | _ -> ());
  let stats = { stats with Search.pruned = Atomic.get pruned } in
  let decisions =
    List.filter_map (function Decision d -> Some d | Truncated -> None) leaves
  in
  let terminated = not (List.mem Truncated leaves) in
  let agreement_violation =
    List.find_opt
      (fun d -> Array.exists (fun v -> not (Value.equal v d.(0))) d)
      decisions
  in
  let validity_violation =
    List.find_opt
      (fun d ->
        Array.exists
          (fun v -> not (Array.exists (fun input -> Value.equal v input) inputs))
          d)
      decisions
  in
  { decisions; agreement_violation; validity_violation; terminated; stats }

(** The model checker, specialized to the valency analysis's protocol
    configurations (the E9 workload): [Valency.check_consensus]'s
    exhaustive semantics through {!Search}'s parallel
    fingerprint-dedup BFS.  Protocol steps on different base objects
    commute, so the interleaving tree collapses heavily under dedup. *)

open Elin_spec
open Elin_valency

type node = {
  config : Valency.config;
  digests : int64 array;
  sleep : int;  (** sleep set as a process bitmask (POR) *)
}

val root : Valency.protocol -> inputs:Value.t array -> node

(** [Valency.step] with continuation-digest maintenance; [?choices]
    must be the poised access's [Base.access] enumeration when
    given. *)
val step :
  ?choices:(Value.t * Value.t) list ->
  Valency.protocol ->
  node ->
  int ->
  node list

(** Sleep-set pruning under [~por:true], as {!Canon.successors}. *)
val successors :
  ?por:bool -> ?pruned:int Atomic.t -> Valency.protocol -> node -> node list
val fingerprint : node -> int64

type report = {
  decisions : Value.t array list;  (** sorted, duplicate-free *)
  agreement_violation : Value.t array option;
  validity_violation : Value.t array option;
  terminated : bool;
  stats : Search.stats;
}

(** Unlike the DFS original ([Valency.check_consensus]), [decisions]
    is still reported when termination fails: the decision set of the
    paths that did decide within the bound.  [spill]/[resume] as in
    {!Mc.check}: external-memory visited tier plus crash-safe
    checkpoint/resume. *)
val check_consensus :
  Valency.protocol ->
  inputs:Value.t array ->
  max_steps:int ->
  ?engine:Search.engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?por:bool ->
  ?spill:Mc.spill ->
  ?resume:bool ->
  unit ->
  report

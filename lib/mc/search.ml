(** The generic parallel model-checking engine: level-synchronous BFS
    with fingerprint dedup over an abstract state space.

    The state space is given by three functions — [fingerprint],
    [expand], and a verdict [compare] — so both the [Explore.config]
    execution trees (via {!Canon}/{!Mc}) and the valency analysis's
    protocol configurations (via {!Mc_valency}) run through the same
    engine.

    {2 Parallelism}

    Two engines share the BFS semantics:

    - {e Barrier} (legacy): each level is partitioned round-robin
      across [domains] OCaml 5 domains, re-spawned per level
      ([Domain.spawn]; the stripe-locked visited set is the only
      shared mutable structure).  Levels are a hard barrier: every
      domain finishes its share of level [d] before any state of level
      [d+1] is expanded.  Small levels (fewer than [2 * domains]
      states) are expanded on the spawning domain — spawning would
      cost more than it buys.  With [domains = 1] no domain is ever
      spawned: the engine degrades to a plain sequential BFS.
    - {e Sharded} (shared-nothing): domains are spawned once for the
      whole search; each owns a fixed shard of the fingerprint space
      (plain per-domain [Hashtbl], no lock on the hot path), expands
      its own frontier slice, and routes successors to their owner in
      fixed-size batches over SPSC queues; levels synchronize at a
      cheap two-phase epoch count.  See the long comment above
      [bfs_sharded].

    Both engines produce bit-identical verdicts and counts; they
    differ only in [per_domain], [wall], and trace shape.

    {2 Determinism contract}

    The result is a function of the state space and the bounds alone —
    {e not} of the domain count — because:

    - the set of states at each level is dedup-independent of the
      partition: the visited set's [add] is atomic, racing inserts of
      the same fingerprint keep exactly one copy, and (modulo 64-bit
      fingerprint collisions) equal fingerprints mean equal states, so
      {e which} racing copy survives is unobservable;
    - with [?merge] (dedup under partial-order reduction), duplicates
      are instead resolved at the level barrier, on the spawning
      domain: the first-generated copy survives with the [merge] of
      all copies' search metadata.  [merge] must be commutative and
      associative (sleep-set intersection is), so the outcome is again
      partition-independent;
    - verdicts are never acted on mid-level.  When a verdict is found,
      every domain still completes the current level, the verdicts of
      that level are gathered from all domains, and the minimum under
      [compare] is reported first — "lexicographically minimal
      counterexample", independent of which domain found it first.

    Only the {e observability} fields ([per_domain], [wall]) depend on
    scheduling. *)

type stats = {
  states : int;           (** states expanded (dequeued from the frontier) *)
  dedup_hits : int;       (** successors dropped because already visited *)
  kept : int;             (** successors enqueued (dedup survivors) *)
  pruned : int;           (** expansions skipped by partial-order reduction
                              (filled in by the caller's [expand]; 0 here) *)
  frontier_peak : int;    (** widest BFS level *)
  leaves : int;           (** terminal states (finished or cut) *)
  cut : int;              (** terminal only because of the bound *)
  levels : int;           (** BFS depth reached *)
  per_domain : int array; (** states expanded by each domain (scheduling-
                              dependent: partitions follow frontier order) *)
  domains : int;
  wall : float;           (** seconds *)
}

(** Fraction of generated successors that dedup discarded. *)
let dedup_rate stats =
  let generated = stats.dedup_hits + stats.kept in
  if generated <= 0 then 0.
  else float_of_int stats.dedup_hits /. float_of_int generated

type ('s, 'v) expansion =
  | Children of 's list  (** interior state ([[]] = dead end, not a leaf —
                             matching [Explore]'s node accounting) *)
  | Leaf of 'v option    (** terminal; [Some v] records a verdict *)
  | Cut of 'v option     (** terminal because of the bound *)

(* A visited set reduced to the two operations the engines need.
   Both engines build it over either the RAM sets
   ({!Elin_kernel.Striped_set} / {!Elin_kernel.Shard_set}) or the
   spill tier ({!Elin_store.Tiered_set}); the closures erase the
   difference, which is what keeps the dedup semantics — and hence
   the determinism contract — representation-independent. *)
type vset = { vadd : int64 -> bool; vmem : int64 -> bool }

(* How a domain's share treats generated successors.  [Immediate] is
   the classic path: filter through the shared visited set at
   generation time.  [Tag] tags each successor with its fingerprint
   for barrier-time merging (dedup under partial-order reduction,
   where the surviving copy's metadata is the merge of all copies')
   but still drops cross-level duplicates at generation time — the
   visited set only ever holds earlier levels' (final) entries during
   expansion, so the [mem] answer cannot change before the barrier,
   and buffering such a copy would only inflate per-level peak memory.
   Only intra-level copies reach the barrier merge.  [Plain] keeps
   everything untagged. *)
type keep_mode = Plain | Immediate of vset | Tag of vset

(* Results of one domain's share of one level. *)
type ('s, 'v) share = {
  next : (int64 * 's) list;  (* kept successors, in expansion order;
                                fingerprint tag is 0L in [Plain] mode *)
  found : 'v list;
  hits : int;
  n_states : int;
  n_leaves : int;
  n_cut : int;
}

(* Observability.  Live counters/gauges let `elin mc --progress` read
   exploration rates mid-level; the trace gets one expansion span plus
   aggregated POR-pruned / dedup-dropped instants per (level, worker)
   — per-event instants would dwarf the states they describe.  All of
   it is behind the [on ()] flags: disabled cost is one atomic load
   per state. *)
let m_states = Elin_obs.Metrics.counter "mc.states"
let m_kept = Elin_obs.Metrics.counter "mc.kept"
let m_dedup_hits = Elin_obs.Metrics.counter "mc.dedup_hits"

(* Registered by this module, bumped by [Canon]/[Mc_valency]'s
   successor functions (same registry entry by name). *)
let m_pruned = Elin_obs.Metrics.counter "mc.por_pruned"
let g_frontier = Elin_obs.Metrics.gauge "mc.frontier"
let g_level = Elin_obs.Metrics.gauge "mc.level"

(* Per-worker live counters, for per-domain utilization in progress
   heartbeats: worker [d]'s states land in "mc.worker<d>.states".
   Registered on demand, cached — registration takes a mutex.

   Regression note: the cache used to be a plain [Counter.t option
   array] written from every worker domain — a data race by the OCaml
   memory model (concurrent plain writes, and readers could legally
   never observe a peer's registration).  The slots are now [Atomic],
   which makes the cache race-free {e by construction}: racing
   registrations of the same index both resolve to the same registry
   entry (find-or-create by name), so the last [Atomic.set] winning is
   indistinguishable from the first. *)
let worker_counters : Elin_obs.Metrics.Counter.t option Atomic.t array =
  Array.init 64 (fun _ -> Atomic.make None)

let worker_counter d =
  if d < 0 || d >= Array.length worker_counters then
    Elin_obs.Metrics.counter (Printf.sprintf "mc.worker%d.states" d)
  else
    match Atomic.get worker_counters.(d) with
    | Some c -> c
    | None ->
      let c = Elin_obs.Metrics.counter (Printf.sprintf "mc.worker%d.states" d) in
      Atomic.set worker_counters.(d) (Some c);
      c

let expand_share ~expand ~fingerprint ~mode frontier ~stride ~offset =
  let span_ts = Elin_obs.Trace.begin_ns () in
  let pruned0 =
    if span_ts <> 0L then Elin_obs.Metrics.Counter.shard_value m_pruned else 0
  in
  let m_worker = if Elin_obs.Metrics.on () then Some (worker_counter offset) else None in
  let n = Array.length frontier in
  let next = ref [] and found = ref [] in
  let hits = ref 0 and n_states = ref 0 and n_leaves = ref 0 and n_cut = ref 0 in
  let keep s' =
    match mode with
    | Plain -> next := (0L, s') :: !next
    | Immediate visited ->
      let fp = fingerprint s' in
      if visited.vadd fp then next := (fp, s') :: !next else incr hits
    | Tag visited ->
      let fp = fingerprint s' in
      if visited.vmem fp then incr hits else next := (fp, s') :: !next
  in
  let i = ref offset in
  while !i < n do
    incr n_states;
    (match m_worker with
    | Some c ->
      Elin_obs.Metrics.Counter.incr m_states;
      Elin_obs.Metrics.Counter.incr c
    | None -> ());
    (match expand frontier.(!i) with
    | Children succs -> List.iter keep succs
    | Leaf v ->
      incr n_leaves;
      Option.iter (fun v -> found := v :: !found) v
    | Cut v ->
      incr n_leaves;
      incr n_cut;
      Option.iter (fun v -> found := v :: !found) v);
    i := !i + stride
  done;
  if Elin_obs.Metrics.on () then Elin_obs.Metrics.Counter.add m_dedup_hits !hits;
  if Elin_obs.Trace.on () then begin
    let open Elin_obs in
    let pruned_d = Metrics.Counter.shard_value m_pruned - pruned0 in
    if pruned_d > 0 then
      Trace.instant ~tid:offset ~cat:"mc" "mc.por_pruned"
        ~args:[ ("count", Jsonl.Int pruned_d) ];
    if !hits > 0 then
      Trace.instant ~tid:offset ~cat:"mc" "mc.dedup_dropped"
        ~args:[ ("count", Jsonl.Int !hits) ];
    Trace.complete ~tid:offset ~cat:"mc" ~ts:span_ts "mc.expand"
      ~args:
        [
          ("worker", Jsonl.Int offset);
          ("states", Jsonl.Int !n_states);
          ("dedup_hits", Jsonl.Int !hits);
          ("leaves", Jsonl.Int !n_leaves);
        ]
  end;
  {
    next = List.rev !next;
    found = !found;
    hits = !hits;
    n_states = !n_states;
    n_leaves = !n_leaves;
    n_cut = !n_cut;
  }

(* ------------------------------------------------------------------ *)
(* External-memory spill and crash-safe checkpoints                    *)
(* ------------------------------------------------------------------ *)

type 's spill = {
  sp_dir : string;
  sp_hot : int;
  sp_every : int;
  sp_identity : string;
  sp_payload : 's -> int64;
  sp_save_aux : unit -> int;
  sp_restore_aux : int -> unit;
  sp_on_checkpoint : int -> unit;
  mutable sp_store : Elin_store.Tiered_set.stats option;
  mutable sp_resumed : int option;
}

let spill ?(hot = 1 lsl 20) ?(every = 0) ?(identity = "")
    ?(payload = fun _ -> 0L) ?(save_aux = fun () -> 0)
    ?(restore_aux = fun _ -> ()) ?(on_checkpoint = fun _ -> ()) dir =
  if hot < 1 then invalid_arg "Search.spill: hot capacity must be >= 1";
  if every < 0 then invalid_arg "Search.spill: checkpoint cadence must be >= 0";
  {
    sp_dir = dir;
    sp_hot = hot;
    sp_every = every;
    sp_identity = identity;
    sp_payload = payload;
    sp_save_aux = save_aux;
    sp_restore_aux = restore_aux;
    sp_on_checkpoint = on_checkpoint;
    sp_store = None;
    sp_resumed = None;
  }

let corrupt fmt =
  Printf.ksprintf (fun s -> raise (Elin_store.Segment.Corrupt s)) fmt

(* Resume refuses anything but an exact match: the frontier blobs are
   marshalled with closures (same-binary only), and every search
   parameter that shapes the state space or the partition is pinned by
   the manifest.  A mismatch is a usage error surfaced loudly — never
   a silent from-scratch recheck. *)
let load_manifest_for_resume sp ~engine_name ~dedup ~writers ~shards =
  let open Elin_store.Checkpoint in
  match load_latest ~dir:sp.sp_dir with
  | None -> corrupt "%s: no committed checkpoint manifest to resume" sp.sp_dir
  | Some m ->
    if m.exe_digest <> exe_digest () then
      corrupt "resume: checkpoint was written by a different binary";
    if m.identity <> sp.sp_identity then
      corrupt
        "resume: workload mismatch — checkpoint is for %s, this run is %s"
        m.identity sp.sp_identity;
    if m.engine <> engine_name then
      corrupt "resume: checkpoint engine is %s, this run uses %s" m.engine
        engine_name;
    if m.dedup <> dedup then corrupt "resume: dedup setting mismatch";
    if m.shards <> shards || m.writers <> writers then
      corrupt "resume: checkpoint used %d domains, this run uses %d" m.shards
        shards;
    if Array.length m.per_writer <> writers then
      corrupt "resume: manifest writer slots do not match";
    if Array.length m.per_domain <> shards then
      corrupt "resume: manifest per-domain slots do not match";
    m

(* One writer's frontier slice: a marshalled state array (the blob)
   plus, under dedup, a sealed (fingerprint, payload) segment that the
   resume path cross-checks record-by-record against the re-hydrated
   states — a torn or stale blob cannot smuggle a wrong frontier past
   the checksums.  Without dedup a level may repeat fingerprints, so
   only the (still CRC-framed) blob is written. *)
let write_frontier_slice sp ~dedup ~seq ~writer ~fingerprint states =
  let open Elin_store in
  Checkpoint.write_blob ~dir:sp.sp_dir
    ~name:(Checkpoint.frontier_blob ~seq ~writer)
    (Marshal.to_string states [ Marshal.Closures ]);
  if dedup then begin
    let records =
      Array.map (fun s -> (fingerprint s, sp.sp_payload s)) states
    in
    Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) records;
    Segment.write ~dir:sp.sp_dir
      ~name:(Checkpoint.frontier_seg ~seq ~writer)
      records
  end

let read_frontier_slice (type s) (sp : s spill) ~dedup ~seq ~writer
    ~fingerprint : s array =
  let open Elin_store in
  let name = Checkpoint.frontier_blob ~seq ~writer in
  let blob = Checkpoint.read_blob ~dir:sp.sp_dir ~name in
  let states : s array =
    try Marshal.from_string blob 0
    with Failure _ -> corrupt "%s: undecodable frontier blob" name
  in
  if dedup then begin
    let r =
      Segment.open_reader ~dir:sp.sp_dir
        ~name:(Checkpoint.frontier_seg ~seq ~writer)
    in
    let expect = Segment.to_array r in
    Segment.close r;
    let got = Array.map (fun s -> (fingerprint s, sp.sp_payload s)) states in
    Array.sort (fun (a, _) (b, _) -> Int64.unsigned_compare a b) got;
    if got <> expect then
      corrupt "%s: frontier cross-check failed — states do not re-fingerprint \
               to the sealed slice" name
  end;
  states

let write_verdicts sp ~seq ~writer verdicts =
  Elin_store.Checkpoint.write_blob ~dir:sp.sp_dir
    ~name:(Elin_store.Checkpoint.verdicts_blob ~seq ~writer)
    (Marshal.to_string verdicts [ Marshal.Closures ])

let read_verdicts (type v) sp ~seq ~writer : v list =
  let name = Elin_store.Checkpoint.verdicts_blob ~seq ~writer in
  let blob = Elin_store.Checkpoint.read_blob ~dir:sp.sp_dir ~name in
  try Marshal.from_string blob 0
  with Failure _ -> corrupt "%s: undecodable verdicts blob" name

(** [bfs ?domains ?dedup ?stripes ?stop_early ?merge ~fingerprint
    ~expand ~compare root] — explore the space rooted at [root].
    Returns the verdicts (sorted and deduplicated under [compare]: the
    head is the minimal one) and the exploration stats.  With
    [stop_early] (the default) the search stops at the end of the
    first level that produced a verdict; otherwise it exhausts the
    bounded space and returns every verdict.

    [?merge] (meaningful only with [dedup]) switches duplicate
    resolution to the level barrier: all generated successors are
    tagged, grouped by fingerprint on the spawning domain, and the
    first-generated copy survives carrying [merge] of all copies.
    Requires a {e level-stratified} space — equal states occur only
    within one BFS level (true whenever the fingerprint covers a step
    counter) — and a commutative, associative [merge]. *)
let bfs_barrier ?domains ?(dedup = true) ?(stripes = 64) ?(stop_early = true)
    ?merge ?spill:sp_opt ?(resume = false) ~fingerprint ~expand ~compare root
    =
  let n_domains =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Search.bfs: domains must be >= 1";
      n
    | None -> Domain.recommended_domain_count ()
  in
  if resume && sp_opt = None then
    invalid_arg "Search.bfs: resume requires spill";
  let t0 = Elin_obs.Clock.now_s () in
  let manifest =
    match sp_opt with
    | Some sp when resume ->
      Some
        (load_manifest_for_resume sp ~engine_name:"barrier" ~dedup ~writers:1
           ~shards:n_domains)
    | _ -> None
  in
  (* The visited set: tiered (RAM hot tier + sealed disk segments)
     under spill, striped RAM table otherwise.  Shard count follows
     the domain count so manifests are engine-portable in shape (the
     engine string still pins which engine wrote them). *)
  let tiered =
    match sp_opt with
    | Some sp when dedup -> (
      match manifest with
      | Some m ->
        Some
          (Elin_store.Tiered_set.open_existing ~dir:sp.sp_dir
             ~shards:n_domains ~hot_capacity:sp.sp_hot
             ~segments:m.visited_segments ())
      | None ->
        Some
          (Elin_store.Tiered_set.create ~dir:sp.sp_dir ~shards:n_domains
             ~hot_capacity:sp.sp_hot ()))
    | _ -> None
  in
  let visited =
    if not dedup then None
    else
      match tiered with
      | Some tv ->
        Some
          {
            vadd = (fun fp -> Elin_store.Tiered_set.add tv fp);
            vmem = (fun fp -> Elin_store.Tiered_set.mem tv fp);
          }
      | None ->
        let v = Elin_kernel.Striped_set.create ~stripes () in
        Some
          {
            vadd = (fun fp -> Elin_kernel.Striped_set.add v fp);
            vmem = (fun fp -> Elin_kernel.Striped_set.mem v fp);
          }
  in
  let mode =
    match visited, merge with
    | None, _ -> Plain
    | Some v, None -> Immediate v
    | Some v, Some _ -> Tag v
  in
  let states = ref 0 and hits = ref 0 and kept = ref 0 and peak = ref 0 in
  let leaves = ref 0 and cut = ref 0 and levels = ref 0 in
  let per_domain = Array.make n_domains 0 in
  let verdicts = ref [] in
  let frontier = ref [| root |] in
  (match manifest, sp_opt with
  | Some m, Some sp ->
    (* Re-enter the search exactly at the stabilization cut: counters,
       POR-pruned aux, accumulated verdicts, and the cut's frontier.
       The root is NOT re-inserted — it is already in the visited
       segments. *)
    states := m.totals.t_states;
    hits := m.totals.t_hits;
    kept := m.totals.t_kept;
    peak := m.totals.t_peak;
    leaves := m.totals.t_leaves;
    cut := m.totals.t_cut;
    levels := m.level;
    Array.blit m.per_domain 0 per_domain 0 n_domains;
    sp.sp_restore_aux m.totals.t_aux;
    verdicts := read_verdicts sp ~seq:m.seq ~writer:0;
    frontier := read_frontier_slice sp ~dedup ~seq:m.seq ~writer:0 ~fingerprint;
    sp.sp_resumed <- Some m.seq
  | _ -> Option.iter (fun v -> ignore (v.vadd (fingerprint root))) visited);
  let stop = ref false in
  while (not !stop) && Array.length !frontier > 0 do
    let fr = !frontier in
    let n = Array.length fr in
    if n > !peak then peak := n;
    let level_ts = Elin_obs.Trace.begin_ns () in
    if Elin_obs.Metrics.on () then begin
      Elin_obs.Metrics.Gauge.set g_frontier n;
      Elin_obs.Metrics.Gauge.set g_level !levels
    end;
    let shares =
      if n_domains = 1 || n < 2 * n_domains then
        [| expand_share ~expand ~fingerprint ~mode fr ~stride:1 ~offset:0 |]
      else begin
        (* Shares run under [Fun.protect]-style discipline: capture any
           exception (e.g. a budget-bounded [expand] raising
           [Budget.Exceeded]), join EVERY domain, then re-raise — a
           raise must never leak unjoined domains. *)
        let guarded f = try Ok (f ()) with e -> Error e in
        let workers =
          Array.init (n_domains - 1) (fun d ->
              Domain.spawn (fun () ->
                  guarded (fun () ->
                      expand_share ~expand ~fingerprint ~mode fr
                        ~stride:n_domains ~offset:(d + 1))))
        in
        let mine =
          guarded (fun () ->
              expand_share ~expand ~fingerprint ~mode fr ~stride:n_domains
                ~offset:0)
        in
        let all = Array.append [| mine |] (Array.map Domain.join workers) in
        Array.map (function Ok s -> s | Error e -> raise e) all
      end
    in
    let level_found = ref [] in
    Array.iteri
      (fun d share ->
        per_domain.(d) <- per_domain.(d) + share.n_states;
        states := !states + share.n_states;
        hits := !hits + share.hits;
        leaves := !leaves + share.n_leaves;
        cut := !cut + share.n_cut;
        level_found := List.rev_append share.found !level_found)
      shares;
    let next =
      match mode, merge, visited with
      | Tag _, Some merge_fn, Some visited ->
        (* Barrier-time duplicate resolution, on the spawning domain:
           deterministic whatever the partition was, because [merge]
           is commutative/associative and equal fingerprints mean
           equal states (modulo collision). *)
        let tbl = Hashtbl.create 257 in
        let order = ref [] in
        Array.iter
          (fun share ->
            List.iter
              (fun (fp, s) ->
                if visited.vmem fp then incr hits
                else
                  match Hashtbl.find_opt tbl fp with
                  | None ->
                    Hashtbl.add tbl fp s;
                    order := fp :: !order
                  | Some s0 ->
                    incr hits;
                    Hashtbl.replace tbl fp (merge_fn s0 s))
              share.next)
          shares;
        let survivors =
          List.rev_map
            (fun fp ->
              ignore (visited.vadd fp);
              Hashtbl.find tbl fp)
            !order
        in
        kept := !kept + List.length survivors;
        Array.of_list survivors
      | _ ->
        let arr =
          Array.concat
            (List.map (fun s -> Array.of_list (List.map snd s.next))
               (Array.to_list shares))
        in
        kept := !kept + Array.length arr;
        arr
    in
    if Elin_obs.Metrics.on () then
      Elin_obs.Metrics.Counter.add m_kept (Array.length next);
    if Elin_obs.Trace.on () then
      Elin_obs.Trace.complete ~cat:"mc" ~ts:level_ts "mc.level"
        ~args:
          [
            ("level", Elin_obs.Jsonl.Int !levels);
            ("frontier", Elin_obs.Jsonl.Int n);
            ("kept", Elin_obs.Jsonl.Int (Array.length next));
            ("found", Elin_obs.Jsonl.Int (List.length !level_found));
          ];
    verdicts := List.rev_append !level_found !verdicts;
    incr levels;
    if stop_early && !level_found <> [] then stop := true
    else begin
      frontier := next;
      match sp_opt with
      | Some sp
        when sp.sp_every > 0
             && !levels mod sp.sp_every = 0
             && Array.length next > 0 ->
        (* The level barrier is a stabilization cut: nothing is
           in-flight, so sealing (visited, frontier, counters,
           verdicts) here is a complete, resumable snapshot.  The
           sequence number is the absolute level over the cadence, so
           a resumed run checkpoints on the identical schedule. *)
        let seq = !levels / sp.sp_every in
        Option.iter Elin_store.Tiered_set.flush tiered;
        write_frontier_slice sp ~dedup ~seq ~writer:0 ~fingerprint next;
        write_verdicts sp ~seq ~writer:0 !verdicts;
        let visited_segments =
          match tiered with
          | Some tv -> Elin_store.Tiered_set.segment_names tv
          | None -> []
        in
        Elin_store.Checkpoint.commit ~dir:sp.sp_dir
          {
            seq;
            identity = sp.sp_identity;
            engine = "barrier";
            dedup;
            shards = n_domains;
            writers = 1;
            level = !levels;
            totals =
              {
                t_states = !states;
                t_hits = !hits;
                t_kept = !kept;
                t_aux = sp.sp_save_aux ();
                t_peak = !peak;
                t_leaves = !leaves;
                t_cut = !cut;
              };
            per_writer =
              [|
                {
                  w_states = !states;
                  w_hits = !hits;
                  w_kept = !kept;
                  w_leaves = !leaves;
                  w_cut = !cut;
                };
              |];
            per_domain = Array.copy per_domain;
            visited_segments;
            exe_digest = Elin_store.Checkpoint.exe_digest ();
          };
        sp.sp_on_checkpoint seq
      | _ -> ()
    end
  done;
  (match sp_opt, tiered with
  | Some sp, Some tv ->
    sp.sp_store <- Some (Elin_store.Tiered_set.stats tv);
    Elin_store.Tiered_set.close tv
  | _ -> ());
  let stats =
    {
      states = !states;
      dedup_hits = !hits;
      kept = !kept;
      pruned = 0;
      frontier_peak = !peak;
      leaves = !leaves;
      cut = !cut;
      levels = !levels;
      per_domain;
      domains = n_domains;
      wall = Elin_obs.Clock.now_s () -. t0;
    }
  in
  (List.sort_uniq compare !verdicts, stats)

(* ------------------------------------------------------------------ *)
(* The sharded (shared-nothing) engine                                 *)
(* ------------------------------------------------------------------ *)

(* Same semantics, opposite ownership story.  The barrier engine above
   partitions each level round-robin and funnels every domain through
   one striped, mutex-guarded visited set, re-spawning domains at
   every level.  Here each domain {e owns} a fixed shard of the
   fingerprint space outright ({!Elin_kernel.Shard_set.owner}): it
   holds that shard's slice of the visited set in a plain [Hashtbl]
   (no lock ever touches the hot path), expands exactly the frontier
   states it owns, and routes generated successors to their owner's
   inbox in fixed-size batches over per-(src,dst) SPSC queues.
   Domains are spawned once for the whole search; levels synchronize
   at a cheap two-phase epoch (blocking {!Elin_kernel.Barrier}), which
   is all that level-stratified dedup — and dedup-under-POR's [merge]
   — need to stay exact.

   {2 Why determinism survives without the hard barrier}

   Every observable of {!bfs_barrier} is reproduced bit-identically:

   - {e which} states exist at each level is a pure function of the
     state space (dedup is by fingerprint; equal fingerprints mean
     equal states), and every copy of a fingerprint routes to the one
     owner, where dedup/merge runs single-threaded — there is not even
     a racing insert left to reason about;
   - [merge] metadata: all copies of a level-[d+1] state are pushed
     before the epoch's first phase and drained before its second, so
     the owner merges exactly the copies the barrier engine would, and
     commutativity/associativity makes the arrival order unobservable;
   - verdicts are still acted on only at level boundaries: the stop
     decision is computed by every domain from the same per-domain
     slot arrays after the second phase, and the final verdict list is
     sorted under [compare] — the lex-min counterexample cannot depend
     on the partition;
   - the counts ([states]/[kept]/[dedup_hits]/[leaves]/[cut]/[levels]/
     [frontier_peak]) are sums or maxima of the same per-level
     quantities.

   Only [per_domain] shifts meaning: it now reports the ownership
   partition (a function of the fingerprints, so — unlike the barrier
   engine's round-robin split — it is itself deterministic). *)

(* Cross-domain handoff batch: up to [handoff_batch] kept successors,
   accumulated in reverse.  64 amortizes the queue-node allocation and
   the release/acquire publication without letting a straggler hold
   back more than a sliver of the level. *)
let handoff_batch = 64

let m_handoff_batches = Elin_obs.Metrics.counter "mc.handoff_batches"
let m_handoff_states = Elin_obs.Metrics.counter "mc.handoff_states"

(* Per-worker aggregate, collected at join time. *)
type 'v worker_out = {
  w_states : int;
  w_hits : int;
  w_kept : int;
  w_leaves : int;
  w_cut : int;
  w_found : 'v list;
  w_levels : int;        (* identical across workers *)
  w_peak : int;          (* identical across workers *)
}

let bfs_sharded ?domains ?(dedup = true) ?(stop_early = true) ?merge
    ?spill:sp_opt ?(resume = false) ~fingerprint ~expand ~compare root =
  let open Elin_kernel in
  let n_domains =
    match domains with
    | Some n ->
      if n < 1 then invalid_arg "Search.bfs: domains must be >= 1";
      n
    | None -> Domain.recommended_domain_count ()
  in
  if resume && sp_opt = None then
    invalid_arg "Search.bfs: resume requires spill";
  let t0 = Elin_obs.Clock.now_s () in
  let manifest =
    match sp_opt with
    | Some sp when resume ->
      Some
        (load_manifest_for_resume sp ~engine_name:"sharded" ~dedup
           ~writers:n_domains ~shards:n_domains)
    | _ -> None
  in
  (* Under spill the tiered set's shards coincide with the ownership
     partition, so each domain drives its own shard through the
     lock-free [_owned] entry points — the shared-nothing story is
     unchanged, the shard just gained a disk tier. *)
  let tiered =
    match sp_opt with
    | Some sp when dedup -> (
      match manifest with
      | Some m ->
        Some
          (Elin_store.Tiered_set.open_existing ~dir:sp.sp_dir
             ~shards:n_domains ~hot_capacity:sp.sp_hot
             ~segments:m.visited_segments ())
      | None ->
        Some
          (Elin_store.Tiered_set.create ~dir:sp.sp_dir ~shards:n_domains
             ~hot_capacity:sp.sp_hot ()))
    | _ -> None
  in
  let visited =
    match tiered with
    | Some _ -> None
    | None -> if dedup then Some (Shard_set.create ~shards:n_domains ()) else None
  in
  (* Ownership is a pure function of the fingerprint even with dedup
     off: Plain mode still routes, it just never drops. *)
  let router = Shard_set.create ~shards:n_domains () in
  let shard_of fp = Shard_set.owner router fp in
  let queues =
    Array.init n_domains (fun _ -> Array.init n_domains (fun _ -> Spsc.create ()))
  in
  let barrier = Barrier.create n_domains in
  (* Per-level slots: written by owner [d] between the two phases,
     read by everyone after the second (the barrier's mutex provides
     the happens-before edge). *)
  let next_sizes = Array.make n_domains 0 in
  let found_counts = Array.make n_domains 0 in
  (* Checkpoint slots: each writer publishes its private counters
     between the checkpoint's two barrier phases; domain 0 sums them
     into the manifest.  Same phase-separated slot discipline as
     [next_sizes]. *)
  let ck_states = Array.make n_domains 0 in
  let ck_hits = Array.make n_domains 0 in
  let ck_kept = Array.make n_domains 0 in
  let ck_leaves = Array.make n_domains 0 in
  let ck_cut = Array.make n_domains 0 in
  let err : exn option Atomic.t = Atomic.make None in
  let root_fp = fingerprint root in
  let root_owner = shard_of root_fp in
  let worker d () =
    (* Everything below is owned by domain [d] alone; the shared
       surfaces are the queues (SPSC discipline), the slot arrays
       (slot [d] only, phase-separated), and [d]'s visited shard. *)
    let states = ref 0 and hits = ref 0 and kept = ref 0 in
    let leaves = ref 0 and cut = ref 0 in
    let all_found = ref [] and level_found = ref [] in
    let levels = ref 0 and peak = ref 0 in
    let next_acc = ref [] in
    (* merge-mode level table: fp -> first copy carrying the merge *)
    let pending = Hashtbl.create 257 in
    let pending_order = ref [] in
    let bufs = Array.make n_domains [] in
    let buf_counts = Array.make n_domains 0 in
    let m_worker =
      if Elin_obs.Metrics.on () then Some (worker_counter d) else None
    in
    (* This domain's view of its own visited shard. *)
    let vops =
      match tiered, visited with
      | Some tv, _ ->
        Some
          {
            vadd = (fun fp -> Elin_store.Tiered_set.add_owned tv ~shard:d fp);
            vmem = (fun fp -> Elin_store.Tiered_set.mem_owned tv ~shard:d fp);
          }
      | None, Some v ->
        Some
          {
            vadd = (fun fp -> Shard_set.add v ~shard:d fp);
            vmem = (fun fp -> Shard_set.mem v ~shard:d fp);
          }
      | None, None -> None
    in
    let g_shard =
      match visited with
      | Some _ when Elin_obs.Metrics.on () ->
        Some (Elin_obs.Metrics.gauge (Printf.sprintf "mc.shard%d.occupancy" d))
      | _ -> None
    in
    let flush o =
      match bufs.(o) with
      | [] -> ()
      | items ->
        Spsc.push queues.(d).(o) items;
        if Elin_obs.Metrics.on () then begin
          Elin_obs.Metrics.Counter.incr m_handoff_batches;
          Elin_obs.Metrics.Counter.add m_handoff_states buf_counts.(o)
        end;
        bufs.(o) <- [];
        buf_counts.(o) <- 0
    in
    (* One kept successor arriving at its owner (locally generated or
       drained from a peer's batch): the single point where dedup and
       merge decisions are made — single-threaded per fingerprint. *)
    let process_kept fp s =
      match vops, merge with
      | None, _ -> next_acc := s :: !next_acc
      | Some v, None ->
        if v.vadd fp then next_acc := s :: !next_acc else incr hits
      | Some v, Some merge_fn -> (
        if v.vmem fp then incr hits
        else
          match Hashtbl.find_opt pending fp with
          | None ->
            Hashtbl.add pending fp s;
            pending_order := fp :: !pending_order
          | Some s0 ->
            incr hits;
            Hashtbl.replace pending fp (merge_fn s0 s))
    in
    let route s' =
      let fp = fingerprint s' in
      let o = shard_of fp in
      if o = d then process_kept fp s'
      else begin
        bufs.(o) <- (fp, s') :: bufs.(o);
        buf_counts.(o) <- buf_counts.(o) + 1;
        if buf_counts.(o) >= handoff_batch then flush o
      end
    in
    let expand_state s =
      incr states;
      (match m_worker with
      | Some c ->
        Elin_obs.Metrics.Counter.incr m_states;
        Elin_obs.Metrics.Counter.incr c
      | None -> ());
      match expand s with
      | Children succs -> List.iter route succs
      | Leaf v ->
        incr leaves;
        Option.iter (fun v -> level_found := v :: !level_found) v
      | Cut v ->
        incr leaves;
        incr cut;
        Option.iter (fun v -> level_found := v :: !level_found) v
    in
    let frontier = ref (if root_owner = d then [| root |] else [||]) in
    let global_size = ref 1 in
    (match manifest, sp_opt with
    | Some m, Some sp ->
      (* Re-enter at the cut: this writer's private counters, its
         verdicts, and its slice of the frontier.  The root is NOT
         re-inserted — it lives in the visited segments.  One extra
         two-phase epoch publishes the slice sizes so every domain
         sees the same global frontier size. *)
      let w = m.per_writer.(d) in
      states := w.w_states;
      hits := w.w_hits;
      kept := w.w_kept;
      leaves := w.w_leaves;
      cut := w.w_cut;
      levels := m.level;
      peak := m.totals.t_peak;
      if d = 0 then sp.sp_restore_aux m.totals.t_aux;
      all_found := read_verdicts sp ~seq:m.seq ~writer:d;
      frontier := read_frontier_slice sp ~dedup ~seq:m.seq ~writer:d ~fingerprint;
      next_sizes.(d) <- Array.length !frontier;
      Barrier.await barrier;
      let total = ref 0 in
      for o = 0 to n_domains - 1 do
        total := !total + next_sizes.(o)
      done;
      global_size := !total;
      Barrier.await barrier
    | _ -> (
      match vops with
      | Some v when root_owner = d -> ignore (v.vadd root_fp)
      | _ -> ()));
    let stop = ref false in
    while not !stop do
      if !global_size > !peak then peak := !global_size;
      let span_ts = Elin_obs.Trace.begin_ns () in
      let pruned0 =
        if span_ts <> 0L then Elin_obs.Metrics.Counter.shard_value m_pruned
        else 0
      in
      if d = 0 && Elin_obs.Metrics.on () then begin
        Elin_obs.Metrics.Gauge.set g_frontier !global_size;
        Elin_obs.Metrics.Gauge.set g_level !levels
      end;
      let hits0 = !hits and states0 = !states and leaves0 = !leaves in
      Array.iter expand_state !frontier;
      for o = 0 to n_domains - 1 do
        flush o
      done;
      (* Phase 1: every successor of this level is pushed; queue
         contents are frozen. *)
      Barrier.await barrier;
      for src = 0 to n_domains - 1 do
        let q = queues.(src).(d) in
        let rec drain () =
          match Spsc.pop q with
          | Some batch ->
            List.iter (fun (fp, s) -> process_kept fp s) (List.rev batch);
            drain ()
          | None -> ()
        in
        drain ()
      done;
      let next =
        match vops, merge with
        | Some v, Some _ ->
          let survivors =
            List.rev_map
              (fun fp ->
                ignore (v.vadd fp);
                Hashtbl.find pending fp)
              !pending_order
          in
          Hashtbl.reset pending;
          pending_order := [];
          Array.of_list survivors
        | _ ->
          let arr = Array.of_list (List.rev !next_acc) in
          next_acc := [];
          arr
      in
      kept := !kept + Array.length next;
      next_sizes.(d) <- Array.length next;
      found_counts.(d) <- List.length !level_found;
      (match g_shard, visited with
      | Some g, Some visited ->
        Elin_obs.Metrics.Gauge.set g (Shard_set.shard_cardinal visited d)
      | _ -> ());
      if Elin_obs.Trace.on () then begin
        let open Elin_obs in
        let pruned_d = Metrics.Counter.shard_value m_pruned - pruned0 in
        if pruned_d > 0 then
          Trace.instant ~tid:d ~cat:"mc" "mc.por_pruned"
            ~args:[ ("count", Jsonl.Int pruned_d) ];
        if !hits - hits0 > 0 then
          Trace.instant ~tid:d ~cat:"mc" "mc.dedup_dropped"
            ~args:[ ("count", Jsonl.Int (!hits - hits0)) ];
        Trace.complete ~tid:d ~cat:"mc" ~ts:span_ts "mc.expand"
          ~args:
            [
              ("worker", Jsonl.Int d);
              ("states", Jsonl.Int (!states - states0));
              ("dedup_hits", Jsonl.Int (!hits - hits0));
              ("leaves", Jsonl.Int (!leaves - leaves0));
            ]
      end;
      (* Phase 2: sizes and found-counts of every domain are
         published; all domains now compute the same stop decision
         from the same data. *)
      Barrier.await barrier;
      let total_next = ref 0 and any_found = ref false in
      for o = 0 to n_domains - 1 do
        total_next := !total_next + next_sizes.(o);
        if found_counts.(o) > 0 then any_found := true
      done;
      if d = 0 && Elin_obs.Metrics.on () then
        Elin_obs.Metrics.Counter.add m_kept !total_next;
      all_found := List.rev_append !level_found !all_found;
      level_found := [];
      incr levels;
      if (stop_early && !any_found) || !total_next = 0 then stop := true
      else begin
        frontier := next;
        global_size := !total_next;
        match sp_opt with
        | Some sp when sp.sp_every > 0 && !levels mod sp.sp_every = 0 ->
          (* Checkpoint epoch, two more phases.  Phase A: every domain
             seals its own shard (flush + frontier slice + verdicts)
             and publishes its counters.  Phase B: domain 0 — with
             every artefact durably sealed — snapshots the segment
             inventory and commits the manifest; nobody expands the
             next level until the commit is visible, or a post-cut
             flush could leak into the manifest. *)
          let seq = !levels / sp.sp_every in
          (match tiered with
          | Some tv -> Elin_store.Tiered_set.flush_shard tv d
          | None -> ());
          write_frontier_slice sp ~dedup ~seq ~writer:d ~fingerprint next;
          write_verdicts sp ~seq ~writer:d !all_found;
          ck_states.(d) <- !states;
          ck_hits.(d) <- !hits;
          ck_kept.(d) <- !kept;
          ck_leaves.(d) <- !leaves;
          ck_cut.(d) <- !cut;
          Barrier.await barrier;
          if d = 0 then begin
            let sum a = Array.fold_left ( + ) 0 a in
            let visited_segments =
              match tiered with
              | Some tv -> Elin_store.Tiered_set.segment_names tv
              | None -> []
            in
            Elin_store.Checkpoint.commit ~dir:sp.sp_dir
              {
                seq;
                identity = sp.sp_identity;
                engine = "sharded";
                dedup;
                shards = n_domains;
                writers = n_domains;
                level = !levels;
                totals =
                  {
                    t_states = sum ck_states;
                    t_hits = sum ck_hits;
                    t_kept = sum ck_kept;
                    t_aux = sp.sp_save_aux ();
                    t_peak = !peak;
                    t_leaves = sum ck_leaves;
                    t_cut = sum ck_cut;
                  };
                per_writer =
                  Array.init n_domains (fun i ->
                      {
                        Elin_store.Checkpoint.w_states = ck_states.(i);
                        w_hits = ck_hits.(i);
                        w_kept = ck_kept.(i);
                        w_leaves = ck_leaves.(i);
                        w_cut = ck_cut.(i);
                      });
                per_domain = Array.copy ck_states;
                visited_segments;
                exe_digest = Elin_store.Checkpoint.exe_digest ();
              };
            sp.sp_on_checkpoint seq
          end;
          Barrier.await barrier
        | _ -> ()
      end
    done;
    if Elin_obs.Metrics.on () then Elin_obs.Metrics.Counter.add m_dedup_hits !hits;
    {
      w_states = !states;
      w_hits = !hits;
      w_kept = !kept;
      w_leaves = !leaves;
      w_cut = !cut;
      w_found = !all_found;
      w_levels = !levels;
      w_peak = !peak;
    }
  in
  (* A worker that dies must poison the barrier so its peers unwind
     instead of waiting forever; the first recorded exception is
     re-raised after EVERY domain is joined. *)
  let guarded d () =
    try Ok (worker d ()) with
    | Barrier.Poisoned -> Error ()
    | e ->
      ignore (Atomic.compare_and_set err None (Some e));
      Barrier.poison barrier;
      Error ()
  in
  let spawned =
    Array.init (n_domains - 1) (fun i -> Domain.spawn (guarded (i + 1)))
  in
  let mine = guarded 0 () in
  let outs = Array.append [| mine |] (Array.map Domain.join spawned) in
  (match Atomic.get err with Some e -> raise e | None -> ());
  (match sp_opt, tiered with
  | Some sp, Some tv ->
    sp.sp_store <- Some (Elin_store.Tiered_set.stats tv);
    Elin_store.Tiered_set.close tv
  | _ -> ());
  (match manifest, sp_opt with
  | Some m, Some sp -> sp.sp_resumed <- Some m.seq
  | _ -> ());
  let outs =
    Array.map (function Ok o -> o | Error () -> assert false) outs
  in
  let verdicts =
    List.sort_uniq compare
      (Array.fold_left (fun acc o -> List.rev_append o.w_found acc) [] outs)
  in
  let sum f = Array.fold_left (fun n o -> n + f o) 0 outs in
  let stats =
    {
      states = sum (fun o -> o.w_states);
      dedup_hits = sum (fun o -> o.w_hits);
      kept = sum (fun o -> o.w_kept);
      pruned = 0;
      frontier_peak = outs.(0).w_peak;
      leaves = sum (fun o -> o.w_leaves);
      cut = sum (fun o -> o.w_cut);
      levels = outs.(0).w_levels;
      per_domain = Array.map (fun o -> o.w_states) outs;
      domains = n_domains;
      wall = Elin_obs.Clock.now_s () -. t0;
    }
  in
  (verdicts, stats)

(* ------------------------------------------------------------------ *)
(* Engine dispatch                                                     *)
(* ------------------------------------------------------------------ *)

type engine = Barrier | Sharded

let engine_of_string = function
  | "barrier" -> Some Barrier
  | "sharded" -> Some Sharded
  | _ -> None

let engine_to_string = function Barrier -> "barrier" | Sharded -> "sharded"

let bfs ?(engine = Barrier) ?domains ?dedup ?stripes ?stop_early ?merge ?spill
    ?resume ~fingerprint ~expand ~compare root =
  match engine with
  | Barrier ->
    bfs_barrier ?domains ?dedup ?stripes ?stop_early ?merge ?spill ?resume
      ~fingerprint ~expand ~compare root
  | Sharded ->
    (* [stripes] shapes the barrier engine's striped set only; the
       sharded visited set is partitioned by owner, not by stripe. *)
    bfs_sharded ?domains ?dedup ?stop_early ?merge ?spill ?resume
      ~fingerprint ~expand ~compare root

let pp_stats ppf s =
  Format.fprintf ppf
    "states %d  dedup-hits %d (rate %.1f%%)  pruned %d  frontier-peak %d  \
     leaves %d  cut %d  levels %d  domains %d  per-domain [%s]  wall %.3fs"
    s.states s.dedup_hits (100. *. dedup_rate s) s.pruned s.frontier_peak
    s.leaves s.cut s.levels s.domains
    (String.concat "; " (List.map string_of_int (Array.to_list s.per_domain)))
    s.wall

(** The generic parallel model-checking engine: level-synchronous BFS
    with fingerprint dedup over an abstract state space, partitioned
    across OCaml 5 domains.

    {2 Determinism contract}

    The returned verdict list and every stats field except
    [per_domain] and [wall] are functions of the state space and the
    bounds alone, {e independent of the domain count} (modulo 64-bit
    fingerprint collisions): levels are barriers, racing inserts of
    equal fingerprints keep exactly one (identical) state, verdicts
    are only acted on at level boundaries, and the verdicts of the
    stopping level are totally ordered by [compare] — the head of the
    result is the {e minimal} verdict, e.g. the lexicographically
    minimal counterexample trace. *)

type stats = {
  states : int;           (** states expanded (dequeued from the frontier) *)
  dedup_hits : int;       (** successors dropped because already visited *)
  kept : int;             (** successors enqueued (dedup survivors) *)
  pruned : int;           (** expansions skipped by partial-order reduction
                              ([bfs] itself reports 0; {!Mc}/{!Mc_valency}
                              fill it in from their pruning counters) *)
  frontier_peak : int;    (** widest BFS level *)
  leaves : int;           (** terminal states (finished or cut) *)
  cut : int;              (** terminal only because of the bound *)
  levels : int;           (** BFS depth reached *)
  per_domain : int array; (** states expanded by each domain (the only
                              scheduling-dependent field besides [wall]) *)
  domains : int;
  wall : float;           (** seconds *)
}

(** Fraction of generated successors that dedup discarded:
    [dedup_hits / (dedup_hits + kept)]. *)
val dedup_rate : stats -> float

type ('s, 'v) expansion =
  | Children of 's list  (** interior state ([[]] = dead end, not a leaf) *)
  | Leaf of 'v option    (** terminal; [Some v] records a verdict *)
  | Cut of 'v option     (** terminal because of the depth bound *)

(** Which parallel engine runs the BFS.  Both satisfy the determinism
    contract with bit-identical verdicts and counts; they differ in
    ownership story and scaling behaviour.

    - [Barrier] (default, legacy): levels partitioned round-robin,
      domains re-spawned per level, one stripe-locked visited set
      shared by all domains.
    - [Sharded] (shared-nothing): domains spawned once per search,
      visited set partitioned by fingerprint owner into per-domain
      plain hash tables (no locks on the hot path), successors routed
      to their owner in fixed-size batches over SPSC queues, levels
      synchronized by a two-phase epoch barrier.  [per_domain] then
      reports the (deterministic) ownership partition rather than a
      scheduling-dependent split. *)
type engine = Barrier | Sharded

(** ["barrier"] / ["sharded"]; [None] otherwise. *)
val engine_of_string : string -> engine option

val engine_to_string : engine -> string

(** [bfs ?engine ?domains ?dedup ?stripes ?stop_early ~fingerprint
    ~expand ~compare root] — explore the space rooted at [root];
    returns the verdicts (sorted and deduplicated under [compare]) and
    the stats.

    - [engine] (default [Barrier]) selects the parallel engine; the
      result is engine-independent (everything but [per_domain] and
      [wall]).
    - [domains] defaults to [Domain.recommended_domain_count ()]; with
      [1] the engine is a plain sequential BFS (no domain is spawned
      by [Barrier]; [Sharded] runs its single worker on the calling
      domain).
    - [dedup] (default [true]) keys a visited set on [fingerprint]
      (an {!Elin_kernel.Striped_set} under [Barrier], an
      owner-partitioned {!Elin_kernel.Shard_set} under [Sharded]);
      with [false] every generated successor is kept — the BFS then
      expands exactly the nodes a dedup-free tree search would.
    - [stripes] shapes the [Barrier] visited set only.
    - [stop_early] (default [true]) stops at the end of the first
      level that produced a verdict; with [false] the bounded space is
      exhausted and every verdict is returned (used to {e collect},
      e.g. the valency analysis's decision vectors).
    - [merge] (meaningful only with [dedup]) resolves duplicates at
      the level barrier instead of at generation: the first-generated
      copy survives carrying [merge] of all same-fingerprint copies of
      the level — how sleep sets and dedup compose soundly under
      partial-order reduction.  Requires a level-stratified space
      (equal states only within one BFS level; true whenever the
      fingerprint covers a step counter) and a commutative,
      associative [merge]. *)
val bfs :
  ?engine:engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?stripes:int ->
  ?stop_early:bool ->
  ?merge:('s -> 's -> 's) ->
  fingerprint:('s -> int64) ->
  expand:('s -> ('s, 'v) expansion) ->
  compare:('v -> 'v -> int) ->
  's ->
  'v list * stats

val pp_stats : Format.formatter -> stats -> unit

(** The generic parallel model-checking engine: level-synchronous BFS
    with fingerprint dedup over an abstract state space, partitioned
    across OCaml 5 domains.

    {2 Determinism contract}

    The returned verdict list and every stats field except
    [per_domain] and [wall] are functions of the state space and the
    bounds alone, {e independent of the domain count} (modulo 64-bit
    fingerprint collisions): levels are barriers, racing inserts of
    equal fingerprints keep exactly one (identical) state, verdicts
    are only acted on at level boundaries, and the verdicts of the
    stopping level are totally ordered by [compare] — the head of the
    result is the {e minimal} verdict, e.g. the lexicographically
    minimal counterexample trace. *)

type stats = {
  states : int;           (** states expanded (dequeued from the frontier) *)
  dedup_hits : int;       (** successors dropped because already visited *)
  kept : int;             (** successors enqueued (dedup survivors) *)
  pruned : int;           (** expansions skipped by partial-order reduction
                              ([bfs] itself reports 0; {!Mc}/{!Mc_valency}
                              fill it in from their pruning counters) *)
  frontier_peak : int;    (** widest BFS level *)
  leaves : int;           (** terminal states (finished or cut) *)
  cut : int;              (** terminal only because of the bound *)
  levels : int;           (** BFS depth reached *)
  per_domain : int array; (** states expanded by each domain (the only
                              scheduling-dependent field besides [wall]) *)
  domains : int;
  wall : float;           (** seconds *)
}

(** Fraction of generated successors that dedup discarded:
    [dedup_hits / (dedup_hits + kept)]. *)
val dedup_rate : stats -> float

type ('s, 'v) expansion =
  | Children of 's list  (** interior state ([[]] = dead end, not a leaf) *)
  | Leaf of 'v option    (** terminal; [Some v] records a verdict *)
  | Cut of 'v option     (** terminal because of the depth bound *)

(** Which parallel engine runs the BFS.  Both satisfy the determinism
    contract with bit-identical verdicts and counts; they differ in
    ownership story and scaling behaviour.

    - [Barrier] (default, legacy): levels partitioned round-robin,
      domains re-spawned per level, one stripe-locked visited set
      shared by all domains.
    - [Sharded] (shared-nothing): domains spawned once per search,
      visited set partitioned by fingerprint owner into per-domain
      plain hash tables (no locks on the hot path), successors routed
      to their owner in fixed-size batches over SPSC queues, levels
      synchronized by a two-phase epoch barrier.  [per_domain] then
      reports the (deterministic) ownership partition rather than a
      scheduling-dependent split. *)
type engine = Barrier | Sharded

(** ["barrier"] / ["sharded"]; [None] otherwise. *)
val engine_of_string : string -> engine option

val engine_to_string : engine -> string

(** External-memory spill + crash-safe checkpoint configuration.

    With a spill attached, the visited set becomes an
    {!Elin_store.Tiered_set} (RAM hot tier, sealed sorted segments on
    disk) sharded like the sharded engine's ownership partition, and —
    when [sp_every > 0] — the search seals a {!Elin_store.Checkpoint}
    at every [sp_every]-th level barrier.  The level barrier is a
    {e stabilization cut}: no expansion, routing, or merge is
    in-flight, so (visited segments, frontier, counters, verdicts) is
    a complete snapshot and a resumed run replays the identical
    deterministic search.  Dedup semantics are bit-identical to the
    RAM sets — spill changes where fingerprints live, never which
    states survive.

    Checkpoint cadence runs on {e absolute} levels ([level mod
    sp_every]), so a resumed run checkpoints on the same schedule the
    uninterrupted one would.  Frontier states are marshalled with
    closures: resume requires the same binary (enforced via an
    executable digest in the manifest) and the same [sp_identity],
    engine, dedup setting, and domain count (enforced via manifest
    fields; violations raise {!Elin_store.Segment.Corrupt}). *)
type 's spill = {
  sp_dir : string;  (** spill directory (created if missing) *)
  sp_hot : int;  (** hot-tier capacity per shard, in fingerprints *)
  sp_every : int;  (** checkpoint every N levels; 0 = never *)
  sp_identity : string;
      (** opaque canonical workload description; resume refuses a
          mismatch *)
  sp_payload : 's -> int64;
      (** per-state payload sealed into frontier segments (sleep
          masks under POR) and cross-checked on resume *)
  sp_save_aux : unit -> int;
      (** caller counter carried through the manifest (Mc's
          POR-pruned count) *)
  sp_restore_aux : int -> unit;
  sp_on_checkpoint : int -> unit;
      (** called with the sequence number after each commit (crash
          injection, progress) *)
  mutable sp_store : Elin_store.Tiered_set.stats option;
      (** filled by [bfs] on return when dedup spilled *)
  mutable sp_resumed : int option;
      (** manifest sequence resumed from, filled by [bfs] *)
}

(** [spill dir] — a spill configuration with defaults: [hot] 2^20
    fingerprints per shard, [every] 0 (no checkpoints), empty
    identity, zero payload, no-op aux/notify hooks. *)
val spill :
  ?hot:int ->
  ?every:int ->
  ?identity:string ->
  ?payload:('s -> int64) ->
  ?save_aux:(unit -> int) ->
  ?restore_aux:(int -> unit) ->
  ?on_checkpoint:(int -> unit) ->
  string ->
  's spill

(** [bfs ?engine ?domains ?dedup ?stripes ?stop_early ~fingerprint
    ~expand ~compare root] — explore the space rooted at [root];
    returns the verdicts (sorted and deduplicated under [compare]) and
    the stats.

    - [engine] (default [Barrier]) selects the parallel engine; the
      result is engine-independent (everything but [per_domain] and
      [wall]).
    - [domains] defaults to [Domain.recommended_domain_count ()]; with
      [1] the engine is a plain sequential BFS (no domain is spawned
      by [Barrier]; [Sharded] runs its single worker on the calling
      domain).
    - [dedup] (default [true]) keys a visited set on [fingerprint]
      (an {!Elin_kernel.Striped_set} under [Barrier], an
      owner-partitioned {!Elin_kernel.Shard_set} under [Sharded]);
      with [false] every generated successor is kept — the BFS then
      expands exactly the nodes a dedup-free tree search would.
    - [stripes] shapes the [Barrier] visited set only.
    - [stop_early] (default [true]) stops at the end of the first
      level that produced a verdict; with [false] the bounded space is
      exhausted and every verdict is returned (used to {e collect},
      e.g. the valency analysis's decision vectors).
    - [merge] (meaningful only with [dedup]) resolves duplicates at
      the level barrier instead of at generation: the first-generated
      copy survives carrying [merge] of all same-fingerprint copies of
      the level — how sleep sets and dedup compose soundly under
      partial-order reduction.  Requires a level-stratified space
      (equal states only within one BFS level; true whenever the
      fingerprint covers a step counter) and a commutative,
      associative [merge].
    - [spill] attaches the external-memory tier and checkpoint
      schedule (see {!type:spill}); [resume] (default [false],
      requires [spill]) re-enters the search at the newest committed
      checkpoint in [sp_dir] instead of starting from [root] — raising
      {!Elin_store.Segment.Corrupt} if there is none, if any artefact
      fails its checksum, or if the manifest does not match this run's
      binary, identity, engine, dedup, or domain count. *)
val bfs :
  ?engine:engine ->
  ?domains:int ->
  ?dedup:bool ->
  ?stripes:int ->
  ?stop_early:bool ->
  ?merge:('s -> 's -> 's) ->
  ?spill:'s spill ->
  ?resume:bool ->
  fingerprint:('s -> int64) ->
  expand:('s -> ('s, 'v) expansion) ->
  compare:('v -> 'v -> int) ->
  's ->
  'v list * stats

val pp_stats : Format.formatter -> stats -> unit

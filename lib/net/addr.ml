type t = Unix_sock of string | Tcp of string * int

let drop_prefix ~prefix s =
  let n = String.length prefix in
  String.sub s n (String.length s - n)

let is_digits s =
  s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let tcp_of_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected HOST:PORT" s)
  | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      if host = "" then Error (Printf.sprintf "address %S: empty host" s)
      else if not (is_digits port) then
        Error (Printf.sprintf "address %S: bad port %S" s port)
      else
        let p = int_of_string port in
        (* Port 0 is legal: binding it asks the kernel for an
           ephemeral port (read back with Server.port /
           Telemetry.port); connecting to it is refused by connect. *)
        if p > 65535 then
          Error (Printf.sprintf "address %S: port out of range" s)
        else Ok (Tcp (host, p))

let of_string s =
  if s = "" then Error "empty address"
  else if String.starts_with ~prefix:"unix:" s then
    let p = drop_prefix ~prefix:"unix:" s in
    if p = "" then Error "unix: address with empty path" else Ok (Unix_sock p)
  else if String.starts_with ~prefix:"tcp:" s then
    tcp_of_host_port (drop_prefix ~prefix:"tcp:" s)
  else if String.contains s '/' then Ok (Unix_sock s)
  else if is_digits s then Ok (Tcp ("127.0.0.1", int_of_string s))
  else tcp_of_host_port s

let to_string = function
  | Unix_sock p -> "unix:" ^ p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let sockaddr = function
  | Unix_sock p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port))

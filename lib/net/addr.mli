(** Listen/connect addresses for the socket service.

    Textual forms accepted by {!of_string}:
    - ["unix:PATH"] — Unix-domain socket at [PATH];
    - ["tcp:HOST:PORT"] — TCP;
    - a bare string containing ['/'] — shorthand for [unix:];
    - ["HOST:PORT"] — shorthand for [tcp:];
    - a bare port number — TCP on [127.0.0.1]. *)

type t = Unix_sock of string | Tcp of string * int

val of_string : string -> (t, string) result

(** Canonical textual form ([unix:…] / [tcp:…]); round-trips through
    {!of_string}. *)
val to_string : t -> string

(** Socket domain + address for bind/connect.  Resolves TCP host names
    via [gethostbyname].
    @raise Failure if the host does not resolve. *)
val sockaddr : t -> Unix.socket_domain * Unix.sockaddr

module Obs = Elin_obs
open Elin_svc

type t = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  scratch : Bytes.t;
}

(* A server may drop us mid-send (eviction, shutdown); the write must
   surface as EPIPE, not kill the process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let connect ?max_frame addr =
  Lazy.force ignore_sigpipe;
  let domain, sa = Addr.sockaddr addr in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sa
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  (match addr with
  | Addr.Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Addr.Unix_sock _ -> ());
  { fd; dec = Frame.decoder ?max_frame (); scratch = Bytes.create 65536 }

let send t job = Frame.write_frame t.fd (Job.to_line job)
let send_raw t payload = Frame.write_frame t.fd payload

let decode_verdict payload =
  match Obs.Jsonl.of_string payload with
  | exception Obs.Jsonl.Parse_error m -> `Error ("verdict is not JSON: " ^ m)
  | json -> (
      match Verdict.of_json ~seq:0 json with
      | Ok v -> `Verdict v
      | Error e -> `Error ("bad verdict: " ^ e))

let recv t =
  match Frame.read_frame t.fd t.dec t.scratch with
  | `Eof -> `Eof
  | `Error e -> `Error e
  | `Frame payload -> decode_verdict payload

let recv_idle t ~idle_s =
  match Frame.read_frame_idle t.fd t.dec t.scratch ~idle_s with
  | `Eof -> `Eof
  | `Error e -> `Error e
  | `Idle -> `Idle
  | `Frame payload -> decode_verdict payload

(* Half-close without releasing the fd: wakes any thread blocked in a
   send or recv on this connection (EPIPE / EOF) without the fd-reuse
   hazard of a concurrent [close]. *)
let shutdown t =
  try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let close t =
  (try Unix.shutdown t.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Pipelined batch: keep at most [window] jobs outstanding so the
   reply stream bounds our kernel buffers (an unbounded window against
   a saturated server would let replies pile up unread and trip the
   server's slow-consumer eviction). *)
let run_jobs ?(window = 64) ?max_frame addr jobs =
  let t = connect ?max_frame addr in
  Fun.protect ~finally:(fun () -> close t) @@ fun () ->
  let jobs = Array.of_list jobs in
  let total = Array.length jobs in
  (* Verdicts come back in completion order carrying only the id;
     repeated ids are matched FIFO (same ambiguity a caller would
     face). *)
  let seq_of_id : (string, int Queue.t) Hashtbl.t = Hashtbl.create total in
  let push_id id seq =
    let q =
      match Hashtbl.find_opt seq_of_id id with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add seq_of_id id q;
          q
    in
    Queue.push seq q
  in
  let pop_id id =
    match Hashtbl.find_opt seq_of_id id with
    | Some q when not (Queue.is_empty q) -> Some (Queue.pop q)
    | _ -> None
  in
  (* Send timestamps (and trace ids) by seq, for the client-side job
     span (send → verdict, i.e. the full wire round trip as this
     process saw it). *)
  let sent_ts : (int, int64 * string option) Hashtbl.t =
    Hashtbl.create total
  in
  let results = ref [] in
  let sent = ref 0 in
  let received = ref 0 in
  while !received < total do
    while !sent < total && !sent - !received < window do
      let j = jobs.(!sent) in
      push_id j.Job.id j.Job.seq;
      if Obs.Trace.on () then
        Hashtbl.replace sent_ts j.Job.seq (Obs.Clock.now_ns (), j.Job.trace);
      send t j;
      incr sent
    done;
    match recv t with
    | `Verdict v -> (
        match pop_id v.Verdict.job_id with
        | None ->
            failwith
              (Printf.sprintf "verdict for unknown job id %S" v.Verdict.job_id)
        | Some seq ->
            (if Obs.Trace.on () then
               match Hashtbl.find_opt sent_ts seq with
               | Some (ts, trace) ->
                   Hashtbl.remove sent_ts seq;
                   let args =
                     [ ("id", Obs.Jsonl.Str v.Verdict.job_id) ]
                     @
                     match trace with
                     | Some tr -> [ ("trace", Obs.Jsonl.Str tr) ]
                     | None -> []
                   in
                   Obs.Trace.complete ~cat:"client" ~ts "client.job" ~args
               | None -> ());
            results := { v with Verdict.seq } :: !results;
            incr received)
    | `Eof ->
        failwith
          (Printf.sprintf "server closed the connection after %d/%d verdicts"
             !received total)
    | `Error e -> failwith ("protocol error: " ^ e)
  done;
  List.sort (fun a b -> compare a.Verdict.seq b.Verdict.seq) !results

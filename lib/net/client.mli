(** Client side of the socket protocol: a framed connection plus a
    pipelined batch driver that restores {!Elin_svc.Pool.run_batch}'s
    submission-order output. *)

open Elin_svc

type t

(** [connect addr] — open a connection.  Unix errors propagate. *)
val connect : ?max_frame:int -> Addr.t -> t

(** [send t job] — frame and write one job (blocking write). *)
val send : t -> Job.t -> unit

(** [send_raw t payload] — frame and write an arbitrary payload (tests:
    malformed jobs, garbage). *)
val send_raw : t -> string -> unit

(** [recv t] — next verdict, in the server's completion order.  The
    verdict's [seq] is 0 (the wire does not carry it); match by
    [job_id].  [`Error] covers framing and JSON-level violations. *)
val recv : t -> [ `Verdict of Verdict.t | `Eof | `Error of string ]

(** [recv_idle t ~idle_s] — {!recv} with a silence bound: [`Idle] if
    the server sends nothing for [idle_s] seconds (deadline resets per
    received byte).  The connection stays usable after [`Idle]. *)
val recv_idle :
  t -> idle_s:float -> [ `Verdict of Verdict.t | `Eof | `Error of string | `Idle ]

(** [shutdown t] — half-close both directions without releasing the
    fd: any thread blocked sending or receiving on [t] wakes with
    EPIPE / end-of-stream.  Safe before a concurrent {!close}. *)
val shutdown : t -> unit

val close : t -> unit

(** [run_jobs addr jobs] — the batch contract over a socket: submit
    every job (at most [window] outstanding, default 64), match
    verdicts back by id (FIFO per id when ids repeat), and return them
    sorted in submission order — byte-compatible with
    {!Elin_svc.Pool.run_batch} output when the server runs the same
    configuration.

    @raise Failure if the server closes early or breaks protocol. *)
val run_jobs : ?window:int -> ?max_frame:int -> Addr.t -> Job.t list ->
  Verdict.t list

(* Length-prefixed framing: 4-byte big-endian payload length, then the
   payload.  See frame.mli for the protocol-error contract. *)

let default_max_frame = 16 * 1024 * 1024
let limit_u32 = 0xFFFF_FFFF

let encode payload =
  let n = String.length payload in
  if n > limit_u32 then
    invalid_arg (Printf.sprintf "Frame.encode: payload of %d bytes" n);
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

(* The decoder keeps unconsumed bytes in [buf] past offset [pos] and
   compacts lazily, so feeding in tiny chunks stays O(total bytes). *)
type decoder = {
  max_frame : int;
  mutable buf : Bytes.t;
  mutable pos : int;  (* consumed prefix of [buf] *)
  mutable len : int;  (* valid bytes in [buf] (from 0) *)
  mutable err : string option;
}

let decoder ?(max_frame = default_max_frame) () =
  { max_frame; buf = Bytes.create 4096; pos = 0; len = 0; err = None }

let pending d = d.len - d.pos

let compact d ~need =
  let live = pending d in
  if d.pos > 0 && (d.pos >= 4096 || live + need > Bytes.length d.buf) then begin
    Bytes.blit d.buf d.pos d.buf 0 live;
    d.pos <- 0;
    d.len <- live
  end;
  if d.len + need > Bytes.length d.buf then begin
    let cap = ref (Bytes.length d.buf * 2) in
    while d.len + need > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit d.buf 0 b 0 d.len;
    d.buf <- b
  end

let feed d src off len =
  if len < 0 || off < 0 || off + len > Bytes.length src then
    invalid_arg "Frame.feed";
  if d.err = None && len > 0 then begin
    compact d ~need:len;
    Bytes.blit src off d.buf d.len len;
    d.len <- d.len + len
  end

let feed_string d s = feed d (Bytes.unsafe_of_string s) 0 (String.length s)

let next d =
  match d.err with
  | Some e -> `Error e
  | None ->
      let avail = pending d in
      if avail < 4 then `Awaiting
      else begin
        let b i = Bytes.get_uint8 d.buf (d.pos + i) in
        let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if n > d.max_frame then begin
          let e =
            Printf.sprintf "frame length %d exceeds limit %d" n d.max_frame
          in
          d.err <- Some e;
          `Error e
        end
        else if avail - 4 < n then `Awaiting
        else begin
          let payload = Bytes.sub_string d.buf (d.pos + 4) n in
          d.pos <- d.pos + 4 + n;
          `Frame payload
        end
      end

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len

let write_frame fd payload =
  let s = encode payload in
  write_all fd s 0 (String.length s)

let rec read_frame fd d scratch =
  match next d with
  | `Frame _ as f -> f
  | `Error _ as e -> e
  | `Awaiting -> (
      match Unix.read fd scratch 0 (Bytes.length scratch) with
      | 0 ->
          if pending d = 0 then `Eof
          else begin
            let e =
              Printf.sprintf "connection closed mid-frame (%d bytes pending)"
                (pending d)
            in
            d.err <- Some e;
            `Error e
          end
      | n ->
          feed d scratch 0 n;
          read_frame fd d scratch
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          read_frame fd d scratch
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
          let e = "connection reset" in
          d.err <- Some e;
          `Error e)

(* Same as [read_frame], but gives up if the descriptor stays silent
   for [idle_s] seconds.  The deadline is per quietus — it resets on
   every byte received — so a slow-but-live peer never trips it, only
   a genuinely wedged one. *)
let rec read_frame_idle fd d scratch ~idle_s =
  match next d with
  | `Frame _ as f -> f
  | `Error _ as e -> e
  | `Awaiting -> (
      match Unix.select [ fd ] [] [] idle_s with
      | exception Unix.Unix_error (Unix.EINTR, _, _) ->
          read_frame_idle fd d scratch ~idle_s
      | [], _, _ -> `Idle
      | _ -> (
          match Unix.read fd scratch 0 (Bytes.length scratch) with
          | 0 ->
              if pending d = 0 then `Eof
              else begin
                let e =
                  Printf.sprintf
                    "connection closed mid-frame (%d bytes pending)" (pending d)
                in
                d.err <- Some e;
                `Error e
              end
          | n ->
              feed d scratch 0 n;
              read_frame_idle fd d scratch ~idle_s
          | exception Unix.Unix_error (Unix.EINTR, _, _) ->
              read_frame_idle fd d scratch ~idle_s
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
              let e = "connection reset" in
              d.err <- Some e;
              `Error e))

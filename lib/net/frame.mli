(** Length-prefixed framing for the socket job/verdict protocol.

    A frame is a 4-byte big-endian unsigned payload length followed by
    exactly that many payload bytes; the payload is one [Svc.Jsonl]
    job or verdict line (no trailing newline).  Framing is
    self-delimiting, so pipelined frames need no sentinel and payloads
    may contain anything, including newlines.

    The decoder is incremental and pure with respect to I/O: callers
    {!feed} it raw byte chunks (in any split) and poll {!next} for
    complete frames.  A frame whose declared length exceeds the
    decoder's limit is a {e protocol error}: the stream cannot be
    resynchronized past an untrusted length, so the decoder latches
    the error and every later {!next} returns it.  Garbage bytes are
    indistinguishable from a (possibly huge) length prefix — they
    surface as an oversized frame or as a payload that fails JSON
    parsing one layer up; neither can crash the decoder. *)

(** Default per-frame payload limit: 16 MiB. *)
val default_max_frame : int

(** [encode payload] — the wire bytes of one frame.
    @raise Invalid_argument on payloads above 2^32 - 1 bytes. *)
val encode : string -> string

type decoder

(** [decoder ()] — fresh decoder; [max_frame] bounds accepted payload
    lengths (default {!default_max_frame}). *)
val decoder : ?max_frame:int -> unit -> decoder

(** Append raw bytes ([off]/[len] range).  Bytes fed after a latched
    error are dropped. *)
val feed : decoder -> bytes -> int -> int -> unit

(** [feed_string d s] — convenience whole-string {!feed}. *)
val feed_string : decoder -> string -> unit

(** Next complete frame, if the buffered bytes hold one.  [`Error] is
    latched: once returned, the decoder never yields another frame. *)
val next : decoder -> [ `Frame of string | `Awaiting | `Error of string ]

(** Buffered bytes not yet returned as frames — nonzero at EOF means
    the peer died mid-frame. *)
val pending : decoder -> int

(** {2 Blocking helpers over file descriptors} *)

(** [write_frame fd payload] — {!encode} and write fully (handles
    short writes and EINTR).  Unix errors propagate. *)
val write_frame : Unix.file_descr -> string -> unit

(** [read_frame fd decoder scratch] — block until one frame, EOF at a
    frame boundary, or a protocol error (oversized frame, EOF
    mid-frame).  [scratch] is the caller's read buffer. *)
val read_frame :
  Unix.file_descr ->
  decoder ->
  bytes ->
  [ `Frame of string | `Eof | `Error of string ]

(** [read_frame_idle fd decoder scratch ~idle_s] — like {!read_frame},
    but returns [`Idle] if no bytes arrive for [idle_s] seconds.  The
    deadline resets on every received byte, so it bounds silence, not
    total transfer time.  The decoder is untouched by [`Idle]; the
    caller may retry. *)
val read_frame_idle :
  Unix.file_descr ->
  decoder ->
  bytes ->
  idle_s:float ->
  [ `Frame of string | `Eof | `Error of string | `Idle ]

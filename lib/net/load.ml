module Obs = Elin_obs
open Elin_kernel
open Elin_spec
open Elin_history
open Elin_svc

(* ------------------------------------------------------------------ *)
(* Specs for the mix                                                  *)
(* ------------------------------------------------------------------ *)

let max_large_depth = 16

let load_reg_spec =
  let s = Register.spec ~domain:(List.init max_large_depth (fun i -> i + 1)) () in
  Spec.make ~name:"elin.load.reg" ~initial:(Spec.initial s)
    ~apply:(fun q op -> Spec.apply s q op)
    ~all_ops:(Spec.all_ops s)

let poison_spec =
  let fai = Faicounter.spec () in
  Spec.make ~name:"elin.poison" ~initial:(Spec.initial fai)
    ~apply:(fun _ _ -> failwith "elin.poison: poisoned checker")
    ~all_ops:(Spec.all_ops fai)

let test_resolve name =
  match name with
  | "elin.load.reg" -> load_reg_spec
  | "elin.poison" -> poison_spec
  | _ -> Pool.default_resolve name

(* ------------------------------------------------------------------ *)
(* Deterministic job generation                                       *)
(* ------------------------------------------------------------------ *)

type mix = { small : int; large : int; poison : int }

type cfg = {
  rate : float;
  jobs : int;
  seed : int;
  mix : mix;
  large_depth : int;
  budget : int option;
  timeout_ms : int option;
  idle_limit_s : float;
  trace_ids : bool;  (* stamp each job with a trace-context id *)
}

let default_cfg =
  {
    rate = 200.;
    jobs = 200;
    seed = 1;
    mix = { small = 8; large = 1; poison = 1 };
    large_depth = 6;
    budget = Some 500_000;
    timeout_ms = Some 2_000;
    idle_limit_s = 60.;
    trace_ids = false;
  }

let fai = Faicounter.spec ()

let small_history rng =
  Textio.to_string (Gen.linearizable rng ~spec:fai ~procs:2 ~n_ops:8 ())

(* The a1 unsat family at depth [d]: d pending writes of distinct
   values racing a reader whose final read contradicts the write
   order already observed — refuting it walks the pending-write
   interleavings, so cost grows ~ d!. *)
let unsat_history d =
  let events =
    List.init d (fun i -> Event.invoke ~proc:(i + 1) ~obj:0 (Op.write (i + 1)))
    @ List.concat_map
        (fun i ->
          [
            Event.invoke ~proc:0 ~obj:0 Op.read;
            Event.respond ~proc:0 ~obj:0 (Value.int (i + 1));
          ])
        (List.init d (fun i -> i))
    @ [
        Event.invoke ~proc:0 ~obj:0 Op.read;
        Event.respond ~proc:0 ~obj:0 (Value.int 1);
      ]
  in
  Textio.to_string (History.of_events events)

let gen_jobs cfg =
  let d = max 2 (min max_large_depth cfg.large_depth) in
  let rng = Prng.create cfg.seed in
  let total_w = max 1 (cfg.mix.small + cfg.mix.large + cfg.mix.poison) in
  let large_text = unsat_history d in
  List.init cfg.jobs (fun i ->
      let w = Prng.int rng total_w in
      let klass =
        if w < cfg.mix.small then `Small
        else if w < cfg.mix.small + cfg.mix.large then `Large
        else `Poison
      in
      let spec, history_text, tag =
        match klass with
        | `Small -> ("fetch&increment", small_history rng, "s")
        | `Large -> ("elin.load.reg", large_text, "l")
        | `Poison -> ("elin.poison", small_history rng, "p")
      in
      let id = Printf.sprintf "ld-%d-%s" i tag in
      {
        Job.id = id;
        seq = i;
        spec;
        check = Job.Linearizable;
        node_budget = cfg.budget;
        timeout_ms = cfg.timeout_ms;
        history_text;
        (* The job id doubles as the trace id: unique per run, and
           greppable on both sides of the wire. *)
        trace = (if cfg.trace_ids then Some id else None);
        parent = None;
      })

(* ------------------------------------------------------------------ *)
(* The open-loop run                                                  *)
(* ------------------------------------------------------------------ *)

type outcome = {
  target_per_s : float;
  jobs : int;
  answered : int;
  pass : int;
  violations : int;
  busy : int;
  errors : int;
  exhausted : int;
  wall_s : float;
  achieved_per_s : float;
  p50_us : float;
  p99_us : float;
  p999_us : float;
  max_us : float;
}

let run addr cfg =
  if cfg.rate <= 0. then invalid_arg "Load.run: rate must be > 0";
  if cfg.jobs < 1 then invalid_arg "Load.run: jobs must be >= 1";
  let jobs = Array.of_list (gen_jobs cfg) in
  let n = Array.length jobs in
  let index_of_id = Hashtbl.create n in
  Array.iteri (fun i j -> Hashtbl.replace index_of_id j.Job.id i) jobs;
  let hist = Obs.Metrics.Histogram.create () in
  let max_us = ref 0 in
  let cl = Client.connect addr in
  Fun.protect ~finally:(fun () -> Client.close cl) @@ fun () ->
  let period_ns = 1e9 /. cfg.rate in
  let t0 = Obs.Clock.now_ns () in
  let sched i =
    Int64.add t0 (Int64.of_float (float_of_int i *. period_ns))
  in
  let sent = Atomic.make 0 in
  let sender_dead = Atomic.make false in
  (* Sender: fire job i at its scheduled instant, open-loop.  A send
     that blocks (server backpressure) delays later sends past their
     schedule; their latencies, measured from the schedule, then
     include that stall — exactly what open-loop is for.

     [sent] is bumped BEFORE the write.  The receiver's completion
     check reads [sent]; if the count trailed the write, the verdict
     for the final job could arrive (whole loopback round trip inside
     the sender's preemption window — routinely observed on one core)
     while [sent] still read n-1, and the receiver, seeing itself
     unfinished, would park in a [recv] nothing will ever satisfy.
     Counting first makes "a verdict arrived" imply "its send was
     counted", so the check can never under-read. *)
  let sender =
    Thread.create
      (fun () ->
        try
          for i = 0 to n - 1 do
            let target = sched i in
            let now = Obs.Clock.now_ns () in
            if Int64.compare now target < 0 then
              Thread.delay
                (Int64.to_float (Int64.sub target now) /. 1e9);
            Atomic.incr sent;
            Client.send cl jobs.(i)
          done
        with _ ->
          (* The optimistically counted job never fully left (the
             frame is at best partial, so no verdict can come back
             for it): un-count it, or [finished] would wait for it
             forever. *)
          Atomic.decr sent;
          Atomic.set sender_dead true)
      ()
  in
  let answered = ref 0 in
  let pass = ref 0 in
  let violations = ref 0 in
  let busy = ref 0 in
  let errors = ref 0 in
  let exhausted = ref 0 in
  let failure = ref None in
  let finished () =
    let s = Atomic.get sent in
    (Atomic.get sender_dead || s = n) && !answered >= s
  in
  (* Watchdog: a lost verdict anywhere in the pipeline would otherwise
     park this loop in [recv] forever with every thread idle — the
     worst possible failure mode for a CI gate.  On silence, report
     exactly how far the pipeline got (the [net.*] counters are
     process-wide, so they localize the loss when the server is
     in-process, as in bench B8). *)
  let idle_diagnosis () =
    let counter name =
      match Obs.Metrics.find name with
      | Some (Obs.Metrics.Counter_v n) -> string_of_int n
      | _ -> "?"
    in
    Printf.sprintf
      "receiver idle for %gs: sent=%d answered=%d (proc-wide: net.frames=%s \
       net.replies=%s net.dropped=%s net.busy=%s)"
      cfg.idle_limit_s (Atomic.get sent) !answered (counter "net.frames")
      (counter "net.replies") (counter "net.dropped") (counter "net.busy")
  in
  while not (finished ()) && !failure = None do
    match Client.recv_idle cl ~idle_s:cfg.idle_limit_s with
    | `Idle -> failure := Some (idle_diagnosis ())
    | `Verdict v -> (
        match Hashtbl.find_opt index_of_id v.Verdict.job_id with
        | None ->
            failure :=
              Some
                (Printf.sprintf "verdict for unknown job id %S"
                   v.Verdict.job_id)
        | Some i ->
            incr answered;
            let lat_ns = Int64.sub (Obs.Clock.now_ns ()) (sched i) in
            let us = max 0 (Int64.to_int (Int64.div lat_ns 1000L)) in
            Obs.Metrics.Histogram.observe hist us;
            if us > !max_us then max_us := us;
            (* Client-side job span: scheduled-send to verdict, the
               same interval the latency histogram samples. *)
            (if Obs.Trace.on () then
               let args =
                 [ ("id", Obs.Jsonl.Str v.Verdict.job_id) ]
                 @
                 match jobs.(i).Job.trace with
                 | Some t -> [ ("trace", Obs.Jsonl.Str t) ]
                 | None -> []
               in
               Obs.Trace.complete ~cat:"client" ~ts:(sched i) "load.job"
                 ~args);
            (match v.Verdict.status with
            | Verdict.Pass -> incr pass
            | Verdict.Violation -> incr violations
            | Verdict.Busy -> incr busy
            | Verdict.Bad_job _ | Verdict.Failed _ -> incr errors
            | Verdict.Budget_exhausted | Verdict.Timed_out
            | Verdict.Cancelled ->
                incr exhausted))
    | `Eof -> failure := Some "server closed the connection mid-run"
    | `Error e -> failure := Some ("protocol error: " ^ e)
  done;
  let wall_s = Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. 1e9 in
  (* On failure the sender may be wedged in a blocked send (that is
     what backpressure against a dead server looks like); half-close
     the socket so it wakes and the join cannot hang. *)
  if !failure <> None then Client.shutdown cl;
  Thread.join sender;
  (match !failure with Some m -> failwith m | None -> ());
  if Atomic.get sender_dead then failwith "load sender failed mid-run";
  let count, _sum, buckets = Obs.Metrics.Histogram.merged hist in
  let q p = float_of_int (Obs.Metrics.quantile ~count ~buckets p) in
  {
    target_per_s = cfg.rate;
    jobs = n;
    answered = !answered;
    pass = !pass;
    violations = !violations;
    busy = !busy;
    errors = !errors;
    exhausted = !exhausted;
    wall_s;
    achieved_per_s = (if wall_s > 0. then float_of_int !answered /. wall_s else 0.);
    p50_us = q 0.5;
    p99_us = q 0.99;
    p999_us = q 0.999;
    max_us = float_of_int !max_us;
  }

let sweep addr cfg ~rates =
  List.map (fun rate -> run addr { cfg with rate }) rates

let outcome_to_json o =
  let open Jsonl in
  Obj
    [
      ("target_per_s", Float o.target_per_s);
      ("jobs", Int o.jobs);
      ("answered", Int o.answered);
      ("pass", Int o.pass);
      ("violations", Int o.violations);
      ("busy", Int o.busy);
      ("errors", Int o.errors);
      ("exhausted", Int o.exhausted);
      ("wall_s", Float o.wall_s);
      ("achieved_per_s", Float o.achieved_per_s);
      ("p50_us", Float o.p50_us);
      ("p99_us", Float o.p99_us);
      ("p999_us", Float o.p999_us);
      ("max_us", Float o.max_us);
    ]

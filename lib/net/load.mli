(** Open-loop load driver for the socket service (YCSB-style).

    Jobs are generated deterministically from a seed, then injected at
    a fixed target arrival rate {e independent of completions} — the
    open-loop discipline: a slow server does not slow the arrival
    process, it grows the backlog, and latencies honestly include the
    queueing (latency is measured from each job's {e scheduled}
    arrival instant, so coordinated omission cannot hide a stall).

    {2 Job mix}

    Three classes, mixed by weight:
    - {b small} — 8-op linearizable fetch&increment histories: the
      common fast path (sub-millisecond checks);
    - {b large} — depth-[d] unsatisfiable register histories ([d]
      pending writes against a reader), whose refutation walks a
      factorial interleaving space: the tail-latency driver;
    - {b poison} — jobs whose spec raises, exercising the containment
      path ([failed] verdicts).

    Large and poison jobs name specs outside the standard zoo
    ({!test_resolve} provides them): serve with [elin serve
    --test-specs] (or [~resolve:test_resolve] in-process), else those
    classes degrade to [bad_job] verdicts and measure only the error
    path. *)

open Elin_spec

(** Resolver for the load mix: the default zoo plus ["elin.load.reg"]
    (a register wide enough for deep unsat histories) and
    ["elin.poison"] (raises on first transition). *)
val test_resolve : string -> Spec.t

type mix = { small : int; large : int; poison : int }  (** weights *)

type cfg = {
  rate : float;  (** target arrival rate, jobs/s *)
  jobs : int;  (** offered jobs per run *)
  seed : int;  (** generation seed (fully deterministic) *)
  mix : mix;
  large_depth : int;  (** pending writes in a large job (cost ~ d!) *)
  budget : int option;  (** per-job node budget sent on the wire *)
  timeout_ms : int option;
  idle_limit_s : float;
      (** receiver watchdog: fail (loudly, with progress counters) if
          the server sends nothing for this long — a load run must
          never hang silently on a lost verdict (default 60 s) *)
  trace_ids : bool;
      (** stamp every generated job with a trace-context id (its own
          job id) and record a client-side [load.job] span per verdict
          — off by default so the wire bytes match pre-tracing runs *)
}

val default_cfg : cfg

type outcome = {
  target_per_s : float;
  jobs : int;  (** offered *)
  answered : int;
  pass : int;
  violations : int;
  busy : int;
  errors : int;  (** bad_job + failed *)
  exhausted : int;  (** budget_exhausted + timed_out + cancelled *)
  wall_s : float;  (** first scheduled send → last verdict *)
  achieved_per_s : float;  (** answered / wall_s *)
  p50_us : float;  (** log2-bucket upper-edge quantiles (µs) … *)
  p99_us : float;
  p999_us : float;
  max_us : float;  (** … and the exact maximum *)
}

(** [run addr cfg] — one run against a listening server.
    @raise Failure on protocol errors or early disconnect. *)
val run : Addr.t -> cfg -> outcome

(** [sweep addr cfg ~rates] — one {!run} per rate (fresh connection
    each), in order: the saturation-sweep series. *)
val sweep : Addr.t -> cfg -> rates:float list -> outcome list

(** Canonical JSONL row (latencies as JSON floats — they are measured,
    not deterministic). *)
val outcome_to_json : outcome -> Elin_svc.Jsonl.t

(* Socket front-end: accept loop + per-connection reader/writer
   threads around the existing Pool.  See server.mli for the
   architecture; the invariants that make the drain airtight are
   spelled out inline. *)

module Obs = Elin_obs
open Elin_kernel
open Elin_svc

type admission = Block | Busy

(* Observability: accepts/frames/verdicts counters, open-connection
   gauge, and a server-side per-job latency histogram (enqueue →
   verdict routed), all under the [net.] prefix. *)
let m_accepts = Obs.Metrics.counter "net.accepts"
let m_frames = Obs.Metrics.counter "net.frames"
let m_replies = Obs.Metrics.counter "net.replies"
let m_busy = Obs.Metrics.counter "net.busy"
let m_dropped = Obs.Metrics.counter "net.dropped"
let g_conns = Obs.Metrics.gauge "net.conns"
let h_latency = Obs.Metrics.histogram "net.latency_us"

type conn = {
  cid : int;
  fd : Unix.file_descr;
  outbox : string Chan.t;  (* verdict lines awaiting the writer *)
  g_outbox : Obs.Metrics.Gauge.t;
      (* per-connection outbox depth, lane-hashed into a bounded set of
         gauge names (net.outbox.c<cid mod 8>) so a long-lived server
         cannot grow the registry without bound *)
  m : Mutex.t;
  mutable in_flight : int;  (* admitted to the pool, not yet routed *)
  mutable reader_done : bool;
  dead : bool Atomic.t;  (* write side failed / slow-consumer evicted *)
}

type t = {
  addr : Addr.t;
  bound : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  admission : admission;
  stats : bool;
  max_frame : int;
  outbox_capacity : int;
  metrics : Metrics.t option;
  conns : (int, conn) Hashtbl.t;
  conns_m : Mutex.t;  (* also guards [readers]/[writers]; never taken
                         while holding a [conn.m] *)
  mutable readers : Thread.t list;
  mutable writers : Thread.t list;
  next_cid : int Atomic.t;
  (* Enqueue timestamps (and the job's trace-context id) by internal
     id, for the net.job span and latency histogram (queue wait +
     execution + routing). *)
  enq_ts : (string, int64 * string option) Hashtbl.t;
  enq_m : Mutex.t;
  stopping : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable dispatcher : Thread.t option;
  mutable stopped : bool;
  stop_m : Mutex.t;
}

(* ------------------------------------------------------------------ *)
(* Internal job ids                                                   *)
(*                                                                    *)
(* The pool routes verdicts back by nothing but the verdict itself,   *)
(* so the connection and per-connection sequence ride inside the id:  *)
(* "<cid>.<k>|<original id>".  '|' cannot appear in the prefix, and   *)
(* splitting on the FIRST '|' leaves original ids containing '|'      *)
(* intact.                                                            *)
(* ------------------------------------------------------------------ *)

let internal_id cid k id = Printf.sprintf "%d.%d|%s" cid k id

let split_internal id =
  match String.index_opt id '|' with
  | None -> None
  | Some bar -> (
      let prefix = String.sub id 0 bar in
      let orig = String.sub id (bar + 1) (String.length id - bar - 1) in
      match String.index_opt prefix '.' with
      | None -> None
      | Some dot -> (
          match
            ( int_of_string_opt (String.sub prefix 0 dot),
              int_of_string_opt
                (String.sub prefix (dot + 1) (String.length prefix - dot - 1))
            )
          with
          | Some cid, Some _k -> Some (cid, orig)
          | _ -> None))

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)
(* ------------------------------------------------------------------ *)

(* Non-blocking enqueue to the connection's outbox.  A full outbox
   means the client stopped reading while we kept answering; blocking
   here would wedge the dispatcher (shared by every connection), so
   the connection is evicted instead: mark dead, shut the socket down
   (which wakes its reader with EOF), drop the line. *)
let send_line conn line =
  if not (Atomic.get conn.dead) then
    match Chan.try_put conn.outbox line with
    | true ->
        if Obs.Metrics.on () then
          Obs.Metrics.Gauge.set conn.g_outbox (Chan.length conn.outbox)
    | false | (exception Chan.Closed) ->
        Atomic.set conn.dead true;
        Obs.Metrics.Counter.incr m_dropped;
        Obs.Recorder.note "net.evict"
          ~args:[ ("conn", Obs.Jsonl.Int conn.cid) ];
        (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ())

let send_verdict srv conn (v : Verdict.t) =
  Option.iter (fun m -> Metrics.verdict_done m v) srv.metrics;
  Obs.Metrics.Counter.incr m_replies;
  send_line conn (Verdict.to_line ~stats:srv.stats v)

let local_verdict ?(status = Verdict.Bad_job "") ?check ~id ~seq () =
  {
    Verdict.job_id = id;
    seq;
    check;
    status;
    min_t = None;
    nodes = 0;
    memo_hits = 0;
    wall_ms = 0.;
  }

(* Best-effort id for an unparseable job payload: its "id" field if
   the JSON is readable at all, else a frame-indexed placeholder. *)
let id_hint payload k =
  match Obs.Jsonl.str_mem "id" (Obs.Jsonl.of_string payload) with
  | Some id -> id
  | None | (exception Obs.Jsonl.Parse_error _) -> Printf.sprintf "frame-%d" k

(* ------------------------------------------------------------------ *)
(* Session reader                                                     *)
(* ------------------------------------------------------------------ *)

let note_enqueue srv internal ~trace =
  let ts = Obs.Clock.now_ns () in
  Mutex.lock srv.enq_m;
  Hashtbl.replace srv.enq_ts internal (ts, trace);
  Mutex.unlock srv.enq_m

let forget_enqueue srv internal =
  Mutex.lock srv.enq_m;
  Hashtbl.remove srv.enq_ts internal;
  Mutex.unlock srv.enq_m

(* One decoded frame: parse, rewrite the id, admit.  [in_flight] is
   bumped BEFORE the pool sees the job — the verdict can be routed the
   instant [submit] returns, and a late increment would let the
   dispatcher see a spurious zero and close the outbox early. *)
let handle_frame srv conn k payload =
  let seq = !k in
  incr k;
  Obs.Metrics.Counter.incr m_frames;
  match Job.of_line ~seq payload with
  | Error e ->
      send_verdict srv conn
        (local_verdict ~status:(Verdict.Bad_job e) ~id:(id_hint payload seq)
           ~seq ())
  | Ok job ->
      let internal = internal_id conn.cid seq job.Job.id in
      let ijob = { job with Job.id = internal } in
      note_enqueue srv internal ~trace:job.Job.trace;
      Mutex.lock conn.m;
      conn.in_flight <- conn.in_flight + 1;
      Mutex.unlock conn.m;
      Obs.Trace.instant ~cat:"net" "net.enqueue"
        ~args:
          [
            ("id", Obs.Jsonl.Str job.Job.id);
            ("conn", Obs.Jsonl.Int conn.cid);
          ];
      let admitted =
        match srv.admission with
        | Block -> (
            try
              Pool.submit srv.pool ijob;
              true
            with Chan.Closed -> false)
        | Busy -> ( try Pool.try_submit srv.pool ijob with Chan.Closed -> false)
      in
      if not admitted then begin
        Mutex.lock conn.m;
        conn.in_flight <- conn.in_flight - 1;
        Mutex.unlock conn.m;
        forget_enqueue srv internal;
        Obs.Metrics.Counter.incr m_busy;
        send_verdict srv conn
          (local_verdict ~status:Verdict.Busy ~check:job.Job.check
             ~id:job.Job.id ~seq ())
      end

let finish_reader conn =
  Mutex.lock conn.m;
  conn.reader_done <- true;
  let close_now = conn.in_flight = 0 in
  Mutex.unlock conn.m;
  if close_now then Chan.close conn.outbox

let reader_loop srv conn =
  let dec = Frame.decoder ~max_frame:srv.max_frame () in
  let scratch = Bytes.create 65536 in
  let k = ref 0 in
  (* Returns [true] to keep the session alive. *)
  let rec drain_frames () =
    match Frame.next dec with
    | `Awaiting -> true
    | `Error e ->
        (* Unrecoverable: the stream cannot be resynchronized.  Answer
           with an error verdict for the broken frame, then let the
           already-admitted jobs finish. *)
        Obs.Recorder.note "net.protocol_error"
          ~id:(Printf.sprintf "frame-%d" !k)
          ~args:
            [ ("conn", Obs.Jsonl.Int conn.cid); ("error", Obs.Jsonl.Str e) ];
        Obs.Recorder.dump ~reason:"protocol_error"
          ~job:(Printf.sprintf "frame-%d" !k) ();
        send_verdict srv conn
          (local_verdict
             ~status:(Verdict.Bad_job ("framing: " ^ e))
             ~id:(Printf.sprintf "frame-%d" !k)
             ~seq:!k ());
        false
    | `Frame payload ->
        handle_frame srv conn k payload;
        drain_frames ()
  in
  (* Stop-aware blocking read: wake every 0.25 s to observe [stopping]
     (and eviction, which shows up as EOF after the shutdown()). *)
  let rec loop () =
    if Atomic.get srv.stopping || Atomic.get conn.dead then ()
    else
      match Unix.select [ conn.fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.read conn.fd scratch 0 (Bytes.length scratch) with
          | 0 ->
              if Frame.pending dec > 0 then
                send_verdict srv conn
                  (local_verdict
                     ~status:
                       (Verdict.Bad_job "framing: connection closed mid-frame")
                     ~id:(Printf.sprintf "frame-%d" !k)
                     ~seq:!k ())
          | n ->
              let ts = Obs.Trace.begin_ns () in
              Frame.feed dec scratch 0 n;
              let alive = drain_frames () in
              Obs.Trace.complete ~cat:"net" ~ts "net.decode"
                ~args:
                  [
                    ("conn", Obs.Jsonl.Int conn.cid);
                    ("bytes", Obs.Jsonl.Int n);
                  ];
              if alive then loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ -> ())
  in
  loop ();
  finish_reader conn

(* ------------------------------------------------------------------ *)
(* Session writer                                                     *)
(* ------------------------------------------------------------------ *)

(* Sole owner of the connection's write side and of closing the fd:
   the outbox is closed only once the reader is done AND in_flight is
   zero, so closing here can never race a live read or a pending
   verdict. *)
let writer_loop srv conn =
  let rec drain () =
    match Chan.take conn.outbox with
    | None -> ()
    | Some line ->
        if Obs.Metrics.on () then
          Obs.Metrics.Gauge.set conn.g_outbox (Chan.length conn.outbox);
        (if not (Atomic.get conn.dead) then
           let ts = Obs.Trace.begin_ns () in
           try
             Frame.write_frame conn.fd line;
             Obs.Trace.complete ~cat:"net" ~ts "net.encode"
               ~args:
                 [
                   ("conn", Obs.Jsonl.Int conn.cid);
                   ("bytes", Obs.Jsonl.Int (String.length line));
                 ]
           with Unix.Unix_error _ -> Atomic.set conn.dead true);
        drain ()
  in
  drain ();
  Mutex.lock srv.conns_m;
  Hashtbl.remove srv.conns conn.cid;
  Mutex.unlock srv.conns_m;
  (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  if Obs.Metrics.on () then
    Obs.Metrics.Gauge.add g_conns (-1)

(* ------------------------------------------------------------------ *)
(* Dispatcher: pool verdicts → per-connection outboxes                *)
(* ------------------------------------------------------------------ *)

let deliver srv (v : Verdict.t) =
  match split_internal v.Verdict.job_id with
  | None -> () (* foreign verdict; nothing to route *)
  | Some (cid, orig) ->
      Mutex.lock srv.enq_m;
      let t0 = Hashtbl.find_opt srv.enq_ts v.Verdict.job_id in
      Hashtbl.remove srv.enq_ts v.Verdict.job_id;
      Mutex.unlock srv.enq_m;
      Obs.Trace.instant ~cat:"net" "net.dispatch"
        ~args:[ ("id", Obs.Jsonl.Str orig); ("conn", Obs.Jsonl.Int cid) ];
      (match t0 with
      | Some (ts, trace) ->
          if Obs.Trace.on () then
            Obs.Trace.complete ~cat:"net" ~ts "net.job"
              ~args:
                ([ ("id", Obs.Jsonl.Str orig); ("conn", Obs.Jsonl.Int cid) ]
                @
                match trace with
                | Some t -> [ ("trace", Obs.Jsonl.Str t) ]
                | None -> []);
          if Obs.Metrics.on () then
            Obs.Metrics.Histogram.observe h_latency
              (Int64.to_int
                 (Int64.div (Int64.sub (Obs.Clock.now_ns ()) ts) 1000L))
      | None -> ());
      let v = { v with Verdict.job_id = orig } in
      (* Hold conns_m across the reply so the writer cannot close the
         fd under the eviction shutdown() inside send_line. *)
      Mutex.lock srv.conns_m;
      (match Hashtbl.find_opt srv.conns cid with
      | None -> Obs.Metrics.Counter.incr m_dropped
      | Some conn ->
          Obs.Metrics.Counter.incr m_replies;
          Obs.Trace.instant ~cat:"net" "net.reply"
            ~args:
              [ ("id", Obs.Jsonl.Str orig); ("conn", Obs.Jsonl.Int cid) ];
          send_line conn (Verdict.to_line ~stats:srv.stats v);
          Mutex.lock conn.m;
          conn.in_flight <- conn.in_flight - 1;
          let close_now = conn.reader_done && conn.in_flight = 0 in
          Mutex.unlock conn.m;
          if close_now then Chan.close conn.outbox);
      Mutex.unlock srv.conns_m

let dispatch_loop srv =
  let rec loop () =
    match Pool.take_verdict srv.pool with
    | None -> ()
    | Some v ->
        deliver srv v;
        loop ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop                                                        *)
(* ------------------------------------------------------------------ *)

let spawn_session srv fd =
  (match srv.addr with
  | Addr.Tcp _ -> (
      try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
  | Addr.Unix_sock _ -> ());
  let cid = Atomic.fetch_and_add srv.next_cid 1 in
  let conn =
    {
      cid;
      fd;
      outbox = Chan.create ~capacity:srv.outbox_capacity ();
      g_outbox = Obs.Metrics.gauge (Printf.sprintf "net.outbox.c%d" (cid mod 8));
      m = Mutex.create ();
      in_flight = 0;
      reader_done = false;
      dead = Atomic.make false;
    }
  in
  Obs.Metrics.Counter.incr m_accepts;
  Obs.Recorder.note "net.accept" ~args:[ ("conn", Obs.Jsonl.Int cid) ];
  if Obs.Metrics.on () then Obs.Metrics.Gauge.add g_conns 1;
  Obs.Trace.instant ~cat:"net" "net.accept"
    ~args:[ ("conn", Obs.Jsonl.Int cid) ];
  Mutex.lock srv.conns_m;
  Hashtbl.replace srv.conns cid conn;
  let r = Thread.create (fun () -> reader_loop srv conn) () in
  let w = Thread.create (fun () -> writer_loop srv conn) () in
  srv.readers <- r :: srv.readers;
  srv.writers <- w :: srv.writers;
  Mutex.unlock srv.conns_m

let accept_loop srv =
  let rec loop () =
    if Atomic.get srv.stopping then ()
    else
      match Unix.select [ srv.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true srv.listen_fd with
          | fd, _ ->
              spawn_session srv fd;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ -> if Atomic.get srv.stopping then () else loop ())
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

(* A peer may close while we still hold verdicts for it; the resulting
   write must surface as EPIPE, not kill the process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let bind_listen addr =
  let domain, sa = Addr.sockaddr addr in
  (match addr with
  | Addr.Unix_sock path when Sys.file_exists path ->
      (* A stale path (no listener behind it) is reclaimable; a live
         server is a configuration error, not something to unlink. *)
      let probe = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        try
          Unix.connect probe sa;
          true
        with Unix.Unix_error _ -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        failwith
          (Printf.sprintf "address %s already in use" (Addr.to_string addr))
      else Unix.unlink path
  | _ -> ());
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Addr.Unix_sock _ -> ());
  (try
     Unix.bind fd sa;
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let start ?(domains = 1) ?(queue_capacity = 64) ?default_budget
    ?default_timeout_ms ?(reuse = true) ?resolve ?metrics
    ?(admission = Block) ?(outbox_capacity = 1024)
    ?(max_frame = Frame.default_max_frame) ?(stats = false) addr =
  Lazy.force ignore_sigpipe;
  let listen_fd = bind_listen addr in
  let pool =
    Pool.create ~queue_capacity ?default_budget ?default_timeout_ms ~reuse
      ?resolve ?metrics ~domains ()
  in
  let srv =
    {
      addr;
      bound = Unix.getsockname listen_fd;
      listen_fd;
      pool;
      admission;
      stats;
      max_frame;
      outbox_capacity;
      metrics;
      conns = Hashtbl.create 16;
      conns_m = Mutex.create ();
      readers = [];
      writers = [];
      next_cid = Atomic.make 0;
      enq_ts = Hashtbl.create 256;
      enq_m = Mutex.create ();
      stopping = Atomic.make false;
      acceptor = None;
      dispatcher = None;
      stopped = false;
      stop_m = Mutex.create ();
    }
  in
  srv.acceptor <- Some (Thread.create accept_loop srv);
  srv.dispatcher <- Some (Thread.create dispatch_loop srv);
  srv

let port srv =
  match srv.bound with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let connections srv =
  Mutex.lock srv.conns_m;
  let n = Hashtbl.length srv.conns in
  Mutex.unlock srv.conns_m;
  n

let queue_depth srv = Pool.queue_depth srv.pool
let output_depth srv = Pool.output_depth srv.pool

(* Drain order is what makes "no accepted job unanswered" hold:
   1. stop accepting (join the acceptor);
   2. join the readers — each exits within one select tick, and a
      reader blocked in [Pool.submit] completes first because the
      workers are still running;
   3. [Pool.shutdown] — workers finish every queued job, then exit;
   4. join the dispatcher — it routes every remaining verdict and sees
      end-of-stream; by now each outbox has been closed by whichever
      of {reader, dispatcher} finished that connection last;
   5. join the writers — each flushes its outbox and closes its fd. *)
let stop srv =
  let fresh =
    Mutex.lock srv.stop_m;
    let f = not srv.stopped in
    srv.stopped <- true;
    Mutex.unlock srv.stop_m;
    f
  in
  if fresh then begin
    Atomic.set srv.stopping true;
    Option.iter Thread.join srv.acceptor;
    (try Unix.close srv.listen_fd with Unix.Unix_error _ -> ());
    (match srv.addr with
    | Addr.Unix_sock path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Addr.Tcp _ -> ());
    let readers =
      Mutex.lock srv.conns_m;
      let r = srv.readers in
      srv.readers <- [];
      Mutex.unlock srv.conns_m;
      r
    in
    List.iter Thread.join readers;
    Pool.shutdown srv.pool;
    Option.iter Thread.join srv.dispatcher;
    let writers =
      Mutex.lock srv.conns_m;
      let w = srv.writers in
      srv.writers <- [];
      Mutex.unlock srv.conns_m;
      w
    in
    List.iter Thread.join writers
  end

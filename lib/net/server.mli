(** Concurrent socket front-end for the checking service: a listener
    (Unix-domain or TCP) speaking {!Frame}-delimited {!Elin_svc.Jsonl}
    job/verdict lines, feeding the existing {!Elin_svc.Pool}.

    {2 Shape}

    {v
              accept (select loop, stop-aware)
    clients ──────────► session readers (1 thread/conn)
                            │ parse frame → Job, rewrite id
                            ▼
                        [Pool: bounded job channel]  ← backpressure
                            │ worker domains
                            ▼
                        dispatcher (1 thread) ── route by id ──► per-conn
                                                                 outbox →
                                                                 writer
    v}

    {2 Sessions and pipelining}

    Each connection may pipeline any number of job frames without
    waiting; verdicts come back {e in completion order}, matched by the
    job's [id] (the server tags ids internally for routing and
    restores the caller's id on the way out).  Callers that need
    submission order sort by their own ids — exactly the
    {!Elin_svc.Pool.run_batch} contract, minus the sorting.

    {2 Admission}

    The pool's bounded job channel is the only queue.  Under
    [`Block] admission (default) a full queue blocks the session
    reader, so backpressure propagates to the client's socket writes.
    Under [`Busy] admission a full queue refuses the job immediately
    with a [busy] verdict, and the client may retry.

    {2 Containment and drain}

    Malformed JSON in a well-framed payload costs a [bad_job] verdict
    and the session continues; a framing violation (oversized length
    prefix, EOF mid-frame) is unrecoverable, so the session answers
    what it already accepted and closes.  A crashing job costs a
    [failed] verdict (the pool's containment); the server survives.
    {!stop} drains gracefully: stop accepting, stop reading, finish
    every admitted job, flush every outbox — no accepted job is left
    unanswered. *)

open Elin_spec
open Elin_svc

type admission = Block | Busy

type t

(** [start addr] — bind, listen, and serve until {!stop}.

    - [domains], [queue_capacity], [default_budget],
      [default_timeout_ms], [reuse], [resolve], [metrics] configure
      the underlying {!Pool} (same defaults).
    - [admission] — see above (default [Block]).
    - [outbox_capacity] (default 1024) bounds each connection's reply
      queue; a client that stops reading past that is disconnected
      rather than allowed to wedge the dispatcher.
    - [max_frame] bounds accepted frame payloads.
    - [stats] appends [wall_ms] to verdict lines (default false, for
      byte-identical parity with [elin batch]).

    A stale Unix-socket path (no listener behind it) is reclaimed;
    a live one raises [Failure].  TCP port 0 binds an ephemeral port —
    read it back with {!port}. *)
val start :
  ?domains:int ->
  ?queue_capacity:int ->
  ?default_budget:int ->
  ?default_timeout_ms:int ->
  ?reuse:bool ->
  ?resolve:(string -> Spec.t) ->
  ?metrics:Metrics.t ->
  ?admission:admission ->
  ?outbox_capacity:int ->
  ?max_frame:int ->
  ?stats:bool ->
  Addr.t ->
  t

(** Actual TCP port (after binding port 0); [None] for Unix sockets. *)
val port : t -> int option

(** Connections currently open. *)
val connections : t -> int

(** Pool jobs queued / verdicts awaiting routing — a stuck-pipeline
    diagnostic surface (see {!Elin_svc.Pool.queue_depth}). *)
val queue_depth : t -> int

val output_depth : t -> int

(** Graceful drain, blocking until complete (see module doc).
    Idempotent.  Unlinks the Unix socket path. *)
val stop : t -> unit

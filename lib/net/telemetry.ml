(* Live telemetry endpoint: a minimal HTTP/1.0 responder over the same
   socket primitives as the job service.  Two routes, GET only,
   Connection: close — enough for a Prometheus scrape or a shell
   probe, deliberately nothing more (no keep-alive, no chunking, no
   TLS; bind it to loopback). *)

module Obs = Elin_obs

type health = {
  state : string;  (* "serving" | "draining" *)
  queue_depth : int;
  connections : int;
  workers : int;
}

type t = {
  addr : Addr.t;
  bound : Unix.sockaddr;
  listen_fd : Unix.file_descr;
  health : unit -> health;
  stopping : bool Atomic.t;
  mutable acceptor : Thread.t option;
  mutable stopped : bool;
  stop_m : Mutex.t;
}

let m_scrapes = Obs.Metrics.counter "telemetry.scrapes"

let health_json h =
  let open Obs.Jsonl in
  Obj
    [
      ("status", Str h.state);
      ("queue", Int h.queue_depth);
      ("conns", Int h.connections);
      ("workers", Int h.workers);
    ]

(* Read until the blank line ending the request head (we never expect
   a body on GET), bounded to keep a hostile peer from growing the
   buffer; 2 s of socket silence drops the connection. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let deadline = Unix.gettimeofday () +. 2. in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then None
      else
        match Unix.select [ fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | [], _, _ -> None
        | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error _ -> None
            | 0 -> None
            | n ->
                Buffer.add_subbytes buf chunk 0 n;
                let s = Buffer.contents buf in
                let found =
                  (* tolerate bare-LF clients *)
                  let has sub =
                    let ls = String.length sub and lt = String.length s in
                    let rec at i =
                      i + ls <= lt && (String.sub s i ls = sub || at (i + 1))
                    in
                    at 0
                  in
                  has "\r\n\r\n" || has "\n\n"
                in
                if found then Some s else go ())
  in
  go ()

let parse_request head =
  match String.split_on_char '\n' head with
  | [] -> None
  | first :: _ -> (
      let first = String.trim first in
      match String.split_on_char ' ' first with
      | meth :: path :: _ -> Some (meth, path)
      | _ -> None)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> ()
      | w -> go (off + w)
  in
  go 0

let respond fd ~status ~content_type body =
  let reason =
    match status with
    | 200 -> "OK"
    | 404 -> "Not Found"
    | 405 -> "Method Not Allowed"
    | 503 -> "Service Unavailable"
    | _ -> "Error"
  in
  write_all fd
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n%s"
       status reason content_type (String.length body) body)

let openmetrics_content_type =
  "application/openmetrics-text; version=1.0.0; charset=utf-8"

let handle t fd =
  (match read_head fd with
  | None -> ()
  | Some head -> (
      match parse_request head with
      | None -> respond fd ~status:405 ~content_type:"text/plain" "bad request\n"
      | Some (meth, path) ->
          if meth <> "GET" then
            respond fd ~status:405 ~content_type:"text/plain"
              "GET only\n"
          else (
            Obs.Metrics.Counter.incr m_scrapes;
            match path with
            | "/metrics" ->
                respond fd ~status:200
                  ~content_type:openmetrics_content_type
                  (Obs.Openmetrics.render ())
            | "/healthz" ->
                let h = t.health () in
                respond fd
                  ~status:(if h.state = "serving" then 200 else 503)
                  ~content_type:"application/json"
                  (Obs.Jsonl.to_string (health_json h) ^ "\n")
            | _ ->
                respond fd ~status:404 ~content_type:"text/plain"
                  "routes: /metrics /healthz\n")));
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Requests are tiny and responses are built in memory, so one
   sequential accept loop suffices; read_head's timeout bounds how
   long a slow client can hold it. *)
let accept_loop t =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ -> loop ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              handle t fd;
              loop ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          | exception Unix.Unix_error _ ->
              if Atomic.get t.stopping then () else loop ())
  in
  loop ()

let start ~health addr =
  let domain, sa = Addr.sockaddr addr in
  (match addr with
  | Addr.Unix_sock path when Sys.file_exists path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Addr.Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Addr.Unix_sock _ -> ());
  (try
     Unix.bind fd sa;
     Unix.listen fd 16
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      addr;
      bound = Unix.getsockname fd;
      listen_fd = fd;
      health;
      stopping = Atomic.make false;
      acceptor = None;
      stopped = false;
      stop_m = Mutex.create ();
    }
  in
  t.acceptor <- Some (Thread.create accept_loop t);
  t

let port t = match t.bound with Unix.ADDR_INET (_, p) -> Some p | _ -> None

let stop t =
  let fresh =
    Mutex.lock t.stop_m;
    let f = not t.stopped in
    t.stopped <- true;
    Mutex.unlock t.stop_m;
    f
  in
  if fresh then begin
    Atomic.set t.stopping true;
    Option.iter Thread.join t.acceptor;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    match t.addr with
    | Addr.Unix_sock path -> (
        try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Addr.Tcp _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Probe client (the curl we don't have)                              *)
(* ------------------------------------------------------------------ *)

let get addr path =
  match
    let domain, sa = Addr.sockaddr addr in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () ->
        try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd sa;
        write_all fd
          (Printf.sprintf "GET %s HTTP/1.0\r\nHost: elin\r\n\r\n" path);
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec drain () =
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | exception Failure m -> Error m
  | raw -> (
      (* status line: HTTP/1.x CODE REASON *)
      let header_end =
        let rec find i =
          if i + 3 >= String.length raw then None
          else if String.sub raw i 4 = "\r\n\r\n" then Some (i + 4)
          else find (i + 1)
        in
        find 0
      in
      match header_end with
      | None -> Error "malformed HTTP response (no header terminator)"
      | Some body_at -> (
          match String.split_on_char ' ' (List.hd (String.split_on_char '\r' raw)) with
          | _http :: code :: _ -> (
              match int_of_string_opt code with
              | Some status ->
                  Ok
                    ( status,
                      String.sub raw body_at (String.length raw - body_at) )
              | None -> Error "malformed HTTP status line")
          | _ -> Error "malformed HTTP status line"))

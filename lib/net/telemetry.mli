(** Live telemetry endpoint for [elin serve]: a minimal HTTP/1.0
    responder (GET only, [Connection: close]) serving

    - [/metrics] — OpenMetrics text exposition of the process-wide
      {!Elin_obs.Metrics} registry ({!Elin_obs.Openmetrics});
    - [/healthz] — JSON [{"status","queue","conns","workers"}] with
      status 200 while serving and 503 once draining.

    {b Security}: there is no auth, no TLS, and no rate limiting —
    bind it to loopback (or a unix socket) unless the network is
    trusted.  A slow or hostile client can hold the single accept
    loop for at most the 2 s head-read timeout. *)

type health = {
  state : string;  (** ["serving"] or ["draining"] *)
  queue_depth : int;
  connections : int;
  workers : int;
}

type t

(** [start ~health addr] — bind, listen, and serve on a background
    thread.  [health] is sampled per [/healthz] request.
    @raise Unix.Unix_error / Failure on bind problems. *)
val start : health:(unit -> health) -> Addr.t -> t

(** Bound TCP port ([None] for unix sockets) — for [tcp:HOST:0]. *)
val port : t -> int option

(** Stop accepting, join the acceptor, close (and unlink) the socket.
    Idempotent. *)
val stop : t -> unit

(** [get addr path] — one-shot HTTP/1.0 GET (the probe behind
    [elin probe]; there is no curl in the CI image).  Returns
    [(status, body)]. *)
val get : Addr.t -> string -> (int * string, string) result

external monotonic_ns : unit -> int64 = "elin_obs_monotonic_ns"

(* The indirection costs one atomic load on the real path; it buys the
   trace golden tests a deterministic clock. *)
let source : (unit -> int64) option Atomic.t = Atomic.make None

let now_ns () =
  match Atomic.get source with None -> monotonic_ns () | Some f -> f ()

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_us ns = Int64.to_float ns /. 1e3
let set_source_for_testing f = Atomic.set source f

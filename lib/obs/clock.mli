(** The one monotonic time source.

    Every duration in the repo — bench walls, svc latencies, trace
    span timestamps — is measured against this clock, so a wall-clock
    adjustment (NTP slew, manual date set) mid-run can never produce a
    negative latency or skew a p99.  Timestamps are nanoseconds from
    an arbitrary origin (boot, typically): only differences are
    meaningful; never persist an absolute value. *)

(** Monotonic nanoseconds.  Never decreases within a process. *)
val now_ns : unit -> int64

(** [now_s ()] = [now_ns ()] in seconds, for subtraction-style timing
    ([let t0 = now_s () in ... now_s () -. t0]). *)
val now_s : unit -> float

(** Nanosecond difference helpers. *)
val ns_to_ms : int64 -> float

val ns_to_us : int64 -> float

(** Tests only: substitute a deterministic source ([None] restores the
    real clock).  A fake source must still be monotonic. *)
val set_source_for_testing : (unit -> int64) option -> unit

/* Monotonic clock for Obs.Clock.  OCaml 5.1's Unix only exposes the
 * adjustable wall clock (gettimeofday); observability needs a time
 * source that never jumps backwards, so we read CLOCK_MONOTONIC
 * directly.  Returns nanoseconds as a boxed int64 (caml_copy_int64
 * allocates, so this cannot be [@@noalloc]). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value elin_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000LL + ts.tv_nsec);
}

(** Minimal JSON (de)serialization for the JSONL wire format — the
    single encoder shared by svc verdicts, mc [--json], bench series
    files, metrics snapshots, and trace export. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string j =
  let buf = Buffer.create 128 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
      (* %.17g is lossless; strip to %g when that already round-trips
         so the common case stays short. *)
      let s = Printf.sprintf "%g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      Buffer.add_string buf s
    | Str s -> escape_into buf s
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          go x)
        xs;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          go v)
        fields;
      Buffer.add_char buf '}'
  in
  go j;
  Buffer.contents buf

(* --- parsing --- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" lit)
  in
  let hex_digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "bad hex digit in \\u escape"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let code =
                 (hex_digit s.[!pos] lsl 12)
                 lor (hex_digit s.[!pos + 1] lsl 8)
                 lor (hex_digit s.[!pos + 2] lsl 4)
                 lor hex_digit s.[!pos + 3]
               in
               pos := !pos + 4;
               (* BMP only — all we ever emit is control characters. *)
               Buffer.add_utf_8_uchar buf (Uchar.of_int code)
             | c -> fail (Printf.sprintf "bad escape \\%C" c));
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        members ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [] in
        let rec elements () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        elements ();
        Arr (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing characters";
  v

(* --- accessors --- *)

let mem k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let str_mem k j =
  match mem k j with Some (Str s) -> Some s | _ -> None

let int_mem k j = match mem k j with Some (Int i) -> Some i | _ -> None

let float_mem k j =
  match mem k j with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool_mem k j = match mem k j with Some (Bool b) -> Some b | _ -> None

(* --- writers --- *)

let write_line oc j =
  output_string oc (to_string j);
  output_char oc '\n'

let to_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> write_line oc j)

let lines_to_file path js =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> List.iter (write_line oc) js)


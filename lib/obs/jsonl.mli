(** Minimal JSON values for every JSONL surface in the repo — svc
    verdicts, mc [--json], bench series files, metrics snapshots,
    trace export.  Hand-rolled because the dependency footprint is
    frozen: compact single-line printing with deterministic field
    order (whatever order the [Obj] list carries), full RFC-ish
    parsing of what we emit plus standard escapes. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(** Compact, single-line (no newlines are ever emitted; string
    newlines are escaped).  [Obj] fields print in list order, so equal
    values print byte-identically. *)
val to_string : t -> string

(** Parses one JSON value; trailing whitespace allowed, anything else
    raises {!Parse_error}. *)
val of_string : string -> t

(** [mem k j] — field [k] of an [Obj] ([None] otherwise/absent). *)
val mem : string -> t -> t option

(** Typed field accessors: [None] when absent or of the wrong type.
    [int_mem] accepts [Int] only; [float_mem] accepts both [Int] and
    [Float]. *)
val str_mem : string -> t -> string option

val int_mem : string -> t -> int option
val float_mem : string -> t -> float option
val bool_mem : string -> t -> bool option

(** [write_line oc j] — one compact line plus ['\n']. *)
val write_line : out_channel -> t -> unit

(** [to_file path j] — write [j] as a single JSONL line, creating or
    truncating [path]. *)
val to_file : string -> t -> unit

(** [lines_to_file path js] — one line per value. *)
val lines_to_file : string -> t list -> unit

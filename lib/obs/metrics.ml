let enabled = Atomic.make false
let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* Shard count: power of two, comfortably above the domain counts we
   run (recommended_domain_count on big hosts).  Distinct domains can
   still collide on a shard (id land 63) — that only costs contention,
   never correctness, because every shard is merged on snapshot. *)
let n_shards = 64

let shard () = (Domain.self () :> int) land (n_shards - 1)

module Counter = struct
  type t = { shards : int Atomic.t array }

  let create () = { shards = Array.init n_shards (fun _ -> Atomic.make 0) }
  let incr c = Atomic.incr c.shards.(shard ())
  let add c n = ignore (Atomic.fetch_and_add c.shards.(shard ()) n)
  let value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.shards
  let shard_value c = Atomic.get c.shards.(shard ())
  let reset c = Array.iter (fun a -> Atomic.set a 0) c.shards
end

module Gauge = struct
  type t = { cell : int Atomic.t }

  let create () = { cell = Atomic.make 0 }
  let set g v = Atomic.set g.cell v
  let add g n = ignore (Atomic.fetch_and_add g.cell n)
  let value g = Atomic.get g.cell
  let reset g = Atomic.set g.cell 0
end

module Histogram = struct
  let n_buckets = 64

  type t = {
    (* cells.(shard * n_buckets + bucket); sums.(shard) *)
    cells : int Atomic.t array;
    sums : int Atomic.t array;
  }

  let create () =
    {
      cells = Array.init (n_shards * n_buckets) (fun _ -> Atomic.make 0);
      sums = Array.init n_shards (fun _ -> Atomic.make 0);
    }

  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      min (n_buckets - 1) !b
    end

  let bucket_lower i = if i <= 0 then 0 else 1 lsl (i - 1)

  let bucket_upper i =
    if i <= 0 then 0
    else if i >= n_buckets - 1 then max_int
    else (1 lsl i) - 1

  let observe h v =
    let s = shard () in
    Atomic.incr h.cells.((s * n_buckets) + bucket_of v);
    ignore (Atomic.fetch_and_add h.sums.(s) v)

  (* (bucket, count) for nonzero buckets, ascending; plus count/sum. *)
  let merged h =
    let count = ref 0 and sum = ref 0 in
    let buckets = ref [] in
    for b = n_buckets - 1 downto 0 do
      let c = ref 0 in
      for s = 0 to n_shards - 1 do
        c := !c + Atomic.get h.cells.((s * n_buckets) + b)
      done;
      if !c > 0 then begin
        count := !count + !c;
        buckets := (b, !c) :: !buckets
      end
    done;
    for s = 0 to n_shards - 1 do
      sum := !sum + Atomic.get h.sums.(s)
    done;
    (!count, !sum, !buckets)

  let reset h =
    Array.iter (fun a -> Atomic.set a 0) h.cells;
    Array.iter (fun a -> Atomic.set a 0) h.sums
end

type metric =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let register name make classify kind_name =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match classify m with
        | Some x -> x
        | None ->
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %S already registered, not a %s" name
               kind_name))
      | None ->
        let x = make () in
        x)

let counter name =
  register name
    (fun () ->
      let c = Counter.create () in
      Hashtbl.add registry name (C c);
      c)
    (function C c -> Some c | _ -> None)
    "counter"

let gauge name =
  register name
    (fun () ->
      let g = Gauge.create () in
      Hashtbl.add registry name (G g);
      g)
    (function G g -> Some g | _ -> None)
    "gauge"

let histogram name =
  register name
    (fun () ->
      let h = Histogram.create () in
      Hashtbl.add registry name (H h);
      h)
    (function H h -> Some h | _ -> None)
    "histogram"

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of { count : int; sum : int; buckets : (int * int) list }

let read = function
  | C c -> Counter_v (Counter.value c)
  | G g -> Gauge_v (Gauge.value g)
  | H h ->
    let count, sum, buckets = Histogram.merged h in
    Histogram_v { count; sum; buckets }

let snapshot () =
  Mutex.lock registry_mu;
  let named =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mu)
      (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  named
  |> List.map (fun (name, m) -> (name, read m))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find name =
  Mutex.lock registry_mu;
  let m =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_mu)
      (fun () -> Hashtbl.find_opt registry name)
  in
  Option.map read m

let quantile ~count ~buckets q =
  if count <= 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int count)) in
      if r < 1 then 1 else if r > count then count else r
    in
    let rec go cum = function
      | [] -> 0
      | (b, c) :: rest ->
        let cum = cum + c in
        if cum >= rank then Histogram.bucket_upper b else go cum rest
    in
    go 0 buckets
  end

let to_jsonl () =
  snapshot ()
  |> List.map (fun (name, v) ->
         let open Jsonl in
         match v with
         | Counter_v n ->
           Obj [ ("metric", Str name); ("type", Str "counter"); ("value", Int n) ]
         | Gauge_v n ->
           Obj [ ("metric", Str name); ("type", Str "gauge"); ("value", Int n) ]
         | Histogram_v { count; sum; buckets } ->
           Obj
             [
               ("metric", Str name);
               ("type", Str "histogram");
               ("count", Int count);
               ("sum", Int sum);
               ("p50", Int (quantile ~count ~buckets 0.5));
               ("p99", Int (quantile ~count ~buckets 0.99));
               ( "buckets",
                 Arr (List.map (fun (b, c) -> Arr [ Int b; Int c ]) buckets) );
             ])

let write_jsonl oc = List.iter (Jsonl.write_line oc) (to_jsonl ())

let reset () =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C c -> Counter.reset c
          | G g -> Gauge.reset g
          | H h -> Histogram.reset h)
        registry)

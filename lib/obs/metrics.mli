(** Process-wide metrics registry: counters, gauges, and log2-bucketed
    histograms, named by dotted strings ("mc.states", "svc.queue").

    {2 Concurrency}

    Counters and histograms are {e domain-sharded}: a bump touches one
    [Atomic] cell picked by the calling domain's id, so domains never
    contend on a hot counter; [snapshot] merges the shards.  Gauges
    are a single cell (last write wins — they record level, not
    volume).

    {2 Cost contract}

    Registration ([counter]/[gauge]/[histogram]) takes a mutex and is
    meant for module-initialization time.  Bumps are one atomic RMW
    and never allocate.  Hot paths (per-state, per-access) must still
    guard with [if Metrics.on () then ...] — one atomic load — so the
    disabled mode pays a single branch; cold paths (per-run, per-job)
    may bump unconditionally. *)

(** The hot-path guard flag.  [enable]/[disable] flip it; bumps on
    metrics handles work regardless — the flag only tells
    instrumentation sites whether anyone is going to read the
    registry. *)
val on : unit -> bool

val enable : unit -> unit
val disable : unit -> unit

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit

  (** Merged total across shards.  Not a consistent cut under
      concurrent bumps — fine for progress display and end-of-run
      snapshots. *)
  val value : t -> int

  (** The calling domain's own shard — lets a worker compute "what did
      {e this} domain add since [v0]" without a merge (used for the
      aggregated POR-pruned trace instants). *)
  val shard_value : t -> int
end

module Gauge : sig
  type t

  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  (** A standalone (unregistered) histogram, for per-pool or per-run
      populations that shouldn't live in the process-wide registry.
      Same sharding and bucket algebra as registered ones. *)
  val create : unit -> t

  (** [observe h v] — count [v] into its log2 bucket and add it to the
      running sum.  Negative and zero values land in bucket 0. *)
  val observe : t -> int -> unit

  (** [(count, sum, buckets)] merged across shards; [buckets] is the
      nonzero [(bucket index, count)] list, ascending.  Feed to
      {!quantile}. *)
  val merged : t -> int * int * (int * int) list

  (** Zero the histogram (standalone ones aren't reached by
      {!Metrics.reset}). *)
  val reset : t -> unit

  (** Bucket index of a value: 0 for [v <= 0], otherwise
      [floor(log2 v) + 1] capped at 63 — bucket [i >= 1] holds
      [2^(i-1) .. 2^i - 1]. *)
  val bucket_of : int -> int

  val bucket_lower : int -> int
  val bucket_upper : int -> int
end

(** Find-or-create; [Invalid_argument] if the name is already
    registered as a different kind. *)
val counter : string -> Counter.t

val gauge : string -> Gauge.t
val histogram : string -> Histogram.t

type value =
  | Counter_v of int
  | Gauge_v of int
  | Histogram_v of {
      count : int;
      sum : int;
      buckets : (int * int) list;  (** (bucket index, count), nonzero only *)
    }

(** All registered metrics, shards merged, sorted by name. *)
val snapshot : unit -> (string * value) list

val find : string -> value option

(** Nearest-rank quantile over merged histogram buckets, reported as
    the bucket's upper edge (a [<=] bound, honest about log2
    resolution).  [q] in [0..1]; 0 when [count = 0]. *)
val quantile : count:int -> buckets:(int * int) list -> float -> int

(** One JSONL object per metric, canonical key order
    ([metric], [type], then kind-specific fields), sorted by name.
    Histograms carry [count]/[sum]/[p50]/[p99]/[buckets]. *)
val to_jsonl : unit -> Jsonl.t list

val write_jsonl : out_channel -> unit

(** Zero every registered metric (registrations survive).  Tests and
    repeated bench modes. *)
val reset : unit -> unit

(* OpenMetrics text exposition rendered from the Metrics registry.
   Hand-rolled like Jsonl: the format is line-oriented and tiny, and
   the frozen-dependency rule rules out prometheus client libs. *)

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* "svc.latency_us" -> "elin_svc_latency_us".  Dots (and anything else
   outside the OpenMetrics name alphabet) become underscores; the
   "elin_" prefix namespaces us on a shared scrape endpoint. *)
let sanitize name =
  let b = Buffer.create (String.length name + 5) in
  Buffer.add_string b "elin_";
  String.iter (fun c -> Buffer.add_char b (if is_name_char c then c else '_')) name;
  Buffer.contents b

let render_snapshot snap =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (name, v) ->
      let n = sanitize name in
      match (v : Metrics.value) with
      | Metrics.Counter_v c ->
          line "# TYPE %s counter" n;
          line "%s_total %d" n c
      | Metrics.Gauge_v g ->
          line "# TYPE %s gauge" n;
          line "%s %d" n g
      | Metrics.Histogram_v { count; sum; buckets } ->
          line "# TYPE %s histogram" n;
          (* Log2 buckets exposed cumulatively at their upper edges;
             the top bucket folds into the mandatory +Inf edge. *)
          let cum = ref 0 in
          List.iter
            (fun (i, c) ->
              cum := !cum + c;
              if i < 62 then
                line "%s_bucket{le=\"%d\"} %d" n
                  (Metrics.Histogram.bucket_upper i)
                  !cum)
            buckets;
          line "%s_bucket{le=\"+Inf\"} %d" n count;
          line "%s_count %d" n count;
          line "%s_sum %d" n sum;
          (* Nearest-rank quantiles (upper-edge bounds, same contract
             as Metrics.quantile) as companion gauges. *)
          line "# TYPE %s_p50 gauge" n;
          line "%s_p50 %d" n (Metrics.quantile ~count ~buckets 0.5);
          line "# TYPE %s_p99 gauge" n;
          line "%s_p99 %d" n (Metrics.quantile ~count ~buckets 0.99))
    snap;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let render () = render_snapshot (Metrics.snapshot ())

(* A permissive structural check used by `elin probe --openmetrics`
   and the smoke gate: every line is a comment, blank, or
   `name[{labels}] value`, and the body ends with `# EOF`. *)
let validate text =
  let ok_sample l =
    match String.index_opt l ' ' with
    | None -> false
    | Some sp ->
        let name_part = String.sub l 0 sp in
        let value_part = String.sub l (sp + 1) (String.length l - sp - 1) in
        let name_ok =
          name_part <> ""
          && String.for_all
               (fun c -> is_name_char c || c = '{' || c = '}' || c = '"'
                         || c = '=' || c = '+' || c = ',')
               name_part
        in
        let value_ok =
          value_part <> "" && (match float_of_string_opt value_part with
                               | Some _ -> true
                               | None -> false)
        in
        name_ok && value_ok
  in
  let lines = String.split_on_char '\n' text in
  let rec go seen_eof i = function
    | [] ->
        if seen_eof then Ok ()
        else Error "openmetrics: missing `# EOF` terminator"
    | l :: rest ->
        if seen_eof && l <> "" then
          Error (Printf.sprintf "openmetrics: line %d after `# EOF`" i)
        else if l = "# EOF" then go true (i + 1) rest
        else if l = "" || (String.length l > 0 && l.[0] = '#') then
          go seen_eof (i + 1) rest
        else if ok_sample l then go seen_eof (i + 1) rest
        else Error (Printf.sprintf "openmetrics: line %d unparsable: %s" i l)
  in
  go false 1 lines

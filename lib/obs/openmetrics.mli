(** OpenMetrics text exposition for the {!Metrics} registry.

    Metric names are sanitized ([.] → [_]) and prefixed [elin_]:
    ["svc.latency_us"] exposes as [elin_svc_latency_us].  Counters get
    the [_total] suffix, histograms expose cumulative [_bucket{le=..}]
    lines at the log2 bucket upper edges plus [_count]/[_sum] and
    companion [_p50]/[_p99] gauges (nearest-rank, upper-edge bounds —
    same honesty contract as {!Metrics.quantile}).  The body ends with
    the mandatory [# EOF] terminator. *)

(** Render a snapshot (pure — goldens feed a hand-built list). *)
val render_snapshot : (string * Metrics.value) list -> string

(** [render_snapshot (Metrics.snapshot ())]. *)
val render : unit -> string

(** Structural check of an exposition body: every line is a comment or
    [name[{labels}] value], terminated by [# EOF].  Used by
    [elin probe --openmetrics] and the telemetry smoke gate. *)
val validate : string -> (unit, string) result

(* Flight recorder: a bounded per-domain ring of recent cold-path
   events, always on.  See recorder.mli for the contract. *)

type entry = {
  ts : int64;
  dom : int;
  kind : string;
  id : string;
  args : (string * Jsonl.t) list;
}

let cap = 256

type ring = {
  rdom : int;
  slots : entry option array;
  mutable next : int;  (* next write position, wraps mod cap *)
  mutable total : int; (* entries ever written to this ring *)
}

let all_rings : ring list ref = ref []
let rings_mu = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let r =
        {
          rdom = (Domain.self () :> int);
          slots = Array.make cap None;
          next = 0;
          total = 0;
        }
      in
      Mutex.lock rings_mu;
      all_rings := r :: !all_rings;
      Mutex.unlock rings_mu;
      r)

let enabled = Atomic.make true
let on () = Atomic.get enabled
let set_enabled b = Atomic.set enabled b

let note ?(id = "") ?(args = []) kind =
  if on () then begin
    let r = Domain.DLS.get ring_key in
    r.slots.(r.next) <-
      Some { ts = Clock.now_ns (); dom = r.rdom; kind; id; args };
    r.next <- (r.next + 1) mod cap;
    r.total <- r.total + 1
  end

(* Snapshot every domain's ring, oldest first.  Reads race with
   concurrent writers on other domains — each slot holds an immutable
   entry, so a racy read sees either the old or the new entry, never a
   torn one.  Good enough for a post-mortem. *)
let entries () =
  Mutex.lock rings_mu;
  let rings =
    Fun.protect ~finally:(fun () -> Mutex.unlock rings_mu) (fun () -> !all_rings)
  in
  rings
  |> List.concat_map (fun r ->
         let out = ref [] in
         for i = 0 to cap - 1 do
           (* Oldest slot is [next] once the ring has wrapped. *)
           match r.slots.((r.next + i) mod cap) with
           | Some e -> out := e :: !out
           | None -> ()
         done;
         List.rev !out)
  |> List.stable_sort (fun a b -> Int64.compare a.ts b.ts)

let clear () =
  Mutex.lock rings_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock rings_mu)
    (fun () ->
      List.iter
        (fun r ->
          Array.fill r.slots 0 cap None;
          r.next <- 0;
          r.total <- 0)
        !all_rings)

let entry_json t0 e =
  let open Jsonl in
  Obj
    ([
       ("ts", Int (Int64.to_int (Int64.sub e.ts t0)));
       ("dom", Int e.dom);
       ("kind", Str e.kind);
     ]
    @ (if e.id = "" then [] else [ ("id", Str e.id) ])
    @ if e.args = [] then [] else [ ("args", Obj e.args) ])

let to_jsonl ~reason ?job () =
  let es = entries () in
  let t0 = match es with [] -> 0L | e :: _ -> e.ts in
  let open Jsonl in
  let header =
    Obj
      ([ ("flight", Str "elin.flight"); ("reason", Str reason) ]
      @ (match job with Some j -> [ ("job", Str j) ] | None -> [])
      @ [
          ("t0", Int (Int64.to_int t0));
          ("events", Int (List.length es));
        ])
  in
  header :: List.map (entry_json t0) es

(* Dump sink: a path configured once at CLI startup (--flight FILE).
   Dumps append, so successive incidents in one process all survive.
   The mutex serializes concurrent dumps from worker domains. *)
let sink : string option ref = ref None
let dump_mu = Mutex.create ()
let dumps = Atomic.make 0

let set_sink p = sink := p
let dump_count () = Atomic.get dumps

let dump ~reason ?job () =
  match !sink with
  | None -> ()
  | Some path ->
      let lines = to_jsonl ~reason ?job () in
      Mutex.lock dump_mu;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock dump_mu)
        (fun () ->
          let oc =
            open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path
          in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> List.iter (Jsonl.write_line oc) lines);
          Atomic.incr dumps)

let install_sigusr1 () =
  ignore
    (Sys.signal Sys.sigusr1
       (Sys.Signal_handle (fun _ -> dump ~reason:"sigusr1" ())))

(** Flight recorder: bounded per-domain rings of recent cold-path
    events, {e always on}, dumped post-mortem when something goes
    wrong.

    {2 Contract}

    Unlike {!Trace} (opt-in, unbounded growth) the recorder runs by
    default in every process with a hard memory bound: one 256-slot
    ring per domain, overwritten oldest-first.  [note] is for {e cold}
    sites only — per-job, per-frame, per-segment, per-checkpoint —
    never per-state or per-access; each note is one clock read and one
    small allocation.

    {2 Dumps}

    Nothing is ever written unless a sink is configured
    ([set_sink], the [--flight FILE] CLI flag).  [dump] appends a
    JSONL block to the sink: a header line
    [{"flight":"elin.flight","reason":...,"job":...,"t0":...,
    "events":N}] followed by one line per ring entry (ts rebased to
    the oldest entry), merged across domains and sorted by time.
    Dump sites: checker crash ([failed] verdict), job timeout,
    protocol error on the wire, and SIGUSR1. *)

type entry = {
  ts : int64;  (** Clock ns *)
  dom : int;   (** recording domain *)
  kind : string;  (** e.g. ["job.start"], ["net.protocol_error"] *)
  id : string;    (** usually a job id; [""] when not applicable *)
  args : (string * Jsonl.t) list;
}

val on : unit -> bool

(** Bench A/B only — the recorder is meant to stay on in production. *)
val set_enabled : bool -> unit

(** [note kind ~id ~args] — append to the calling domain's ring,
    overwriting the oldest entry when full.  Safe from any domain or
    thread (each systhread on a domain shares that domain's ring; a
    lost update under thread interleaving costs one entry, never
    corruption). *)
val note : ?id:string -> ?args:(string * Jsonl.t) list -> string -> unit

(** Merged snapshot of every domain's ring, oldest first.  Racy reads
    of other domains' rings are memory-safe; entries may be a moment
    stale. *)
val entries : unit -> entry list

(** Reset all rings (tests). *)
val clear : unit -> unit

(** The JSONL block a dump writes (header line + entries); exposed for
    tests. *)
val to_jsonl : reason:string -> ?job:string -> unit -> Jsonl.t list

(** Configure the dump sink path ([None] disables dumping — the
    default). *)
val set_sink : string option -> unit

(** Append a dump block to the sink; no-op when no sink is set.
    Serialized across domains. *)
val dump : reason:string -> ?job:string -> unit -> unit

(** Dumps performed so far in this process. *)
val dump_count : unit -> int

(** Install a SIGUSR1 handler that dumps with reason ["sigusr1"]. *)
val install_sigusr1 : unit -> unit

type event = {
  ts : int64;
  dur : int64;
  name : string;
  cat : string;
  tid : int;
  args : (string * Jsonl.t) list;
}

let enabled = Atomic.make false
let on () = Atomic.get enabled
let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false

(* One buffer per domain, registered in a global list on first use.
   Recording is lock-free (plain mutable list cell, only ever touched
   by the owning domain); the registration itself takes a mutex once
   per domain lifetime. *)
type buf = { btid : int; mutable evs : event list }

let all_bufs : buf list ref = ref []
let bufs_mu = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b = { btid = (Domain.self () :> int); evs = [] } in
      Mutex.lock bufs_mu;
      all_bufs := b :: !all_bufs;
      Mutex.unlock bufs_mu;
      b)

let record ev =
  let b = Domain.DLS.get buf_key in
  b.evs <- ev :: b.evs

let begin_ns () = if on () then Clock.now_ns () else 0L

let complete ?tid ?(args = []) ?(cat = "elin") ~ts name =
  if on () then begin
    let now = Clock.now_ns () in
    let tid =
      match tid with Some t -> t | None -> (Domain.self () :> int)
    in
    record { ts; dur = Int64.sub now ts; name; cat; tid; args }
  end

let instant ?tid ?(args = []) ?(cat = "elin") name =
  if on () then begin
    let tid =
      match tid with Some t -> t | None -> (Domain.self () :> int)
    in
    record { ts = Clock.now_ns (); dur = -1L; name; cat; tid; args }
  end

let with_span ?tid ?args ?cat name f =
  if on () then begin
    let ts = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () -> complete ?tid ?args ?cat ~ts name)
      f
  end
  else f ()

let events () =
  Mutex.lock bufs_mu;
  let bufs =
    Fun.protect ~finally:(fun () -> Mutex.unlock bufs_mu) (fun () -> !all_bufs)
  in
  (* Per-buffer lists are newest-first; rebuild chronological order
     per buffer, visit buffers in tid order, then a stable sort on ts
     alone — ties stay grouped by tid, deterministically. *)
  bufs
  |> List.sort (fun a b -> compare a.btid b.btid)
  |> List.concat_map (fun b -> List.rev b.evs)
  |> List.stable_sort (fun a b -> Int64.compare a.ts b.ts)

let clear () =
  Mutex.lock bufs_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock bufs_mu)
    (fun () -> List.iter (fun b -> b.evs <- []) !all_bufs)

let t0_of = function [] -> 0L | ev :: _ -> ev.ts

(* Process label stamped into exported trace metadata so `elin trace
   merge` can tell client and server files apart.  Set once at CLI
   startup; never read on the hot path. *)
let proc_label = ref "elin"
let set_proc p = proc_label := p

let meta_json evs =
  let open Jsonl in
  Obj
    [
      ("meta", Str "elin.trace");
      ("t0", Int (Int64.to_int (t0_of evs)));
      ("proc", Str !proc_label);
    ]

let to_jsonl evs =
  let t0 = t0_of evs in
  List.map
    (fun ev ->
      let open Jsonl in
      let is_span = ev.dur >= 0L in
      Obj
        ([ ("ts", Int (Int64.to_int (Int64.sub ev.ts t0))) ]
        @ (if is_span then [ ("dur", Int (Int64.to_int ev.dur)) ] else [])
        @ [
            ("ph", Str (if is_span then "X" else "i"));
            ("name", Str ev.name);
            ("cat", Str ev.cat);
            ("tid", Int ev.tid);
          ]
        @ if ev.args = [] then [] else [ ("args", Obj ev.args) ]))
    evs

let to_chrome evs =
  let t0 = t0_of evs in
  let open Jsonl in
  let trace_events =
    List.map
      (fun ev ->
        let is_span = ev.dur >= 0L in
        let us_of ns = Clock.ns_to_us ns in
        Obj
          ([
             ("name", Str ev.name);
             ("cat", Str ev.cat);
             ("ph", Str (if is_span then "X" else "i"));
             ("ts", Float (us_of (Int64.sub ev.ts t0)));
           ]
          @ (if is_span then [ ("dur", Float (us_of ev.dur)) ] else [])
          @ [ ("pid", Int 1); ("tid", Int ev.tid) ]
          @ (if is_span then [] else [ ("s", Str "t") ])
          @ if ev.args = [] then [] else [ ("args", Obj ev.args) ]))
      evs
  in
  Obj
    [
      ("traceEvents", Arr trace_events);
      ( "otherData",
        Obj
          [
            ("t0", Int (Int64.to_int (t0_of evs)));
            ("proc", Str !proc_label);
          ] );
    ]

let write_file path =
  let evs = events () in
  if Filename.check_suffix path ".json" then Jsonl.to_file path (to_chrome evs)
  else Jsonl.lines_to_file path (meta_json evs :: to_jsonl evs)

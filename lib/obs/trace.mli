(** Span/instant trace events with per-domain append-only buffers.

    {2 Zero cost when off}

    Every recording entry point begins with one atomic load ([on ()])
    and returns immediately when tracing is disabled — no allocation,
    no clock read.  Hot paths use the two-call pattern so not even a
    closure is built:

    {[
      let ts = Trace.begin_ns () in      (* 0L when disabled *)
      ... work ...
      Trace.complete ~cat:"mc" ~ts "mc.level" ~args:[...]
    ]}

    [with_span] is the convenient variant for cold paths (per-job,
    per-phase) where allocating the closure is irrelevant.

    {2 Buffers}

    Each domain appends to its own buffer (domain-local storage), so
    recording never takes a lock.  [events]/[clear] walk all buffers
    and must only be called {e between} parallel sections — the
    spawning domain after workers are joined.

    {2 Export}

    Canonical JSONL: one event per line, key order
    [ts, dur, ph, name, cat, tid, args] ([dur] only on spans, [args]
    only when nonempty), timestamps in nanoseconds rebased to the
    first event.  Chrome trace-event JSON ([{"traceEvents": [...]}],
    microsecond floats, ph ["X"]/["i"]) loads in Perfetto and
    [chrome://tracing]. *)

type event = {
  ts : int64;  (** Clock ns *)
  dur : int64;  (** span duration in ns; [< 0] marks an instant *)
  name : string;
  cat : string;
  tid : int;  (** logical thread lane (defaults to the domain id) *)
  args : (string * Jsonl.t) list;
}

val on : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

(** Timestamp for a span about to start; [0L] when disabled (and the
    matching [complete] will drop the event). *)
val begin_ns : unit -> int64

(** [complete ~ts name] — record a span that started at [ts] (from
    [begin_ns]) and ends now.  No-op when disabled. *)
val complete :
  ?tid:int -> ?args:(string * Jsonl.t) list -> ?cat:string ->
  ts:int64 -> string -> unit

(** Point event.  No-op when disabled. *)
val instant :
  ?tid:int -> ?args:(string * Jsonl.t) list -> ?cat:string -> string -> unit

(** [with_span name f] — run [f], recording a span around it (also on
    exception).  Allocates a closure at the call site even when
    disabled; cold paths only. *)
val with_span :
  ?tid:int -> ?args:(string * Jsonl.t) list -> ?cat:string ->
  string -> (unit -> 'a) -> 'a

(** All recorded events, every domain's buffer merged, sorted by
    [(ts, tid)].  Only between parallel sections. *)
val events : unit -> event list

(** Drop all recorded events (buffers stay registered).  Only between
    parallel sections. *)
val clear : unit -> unit

(** Process label stamped into exported metadata ([proc] field) so
    multi-process traces can be told apart by [elin trace merge].
    Defaults to ["elin"]. *)
val set_proc : string -> unit

(** Canonical JSONL lines (see module doc); [ts] rebased so the first
    event is 0. *)
val to_jsonl : event list -> Jsonl.t list

(** The metadata header line written before the events in JSONL
    exports: [{"meta":"elin.trace","t0":<abs ns of first event>,
    "proc":<label>}].  [t0] is the {e absolute} monotonic timestamp
    the rebased events are relative to — two files written by
    processes on the same host can be re-aligned from their [t0]s. *)
val meta_json : event list -> Jsonl.t

(** Chrome trace-event JSON object.  Carries the same [t0]/[proc]
    metadata under [otherData]. *)
val to_chrome : event list -> Jsonl.t

(** [write_file path] — drain [events ()] to [path]: Chrome format
    when [path] ends in [.json], canonical JSONL (one [meta] header
    line, then one event per line) otherwise. *)
val write_file : string -> unit
